/**
 * @file
 * Reproduces Fig. 6: Always-LRCs vs idealized (Optimal) scheduling on
 * a d=7 code at p=1e-3 — LPR over 70 rounds (top panel) and LER over
 * 10 QEC cycles (bottom panel). The paper reports a ~10x LER gap at 10
 * cycles and an LPR that keeps rising for Always-LRCs, plus a ~24x gap
 * in LRCs scheduled per round (Section 3.2).
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace qec;

int
main()
{
    banner("Always-LRCs vs idealized LRC scheduling (d = 7)",
           "Fig. 6 and Section 3.2");

    const int d = 7;
    RotatedSurfaceCode code(d);

    // Top panel: LPR over 10 cycles.
    {
        ExperimentConfig cfg;
        cfg.rounds = 70;
        cfg.shots = scaledShots(3000);
        cfg.seed = 6;
        cfg.decode = false;
        cfg.trackLpr = true;
        cfg.batchWidth = 64;   // bit-packed batch engine
        MemoryExperiment exp(code, cfg);
        ShotRateTimer timer;
        auto always = exp.run(PolicyKind::Always);
        auto optimal = exp.run(PolicyKind::Optimal);
        timer.report(2 * cfg.shots, "fig06 LPR panel (batched engine)");

        std::printf("%6s %16s %16s\n", "round", "Always(1e-4)",
                    "Optimal(1e-4)");
        for (int r = 0; r < cfg.rounds; r += 7) {
            std::printf("%6d %16.2f %16.2f\n", r,
                        always.lprTotal(r) * 1e4,
                        optimal.lprTotal(r) * 1e4);
        }
        std::printf("\nAverage LRCs per round: Always %.2f vs Optimal"
                    " %.3f (paper: 24 vs ~0.034 for d=7)\n\n",
                    always.avgLrcsPerRound(),
                    optimal.avgLrcsPerRound());
    }

    // Bottom panel: LER vs cycles.
    std::printf("%6s %14s %14s %10s\n", "cycle", "Always", "Optimal",
                "gap");
    for (int c : std::vector<int>{2, 4, 6, 8, 10}) {
        ExperimentConfig cfg;
        cfg.rounds = c * d;
        cfg.shots = scaledShots(1500);
        cfg.seed = 60 + c;
        cfg.batchWidth = 64;   // bit-packed batch engine
        MemoryExperiment exp(code, cfg);
        auto always = exp.run(PolicyKind::Always);
        auto optimal = exp.run(PolicyKind::Optimal);
        std::printf("%6d %14s %14s %10s\n", c, lerCell(always).c_str(),
                    lerCell(optimal).c_str(),
                    ratioCell(always, optimal).c_str());
    }
    std::printf("\nPaper shape: the idealized policy wins by ~10x at\n"
                "10 cycles and its LPR stays flat.\n");
    return 0;
}
