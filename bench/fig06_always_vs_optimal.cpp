/**
 * @file
 * Reproduces Fig. 6: Always-LRCs vs idealized (Optimal) scheduling on
 * a d=7 code at p=1e-3 — LPR over 70 rounds (top panel) and LER over
 * 10 QEC cycles (bottom panel). The paper reports a ~10x LER gap at 10
 * cycles and an LPR that keeps rising for Always-LRCs, plus a ~24x gap
 * in LRCs scheduled per round (Section 3.2).
 */

#include <cstdio>

#include "bench_util.h"
#include "exp/sweep_runner.h"

using namespace qec;

int
main()
{
    banner("Always-LRCs vs idealized LRC scheduling (d = 7)",
           "Fig. 6 and Section 3.2");

    // Top panel: LPR over 10 cycles.
    {
        SweepPlan plan;
        plan.name = "fig06_lpr_panel";
        plan.distances = {7};
        plan.rounds = {SweepRounds::exactly(70)};
        plan.policies = {PolicyKind::Always, PolicyKind::Optimal};
        plan.base.decode = false;
        plan.base.trackLpr = true;
        plan.base.batchWidth = 64;   // bit-packed batch engine
        plan.base.shots = scaledShots(3000);

        SweepRunner runner(plan);
        CollectSink collect;
        runner.addSink(collect);
        runner.run();

        const PointResult &point = collect.points.front();
        const ExperimentResult &always = point.results[0];
        const ExperimentResult &optimal = point.results[1];

        std::printf("%6s %16s %16s\n", "round", "Always(1e-4)",
                    "Optimal(1e-4)");
        for (int r = 0; r < point.point.rounds; r += 7) {
            std::printf("%6d %16.2f %16.2f\n", r,
                        always.lprTotal(r) * 1e4,
                        optimal.lprTotal(r) * 1e4);
        }
        std::printf("\nAverage LRCs per round: Always %.2f vs Optimal"
                    " %.3f (paper: 24 vs ~0.034 for d=7)\n\n",
                    always.avgLrcsPerRound(),
                    optimal.avgLrcsPerRound());
    }

    // Bottom panel: LER vs cycles (rounds = cycle * d at d = 7).
    SweepPlan plan;
    plan.name = "fig06_ler_panel";
    plan.distances = {7};
    plan.rounds = {SweepRounds::cycles(2), SweepRounds::cycles(4),
                   SweepRounds::cycles(6), SweepRounds::cycles(8),
                   SweepRounds::cycles(10)};
    plan.policies = {PolicyKind::Always, PolicyKind::Optimal};
    plan.base.batchWidth = 64;   // bit-packed batch engine + decode
    plan.base.shots = scaledShots(1500);

    TableSink::Options options;
    options.gainNum = 0;   // Always
    options.gainDen = 1;   // Optimal
    options.gainHeader = "gap";
    TableSink table(options);
    SweepRunner runner(plan);
    runner.addSink(table);
    runner.run();

    std::printf("\nPaper shape: the idealized policy wins by ~10x at\n"
                "10 cycles and its LPR stays flat.\n");
    return 0;
}
