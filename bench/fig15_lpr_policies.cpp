/**
 * @file
 * Reproduces Fig. 15: leakage population ratio over 110 rounds of a
 * d=11 code at p=1e-3 under Always-LRCs, ERASER, ERASER+M and Optimal
 * scheduling. Paper shape: ERASER sits ~1.5x (up to 2.1x) below
 * Always-LRCs; ERASER+M sits another ~2.2x lower, essentially at the
 * Optimal curve.
 */

#include <cstdio>

#include "bench_util.h"
#include "exp/sweep_runner.h"

using namespace qec;

int
main()
{
    banner("LPR per round, d = 11, all policies",
           "Fig. 15, Section 6.2");

    SweepPlan plan;
    plan.name = "fig15_lpr_policies";
    plan.distances = {11};
    plan.rounds = {SweepRounds::exactly(110)};
    plan.policies = {PolicyKind::Always, PolicyKind::Eraser,
                     PolicyKind::EraserM, PolicyKind::Optimal};
    plan.base.decode = false;
    plan.base.trackLpr = true;
    plan.base.batchWidth = 64;   // bit-packed batch engine
    plan.base.shots = scaledShots(1200);

    SweepRunner runner(plan);
    CollectSink collect;
    TableSink rate;   // header + rate line; the LPR series follows
    runner.addSink(rate);
    runner.addSink(collect);
    runner.run();

    const PointResult &point = collect.points.front();
    const ExperimentResult &always = point.results[0];
    const ExperimentResult &eraser = point.results[1];
    const ExperimentResult &eraser_m = point.results[2];
    const ExperimentResult &optimal = point.results[3];
    const int rounds = point.point.rounds;

    std::printf("\n%6s %14s %12s %12s %12s   (LPR in 1e-4)\n",
                "round", "Always-LRCs", "ERASER", "ERASER+M",
                "Optimal");
    for (int r = 0; r < rounds; r += 11) {
        std::printf("%6d %14.2f %12.2f %12.2f %12.2f\n", r,
                    always.lprTotal(r) * 1e4, eraser.lprTotal(r) * 1e4,
                    eraser_m.lprTotal(r) * 1e4,
                    optimal.lprTotal(r) * 1e4);
    }

    auto late = [&](const ExperimentResult &res) {
        double total = 0.0;
        for (int r = rounds / 2; r < rounds; ++r)
            total += res.lprTotal(r);
        return total / (rounds - rounds / 2);
    };
    const double a = late(always);
    const double e = late(eraser);
    const double m = late(eraser_m);
    const double o = late(optimal);
    std::printf("\nLate-half average LPR (1e-4): Always %.2f, ERASER"
                " %.2f, ERASER+M %.2f, Optimal %.2f\n", a * 1e4,
                e * 1e4, m * 1e4, o * 1e4);
    std::printf("ERASER vs Always: %.2fx lower (paper: ~1.5x avg, up"
                " to 2.1x)\n", a / e);
    std::printf("ERASER+M vs ERASER: %.2fx lower (paper: ~2.2x)\n",
                e / m);
    std::printf("ERASER+M vs Optimal: %.2fx of optimal\n", m / o);
    return 0;
}
