/**
 * @file
 * Reproduces Appendix A.2 (Figs. 20-21): applying ERASER's adaptive
 * scheduling to Google's DQLR protocol (LeakageISWAP-based removal)
 * instead of SWAP LRCs, under the exchange transport model. Paper
 * shape: DQLR stabilizes the LPR quickly, but scheduling it only when
 * needed still wins — ERASER 1.8x / ERASER+M 2x better LER on
 * average, with a ~4.4x gap between baseline DQLR and Optimal.
 */

#include <cstdio>

#include "bench_util.h"
#include "exp/sweep_runner.h"

using namespace qec;

int
main()
{
    banner("Adaptive scheduling of the DQLR protocol",
           "Figs. 20-21, Appendix A.2");

    // Fig. 20: LER vs distance with the DQLR protocol (the Always
    // policy under DQLR schedules removal every round — the paper's
    // baseline DQLR).
    {
        SweepPlan plan;
        plan.name = "fig20_ler_vs_distance_dqlr";
        plan.distances = {3, 5, 7, 9, 11};
        plan.rounds = {SweepRounds::cycles(10)};
        plan.policies = {PolicyKind::Always, PolicyKind::Eraser,
                         PolicyKind::EraserM, PolicyKind::Optimal};
        plan.base.protocol = RemovalProtocol::Dqlr;
        plan.base.em.transport = TransportModel::Exchange;
        plan.base.batchWidth = 64;   // batch engine + decode
        plan.shotsFor = [](int d, double) {
            return scaledShots(90000 / (uint64_t)(d * d));
        };

        TableSink::Options options;
        options.gainNum = 0;   // baseline DQLR (Always, every round)
        options.gainDen = 1;   // ERASER
        options.gainHeader = "DQLR/ERASER";
        TableSink table(options);
        SweepRunner runner(plan);
        runner.addSink(table);
        runner.run();
    }

    // Fig. 21: LPR over 110 rounds at d=11.
    SweepPlan plan;
    plan.name = "fig21_lpr_dqlr";
    plan.distances = {11};
    plan.rounds = {SweepRounds::exactly(110)};
    plan.policies = {PolicyKind::Always, PolicyKind::Eraser,
                     PolicyKind::EraserM, PolicyKind::Optimal};
    plan.base.decode = false;
    plan.base.trackLpr = true;
    plan.base.protocol = RemovalProtocol::Dqlr;
    plan.base.em.transport = TransportModel::Exchange;
    plan.base.batchWidth = 64;
    plan.base.shots = scaledShots(1000);

    CollectSink collect;
    SweepRunner runner(plan);
    runner.addSink(collect);
    runner.run();

    const PointResult &point = collect.points.front();
    std::printf("\nLPR (1e-4), d = 11, DQLR protocol:\n");
    std::printf("%6s %10s %12s %12s %12s\n", "round", "DQLR",
                "ERASER", "ERASER+M", "Optimal");
    for (int r = 0; r < point.point.rounds; r += 11) {
        std::printf("%6d %10.2f %12.2f %12.2f %12.2f\n", r,
                    point.results[0].lprTotal(r) * 1e4,
                    point.results[1].lprTotal(r) * 1e4,
                    point.results[2].lprTotal(r) * 1e4,
                    point.results[3].lprTotal(r) * 1e4);
    }
    std::printf("\nPaper shape: DQLR's LPR plateaus quickly; adaptive\n"
                "scheduling still reduces both LPR (~1.4-1.5x) and\n"
                "LER (1.8-2x).\n");
    return 0;
}
