/**
 * @file
 * Reproduces Appendix A.2 (Figs. 20-21): applying ERASER's adaptive
 * scheduling to Google's DQLR protocol (LeakageISWAP-based removal)
 * instead of SWAP LRCs, under the exchange transport model. Paper
 * shape: DQLR stabilizes the LPR quickly, but scheduling it only when
 * needed still wins — ERASER 1.8x / ERASER+M 2x better LER on
 * average, with a ~4.4x gap between baseline DQLR and Optimal.
 */

#include <cstdio>

#include "bench_util.h"

using namespace qec;

int
main()
{
    banner("Adaptive scheduling of the DQLR protocol",
           "Figs. 20-21, Appendix A.2");

    // Fig. 20: LER vs distance with the DQLR protocol.
    std::printf("%4s %8s %12s %12s %12s %12s %16s\n", "d", "shots",
                "DQLR", "ERASER", "ERASER+M", "Optimal",
                "DQLR/ERASER gain");
    ShotRateTimer fig20_timer;
    uint64_t fig20_shots = 0;
    for (int d : {3, 5, 7, 9, 11}) {
        RotatedSurfaceCode code(d);
        ExperimentConfig cfg;
        cfg.rounds = 10 * d;
        cfg.protocol = RemovalProtocol::Dqlr;
        cfg.em = ErrorModel::standard(1e-3);
        cfg.em.transport = TransportModel::Exchange;
        cfg.shots = scaledShots(90000 / (uint64_t)(d * d));
        cfg.seed = 20000 + d;
        cfg.batchWidth = 64;   // bit-packed batch engine + decode
        MemoryExperiment exp(code, cfg);
        fig20_shots += 4 * cfg.shots;

        auto dqlr = exp.run(PolicyKind::Always);     // every round
        auto eraser = exp.run(PolicyKind::Eraser);
        auto eraser_m = exp.run(PolicyKind::EraserM);
        auto optimal = exp.run(PolicyKind::Optimal);
        std::printf("%4d %8llu %12s %12s %12s %12s %16s\n", d,
                    (unsigned long long)cfg.shots,
                    lerCell(dqlr).c_str(), lerCell(eraser).c_str(),
                    lerCell(eraser_m).c_str(),
                    lerCell(optimal).c_str(),
                    ratioCell(dqlr, eraser).c_str());
    }

    fig20_timer.report(fig20_shots, "fig20 sweep (batched sim+decode)");

    // Fig. 21: LPR over 110 rounds at d=11.
    RotatedSurfaceCode code(11);
    ExperimentConfig cfg;
    cfg.rounds = 110;
    cfg.shots = scaledShots(1000);
    cfg.seed = 21;
    cfg.decode = false;
    cfg.trackLpr = true;
    cfg.protocol = RemovalProtocol::Dqlr;
    cfg.em.transport = TransportModel::Exchange;
    cfg.batchWidth = 64;
    MemoryExperiment exp(code, cfg);
    auto dqlr = exp.run(PolicyKind::Always);
    auto eraser = exp.run(PolicyKind::Eraser);
    auto eraser_m = exp.run(PolicyKind::EraserM);
    auto optimal = exp.run(PolicyKind::Optimal);

    std::printf("\nLPR (1e-4), d = 11, DQLR protocol:\n");
    std::printf("%6s %10s %12s %12s %12s\n", "round", "DQLR",
                "ERASER", "ERASER+M", "Optimal");
    for (int r = 0; r < cfg.rounds; r += 11) {
        std::printf("%6d %10.2f %12.2f %12.2f %12.2f\n", r,
                    dqlr.lprTotal(r) * 1e4, eraser.lprTotal(r) * 1e4,
                    eraser_m.lprTotal(r) * 1e4,
                    optimal.lprTotal(r) * 1e4);
    }
    std::printf("\nPaper shape: DQLR's LPR plateaus quickly; adaptive\n"
                "scheduling still reduces both LPR (~1.4-1.5x) and\n"
                "LER (1.8-2x).\n");
    return 0;
}
