/**
 * @file
 * Decoder ablation: the paper decodes with MWPM ("the gold standard",
 * Section 2.2) but notes any decoder works. This bench swaps in the
 * Union-Find decoder under identical leakage conditions to quantify
 * what the decoder choice costs each scheduling policy — and to show
 * that ERASER's advantage over Always-LRCs is decoder-independent.
 * The decoder axis shares the point's derived seed, so both decoders
 * judge the exact same noise streams.
 */

#include <cstdio>

#include "bench_util.h"
#include "exp/sweep_runner.h"

using namespace qec;

int
main()
{
    banner("MWPM vs Union-Find under leakage (d = 5, 10 cycles)",
           "Decoder-independence check (Sections 2.2, 5.3)");

    SweepPlan plan;
    plan.name = "ablation_decoder";
    plan.distances = {5};
    plan.rounds = {SweepRounds::exactly(50)};
    plan.decoders = {DecoderKind::Mwpm, DecoderKind::UnionFind};
    plan.policies = {PolicyKind::Always, PolicyKind::Eraser,
                     PolicyKind::Optimal};
    plan.base.batchWidth = 64;   // batch engine + decode pipeline
    plan.base.shots = scaledShots(4000);

    CollectSink collect;
    SweepRunner runner(plan);
    runner.addSink(collect);
    runner.run();

    const PointResult &mwpm_pt = collect.points[0];
    const PointResult &uf_pt = collect.points[1];

    std::printf("%-12s %14s %14s %10s\n", "policy", "MWPM LER",
                "UnionFind LER", "UF/MWPM");
    double gain_mwpm = 0.0;
    double gain_uf = 0.0;
    for (size_t i = 0; i < mwpm_pt.results.size(); ++i) {
        const ExperimentResult &mwpm = mwpm_pt.results[i];
        const ExperimentResult &uf = uf_pt.results[i];
        std::printf("%-12s %14s %14s %9.2fx\n", mwpm.policy.c_str(),
                    lerCell(mwpm).c_str(), lerCell(uf).c_str(),
                    uf.ler() / (mwpm.ler() + 1e-12));
        if (i == 1) {   // ERASER vs Always
            gain_mwpm = mwpm_pt.results[0].ler() / (mwpm.ler() + 1e-12);
            gain_uf = uf_pt.results[0].ler() / (uf.ler() + 1e-12);
        }
    }
    std::printf("\nERASER-over-Always gain: %.2fx with MWPM, %.2fx"
                " with Union-Find\n", gain_mwpm, gain_uf);
    std::printf("Expectation: UF pays a modest accuracy tax on every\n"
                "policy, while ERASER's relative gain survives the\n"
                "decoder swap (\"any other decoder may be used\").\n");
    return 0;
}
