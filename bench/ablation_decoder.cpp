/**
 * @file
 * Decoder ablation: the paper decodes with MWPM ("the gold standard",
 * Section 2.2) but notes any decoder works. This bench swaps in the
 * Union-Find decoder under identical leakage conditions to quantify
 * what the decoder choice costs each scheduling policy — and to show
 * that ERASER's advantage over Always-LRCs is decoder-independent.
 */

#include <cstdio>

#include "bench_util.h"

using namespace qec;

int
main()
{
    banner("MWPM vs Union-Find under leakage (d = 5, 10 cycles)",
           "Decoder-independence check (Sections 2.2, 5.3)");

    RotatedSurfaceCode code(5);
    ExperimentConfig cfg;
    cfg.rounds = 50;
    cfg.shots = scaledShots(4000);
    cfg.seed = 55;
    cfg.batchWidth = 64;   // bit-packed batch engine + decode

    MemoryExperiment mwpm_exp(code, cfg);
    cfg.decoderKind = DecoderKind::UnionFind;
    MemoryExperiment uf_exp(code, cfg);

    ShotRateTimer timer;
    std::printf("%-12s %14s %14s %10s\n", "policy", "MWPM LER",
                "UnionFind LER", "UF/MWPM");
    double gain_mwpm = 0.0;
    double gain_uf = 0.0;
    ExperimentResult mwpm_always;
    ExperimentResult uf_always;
    for (PolicyKind kind : {PolicyKind::Always, PolicyKind::Eraser,
                            PolicyKind::Optimal}) {
        auto mwpm = mwpm_exp.run(kind);
        auto uf = uf_exp.run(kind);
        std::printf("%-12s %14s %14s %9.2fx\n", mwpm.policy.c_str(),
                    lerCell(mwpm).c_str(), lerCell(uf).c_str(),
                    uf.ler() / (mwpm.ler() + 1e-12));
        if (kind == PolicyKind::Always) {
            mwpm_always = mwpm;
            uf_always = uf;
        } else if (kind == PolicyKind::Eraser) {
            gain_mwpm = mwpm_always.ler() / (mwpm.ler() + 1e-12);
            gain_uf = uf_always.ler() / (uf.ler() + 1e-12);
        }
    }
    timer.report(6 * cfg.shots, "ablation_decoder (batched pipeline)");
    std::printf("\nERASER-over-Always gain: %.2fx with MWPM, %.2fx"
                " with Union-Find\n", gain_mwpm, gain_uf);
    std::printf("Expectation: UF pays a modest accuracy tax on every\n"
                "policy, while ERASER's relative gain survives the\n"
                "decoder swap (\"any other decoder may be used\").\n");
    return 0;
}
