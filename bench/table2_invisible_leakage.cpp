/**
 * @file
 * Reproduces Table 2 (invisible-leakage probabilities, Eq. 3) and the
 * Section 3.1 closed-form transport asymmetry (Eqs. 1-2), each
 * cross-checked against Monte-Carlo runs of the frame simulator.
 */

#include <cstdio>

#include "analytics/leakage_math.h"
#include "base/rng.h"
#include "bench_util.h"
#include "code/builder.h"
#include "sim/frame_simulator.h"

using namespace qec;

namespace
{

/** Fraction of rounds a leaked bulk data qubit stays invisible. */
double
monteCarloInvisible(int target_rounds, int trials)
{
    RotatedSurfaceCode code(5);
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    em.pTransport = 0.0;
    const int q = code.dataId(2, 2);
    const auto &stabs = code.stabilizersOfData(q);

    int matched = 0;
    for (int t = 0; t < trials; ++t) {
        FrameSimulator sim(code.numQubits(), em, Rng(31 + t));
        sim.setLeaked(q, true);
        int invisible_rounds = 0;
        for (int r = 0; r < 12; ++r) {
            const size_t mark = sim.record().size();
            RoundSchedule round = buildRoundSchedule(code, r, {});
            sim.executeRange(round.ops.data(),
                             round.ops.data() + round.ops.size());
            bool visible = false;
            for (size_t i = mark; i < sim.record().size(); ++i) {
                const auto &rec = sim.record()[i];
                for (int s : stabs)
                    visible |= (rec.stab == s && rec.flip);
            }
            if (visible)
                break;
            ++invisible_rounds;
        }
        matched += (invisible_rounds == target_rounds) ? 1 : 0;
    }
    return (double)matched / trials;
}

} // namespace

int
main()
{
    banner("Invisible leakage probabilities and transport asymmetry",
           "Table 2 (Eq. 3) and Eqs. 1-2, Sections 3.1 / 4.1");

    const int trials = (int)scaledShots(30000);
    std::printf("Table 2: probability a leaked data qubit stays\n"
                "invisible for r rounds\n");
    std::printf("%8s %14s %16s\n", "rounds", "Eq.(3) %", "MonteCarlo %");
    for (int r = 0; r <= 3; ++r) {
        std::printf("%8d %14.2f %16.2f\n", r, pInvisible(r) * 100.0,
                    monteCarloInvisible(r, trials) * 100.0);
    }
    std::printf("(paper: 93.8 / 5.90 / 0.36 / 0.02)\n\n");

    std::printf("Section 3.1 transport asymmetry:\n");
    std::printf("  P(L_data | L_parity), Eq. (1):  %.4f  (paper ~0.10)\n",
                pDataGivenParityLeaked());
    std::printf("  P(L_parity | L_data), Eq. (2):  %.4f  (paper ~0.34)\n",
                pParityGivenDataLeaked());
    std::printf("  asymmetry ratio:                %.2fx (paper ~3x)\n",
                pParityGivenDataLeaked() / pDataGivenParityLeaked());
    std::printf("  expected invisible rounds:      %.4f\n",
                expectedInvisibleRounds());
    return 0;
}
