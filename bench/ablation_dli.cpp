/**
 * @file
 * Ablation of ERASER's Dynamic LRC Insertion design choices (called
 * out in DESIGN.md):
 *   1. SWAP Lookup Table (primary + one backup, the paper's hardware)
 *      vs exact maximum matching (an upper bound no FPGA would ship).
 *   2. PUTT cooldown on vs off (Section 4.2.2 argues cooldown stops
 *      leakage accumulating on repeatedly-swapped parity qubits).
 */

#include <cstdio>

#include "bench_util.h"
#include "exp/sweep_runner.h"

using namespace qec;

namespace
{

SweepPolicy
variant(const char *name, DliAllocator allocator, bool cooldown)
{
    return SweepPolicy(
        name,
        [allocator, cooldown](const RotatedSurfaceCode &code,
                              const SwapLookupTable &lookup)
            -> PolicyFactory {
            return [&code, &lookup, allocator, cooldown]() {
                return std::make_unique<EraserPolicy>(
                    code, lookup, false, LsbThreshold::AtLeastTwo,
                    allocator, cooldown);
            };
        });
}

} // namespace

int
main()
{
    banner("DLI ablation: allocator and PUTT cooldown",
           "Design-choice ablation (Sections 4.2.2, 4.4)");

    SweepPlan plan;
    plan.name = "ablation_dli";
    plan.distances = {7};
    plan.rounds = {SweepRounds::exactly(70)};
    plan.policies = {
        variant("lookup + cooldown (paper)", DliAllocator::LookupTable,
                true),
        variant("exact  + cooldown", DliAllocator::ExactMatching,
                true),
        variant("lookup, no cooldown", DliAllocator::LookupTable,
                false),
        variant("exact,  no cooldown", DliAllocator::ExactMatching,
                false),
    };
    plan.base.trackLpr = true;
    plan.base.shots = scaledShots(1200);

    CollectSink collect;
    SweepRunner runner(plan);
    runner.addSink(collect);
    runner.run();

    const PointResult &point = collect.points.front();
    const int rounds = point.point.rounds;
    std::printf("%-28s %12s %12s %14s %10s\n", "variant", "LER",
                "LRCs/round", "lateLPR(1e-4)", "FNR");
    for (const ExperimentResult &result : point.results) {
        double late = 0.0;
        for (int r = rounds / 2; r < rounds; ++r)
            late += result.lprTotal(r);
        late /= (rounds - rounds / 2);
        std::printf("%-28s %12s %12.3f %14.2f %9.1f%%\n",
                    result.policy.c_str(), lerCell(result).c_str(),
                    result.avgLrcsPerRound(), late * 1e4,
                    result.falseNegativeRate() * 100.0);
    }
    std::printf("\nExpectation: the lookup allocator gives up almost\n"
                "nothing vs exact matching (suspect sets are sparse),\n"
                "validating the paper's constant-time hardware.\n");
    return 0;
}
