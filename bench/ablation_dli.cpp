/**
 * @file
 * Ablation of ERASER's Dynamic LRC Insertion design choices (called
 * out in DESIGN.md):
 *   1. SWAP Lookup Table (primary + one backup, the paper's hardware)
 *      vs exact maximum matching (an upper bound no FPGA would ship).
 *   2. PUTT cooldown on vs off (Section 4.2.2 argues cooldown stops
 *      leakage accumulating on repeatedly-swapped parity qubits).
 */

#include <cstdio>

#include "bench_util.h"

using namespace qec;

namespace
{

PolicyFactory
variant(const RotatedSurfaceCode &code, const SwapLookupTable &lookup,
        DliAllocator allocator, bool cooldown)
{
    return [&code, &lookup, allocator, cooldown]() {
        return std::make_unique<EraserPolicy>(
            code, lookup, false, LsbThreshold::AtLeastTwo, allocator,
            cooldown);
    };
}

} // namespace

int
main()
{
    banner("DLI ablation: allocator and PUTT cooldown",
           "Design-choice ablation (Sections 4.2.2, 4.4)");

    RotatedSurfaceCode code(7);
    SwapLookupTable lookup(code);

    ExperimentConfig cfg;
    cfg.rounds = 70;
    cfg.shots = scaledShots(1200);
    cfg.seed = 71;
    cfg.trackLpr = true;
    MemoryExperiment exp(code, cfg);

    struct Row
    {
        const char *name;
        DliAllocator alloc;
        bool cooldown;
    };
    const Row rows[] = {
        {"lookup + cooldown (paper)", DliAllocator::LookupTable, true},
        {"exact  + cooldown", DliAllocator::ExactMatching, true},
        {"lookup, no cooldown", DliAllocator::LookupTable, false},
        {"exact,  no cooldown", DliAllocator::ExactMatching, false},
    };

    std::printf("%-28s %12s %12s %14s %10s\n", "variant", "LER",
                "LRCs/round", "lateLPR(1e-4)", "FNR");
    for (const auto &row : rows) {
        auto result = exp.run(
            variant(code, lookup, row.alloc, row.cooldown), row.name);
        double late = 0.0;
        for (int r = cfg.rounds / 2; r < cfg.rounds; ++r)
            late += result.lprTotal(r);
        late /= (cfg.rounds - cfg.rounds / 2);
        std::printf("%-28s %12s %12.3f %14.2f %9.1f%%\n", row.name,
                    lerCell(result).c_str(), result.avgLrcsPerRound(),
                    late * 1e4,
                    result.falseNegativeRate() * 100.0);
    }
    std::printf("\nExpectation: the lookup allocator gives up almost\n"
                "nothing vs exact matching (suspect sets are sparse),\n"
                "validating the paper's constant-time hardware.\n");
    return 0;
}
