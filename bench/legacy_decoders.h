/**
 * @file
 * Frozen PR 1 decoder implementations, kept verbatim as the perf
 * baseline for the batch-aware decode pipeline.
 *
 * These are the decoders as they existed before the zero-allocation
 * rewrite: per-decode heap allocation of every scratch array, a
 * vector-of-vectors adjacency (Union-Find), and a per-shot boundary
 * search instead of the persistent boundary-distance cache (MWPM).
 * perf_components injects them through MemoryExperiment's decoder
 * factory so BENCH_decode.json always measures the real PR 1 decode
 * cost on the current machine, not a number remembered from an old
 * run. Not used by any product path.
 */

#ifndef QEC_BENCH_LEGACY_DECODERS_H
#define QEC_BENCH_LEGACY_DECODERS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "base/logging.h"
#include "decoder/decoder_base.h"
#include "decoder/detector_model.h"
#include "decoder/matching.h"

namespace qec
{

/** PR 1 Union-Find decoder: allocates all cluster state per decode. */
class LegacyUnionFindDecoder : public Decoder
{
  public:
    LegacyUnionFindDecoder(const DetectorModel &dem, double p)
        : numDets_(dem.numDetectors()),
          boundaryVertex_(dem.numDetectors())
    {
        incident_.resize(numDets_ + 1);
        for (const auto &edge : dem.edges) {
            if (edge.probability(p) <= 0.0)
                continue;
            const int v =
                edge.b == kBoundary ? boundaryVertex_ : edge.b;
            const int index = (int)edges_.size();
            edges_.push_back({edge.a, v,
                              edge.obsFlip ? (uint8_t)1 : (uint8_t)0});
            incident_[edge.a].push_back(index);
            incident_[v].push_back(index);
        }
    }

    bool
    decodeSparse(const int *defect_ids, size_t count,
                 DecodeWorkspace &) const override
    {
        const std::vector<int> defects(defect_ids,
                                       defect_ids + count);
        if (defects.empty())
            return false;

        const int n = numDets_ + 1;

        std::vector<int> parent(n);
        for (int v = 0; v < n; ++v)
            parent[v] = v;
        auto find = [&](int v) {
            while (parent[v] != v) {
                parent[v] = parent[parent[v]];
                v = parent[v];
            }
            return v;
        };

        std::vector<uint8_t> is_defect(n, 0);
        for (int det : defects)
            is_defect[det] = 1;

        std::vector<int> odd(n, 0);
        std::vector<uint8_t> on_boundary(n, 0);
        std::vector<std::vector<int>> frontier(n);
        std::vector<uint8_t> in_cluster(n, 0);
        std::vector<uint8_t> expanded(n, 0);
        std::vector<uint8_t> grown(edges_.size(), 0);

        std::vector<int> active;
        for (int det : defects) {
            odd[det] = 1;
            in_cluster[det] = 1;
            frontier[det].push_back(det);
            active.push_back(det);
        }
        in_cluster[boundaryVertex_] = 1;
        on_boundary[boundaryVertex_] = 1;

        auto merge = [&](int a, int b) {
            a = find(a);
            b = find(b);
            if (a == b)
                return a;
            if (frontier[a].size() < frontier[b].size())
                std::swap(a, b);
            parent[b] = a;
            odd[a] ^= odd[b];
            on_boundary[a] |= on_boundary[b];
            frontier[a].insert(frontier[a].end(),
                               frontier[b].begin(),
                               frontier[b].end());
            frontier[b].clear();
            return a;
        };

        while (!active.empty()) {
            std::vector<int> next_active;
            bool grew_any = false;
            for (int root : active) {
                int r = find(root);
                if (r != root || !odd[r] || on_boundary[r])
                    continue;
                std::vector<int> to_expand;
                to_expand.swap(frontier[r]);
                for (int u : to_expand) {
                    if (expanded[u])
                        continue;
                    expanded[u] = 1;
                    grew_any = true;
                    for (int ei : incident_[u]) {
                        if (grown[ei])
                            continue;
                        grown[ei] = 1;
                        const auto &edge = edges_[ei];
                        const int w = edge.u == u ? edge.v : edge.u;
                        if (!in_cluster[w]) {
                            in_cluster[w] = 1;
                            const int rr = find(u);
                            frontier[rr].push_back(w);
                            parent[w] = rr;
                        } else {
                            merge(u, w);
                        }
                    }
                }
                r = find(root);
                if (odd[r] && !on_boundary[r])
                    next_active.push_back(r);
            }
            std::sort(next_active.begin(), next_active.end());
            next_active.erase(std::unique(next_active.begin(),
                                          next_active.end()),
                              next_active.end());
            active.clear();
            for (int r : next_active) {
                if (find(r) == r && odd[r] && !on_boundary[r])
                    active.push_back(r);
            }
            panicIf(!active.empty() && !grew_any,
                    "odd cluster cannot reach the boundary");
        }

        std::vector<int> tree_parent_edge(n, -1);
        std::vector<uint8_t> visited(n, 0);
        std::vector<int> order;
        order.reserve(n);

        auto bfs = [&](int root) {
            visited[root] = 1;
            std::vector<int> queue = {root};
            size_t head = 0;
            while (head < queue.size()) {
                const int u = queue[head++];
                order.push_back(u);
                for (int ei : incident_[u]) {
                    if (!grown[ei])
                        continue;
                    const auto &edge = edges_[ei];
                    const int w = edge.u == u ? edge.v : edge.u;
                    if (visited[w])
                        continue;
                    visited[w] = 1;
                    tree_parent_edge[w] = ei;
                    queue.push_back(w);
                }
            }
        };

        bfs(boundaryVertex_);
        for (int det : defects) {
            if (!visited[det])
                bfs(det);
        }

        bool obs = false;
        std::vector<uint8_t> charge = is_defect;
        for (size_t i = order.size(); i-- > 0;) {
            const int v = order[i];
            const int ei = tree_parent_edge[v];
            if (ei < 0)
                continue;
            if (!charge[v])
                continue;
            const auto &edge = edges_[ei];
            const int parent_v = edge.u == v ? edge.v : edge.u;
            charge[v] = 0;
            charge[parent_v] ^= 1;
            obs ^= (edge.obs != 0);
        }
        return obs;
    }

  private:
    struct Edge
    {
        int u;
        int v;
        uint8_t obs;
    };

    int numDets_ = 0;
    int boundaryVertex_ = 0;
    std::vector<Edge> edges_;
    std::vector<std::vector<int>> incident_;
};

/** PR 1 MWPM decoder: per-shot boundary search, per-decode scratch. */
class LegacyMwpmDecoder : public Decoder
{
  public:
    LegacyMwpmDecoder(const DetectorModel &dem, double p,
                      int neighbor_limit = 12,
                      int settle_cap = 1 << 20)
        : numDets_(dem.numDetectors()),
          neighborLimit_(neighbor_limit), settleCap_(settle_cap),
          adj_(dem.numDetectors()), boundaryW_(dem.numDetectors(), kInf),
          boundaryObs_(dem.numDetectors(), 0)
    {
        for (const auto &edge : dem.edges) {
            const double q = edge.probability(p);
            if (q <= 0.0)
                continue;
            const float w = (float)edgeWeight(q);
            if (edge.b == kBoundary) {
                if (w < boundaryW_[edge.a]) {
                    boundaryW_[edge.a] = w;
                    boundaryObs_[edge.a] = edge.obsFlip ? 1 : 0;
                }
                continue;
            }
            adj_[edge.a].push_back({edge.b, w, edge.obsFlip});
            adj_[edge.b].push_back({edge.a, w, edge.obsFlip});
        }
    }

    bool
    decodeSparse(const int *defect_ids, size_t count,
                 DecodeWorkspace &) const override
    {
        const std::vector<int> defects(defect_ids,
                                       defect_ids + count);
        const int n = (int)defects.size();
        if (n == 0)
            return false;

        std::vector<int> defect_of(numDets_, -1);
        for (int i = 0; i < n; ++i)
            defect_of[defects[i]] = i;

        struct Candidate
        {
            double w;
            uint8_t obs;
            bool valid = false;
        };
        std::vector<std::vector<std::pair<int, Candidate>>> cand(n);
        std::vector<double> bdist(n);
        std::vector<uint8_t> bobs(n, 0);

        std::vector<double> dist(numDets_);
        std::vector<uint8_t> obspar(numDets_);
        std::vector<int> stamp(numDets_, -1);
        std::vector<uint8_t> settled(numDets_, 0);

        using QItem = std::pair<double, int>;
        std::priority_queue<QItem, std::vector<QItem>,
                            std::greater<>> pq;

        for (int i = 0; i < n; ++i) {
            const int src = defects[i];
            while (!pq.empty())
                pq.pop();

            dist[src] = 0.0;
            obspar[src] = 0;
            stamp[src] = i;
            settled[src] = 0;
            pq.push({0.0, src});

            double best_boundary = kInf;
            uint8_t best_boundary_obs = 0;
            int found = 0;
            int settled_count = 0;

            while (!pq.empty()) {
                auto [d, u] = pq.top();
                pq.pop();
                if (stamp[u] != i || settled[u] || d > dist[u])
                    continue;
                settled[u] = 1;
                ++settled_count;

                if (d >= best_boundary && found >= neighborLimit_)
                    break;

                if (boundaryW_[u] < kInf &&
                    d + boundaryW_[u] < best_boundary) {
                    best_boundary = d + boundaryW_[u];
                    best_boundary_obs = obspar[u] ^ boundaryObs_[u];
                }
                const int j = defect_of[u];
                if (j >= 0 && j != i) {
                    ++found;
                    if (i < j)
                        cand[i].push_back({j, {d, obspar[u], true}});
                    else
                        cand[j].push_back({i, {d, obspar[u], true}});
                    if (found >= neighborLimit_ &&
                        best_boundary < kInf)
                        break;
                }
                if (settled_count >= settleCap_)
                    break;

                for (const auto &nbr : adj_[u]) {
                    const double nd = d + nbr.w;
                    if (nd >= best_boundary + best_boundary &&
                        found >= neighborLimit_)
                        continue;
                    if (stamp[nbr.to] != i) {
                        stamp[nbr.to] = i;
                        settled[nbr.to] = 0;
                        dist[nbr.to] = nd;
                        obspar[nbr.to] = obspar[u] ^ nbr.obs;
                        pq.push({nd, nbr.to});
                    } else if (nd < dist[nbr.to] && !settled[nbr.to]) {
                        dist[nbr.to] = nd;
                        obspar[nbr.to] = obspar[u] ^ nbr.obs;
                        pq.push({nd, nbr.to});
                    }
                }
            }
            bdist[i] = std::min(best_boundary, kMaxWeight);
            bobs[i] = best_boundary_obs;
        }

        std::vector<MatchEdge> edges;
        std::vector<std::pair<std::pair<int, int>, uint8_t>> pair_obs;
        for (int i = 0; i < n; ++i) {
            std::sort(cand[i].begin(), cand[i].end(),
                      [](const auto &x, const auto &y) {
                          return x.first < y.first ||
                                 (x.first == y.first &&
                                  x.second.w < y.second.w);
                      });
            int last = -1;
            for (const auto &[j, c] : cand[i]) {
                if (j == last)
                    continue;
                last = j;
                edges.push_back({i, j, scaled(c.w)});
                edges.push_back({n + i, n + j, 0});
                pair_obs.push_back({{i, j}, c.obs});
            }
            edges.push_back({i, n + i, scaled(bdist[i])});
        }

        auto partner = minWeightPerfectMatching(2 * n, edges);

        bool obs = false;
        for (int i = 0; i < n; ++i) {
            const int m = partner[i];
            if (m == n + i) {
                obs ^= (bobs[i] != 0);
            } else if (m > i && m < n) {
                for (const auto &[key, po] : pair_obs) {
                    if (key.first == i && key.second == m) {
                        obs ^= (po != 0);
                        break;
                    }
                }
            }
        }
        return obs;
    }

  private:
    static constexpr float kInf =
        std::numeric_limits<float>::infinity();
    static constexpr double kMaxWeight = 1.0e6;

    static double
    edgeWeight(double q)
    {
        q = std::min(std::max(q, 1.0e-12), 0.499999);
        return std::log((1.0 - q) / q);
    }
    static int64_t
    scaled(double w)
    {
        w = std::min(w, kMaxWeight);
        return (int64_t)std::llround(w * 1024.0);
    }

    struct Nbr
    {
        int to;
        float w;
        uint8_t obs;
    };

    int numDets_ = 0;
    int neighborLimit_;
    int settleCap_;
    std::vector<std::vector<Nbr>> adj_;
    std::vector<float> boundaryW_;
    std::vector<uint8_t> boundaryObs_;
};

} // namespace qec

#endif // QEC_BENCH_LEGACY_DECODERS_H
