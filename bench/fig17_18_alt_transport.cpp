/**
 * @file
 * Reproduces Appendix A.1 (Figs. 17-18): the alternative "exchange"
 * leakage-transport model, where a transport moves leakage instead of
 * copying it. Paper shape: every policy improves; ERASER's gain over
 * Always-LRCs widens (6.5x average, up to 13.4x); the LPR curves
 * stabilize instead of growing, with Always-LRCs oscillating.
 */

#include <cstdio>

#include "bench_util.h"

using namespace qec;

int
main()
{
    banner("Alternative (exchange) leakage transport model",
           "Figs. 17-18, Appendix A.1");

    // Fig. 17: LER vs distance under the exchange model.
    std::printf("%4s %8s %12s %12s %12s %12s %18s\n", "d", "shots",
                "Always", "ERASER", "ERASER+M", "Optimal",
                "ERASER/Always gain");
    ShotRateTimer fig17_timer;
    uint64_t fig17_shots = 0;
    for (int d : {3, 5, 7, 9, 11}) {
        RotatedSurfaceCode code(d);
        ExperimentConfig cfg;
        cfg.rounds = 10 * d;
        cfg.em = ErrorModel::standard(1e-3);
        cfg.em.transport = TransportModel::Exchange;
        cfg.shots = scaledShots(90000 / (uint64_t)(d * d));
        cfg.seed = 17000 + d;
        cfg.batchWidth = 64;   // bit-packed batch engine + decode
        MemoryExperiment exp(code, cfg);
        fig17_shots += 4 * cfg.shots;

        auto always = exp.run(PolicyKind::Always);
        auto eraser = exp.run(PolicyKind::Eraser);
        auto eraser_m = exp.run(PolicyKind::EraserM);
        auto optimal = exp.run(PolicyKind::Optimal);
        std::printf("%4d %8llu %12s %12s %12s %12s %18s\n", d,
                    (unsigned long long)cfg.shots,
                    lerCell(always).c_str(), lerCell(eraser).c_str(),
                    lerCell(eraser_m).c_str(),
                    lerCell(optimal).c_str(),
                    ratioCell(always, eraser).c_str());
    }

    fig17_timer.report(fig17_shots, "fig17 sweep (batched sim+decode)");

    // Fig. 18: LPR over 110 rounds, d=11.
    RotatedSurfaceCode code(11);
    ExperimentConfig cfg;
    cfg.rounds = 110;
    cfg.shots = scaledShots(1000);
    cfg.seed = 18;
    cfg.decode = false;
    cfg.trackLpr = true;
    cfg.em.transport = TransportModel::Exchange;
    cfg.batchWidth = 64;
    MemoryExperiment exp(code, cfg);
    auto always = exp.run(PolicyKind::Always);
    auto eraser = exp.run(PolicyKind::Eraser);
    auto eraser_m = exp.run(PolicyKind::EraserM);
    auto optimal = exp.run(PolicyKind::Optimal);

    std::printf("\nLPR (1e-4), d = 11, exchange transport:\n");
    std::printf("%6s %14s %12s %12s %12s\n", "round", "Always-LRCs",
                "ERASER", "ERASER+M", "Optimal");
    for (int r = 0; r < cfg.rounds; r += 11) {
        std::printf("%6d %14.2f %12.2f %12.2f %12.2f\n", r,
                    always.lprTotal(r) * 1e4, eraser.lprTotal(r) * 1e4,
                    eraser_m.lprTotal(r) * 1e4,
                    optimal.lprTotal(r) * 1e4);
    }
    std::printf("\nPaper shape: lower LPR everywhere; non-Always\n"
                "curves stabilize; ERASER's LER gain over Always\n"
                "widens vs the conservative model.\n");
    return 0;
}
