/**
 * @file
 * Reproduces Appendix A.1 (Figs. 17-18): the alternative "exchange"
 * leakage-transport model, where a transport moves leakage instead of
 * copying it. Paper shape: every policy improves; ERASER's gain over
 * Always-LRCs widens (6.5x average, up to 13.4x); the LPR curves
 * stabilize instead of growing, with Always-LRCs oscillating.
 */

#include <cstdio>

#include "bench_util.h"
#include "exp/sweep_runner.h"

using namespace qec;

int
main()
{
    banner("Alternative (exchange) leakage transport model",
           "Figs. 17-18, Appendix A.1");

    // Fig. 17: LER vs distance under the exchange model.
    {
        SweepPlan plan;
        plan.name = "fig17_ler_vs_distance_exchange";
        plan.distances = {3, 5, 7, 9, 11};
        plan.rounds = {SweepRounds::cycles(10)};
        plan.policies = {PolicyKind::Always, PolicyKind::Eraser,
                         PolicyKind::EraserM, PolicyKind::Optimal};
        plan.base.em.transport = TransportModel::Exchange;
        plan.base.batchWidth = 64;   // batch engine + decode
        plan.shotsFor = [](int d, double) {
            return scaledShots(90000 / (uint64_t)(d * d));
        };

        TableSink::Options options;
        options.gainNum = 0;   // Always
        options.gainDen = 1;   // ERASER
        options.gainHeader = "Always/ERASER";
        TableSink table(options);
        SweepRunner runner(plan);
        runner.addSink(table);
        runner.run();
    }

    // Fig. 18: LPR over 110 rounds, d=11.
    SweepPlan plan;
    plan.name = "fig18_lpr_exchange";
    plan.distances = {11};
    plan.rounds = {SweepRounds::exactly(110)};
    plan.policies = {PolicyKind::Always, PolicyKind::Eraser,
                     PolicyKind::EraserM, PolicyKind::Optimal};
    plan.base.decode = false;
    plan.base.trackLpr = true;
    plan.base.em.transport = TransportModel::Exchange;
    plan.base.batchWidth = 64;
    plan.base.shots = scaledShots(1000);

    CollectSink collect;
    SweepRunner runner(plan);
    runner.addSink(collect);
    runner.run();

    const PointResult &point = collect.points.front();
    std::printf("\nLPR (1e-4), d = 11, exchange transport:\n");
    std::printf("%6s %14s %12s %12s %12s\n", "round", "Always-LRCs",
                "ERASER", "ERASER+M", "Optimal");
    for (int r = 0; r < point.point.rounds; r += 11) {
        std::printf("%6d %14.2f %12.2f %12.2f %12.2f\n", r,
                    point.results[0].lprTotal(r) * 1e4,
                    point.results[1].lprTotal(r) * 1e4,
                    point.results[2].lprTotal(r) * 1e4,
                    point.results[3].lprTotal(r) * 1e4);
    }
    std::printf("\nPaper shape: lower LPR everywhere; non-Always\n"
                "curves stabilize; ERASER's LER gain over Always\n"
                "widens vs the conservative model.\n");
    return 0;
}
