/**
 * @file
 * google-benchmark microbenchmarks of the latency-critical components:
 * the speculation + insertion path (the paper's 5 ns FPGA budget and
 * ~120 ns control window, Section 4.3), one syndrome extraction round
 * of the frame simulator, a full-shot MWPM decode, and the blossom
 * matcher on decoder-shaped instances.
 */

#include <benchmark/benchmark.h>

#include "base/rng.h"
#include "code/builder.h"
#include "code/rotated_surface_code.h"
#include "core/policies.h"
#include "decoder/defects.h"
#include "decoder/detector_model.h"
#include "decoder/matching.h"
#include "decoder/mwpm_decoder.h"
#include "exp/memory_experiment.h"
#include "sim/batch_frame_simulator.h"
#include "sim/frame_simulator.h"

namespace
{

using namespace qec;

void
BM_LsbDliRoundDecision(benchmark::State &state)
{
    // The whole software model of the control decision: speculation
    // over a syndrome plus LRC insertion, at the given distance.
    const int d = (int)state.range(0);
    RotatedSurfaceCode code(d);
    SwapLookupTable lookup(code);
    EraserPolicy policy(code, lookup, false);
    Rng rng(1);

    RoundObservation obs;
    obs.events.assign(code.numStabilizers(), 0);
    obs.leakedLabels.assign(code.numStabilizers(), 0);
    obs.hadLrc.assign(code.numData(), 0);
    for (auto &event : obs.events)
        event = rng.bernoulli(0.03) ? 1 : 0;

    for (auto _ : state) {
        obs.round = (obs.round + 1) % 1000;
        benchmark::DoNotOptimize(policy.nextRound(obs));
    }
}
BENCHMARK(BM_LsbDliRoundDecision)->Arg(3)->Arg(7)->Arg(11);

void
BM_FrameSimRound(benchmark::State &state)
{
    const int d = (int)state.range(0);
    RotatedSurfaceCode code(d);
    FrameSimulator sim(code.numQubits(), ErrorModel::standard(1e-3),
                       Rng(2));
    RoundSchedule round = buildRoundSchedule(code, 0, {});
    for (auto _ : state) {
        sim.executeRange(round.ops.data(),
                         round.ops.data() + round.ops.size());
        benchmark::DoNotOptimize(sim.record().size());
        if (sim.record().size() > 1000000)
            sim.reset();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameSimRound)->Arg(3)->Arg(7)->Arg(11);

void
BM_BatchFrameSimRound(benchmark::State &state)
{
    // Same round as BM_FrameSimRound, but 64 shots per word: the
    // items/sec ratio between the two is the engine-level speedup.
    const int d = (int)state.range(0);
    RotatedSurfaceCode code(d);
    BatchFrameSimulator sim(code.numQubits(),
                            ErrorModel::standard(1e-3), 64, 2, 0);
    RoundSchedule round = buildRoundSchedule(code, 0, {});
    for (auto _ : state) {
        sim.executeRange(round.ops.data(),
                         round.ops.data() + round.ops.size());
        benchmark::DoNotOptimize(sim.record().size());
        if (sim.record().size() > 1000000)
            sim.reset();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BatchFrameSimRound)->Arg(3)->Arg(7)->Arg(11);

/**
 * Whole-experiment throughput of the two engines on the paper's
 * headline configuration: a d=11 memory experiment driven by the
 * ERASER policy (decode off, so the comparison isolates the
 * simulation + scheduling hot path that the batch engine replaces).
 * Compare the shots/s counters of the scalar and batched variants.
 */
void
BM_MemoryExperimentEraser(benchmark::State &state)
{
    const int d = 11;
    const unsigned batch_width = (unsigned)state.range(0);
    RotatedSurfaceCode code(d);
    ExperimentConfig cfg;
    cfg.rounds = d;
    cfg.shots = 256;
    cfg.seed = 11;
    cfg.em = ErrorModel::standard(1e-3);
    cfg.decode = false;
    cfg.batchWidth = batch_width;
    MemoryExperiment exp(code, cfg);

    uint64_t shots = 0;
    for (auto _ : state) {
        auto result = exp.run(PolicyKind::Eraser);
        benchmark::DoNotOptimize(result.lrcsScheduled);
        shots += result.shots;
    }
    state.counters["shots/s"] = benchmark::Counter(
        (double)shots, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MemoryExperimentEraser)
    ->ArgName("width")->Arg(1)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void
BM_DecodeShot(benchmark::State &state)
{
    // Decode realistic defect sets: pre-sample shots at p=1e-3.
    const int d = (int)state.range(0);
    const int rounds = 3 * d;
    RotatedSurfaceCode code(d);
    Circuit circuit = buildMemoryCircuit(code, rounds, Basis::Z);
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    MwpmDecoder decoder(dem, 1e-3);

    std::vector<std::vector<int>> shots;
    FrameSimulator sim(code.numQubits(), ErrorModel::standard(1e-3),
                       Rng(3));
    for (int i = 0; i < 32; ++i) {
        sim.run(circuit);
        shots.push_back(
            extractDefects(code, Basis::Z, rounds, sim.record())
                .defects);
    }

    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(decoder.decode(shots[i & 31]));
        ++i;
    }
}
BENCHMARK(BM_DecodeShot)->Arg(3)->Arg(7)->Arg(11)
    ->Unit(benchmark::kMicrosecond);

void
BM_BlossomDecoderShaped(benchmark::State &state)
{
    // 2n-vertex instances shaped like the decoder's reduction.
    const int n = (int)state.range(0);
    Rng rng(4);
    std::vector<MatchEdge> edges;
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n && j < i + 8; ++j) {
            edges.push_back({i, j, (int64_t)(1 + rng.randint(2000))});
            edges.push_back({n + i, n + j, 0});
        }
        edges.push_back({i, n + i, (int64_t)(1 + rng.randint(2000))});
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(
            minWeightPerfectMatching(2 * n, edges));
}
BENCHMARK(BM_BlossomDecoderShaped)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void
BM_DemBuildTiled(benchmark::State &state)
{
    const int d = (int)state.range(0);
    RotatedSurfaceCode code(d);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            buildDetectorModel(code, 10 * d, Basis::Z));
    }
}
BENCHMARK(BM_DemBuildTiled)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
