/**
 * @file
 * google-benchmark microbenchmarks of the latency-critical components:
 * the speculation + insertion path (the paper's 5 ns FPGA budget and
 * ~120 ns control window, Section 4.3), one syndrome extraction round
 * of the frame simulator, full-shot MWPM / Union-Find decodes (one-off
 * vs reusable-workspace), the blossom matcher on decoder-shaped
 * instances, and end-to-end decoded memory sweeps comparing the
 * scalar decode-per-shot loop against the batch-aware decode pipeline
 * (sparse syndromes + zero-defect fast path + dedup cache +
 * allocation-free workspaces).
 *
 * After the benchmarks run, main() emits BENCH_decode.json (override
 * the path with ERASER_BENCH_JSON, skip with ERASER_SKIP_DECODE_JSON)
 * with machine-readable scalar-vs-batched decode throughput and cache
 * hit rates (exact and round-truncated prefix keys), and
 * BENCH_simd.json (ERASER_SIMD_JSON / ERASER_SKIP_SIMD_JSON) with the
 * word-group width sweep of the decoded d=11 UF ERASER experiment, so
 * the perf trajectory is tracked across PRs.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/atomic_file.h"
#include "base/parallel.h"
#include "base/rng.h"
#include "base/simd_word.h"
#include "code/builder.h"
#include "code/ir_analysis.h"
#include "code/rotated_surface_code.h"
#include "core/policies.h"
#include "decoder/batch_decoder.h"
#include "decoder/defects.h"
#include "decoder/detector_model.h"
#include "decoder/matching.h"
#include "decoder/mwpm_decoder.h"
#include "decoder/union_find_decoder.h"
#include "exp/handwired_reference.h"
#include "exp/memory_experiment.h"
#include "exp/sweep_plan.h"
#include "legacy_decoders.h"
#include "sim/batch_frame_simulator.h"
#include "sim/frame_simulator.h"

namespace
{

using namespace qec;

void
BM_LsbDliRoundDecision(benchmark::State &state)
{
    // The whole software model of the control decision: speculation
    // over a syndrome plus LRC insertion, at the given distance.
    const int d = (int)state.range(0);
    RotatedSurfaceCode code(d);
    SwapLookupTable lookup(code);
    EraserPolicy policy(code, lookup, false);
    Rng rng(1);

    RoundObservation obs;
    obs.events.assign(code.numStabilizers(), 0);
    obs.leakedLabels.assign(code.numStabilizers(), 0);
    obs.hadLrc.assign(code.numData(), 0);
    for (auto &event : obs.events)
        event = rng.bernoulli(0.03) ? 1 : 0;

    for (auto _ : state) {
        obs.round = (obs.round + 1) % 1000;
        benchmark::DoNotOptimize(policy.nextRound(obs));
    }
}
BENCHMARK(BM_LsbDliRoundDecision)->Arg(3)->Arg(7)->Arg(11);

template <int NW>
void
runBatchControllerRound(benchmark::State &state, int d, int lanes)
{
    // Word-parallel image of BM_LsbDliRoundDecision: one controller
    // decision for a whole word-group. Items = lane decisions, so the
    // items/s ratio against BM_LsbDliRoundDecision's iterations/s is
    // the controller's lane-parallel speedup.
    using Lane = LaneWord<NW>;
    RotatedSurfaceCode code(d);
    SwapLookupTable lookup(code);
    BatchPolicySpec spec;
    spec.kind = BatchPolicyKind::Eraser;
    BatchEraserController<Lane> controller(code, lookup, spec);
    Rng rng(1);

    std::vector<Lane> events(code.numStabilizers(), Lane{});
    std::vector<Lane> labels(code.numStabilizers(), Lane{});
    std::vector<Lane> had_lrc(code.numData(), Lane{});
    for (auto &plane : events) {
        for (int l = 0; l < lanes; ++l) {
            if (rng.bernoulli(0.03))
                setLane(plane, l);
        }
    }
    const Lane live = laneMaskOf<Lane>(lanes);
    std::vector<std::vector<LrcPair>> lrcs(lanes);

    for (auto _ : state) {
        controller.nextRound(events, labels, had_lrc, live, lrcs);
        benchmark::DoNotOptimize(lrcs.data());
    }
    state.SetItemsProcessed(state.iterations() * lanes);
}

void
BM_BatchControllerRound(benchmark::State &state)
{
    const int d = (int)state.range(0);
    const int width = (int)state.range(1);
    if (width <= 64)
        runBatchControllerRound<1>(state, d, width);
    else if (width <= 256)
        runBatchControllerRound<4>(state, d, width);
    else
        runBatchControllerRound<8>(state, d, width);
}
BENCHMARK(BM_BatchControllerRound)
    ->ArgNames({"d", "width"})
    ->Args({11, 64})->Args({11, 256})->Args({11, 512});

void
BM_FrameSimRound(benchmark::State &state)
{
    const int d = (int)state.range(0);
    RotatedSurfaceCode code(d);
    FrameSimulator sim(code.numQubits(), ErrorModel::standard(1e-3),
                       Rng(2));
    RoundSchedule round = buildRoundSchedule(code, 0, {});
    for (auto _ : state) {
        sim.executeRange(round.ops.data(),
                         round.ops.data() + round.ops.size());
        benchmark::DoNotOptimize(sim.record().size());
        if (sim.record().size() > 1000000)
            sim.reset();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameSimRound)->Arg(3)->Arg(7)->Arg(11);

template <int NW>
void
runBatchFrameSimRound(benchmark::State &state, int d, int lanes)
{
    RotatedSurfaceCode code(d);
    BatchFrameSimulatorT<NW> sim(code.numQubits(),
                                 ErrorModel::standard(1e-3), lanes, 2,
                                 0);
    RoundSchedule round = buildRoundSchedule(code, 0, {});
    for (auto _ : state) {
        sim.executeRange(round.ops.data(),
                         round.ops.data() + round.ops.size());
        benchmark::DoNotOptimize(sim.record().size());
        if (sim.record().size() > 1000000)
            sim.reset();
    }
    // Items = live lanes actually simulated (sim.numLanes()), never
    // the word-group capacity: a ragged group must not inflate the
    // reported throughput.
    state.SetItemsProcessed(state.iterations() * sim.numLanes());
}

void
BM_BatchFrameSimRound(benchmark::State &state)
{
    // Same round as BM_FrameSimRound, but width shots per word-group:
    // the items/sec ratio against BM_FrameSimRound is the engine-level
    // speedup, and the ratio across widths is the SIMD plane scaling.
    const int d = (int)state.range(0);
    const int width = (int)state.range(1);
    if (width <= 64)
        runBatchFrameSimRound<1>(state, d, width);
    else if (width <= 256)
        runBatchFrameSimRound<4>(state, d, width);
    else
        runBatchFrameSimRound<8>(state, d, width);
}
BENCHMARK(BM_BatchFrameSimRound)
    ->ArgNames({"d", "width"})
    ->Args({3, 64})->Args({7, 64})->Args({11, 64})
    ->Args({11, 256})->Args({11, 512});

/**
 * Whole-experiment throughput of the two engines on the paper's
 * headline configuration: a d=11 memory experiment driven by the
 * ERASER policy (decode off, so the comparison isolates the
 * simulation + scheduling hot path that the batch engine replaces).
 * Compare the shots/s counters of the scalar and batched variants.
 */
void
BM_MemoryExperimentEraser(benchmark::State &state)
{
    const int d = 11;
    const unsigned batch_width = (unsigned)state.range(0);
    RotatedSurfaceCode code(d);
    ExperimentConfig cfg;
    cfg.rounds = d;
    cfg.shots = 256;
    cfg.seed = 11;
    cfg.em = ErrorModel::standard(1e-3);
    cfg.decode = false;
    cfg.batchWidth = batch_width;
    MemoryExperiment exp(code, cfg);

    uint64_t shots = 0;
    for (auto _ : state) {
        auto result = exp.run(PolicyKind::Eraser);
        benchmark::DoNotOptimize(result.lrcsScheduled);
        // Count executed shots, not groups * batchWidth: at width 512
        // this config runs one ragged 256-lane group per repetition
        // and must not report phantom throughput.
        shots += result.shots;
    }
    state.counters["shots/s"] = benchmark::Counter(
        (double)shots, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MemoryExperimentEraser)
    ->ArgName("width")->Arg(1)->Arg(64)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

/**
 * Worker scaling of the threaded experiment path. The region runs on
 * the process-wide persistent WorkerPool, grown to the target size
 * BEFORE the timed loop — repetitions reuse the same threads, so the
 * counters measure scaling, not thread spawn + join per measurement.
 */
void
BM_MemoryExperimentEraserWorkers(benchmark::State &state)
{
    const int d = 11;
    const unsigned workers = (unsigned)state.range(0);
    sharedWorkerPool().ensureWorkers(workers);
    RotatedSurfaceCode code(d);
    ExperimentConfig cfg;
    cfg.rounds = d;
    cfg.shots = 1024;
    cfg.seed = 11;
    cfg.em = ErrorModel::standard(1e-3);
    cfg.decode = false;
    cfg.batchWidth = 64;
    cfg.threads = workers;
    MemoryExperiment exp(code, cfg);

    const WorkerPool::Stats before = sharedWorkerPool().stats();
    uint64_t shots = 0;
    for (auto _ : state) {
        auto result = exp.run(PolicyKind::Eraser);
        benchmark::DoNotOptimize(result.lrcsScheduled);
        shots += result.shots;
    }
    const WorkerPool::Stats after = sharedWorkerPool().stats();
    state.counters["shots/s"] = benchmark::Counter(
        (double)shots, benchmark::Counter::kIsRate);
    state.counters["pool_regions"] =
        benchmark::Counter((double)(after.regions - before.regions));
}
BENCHMARK(BM_MemoryExperimentEraserWorkers)
    ->ArgName("workers")->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    // Pool threads do the work while the caller waits, so rate
    // counters must be against wall time, not main-thread CPU.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/** Pre-sampled realistic defect sets at p=1e-3. */
std::vector<std::vector<int>>
sampleShots(const RotatedSurfaceCode &code, int rounds, int count)
{
    Circuit circuit = buildMemoryCircuit(code, rounds, Basis::Z);
    std::vector<std::vector<int>> shots;
    FrameSimulator sim(code.numQubits(), ErrorModel::standard(1e-3),
                       Rng(3));
    for (int i = 0; i < count; ++i) {
        sim.run(circuit);
        shots.push_back(
            extractDefects(code, Basis::Z, rounds, sim.record())
                .defects);
    }
    return shots;
}

void
BM_DecodeShot(benchmark::State &state)
{
    // One-off MWPM decode: throwaway workspace per call (the scalar
    // path's cost model).
    const int d = (int)state.range(0);
    const int rounds = 3 * d;
    RotatedSurfaceCode code(d);
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    MwpmDecoder decoder(dem, 1e-3);
    auto shots = sampleShots(code, rounds, 32);

    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(decoder.decode(shots[i & 31]));
        ++i;
    }
}
BENCHMARK(BM_DecodeShot)->Arg(3)->Arg(7)->Arg(11)
    ->Unit(benchmark::kMicrosecond);

void
BM_DecodeShotWorkspace(benchmark::State &state)
{
    // Same shots through decodeSparse with a persistent workspace:
    // the batch pipeline's per-shot cost model (no dedup cache).
    const int d = (int)state.range(0);
    const int rounds = 3 * d;
    RotatedSurfaceCode code(d);
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    MwpmDecoder decoder(dem, 1e-3);
    auto shots = sampleShots(code, rounds, 32);

    DecodeWorkspace ws;
    size_t i = 0;
    for (auto _ : state) {
        const auto &defects = shots[i & 31];
        benchmark::DoNotOptimize(
            decoder.decodeSparse(defects.data(), defects.size(), ws));
        ++i;
    }
}
BENCHMARK(BM_DecodeShotWorkspace)->Arg(3)->Arg(7)->Arg(11)
    ->Unit(benchmark::kMicrosecond);

void
BM_UnionFindDecodeShot(benchmark::State &state)
{
    // Union-Find one-off vs workspace decode; arg1 selects the mode.
    const int d = (int)state.range(0);
    const bool workspace = state.range(1) != 0;
    const int rounds = 3 * d;
    RotatedSurfaceCode code(d);
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    UnionFindDecoder decoder(dem, 1e-3);
    auto shots = sampleShots(code, rounds, 32);

    DecodeWorkspace ws;
    size_t i = 0;
    for (auto _ : state) {
        const auto &defects = shots[i & 31];
        if (workspace)
            benchmark::DoNotOptimize(decoder.decodeSparse(
                defects.data(), defects.size(), ws));
        else
            benchmark::DoNotOptimize(decoder.decode(defects));
        ++i;
    }
}
BENCHMARK(BM_UnionFindDecodeShot)
    ->ArgNames({"d", "ws"})
    ->Args({7, 0})->Args({7, 1})->Args({11, 0})->Args({11, 1})
    ->Unit(benchmark::kMicrosecond);

void
BM_ComponentPipelineDecode(benchmark::State &state)
{
    // Component-granular / sliding-window pipeline with honest work
    // accounting: the rates are defects/s and components/s (windows/s
    // in windowed mode) over the work actually dispatched — NOT
    // shots/s over lanes that were mostly zero-defect fast-path skips,
    // which is what the old per-shot counters amounted to at p = 1e-3.
    const int d = (int)state.range(0);
    const bool windowed = state.range(1) != 0;
    const int rounds = 3 * d;
    RotatedSurfaceCode code(d);
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    UnionFindDecoder decoder(dem, 1e-3);
    auto graph = std::make_shared<const ComponentGraph>(dem, 1e-3);

    BatchDecodeOptions options;
    options.cache.enabled = false; // measure decode, not dedup replay
    if (windowed) {
        options.windowLength = 2 * d;
        options.windowSlideLength = d;
    } else {
        options.components.enabled = true;
    }
    BatchDecoder pipeline(decoder, options, graph);
    auto shots = sampleShots(code, rounds, 64);

    uint64_t defects = 0;
    size_t i = 0;
    for (auto _ : state) {
        const auto &s = shots[i & 63];
        benchmark::DoNotOptimize(
            pipeline.decodeOne(s.data(), s.size()));
        defects += s.size();
        ++i;
    }
    state.counters["defects/s"] = benchmark::Counter(
        (double)defects, benchmark::Counter::kIsRate);
    const BatchDecodeStats &st = pipeline.stats();
    if (windowed) {
        state.counters["windows/s"] = benchmark::Counter(
            (double)st.windows, benchmark::Counter::kIsRate);
        state.counters["commit_frac"] = benchmark::Counter(
            st.windowCommits + st.windowDeferrals == 0
                ? 0.0
                : (double)st.windowCommits /
                      (double)(st.windowCommits +
                               st.windowDeferrals));
    } else {
        state.counters["components/s"] = benchmark::Counter(
            (double)st.componentsTotal,
            benchmark::Counter::kIsRate);
        state.counters["component_cache_hit_rate"] =
            benchmark::Counter(st.componentCacheHitRate());
    }
}
BENCHMARK(BM_ComponentPipelineDecode)
    ->ArgNames({"d", "win"})
    ->Args({7, 0})->Args({7, 1})->Args({11, 0})->Args({11, 1})
    ->Unit(benchmark::kMicrosecond);

/**
 * End-to-end decoded throughput of the paper's headline d=11 ERASER
 * memory experiment. mode 0: all-scalar (PR 0 baseline); mode 1:
 * batched sim + scalar decode-per-shot loop (PR 1 baseline); mode 2:
 * batched sim + batch-aware decode pipeline. The mode1 -> mode2
 * shots/s ratio is the decode-pipeline speedup.
 */
void
BM_MemoryExperimentEraserDecoded(benchmark::State &state)
{
    const int d = 11;
    const int mode = (int)state.range(0);
    const bool union_find = state.range(1) != 0;
    RotatedSurfaceCode code(d);
    ExperimentConfig cfg;
    cfg.rounds = d;
    cfg.shots = 128;
    cfg.seed = 11;
    cfg.em = ErrorModel::standard(1e-3);
    cfg.decode = true;
    cfg.decoderKind = union_find ? DecoderKind::UnionFind
                                 : DecoderKind::Mwpm;
    cfg.batchWidth = mode == 0 ? 1 : 64;
    cfg.batchDecode = mode == 2;
    // Modes 0/1 decode with the frozen PR 1 decoders so the mode
    // ratios track real cross-PR speedups.
    const DecoderFactory legacy_factory =
        [union_find](const DetectorModel &dem,
                     double p) -> std::unique_ptr<Decoder> {
        if (union_find)
            return std::make_unique<LegacyUnionFindDecoder>(dem, p);
        return std::make_unique<LegacyMwpmDecoder>(dem, p);
    };
    MemoryExperiment exp =
        mode == 2 ? MemoryExperiment(code, cfg)
                  : MemoryExperiment(code, cfg, legacy_factory);

    uint64_t shots = 0;
    ExperimentResult last;
    for (auto _ : state) {
        last = exp.run(PolicyKind::Eraser);
        benchmark::DoNotOptimize(last.logicalErrors);
        shots += last.shots;
    }
    state.counters["shots/s"] = benchmark::Counter(
        (double)shots, benchmark::Counter::kIsRate);
    state.counters["cache_hit_rate"] =
        benchmark::Counter(last.syndromeCacheHitRate());
    state.counters["zero_defect_frac"] = benchmark::Counter(
        last.shots == 0 ? 0.0
                        : (double)last.zeroDefectShots /
                              (double)last.shots);
}
BENCHMARK(BM_MemoryExperimentEraserDecoded)
    ->ArgNames({"mode", "uf"})
    ->Args({0, 0})->Args({1, 0})->Args({2, 0})
    ->Args({0, 1})->Args({1, 1})->Args({2, 1})
    ->Unit(benchmark::kMillisecond);

/**
 * Circuit-IR replay against the frozen pre-IR driver it replaced
 * (exp/handwired_reference.h), on the decoded d=11 UF ERASER
 * configuration. ir=0 runs the hand-wired reference, ir=1 the
 * compiled-program replay; the shots/s ratio is the IR front end's
 * overhead, which the BENCH_decode.json pin holds within 5%.
 */
void
BM_IrReplayVsHandWired(benchmark::State &state)
{
    const bool ir = state.range(0) != 0;
    const int d = 11;
    RotatedSurfaceCode code(d);
    ExperimentConfig cfg;
    cfg.rounds = d;
    cfg.shots = 128;
    cfg.seed = 11;
    cfg.em = ErrorModel::standard(1e-3);
    cfg.decode = true;
    cfg.decoderKind = DecoderKind::UnionFind;
    cfg.batchWidth = 64;
    MemoryExperiment exp(code, cfg);
    const PolicyFactory factory = makePolicyFactory(
        PolicyKind::Eraser, exp.code(), exp.lookup(), false);

    uint64_t shots = 0;
    for (auto _ : state) {
        if (ir) {
            auto result = exp.runBatched(factory, "eraser");
            benchmark::DoNotOptimize(result.logicalErrors);
            shots += result.shots;
        } else {
            auto result = runHandwired(exp, factory);
            benchmark::DoNotOptimize(result.logicalErrors);
            shots += result.shots;
        }
    }
    state.counters["shots/s"] = benchmark::Counter(
        (double)shots, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IrReplayVsHandWired)
    ->ArgName("ir")->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

/**
 * Full IrAnalyzer pass stack (liveness, detector coverage, stream
 * accounting, LRC legality, observable reachability) over the d=11
 * surface-memory program — the cost the sweep executor pays once per
 * program-cache entry. Compile-time is excluded: the program is built
 * once outside the timing loop.
 */
void
BM_IrAnalyze(benchmark::State &state)
{
    const int d = (int)state.range(0);
    RotatedSurfaceCode code(d);
    const CircuitProgram prog = CircuitCompiler::surfaceMemory(
        code, 3 * d, Basis::Z, IrTailKind::SwapLrc);
    const ErrorModel em = ErrorModel::standard(1e-3);
    for (auto _ : state) {
        IrAnalysisReport report = IrAnalyzer::analyze(prog, em);
        benchmark::DoNotOptimize(report.diagnostics.data());
    }
    state.counters["instrs"] =
        benchmark::Counter((double)prog.instrs.size());
}
BENCHMARK(BM_IrAnalyze)
    ->ArgName("d")->Arg(3)->Arg(11)
    ->Unit(benchmark::kMicrosecond);

void
BM_BlossomDecoderShaped(benchmark::State &state)
{
    // 2n-vertex instances shaped like the decoder's reduction.
    const int n = (int)state.range(0);
    Rng rng(4);
    std::vector<MatchEdge> edges;
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n && j < i + 8; ++j) {
            edges.push_back({i, j, (int64_t)(1 + rng.randint(2000))});
            edges.push_back({n + i, n + j, 0});
        }
        edges.push_back({i, n + i, (int64_t)(1 + rng.randint(2000))});
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(
            minWeightPerfectMatching(2 * n, edges));
}
BENCHMARK(BM_BlossomDecoderShaped)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void
BM_DemBuildTiled(benchmark::State &state)
{
    const int d = (int)state.range(0);
    RotatedSurfaceCode code(d);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            buildDetectorModel(code, 10 * d, Basis::Z));
    }
}
BENCHMARK(BM_DemBuildTiled)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMillisecond);

/**
 * Machine-readable decode-throughput tracking: run the decoded ERASER
 * memory sweep at d = 7/9/11 for both decoders, once with the frozen
 * PR 1 decoders in the scalar decode-per-shot loop (the PR 1
 * baseline, re-measured on the current machine) and once with the
 * batch-aware pipeline, and write shots/s, speedup, cache hit rate
 * and zero-defect fraction as JSON. Each entry also runs the
 * component-granular stage and the 2d-row sliding window against an
 * all-caches-off reference and records the component-cache hit rate
 * plus verdicts_match_uncached / verdicts_match_windowed fingerprint
 * pins, so CI can assert both stages stayed exactness-preserving.
 */
void
emitDecodeJson()
{
    if (std::getenv("ERASER_SKIP_DECODE_JSON"))
        return;
    const char *path_env = std::getenv("ERASER_BENCH_JSON");
    const std::string path =
        path_env ? path_env : "BENCH_decode.json";
    // temp + fsync + rename: a bench killed mid-emit leaves the
    // previous artifact, never a truncated JSON CI would then parse.
    AtomicFileWriter writer;
    Status open_status = writer.open(path);
    if (!open_status.isOk()) {
        std::fprintf(stderr, "cannot write %s (%s)\n", path.c_str(),
                     open_status.toString().c_str());
        return;
    }
    FILE *out = writer.stream();

    auto shots_per_sec = [](const RotatedSurfaceCode &code,
                            const ExperimentConfig &cfg,
                            const DecoderFactory *legacy,
                            ExperimentResult *result_out) {
        MemoryExperiment exp =
            legacy ? MemoryExperiment(code, cfg, *legacy)
                   : MemoryExperiment(code, cfg);
        const auto start = std::chrono::steady_clock::now();
        auto result = exp.run(PolicyKind::Eraser);
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                start)
                                .count();
        if (result_out)
            *result_out = result;
        return (double)result.shots / (secs > 0.0 ? secs : 1e-9);
    };

    std::fprintf(out,
                 "{\n  \"bench\": \"decoded d-sweep, ERASER policy, "
                 "rounds=3d, batchWidth=64; scalar = frozen PR1 "
                 "decoders + decode-per-shot loop\",\n"
                 "  \"entries\": [\n");

    // The grid (and each point's seed) is a SweepPlan; the scalar vs
    // pipeline pairing below is this bench's own instrumentation on
    // top of it, which is why it does not go through SweepRunner.
    SweepPlan plan;
    plan.name = "decode_pipeline_tracking";
    plan.distances = {7, 9, 11};
    plan.ps = {1e-3, 1e-4};
    plan.rounds = {SweepRounds::cycles(3)};
    plan.decoders = {DecoderKind::Mwpm, DecoderKind::UnionFind};
    plan.base.batchWidth = 64;
    plan.shotsFor = [](int d, double) -> uint64_t {
        return d >= 11 ? 192 : (d >= 9 ? 320 : 512);
    };

    bool first = true;
    std::map<int, std::unique_ptr<RotatedSurfaceCode>> codes;
    for (const SweepPoint &point : plan.points()) {
        auto &code = codes[point.distance];
        if (!code)
            code = std::make_unique<RotatedSurfaceCode>(
                point.distance);
        const bool union_find =
            point.decoderKind == DecoderKind::UnionFind;
        const DecoderFactory legacy_factory =
            [union_find](const DetectorModel &dem,
                         double p) -> std::unique_ptr<Decoder> {
            if (union_find)
                return std::make_unique<LegacyUnionFindDecoder>(dem,
                                                                p);
            return std::make_unique<LegacyMwpmDecoder>(dem, p);
        };

        ExperimentConfig cfg = point.config;
        cfg.batchDecode = false;
        const double scalar_rate =
            shots_per_sec(*code, cfg, &legacy_factory, nullptr);
        cfg.batchDecode = true;
        ExperimentResult batched;
        const double batched_rate =
            shots_per_sec(*code, cfg, nullptr, &batched);
        // Approximate round-truncated prefix keying: the knob that
        // makes dedup fire at p = 1e-3 (exact keys almost never
        // repeat there). Reported side by side with the exact hit
        // rate.
        cfg.syndromeCache.truncateRounds = 2;
        ExperimentResult truncated;
        shots_per_sec(*code, cfg, nullptr, &truncated);
        cfg.syndromeCache.truncateRounds = 0;

        // Exactness pins, recorded in the artifact itself: every
        // pipeline stage must reproduce one verdict fingerprint.
        // Reference run: all caches off, no components, no window.
        cfg.syndromeCache.enabled = false;
        ExperimentResult uncached;
        shots_per_sec(*code, cfg, nullptr, &uncached);
        // Component-granular dispatch on (dedup still off, so the
        // component cache sees every nonzero lane).
        cfg.componentDecode.enabled = true;
        ExperimentResult components;
        shots_per_sec(*code, cfg, nullptr, &components);
        cfg.componentDecode.enabled = false;
        // Sliding-window streaming decode (2d-row window, d-row
        // slide).
        cfg.windowLength = 2 * point.distance;
        cfg.windowSlideLength = point.distance;
        ExperimentResult windowed;
        shots_per_sec(*code, cfg, nullptr, &windowed);

        const bool match_uncached =
            batched.verdictFingerprint ==
                uncached.verdictFingerprint &&
            components.verdictFingerprint ==
                uncached.verdictFingerprint;
        const bool match_windowed =
            windowed.verdictFingerprint ==
                uncached.verdictFingerprint &&
            windowed.windowsDecoded > 0;

        std::fprintf(
            out,
            "%s    {\"decoder\": \"%s\", \"p\": %.0e, "
            "\"d\": %d, \"rounds\": %d, \"shots\": %llu, "
            "\"seed\": %llu, "
            "\"scalar_shots_per_s\": %.1f, "
            "\"batched_shots_per_s\": %.1f, "
            "\"speedup\": %.2f, "
            "\"cache_hit_rate\": %.4f, "
            "\"cache_hit_rate_trunc2\": %.4f, "
            "\"component_cache_hit_rate\": %.4f, "
            "\"verdicts_match_uncached\": %s, "
            "\"verdicts_match_windowed\": %s, "
            "\"zero_defect_frac\": %.4f}",
            first ? "" : ",\n", decoderKindName(point.decoderKind),
            point.p, point.distance, point.rounds,
            (unsigned long long)point.shots,
            (unsigned long long)point.seed, scalar_rate,
            batched_rate, batched_rate / scalar_rate,
            batched.syndromeCacheHitRate(),
            truncated.syndromeCacheHitRate(),
            components.componentCacheHitRate(),
            match_uncached ? "true" : "false",
            match_windowed ? "true" : "false",
            (double)batched.zeroDefectShots /
                (double)batched.shots);
        first = false;
    }
    // Circuit-IR replay pins: the compiled-program front end must
    // reproduce the frozen pre-IR driver's verdict fingerprint
    // exactly and stay within 5% of its throughput on the decoded
    // d=11 UF ERASER configuration. CI greps both fields from the
    // artifact; the hand-wired side is the verbatim pre-IR runGroupT
    // kept in exp/handwired_reference.h.
    {
        const int d = 11;
        RotatedSurfaceCode ir_code(d);
        ExperimentConfig cfg;
        cfg.rounds = 3 * d;
        cfg.shots = 192;
        cfg.seed = 11;
        cfg.em = ErrorModel::standard(1e-3);
        cfg.decode = true;
        cfg.decoderKind = DecoderKind::UnionFind;
        cfg.batchWidth = 64;
        cfg.batchDecode = true;
        MemoryExperiment exp(ir_code, cfg);
        const PolicyFactory factory = makePolicyFactory(
            PolicyKind::Eraser, exp.code(), exp.lookup(), false);

        uint64_t hand_fp = 0;
        uint64_t ir_fp = 0;
        double hand_rate = 0.0;
        double ir_rate = 0.0;
        // Best-of-3 each: both paths run identical work, so the max
        // rates are stable enough for a 5% gate.
        for (int rep = 0; rep < 3; ++rep) {
            auto t0 = std::chrono::steady_clock::now();
            const HandwiredResult hand = runHandwired(exp, factory);
            double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
            hand_fp = hand.verdictFingerprint;
            const double hr =
                (double)hand.shots / (secs > 0.0 ? secs : 1e-9);
            hand_rate = hr > hand_rate ? hr : hand_rate;

            t0 = std::chrono::steady_clock::now();
            const ExperimentResult replay =
                exp.runBatched(factory, "eraser");
            secs = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
            ir_fp = replay.verdictFingerprint;
            const double ir =
                (double)replay.shots / (secs > 0.0 ? secs : 1e-9);
            ir_rate = ir > ir_rate ? ir : ir_rate;
        }
        const double ratio =
            ir_rate / (hand_rate > 0.0 ? hand_rate : 1e-9);
        // Static-analysis pin: the exact program this entry replays
        // must pass the full IrAnalyzer stack with zero Error
        // diagnostics under the bench error model.
        const CircuitProgram analyzed_prog =
            CircuitCompiler::surfaceMemory(ir_code, cfg.rounds,
                                           Basis::Z,
                                           IrTailKind::SwapLrc);
        const bool analysis_clean =
            !IrAnalyzer::analyze(analyzed_prog, cfg.em).hasErrors();
        std::fprintf(
            out,
            "\n  ],\n  \"ir_replay\": "
            "{\"decoder\": \"%s\", \"d\": %d, \"rounds\": %d, "
            "\"shots\": %llu, "
            "\"handwired_shots_per_s\": %.1f, "
            "\"ir_shots_per_s\": %.1f, "
            "\"ir_replay_speed_vs_handwired\": %.3f, "
            "\"ir_replay_within_5pct\": %s, "
            "\"ir_verdicts_match_handwired\": %s, "
            "\"ir_analysis_clean\": %s}\n}\n",
            decoderKindName(DecoderKind::UnionFind), d, cfg.rounds,
            (unsigned long long)cfg.shots, hand_rate, ir_rate, ratio,
            ratio >= 0.95 ? "true" : "false",
            hand_fp == ir_fp ? "true" : "false",
            analysis_clean ? "true" : "false");
    }
    Status commit_status = writer.commit();
    if (!commit_status.isOk()) {
        std::fprintf(stderr, "cannot write %s (%s)\n", path.c_str(),
                     commit_status.toString().c_str());
        return;
    }
    std::printf("wrote %s\n", path.c_str());
}

/**
 * SIMD width-scaling tracking: run the decoded d=11 UF ERASER sweep
 * (rounds = 3d, 1 worker so the ratio is pure per-core width scaling,
 * not thread-count effects) at word-group widths 64/256/512 and write
 * shots/s and the speedup over the width-64 anchor as JSON, together
 * with the engine's compiled backend, the host's recommended width
 * and a "width_scaling" summary block (the p = 1e-3 wide-width
 * speedups regressions are watched on). All widths run the same seed,
 * so `verdicts_match_64` pins the cross-width bit-identity of the
 * word-parallel controller in the artifact itself. Rates divide by
 * executed shots (per-group live lanes), never by
 * groups * batchWidth, so ragged tail groups cannot inflate them.
 */
void
emitSimdJson()
{
    if (std::getenv("ERASER_SKIP_SIMD_JSON"))
        return;
    const char *path_env = std::getenv("ERASER_SIMD_JSON");
    const std::string path = path_env ? path_env : "BENCH_simd.json";
    AtomicFileWriter writer;
    Status open_status = writer.open(path);
    if (!open_status.isOk()) {
        std::fprintf(stderr, "cannot write %s (%s)\n", path.c_str(),
                     open_status.toString().c_str());
        return;
    }
    FILE *out = writer.stream();

    std::fprintf(
        out,
        "{\n  \"bench\": \"decoded d=11 UF ERASER sweep, rounds=3d, "
        "1 core, word-group width sweep; width 64 is the "
        "bit-identical pre-SIMD anchor and all widths decode the "
        "same shots\",\n"
        "  \"engine_backend\": \"%s\",\n"
        "  \"recommended_width\": %d,\n"
        "  \"entries\": [\n",
        simdBackendName(), recommendedBatchWidth());

    // Width sweep as a SweepPlan: the width axis is excluded from the
    // derived per-point seed, so all widths of one p decode the same
    // shots by construction — exactly what verdicts_match_64 pins.
    SweepPlan plan;
    plan.name = "simd_width_tracking";
    plan.distances = {11};
    plan.ps = {1e-3, 1e-4};
    plan.rounds = {SweepRounds::cycles(3)};
    plan.widths = {64, 256, 512};
    plan.base.decoderKind = DecoderKind::UnionFind;
    plan.base.threads = 1;
    plan.shotsFor = [](int, double p) -> uint64_t {
        return p < 5e-4 ? 3072 : 1536;
    };

    RotatedSurfaceCode code(11);
    bool first = true;
    double scale_256 = 0.0, scale_512 = 0.0;
    bool warmed = false;
    double base_rate = 0.0;
    uint64_t base_errors = 0;
    uint64_t base_fingerprint = 0;
    for (const SweepPoint &point : plan.points()) {
        MemoryExperiment exp(code, point.config);
        // Best-of-3 (after one warm-up for the whole sweep):
        // single-run wall times on shared hosts carry enough
        // scheduler noise to swamp the width ratios this artifact
        // exists to track.
        if (!warmed) {
            exp.run(PolicyKind::Eraser);
            warmed = true;
        }
        double rate = 0.0;
        ExperimentResult result;
        for (int rep = 0; rep < 3; ++rep) {
            const auto start = std::chrono::steady_clock::now();
            result = exp.run(PolicyKind::Eraser);
            const double secs =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            rate = std::max(rate, (double)result.shots /
                                      (secs > 0.0 ? secs : 1e-9));
        }
        if (point.batchWidth == 64) {
            base_rate = rate;
            base_errors = result.logicalErrors;
            base_fingerprint = result.verdictFingerprint;
        }
        const double speedup =
            base_rate > 0.0 ? rate / base_rate : 1.0;
        if (point.p == 1e-3 && point.batchWidth == 256)
            scale_256 = speedup;
        if (point.p == 1e-3 && point.batchWidth == 512)
            scale_512 = speedup;
        // Per-shot identity, not just equal error counts: the
        // fingerprint is an order-independent XOR over every
        // (shot, verdict) pair, so compensating flips cannot fake
        // a match.
        const bool verdicts_match =
            result.logicalErrors == base_errors &&
            result.verdictFingerprint == base_fingerprint;
        std::fprintf(out,
                     "%s    {\"p\": %.0e, \"width\": %u, "
                     "\"shots\": %llu, \"seed\": %llu, "
                     "\"logical_errors\": %llu, "
                     "\"verdicts_match_64\": %s, "
                     "\"shots_per_s\": %.1f, "
                     "\"speedup_vs_64\": %.3f}",
                     first ? "" : ",\n", point.p, point.batchWidth,
                     (unsigned long long)result.shots,
                     (unsigned long long)point.seed,
                     (unsigned long long)result.logicalErrors,
                     verdicts_match ? "true" : "false", rate,
                     speedup);
        first = false;
    }
    std::fprintf(out,
                 "\n  ],\n"
                 "  \"width_scaling\": {\"p\": 1e-3, "
                 "\"speedup_256_vs_64\": %.3f, "
                 "\"speedup_512_vs_64\": %.3f}\n}\n",
                 scale_256, scale_512);
    Status commit_status = writer.commit();
    if (!commit_status.isOk()) {
        std::fprintf(stderr, "cannot write %s (%s)\n", path.c_str(),
                     commit_status.toString().c_str());
        return;
    }
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    emitDecodeJson();
    emitSimdJson();
    return 0;
}
