/**
 * @file
 * Ablation of the Leakage Speculation Block threshold (the trade-off
 * of Section 4.1.2 / Insight #2): speculating on half the neighbours
 * (more conservative, boundary qubits fire on one flip) vs the paper's
 * at-least-two rule vs requiring every neighbour to flip (aggressive).
 * Conservative thresholds schedule more LRCs and add operations;
 * aggressive thresholds let leakage linger (higher FNR).
 */

#include <cstdio>

#include "bench_util.h"

using namespace qec;

int
main()
{
    banner("LSB threshold ablation", "Section 4.1.2, Insight #2");

    RotatedSurfaceCode code(7);
    SwapLookupTable lookup(code);

    ExperimentConfig cfg;
    cfg.rounds = 70;
    cfg.shots = scaledShots(1200);
    cfg.seed = 72;
    cfg.trackLpr = true;
    MemoryExperiment exp(code, cfg);

    struct Row
    {
        const char *name;
        LsbThreshold threshold;
    };
    const Row rows[] = {
        {"half-neighbours (conservative)", LsbThreshold::HalfNeighbors},
        {"at-least-two (paper)", LsbThreshold::AtLeastTwo},
        {"all-neighbours (aggressive)", LsbThreshold::AllNeighbors},
    };

    std::printf("%-32s %12s %12s %9s %9s\n", "threshold", "LER",
                "LRCs/round", "FPR", "FNR");
    for (const auto &row : rows) {
        auto factory = [&code, &lookup, &row]() {
            return std::make_unique<EraserPolicy>(
                code, lookup, false, row.threshold);
        };
        auto result = exp.run(factory, row.name);
        std::printf("%-32s %12s %12.3f %8.2f%% %8.1f%%\n", row.name,
                    lerCell(result).c_str(), result.avgLrcsPerRound(),
                    result.falsePositiveRate() * 100.0,
                    result.falseNegativeRate() * 100.0);
    }
    std::printf("\nExpectation: the paper's middle threshold balances\n"
                "extra-LRC errors (FPR) against lingering leakage\n"
                "(FNR); both extremes lose logical fidelity.\n");
    return 0;
}
