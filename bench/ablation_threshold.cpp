/**
 * @file
 * Ablation of the Leakage Speculation Block threshold (the trade-off
 * of Section 4.1.2 / Insight #2): speculating on half the neighbours
 * (more conservative, boundary qubits fire on one flip) vs the paper's
 * at-least-two rule vs requiring every neighbour to flip (aggressive).
 * Conservative thresholds schedule more LRCs and add operations;
 * aggressive thresholds let leakage linger (higher FNR).
 */

#include <cstdio>

#include "bench_util.h"
#include "exp/sweep_runner.h"

using namespace qec;

namespace
{

SweepPolicy
variant(const char *name, LsbThreshold threshold)
{
    return SweepPolicy(
        name,
        [threshold](const RotatedSurfaceCode &code,
                    const SwapLookupTable &lookup) -> PolicyFactory {
            return [&code, &lookup, threshold]() {
                return std::make_unique<EraserPolicy>(code, lookup,
                                                      false,
                                                      threshold);
            };
        });
}

} // namespace

int
main()
{
    banner("LSB threshold ablation", "Section 4.1.2, Insight #2");

    SweepPlan plan;
    plan.name = "ablation_threshold";
    plan.distances = {7};
    plan.rounds = {SweepRounds::exactly(70)};
    plan.policies = {
        variant("half-neighbours (conservative)",
                LsbThreshold::HalfNeighbors),
        variant("at-least-two (paper)", LsbThreshold::AtLeastTwo),
        variant("all-neighbours (aggressive)",
                LsbThreshold::AllNeighbors),
    };
    plan.base.trackLpr = true;
    plan.base.shots = scaledShots(1200);

    CollectSink collect;
    SweepRunner runner(plan);
    runner.addSink(collect);
    runner.run();

    std::printf("%-32s %12s %12s %9s %9s\n", "threshold", "LER",
                "LRCs/round", "FPR", "FNR");
    for (const ExperimentResult &result :
         collect.points.front().results) {
        std::printf("%-32s %12s %12.3f %8.2f%% %8.1f%%\n",
                    result.policy.c_str(), lerCell(result).c_str(),
                    result.avgLrcsPerRound(),
                    result.falsePositiveRate() * 100.0,
                    result.falseNegativeRate() * 100.0);
    }
    std::printf("\nExpectation: the paper's middle threshold balances\n"
                "extra-LRC errors (FPR) against lingering leakage\n"
                "(FNR); both extremes lose logical fidelity.\n");
    return 0;
}
