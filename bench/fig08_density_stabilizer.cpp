/**
 * @file
 * Reproduces Fig. 8: the density-matrix characterization of leakage
 * spreading across a single Z stabilizer (Section 3.3). Prints, for
 * every circuit step, each qubit's leakage probability and the
 * probability that measuring the parity qubit yields the correct (0)
 * outcome, with the paper's A / B / C points annotated.
 */

#include <cstdio>

#include "density/stabilizer_study.h"

using namespace qec;

int
main()
{
    std::printf("==========================================================\n");
    std::printf("Density-matrix study of a leaked Z stabilizer\n");
    std::printf("Reproduces: Figs. 7-8, Section 3.3 (q0 starts in |2>,\n");
    std::printf("RX(0.65*pi) Sycamore-calibrated error, ququarts)\n");
    std::printf("==========================================================\n");

    auto steps = runStabilizerLeakageStudy();

    std::printf("%-16s %2s %9s %8s %8s %8s %11s\n", "step", "", "P",
                "q1", "q2", "q3", "P(read 0)");
    for (const auto &s : steps) {
        std::printf("%-16s %2s %9.4f %8.4f %8.4f %8.4f %11.4f\n",
                    s.label.c_str(), s.marker.c_str(), s.leakParity,
                    s.leakData[1], s.leakData[2], s.leakData[3],
                    s.reportZeroParity);
    }

    std::printf("\nPaper markers: A = end of the LRC SWAP (P has\n"
                "picked up leakage from q0); B = CNOT #4 (first\n"
                "disturbance of P's readout); C = just before the\n"
                "round-2 measurement (outcome near random).\n");
    return 0;
}
