/**
 * @file
 * Reproduces Fig. 5: leakage population ratio (total / data / parity)
 * over 70 syndrome extraction rounds for a d=7 code under Always-LRCs
 * at p=1e-3. The paper's signature: the LPR spikes after LRC rounds
 * (transport pushes leakage onto parity qubits) and creeps upward over
 * time.
 */

#include <cstdio>

#include "bench_util.h"
#include "exp/sweep_runner.h"

using namespace qec;

int
main()
{
    banner("Leakage population ratio under Always-LRCs (d = 7)",
           "Fig. 5, Section 3.1.3");

    SweepPlan plan;
    plan.name = "fig05_lpr_always";
    plan.distances = {7};
    plan.rounds = {SweepRounds::exactly(70)};
    plan.policies = {PolicyKind::Always};
    plan.base.decode = false;
    plan.base.trackLpr = true;
    plan.base.batchWidth = 64;   // bit-packed batch engine
    plan.base.shots = scaledShots(4000);

    SweepRunner runner(plan);
    CollectSink collect;
    runner.addSink(collect);
    runner.run();

    const ExperimentResult &result =
        collect.points.front().results.front();
    const int rounds = collect.points.front().point.rounds;

    std::printf("%6s %12s %12s %12s\n", "round", "total(1e-4)",
                "data(1e-4)", "parity(1e-4)");
    for (int r = 0; r < rounds; ++r) {
        std::printf("%6d %12.2f %12.2f %12.2f\n", r,
                    result.lprTotal(r) * 1e4, result.lprData(r) * 1e4,
                    result.lprParity(r) * 1e4);
    }

    // Quantify the paper's two observations.
    double odd_parity = 0.0;
    double even_parity = 0.0;
    for (int r = 40; r < 70; ++r) {
        // LRC rounds are the odd rounds; their end-of-round parity
        // leakage includes freshly transported population.
        ((r % 2 == 1) ? odd_parity : even_parity) +=
            result.lprParity(r);
    }
    std::printf("\nLate-half parity LPR, end of LRC rounds:    %.2f"
                " (1e-4)\n", odd_parity / 15.0 * 1e4);
    std::printf("Late-half parity LPR, end of plain rounds:  %.2f"
                " (1e-4)\n", even_parity / 15.0 * 1e4);
    std::printf("LPR drift (round 69 vs round 9, total):     %.2fx\n",
                result.lprTotal(69) /
                    (result.lprTotal(9) + 1e-12));
    std::printf("\nPaper shape: spikes after rounds with LRCs and a\n"
                "rising trend across 70 rounds (Fig. 5).\n");
    return 0;
}
