/**
 * @file
 * Extensions along the paper's future-work axes:
 *
 * 1. Evidence-accumulating speculation ("more sophisticated
 *    speculation strategies ... appear to be a rich and promising area
 *    for future research", Section 8): a per-qubit saturating counter
 *    that catches single-flip leakage across rounds, attacking the FNR
 *    the paper identifies as the dominant loss.
 *
 * 2. Post-processing rejection (the Section 7.1 contrast): flag and
 *    discard leakage-suspect trials offline, as the Google experiments
 *    do. Works for memory benchmarking — at the price of throwing away
 *    shots, which a computation cannot do.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/evidence_policy.h"
#include "exp/postselection.h"
#include "exp/sweep_runner.h"

using namespace qec;

int
main()
{
    banner("Future-work extensions: evidence LSB and post-selection",
           "Sections 6.4.2, 7.1 and 8 (future work)");

    SweepPlan plan;
    plan.name = "extension_speculation";
    plan.distances = {7};
    plan.rounds = {SweepRounds::exactly(70)};
    plan.policies = {
        SweepPolicy(PolicyKind::Eraser),
        SweepPolicy("ERASER+EV",
                    [](const RotatedSurfaceCode &code,
                       const SwapLookupTable &lookup) -> PolicyFactory {
                        return [&code, &lookup]() {
                            return std::make_unique<
                                EvidenceEraserPolicy>(code, lookup);
                        };
                    }),
        SweepPolicy(PolicyKind::EraserM),
    };
    plan.base.trackLpr = true;
    plan.base.shots = scaledShots(1500);

    CollectSink collect;
    SweepRunner runner(plan);
    runner.addSink(collect);
    runner.run();

    std::printf("Speculation strategies (d = 7, 10 cycles):\n");
    std::printf("%-12s %12s %12s %9s %9s\n", "policy", "LER",
                "LRCs/round", "FNR", "FPR");
    for (const ExperimentResult &r :
         collect.points.front().results) {
        std::printf("%-12s %12s %12.3f %8.1f%% %8.2f%%\n",
                    r.policy.c_str(), lerCell(r).c_str(),
                    r.avgLrcsPerRound(),
                    r.falseNegativeRate() * 100.0,
                    r.falsePositiveRate() * 100.0);
    }
    std::printf("\nEvidence accumulation attacks the same FNR that\n"
                "ERASER+M needs multi-level readout for — with zero\n"
                "hardware beyond a per-qubit counter.\n\n");

    std::printf("Post-processing rejection vs real-time suppression"
                " (d = 5, 10 cycles):\n");
    RotatedSurfaceCode small(5);
    ExperimentConfig ps_cfg;
    ps_cfg.rounds = 50;
    ps_cfg.shots = scaledShots(3000);
    // Post-selection shares the sweep seed contract: same physical
    // tuple, same streams as any sweep over this scenario.
    ps_cfg.seed = sweepPointSeed(5, ps_cfg.rounds, ps_cfg.basis,
                                 ps_cfg.protocol, ps_cfg.em);
    ps_cfg.batchWidth = 64;   // batched sim + decode pipeline
    ShotRateTimer ps_timer;
    auto ps = runPostSelectedExperiment(small, ps_cfg);
    ps_timer.report(ps_cfg.shots, "post-selection (batched pipeline)");

    MemoryExperiment small_exp(small, ps_cfg);
    auto small_eraser = small_exp.run(PolicyKind::Eraser);

    std::printf("%-26s %12s %14s\n", "strategy", "LER",
                "shots kept");
    std::printf("%-26s %12.3e %13.1f%%\n", "No-LRC (all shots)",
                ps.lerAll(), 100.0);
    std::printf("%-26s %12.3e %13.1f%%\n",
                "No-LRC + post-selection", ps.lerKept(),
                ps.keptFraction() * 100.0);
    std::printf("%-26s %12s %14s\n", "ERASER (real time)",
                lerCell(small_eraser).c_str(), "100.0%");
    std::printf("\nPost-selection buys fidelity by discarding %.0f%%\n"
                "of trials — fine for benchmarking, unusable inside a\n"
                "computation. ERASER keeps every shot (Section 7.1).\n",
                (1.0 - ps.keptFraction()) * 100.0);
    return 0;
}
