/**
 * @file
 * Extensions along the paper's future-work axes:
 *
 * 1. Evidence-accumulating speculation ("more sophisticated
 *    speculation strategies ... appear to be a rich and promising area
 *    for future research", Section 8): a per-qubit saturating counter
 *    that catches single-flip leakage across rounds, attacking the FNR
 *    the paper identifies as the dominant loss.
 *
 * 2. Post-processing rejection (the Section 7.1 contrast): flag and
 *    discard leakage-suspect trials offline, as the Google experiments
 *    do. Works for memory benchmarking — at the price of throwing away
 *    shots, which a computation cannot do.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/evidence_policy.h"
#include "exp/postselection.h"

using namespace qec;

int
main()
{
    banner("Future-work extensions: evidence LSB and post-selection",
           "Sections 6.4.2, 7.1 and 8 (future work)");

    RotatedSurfaceCode code(7);
    SwapLookupTable lookup(code);

    ExperimentConfig cfg;
    cfg.rounds = 70;
    cfg.shots = scaledShots(1500);
    cfg.seed = 99;
    cfg.trackLpr = true;
    MemoryExperiment exp(code, cfg);

    std::printf("Speculation strategies (d = 7, 10 cycles):\n");
    std::printf("%-12s %12s %12s %9s %9s\n", "policy", "LER",
                "LRCs/round", "FNR", "FPR");
    auto eraser = exp.run(PolicyKind::Eraser);
    auto evidence = exp.run(
        [&]() {
            return std::make_unique<EvidenceEraserPolicy>(code,
                                                          lookup);
        },
        "ERASER+EV");
    auto eraser_m = exp.run(PolicyKind::EraserM);
    for (const auto *r : {&eraser, &evidence, &eraser_m}) {
        std::printf("%-12s %12s %12.3f %8.1f%% %8.2f%%\n",
                    r->policy.c_str(), lerCell(*r).c_str(),
                    r->avgLrcsPerRound(),
                    r->falseNegativeRate() * 100.0,
                    r->falsePositiveRate() * 100.0);
    }
    std::printf("\nEvidence accumulation attacks the same FNR that\n"
                "ERASER+M needs multi-level readout for — with zero\n"
                "hardware beyond a per-qubit counter.\n\n");

    std::printf("Post-processing rejection vs real-time suppression"
                " (d = 5, 10 cycles):\n");
    RotatedSurfaceCode small(5);
    ExperimentConfig ps_cfg;
    ps_cfg.rounds = 50;
    ps_cfg.shots = scaledShots(3000);
    ps_cfg.seed = 100;
    ps_cfg.batchWidth = 64;   // batched sim + decode pipeline
    ShotRateTimer ps_timer;
    auto ps = runPostSelectedExperiment(small, ps_cfg);
    ps_timer.report(ps_cfg.shots, "post-selection (batched pipeline)");

    MemoryExperiment small_exp(small, ps_cfg);
    auto small_eraser = small_exp.run(PolicyKind::Eraser);

    std::printf("%-26s %12s %14s\n", "strategy", "LER",
                "shots kept");
    std::printf("%-26s %12.3e %13.1f%%\n", "No-LRC (all shots)",
                ps.lerAll(), 100.0);
    std::printf("%-26s %12.3e %13.1f%%\n",
                "No-LRC + post-selection", ps.lerKept(),
                ps.keptFraction() * 100.0);
    std::printf("%-26s %12s %14s\n", "ERASER (real time)",
                lerCell(small_eraser).c_str(), "100.0%");
    std::printf("\nPost-selection buys fidelity by discarding %.0f%%\n"
                "of trials — fine for benchmarking, unusable inside a\n"
                "computation. ERASER keeps every shot (Section 7.1).\n",
                (1.0 - ps.keptFraction()) * 100.0);
    return 0;
}
