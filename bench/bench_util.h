/**
 * @file
 * Shared helpers for the figure/table reproduction benches: shot-count
 * scaling via the ERASER_SHOTS environment variable, and uniform table
 * printing so bench_output.txt reads like the paper's evaluation.
 */

#ifndef QEC_BENCH_BENCH_UTIL_H
#define QEC_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/memory_experiment.h"

namespace qec
{

/** Multiplier applied to every bench's default shot count. */
inline double
shotScale()
{
    const char *env = std::getenv("ERASER_SHOTS");
    if (!env)
        return 1.0;
    const double scale = std::atof(env);
    return scale > 0.0 ? scale : 1.0;
}

inline uint64_t
scaledShots(uint64_t base)
{
    const uint64_t shots = (uint64_t)((double)base * shotScale());
    return shots < 8 ? 8 : shots;
}

/** Print the bench banner with the paper artifact it reproduces. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::printf("==========================================================\n");
    std::printf("%s\n", what.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("(shots scale with env ERASER_SHOTS; current x%.2g)\n",
                shotScale());
    std::printf("==========================================================\n");
}

/** LER cell: value or the <1/shots bound when nothing was observed. */
inline std::string
lerCell(const ExperimentResult &r)
{
    char buf[40];
    if (r.logicalErrors == 0) {
        std::snprintf(buf, sizeof(buf), "<%.1e",
                      1.0 / (double)r.shots);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3e", r.ler());
    }
    return buf;
}

/** Wall-clock shots/sec reporting for the heavy reproduction benches,
 *  so the batched engine's throughput is visible in bench_output. */
class ShotRateTimer
{
  public:
    ShotRateTimer() : start_(std::chrono::steady_clock::now()) {}

    void
    report(uint64_t shots, const std::string &what) const
    {
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                start_)
                                .count();
        std::printf("[rate] %s: %llu shots in %.2fs (%.0f shots/s)\n",
                    what.c_str(), (unsigned long long)shots, secs,
                    (double)shots / (secs > 0.0 ? secs : 1.0));
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Ratio cell; "-" when the denominator is unresolved. */
inline std::string
ratioCell(const ExperimentResult &num, const ExperimentResult &den)
{
    char buf[40];
    if (num.logicalErrors == 0 || den.logicalErrors == 0)
        return "-";
    std::snprintf(buf, sizeof(buf), "%.2fx", num.ler() / den.ler());
    return buf;
}

} // namespace qec

#endif // QEC_BENCH_BENCH_UTIL_H
