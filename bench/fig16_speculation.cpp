/**
 * @file
 * Reproduces Fig. 16: (top) LRC speculation accuracy vs distance for
 * Always-LRCs / ERASER / ERASER+M (Optimal is 100% by construction);
 * (bottom) false-positive and false-negative rates at d=11 over 10
 * cycles. Paper shape: ERASER(+M) ~97% accurate vs ~50% for
 * Always-LRCs; ERASER's FPR ~3% vs 50%; FNR ~50% improved to ~40% by
 * multi-level readout.
 */

#include <cstdio>

#include "bench_util.h"
#include "exp/sweep_runner.h"

using namespace qec;

int
main()
{
    banner("Speculation accuracy and FPR/FNR",
           "Fig. 16, Section 6.4");

    SweepPlan plan;
    plan.name = "fig16_speculation";
    plan.distances = {3, 5, 7, 9, 11};
    plan.rounds = {SweepRounds::cycles(10)};
    plan.policies = {PolicyKind::Always, PolicyKind::Eraser,
                     PolicyKind::EraserM, PolicyKind::Optimal};
    plan.base.decode = false;
    plan.base.batchWidth = 64;   // bit-packed batch engine
    plan.shotsFor = [](int d, double) {
        return scaledShots(4000 / (uint64_t)d);
    };

    TableSink::Options options;
    options.metric = TableSink::Metric::Accuracy;
    TableSink table(options);
    CollectSink collect;
    SweepRunner runner(plan);
    runner.addSink(table);
    runner.addSink(collect);
    runner.run();

    const PointResult &d11 = collect.points.back();
    std::printf("\nFPR / FNR at d = 11 over 10 QEC cycles:\n");
    std::printf("%14s %10s %10s\n", "policy", "FPR", "FNR");
    const char *names[] = {"Always-LRCs", "ERASER", "ERASER+M"};
    for (int i = 0; i < 3; ++i) {
        std::printf("%14s %9.1f%% %9.1f%%\n", names[i],
                    d11.results[i].falsePositiveRate() * 100.0,
                    d11.results[i].falseNegativeRate() * 100.0);
    }
    std::printf("\nPaper shape: ERASER ~97%% accurate (Always ~50%%);\n"
                "tiny FPR; FNR ~50%% falling to ~40%% with ERASER+M.\n");
    return 0;
}
