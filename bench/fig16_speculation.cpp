/**
 * @file
 * Reproduces Fig. 16: (top) LRC speculation accuracy vs distance for
 * Always-LRCs / ERASER / ERASER+M (Optimal is 100% by construction);
 * (bottom) false-positive and false-negative rates at d=11 over 10
 * cycles. Paper shape: ERASER(+M) ~97% accurate vs ~50% for
 * Always-LRCs; ERASER's FPR ~3% vs 50%; FNR ~50% improved to ~40% by
 * multi-level readout.
 */

#include <cstdio>

#include "bench_util.h"

using namespace qec;

int
main()
{
    banner("Speculation accuracy and FPR/FNR",
           "Fig. 16, Section 6.4");

    std::printf("%4s %14s %10s %10s %10s\n", "d", "Always-LRCs",
                "ERASER", "ERASER+M", "Optimal");
    ExperimentResult d11_always;
    ExperimentResult d11_eraser;
    ExperimentResult d11_eraser_m;
    ShotRateTimer timer;
    uint64_t shots_run = 0;
    for (int d : {3, 5, 7, 9, 11}) {
        RotatedSurfaceCode code(d);
        ExperimentConfig cfg;
        cfg.rounds = 10 * d;
        cfg.shots = scaledShots(4000 / (uint64_t)d);
        cfg.seed = 16000 + d;
        cfg.decode = false;
        cfg.batchWidth = 64;   // bit-packed batch engine
        MemoryExperiment exp(code, cfg);
        shots_run += 4 * cfg.shots;

        auto always = exp.run(PolicyKind::Always);
        auto eraser = exp.run(PolicyKind::Eraser);
        auto eraser_m = exp.run(PolicyKind::EraserM);
        auto optimal = exp.run(PolicyKind::Optimal);
        std::printf("%4d %13.1f%% %9.1f%% %9.1f%% %9.1f%%\n", d,
                    always.speculationAccuracy() * 100.0,
                    eraser.speculationAccuracy() * 100.0,
                    eraser_m.speculationAccuracy() * 100.0,
                    optimal.speculationAccuracy() * 100.0);
        if (d == 11) {
            d11_always = always;
            d11_eraser = eraser;
            d11_eraser_m = eraser_m;
        }
    }

    timer.report(shots_run, "fig16 sweep (batched engine)");

    std::printf("\nFPR / FNR at d = 11 over 10 QEC cycles:\n");
    std::printf("%14s %10s %10s\n", "policy", "FPR", "FNR");
    std::printf("%14s %9.1f%% %9.1f%%\n", "Always-LRCs",
                d11_always.falsePositiveRate() * 100.0,
                d11_always.falseNegativeRate() * 100.0);
    std::printf("%14s %9.1f%% %9.1f%%\n", "ERASER",
                d11_eraser.falsePositiveRate() * 100.0,
                d11_eraser.falseNegativeRate() * 100.0);
    std::printf("%14s %9.1f%% %9.1f%%\n", "ERASER+M",
                d11_eraser_m.falsePositiveRate() * 100.0,
                d11_eraser_m.falseNegativeRate() * 100.0);
    std::printf("\nPaper shape: ERASER ~97%% accurate (Always ~50%%);\n"
                "tiny FPR; FNR ~50%% falling to ~40%% with ERASER+M.\n");
    return 0;
}
