/**
 * @file
 * Reproduces Fig. 14: logical error rate vs code distance (3..11) for
 * Always-LRCs, ERASER, ERASER+M and Optimal scheduling over 10 QEC
 * cycles, at p = 1e-3 (top) and p = 1e-4 (bottom).
 *
 * Paper shape: ERASER beats Always-LRCs by 3.3x on average (up to
 * 4.3x); ERASER+M approaches Optimal (8.6x average, up to 26x). At
 * p = 1e-4 ERASER's advantage grows (5.4x average) and low-LER points
 * become unmeasurable (the paper could not resolve d >= 9 for
 * ERASER+M/Optimal with 100M shots; we print <1/shots bounds).
 *
 * Default shot counts shrink with distance to keep the suite fast;
 * scale up with ERASER_SHOTS for tighter error bars.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace qec;

namespace
{

void
sweep(double p)
{
    std::printf("---- p = %.0e, 10 QEC cycles ----\n", p);
    std::printf("%4s %8s %12s %12s %12s %12s %18s\n", "d", "shots",
                "Always", "ERASER", "ERASER+M", "Optimal",
                "ERASER/Always gain");
    ShotRateTimer timer;
    uint64_t shots_run = 0;
    for (int d : {3, 5, 7, 9, 11}) {
        RotatedSurfaceCode code(d);
        ExperimentConfig cfg;
        cfg.rounds = 10 * d;
        cfg.em = ErrorModel::standard(p);
        cfg.shots = scaledShots(90000 / (uint64_t)(d * d));
        cfg.seed = 14000 + d + (p < 5e-4 ? 100 : 0);
        cfg.batchWidth = 64;   // bit-packed batch engine
        MemoryExperiment exp(code, cfg);

        auto always = exp.run(PolicyKind::Always);
        auto eraser = exp.run(PolicyKind::Eraser);
        auto eraser_m = exp.run(PolicyKind::EraserM);
        auto optimal = exp.run(PolicyKind::Optimal);

        std::printf("%4d %8llu %12s %12s %12s %12s %18s\n", d,
                    (unsigned long long)cfg.shots,
                    lerCell(always).c_str(), lerCell(eraser).c_str(),
                    lerCell(eraser_m).c_str(),
                    lerCell(optimal).c_str(),
                    ratioCell(always, eraser).c_str());
        shots_run += 4 * cfg.shots;
    }
    timer.report(shots_run, "fig14 sweep (batched engine)");
    std::printf("\n");
}

} // namespace

int
main()
{
    banner("LER vs code distance for all scheduling policies",
           "Fig. 14, Section 6.1");
    sweep(1e-3);
    sweep(1e-4);
    std::printf("Paper shape: ERASER ~3.3x below Always-LRCs;\n"
                "ERASER+M near Optimal; gains grow at p = 1e-4 where\n"
                "many cells drop below the measurable floor.\n");
    return 0;
}
