/**
 * @file
 * Reproduces Fig. 14: logical error rate vs code distance (3..11) for
 * Always-LRCs, ERASER, ERASER+M and Optimal scheduling over 10 QEC
 * cycles, at p = 1e-3 and p = 1e-4.
 *
 * Paper shape: ERASER beats Always-LRCs by 3.3x on average (up to
 * 4.3x); ERASER+M approaches Optimal (8.6x average, up to 26x). At
 * p = 1e-4 ERASER's advantage grows (5.4x average) and low-LER points
 * become unmeasurable (the paper could not resolve d >= 9 for
 * ERASER+M/Optimal with 100M shots; we print <1/shots bounds).
 *
 * Default shot counts shrink with distance to keep the suite fast;
 * scale up with ERASER_SHOTS for tighter error bars.
 */

#include <cstdio>

#include "bench_util.h"
#include "exp/sweep_runner.h"

using namespace qec;

int
main()
{
    banner("LER vs code distance for all scheduling policies",
           "Fig. 14, Section 6.1");

    SweepPlan plan;
    plan.name = "fig14_ler_vs_distance";
    plan.distances = {3, 5, 7, 9, 11};
    plan.ps = {1e-3, 1e-4};
    plan.rounds = {SweepRounds::cycles(10)};
    plan.policies = {PolicyKind::Always, PolicyKind::Eraser,
                     PolicyKind::EraserM, PolicyKind::Optimal};
    plan.base.batchWidth = 64;   // bit-packed batch engine + decode
    plan.shotsFor = [](int d, double) {
        return scaledShots(90000 / (uint64_t)(d * d));
    };

    TableSink::Options options;
    options.gainNum = 0;   // Always
    options.gainDen = 1;   // ERASER
    options.gainHeader = "Always/ERASER";
    TableSink table(options);

    SweepRunner runner(plan);
    runner.addSink(table);
    runner.run();

    std::printf("\nPaper shape: ERASER ~3.3x below Always-LRCs;\n"
                "ERASER+M near Optimal; gains grow at p = 1e-4 where\n"
                "many cells drop below the measurable floor.\n");
    return 0;
}
