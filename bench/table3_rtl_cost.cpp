/**
 * @file
 * Reproduces Table 3: FPGA cost of the ERASER block for d = 3..11 on
 * a Kintex UltraScale+ xcku3p. Vivado is unavailable offline, so the
 * SystemVerilog is generated (as the artifact's eraser_rtl_gen does)
 * and utilization is estimated with the structural resource model; the
 * paper's numbers are printed alongside. Shape to match: utilization
 * grows ~d^2 and stays below 1%, with ~5 ns speculation latency.
 */

#include <cstdio>
#include <string>

#include "code/rotated_surface_code.h"
#include "rtl/timing_model.h"
#include "rtl/verilog_gen.h"

using namespace qec;

int
main()
{
    std::printf("==========================================================\n");
    std::printf("ERASER FPGA cost model (xcku3p), generated RTL\n");
    std::printf("Reproduces: Table 3 and the 5 ns latency claim, 6.3\n");
    std::printf("==========================================================\n");

    const double paper_lut[] = {0.04, 0.12, 0.26, 0.42, 0.76};
    const double paper_ff[] = {0.02, 0.05, 0.10, 0.18, 0.26};

    std::printf("%4s %8s %8s %10s %10s %12s %12s %10s %9s\n", "d",
                "LUTs", "FFs", "LUT %", "FF %", "paper LUT%",
                "paper FF%", "levels", "crit ns");
    int idx = 0;
    for (int d : {3, 5, 7, 9, 11}) {
        RotatedSurfaceCode code(d);
        const ResourceEstimate est = estimateResources(code);
        const std::string rtl = generateEraserRtl(code);
        std::printf("%4d %8d %8d %9.3f%% %9.3f%% %11.2f%% %11.2f%%"
                    " %10d %9.2f\n",
                    d, est.luts, est.ffs, est.lutPercent,
                    est.ffPercent, paper_lut[idx], paper_ff[idx],
                    est.logicLevels, est.critPathNs);
        ++idx;
        // Keep the generated RTL honest: it must at least mention the
        // module for this distance.
        if (rtl.find("module eraser_d" + std::to_string(d)) ==
            std::string::npos) {
            std::printf("RTL generation FAILED for d=%d\n", d);
            return 1;
        }
    }

    RotatedSurfaceCode d11(11);
    RtlOptions m_opts;
    m_opts.multiLevel = true;
    const auto base = estimateResources(d11);
    const auto plus_m = estimateResources(d11, m_opts);
    std::printf("\nERASER+M (d=11) adds %d LUTs (%.3f%% -> %.3f%%).\n",
                plus_m.luts - base.luts, base.lutPercent,
                plus_m.lutPercent);
    std::printf("Estimates come from structural counting (no Vivado\n"
                "offline); the d^2 scaling and <1%% / ~5 ns headlines\n"
                "are the reproduced shape.\n");

    // Fig. 12's real-time constraint, checked against the emitted
    // circuit under Sycamore-class gate latencies.
    const RoundTiming timing = analyzeRoundTiming(d11);
    std::printf("\nControl timing (Sycamore latencies): plain round"
                " %.0f ns,\nfull-LRC round %.0f ns, decision window"
                " %.0f ns (paper: ~120 ns),\nspeculation latency"
                " %.2f ns -> fits with %.0fx margin.\n",
                timing.roundNs, timing.lrcRoundNs,
                timing.decisionWindowNs, base.critPathNs,
                timing.decisionWindowNs / base.critPathNs);
    return 0;
}
