/**
 * @file
 * Reproduces Table 4: average LRCs used per syndrome extraction round
 * for every policy at d = 3..11, p = 1e-3, over 10 QEC cycles.
 * Paper values: Always (d^2-1)/2 (4.2 / 12 / 24 / 40 / 60); ERASER
 * and ERASER+M ~16x fewer; Optimal two more orders below.
 */

#include <cstdio>

#include "bench_util.h"

using namespace qec;

int
main()
{
    banner("Average LRCs per round (Table 4)", "Table 4, Section 6.4");

    std::printf("%4s %14s %10s %10s %10s %16s\n", "d", "Always-LRCs",
                "ERASER", "ERASER+M", "Optimal", "Always/ERASER");
    for (int d : {3, 5, 7, 9, 11}) {
        RotatedSurfaceCode code(d);
        ExperimentConfig cfg;
        cfg.rounds = 10 * d;
        cfg.shots = scaledShots(4000 / (uint64_t)d);
        cfg.seed = 40 + d;
        cfg.decode = false;
        MemoryExperiment exp(code, cfg);

        auto always = exp.run(PolicyKind::Always);
        auto eraser = exp.run(PolicyKind::Eraser);
        auto eraser_m = exp.run(PolicyKind::EraserM);
        auto optimal = exp.run(PolicyKind::Optimal);

        std::printf("%4d %14.2f %10.3f %10.3f %10.4f %15.1fx\n", d,
                    always.avgLrcsPerRound(), eraser.avgLrcsPerRound(),
                    eraser_m.avgLrcsPerRound(),
                    optimal.avgLrcsPerRound(),
                    always.avgLrcsPerRound() /
                        (eraser.avgLrcsPerRound() + 1e-12));
    }
    std::printf("\nPaper: Always 4.2/12/24/40/60; ERASER(+M) ~16x\n"
                "fewer; Optimal 0.005..0.089.\n");
    return 0;
}
