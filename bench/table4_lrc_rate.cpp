/**
 * @file
 * Reproduces Table 4: average LRCs used per syndrome extraction round
 * for every policy at d = 3..11, p = 1e-3, over 10 QEC cycles.
 * Paper values: Always (d^2-1)/2 (4.2 / 12 / 24 / 40 / 60); ERASER
 * and ERASER+M ~16x fewer; Optimal two more orders below.
 */

#include <cstdio>

#include "bench_util.h"
#include "exp/sweep_runner.h"

using namespace qec;

int
main()
{
    banner("Average LRCs per round (Table 4)", "Table 4, Section 6.4");

    SweepPlan plan;
    plan.name = "table4_lrc_rate";
    plan.distances = {3, 5, 7, 9, 11};
    plan.rounds = {SweepRounds::cycles(10)};
    plan.policies = {PolicyKind::Always, PolicyKind::Eraser,
                     PolicyKind::EraserM, PolicyKind::Optimal};
    plan.base.decode = false;
    plan.shotsFor = [](int d, double) {
        return scaledShots(4000 / (uint64_t)d);
    };

    CollectSink collect;
    SweepRunner runner(plan);
    runner.addSink(collect);
    runner.run();

    std::printf("%4s %14s %10s %10s %10s %16s\n", "d", "Always-LRCs",
                "ERASER", "ERASER+M", "Optimal", "Always/ERASER");
    for (const PointResult &pr : collect.points) {
        const ExperimentResult &always = pr.results[0];
        const ExperimentResult &eraser = pr.results[1];
        std::printf("%4d %14.2f %10.3f %10.3f %10.4f %15.1fx\n",
                    pr.point.distance, always.avgLrcsPerRound(),
                    eraser.avgLrcsPerRound(),
                    pr.results[2].avgLrcsPerRound(),
                    pr.results[3].avgLrcsPerRound(),
                    always.avgLrcsPerRound() /
                        (eraser.avgLrcsPerRound() + 1e-12));
    }
    std::printf("\nPaper: Always 4.2/12/24/40/60; ERASER(+M) ~16x\n"
                "fewer; Optimal 0.005..0.089.\n");
    return 0;
}
