/**
 * @file
 * Reproduces Fig. 1(c) / Fig. 2(c): the logical error rate of a d=7
 * surface code over QEC cycles, without leakage, with leakage and no
 * mitigation, with Always-LRCs, and with idealized (Optimal) LRC
 * scheduling. The paper reports leakage inflating the LER 27x after
 * one cycle and 467x after five, with Always-LRCs recovering ~4x and
 * the idealized policy ~10x at 10 cycles.
 */

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "exp/sweep_runner.h"

using namespace qec;

int
main()
{
    banner("Logical error rate vs QEC cycles (d = 7, p = 1e-3)",
           "Fig. 1(c) and Fig. 2(c), Section 2.3");

    const uint64_t base_shots = 1000;
    const std::vector<SweepRounds> cycle_axis = {
        SweepRounds::cycles(1), SweepRounds::cycles(2),
        SweepRounds::cycles(3), SweepRounds::cycles(5),
        SweepRounds::cycles(7), SweepRounds::cycles(10)};

    // Leak-free baseline: needs far more shots to resolve; its decode
    // load is tiny, so give it 10x.
    SweepPlan clean_plan;
    clean_plan.name = "fig02c_no_leakage";
    clean_plan.distances = {7};
    clean_plan.rounds = cycle_axis;
    clean_plan.policies = {PolicyKind::Never};
    clean_plan.base.em = ErrorModel::withoutLeakage(1e-3);
    clean_plan.base.batchWidth = 64;
    clean_plan.base.shots = scaledShots(base_shots * 10);

    // The leaky scenarios share one plan (and so one experiment,
    // detector model and noise streams per cycle count).
    SweepPlan plan;
    plan.name = "fig02c_leakage";
    plan.distances = {7};
    plan.rounds = cycle_axis;
    plan.policies = {PolicyKind::Never, PolicyKind::Always,
                     PolicyKind::Optimal};
    plan.base.batchWidth = 64;   // bit-packed batch engine + decode
    plan.base.shots = scaledShots(base_shots);

    CollectSink clean;
    {
        SweepRunner runner(clean_plan);
        runner.addSink(clean);
        runner.run();
    }
    CollectSink leaky;
    {
        SweepRunner runner(plan);
        runner.addSink(leaky);
        runner.run();
    }

    auto cell = [](const ExperimentResult &r) {
        return lerCell(r);
    };
    std::printf("%6s %12s %12s %12s %12s %10s\n", "cycle", "no-leak",
                "no-LRC", "Always", "Optimal", "leak-blowup");
    for (size_t i = 0; i < leaky.points.size(); ++i) {
        const ExperimentResult &no_leak =
            clean.points[i].results[0];
        const ExperimentResult &never = leaky.points[i].results[0];
        const ExperimentResult &always = leaky.points[i].results[1];
        const ExperimentResult &optimal = leaky.points[i].results[2];
        std::printf("%6d %12s %12s %12s %12s %10s\n",
                    leaky.points[i].point.rounds / 7,
                    cell(no_leak).c_str(), cell(never).c_str(),
                    cell(always).c_str(), cell(optimal).c_str(),
                    ratioCell(never, no_leak).c_str());
    }
    std::printf("\nPaper shape: no-LRC blows up with cycles (27x at 1\n"
                "cycle, 467x at 5); Always-LRCs recovers ~4x of it and\n"
                "Optimal ~10x at 10 cycles.\n");
    return 0;
}
