/**
 * @file
 * Reproduces Fig. 1(c) / Fig. 2(c): the logical error rate of a d=7
 * surface code over QEC cycles, without leakage, with leakage and no
 * mitigation, with Always-LRCs, and with idealized (Optimal) LRC
 * scheduling. The paper reports leakage inflating the LER 27x after
 * one cycle and 467x after five, with Always-LRCs recovering ~4x and
 * the idealized policy ~10x at 10 cycles.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace qec;

int
main()
{
    banner("Logical error rate vs QEC cycles (d = 7, p = 1e-3)",
           "Fig. 1(c) and Fig. 2(c), Section 2.3");

    const int d = 7;
    RotatedSurfaceCode code(d);
    const std::vector<int> cycles = {1, 2, 3, 5, 7, 10};
    const uint64_t base_shots = 1000;

    std::printf("%6s %12s %12s %12s %12s %10s\n", "cycle", "no-leak",
                "no-LRC", "Always", "Optimal", "leak-blowup");

    ShotRateTimer timer;
    uint64_t shots_run = 0;
    for (int c : cycles) {
        ExperimentConfig cfg;
        cfg.rounds = c * d;
        cfg.shots = scaledShots(base_shots);
        cfg.seed = 1000 + c;
        cfg.batchWidth = 64;   // bit-packed batch engine + decode

        // The leak-free baseline needs far more shots to resolve;
        // its decode load is tiny, so give it 10x.
        cfg.em = ErrorModel::withoutLeakage(1e-3);
        cfg.shots = scaledShots(base_shots * 10);
        MemoryExperiment clean_exp(code, cfg);
        auto clean = clean_exp.run(PolicyKind::Never);
        cfg.shots = scaledShots(base_shots);

        cfg.em = ErrorModel::standard(1e-3);
        MemoryExperiment exp(code, cfg);
        auto never = exp.run(PolicyKind::Never);
        auto always = exp.run(PolicyKind::Always);
        auto optimal = exp.run(PolicyKind::Optimal);

        std::printf("%6d %12s %12s %12s %12s %10s\n", c,
                    lerCell(clean).c_str(), lerCell(never).c_str(),
                    lerCell(always).c_str(), lerCell(optimal).c_str(),
                    ratioCell(never, clean).c_str());
        shots_run += scaledShots(base_shots * 10) + 3 * cfg.shots;
    }
    timer.report(shots_run, "fig02c sweep (batched sim+decode)");
    std::printf("\nPaper shape: no-LRC blows up with cycles (27x at 1\n"
                "cycle, 467x at 5); Always-LRCs recovers ~4x of it and\n"
                "Optimal ~10x at 10 cycles.\n");
    return 0;
}
