/**
 * @file
 * Component-granular decode and sliding-window streaming tests:
 *
 *  1. Decomposition: ComponentGraph::split is a coarsening of the true
 *     <= 2h hop connectivity (never splits a close pair) and every
 *     cross-component defect pair really is > 2h hops apart
 *     (brute-force BFS distances check both directions).
 *  2. Composition / cache identity: the component pipeline's verdicts
 *     pin the whole-shot decode shot for shot, replays from the
 *     per-component cache included, and canonical (time-translated)
 *     hits replay the bulk-shifted copy of a component.
 *  3. Sliding-window streaming: verdicts are bit-identical to the
 *     full-history decode at every (windowLength, windowSlideLength)
 *     shape for the union-find decoder, and for MWPM via total
 *     deferral; window boundary cases (L = S, L >= rows, tiny L)
 *     behave; the windowed steady state allocates nothing.
 *  4. Cross-width: batched experiments at widths 64 / 256 / 512 keep
 *     one verdict fingerprint with caching / components / windowing
 *     on and off.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <numeric>
#include <set>
#include <vector>

#include "base/rng.h"
#include "code/builder.h"
#include "code/rotated_surface_code.h"
#include "decoder/batch_decoder.h"
#include "decoder/component_decoder.h"
#include "decoder/defects.h"
#include "decoder/detector_model.h"
#include "decoder/mwpm_decoder.h"
#include "decoder/union_find_decoder.h"
#include "exp/memory_experiment.h"
#include "sim/frame_simulator.h"

// ---------------------------------------------------------------------
// Global allocation counter (same instrumentation as
// test_decode_pipeline.cpp): every operator new in this binary bumps
// it, so tests can assert a code region allocates nothing.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
static std::atomic<uint64_t> g_allocations{0};

void *
operator new(std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace qec
{
namespace
{

/** Sample realistic defect sets from a memory circuit. */
std::vector<std::vector<int>>
sampleDefectSets(const RotatedSurfaceCode &code, int rounds, int count,
                 double p, uint64_t seed)
{
    Circuit circuit = buildMemoryCircuit(code, rounds, Basis::Z);
    FrameSimulator sim(code.numQubits(), ErrorModel::standard(p),
                       Rng(seed));
    std::vector<std::vector<int>> shots;
    for (int i = 0; i < count; ++i) {
        sim.run(circuit);
        shots.push_back(
            extractDefects(code, Basis::Z, rounds, sim.record())
                .defects);
    }
    return shots;
}

TEST(ComponentDecode, SplitBracketsBruteForceComponents)
{
    // Brute-force reference: group defects by hop distance <= 2h
    // (transitively). The split must (a) never separate such a pair —
    // it is a coarsening — and (b) certify every cross-component pair
    // > 2h hops apart, verified against the exact BFS distance.
    RotatedSurfaceCode code(5);
    const int rounds = 10;
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    ComponentGraph graph(dem, 1e-3);
    const int h = 2;

    auto shots = sampleDefectSets(code, rounds, 400, 3e-3, 901);
    DecodeWorkspace ws;
    int multi_component_shots = 0;
    for (const auto &defects : shots) {
        if (defects.size() < 2)
            continue;
        const int m = graph.split(defects.data(), defects.size(), h,
                                  ws);
        ASSERT_GE(m, 1);
        if (m > 1)
            ++multi_component_shots;

        // Component id per defect, from the split's sublists.
        std::map<int, int> comp_of;
        for (int c = 0; c < m; ++c)
            for (int k = ws.compOffsets[(size_t)c];
                 k < ws.compOffsets[(size_t)c + 1]; ++k)
                comp_of[ws.compDefects[(size_t)k]] = c;

        for (size_t i = 0; i < defects.size(); ++i) {
            for (size_t j = i + 1; j < defects.size(); ++j) {
                const int dist = graph.hopDistance(
                    defects[i], defects[j], 2 * h);
                const bool same =
                    comp_of[defects[i]] == comp_of[defects[j]];
                if (dist <= 2 * h) {
                    // Directly close pairs must share a component.
                    EXPECT_TRUE(same)
                        << defects[i] << " and " << defects[j]
                        << " are " << dist << " hops apart but split";
                } else if (!same) {
                    // Cross-component certification is the exactness
                    // contract: > 2h hops, here re-proved by BFS.
                    EXPECT_GT(dist, 2 * h);
                }
            }
        }
    }
    // The sampled set must actually exercise multi-component shots.
    EXPECT_GT(multi_component_shots, 5);
}

TEST(ComponentDecode, CompositionPinsWholeShotVerdicts)
{
    RotatedSurfaceCode code(5);
    const int rounds = 10;
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    UnionFindDecoder decoder(dem, 1e-3);
    auto graph = std::make_shared<const ComponentGraph>(dem, 1e-3);

    BatchDecodeOptions options;
    options.components.enabled = true;
    BatchDecoder pipeline(decoder, options, graph);

    auto shots = sampleDefectSets(code, rounds, 400, 2e-3, 902);
    for (const auto &defects : shots) {
        ASSERT_EQ(pipeline.decodeOne(defects.data(), defects.size()),
                  decoder.decode(defects));
    }
    EXPECT_GT(pipeline.stats().componentsTotal, 0u);
    // Every split component is answered by the cache or a decode;
    // guard-merged groups re-decode on top, so >= not ==.
    EXPECT_GE(pipeline.stats().componentCacheHits +
                  pipeline.stats().componentsDecoded,
              pipeline.stats().componentsTotal);
}

TEST(ComponentDecode, CacheHitReplaysIdenticalVerdict)
{
    RotatedSurfaceCode code(5);
    const int rounds = 10;
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    UnionFindDecoder decoder(dem, 1e-3);
    auto graph = std::make_shared<const ComponentGraph>(dem, 1e-3);

    BatchDecodeOptions options;
    options.components.enabled = true;
    // Whole-syndrome dedup off, so repeats exercise the COMPONENT
    // cache rather than being absorbed one stage earlier.
    options.cache.enabled = false;
    BatchDecoder pipeline(decoder, options, graph);

    auto shots = sampleDefectSets(code, rounds, 200, 2e-3, 903);
    // First pass decodes, second pass replays.
    for (int pass = 0; pass < 2; ++pass)
        for (const auto &defects : shots)
            ASSERT_EQ(
                pipeline.decodeOne(defects.data(), defects.size()),
                decoder.decode(defects));
    EXPECT_GT(pipeline.componentCacheStats().hits, 0u);
}

TEST(ComponentDecode, CanonicalKeyReplaysTimeTranslatedComponent)
{
    RotatedSurfaceCode code(5);
    const int rounds = 12;
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    UnionFindDecoder decoder(dem, 1e-3);
    auto graph = std::make_shared<const ComponentGraph>(dem, 1e-3);
    ASSERT_TRUE(graph->bulkValid());

    BatchDecodeOptions options;
    options.components.enabled = true;
    options.cache.enabled = false;
    BatchDecoder pipeline(decoder, options, graph);

    // A measurement-error defect pair deep in the bulk, then the same
    // pair shifted by whole rounds: the canonical key must replay the
    // first decode at every placement the margin check accepts.
    const int spr = graph->stabsPerRound();
    const int mid = (graph->bulkLo() + graph->bulkHi()) / 2;
    const int stab = spr / 2;
    int replayed = 0;
    for (int shift = 0; shift < 3; ++shift) {
        const int base = (mid + shift) * spr + stab;
        const std::vector<int> defects = {base, base + spr};
        ASSERT_EQ(pipeline.decodeOne(defects.data(), defects.size()),
                  decoder.decode(defects));
        if (pipeline.componentCacheStats().canonicalHits > 0)
            ++replayed;
    }
    EXPECT_GT(pipeline.componentCacheStats().canonicalHits, 0u);
    EXPECT_GT(replayed, 0);
}

TEST(ComponentDecode, WindowedVerdictsBitIdenticalAcrossShapes)
{
    RotatedSurfaceCode code(5);
    const int rounds = 15;
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    UnionFindDecoder decoder(dem, 1e-3);
    ASSERT_GE(decoder.windowCommitBound(), 0);
    auto graph = std::make_shared<const ComponentGraph>(dem, 1e-3);
    const int rows = graph->rows();

    auto shots = sampleDefectSets(code, rounds, 300, 3e-3, 904);
    const std::pair<int, int> shapes[] = {
        {5, 2}, {5, 5}, {7, 3}, {10, 5}, {10, 2}, {rows - 1, 4}};
    for (const auto &[L, S] : shapes) {
        BatchDecodeOptions options;
        options.windowLength = L;
        options.windowSlideLength = S;
        BatchDecoder pipeline(decoder, options, graph);
        ASSERT_TRUE(pipeline.windowed());
        for (const auto &defects : shots) {
            ASSERT_EQ(
                pipeline.decodeOne(defects.data(), defects.size()),
                decoder.decode(defects))
                << "L=" << L << " S=" << S;
        }
        EXPECT_GT(pipeline.stats().windows, 0u) << "L=" << L;
        // Real streaming: early commits happen, not just the final
        // unconditional window.
        EXPECT_GT(pipeline.stats().windowCommits, 0u) << "L=" << L;
        EXPECT_GT(pipeline.stats().windowDeferrals, 0u) << "L=" << L;
    }
}

TEST(ComponentDecode, WindowedBoundaryCases)
{
    RotatedSurfaceCode code(3);
    const int rounds = 9;
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    UnionFindDecoder decoder(dem, 1e-3);
    auto graph = std::make_shared<const ComponentGraph>(dem, 1e-3);
    const int rows = graph->rows();
    auto shots = sampleDefectSets(code, rounds, 150, 5e-3, 905);

    // windowLength >= rows degrades to the whole-history decode: the
    // window machinery must stay out of the way entirely.
    {
        BatchDecodeOptions options;
        options.windowLength = rows;
        options.windowSlideLength = 1;
        BatchDecoder pipeline(decoder, options, graph);
        EXPECT_FALSE(pipeline.windowed());
        for (const auto &defects : shots)
            ASSERT_EQ(
                pipeline.decodeOne(defects.data(), defects.size()),
                decoder.decode(defects));
        EXPECT_EQ(pipeline.stats().windows, 0u);
    }
    // Tumbling windows (S = L) and the smallest useful window.
    for (const auto &[L, S] :
         {std::pair<int, int>{4, 4}, std::pair<int, int>{2, 1}}) {
        BatchDecodeOptions options;
        options.windowLength = L;
        options.windowSlideLength = S;
        BatchDecoder pipeline(decoder, options, graph);
        ASSERT_TRUE(pipeline.windowed());
        for (const auto &defects : shots)
            ASSERT_EQ(
                pipeline.decodeOne(defects.data(), defects.size()),
                decoder.decode(defects))
                << "L=" << L << " S=" << S;
    }
}

TEST(ComponentDecode, WindowedMwpmDefersEverythingAndStaysExact)
{
    // MWPM certifies no growth bound, so the windowed pipeline must
    // degenerate to one full-history decode per lane — exact, with
    // one commit and no cluster machinery.
    RotatedSurfaceCode code(3);
    const int rounds = 9;
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    MwpmDecoder decoder(dem, 1e-3);
    EXPECT_LT(decoder.windowCommitBound(), 0);
    auto graph = std::make_shared<const ComponentGraph>(dem, 1e-3);

    BatchDecodeOptions options;
    options.windowLength = 4;
    options.windowSlideLength = 2;
    BatchDecoder pipeline(decoder, options, graph);
    ASSERT_TRUE(pipeline.windowed());

    auto shots = sampleDefectSets(code, rounds, 150, 5e-3, 906);
    uint64_t nonzero = 0;
    for (const auto &defects : shots) {
        if (!defects.empty())
            ++nonzero;
        ASSERT_EQ(pipeline.decodeOne(defects.data(), defects.size()),
                  decoder.decode(defects));
    }
    EXPECT_EQ(pipeline.stats().windows + pipeline.stats().cacheHits,
              nonzero);
    EXPECT_EQ(pipeline.stats().windowDeferrals, 0u);
}

TEST(ComponentDecode, WindowedDecodeIsAllocationFreeInSteadyState)
{
    RotatedSurfaceCode code(5);
    const int rounds = 12;
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    UnionFindDecoder decoder(dem, 1e-3);
    auto graph = std::make_shared<const ComponentGraph>(dem, 1e-3);

    BatchDecodeOptions options;
    options.windowLength = 6;
    options.windowSlideLength = 3;
    BatchDecoder pipeline(decoder, options, graph);
    ASSERT_TRUE(pipeline.windowed());

    auto shots = sampleDefectSets(code, rounds, 40, 3e-3, 907);
    // Warmup sizes the workspace, the window scratch, and the dedup
    // cache's probe path.
    for (const auto &defects : shots)
        pipeline.decodeOne(defects.data(), defects.size());

    const uint64_t before = g_allocations.load();
    bool sink = false;
    for (int repeat = 0; repeat < 3; ++repeat)
        for (const auto &defects : shots)
            sink ^= pipeline.decodeOne(defects.data(), defects.size());
    EXPECT_EQ(g_allocations.load(), before)
        << "windowed decode allocated on the steady-state path (sink="
        << sink << ")";
}

TEST(ComponentDecode, WindowedFootprintBoundedByWindowNotRunLength)
{
    // Streaming contract: the decoder workspace after long windowed
    // runs must not scale with the run length — decode a 4x longer
    // history through the same window shape and compare footprints.
    RotatedSurfaceCode code(3);
    const int short_rounds = 12;
    const int long_rounds = 48;
    const double p = 3e-3;

    auto footprint_for = [&](int rounds) {
        DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
        UnionFindDecoder decoder(dem, p);
        auto graph = std::make_shared<const ComponentGraph>(dem, p);
        BatchDecodeOptions options;
        options.windowLength = 6;
        options.windowSlideLength = 3;
        BatchDecoder pipeline(decoder, options, graph);
        auto shots = sampleDefectSets(code, rounds, 60, p, 908);
        for (const auto &defects : shots)
            pipeline.decodeOne(defects.data(), defects.size());
        EXPECT_GT(pipeline.stats().windows, 0u);
        return pipeline.workspace().footprintBytes();
    };
    const size_t short_fp = footprint_for(short_rounds);
    const size_t long_fp = footprint_for(long_rounds);
    ASSERT_GT(short_fp, 0u);
    // Per-vertex workspace arrays scale with the lattice (detector
    // count grows 4x); the windowed decode state on top must not add
    // a run-length-proportional term beyond that.
    EXPECT_LE(long_fp, short_fp * (size_t)(long_rounds + 1) /
                               (size_t)(short_rounds + 1) +
                           ((size_t)1 << 16));
}

TEST(ComponentDecode, CrossWidthFingerprintWithStagesOnAndOff)
{
    // Widths 64 / 256 / 512 must produce ONE verdict fingerprint, and
    // that fingerprint must not move when the dedup cache, the
    // component stage, or the sliding window is toggled — all three
    // are exactness-preserving by contract.
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 6;
    cfg.shots = 1200;
    cfg.seed = 909;
    cfg.em = ErrorModel::standard(3e-3);
    cfg.decoderKind = DecoderKind::UnionFind;
    cfg.threads = 1;

    auto fingerprint = [&](unsigned width, bool components,
                           bool window) {
        ExperimentConfig c = cfg;
        c.batchWidth = width;
        c.componentDecode.enabled = components;
        if (window) {
            c.windowLength = 4;
            c.windowSlideLength = 2;
        }
        MemoryExperiment exp(code, c);
        ExperimentResult r = exp.run(PolicyKind::Eraser);
        if (window) {
            EXPECT_GT(r.windowsDecoded, 0u);
        }
        return r.verdictFingerprint;
    };

    const uint64_t base = fingerprint(64, false, false);
    EXPECT_EQ(fingerprint(256, false, false), base);
    EXPECT_EQ(fingerprint(512, false, false), base);
    EXPECT_EQ(fingerprint(64, true, false), base);
    EXPECT_EQ(fingerprint(512, true, false), base);
    EXPECT_EQ(fingerprint(64, false, true), base);
    EXPECT_EQ(fingerprint(256, true, true), base);
}

TEST(ComponentDecode, WindowedExperimentMatchesFullHistoryLer)
{
    // The streaming-decode demo contract: a windowed experiment run
    // reproduces the full-history run's logical-error fingerprint
    // while actually decoding in windows.
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 24;   // rounds >> 3d: a long stream for d = 3
    cfg.shots = 600;
    cfg.seed = 910;
    cfg.em = ErrorModel::standard(3e-3);
    cfg.decoderKind = DecoderKind::UnionFind;
    cfg.batchWidth = 64;
    cfg.threads = 1;

    MemoryExperiment full(code, cfg);
    ExperimentResult full_result = full.run(PolicyKind::Eraser);

    cfg.windowLength = 8;
    cfg.windowSlideLength = 4;
    MemoryExperiment windowed(code, cfg);
    ExperimentResult win_result = windowed.run(PolicyKind::Eraser);

    EXPECT_EQ(win_result.verdictFingerprint,
              full_result.verdictFingerprint);
    EXPECT_EQ(win_result.logicalErrors, full_result.logicalErrors);
    EXPECT_GT(win_result.windowsDecoded, 0u);
}

} // namespace
} // namespace qec
