/**
 * @file
 * Batch engine tests, in three tiers:
 *
 *  1. BernoulliMaskSampler: both sampling strategies hit their target
 *     rates and respect lane bounds.
 *  2. BatchFrameSimulator word semantics: masked propagation truth
 *     tables and per-lane leakage statistics at W=64.
 *  3. Differential: the batched experiment path at width 1 reproduces
 *     the scalar path draw-for-draw (the scalar FrameSimulator is the
 *     W=1 reference implementation), and at W=64 it agrees with the
 *     scalar path statistically on LER and LPR.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "decoder/defects.h"
#include "exp/memory_experiment.h"
#include "sim/batch_frame_simulator.h"
#include "sim/bit_mask_sampler.h"

namespace qec
{
namespace
{

Op
op(OpType type, int q0, int q1 = -1)
{
    Op o;
    o.type = type;
    o.q0 = q0;
    o.q1 = q1;
    return o;
}

int
pop(uint64_t w)
{
    return __builtin_popcountll(w);
}

// ------------------------------------------------------------- sampler

TEST(MaskSampler, RareRateMatches)
{
    Rng rng(7);
    BernoulliMaskSampler sampler(&rng);
    const double p = 0.005;   // rare path (geometric skipping)
    ASSERT_LT(p, BernoulliMaskSampler::kRareThreshold);
    int64_t hits = 0;
    const int64_t draws = 20000;
    for (int64_t i = 0; i < draws; ++i)
        hits += pop(sampler.draw(p, 64));
    const double mean = (double)draws * 64 * p;
    EXPECT_NEAR((double)hits, mean, 5 * std::sqrt(mean));
}

TEST(MaskSampler, DenseRateMatches)
{
    Rng rng(8);
    BernoulliMaskSampler sampler(&rng);
    const double p = 0.3;     // dense path (digit comparison)
    int64_t hits = 0;
    const int64_t draws = 4000;
    for (int64_t i = 0; i < draws; ++i)
        hits += pop(sampler.draw(p, 64));
    const double mean = (double)draws * 64 * p;
    EXPECT_NEAR((double)hits, mean, 5 * std::sqrt(mean * (1 - p)));
}

TEST(MaskSampler, RespectsLaneBounds)
{
    Rng rng(9);
    BernoulliMaskSampler sampler(&rng);
    for (int i = 0; i < 2000; ++i) {
        EXPECT_EQ(sampler.draw(0.004, 10) & ~laneMask(10), 0u);
        EXPECT_EQ(sampler.draw(0.6, 10) & ~laneMask(10), 0u);
    }
    EXPECT_EQ(sampler.draw(0.0, 64), 0u);
    EXPECT_EQ(sampler.draw(1.0, 64), ~uint64_t{0});
    EXPECT_EQ(sampler.draw(1.0, 7), laneMask(7));
}

// ------------------------------------------------- word-level semantics

TEST(BatchSim, MaskedCnotPropagatesPerLane)
{
    BatchFrameSimulator sim(2, ErrorModel::noiseless(), 64, 1, 0);
    const uint64_t injected = 0x00000000FFFFFFFFull;
    const uint64_t gate = 0x0000FFFFFFFF0000ull;
    sim.injectPauli(0, Pauli::X, injected);
    sim.execute(op(OpType::Cnot, 0, 1), gate);
    EXPECT_EQ(sim.xWord(0), injected);
    EXPECT_EQ(sim.xWord(1), injected & gate);
}

TEST(BatchSim, MaskedCnotPropagatesZBackwardPerLane)
{
    BatchFrameSimulator sim(2, ErrorModel::noiseless(), 64, 1, 0);
    const uint64_t injected = 0xF0F0F0F0F0F0F0F0ull;
    const uint64_t gate = 0xFF00FF00FF00FF00ull;
    sim.injectPauli(1, Pauli::Z, injected);
    sim.execute(op(OpType::Cnot, 0, 1), gate);
    EXPECT_EQ(sim.zWord(1), injected);
    EXPECT_EQ(sim.zWord(0), injected & gate);
}

TEST(BatchSim, HadamardSwapsPlanesOnMaskedLanes)
{
    BatchFrameSimulator sim(1, ErrorModel::noiseless(), 64, 1, 0);
    const uint64_t injected = ~uint64_t{0};
    const uint64_t gate = 0x123456789ABCDEF0ull;
    sim.injectPauli(0, Pauli::X, injected);
    sim.execute(op(OpType::H, 0), gate);
    EXPECT_EQ(sim.xWord(0), ~gate);
    EXPECT_EQ(sim.zWord(0), gate);
}

TEST(BatchSim, MaskedResetClearsOnlyMaskedLanes)
{
    BatchFrameSimulator sim(1, ErrorModel::noiseless(), 64, 1, 0);
    sim.injectPauli(0, Pauli::Y, ~uint64_t{0});
    sim.setLeaked(0, true, ~uint64_t{0});
    const uint64_t gate = 0x00FF00FF00FF00FFull;
    sim.execute(op(OpType::Reset, 0), gate);
    EXPECT_EQ(sim.xWord(0), ~gate);
    EXPECT_EQ(sim.zWord(0), ~gate);
    EXPECT_EQ(sim.leakedWord(0), ~gate);
}

TEST(BatchSim, LeakedLanesBlockPropagation)
{
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    em.pTransport = 0.0;
    BatchFrameSimulator sim(2, em, 64, 1, 0);
    const uint64_t both_leaked = 0xFFFF000000000000ull;
    sim.setLeaked(0, true, both_leaked);
    sim.setLeaked(1, true, both_leaked);
    sim.injectPauli(0, Pauli::X, ~uint64_t{0});
    sim.execute(op(OpType::Cnot, 0, 1), ~uint64_t{0});
    // Lanes with both operands leaked see no frame action at all.
    EXPECT_EQ(sim.xWord(1) & both_leaked, 0u);
    EXPECT_EQ(sim.xWord(1) & ~both_leaked, ~both_leaked);
}

TEST(BatchSim, ConservativeTransportGrowsLeakageAcrossLanes)
{
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    em.pTransport = 0.1;
    int64_t transported = 0;
    const int iterations = 400;
    for (int i = 0; i < iterations; ++i) {
        BatchFrameSimulator sim(2, em, 64, 1000 + i, 0);
        sim.setLeaked(0, true, ~uint64_t{0});
        sim.execute(op(OpType::Cnot, 0, 1), ~uint64_t{0});
        EXPECT_EQ(sim.leakedWord(0), ~uint64_t{0});
        transported += pop(sim.leakedWord(1));
    }
    const double n = 64.0 * iterations;
    EXPECT_NEAR((double)transported, n * 0.1,
                5 * std::sqrt(n * 0.1 * 0.9));
}

TEST(BatchSim, ExchangeTransportPreservesLeakageCount)
{
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    em.pTransport = 0.1;
    em.transport = TransportModel::Exchange;
    for (int i = 0; i < 200; ++i) {
        BatchFrameSimulator sim(2, em, 64, 2000 + i, 0);
        sim.setLeaked(0, true, ~uint64_t{0});
        sim.execute(op(OpType::Cnot, 0, 1), ~uint64_t{0});
        // Exchange never duplicates leakage: exactly one of the two
        // operands is leaked in every lane.
        EXPECT_EQ(sim.leakedWord(0) ^ sim.leakedWord(1), ~uint64_t{0});
    }
}

TEST(BatchSim, LeakedMeasurementIsRandomPerLane)
{
    BatchFrameSimulator sim(1, ErrorModel::noiseless(), 64, 5, 0);
    sim.setLeaked(0, true, ~uint64_t{0});
    int64_t flips = 0;
    const int iterations = 400;
    for (int i = 0; i < iterations; ++i) {
        sim.execute(op(OpType::Measure, 0), ~uint64_t{0});
        flips += pop(sim.record().back().flips);
    }
    const double n = 64.0 * iterations;
    EXPECT_NEAR((double)flips, n / 2, 5 * std::sqrt(n / 4));
}

TEST(BatchSim, MultiLevelLabelsFlagLeakedLanes)
{
    ErrorModel em = ErrorModel::standard(1e-3);
    BatchFrameSimulator sim(1, em, 64, 5, 0);
    const uint64_t leaked = 0xFFFFFFFF00000000ull;
    int64_t labels = 0, clean_labels = 0;
    const int iterations = 600;
    for (int i = 0; i < iterations; ++i) {
        sim.setLeaked(0, true, leaked);
        sim.setLeaked(0, false, ~leaked);
        sim.execute(op(OpType::Measure, 0), ~uint64_t{0});
        labels += pop(sim.record().back().leakedLabels & leaked);
        clean_labels += pop(sim.record().back().leakedLabels & ~leaked);
    }
    EXPECT_EQ(clean_labels, 0);
    const double n = 32.0 * iterations;
    const double miss = em.multiLevelMissProb();
    EXPECT_NEAR((double)labels, n * (1 - miss),
                5 * std::sqrt(n * miss * (1 - miss)) + 5);
}

TEST(BatchSim, NoiselessMemoryCircuitIsDeterministicAtW64)
{
    RotatedSurfaceCode code(3);
    Circuit circuit = buildMemoryCircuit(code, 4, Basis::Z);
    BatchFrameSimulator sim(code.numQubits(),
                            ErrorModel::noiseless(), 64, 99, 0);
    sim.executeRange(circuit.ops.data(),
                     circuit.ops.data() + circuit.ops.size());
    for (const auto &rec : sim.record())
        ASSERT_EQ(rec.flips, 0u);
    auto outcomes =
        extractDefectsBatched(code, Basis::Z, 4, sim.record(), 64);
    ASSERT_EQ(outcomes.size(), 64u);
    for (const auto &outcome : outcomes) {
        EXPECT_TRUE(outcome.defects.empty());
        EXPECT_FALSE(outcome.observableFlip);
    }
}

// ---------------------------------------------------- differential W=1

ExperimentConfig
diffConfig(RemovalProtocol protocol)
{
    ExperimentConfig cfg;
    cfg.rounds = 5;
    cfg.shots = 24;
    cfg.seed = 4242;
    cfg.em = ErrorModel::standard(2e-3);
    cfg.protocol = protocol;
    cfg.trackLpr = true;
    cfg.batchWidth = 1;
    return cfg;
}

void
expectExactMatch(const ExperimentConfig &cfg, PolicyKind kind)
{
    RotatedSurfaceCode code(3);
    MemoryExperiment exp(code, cfg);
    const bool every_round = cfg.protocol == RemovalProtocol::Dqlr;
    auto factory =
        makePolicyFactory(kind, code, exp.lookup(), every_round);

    auto scalar = exp.run(factory, "scalar");
    auto batched = exp.runBatched(factory, "batched");

    EXPECT_EQ(scalar.logicalErrors, batched.logicalErrors);
    EXPECT_EQ(scalar.tp, batched.tp);
    EXPECT_EQ(scalar.fp, batched.fp);
    EXPECT_EQ(scalar.tn, batched.tn);
    EXPECT_EQ(scalar.fn, batched.fn);
    EXPECT_EQ(scalar.lrcsScheduled, batched.lrcsScheduled);
    ASSERT_EQ(scalar.lprDataSum.size(), batched.lprDataSum.size());
    for (size_t r = 0; r < scalar.lprDataSum.size(); ++r) {
        EXPECT_DOUBLE_EQ(scalar.lprDataSum[r], batched.lprDataSum[r]);
        EXPECT_DOUBLE_EQ(scalar.lprParitySum[r],
                         batched.lprParitySum[r]);
    }
}

TEST(BatchDifferential, Width1MatchesScalarSwapLrc)
{
    for (PolicyKind kind :
         {PolicyKind::Never, PolicyKind::Always, PolicyKind::Eraser,
          PolicyKind::EraserM, PolicyKind::Optimal}) {
        expectExactMatch(diffConfig(RemovalProtocol::SwapLrc), kind);
    }
}

TEST(BatchDifferential, Width1MatchesScalarDqlr)
{
    auto cfg = diffConfig(RemovalProtocol::Dqlr);
    cfg.em.transport = TransportModel::Exchange;
    for (PolicyKind kind : {PolicyKind::Always, PolicyKind::Eraser,
                            PolicyKind::EraserM, PolicyKind::Optimal}) {
        expectExactMatch(cfg, kind);
    }
}

TEST(BatchDifferential, Width1MatchesScalarMemoryX)
{
    auto cfg = diffConfig(RemovalProtocol::SwapLrc);
    cfg.basis = Basis::X;
    expectExactMatch(cfg, PolicyKind::Eraser);
}

// --------------------------------------------- statistical W=64 checks

TEST(BatchDifferential, W64LerAgreesWithScalar)
{
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 5;
    cfg.shots = 4000;
    cfg.seed = 777;
    cfg.em = ErrorModel::standard(5e-3);
    MemoryExperiment exp(code, cfg);

    auto scalar = exp.run(PolicyKind::Eraser);

    cfg.batchWidth = 64;
    MemoryExperiment batched_exp(code, cfg);
    auto batched = batched_exp.run(PolicyKind::Eraser);

    ASSERT_GT(scalar.logicalErrors, 0u);
    ASSERT_GT(batched.logicalErrors, 0u);
    const double p_pool =
        (scalar.ler() + batched.ler()) / 2.0;
    const double sigma = std::sqrt(2.0 * p_pool * (1 - p_pool) /
                                   (double)cfg.shots);
    EXPECT_NEAR(scalar.ler(), batched.ler(), 5 * sigma);
}

TEST(BatchDifferential, W64LprAgreesWithScalar)
{
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 8;
    cfg.shots = 10000;
    cfg.seed = 778;
    cfg.em = ErrorModel::standard(1e-2);
    cfg.decode = false;
    cfg.trackLpr = true;
    MemoryExperiment exp(code, cfg);

    auto scalar = exp.run(PolicyKind::Never);

    cfg.batchWidth = 64;
    MemoryExperiment batched_exp(code, cfg);
    auto batched = batched_exp.run(PolicyKind::Never);

    // Leakage accumulates without LRCs; the two engines must agree on
    // the whole population trace within sampling error.
    for (int r = 1; r < cfg.rounds; ++r) {
        const double a = scalar.lprData(r);
        const double b = batched.lprData(r);
        ASSERT_GT(a, 0.0);
        ASSERT_GT(b, 0.0);
        const double trials =
            (double)cfg.shots * code.numData();
        const double p_pool = (a + b) / 2.0;
        const double sigma =
            std::sqrt(2.0 * p_pool * (1 - p_pool) / trials);
        EXPECT_NEAR(a, b, 6 * sigma + 1e-9)
            << "round " << r;
    }
}

TEST(BatchDifferential, PartialWordGroupsCoverAllShots)
{
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 4;
    cfg.shots = 53;   // 17-lane groups: 17 + 17 + 17 + 2
    cfg.seed = 31;
    cfg.em = ErrorModel::standard(2e-3);
    cfg.batchWidth = 17;
    MemoryExperiment exp(code, cfg);
    auto result = exp.run(PolicyKind::Eraser);
    EXPECT_EQ(result.shots, cfg.shots);
    EXPECT_EQ(result.tp + result.fp + result.tn + result.fn,
              cfg.shots * (uint64_t)cfg.rounds *
                  (uint64_t)code.numData());
    EXPECT_EQ(result.tp + result.fp, result.lrcsScheduled);
}

// ------------------------------------ SIMD width matrix (W = 256/512)

/** Exact-equality check of two runs' full counter set. */
void
expectResultsIdentical(const ExperimentResult &a,
                       const ExperimentResult &b, const char *what)
{
    EXPECT_EQ(a.logicalErrors, b.logicalErrors) << what;
    EXPECT_EQ(a.verdictFingerprint, b.verdictFingerprint) << what;
    EXPECT_EQ(a.tp, b.tp) << what;
    EXPECT_EQ(a.fp, b.fp) << what;
    EXPECT_EQ(a.tn, b.tn) << what;
    EXPECT_EQ(a.fn, b.fn) << what;
    EXPECT_EQ(a.lrcsScheduled, b.lrcsScheduled) << what;
    ASSERT_EQ(a.lprDataSum.size(), b.lprDataSum.size()) << what;
    for (size_t r = 0; r < a.lprDataSum.size(); ++r) {
        EXPECT_DOUBLE_EQ(a.lprDataSum[r], b.lprDataSum[r]) << what;
        EXPECT_DOUBLE_EQ(a.lprParitySum[r], b.lprParitySum[r]) << what;
    }
}

/**
 * W = 256 and W = 512 must reproduce the W = 64 run bit for bit:
 * every 64-lane block of a wide word-group carries the exact noise
 * streams of the standalone 64-lane group at the same first shot.
 * shots = 391 exercises ragged tail groups at every width.
 */
TEST(BatchDifferential, WideWidthsMatchWidth64Exactly)
{
    RotatedSurfaceCode code(3);
    for (RemovalProtocol protocol :
         {RemovalProtocol::SwapLrc, RemovalProtocol::Dqlr}) {
        for (PolicyKind kind :
             {PolicyKind::Always, PolicyKind::Eraser,
              PolicyKind::EraserM, PolicyKind::Optimal}) {
            ExperimentConfig cfg;
            cfg.rounds = 5;
            cfg.shots = 391;
            cfg.seed = 20260726;
            cfg.em = ErrorModel::standard(3e-3);
            cfg.protocol = protocol;
            cfg.trackLpr = true;

            cfg.batchWidth = 64;
            auto w64 = MemoryExperiment(code, cfg).run(kind);
            cfg.batchWidth = 256;
            auto w256 = MemoryExperiment(code, cfg).run(kind);
            cfg.batchWidth = 512;
            auto w512 = MemoryExperiment(code, cfg).run(kind);

            expectResultsIdentical(w64, w256, "W=256 vs W=64");
            expectResultsIdentical(w64, w512, "W=512 vs W=64");
        }
    }
}

TEST(BatchDifferential, OneLaneTailGroupsMatchAcrossWidths)
{
    // shots = 257: the width-64 run ends with a 1-lane group (which
    // delegates to the scalar reference simulator); the width-256/512
    // runs must delegate their 1-lane tails identically, or the
    // cross-width bit-identity breaks exactly on the tail shot.
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 5;
    cfg.shots = 257;
    cfg.seed = 99;
    cfg.em = ErrorModel::standard(5e-3);
    cfg.trackLpr = true;

    cfg.batchWidth = 64;
    auto w64 = MemoryExperiment(code, cfg).run(PolicyKind::Eraser);
    cfg.batchWidth = 256;
    auto w256 = MemoryExperiment(code, cfg).run(PolicyKind::Eraser);
    cfg.batchWidth = 512;
    auto w512 = MemoryExperiment(code, cfg).run(PolicyKind::Eraser);
    expectResultsIdentical(w64, w256, "1-lane tail W=256 vs W=64");
    expectResultsIdentical(w64, w512, "1-lane tail W=512 vs W=64");
}

TEST(BatchDifferential, WideWidthsMatchWidth64OnMemoryX)
{
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 5;
    cfg.shots = 300;
    cfg.seed = 8;
    cfg.em = ErrorModel::standard(2e-3);
    cfg.basis = Basis::X;
    cfg.decoderKind = DecoderKind::UnionFind;
    cfg.trackLpr = true;

    cfg.batchWidth = 64;
    auto w64 = MemoryExperiment(code, cfg).run(PolicyKind::Eraser);
    cfg.batchWidth = 512;
    auto w512 = MemoryExperiment(code, cfg).run(PolicyKind::Eraser);
    expectResultsIdentical(w64, w512, "basis X W=512 vs W=64");
}

/**
 * Engine-level pin of the same property: a 256-lane simulator running
 * a memory circuit produces, block by block, the records of the four
 * 64-lane simulators at first shots 0/64/128/192.
 */
TEST(BatchSim, WideEngineMatchesBlockwise64LaneEngines)
{
    RotatedSurfaceCode code(3);
    Circuit circuit = buildMemoryCircuit(code, 5, Basis::Z);
    ErrorModel em = ErrorModel::standard(4e-3);

    BatchFrameSimulatorT<4> wide(code.numQubits(), em, 256, 321, 0);
    wide.executeRange(circuit.ops.data(),
                      circuit.ops.data() + circuit.ops.size());

    for (int b = 0; b < 4; ++b) {
        BatchFrameSimulator narrow(code.numQubits(), em, 64, 321,
                                   64 * (uint64_t)b);
        narrow.executeRange(circuit.ops.data(),
                            circuit.ops.data() + circuit.ops.size());
        ASSERT_EQ(wide.record().size(), narrow.record().size());
        for (size_t i = 0; i < narrow.record().size(); ++i) {
            const auto &w = wide.record()[i];
            const auto &n = narrow.record()[i];
            ASSERT_EQ(laneWord(w.mask, b), n.mask) << b << " " << i;
            ASSERT_EQ(laneWord(w.flips, b), n.flips) << b << " " << i;
            ASSERT_EQ(laneWord(w.leakedLabels, b), n.leakedLabels)
                << b << " " << i;
        }
        for (int q = 0; q < code.numQubits(); ++q) {
            ASSERT_EQ(laneWord(wide.xWord(q), b), narrow.xWord(q));
            ASSERT_EQ(laneWord(wide.zWord(q), b), narrow.zWord(q));
            ASSERT_EQ(laneWord(wide.leakedWord(q), b),
                      narrow.leakedWord(q));
        }
    }
}

/**
 * Dead-lane audit pin: a ragged word-group (100 live lanes in a
 * 256-lane-capable engine, second block only 36 lanes deep) must keep
 * every record word and every internal plane silent above the live
 * mask after a full noisy adaptive-shaped circuit — a stray dead-lane
 * bit here would leak phantom events, observations or LRCs into the
 * experiment layer's scatter loops.
 */
TEST(BatchSim, RaggedGroupKeepsDeadLanesSilent)
{
    RotatedSurfaceCode code(3);
    Circuit circuit = buildMemoryCircuit(code, 6, Basis::Z);
    ErrorModel em = ErrorModel::standard(8e-3);
    BatchFrameSimulatorT<4> sim(code.numQubits(), em, 100, 13, 0);
    const WordVec<4> live = sim.liveMask();
    ASSERT_EQ(laneWord(live, 0), ~uint64_t{0});
    ASSERT_EQ(laneWord(live, 1), laneMask64(36));
    ASSERT_EQ(laneWord(live, 2), 0u);

    sim.executeRange(circuit.ops.data(),
                     circuit.ops.data() + circuit.ops.size());
    // Force the leakage-divergent op paths on a masked lane subset
    // too (the experiment layer's divergent-LRC-tail shape).
    WordVec<4> half{};
    laneWordRef(half, 0) = 0xFFFF0000FFFF0000ull;
    laneWordRef(half, 1) = laneMask64(36) & 0x55555555ull;
    for (const auto &stab : code.stabilizers()) {
        sim.execute(op(OpType::Cnot, stab.support[0], stab.ancilla),
                    half);
        sim.execute(op(OpType::Measure, stab.support[0]), half);
        sim.execute(op(OpType::Reset, stab.ancilla), half);
    }

    for (const auto &rec : sim.record()) {
        for (int b = 0; b < 4; ++b) {
            ASSERT_EQ(laneWord(rec.mask, b) & ~laneWord(live, b), 0u);
            ASSERT_EQ(laneWord(rec.flips, b) & ~laneWord(live, b), 0u);
            ASSERT_EQ(
                laneWord(rec.leakedLabels, b) & ~laneWord(live, b),
                0u);
        }
    }
    for (int q = 0; q < code.numQubits(); ++q) {
        for (int b = 0; b < 4; ++b) {
            ASSERT_EQ(laneWord(sim.xWord(q), b) & ~laneWord(live, b),
                      0u)
                << "qubit " << q;
            ASSERT_EQ(laneWord(sim.zWord(q), b) & ~laneWord(live, b),
                      0u)
                << "qubit " << q;
            ASSERT_EQ(
                laneWord(sim.leakedWord(q), b) & ~laneWord(live, b),
                0u)
                << "qubit " << q;
        }
    }
}

/** Statistical LER/LPR agreement of the widest engine against the
 *  scalar reference at the paper's headline distance. */
TEST(BatchDifferential, W512AgreesWithScalarStatisticallyAtD11)
{
    RotatedSurfaceCode code(11);
    ExperimentConfig cfg;
    cfg.rounds = 4;
    cfg.shots = 320;
    cfg.seed = 555;
    cfg.em = ErrorModel::standard(8e-3);
    cfg.decoderKind = DecoderKind::UnionFind;
    cfg.trackLpr = true;
    MemoryExperiment scalar_exp(code, cfg);
    auto scalar = scalar_exp.run(PolicyKind::Eraser);

    cfg.batchWidth = 512;
    MemoryExperiment wide_exp(code, cfg);
    auto wide = wide_exp.run(PolicyKind::Eraser);

    ASSERT_GT(scalar.logicalErrors, 0u);
    ASSERT_GT(wide.logicalErrors, 0u);
    const double p_pool = (scalar.ler() + wide.ler()) / 2.0;
    const double sigma =
        std::sqrt(2.0 * p_pool * (1 - p_pool) / (double)cfg.shots);
    EXPECT_NEAR(scalar.ler(), wide.ler(), 5 * sigma);

    for (int r = 1; r < cfg.rounds; ++r) {
        const double a = scalar.lprData(r);
        const double b = wide.lprData(r);
        ASSERT_GT(a, 0.0);
        ASSERT_GT(b, 0.0);
        const double trials = (double)cfg.shots * code.numData();
        const double pool = (a + b) / 2.0;
        const double s =
            std::sqrt(2.0 * pool * (1 - pool) / trials);
        EXPECT_NEAR(a, b, 6 * s + 1e-9) << "round " << r;
    }
}

TEST(BatchDifferential, BatchedRunIsDeterministic)
{
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 4;
    cfg.shots = 200;
    cfg.seed = 99;
    cfg.em = ErrorModel::standard(3e-3);
    cfg.batchWidth = 64;
    MemoryExperiment exp(code, cfg);
    auto a = exp.run(PolicyKind::EraserM);
    auto b = exp.run(PolicyKind::EraserM);
    EXPECT_EQ(a.logicalErrors, b.logicalErrors);
    EXPECT_EQ(a.lrcsScheduled, b.lrcsScheduled);
    EXPECT_EQ(a.tp, b.tp);
    EXPECT_EQ(a.fn, b.fn);
}

} // namespace
} // namespace qec
