/**
 * @file
 * Unit tests of the width-generic SIMD plane-word layer
 * (base/simd_word.h): every WordVec operation is checked word-for-word
 * against the scalar uint64_t reference semantics, at both supported
 * wide widths (4 and 8 plane words), plus the lane helpers and the
 * compile/run-time backend dispatch hooks. When the build forces the
 * portable fallback (QEC_SIMD_FORCE_PORTABLE) the same tests pin the
 * portable implementations instead — the two backends must be
 * indistinguishable here by construction.
 */

#include <gtest/gtest.h>

#include <type_traits>
#include <vector>

#include "base/rng.h"
#include "base/simd_word.h"

namespace qec
{
namespace
{

template <int NW>
WordVec<NW>
randomVec(Rng &rng)
{
    WordVec<NW> v;
    for (int i = 0; i < NW; ++i)
        v.w[i] = rng.next();
    return v;
}

template <int NW>
void
checkBooleanOpsAgainstScalar()
{
    Rng rng(42 + NW);
    for (int iter = 0; iter < 200; ++iter) {
        const WordVec<NW> a = randomVec<NW>(rng);
        const WordVec<NW> b = randomVec<NW>(rng);
        const WordVec<NW> band = a & b;
        const WordVec<NW> bor = a | b;
        const WordVec<NW> bxor = a ^ b;
        const WordVec<NW> bnot = ~a;
        const WordVec<NW> bandn = andnot(a, b);
        for (int i = 0; i < NW; ++i) {
            ASSERT_EQ(band.w[i], a.w[i] & b.w[i]);
            ASSERT_EQ(bor.w[i], a.w[i] | b.w[i]);
            ASSERT_EQ(bxor.w[i], a.w[i] ^ b.w[i]);
            ASSERT_EQ(bnot.w[i], ~a.w[i]);
            ASSERT_EQ(bandn.w[i], a.w[i] & ~b.w[i]);
        }
        int pop = 0;
        for (int i = 0; i < NW; ++i)
            pop += __builtin_popcountll(a.w[i]);
        ASSERT_EQ(popcountLanes(a), pop);
        ASSERT_EQ(anyLane(a), pop != 0);
    }
}

TEST(SimdWord, BooleanOpsMatchScalarReference)
{
    checkBooleanOpsAgainstScalar<4>();
    checkBooleanOpsAgainstScalar<8>();
}

TEST(SimdWord, CompoundAssignmentMatchesBinaryOps)
{
    Rng rng(7);
    const WordVec<4> a = randomVec<4>(rng);
    const WordVec<4> b = randomVec<4>(rng);
    WordVec<4> c = a;
    c &= b;
    EXPECT_EQ(c, a & b);
    c = a;
    c |= b;
    EXPECT_EQ(c, a | b);
    c = a;
    c ^= b;
    EXPECT_EQ(c, a ^ b);
    EXPECT_NE(a, ~a);
}

TEST(SimdWord, DefaultConstructionIsZero)
{
    WordVec<8> v;
    EXPECT_FALSE(anyLane(v));
    EXPECT_EQ(popcountLanes(v), 0);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(v.w[i], 0u);
}

TEST(SimdWord, LaneBitHelpersAddressTheRightWord)
{
    WordVec<8> v;
    for (int lane : {0, 1, 63, 64, 100, 255, 256, 511}) {
        setLane(v, lane);
        EXPECT_TRUE(testLane(v, lane)) << lane;
        EXPECT_EQ(v.w[lane >> 6], uint64_t{1} << (lane & 63));
        flipLane(v, lane);
        EXPECT_FALSE(testLane(v, lane)) << lane;
        EXPECT_FALSE(anyLane(v));
        // flipLane toggles, setLane is idempotent.
        setLane(v, lane);
        setLane(v, lane);
        EXPECT_EQ(popcountLanes(v), 1);
        flipLane(v, lane);
    }
    // The scalar overloads share the semantics.
    uint64_t s = 0;
    setLane(s, 13);
    EXPECT_TRUE(testLane(s, 13));
    flipLane(s, 13);
    EXPECT_EQ(s, 0u);
}

TEST(SimdWord, ClearLaneDropsExactlyOneLane)
{
    // Lane ids are laundered through a volatile: gcc 12's AVX-512
    // constant folder miscounts a fully compile-time-known
    // setLane/popcount chain, and this test targets the runtime code
    // path the engine actually executes.
    volatile int base = 0;
    WordVec<4> v;
    for (int lane : {0, 63, 64, 129, 255})
        setLane(v, lane + base);
    clearLane(v, 129 + base);
    EXPECT_FALSE(testLane(v, 129));
    EXPECT_EQ(popcountLanes(v), 4);
    clearLane(v, 200 + base);   // clearing an unset lane is a no-op
    EXPECT_EQ(popcountLanes(v), 4);

    uint64_t s = (1ull << 9) | (1ull << 30);
    clearLane(s, 9 + base);
    EXPECT_EQ(s, 1ull << 30);
}

TEST(SimdWord, LaneMaskCoversExactlyTheLowLanes)
{
    EXPECT_EQ(laneMask64(0), 0u);
    EXPECT_EQ(laneMask64(1), 1u);
    EXPECT_EQ(laneMask64(64), ~uint64_t{0});
    EXPECT_EQ(laneMask64(70), ~uint64_t{0});
    EXPECT_EQ(laneMask64(-3), 0u);

    for (int n : {0, 1, 63, 64, 65, 128, 200, 256, 300, 511, 512}) {
        const auto m = laneMaskOf<WordVec<8>>(n);
        EXPECT_EQ(popcountLanes(m), n);
        for (int lane = 0; lane < 512; ++lane)
            ASSERT_EQ(testLane(m, lane), lane < n) << n << " " << lane;
    }
    EXPECT_EQ(laneMaskOf<uint64_t>(10), laneMask64(10));
}

TEST(SimdWord, ForEachSetLaneVisitsAscendingAcrossWords)
{
    WordVec<4> v;
    const std::vector<int> lanes = {0, 5, 63, 64, 130, 200, 255};
    for (int l : lanes)
        setLane(v, l);
    std::vector<int> seen;
    forEachSetLane(v, [&](int l) { seen.push_back(l); });
    EXPECT_EQ(seen, lanes);

    uint64_t s = (1ull << 3) | (1ull << 40);
    seen.clear();
    forEachSetLane(s, [&](int l) { seen.push_back(l); });
    EXPECT_EQ(seen, (std::vector<int>{3, 40}));
}

TEST(SimdWord, LaneWordAccessorsRoundTrip)
{
    WordVec<4> v;
    laneWordRef(v, 2) = 0xDEADBEEFull;
    EXPECT_EQ(laneWord(v, 2), 0xDEADBEEFull);
    EXPECT_EQ(laneWord(v, 0), 0u);
    uint64_t s = 0;
    laneWordRef(s, 0) = 7;
    EXPECT_EQ(laneWord(s, 0), 7u);
}

TEST(SimdWord, LaneWordTypeSelectsRawWordAtWidthOne)
{
    static_assert(std::is_same_v<LaneWord<1>, uint64_t>,
                  "NW=1 must be the raw pre-SIMD word type");
    static_assert(std::is_same_v<LaneWord<4>, WordVec<4>>, "");
    static_assert(WordVec<4>::kLanes == 256, "");
    static_assert(WordVec<8>::kLanes == kMaxBatchLanes, "");
    static_assert(alignof(WordVec<4>) == 32, "");
    static_assert(alignof(WordVec<8>) == 64, "");
}

TEST(SimdWord, RuntimeDispatchIsConsistent)
{
    EXPECT_TRUE(runtimeSimdSupported(SimdBackend::Portable));
    // Whatever backend this test TU was compiled with must run here.
    EXPECT_TRUE(runtimeSimdSupported(compiledSimdBackend()));
    EXPECT_NE(simdBackendName(), nullptr);
    const int w = recommendedBatchWidth();
    EXPECT_TRUE(w == 64 || w == 256 || w == 512);
    EXPECT_LE(w, kMaxBatchLanes);
#if defined(QEC_SIMD_FORCE_PORTABLE)
    EXPECT_EQ(compiledSimdBackend(), SimdBackend::Portable);
    EXPECT_STREQ(simdBackendName(), "portable");
    // Portable WordVec ops are scalar loops: widths above 64 only add
    // plane-depth overhead, so the recommendation must clamp to 64 no
    // matter what vector units the host CPU has.
    EXPECT_EQ(w, 64);
#endif
    // Whatever the host, a portable *engine build* never benefits
    // from wide words; the clamp is keyed on the compiled backend.
    if (compiledSimdBackend() == SimdBackend::Portable) {
        EXPECT_EQ(w, 64);
    }
}

} // namespace
} // namespace qec
