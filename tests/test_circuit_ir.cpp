/**
 * @file
 * Circuit-IR tests: compile-then-replay must be bit-identical to the
 * frozen hand-wired drivers (fingerprints, counters, LPR) at every
 * engine width, validation must reject malformed programs, the
 * program-derived detector model must equal the lattice walk, and the
 * repetition-code compiler path must produce sane logical error
 * rates.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "code/circuit_ir.h"
#include "decoder/detector_model.h"
#include "exp/handwired_reference.h"
#include "exp/memory_experiment.h"

namespace qec
{
namespace
{

// ------------------------------------------------------- compilation

TEST(CircuitIr, CompiledSurfaceProgramsValidate)
{
    for (int d : {3, 5}) {
        RotatedSurfaceCode code(d);
        for (Basis basis : {Basis::Z, Basis::X}) {
            for (IrTailKind tail :
                 {IrTailKind::SwapLrc, IrTailKind::Dqlr}) {
                CircuitProgram prog = CircuitCompiler::surfaceMemory(
                    code, 3 * d, basis, tail);
                EXPECT_TRUE(prog.validate().isOk())
                    << prog.validate().toString();
                EXPECT_EQ(prog.family, CircuitFamily::SurfaceMemory);
                EXPECT_EQ(prog.numData, code.numData());
                EXPECT_EQ(prog.numStabs, code.numStabilizers());
                EXPECT_EQ(prog.numQubits, code.numQubits());
                EXPECT_EQ(prog.rounds, 3 * d);
            }
        }
    }
}

TEST(CircuitIr, CompiledRepetitionProgramsValidate)
{
    for (int d : {2, 3, 5, 9}) {
        CircuitProgram prog =
            CircuitCompiler::repetitionMemory(d, 2 * d);
        EXPECT_TRUE(prog.validate().isOk())
            << prog.validate().toString();
        EXPECT_EQ(prog.family, CircuitFamily::RepetitionMemory);
        EXPECT_EQ(prog.numData, d);
        EXPECT_EQ(prog.numStabs, d - 1);
        EXPECT_EQ(prog.numQubits, 2 * d - 1);
        // Check s acts on data {s, s+1} — the line graph.
        for (int s = 0; s < d - 1; ++s) {
            EXPECT_TRUE(prog.supportContains(s, s));
            EXPECT_TRUE(prog.supportContains(s, s + 1));
            EXPECT_FALSE(prog.supportContains(s, s + 2));
        }
        // Every round-0 detector column is deterministic.
        for (int s = 0; s < d - 1; ++s)
            EXPECT_TRUE(prog.detR0[s]);
    }
}

// -------------------------------------------------------- validation

CircuitProgram
surfaceProgram()
{
    RotatedSurfaceCode code(3);
    return CircuitCompiler::surfaceMemory(code, 4, Basis::Z,
                                          IrTailKind::SwapLrc);
}

TEST(CircuitIrValidate, RejectsDanglingGateQubit)
{
    CircuitProgram prog = surfaceProgram();
    // Find a qubit-bearing Gate (RoundStart markers carry none) and
    // point its pool op off the lattice.
    for (size_t i = prog.bodyBegin; i < prog.bodyEnd; ++i) {
        if (prog.instrs[i].op == IrOpcode::Gate &&
            prog.pool[prog.instrs[i].a].type != OpType::RoundStart) {
            prog.pool[prog.instrs[i].a].q0 = prog.numQubits;
            break;
        }
    }
    const Status st = prog.validate();
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), StatusCode::InvalidArgument);
}

TEST(CircuitIrValidate, RejectsDanglingReadoutStab)
{
    CircuitProgram prog = surfaceProgram();
    for (size_t i = prog.bodyBegin; i < prog.bodyEnd; ++i) {
        if (prog.instrs[i].op == IrOpcode::Readout) {
            prog.instrs[i].a = prog.numStabs;
            break;
        }
    }
    const Status st = prog.validate();
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), StatusCode::InvalidArgument);
}

TEST(CircuitIrValidate, RejectsUnclosedRoundLoop)
{
    CircuitProgram prog = surfaceProgram();
    // Drop the RoundEnd marker: the loop never closes.
    prog.instrs.erase(prog.instrs.begin() + (ptrdiff_t)prog.bodyEnd);
    const Status st = prog.validate();
    ASSERT_FALSE(st.isOk());
    EXPECT_NE(st.message().find("unclosed"), std::string::npos)
        << st.toString();
}

TEST(CircuitIrValidate, RejectsDuplicateLrcSlotIds)
{
    CircuitProgram prog = surfaceProgram();
    // A second slot with id 0 inside the round body.
    IrInst dup;
    dup.op = IrOpcode::LrcSlot;
    dup.a = 0;
    prog.instrs.insert(prog.instrs.begin() + (ptrdiff_t)prog.bodyEnd,
                       dup);
    prog.bodyEnd += 1;
    const Status st = prog.validate();
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), StatusCode::InvalidArgument);
}

TEST(CircuitIrValidate, RejectsBadRoundCount)
{
    CircuitProgram prog = surfaceProgram();
    prog.rounds = 0;
    EXPECT_FALSE(prog.validate().isOk());
}

// ---------------------------------------------- detector-model parity

using EdgeKey = std::tuple<int, int, bool>;
using EdgeMap = std::map<EdgeKey, std::tuple<int, int, int>>;

EdgeMap
toMap(const DetectorModel &model)
{
    EdgeMap map;
    for (const auto &e : model.edges) {
        auto &counts = map[EdgeKey{e.a, e.b, e.obsFlip}];
        std::get<0>(counts) += e.n1;
        std::get<1>(counts) += e.n3;
        std::get<2>(counts) += e.n15;
    }
    return map;
}

TEST(CircuitIrDem, ProgramModelMatchesLatticeModel)
{
    for (int d : {3, 5}) {
        RotatedSurfaceCode code(d);
        // 4 exercises direct enumeration, 12 the tiling path.
        for (int rounds : {4, 12}) {
            for (Basis basis : {Basis::Z, Basis::X}) {
                CircuitProgram prog = CircuitCompiler::surfaceMemory(
                    code, rounds, basis, IrTailKind::SwapLrc);
                DetectorModel from_code =
                    buildDetectorModel(code, rounds, basis);
                DetectorModel from_prog = buildDetectorModel(prog);
                EXPECT_EQ(from_prog.rounds, from_code.rounds);
                EXPECT_EQ(from_prog.stabsPerRound,
                          from_code.stabsPerRound);
                EXPECT_EQ(toMap(from_prog), toMap(from_code))
                    << "d=" << d << " rounds=" << rounds;
            }
        }
    }
}

// -------------------------------------- replay vs hand-wired drivers

void
expectResultsMatch(const ExperimentResult &ir,
                   const HandwiredResult &hw)
{
    EXPECT_EQ(ir.verdictFingerprint, hw.verdictFingerprint);
    EXPECT_EQ(ir.logicalErrors, hw.logicalErrors);
    EXPECT_EQ(ir.tp, hw.tp);
    EXPECT_EQ(ir.fp, hw.fp);
    EXPECT_EQ(ir.tn, hw.tn);
    EXPECT_EQ(ir.fn, hw.fn);
    EXPECT_EQ(ir.lrcsScheduled, hw.lrcsScheduled);
    ASSERT_EQ(ir.lprDataSum.size(), hw.lprData.size());
    for (size_t r = 0; r < hw.lprData.size(); ++r) {
        EXPECT_EQ(ir.lprDataSum[r], hw.lprData[r]) << "round " << r;
        EXPECT_EQ(ir.lprParitySum[r], hw.lprParity[r])
            << "round " << r;
    }
}

class IrReplaySweep
    : public ::testing::TestWithParam<
          std::tuple<unsigned, RemovalProtocol, PolicyKind>>
{
};

TEST_P(IrReplaySweep, ReplayMatchesHandwired)
{
    const auto [width, protocol, kind] = GetParam();
    RotatedSurfaceCode code(5);

    ExperimentConfig cfg;
    cfg.rounds = 12;
    cfg.basis = Basis::Z;
    cfg.em = ErrorModel::standard(2e-3);
    cfg.protocol = protocol;
    // 161 shots: full groups plus a ragged tail at every width (and
    // multi-block ragged groups at 256/512).
    cfg.shots = 161;
    cfg.seed = 77;
    cfg.decoderKind = DecoderKind::UnionFind;
    cfg.trackLpr = true;
    cfg.threads = 1;
    cfg.batchWidth = width;

    MemoryExperiment exp(code, cfg);
    const PolicyFactory factory = makePolicyFactory(
        kind, exp.code(), exp.lookup(),
        protocol == RemovalProtocol::Dqlr);

    const ExperimentResult ir = exp.runBatched(factory, "ir");
    const HandwiredResult hw = runHandwired(exp, factory);
    expectResultsMatch(ir, hw);
}

INSTANTIATE_TEST_SUITE_P(
    Widths, IrReplaySweep,
    ::testing::Values(
        // The ERASER controller exercises divergent LRC-slot tails
        // under both removal protocols at every engine width.
        std::make_tuple(64u, RemovalProtocol::SwapLrc,
                        PolicyKind::Eraser),
        std::make_tuple(256u, RemovalProtocol::SwapLrc,
                        PolicyKind::Eraser),
        std::make_tuple(512u, RemovalProtocol::SwapLrc,
                        PolicyKind::Eraser),
        std::make_tuple(64u, RemovalProtocol::Dqlr,
                        PolicyKind::Eraser),
        std::make_tuple(256u, RemovalProtocol::Dqlr,
                        PolicyKind::Eraser),
        std::make_tuple(512u, RemovalProtocol::Dqlr,
                        PolicyKind::Eraser),
        // ERASER+M takes the multi-level squash branch in the tails.
        std::make_tuple(256u, RemovalProtocol::SwapLrc,
                        PolicyKind::EraserM),
        // Optimal is the PerLane scatter fallback; Always the
        // lane-uniform whole-word schedule; Never the empty branch.
        std::make_tuple(256u, RemovalProtocol::SwapLrc,
                        PolicyKind::Optimal),
        std::make_tuple(256u, RemovalProtocol::SwapLrc,
                        PolicyKind::Always),
        std::make_tuple(256u, RemovalProtocol::SwapLrc,
                        PolicyKind::Never)));

// ------------------------------------------------- repetition memory

ExperimentResult
runRepetition(int distance, double p, uint64_t shots)
{
    RotatedSurfaceCode code(distance);
    ExperimentConfig cfg;
    cfg.family = CircuitFamily::RepetitionMemory;
    cfg.rounds = 5;
    cfg.basis = Basis::Z;
    cfg.em = ErrorModel::withoutLeakage(p);
    cfg.shots = shots;
    cfg.seed = 1234;
    cfg.decoderKind = DecoderKind::UnionFind;
    cfg.batchWidth = 256;
    cfg.threads = 1;
    MemoryExperiment exp(code, cfg);
    return exp.run(PolicyKind::Never);
}

TEST(CircuitIrRepetition, LerSanity)
{
    // Below threshold, the repetition code's logical error rate must
    // fall with distance; at p = 5e-3 and 5 rounds the analytic
    // leading order (~ rounds * C(d, ceil(d/2)) p^ceil(d/2) per
    // majority fault path) puts d=3 well above d=5 and both far
    // below 50%.
    const ExperimentResult d3 = runRepetition(3, 5e-3, 1 << 14);
    const ExperimentResult d5 = runRepetition(5, 5e-3, 1 << 14);
    EXPECT_GT(d3.logicalErrors, 0u);
    EXPECT_LT(d3.ler(), 0.2);
    EXPECT_LT(d5.ler(), d3.ler());
}

TEST(CircuitIrRepetition, RejectsXBasis)
{
    ExperimentConfig cfg;
    cfg.family = CircuitFamily::RepetitionMemory;
    cfg.rounds = 3;
    cfg.basis = Basis::X;
    EXPECT_FALSE(validateExperimentConfig(cfg).isOk());
}

} // namespace
} // namespace qec
