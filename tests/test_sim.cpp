/**
 * @file
 * Frame-simulator semantics: Pauli propagation truth tables, noiseless
 * determinism, localized error signatures, and every leakage rule of
 * Section 5.2 (transport models, seepage, leaked readout, LRC removal,
 * DQLR behaviour).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "code/builder.h"
#include "code/rotated_surface_code.h"
#include "decoder/defects.h"
#include "sim/frame_simulator.h"

namespace qec
{
namespace
{

Op
op(OpType type, int q0, int q1 = -1)
{
    Op o;
    o.type = type;
    o.q0 = q0;
    o.q1 = q1;
    return o;
}

TEST(FrameSim, CnotPropagatesXForward)
{
    FrameSimulator sim(2, ErrorModel::noiseless(), Rng(1));
    sim.injectPauli(0, Pauli::X);
    sim.execute(op(OpType::Cnot, 0, 1));
    EXPECT_TRUE(sim.xFrame(0));
    EXPECT_TRUE(sim.xFrame(1));
    EXPECT_FALSE(sim.zFrame(0));
}

TEST(FrameSim, CnotPropagatesZBackward)
{
    FrameSimulator sim(2, ErrorModel::noiseless(), Rng(1));
    sim.injectPauli(1, Pauli::Z);
    sim.execute(op(OpType::Cnot, 0, 1));
    EXPECT_TRUE(sim.zFrame(0));
    EXPECT_TRUE(sim.zFrame(1));
    EXPECT_FALSE(sim.xFrame(1));
}

TEST(FrameSim, CnotLeavesXOnTargetAlone)
{
    FrameSimulator sim(2, ErrorModel::noiseless(), Rng(1));
    sim.injectPauli(1, Pauli::X);
    sim.execute(op(OpType::Cnot, 0, 1));
    EXPECT_FALSE(sim.xFrame(0));
    EXPECT_TRUE(sim.xFrame(1));
}

TEST(FrameSim, HadamardSwapsFrames)
{
    FrameSimulator sim(1, ErrorModel::noiseless(), Rng(1));
    sim.injectPauli(0, Pauli::X);
    sim.execute(op(OpType::H, 0));
    EXPECT_FALSE(sim.xFrame(0));
    EXPECT_TRUE(sim.zFrame(0));
    sim.execute(op(OpType::H, 0));
    EXPECT_TRUE(sim.xFrame(0));
    EXPECT_FALSE(sim.zFrame(0));
}

TEST(FrameSim, SwapViaThreeCnotsExchangesFrames)
{
    FrameSimulator sim(2, ErrorModel::noiseless(), Rng(1));
    sim.injectPauli(0, Pauli::Y);
    sim.execute(op(OpType::Cnot, 0, 1));
    sim.execute(op(OpType::Cnot, 1, 0));
    sim.execute(op(OpType::Cnot, 0, 1));
    EXPECT_FALSE(sim.xFrame(0));
    EXPECT_FALSE(sim.zFrame(0));
    EXPECT_TRUE(sim.xFrame(1));
    EXPECT_TRUE(sim.zFrame(1));
}

TEST(FrameSim, MovIntoResetQubit)
{
    // CNOT(p, d); CNOT(d, p) moves p's state into freshly reset d.
    FrameSimulator sim(2, ErrorModel::noiseless(), Rng(1));
    sim.injectPauli(0, Pauli::Y);   // qubit 0 plays the parity role
    sim.execute(op(OpType::Reset, 1));
    sim.execute(op(OpType::Cnot, 0, 1));
    sim.execute(op(OpType::Cnot, 1, 0));
    EXPECT_TRUE(sim.xFrame(1));
    EXPECT_TRUE(sim.zFrame(1));
    EXPECT_FALSE(sim.xFrame(0));
    // A Z frame on |0> is unobservable; X must be clear.
}

TEST(FrameSim, MeasureReportsXFrame)
{
    FrameSimulator sim(1, ErrorModel::noiseless(), Rng(1));
    sim.injectPauli(0, Pauli::X);
    sim.execute(op(OpType::Measure, 0));
    sim.injectPauli(0, Pauli::Z);
    sim.execute(op(OpType::Measure, 0));
    ASSERT_EQ(sim.record().size(), 2u);
    EXPECT_TRUE(sim.record()[0].flip);
    EXPECT_TRUE(sim.record()[1].flip);   // X still set; Z invisible
}

TEST(FrameSim, MeasureXReportsZFrame)
{
    FrameSimulator sim(1, ErrorModel::noiseless(), Rng(1));
    sim.injectPauli(0, Pauli::Z);
    sim.execute(op(OpType::MeasureX, 0));
    EXPECT_TRUE(sim.record()[0].flip);
}

TEST(FrameSim, ResetClearsEverything)
{
    FrameSimulator sim(1, ErrorModel::noiseless(), Rng(1));
    sim.injectPauli(0, Pauli::Y);
    sim.setLeaked(0, true);
    sim.execute(op(OpType::Reset, 0));
    EXPECT_FALSE(sim.xFrame(0));
    EXPECT_FALSE(sim.zFrame(0));
    EXPECT_FALSE(sim.leaked(0));
}

class NoiselessSweep
    : public ::testing::TestWithParam<std::tuple<int, int, Basis>>
{
};

TEST_P(NoiselessSweep, AllOutcomesDeterministic)
{
    const auto [d, rounds, basis] = GetParam();
    RotatedSurfaceCode code(d);
    Circuit circuit = buildMemoryCircuit(code, rounds, basis);
    FrameSimulator sim(code.numQubits(), ErrorModel::noiseless(),
                       Rng(99));
    sim.run(circuit);
    for (const auto &rec : sim.record())
        ASSERT_FALSE(rec.flip);
    ShotOutcome outcome =
        extractDefects(code, basis, rounds, sim.record());
    EXPECT_TRUE(outcome.defects.empty());
    EXPECT_FALSE(outcome.observableFlip);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NoiselessSweep,
    ::testing::Combine(::testing::Values(3, 5, 7),
                       ::testing::Values(1, 2, 5, 9),
                       ::testing::Values(Basis::Z, Basis::X)));

TEST(FrameSim, SingleDataXProducesAdjacentZDefects)
{
    RotatedSurfaceCode code(5);
    const int rounds = 4;
    Circuit circuit = buildMemoryCircuit(code, rounds, Basis::Z);
    FrameSimulator sim(code.numQubits(), ErrorModel::noiseless(),
                       Rng(7));

    // Execute round 0, inject X on a bulk data qubit, run the rest.
    const int q = code.dataId(2, 2);
    sim.reset();
    const Op *ops = circuit.ops.data();
    sim.executeRange(ops, ops + circuit.roundBegin[1]);
    sim.injectPauli(q, Pauli::X);
    sim.executeRange(ops + circuit.roundBegin[1],
                     ops + circuit.ops.size());

    ShotOutcome outcome =
        extractDefects(code, Basis::Z, rounds, sim.record());

    // Expected: one defect per adjacent Z stabilizer, in round 1.
    std::vector<int> expected;
    const int n_s = code.numZStabilizers();
    for (int s : code.stabilizersOfData(q)) {
        if (code.stabilizer(s).type == StabType::Z)
            expected.push_back(1 * n_s + code.stabilizer(s).basisIndex);
    }
    std::sort(expected.begin(), expected.end());
    auto defects = outcome.defects;
    std::sort(defects.begin(), defects.end());
    EXPECT_EQ(defects, expected);
    EXPECT_EQ(expected.size(), 2u);
}

TEST(FrameSim, LogicalSupportErrorFlipsObservable)
{
    RotatedSurfaceCode code(3);
    const int rounds = 2;
    Circuit circuit = buildMemoryCircuit(code, rounds, Basis::Z);
    FrameSimulator sim(code.numQubits(), ErrorModel::noiseless(),
                       Rng(7));
    const int q = code.logicalZSupport()[0];

    sim.reset();
    const Op *ops = circuit.ops.data();
    sim.executeRange(ops, ops + circuit.roundBegin[1]);
    sim.injectPauli(q, Pauli::X);
    sim.executeRange(ops + circuit.roundBegin[1],
                     ops + circuit.ops.size());
    ShotOutcome outcome =
        extractDefects(code, Basis::Z, rounds, sim.record());
    EXPECT_TRUE(outcome.observableFlip);
}

TEST(FrameSim, DataZErrorInvisibleToZChecks)
{
    RotatedSurfaceCode code(3);
    const int rounds = 3;
    Circuit circuit = buildMemoryCircuit(code, rounds, Basis::Z);
    FrameSimulator sim(code.numQubits(), ErrorModel::noiseless(),
                       Rng(7));
    sim.reset();
    const Op *ops = circuit.ops.data();
    sim.executeRange(ops, ops + circuit.roundBegin[1]);
    sim.injectPauli(code.dataId(1, 1), Pauli::Z);
    sim.executeRange(ops + circuit.roundBegin[1],
                     ops + circuit.ops.size());
    ShotOutcome outcome =
        extractDefects(code, Basis::Z, rounds, sim.record());
    EXPECT_TRUE(outcome.defects.empty());
    EXPECT_FALSE(outcome.observableFlip);
}

TEST(FrameSim, LeakedMeasurementIsRandom)
{
    ErrorModel em = ErrorModel::noiseless();
    FrameSimulator sim(1, em, Rng(5));
    sim.setLeaked(0, true);
    int flips = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        sim.execute(op(OpType::Measure, 0));
        flips += sim.record().back().flip ? 1 : 0;
    }
    EXPECT_NEAR(flips, n / 2, 5 * std::sqrt(n / 4.0));
}

TEST(FrameSim, MultiLevelLabelFlagsLeakage)
{
    ErrorModel em = ErrorModel::standard(1e-3);
    FrameSimulator sim(1, em, Rng(5));
    // Leaked qubit: labelled |L> except at the 10p miss rate.
    sim.setLeaked(0, true);
    int labels = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        sim.execute(op(OpType::Measure, 0));
        labels += sim.record().back().leakedLabel ? 1 : 0;
        sim.setLeaked(0, true);   // measurement does not clear leakage
    }
    const double miss = em.multiLevelMissProb();
    EXPECT_NEAR(labels, n * (1 - miss),
                5 * std::sqrt(n * miss * (1 - miss)) + 5);
}

TEST(FrameSim, UnleakedNeverLabeledLeaked)
{
    ErrorModel em = ErrorModel::standard(1e-3);
    FrameSimulator sim(1, em, Rng(5));
    for (int i = 0; i < 5000; ++i) {
        sim.execute(op(OpType::Measure, 0));
        ASSERT_FALSE(sim.record().back().leakedLabel);
    }
}

TEST(FrameSim, ConservativeTransportGrowsLeakage)
{
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    em.pTransport = 0.1;
    int transported = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        FrameSimulator sim(2, em, Rng(1000 + i));
        sim.setLeaked(0, true);
        sim.execute(op(OpType::Cnot, 0, 1));
        EXPECT_TRUE(sim.leaked(0));   // source always stays leaked
        transported += sim.leaked(1) ? 1 : 0;
    }
    EXPECT_NEAR(transported, n * 0.1, 5 * std::sqrt(n * 0.1 * 0.9));
}

TEST(FrameSim, ExchangeTransportPreservesLeakageCount)
{
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    em.pTransport = 0.1;
    em.transport = TransportModel::Exchange;
    int transported = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        FrameSimulator sim(2, em, Rng(2000 + i));
        sim.setLeaked(0, true);
        sim.execute(op(OpType::Cnot, 0, 1));
        const int leaked =
            (sim.leaked(0) ? 1 : 0) + (sim.leaked(1) ? 1 : 0);
        ASSERT_EQ(leaked, 1);   // exchange never duplicates leakage
        transported += sim.leaked(1) ? 1 : 0;
    }
    EXPECT_NEAR(transported, n * 0.1, 5 * std::sqrt(n * 0.1 * 0.9));
}

TEST(FrameSim, LeakedCnotRandomizesPartner)
{
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    em.pTransport = 0.0;
    int x_flips = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        FrameSimulator sim(2, em, Rng(3000 + i));
        sim.setLeaked(0, true);
        sim.execute(op(OpType::Cnot, 0, 1));
        x_flips += sim.xFrame(1) ? 1 : 0;
    }
    // Uniform Pauli: X or Y set the X frame -> rate 1/2.
    EXPECT_NEAR(x_flips, n / 2, 5 * std::sqrt(n / 4.0));
}

TEST(FrameSim, BothLeakedCnotIsInert)
{
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    FrameSimulator sim(2, em, Rng(5));
    sim.setLeaked(0, true);
    sim.setLeaked(1, true);
    sim.execute(op(OpType::Cnot, 0, 1));
    EXPECT_TRUE(sim.leaked(0));
    EXPECT_TRUE(sim.leaked(1));
    EXPECT_FALSE(sim.xFrame(0) || sim.xFrame(1));
}

TEST(FrameSim, SeepageReturnsQubit)
{
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    em.p = 1.0;             // seepage prob = seepFraction * p = 0.1
    em.leakFraction = 0.0;  // no fresh injection
    int returned = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        FrameSimulator sim(1, em, Rng(4000 + i));
        sim.setLeaked(0, true);
        Op noise = op(OpType::DataNoise, 0);
        sim.execute(noise);
        returned += sim.leaked(0) ? 0 : 1;
    }
    EXPECT_NEAR(returned, n * 0.1, 5 * std::sqrt(n * 0.1 * 0.9));
}

TEST(FrameSim, RoundStartInjectionRate)
{
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    em.p = 1e-1;   // injection = 0.1 * p = 1e-2 for a fast test
    int leaked = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        FrameSimulator sim(1, em, Rng(5000 + i));
        sim.execute(op(OpType::DataNoise, 0));
        leaked += sim.leaked(0) ? 1 : 0;
    }
    EXPECT_NEAR(leaked, n * 0.01, 5 * std::sqrt(n * 0.01 * 0.99));
}

TEST(FrameSim, LrcRemovesDataLeakage)
{
    // A leaked data qubit that undergoes an LRC is clean afterwards
    // (its leakage cannot ride through the SWAP; the reset clears it).
    RotatedSurfaceCode code(3);
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    em.pTransport = 0.0;
    const int q = code.dataId(1, 1);
    const int stab = code.stabilizersOfData(q).front();

    FrameSimulator sim(code.numQubits(), em, Rng(6));
    sim.setLeaked(q, true);
    RoundSchedule round = buildRoundSchedule(code, 0, {{q, stab}});
    sim.executeRange(round.ops.data(),
                     round.ops.data() + round.ops.size());
    EXPECT_FALSE(sim.leaked(q));
}

TEST(FrameSim, LrcCanTransportLeakageToParity)
{
    RotatedSurfaceCode code(3);
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    em.pTransport = 0.1;
    const int q = code.dataId(1, 1);
    const int stab = code.stabilizersOfData(q).front();
    const int parity = code.stabilizer(stab).ancilla;

    int parity_leaked = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        FrameSimulator sim(code.numQubits(), em, Rng(7000 + i));
        sim.setLeaked(q, true);
        RoundSchedule round = buildRoundSchedule(code, 0, {{q, stab}});
        sim.executeRange(round.ops.data(),
                         round.ops.data() + round.ops.size());
        parity_leaked += sim.leaked(parity) ? 1 : 0;
    }
    // Four P-D CNOTs before the reset at 10% each: ~34% (Eq. 2's
    // transport term).
    EXPECT_GT(parity_leaked, (int)(n * 0.25));
    EXPECT_LT(parity_leaked, (int)(n * 0.45));
}

TEST(FrameSim, PlainRoundRemovesParityLeakage)
{
    RotatedSurfaceCode code(3);
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    em.pTransport = 0.0;
    const int parity = code.stabilizer(0).ancilla;

    FrameSimulator sim(code.numQubits(), em, Rng(8));
    sim.setLeaked(parity, true);
    RoundSchedule round = buildRoundSchedule(code, 0, {});
    sim.executeRange(round.ops.data(),
                     round.ops.data() + round.ops.size());
    EXPECT_FALSE(sim.leaked(parity));
}

TEST(FrameSim, DqlrMovesLeakageOffDataQubit)
{
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    FrameSimulator sim(2, em, Rng(9));
    sim.setLeaked(0, true);
    sim.execute(op(OpType::LeakageIswap, 0, 1));
    EXPECT_FALSE(sim.leaked(0));
    EXPECT_TRUE(sim.leaked(1));
    sim.execute(op(OpType::Reset, 1));
    EXPECT_FALSE(sim.leaked(1));
}

TEST(FrameSim, DqlrResetFailureCanExciteData)
{
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    em.dqlrExciteProb = 1.0;
    FrameSimulator sim(2, em, Rng(10));
    sim.injectPauli(1, Pauli::X);   // failed reset: parity in |1>
    sim.execute(op(OpType::LeakageIswap, 0, 1));
    EXPECT_TRUE(sim.leaked(0));
}

TEST(FrameSim, DqlrCleanOperandsInert)
{
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    FrameSimulator sim(2, em, Rng(11));
    sim.execute(op(OpType::LeakageIswap, 0, 1));
    EXPECT_FALSE(sim.leaked(0));
    EXPECT_FALSE(sim.leaked(1));
}

TEST(FrameSim, CountLeakedRanges)
{
    FrameSimulator sim(10, ErrorModel::noiseless(), Rng(12));
    sim.setLeaked(2, true);
    sim.setLeaked(7, true);
    EXPECT_EQ(sim.countLeaked(0, 10), 2);
    EXPECT_EQ(sim.countLeaked(0, 5), 1);
    EXPECT_EQ(sim.countLeaked(5, 10), 1);
}

} // namespace
} // namespace qec
