/**
 * @file
 * Sweep & session API tests: ExperimentResult::merge algebra, chunked
 * ExperimentSession bit-identity against one-shot runs at every
 * width, early-stop determinism, per-point seed derivation, plan
 * expansion, runner cache accounting, and the unified JSON schema.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "exp/experiment_session.h"
#include "exp/sweep_plan.h"
#include "exp/sweep_runner.h"

namespace qec
{
namespace
{

ExperimentConfig
smallConfig(int rounds, uint64_t shots, unsigned width)
{
    ExperimentConfig cfg;
    cfg.rounds = rounds;
    cfg.shots = shots;
    cfg.seed = 77;
    cfg.em = ErrorModel::standard(1e-3);
    cfg.trackLpr = true;
    cfg.batchWidth = width;
    cfg.threads = 1;
    return cfg;
}

void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b)
{
    EXPECT_EQ(a.shots, b.shots);
    EXPECT_EQ(a.logicalErrors, b.logicalErrors);
    EXPECT_EQ(a.verdictFingerprint, b.verdictFingerprint);
    EXPECT_EQ(a.tp, b.tp);
    EXPECT_EQ(a.fp, b.fp);
    EXPECT_EQ(a.tn, b.tn);
    EXPECT_EQ(a.fn, b.fn);
    EXPECT_EQ(a.lrcsScheduled, b.lrcsScheduled);
    EXPECT_EQ(a.roundsTotal, b.roundsTotal);
    EXPECT_EQ(a.decodedShots + a.zeroDefectShots +
                  a.syndromeCacheHits,
              b.decodedShots + b.zeroDefectShots +
                  b.syndromeCacheHits);
    ASSERT_EQ(a.lprDataSum.size(), b.lprDataSum.size());
    for (size_t r = 0; r < a.lprDataSum.size(); ++r) {
        // LPR sums are integer-valued counts stored in doubles, so
        // chunked accumulation must be exact, not just close.
        EXPECT_EQ(a.lprDataSum[r], b.lprDataSum[r]) << "round " << r;
        EXPECT_EQ(a.lprParitySum[r], b.lprParitySum[r])
            << "round " << r;
    }
}

TEST(Merge, CountersLprAndFingerprintAreOrderIndependent)
{
    ExperimentResult a;
    a.policy = "A";
    a.shots = 10;
    a.logicalErrors = 2;
    a.verdictFingerprint = 0xdeadbeefull;
    a.tp = 1;
    a.fp = 2;
    a.tn = 3;
    a.fn = 4;
    a.lrcsScheduled = 5;
    a.roundsTotal = 60;
    a.decodedShots = 6;
    a.zeroDefectShots = 3;
    a.syndromeCacheHits = 1;
    a.lprDataSum = {1.0, 2.0};
    a.lprParitySum = {3.0, 4.0};
    a.numDataQubits = 9;
    a.numParityQubits = 8;

    ExperimentResult b;
    b.policy = "A";
    b.shots = 4;
    b.logicalErrors = 1;
    b.verdictFingerprint = 0x1234ull;
    b.tp = 10;
    b.fp = 20;
    b.tn = 30;
    b.fn = 40;
    b.lrcsScheduled = 50;
    b.roundsTotal = 24;
    b.decodedShots = 2;
    // b has a longer LPR series: merge widens the shorter operand.
    b.lprDataSum = {10.0, 20.0, 30.0};
    b.lprParitySum = {1.0, 1.0, 1.0};

    ExperimentResult ab = a;
    ab.merge(b);
    ExperimentResult ba = b;
    ba.merge(a);

    expectIdentical(ab, ba);
    EXPECT_EQ(ab.shots, 14u);
    EXPECT_EQ(ab.verdictFingerprint, 0xdeadbeefull ^ 0x1234ull);
    ASSERT_EQ(ab.lprDataSum.size(), 3u);
    EXPECT_EQ(ab.lprDataSum[0], 11.0);
    EXPECT_EQ(ab.lprDataSum[2], 30.0);
    // Both orders adopt the lattice dimensions of whichever operand
    // carried them.
    EXPECT_EQ(ba.numDataQubits, 9);
    EXPECT_EQ(ba.numParityQubits, 8);
    EXPECT_EQ(ba.policy, "A");
}

TEST(Merge, SessionPartialsMergeToTheFullResult)
{
    RotatedSurfaceCode code(3);
    const auto cfg = smallConfig(6, 300, 64);
    MemoryExperiment exp(code, cfg);
    const ExperimentResult whole =
        exp.run(PolicyKind::Eraser);

    ExperimentSession session(exp, PolicyKind::Eraser);
    std::vector<ExperimentResult> partials;
    while (!session.done())
        partials.push_back(session.runChunk(70));

    // Merge the partials back-to-front: order must not matter.
    ExperimentResult reversed;
    for (auto it = partials.rbegin(); it != partials.rend(); ++it)
        reversed.merge(*it);
    expectIdentical(reversed, whole);
    EXPECT_EQ(reversed.policy, whole.policy);
}

TEST(Session, ChunkedRunsAreBitIdenticalAtEveryWidth)
{
    RotatedSurfaceCode code(3);
    for (unsigned width : {64u, 256u, 512u}) {
        const auto cfg = smallConfig(6, 1100, width);
        MemoryExperiment exp(code, cfg);
        const ExperimentResult whole =
            exp.runBatched(makePolicyFactory(PolicyKind::Eraser, code,
                                             exp.lookup(), false),
                           "ERASER");
        for (uint64_t chunk : {1ull, 7ull, 64ull, 512ull}) {
            ExperimentSession session(exp, PolicyKind::Eraser);
            while (!session.done())
                session.runChunk(chunk);
            expectIdentical(session.result(), whole);
            EXPECT_EQ(session.result().verdictFingerprint,
                      whole.verdictFingerprint)
                << "width " << width << " chunk " << chunk;
        }
    }
}

TEST(Session, ScalarPathChunksAreBitIdentical)
{
    RotatedSurfaceCode code(3);
    const auto cfg = smallConfig(6, 101, 1);
    MemoryExperiment exp(code, cfg);
    const ExperimentResult whole = exp.run(PolicyKind::Eraser);

    ExperimentSession session(exp, PolicyKind::Eraser);
    while (!session.done())
        session.runChunk(7);
    expectIdentical(session.result(), whole);
}

TEST(Session, ChunkRoundsUpToWordGroups)
{
    RotatedSurfaceCode code(3);
    const auto cfg = smallConfig(4, 200, 64);
    MemoryExperiment exp(code, cfg);
    ExperimentSession session(exp, PolicyKind::Never);
    const ExperimentResult first = session.runChunk(1);
    EXPECT_EQ(first.shots, 64u);   // one word-group minimum
    EXPECT_EQ(session.shotsRun(), 64u);
    const ExperimentResult rest = session.runChunk(1000);
    EXPECT_EQ(rest.shots, 136u);
    EXPECT_TRUE(session.done());
    EXPECT_FALSE(session.stoppedEarly());
    EXPECT_EQ(session.runChunk(64).shots, 0u);
}

TEST(Session, EarlyStopIsDeterministic)
{
    RotatedSurfaceCode code(3);
    auto cfg = smallConfig(30, 20000, 64);
    cfg.em = ErrorModel::standard(3e-3);

    SessionOptions options;
    options.earlyStop.targetRelPrecision = 0.5;
    options.earlyStop.minErrors = 4;

    uint64_t stops[2];
    for (int i = 0; i < 2; ++i) {
        MemoryExperiment exp(code, cfg);
        ExperimentSession session(exp, PolicyKind::Never, options);
        session.runToCompletion();
        EXPECT_TRUE(session.stoppedEarly());
        EXPECT_LT(session.shotsRun(), cfg.shots);
        EXPECT_GE(session.result().logicalErrors, 4u);
        stops[i] = session.shotsRun();
    }
    EXPECT_EQ(stops[0], stops[1]);

    // Thread count must not move the stop point: the rule sees the
    // same cumulative counters at the same chunk boundaries.
    cfg.threads = 4;
    MemoryExperiment exp(code, cfg);
    ExperimentSession session(exp, PolicyKind::Never, options);
    session.runToCompletion();
    EXPECT_EQ(session.shotsRun(), stops[0]);
}

TEST(Session, MaxShotsCapStopsTheSession)
{
    RotatedSurfaceCode code(3);
    const auto cfg = smallConfig(4, 4096, 64);
    MemoryExperiment exp(code, cfg);
    SessionOptions options;
    options.earlyStop.maxShots = 100;
    ExperimentSession session(exp, PolicyKind::Never, options);
    session.runToCompletion();
    EXPECT_TRUE(session.done());
    EXPECT_TRUE(session.stoppedEarly());
    EXPECT_EQ(session.shotsPlanned(), 100u);
    // Rounded up to the chunk that crossed the cap, never the whole
    // plan.
    EXPECT_GE(session.shotsRun(), 100u);
    EXPECT_LT(session.shotsRun(), cfg.shots);
}

TEST(Session, WilsonRelHalfWidthShrinksWithShots)
{
    const double loose = wilsonRelHalfWidth(10, 100, 1.96);
    const double tight = wilsonRelHalfWidth(1000, 10000, 1.96);
    EXPECT_GT(loose, tight);
    EXPECT_GT(tight, 0.0);
    EXPECT_GT(wilsonRelHalfWidth(0, 0, 1.96), 1e300);
}

TEST(SweepPlan, SeedDerivationIsStableAndPhysicsOnly)
{
    const ErrorModel em = ErrorModel::standard(1e-3);
    const uint64_t seed = sweepPointSeed(
        5, 50, Basis::Z, RemovalProtocol::SwapLrc, em);
    EXPECT_EQ(seed,
              sweepPointSeed(5, 50, Basis::Z,
                             RemovalProtocol::SwapLrc, em));
    // Every physical axis moves the seed...
    EXPECT_NE(seed,
              sweepPointSeed(7, 50, Basis::Z,
                             RemovalProtocol::SwapLrc, em));
    EXPECT_NE(seed,
              sweepPointSeed(5, 51, Basis::Z,
                             RemovalProtocol::SwapLrc, em));
    EXPECT_NE(seed,
              sweepPointSeed(5, 50, Basis::X,
                             RemovalProtocol::SwapLrc, em));
    EXPECT_NE(seed,
              sweepPointSeed(5, 50, Basis::Z, RemovalProtocol::Dqlr,
                             em));
    ErrorModel other = em;
    other.p = 1e-4;
    EXPECT_NE(seed, sweepPointSeed(5, 50, Basis::Z,
                                   RemovalProtocol::SwapLrc, other));
    other = em;
    other.transport = TransportModel::Exchange;
    EXPECT_NE(seed, sweepPointSeed(5, 50, Basis::Z,
                                   RemovalProtocol::SwapLrc, other));
}

TEST(SweepPlan, PointsShareSeedsAcrossDecoderAndWidthAxes)
{
    SweepPlan plan;
    plan.distances = {3};
    plan.ps = {1e-3};
    plan.rounds = {SweepRounds::cycles(10)};
    plan.decoders = {DecoderKind::Mwpm, DecoderKind::UnionFind};
    plan.widths = {64, 512};
    plan.policies = {PolicyKind::Eraser};

    const auto points = plan.points();
    ASSERT_EQ(points.size(), 4u);
    for (const SweepPoint &point : points) {
        EXPECT_EQ(point.seed, points[0].seed)
            << "decoder kind and batch width must not change the "
               "physical scenario seed";
        EXPECT_EQ(point.rounds, 30);
        EXPECT_EQ(point.config.seed, point.seed);
        EXPECT_EQ(point.config.rounds, point.rounds);
    }
    EXPECT_NE(points[0].seed, 0u);
}

TEST(SweepPlan, ExpansionResolvesAxesAndShots)
{
    SweepPlan plan;
    plan.distances = {3, 5};
    plan.ps = {1e-3, 1e-4};
    plan.rounds = {SweepRounds::cycles(10),
                   SweepRounds::exactly(7)};
    plan.base.decode = false;
    plan.base.trackLpr = true;
    plan.shotsFor = [](int d, double p) {
        return (uint64_t)(d * 100 + (p < 5e-4 ? 1 : 0));
    };
    const auto points = plan.points();
    ASSERT_EQ(points.size(), 8u);
    EXPECT_EQ(points[0].distance, 3);
    EXPECT_EQ(points[0].rounds, 30);
    EXPECT_EQ(points[1].distance, 5);
    EXPECT_EQ(points[1].rounds, 50);
    EXPECT_EQ(points[2].rounds, 7);   // exactly(7), d=3
    EXPECT_EQ(points[0].shots, 300u);
    EXPECT_EQ(points[4].shots, 301u); // second p block
    EXPECT_DOUBLE_EQ(points[4].p, 1e-4);
    EXPECT_FALSE(points[0].config.decode);
    EXPECT_TRUE(points[0].config.trackLpr);
    for (size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(points[i].index, i);
}

TEST(SweepRunner, CachesComponentsAndMatchesDirectRuns)
{
    SweepPlan plan;
    plan.name = "runner-test";
    plan.distances = {3};
    plan.ps = {1e-3, 2e-3};
    plan.rounds = {SweepRounds::exactly(6)};
    plan.policies = {PolicyKind::Always, PolicyKind::Eraser};
    plan.base.shots = 192;
    plan.base.batchWidth = 64;
    plan.base.threads = 1;

    SweepRunner runner(plan);
    CollectSink collect;
    runner.addSink(collect);
    const SweepSummary summary = runner.run();

    EXPECT_EQ(summary.points, 2u);
    EXPECT_EQ(summary.shotsRun, 2u * 2u * 192u);
    // One distance: the lattice is built once and reused; the
    // detector model is shared across the p axis; each p needs its
    // own (reweighted) decoder.
    EXPECT_EQ(summary.codesBuilt, 1u);
    EXPECT_EQ(summary.codesReused, 1u);
    EXPECT_EQ(summary.demsBuilt, 1u);
    EXPECT_EQ(summary.demsReused, 1u);
    EXPECT_EQ(summary.decodersBuilt, 2u);
    EXPECT_EQ(summary.decodersReused, 0u);

    ASSERT_EQ(collect.points.size(), 2u);
    for (const PointResult &pr : collect.points) {
        ASSERT_EQ(pr.results.size(), 2u);
        EXPECT_EQ(pr.results[0].policy, "Always-LRCs");
        // The runner's cached-component path must be bit-identical to
        // a standalone MemoryExperiment on the same resolved config.
        RotatedSurfaceCode code(pr.point.distance);
        MemoryExperiment direct(code, pr.point.config);
        const ExperimentResult ref = direct.run(PolicyKind::Eraser);
        EXPECT_EQ(pr.results[1].verdictFingerprint,
                  ref.verdictFingerprint);
        EXPECT_EQ(pr.results[1].logicalErrors, ref.logicalErrors);
        EXPECT_EQ(pr.results[1].lrcsScheduled, ref.lrcsScheduled);
    }
    EXPECT_NE(collect.points[0].point.seed,
              collect.points[1].point.seed);
}

TEST(SweepRunner, JsonSinkEmitsTheUnifiedSchema)
{
    SweepPlan plan;
    plan.name = "json-test";
    plan.distances = {3};
    plan.rounds = {SweepRounds::exactly(4)};
    plan.policies = {PolicyKind::Eraser};
    plan.base.shots = 64;
    plan.base.batchWidth = 64;
    plan.base.threads = 1;

    const std::string path = ::testing::TempDir() + "sweep_test.json";
    {
        SweepRunner runner(plan);
        JsonSink json(path);
        ASSERT_TRUE(json.ok());
        runner.addSink(json);
        runner.run();
    }

    FILE *in = std::fopen(path.c_str(), "r");
    ASSERT_NE(in, nullptr);
    std::string content;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0)
        content.append(buf, n);
    std::fclose(in);
    std::remove(path.c_str());

    for (const char *key :
         {"\"schema\": \"qec.sweep.v1\"", "\"sweep\": \"json-test\"",
          "\"seed\": ", "\"shots\": 64", "\"ler\": ",
          "\"fingerprint\": \"0x", "\"policy\": \"ERASER\"",
          "\"stopped_early\": false", "\"summary\": ",
          "\"decoders_built\": 1"}) {
        EXPECT_NE(content.find(key), std::string::npos)
            << "missing " << key << " in:\n"
            << content;
    }
}

TEST(SweepRunner, TableSinkPrintsARowPerPoint)
{
    SweepPlan plan;
    plan.distances = {3};
    plan.ps = {1e-3, 2e-3};
    plan.rounds = {SweepRounds::exactly(4)};
    plan.policies = {PolicyKind::Always, PolicyKind::Eraser};
    plan.base.shots = 64;
    plan.base.batchWidth = 64;
    plan.base.decode = false;
    plan.base.threads = 1;

    FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    TableSink::Options options;
    options.metric = TableSink::Metric::LrcsPerRound;
    options.out = tmp;
    TableSink table(options);
    SweepRunner runner(plan);
    runner.addSink(table);
    runner.run();

    std::fflush(tmp);
    std::rewind(tmp);
    std::string content;
    char line[512];
    int lines = 0;
    while (std::fgets(line, sizeof(line), tmp)) {
        content += line;
        ++lines;
    }
    std::fclose(tmp);
    EXPECT_EQ(lines, 4);   // header + 2 points + summary line
    EXPECT_NE(content.find("Always-LRCs"), std::string::npos);
    EXPECT_NE(content.find("[sweep] 2 points"), std::string::npos);
}

} // namespace
} // namespace qec
