/**
 * @file
 * Fault-tolerance suite: Status/StatusOr semantics, crash-safe file
 * emission (CRC + atomic rename), the deterministic fault-injection
 * harness, recoverable config validation, session progress/restore,
 * checkpoint artifact integrity (corrupt / truncated / version-skewed
 * files rejected with a clear Status), retry/quarantine/deadline
 * behavior of SweepRunner, and the centerpiece: a sweep killed at
 * EVERY chunk boundary in turn (simulated process death), resumed
 * from its checkpoint, and pinned bit-identical — fingerprints,
 * counters, shots — to an uninterrupted run, at widths 64/256/512.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

#include "base/atomic_file.h"
#include "base/fault_injection.h"
#include "base/status.h"
#include "exp/checkpoint.h"
#include "exp/experiment_session.h"
#include "exp/sweep_runner.h"

namespace qec
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "qec_ft_" +
           std::to_string((unsigned long)::getpid()) + "_" + name;
}

ExperimentConfig
smallConfig(int rounds, uint64_t shots, unsigned width)
{
    ExperimentConfig cfg;
    cfg.rounds = rounds;
    cfg.shots = shots;
    cfg.seed = 77;
    cfg.em = ErrorModel::standard(2e-3);
    cfg.batchWidth = width;
    cfg.threads = 1;
    return cfg;
}

/** Small decoded plan with deterministic multi-chunk execution:
 *  maxShots == shots enables the early-stop machinery (so the runner
 *  chunks at checkEvery boundaries) without changing any result. */
SweepPlan
smallPlan(unsigned width, uint64_t shots, std::vector<double> ps)
{
    SweepPlan plan;
    plan.name = "ft_test_w" + std::to_string(width);
    plan.distances = {3};
    plan.ps = std::move(ps);
    plan.rounds = {SweepRounds::exactly(6)};
    plan.policies = {SweepPolicy(PolicyKind::Always),
                     SweepPolicy(PolicyKind::Eraser)};
    plan.base.shots = shots;
    plan.base.batchWidth = width;
    plan.base.threads = 1;
    plan.earlyStop.maxShots = shots;
    plan.earlyStop.checkEvery = 128;
    return plan;
}

void
expectResultIdentical(const ExperimentResult &a,
                      const ExperimentResult &b)
{
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.shots, b.shots);
    EXPECT_EQ(a.logicalErrors, b.logicalErrors);
    EXPECT_EQ(a.verdictFingerprint, b.verdictFingerprint);
    EXPECT_EQ(a.tp, b.tp);
    EXPECT_EQ(a.fp, b.fp);
    EXPECT_EQ(a.tn, b.tn);
    EXPECT_EQ(a.fn, b.fn);
    EXPECT_EQ(a.lrcsScheduled, b.lrcsScheduled);
    EXPECT_EQ(a.roundsTotal, b.roundsTotal);
}

void
expectPointsIdentical(const std::vector<PointResult> &a,
                      const std::vector<PointResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].point.index, b[i].point.index);
        EXPECT_EQ(a[i].point.seed, b[i].point.seed);
        ASSERT_EQ(a[i].results.size(), b[i].results.size());
        for (size_t j = 0; j < a[i].results.size(); ++j)
            expectResultIdentical(a[i].results[j], b[i].results[j]);
    }
}

/** Every test leaves the harness disarmed, whatever happened. */
class FaultTolerance : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::reset();
    }
    void
    TearDown() override
    {
        fault::reset();
    }
};

// ---------------------------------------------------------- Status

TEST_F(FaultTolerance, StatusDefaultsToOk)
{
    Status st;
    EXPECT_TRUE(st.isOk());
    EXPECT_EQ(st.code(), StatusCode::Ok);
    EXPECT_EQ(st.toString(), "ok");
    EXPECT_FALSE(st.isRetryable());
}

TEST_F(FaultTolerance, StatusFactoriesCarryCodeAndMessage)
{
    const Status st = invalidArgument("bad width");
    EXPECT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), StatusCode::InvalidArgument);
    EXPECT_EQ(st.message(), "bad width");
    EXPECT_EQ(st.toString(), "invalid_argument: bad width");
}

TEST_F(FaultTolerance, OnlyTransientCodesAreRetryable)
{
    EXPECT_TRUE(unavailableError("io").isRetryable());
    EXPECT_TRUE(resourceExhaustedError("oom").isRetryable());
    EXPECT_FALSE(invalidArgument("x").isRetryable());
    EXPECT_FALSE(dataLossError("x").isRetryable());
    EXPECT_FALSE(failedPrecondition("x").isRetryable());
    EXPECT_FALSE(notFoundError("x").isRetryable());
    EXPECT_FALSE(deadlineExceededError("x").isRetryable());
    EXPECT_FALSE(internalError("x").isRetryable());
}

TEST_F(FaultTolerance, StatusOrHoldsValueOrStatus)
{
    StatusOr<int> good(42);
    EXPECT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 42);

    StatusOr<int> bad(notFoundError("missing"));
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::NotFound);
}

// ----------------------------------------------- crash-safe files

TEST_F(FaultTolerance, Crc32MatchesKnownVector)
{
    // The canonical IEEE 802.3 check value.
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    // Incremental == one-shot.
    const uint32_t part = crc32("12345", 5);
    EXPECT_EQ(crc32("6789", 4, part), 0xCBF43926u);
}

TEST_F(FaultTolerance, WriteFileAtomicRoundTrips)
{
    const std::string path = tempPath("roundtrip.bin");
    const std::string payload("alpha\0beta", 10);
    ASSERT_TRUE(
        writeFileAtomic(path, payload.data(), payload.size()).isOk());
    std::string back;
    ASSERT_TRUE(readFile(path, back).isOk());
    EXPECT_EQ(back, payload);

    // Overwrite is also atomic and complete.
    ASSERT_TRUE(writeFileAtomic(path, "x", 1).isOk());
    ASSERT_TRUE(readFile(path, back).isOk());
    EXPECT_EQ(back, "x");
    std::remove(path.c_str());
}

TEST_F(FaultTolerance, ReadFileReportsNotFound)
{
    std::string out;
    const Status st = readFile(tempPath("never-written"), out);
    EXPECT_EQ(st.code(), StatusCode::NotFound);
}

TEST_F(FaultTolerance, AbandonedWriterLeavesNothingBehind)
{
    const std::string path = tempPath("abandoned.bin");
    {
        AtomicFileWriter writer;
        ASSERT_TRUE(writer.open(path).isOk());
        ASSERT_TRUE(writer.write("partial", 7).isOk());
        // No commit: destructor must clean up the temp file.
    }
    std::string out;
    EXPECT_EQ(readFile(path, out).code(), StatusCode::NotFound);
}

// ------------------------------------------------ fault injection

TEST_F(FaultTolerance, FaultPointFiresAtExactCountdown)
{
    if (!fault::compiledIn())
        GTEST_SKIP() << "QEC_FAULT_INJECTION compiled out";
    fault::arm("ft.site", 3, fault::Kind::ReturnError);
    EXPECT_FALSE(QEC_FAULT_POINT("ft.site"));
    EXPECT_FALSE(QEC_FAULT_POINT("ft.site"));
    EXPECT_TRUE(QEC_FAULT_POINT("ft.site"));
    // One-shot: disarms after firing.
    EXPECT_FALSE(QEC_FAULT_POINT("ft.site"));
    EXPECT_EQ(fault::hits("ft.site"), 4u);
}

TEST_F(FaultTolerance, RepeatingFaultKeepsFiring)
{
    if (!fault::compiledIn())
        GTEST_SKIP() << "QEC_FAULT_INJECTION compiled out";
    fault::arm("ft.repeat", 2, fault::Kind::ReturnError,
               /*repeat=*/true);
    EXPECT_FALSE(QEC_FAULT_POINT("ft.repeat"));
    EXPECT_TRUE(QEC_FAULT_POINT("ft.repeat"));
    EXPECT_TRUE(QEC_FAULT_POINT("ft.repeat"));
    fault::disarm("ft.repeat");
    EXPECT_FALSE(QEC_FAULT_POINT("ft.repeat"));
}

TEST_F(FaultTolerance, CrashKindThrowsSimulatedCrash)
{
    if (!fault::compiledIn())
        GTEST_SKIP() << "QEC_FAULT_INJECTION compiled out";
    fault::arm("ft.crash", 1, fault::Kind::Crash);
    EXPECT_THROW((void)QEC_FAULT_POINT("ft.crash"), SimulatedCrash);
}

TEST_F(FaultTolerance, HitCountingWorksUnarmed)
{
    if (!fault::compiledIn())
        GTEST_SKIP() << "QEC_FAULT_INJECTION compiled out";
    fault::countHits();
    EXPECT_FALSE(QEC_FAULT_POINT("ft.counted"));
    EXPECT_FALSE(QEC_FAULT_POINT("ft.counted"));
    EXPECT_EQ(fault::hits("ft.counted"), 2u);
    fault::reset();
    EXPECT_EQ(fault::hits("ft.counted"), 0u);
}

// ------------------------------------------- config validation

TEST_F(FaultTolerance, WindowShapeIsValidatedUpFront)
{
    ExperimentConfig cfg = smallConfig(6, 64, 64);
    EXPECT_TRUE(validateExperimentConfig(cfg).isOk());

    cfg.windowLength = 3;
    cfg.windowSlideLength = 0;  // would never advance
    EXPECT_EQ(validateExperimentConfig(cfg).code(),
              StatusCode::InvalidArgument);

    cfg.windowSlideLength = 4;  // would skip rows
    EXPECT_EQ(validateExperimentConfig(cfg).code(),
              StatusCode::InvalidArgument);

    cfg.windowSlideLength = 3;
    EXPECT_TRUE(validateExperimentConfig(cfg).isOk());

    cfg.windowLength = -1;
    EXPECT_EQ(validateExperimentConfig(cfg).code(),
              StatusCode::InvalidArgument);
}

TEST_F(FaultTolerance, ConfigValidationRejectsBadRoundsWidthAndP)
{
    ExperimentConfig cfg = smallConfig(0, 64, 64);
    EXPECT_EQ(validateExperimentConfig(cfg).code(),
              StatusCode::InvalidArgument);

    cfg = smallConfig(6, 64, 1024);  // > kMaxBatchLanes
    EXPECT_EQ(validateExperimentConfig(cfg).code(),
              StatusCode::InvalidArgument);

    cfg = smallConfig(6, 64, 64);
    cfg.em.p = -0.5;
    EXPECT_EQ(validateExperimentConfig(cfg).code(),
              StatusCode::InvalidArgument);
}

TEST_F(FaultTolerance, PlanValidationNamesTheOffendingPoint)
{
    SweepPlan plan = smallPlan(64, 128, {1e-3});
    EXPECT_TRUE(plan.validate().isOk());

    plan.distances = {3, 4};  // even distance is not a valid code
    const Status st = plan.validate();
    EXPECT_EQ(st.code(), StatusCode::InvalidArgument);
    EXPECT_NE(st.message().find("d=4"), std::string::npos);

    // The runner surfaces this instead of dying.
    SweepRunner runner(plan);
    const SweepSummary summary = runner.run();
    EXPECT_EQ(summary.status.code(), StatusCode::InvalidArgument);
    EXPECT_EQ(summary.points, 0u);
}

TEST_F(FaultTolerance, RotatedSurfaceCodeValidatesDistance)
{
    EXPECT_TRUE(RotatedSurfaceCode::validateDistance(3).isOk());
    EXPECT_TRUE(RotatedSurfaceCode::validateDistance(11).isOk());
    EXPECT_EQ(RotatedSurfaceCode::validateDistance(4).code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(RotatedSurfaceCode::validateDistance(1).code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(RotatedSurfaceCode::validateDistance(-3).code(),
              StatusCode::InvalidArgument);
}

// -------------------------------------- session progress/restore

TEST_F(FaultTolerance, SessionRestoreResumesBitIdenticallyBatched)
{
    RotatedSurfaceCode code(3);
    const ExperimentConfig cfg = smallConfig(6, 384, 64);
    MemoryExperiment exp(code, cfg);

    ExperimentSession reference(exp, PolicyKind::Eraser);
    reference.runToCompletion();

    // Run half the chunks, snapshot, resume in a fresh session.
    ExperimentSession first(exp, PolicyKind::Eraser);
    first.runChunk(128);
    ASSERT_FALSE(first.done());
    const SessionProgress snapshot = first.progress();

    ExperimentSession second(exp, PolicyKind::Eraser);
    ASSERT_TRUE(second.restore(snapshot).isOk());
    second.runToCompletion();
    expectResultIdentical(second.result(), reference.result());
}

TEST_F(FaultTolerance, SessionRestoreResumesBitIdenticallyScalar)
{
    RotatedSurfaceCode code(3);
    const ExperimentConfig cfg = smallConfig(6, 200, 1);
    MemoryExperiment exp(code, cfg);

    ExperimentSession reference(exp, PolicyKind::Eraser);
    reference.runToCompletion();

    ExperimentSession first(exp, PolicyKind::Eraser);
    first.runChunk(70);
    const SessionProgress snapshot = first.progress();
    EXPECT_EQ(snapshot.scalarNext, 70u);

    ExperimentSession second(exp, PolicyKind::Eraser);
    ASSERT_TRUE(second.restore(snapshot).isOk());
    second.runToCompletion();
    expectResultIdentical(second.result(), reference.result());
}

TEST_F(FaultTolerance, SessionRestoreRejectsUsedAndInconsistent)
{
    RotatedSurfaceCode code(3);
    const ExperimentConfig cfg = smallConfig(6, 384, 64);
    MemoryExperiment exp(code, cfg);

    ExperimentSession donor(exp, PolicyKind::Eraser);
    donor.runChunk(128);
    const SessionProgress snapshot = donor.progress();

    // Restore into a session that already ran: FailedPrecondition.
    ExperimentSession used(exp, PolicyKind::Eraser);
    used.runChunk(64);
    EXPECT_EQ(used.restore(snapshot).code(),
              StatusCode::FailedPrecondition);

    // A cursor/shots mismatch (foreign decomposition): DataLoss.
    SessionProgress doctored = snapshot;
    doctored.total.shots += 1;
    ExperimentSession fresh(exp, PolicyKind::Eraser);
    EXPECT_EQ(fresh.restore(doctored).code(), StatusCode::DataLoss);

    // A span cursor beyond the plan: DataLoss.
    doctored = snapshot;
    doctored.nextSpan = 10000;
    ExperimentSession fresh2(exp, PolicyKind::Eraser);
    EXPECT_EQ(fresh2.restore(doctored).code(), StatusCode::DataLoss);
}

// -------------------------------------- checkpoint artifact

TEST_F(FaultTolerance, CheckpointSerializationRoundTrips)
{
    SweepCheckpoint ckpt;
    ckpt.planFingerprint = 0xfeedfacecafebeefull;
    PointCheckpoint point;
    point.pointIndex = 2;
    point.seed = 12345;
    point.finished = false;
    PolicyCheckpoint policy;
    policy.progress.total.policy = "ERASER";
    policy.progress.total.shots = 128;
    policy.progress.total.logicalErrors = 3;
    policy.progress.total.verdictFingerprint = 0xabcdefull;
    policy.progress.total.lprDataSum = {1.5, 2.5};
    policy.progress.nextSpan = 2;
    policy.seconds = 0.25;
    point.policies.push_back(policy);
    ckpt.points.emplace(2, point);

    const std::string path = tempPath("roundtrip.ckpt");
    ASSERT_TRUE(ckpt.save(path).isOk());
    StatusOr<SweepCheckpoint> loaded = SweepCheckpoint::load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();

    const SweepCheckpoint &back = loaded.value();
    EXPECT_EQ(back.planFingerprint, ckpt.planFingerprint);
    ASSERT_EQ(back.points.size(), 1u);
    const PointCheckpoint &p = back.points.at(2);
    EXPECT_EQ(p.seed, 12345u);
    EXPECT_FALSE(p.finished);
    ASSERT_EQ(p.policies.size(), 1u);
    EXPECT_EQ(p.policies[0].progress.total.policy, "ERASER");
    EXPECT_EQ(p.policies[0].progress.total.shots, 128u);
    EXPECT_EQ(p.policies[0].progress.total.logicalErrors, 3u);
    EXPECT_EQ(p.policies[0].progress.total.verdictFingerprint,
              0xabcdefull);
    EXPECT_EQ(p.policies[0].progress.total.lprDataSum,
              (std::vector<double>{1.5, 2.5}));
    EXPECT_EQ(p.policies[0].progress.nextSpan, 2u);
    EXPECT_DOUBLE_EQ(p.policies[0].seconds, 0.25);
    std::remove(path.c_str());
}

TEST_F(FaultTolerance, CheckpointLoadReportsNotFound)
{
    StatusOr<SweepCheckpoint> loaded =
        SweepCheckpoint::load(tempPath("no-such.ckpt"));
    EXPECT_EQ(loaded.status().code(), StatusCode::NotFound);
}

TEST_F(FaultTolerance, CorruptCheckpointsAreRejectedWithDataLoss)
{
    SweepCheckpoint ckpt;
    ckpt.planFingerprint = 7;
    PointCheckpoint point;
    point.pointIndex = 0;
    point.seed = 9;
    point.finished = true;
    point.policies.resize(2);
    ckpt.points.emplace(0, point);
    const std::string bytes = ckpt.serialize();
    ASSERT_TRUE(SweepCheckpoint::deserialize(bytes).ok());

    // Flip one payload byte: the CRC must catch it.
    {
        std::string bad = bytes;
        bad[bad.size() - 1] ^= 0x40;
        const Status st = SweepCheckpoint::deserialize(bad).status();
        EXPECT_EQ(st.code(), StatusCode::DataLoss);
        EXPECT_NE(st.message().find("CRC"), std::string::npos);
    }
    // Truncated tail (a torn non-atomic write).
    {
        const Status st =
            SweepCheckpoint::deserialize(
                bytes.substr(0, bytes.size() - 5))
                .status();
        EXPECT_EQ(st.code(), StatusCode::DataLoss);
    }
    // Shorter than the header.
    {
        const Status st =
            SweepCheckpoint::deserialize(bytes.substr(0, 10))
                .status();
        EXPECT_EQ(st.code(), StatusCode::DataLoss);
    }
    // Version skew: a future format must not half-parse.
    {
        std::string skew = bytes;
        skew[8] = 99;
        const Status st = SweepCheckpoint::deserialize(skew).status();
        EXPECT_EQ(st.code(), StatusCode::DataLoss);
        EXPECT_NE(st.message().find("version"), std::string::npos);
    }
    // Foreign bytes entirely.
    {
        const Status st =
            SweepCheckpoint::deserialize("this is not a checkpoint")
                .status();
        EXPECT_EQ(st.code(), StatusCode::DataLoss);
        EXPECT_NE(st.message().find("magic"), std::string::npos);
    }
}

TEST_F(FaultTolerance, RunnerRefusesCorruptCheckpoint)
{
    const std::string path = tempPath("corrupt.ckpt");
    ASSERT_TRUE(writeFileAtomic(path, "garbage bytes", 13).isOk());

    SweepPlan plan = smallPlan(64, 128, {1e-3});
    SweepRunner runner(plan);
    SweepRunOptions options;
    options.checkpoint.path = path;
    const SweepSummary summary = runner.run(options);
    EXPECT_EQ(summary.status.code(), StatusCode::DataLoss);
    EXPECT_EQ(summary.resumeStatus.code(), StatusCode::DataLoss);
    EXPECT_EQ(summary.points, 0u);
    std::remove(path.c_str());
}

TEST_F(FaultTolerance, RunnerRefusesCheckpointFromDifferentPlan)
{
    const std::string path = tempPath("foreign.ckpt");
    SweepPlan plan_a = smallPlan(64, 128, {1e-3});
    {
        SweepRunner runner(plan_a);
        SweepRunOptions options;
        options.checkpoint.path = path;
        ASSERT_TRUE(runner.run(options).status.isOk());
    }
    // Same path, different shot count: a different plan identity.
    SweepPlan plan_b = smallPlan(64, 256, {1e-3});
    plan_b.earlyStop.maxShots = 256;
    SweepRunner runner(plan_b);
    SweepRunOptions options;
    options.checkpoint.path = path;
    const SweepSummary summary = runner.run(options);
    EXPECT_EQ(summary.status.code(), StatusCode::FailedPrecondition);
    EXPECT_NE(summary.status.message().find("fingerprint"),
              std::string::npos);
    std::remove(path.c_str());
}

// ------------------------------------------------ JsonSink safety

TEST_F(FaultTolerance, JsonSinkPublishesOnlyAtEndSweep)
{
    const std::string path = tempPath("sweep.json");
    SweepPlan plan = smallPlan(64, 128, {1e-3});
    {
        JsonSink sink(path);
        ASSERT_TRUE(sink.ok());
        sink.beginSweep(plan, plan.points());
        // Killed before endSweep: no artifact may exist.
    }
    std::string out;
    EXPECT_EQ(readFile(path, out).code(), StatusCode::NotFound);

    JsonSink sink(path);
    ASSERT_TRUE(sink.ok());
    SweepRunner runner(plan);
    runner.addSink(sink);
    ASSERT_TRUE(runner.run().status.isOk());
    EXPECT_TRUE(sink.status().isOk());
    ASSERT_TRUE(readFile(path, out).isOk());
    EXPECT_NE(out.find("\"qec.sweep.v1\""), std::string::npos);
    EXPECT_NE(out.find("\"truncated\": false"), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(FaultTolerance, JsonSinkReportsUnwritableDestination)
{
    JsonSink sink(tempPath("no-such-dir") + "/sweep.json");
    EXPECT_FALSE(sink.ok());
    EXPECT_FALSE(sink.status().isOk());
}

// --------------------------------------- retry and quarantine

TEST_F(FaultTolerance, TransientChunkFailureIsRetriedBitIdentically)
{
    if (!fault::compiledIn())
        GTEST_SKIP() << "QEC_FAULT_INJECTION compiled out";
    SweepPlan plan = smallPlan(64, 384, {1e-3});

    CollectSink reference;
    {
        SweepRunner runner(plan);
        runner.addSink(reference);
        ASSERT_TRUE(runner.run().status.isOk());
    }

    fault::arm("sweep.chunk", 2, fault::Kind::ReturnError);
    CollectSink retried;
    SweepRunner runner(plan);
    runner.addSink(retried);
    const SweepSummary summary = runner.run();
    EXPECT_TRUE(summary.status.isOk())
        << summary.status.toString();
    EXPECT_EQ(summary.retries, 1u);
    EXPECT_EQ(summary.pointsFailed, 0u);
    // The retry resumed from the in-memory partial at the failed
    // boundary, so the outcome is exactly the uninterrupted one.
    expectPointsIdentical(retried.points, reference.points);
}

TEST_F(FaultTolerance, AllocationFailureIsRetriedBitIdentically)
{
    if (!fault::compiledIn())
        GTEST_SKIP() << "QEC_FAULT_INJECTION compiled out";
    SweepPlan plan = smallPlan(64, 384, {1e-3});

    CollectSink reference;
    {
        SweepRunner runner(plan);
        runner.addSink(reference);
        ASSERT_TRUE(runner.run().status.isOk());
    }

    // First SyndromeCache construction throws bad_alloc; the runner
    // maps it to ResourceExhausted and retries the point.
    fault::arm("cache.alloc", 1, fault::Kind::ThrowBadAlloc);
    CollectSink retried;
    SweepRunner runner(plan);
    runner.addSink(retried);
    const SweepSummary summary = runner.run();
    EXPECT_TRUE(summary.status.isOk())
        << summary.status.toString();
    EXPECT_EQ(summary.retries, 1u);
    expectPointsIdentical(retried.points, reference.points);
}

TEST_F(FaultTolerance, PersistentFailureQuarantinesTheSweep)
{
    if (!fault::compiledIn())
        GTEST_SKIP() << "QEC_FAULT_INJECTION compiled out";
    SweepPlan plan = smallPlan(64, 256, {1e-3, 2e-3});
    plan.earlyStop.maxShots = 256;

    fault::arm("sweep.chunk", 1, fault::Kind::ReturnError,
               /*repeat=*/true);
    CollectSink collected;
    SweepRunner runner(plan);
    runner.addSink(collected);
    SweepRunOptions options;
    options.maxPointAttempts = 2;
    options.retryBackoffSeconds = 0.0;
    const SweepSummary summary = runner.run(options);

    // Both points exhausted their attempts and were quarantined;
    // nothing was emitted, and with zero successes the sweep itself
    // reports the failure.
    EXPECT_EQ(summary.pointsFailed, 2u);
    EXPECT_EQ(summary.points, 0u);
    EXPECT_EQ(summary.retries, 2u);
    ASSERT_EQ(summary.errors.size(), 2u);
    EXPECT_EQ(summary.errors[0].status.code(),
              StatusCode::Unavailable);
    EXPECT_EQ(summary.errors[0].attempts, 2);
    EXPECT_FALSE(summary.status.isOk());
    EXPECT_TRUE(collected.points.empty());
}

TEST_F(FaultTolerance, CheckpointSaveFailureDoesNotKillTheSweep)
{
    if (!fault::compiledIn())
        GTEST_SKIP() << "QEC_FAULT_INJECTION compiled out";
    SweepPlan plan = smallPlan(64, 256, {1e-3});
    plan.earlyStop.maxShots = 256;

    CollectSink reference;
    {
        SweepRunner runner(plan);
        runner.addSink(reference);
        ASSERT_TRUE(runner.run().status.isOk());
    }

    const std::string path = tempPath("unsavable.ckpt");
    fault::arm("checkpoint.save", 1, fault::Kind::ReturnError,
               /*repeat=*/true);
    CollectSink collected;
    SweepRunner runner(plan);
    runner.addSink(collected);
    SweepRunOptions options;
    options.checkpoint.path = path;
    const SweepSummary summary = runner.run(options);
    EXPECT_TRUE(summary.status.isOk());
    EXPECT_FALSE(summary.checkpointStatus.isOk());
    EXPECT_EQ(summary.checkpointSaves, 0u);
    expectPointsIdentical(collected.points, reference.points);
    std::remove(path.c_str());
}

// ------------------------------------------------------ deadlines

TEST_F(FaultTolerance, SessionDeadlineTruncatesResumably)
{
    RotatedSurfaceCode code(3);
    const ExperimentConfig cfg = smallConfig(6, 384, 64);
    MemoryExperiment exp(code, cfg);

    ExperimentSession reference(exp, PolicyKind::Eraser);
    reference.runToCompletion();

    SessionOptions options;
    options.deadlineSeconds = 1e-9;  // expires after the first chunk
    options.earlyStop.maxShots = 384;
    options.earlyStop.checkEvery = 64;
    ExperimentSession limited(exp, PolicyKind::Eraser, options);
    limited.runToCompletion();
    ASSERT_TRUE(limited.truncated());
    ASSERT_FALSE(limited.done());
    EXPECT_LT(limited.shotsRun(), limited.shotsPlanned());

    // The truncated partial resumes to the bit-identical full result.
    ExperimentSession resumed(exp, PolicyKind::Eraser);
    ASSERT_TRUE(resumed.restore(limited.progress()).isOk());
    resumed.runToCompletion();
    expectResultIdentical(resumed.result(), reference.result());
}

TEST_F(FaultTolerance, SweepDeadlineCheckpointsAndResumes)
{
    SweepPlan plan = smallPlan(64, 384, {1e-3});
    CollectSink reference;
    {
        SweepRunner runner(plan);
        runner.addSink(reference);
        ASSERT_TRUE(runner.run().status.isOk());
    }

    const std::string path = tempPath("deadline.ckpt");
    std::remove(path.c_str());
    {
        SweepRunner runner(plan);
        SweepRunOptions options;
        options.checkpoint.path = path;
        options.deadlineSeconds = 1e-9;
        const SweepSummary summary = runner.run(options);
        EXPECT_TRUE(summary.status.isOk());
        EXPECT_TRUE(summary.truncated);
        EXPECT_EQ(summary.points, 0u);
    }
    // Rerun without the deadline: picks up the checkpoint and
    // finishes bit-identically to the uninterrupted run.
    CollectSink resumed;
    SweepRunner runner(plan);
    runner.addSink(resumed);
    SweepRunOptions options;
    options.checkpoint.path = path;
    const SweepSummary summary = runner.run(options);
    EXPECT_TRUE(summary.status.isOk());
    EXPECT_FALSE(summary.truncated);
    expectPointsIdentical(resumed.points, reference.points);
    std::remove(path.c_str());
}

// ------------------------- the centerpiece: kill-and-resume sweep

/**
 * Kill the sweep (SimulatedCrash — an exception no layer catches,
 * the in-process stand-in for SIGKILL; CI additionally kills a real
 * process) at EVERY chunk boundary in turn, resume each time from
 * the checkpoint the dead run left behind, and require the final
 * results to be bit-identical to an uninterrupted run: equal verdict
 * fingerprints, counters, and shot counts, per policy and point.
 */
void
killAndResumeEverywhere(SweepPlan plan, const std::string &tag)
{
    const std::string path = tempPath("kill_" + tag + ".ckpt");
    std::remove(path.c_str());

    CollectSink reference;
    {
        SweepRunner runner(plan);
        runner.addSink(reference);
        ASSERT_TRUE(runner.run().status.isOk());
    }

    // Count the chunk boundaries of a clean checkpointed run (and
    // pin that checkpointing itself does not perturb results).
    fault::reset();
    fault::countHits();
    {
        CollectSink counted;
        SweepRunner runner(plan);
        runner.addSink(counted);
        SweepRunOptions options;
        options.checkpoint.path = path;
        ASSERT_TRUE(runner.run(options).status.isOk());
        expectPointsIdentical(counted.points, reference.points);
    }
    const uint64_t boundaries = fault::hits("sweep.chunk");
    ASSERT_GE(boundaries, 2u) << "plan too small to chunk";
    fault::reset();

    for (uint64_t k = 1; k <= boundaries; ++k) {
        std::remove(path.c_str());

        fault::arm("sweep.chunk", k, fault::Kind::Crash);
        bool died = false;
        try {
            SweepRunner runner(plan);
            SweepRunOptions options;
            options.checkpoint.path = path;
            (void)runner.run(options);
        } catch (const SimulatedCrash &crash) {
            died = true;
            EXPECT_STREQ(crash.site, "sweep.chunk");
        }
        ASSERT_TRUE(died) << "crash " << k << " did not fire";
        fault::reset();

        CollectSink resumed;
        SweepRunner runner(plan);
        runner.addSink(resumed);
        SweepRunOptions options;
        options.checkpoint.path = path;
        const SweepSummary summary = runner.run(options);
        ASSERT_TRUE(summary.status.isOk())
            << "resume after crash " << k << ": "
            << summary.status.toString();
        // Crashes after the first boundary left progress behind.
        if (k > 1) {
            EXPECT_TRUE(summary.resumed) << "crash " << k;
        }
        SCOPED_TRACE("crash at boundary " + std::to_string(k));
        expectPointsIdentical(resumed.points, reference.points);
    }
    std::remove(path.c_str());
}

TEST_F(FaultTolerance, KillAndResumeEverywhereWidth64)
{
    if (!fault::compiledIn())
        GTEST_SKIP() << "QEC_FAULT_INJECTION compiled out";
    // Two points so crashes also land around the finished-point
    // skip-and-reemit path.
    killAndResumeEverywhere(smallPlan(64, 384, {1e-3, 2e-3}), "w64");
}

TEST_F(FaultTolerance, KillAndResumeEverywhereWidth256)
{
    if (!fault::compiledIn())
        GTEST_SKIP() << "QEC_FAULT_INJECTION compiled out";
    killAndResumeEverywhere(smallPlan(256, 384, {2e-3}), "w256");
}

TEST_F(FaultTolerance, KillAndResumeEverywhereWidth512)
{
    if (!fault::compiledIn())
        GTEST_SKIP() << "QEC_FAULT_INJECTION compiled out";
    killAndResumeEverywhere(smallPlan(512, 640, {2e-3}), "w512");
}

} // namespace
} // namespace qec
