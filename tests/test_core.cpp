/**
 * @file
 * Unit tests for the ERASER microarchitecture blocks: LTT, PUTT, SWAP
 * Lookup Table, Leakage Speculation Block and Dynamic LRC Insertion.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "base/rng.h"
#include "code/rotated_surface_code.h"
#include "core/dli.h"
#include "core/lsb.h"
#include "core/swap_lookup.h"
#include "core/tracking_tables.h"

namespace qec
{
namespace
{

TEST(Ltt, MarkClearQuery)
{
    LeakageTrackingTable ltt(9);
    EXPECT_FALSE(ltt.marked(3));
    ltt.mark(3);
    ltt.mark(7);
    EXPECT_TRUE(ltt.marked(3));
    EXPECT_EQ(ltt.markedList(), (std::vector<int>{3, 7}));
    ltt.clear(3);
    EXPECT_FALSE(ltt.marked(3));
    ltt.reset();
    EXPECT_TRUE(ltt.markedList().empty());
}

TEST(Putt, AdvanceRoundBlocksLastUsers)
{
    ParityUsageTable putt(8);
    EXPECT_FALSE(putt.used(2));
    putt.advanceRound({2, 5});
    EXPECT_TRUE(putt.used(2));
    EXPECT_TRUE(putt.used(5));
    EXPECT_FALSE(putt.used(3));
    // Next round with no LRCs: everything frees up.
    putt.advanceRound({});
    EXPECT_FALSE(putt.used(2));
}

class LookupSweep : public ::testing::TestWithParam<int>
{
  protected:
    RotatedSurfaceCode code_{GetParam()};
    SwapLookupTable lookup_{code_};
};

TEST_P(LookupSweep, PrimariesAreAdjacent)
{
    for (int q = 0; q < code_.numData(); ++q) {
        const auto &entry = lookup_.entry(q);
        const auto &stabs = code_.stabilizersOfData(q);
        EXPECT_NE(std::find(stabs.begin(), stabs.end(), entry.primary),
                  stabs.end());
        for (int b : entry.backups) {
            EXPECT_NE(std::find(stabs.begin(), stabs.end(), b),
                      stabs.end());
            EXPECT_NE(b, entry.primary);
        }
    }
}

TEST_P(LookupSweep, PerfectPairsCoverAllParityQubits)
{
    const auto &pairs = lookup_.perfectPairs();
    EXPECT_EQ((int)pairs.size(), code_.numStabilizers());
    std::set<int> stabs;
    std::set<int> data;
    for (const auto &[q, s] : pairs) {
        EXPECT_TRUE(stabs.insert(s).second);
        EXPECT_TRUE(data.insert(q).second);
    }
    // Exactly one data qubit is left over.
    EXPECT_EQ((int)data.size(), code_.numData() - 1);
    EXPECT_FALSE(data.count(lookup_.unmatchedData()));
}

TEST_P(LookupSweep, BackupLimitRespected)
{
    SwapLookupTable wide(code_, 3);
    for (int q = 0; q < code_.numData(); ++q) {
        EXPECT_LE(lookup_.entry(q).backups.size(), 1u);
        EXPECT_LE(wide.entry(q).backups.size(), 3u);
        // The wide table keeps every remaining neighbour.
        EXPECT_EQ(wide.entry(q).backups.size(),
                  code_.stabilizersOfData(q).size() - 1);
    }
}

INSTANTIATE_TEST_SUITE_P(Distances, LookupSweep,
                         ::testing::Values(3, 5, 7, 9, 11));

TEST(BipartiteMatching, SimpleCases)
{
    // Left 0 connects to right {0,1}; left 1 to {0}: both matchable.
    auto match = maxBipartiteMatching(2, {{0, 1}, {0}}, 2);
    EXPECT_EQ(match[1], 0);
    EXPECT_EQ(match[0], 1);

    // Contention: three lefts share one right.
    match = maxBipartiteMatching(3, {{0}, {0}, {0}}, 1);
    int matched = 0;
    for (int m : match)
        matched += (m != -1) ? 1 : 0;
    EXPECT_EQ(matched, 1);
}

class LsbFixture : public ::testing::Test
{
  protected:
    LsbFixture()
        : code_(5),
          lsb_(code_, LsbOptions{LsbThreshold::AtLeastTwo, false}),
          ltt_(code_.numData())
    {
    }

    std::vector<uint8_t>
    noEvents() const
    {
        return std::vector<uint8_t>(code_.numStabilizers(), 0);
    }
    std::vector<uint8_t>
    noLrc() const
    {
        return std::vector<uint8_t>(code_.numData(), 0);
    }

    RotatedSurfaceCode code_;
    LeakageSpeculationBlock lsb_;
    LeakageTrackingTable ltt_;
};

TEST_F(LsbFixture, QuietSyndromeMarksNothing)
{
    lsb_.speculate(noEvents(), noEvents(), noLrc(), ltt_);
    EXPECT_TRUE(ltt_.markedList().empty());
}

TEST_F(LsbFixture, TwoFlipsMarkBulkQubit)
{
    const int q = code_.dataId(2, 2);
    auto events = noEvents();
    const auto &stabs = code_.stabilizersOfData(q);
    ASSERT_EQ(stabs.size(), 4u);
    events[stabs[0]] = 1;
    events[stabs[1]] = 1;
    lsb_.speculate(events, noEvents(), noLrc(), ltt_);
    EXPECT_TRUE(ltt_.marked(q));
}

TEST_F(LsbFixture, OneFlipIsIgnored)
{
    const int q = code_.dataId(2, 2);
    auto events = noEvents();
    events[code_.stabilizersOfData(q)[0]] = 1;
    lsb_.speculate(events, noEvents(), noLrc(), ltt_);
    EXPECT_FALSE(ltt_.marked(q));
}

TEST_F(LsbFixture, RecentLrcSuppressesSpeculation)
{
    const int q = code_.dataId(2, 2);
    auto events = noEvents();
    const auto &stabs = code_.stabilizersOfData(q);
    for (int s : stabs)
        events[s] = 1;
    auto had_lrc = noLrc();
    had_lrc[q] = 1;
    lsb_.speculate(events, noEvents(), had_lrc, ltt_);
    EXPECT_FALSE(ltt_.marked(q));
}

TEST_F(LsbFixture, MultiLevelLabelMarksNeighbors)
{
    LeakageSpeculationBlock lsbm(
        code_, LsbOptions{LsbThreshold::AtLeastTwo, true});
    auto labels = noEvents();
    const int stab = 0;
    labels[stab] = 1;
    lsbm.speculate(noEvents(), labels, noLrc(), ltt_);
    for (int q : code_.stabilizer(stab).support)
        EXPECT_TRUE(ltt_.marked(q));
    EXPECT_EQ(ltt_.markedList().size(),
              code_.stabilizer(stab).support.size());
}

TEST_F(LsbFixture, ThresholdModes)
{
    LeakageSpeculationBlock half(
        code_, LsbOptions{LsbThreshold::HalfNeighbors, false});
    LeakageSpeculationBlock all(
        code_, LsbOptions{LsbThreshold::AllNeighbors, false});
    EXPECT_EQ(lsb_.thresholdFor(2), 2);
    EXPECT_EQ(lsb_.thresholdFor(4), 2);
    EXPECT_EQ(half.thresholdFor(2), 1);
    EXPECT_EQ(half.thresholdFor(3), 2);
    EXPECT_EQ(half.thresholdFor(4), 2);
    EXPECT_EQ(all.thresholdFor(4), 4);
}

class DliFixture : public ::testing::Test
{
  protected:
    DliFixture()
        : code_(5), lookup_(code_),
          dli_(code_, lookup_),
          exact_(code_, lookup_, DliAllocator::ExactMatching),
          ltt_(code_.numData()), putt_(code_.numStabilizers())
    {
    }

    RotatedSurfaceCode code_;
    SwapLookupTable lookup_;
    DynamicLrcInsertion dli_;
    DynamicLrcInsertion exact_;
    LeakageTrackingTable ltt_;
    ParityUsageTable putt_;
};

TEST_F(DliFixture, SingleQubitGetsPrimary)
{
    ltt_.mark(7);
    std::vector<int> used;
    auto lrcs = dli_.allocate(ltt_, putt_, used);
    ASSERT_EQ(lrcs.size(), 1u);
    EXPECT_EQ(lrcs[0].data, 7);
    EXPECT_EQ(lrcs[0].stab, lookup_.entry(7).primary);
    EXPECT_FALSE(ltt_.marked(7));
    EXPECT_EQ(used, (std::vector<int>{lookup_.entry(7).primary}));
}

TEST_F(DliFixture, CooldownForcesBackup)
{
    ltt_.mark(7);
    putt_.advanceRound({lookup_.entry(7).primary});
    std::vector<int> used;
    auto lrcs = dli_.allocate(ltt_, putt_, used);
    ASSERT_EQ(lrcs.size(), 1u);
    ASSERT_FALSE(lookup_.entry(7).backups.empty());
    EXPECT_EQ(lrcs[0].stab, lookup_.entry(7).backups.front());
}

TEST_F(DliFixture, ExhaustedCandidatesStayMarked)
{
    const int q = 7;
    const auto &entry = lookup_.entry(q);
    std::vector<int> block = {entry.primary};
    for (int b : entry.backups)
        block.push_back(b);
    putt_.advanceRound(block);
    ltt_.mark(q);
    std::vector<int> used;
    auto lrcs = dli_.allocate(ltt_, putt_, used);
    EXPECT_TRUE(lrcs.empty());
    EXPECT_TRUE(ltt_.marked(q));   // retried next round
}

TEST_F(DliFixture, NoParityDoubleBooking)
{
    for (int q = 0; q < code_.numData(); ++q)
        ltt_.mark(q);
    std::vector<int> used;
    auto lrcs = dli_.allocate(ltt_, putt_, used);
    std::set<int> stabs;
    std::set<int> data;
    for (const auto &pair : lrcs) {
        EXPECT_TRUE(stabs.insert(pair.stab).second);
        EXPECT_TRUE(data.insert(pair.data).second);
    }
}

TEST_F(DliFixture, ConflictingNeighborsResolvedLikeFig11)
{
    // Two data qubits sharing a stabilizer must both be scheduled via
    // distinct parity qubits (Fig. 11's scenario).
    const auto &stab = code_.stabilizer(code_.stabilizersOfData(
        code_.dataId(2, 2))[0]);
    ASSERT_GE(stab.support.size(), 2u);
    const int a = stab.support[0];
    const int b = stab.support[1];
    ltt_.mark(a);
    ltt_.mark(b);
    std::vector<int> used;
    auto lrcs = exact_.allocate(ltt_, putt_, used);
    ASSERT_EQ(lrcs.size(), 2u);
    EXPECT_NE(lrcs[0].stab, lrcs[1].stab);
}

TEST_F(DliFixture, ExactMatchingAtLeastAsGoodAsLookup)
{
    // Exact matching schedules at least as many LRCs for any suspect
    // set: property-checked over random sets.
    Rng rng(23);
    for (int trial = 0; trial < 200; ++trial) {
        LeakageTrackingTable a(code_.numData());
        LeakageTrackingTable b(code_.numData());
        for (int q = 0; q < code_.numData(); ++q) {
            if (rng.uniform() < 0.25) {
                a.mark(q);
                b.mark(q);
            }
        }
        std::vector<int> used_a;
        std::vector<int> used_b;
        auto via_lookup = dli_.allocate(a, putt_, used_a);
        auto via_exact = exact_.allocate(b, putt_, used_b);
        ASSERT_GE(via_exact.size(), via_lookup.size());
    }
}

} // namespace
} // namespace qec
