/**
 * @file
 * Circuit-builder tests: the op structure of plain rounds, the paper's
 * LRC cost accounting (4 -> 9 two-qubit ops per stabilizer, Fig. 1(b)
 * and Section 3.1.2), DQLR segments, and assignment validation.
 */

#include <gtest/gtest.h>

#include <set>

#include "code/builder.h"
#include "code/rotated_surface_code.h"

namespace qec
{
namespace
{

int
countCnotsTouching(const std::vector<Op> &ops, int qubit)
{
    int n = 0;
    for (const auto &op : ops) {
        if (op.type == OpType::Cnot &&
            (op.q0 == qubit || op.q1 == qubit))
            ++n;
    }
    return n;
}

class RoundSweep : public ::testing::TestWithParam<int>
{
  protected:
    RotatedSurfaceCode code_{GetParam()};
};

TEST_P(RoundSweep, PlainRoundOpCounts)
{
    const int d = GetParam();
    RoundSchedule round = buildRoundSchedule(code_, 0, {});

    Circuit c;
    c.ops = round.ops;
    EXPECT_EQ(c.countOps(OpType::DataNoise), d * d);
    // One H before and one after the CNOT layers per X stabilizer.
    EXPECT_EQ(c.countOps(OpType::H), 2 * code_.numXStabilizers());
    // One CNOT per (stabilizer, support qubit).
    int expected_cnots = 0;
    for (const auto &stab : code_.stabilizers())
        expected_cnots += (int)stab.support.size();
    EXPECT_EQ(c.countOps(OpType::Cnot), expected_cnots);
    EXPECT_EQ(c.countOps(OpType::Measure), code_.numStabilizers());
    EXPECT_EQ(c.countOps(OpType::Reset), code_.numStabilizers());
    EXPECT_TRUE(round.lrcs.empty());
}

TEST_P(RoundSweep, PlainRoundMeasuresEveryStabilizerOnce)
{
    RoundSchedule round = buildRoundSchedule(code_, 3, {});
    std::set<int> measured;
    for (const auto &op : round.ops) {
        if (op.type != OpType::Measure)
            continue;
        EXPECT_TRUE(measured.insert(op.stab).second);
        EXPECT_EQ(op.round, 3);
        EXPECT_EQ(op.q0, code_.stabilizer(op.stab).ancilla);
    }
    EXPECT_EQ((int)measured.size(), code_.numStabilizers());
}

TEST_P(RoundSweep, LrcAddsFiveTwoQubitOps)
{
    // Paper Fig. 1(b): LRCs take a stabilizer from 4 to 9 two-qubit
    // operations.
    RoundSchedule plain = buildRoundSchedule(code_, 0, {});
    const int stab = code_.stabilizersOfData(0).front();
    RoundSchedule with_lrc = buildRoundSchedule(code_, 0, {{0, stab}});

    Circuit a;
    a.ops = plain.ops;
    Circuit b;
    b.ops = with_lrc.ops;
    EXPECT_EQ(b.countTwoQubitOps(), a.countTwoQubitOps() + 5);
    ASSERT_EQ(with_lrc.lrcs.size(), 1u);
}

TEST_P(RoundSweep, LrcParityQubitUsage)
{
    // Section 3.1.2: with an LRC, the parity qubit takes part in 9
    // CNOTs, 6 of them with the swapped data qubit, 4 of those before
    // the data qubit's reset.
    const int stab = code_.stabilizersOfData(0).front();
    const int parity = code_.stabilizer(stab).ancilla;
    RoundSchedule round = buildRoundSchedule(code_, 0, {{0, stab}});

    const int weight = (int)code_.stabilizer(stab).support.size();
    // The parity qubit sees its stabilizer CNOTs plus the 5 LRC CNOTs.
    EXPECT_EQ(countCnotsTouching(round.ops, parity), weight + 5);

    int pd_before_reset = 0;
    int pd_total = 0;
    bool reset_seen = false;
    for (const auto &op : round.ops) {
        if (op.type == OpType::Reset && op.q0 == 0)
            reset_seen = true;
        if (op.type == OpType::Cnot &&
            ((op.q0 == 0 && op.q1 == parity) ||
             (op.q0 == parity && op.q1 == 0))) {
            ++pd_total;
            if (!reset_seen)
                ++pd_before_reset;
        }
    }
    // Bulk data qubit: 1 stabilizer CNOT + 3 SWAP + 2 MOV = 6; the
    // stabilizer CNOT + SWAP happen before the reset.
    EXPECT_EQ(pd_total, 6);
    EXPECT_EQ(pd_before_reset, 4);
}

TEST_P(RoundSweep, LrcMeasuresDataInsteadOfParity)
{
    const int stab = code_.stabilizersOfData(0).front();
    RoundSchedule round = buildRoundSchedule(code_, 2, {{0, stab}});

    bool parity_measured = false;
    bool data_measured = false;
    for (const auto &op : round.ops) {
        if (op.type != OpType::Measure)
            continue;
        if (op.q0 == code_.stabilizer(stab).ancilla)
            parity_measured = true;
        if (op.q0 == 0) {
            data_measured = true;
            EXPECT_TRUE(op.lrcData);
            EXPECT_EQ(op.stab, stab);
            EXPECT_EQ(op.round, 2);
        }
    }
    EXPECT_FALSE(parity_measured);
    EXPECT_TRUE(data_measured);
}

TEST_P(RoundSweep, LrcSpanIndicesConsistent)
{
    const int stab = code_.stabilizersOfData(0).front();
    RoundSchedule round = buildRoundSchedule(code_, 0, {{0, stab}});
    ASSERT_EQ(round.lrcs.size(), 1u);
    const LrcSpan &span = round.lrcs[0];
    EXPECT_EQ(span.data, 0);
    EXPECT_EQ(span.stab, stab);
    EXPECT_EQ(span.parity, code_.stabilizer(stab).ancilla);
    EXPECT_EQ(round.ops[span.measureIndex].type, OpType::Measure);
    EXPECT_EQ(round.ops[span.measureIndex].q0, 0);
    EXPECT_EQ(span.movEnd - span.movBegin, 2u);
    for (size_t i = span.movBegin; i < span.movEnd; ++i)
        EXPECT_EQ(round.ops[i].type, OpType::Cnot);
    EXPECT_GT(span.movBegin, span.measureIndex);
}

TEST_P(RoundSweep, ManyLrcsInOneRound)
{
    // Schedule an LRC on every stabilizer using the perfect pairing
    // structure: pick for each stabilizer one support qubit, all
    // distinct, via first-fit.
    std::vector<LrcPair> pairs;
    std::vector<uint8_t> data_used(code_.numData(), 0);
    for (const auto &stab : code_.stabilizers()) {
        for (int q : stab.support) {
            if (!data_used[q]) {
                data_used[q] = 1;
                pairs.push_back({q, stab.index});
                break;
            }
        }
    }
    RoundSchedule round = buildRoundSchedule(code_, 0, pairs);
    EXPECT_EQ(round.lrcs.size(), pairs.size());
}

INSTANTIATE_TEST_SUITE_P(Distances, RoundSweep,
                         ::testing::Values(3, 5, 7));

TEST(Builder, RejectsDuplicateParity)
{
    RotatedSurfaceCode code(3);
    const int stab = code.stabilizersOfData(4).front();
    const auto &support = code.stabilizer(stab).support;
    ASSERT_GE(support.size(), 2u);
    EXPECT_DEATH(
        {
            buildRoundSchedule(code, 0,
                               {{support[0], stab}, {support[1], stab}});
        },
        "");
}

TEST(Builder, RejectsNonAdjacentPair)
{
    RotatedSurfaceCode code(5);
    // Find a stabilizer not adjacent to data qubit 0.
    int far_stab = -1;
    for (const auto &stab : code.stabilizers()) {
        bool adjacent = false;
        for (int q : stab.support)
            adjacent |= (q == 0);
        if (!adjacent) {
            far_stab = stab.index;
            break;
        }
    }
    ASSERT_GE(far_stab, 0);
    EXPECT_DEATH({ buildRoundSchedule(code, 0, {{0, far_stab}}); }, "");
}

TEST(Builder, MemoryCircuitShape)
{
    RotatedSurfaceCode code(3);
    Circuit circuit = buildMemoryCircuit(code, 5, Basis::Z);
    EXPECT_EQ(circuit.numRounds, 5);
    EXPECT_EQ(circuit.numQubits, code.numQubits());
    EXPECT_EQ((int)circuit.roundBegin.size(), 6);
    EXPECT_EQ(circuit.countOps(OpType::RoundStart), 5);
    // Final transversal measurement: one per data qubit.
    int finals = 0;
    for (const auto &op : circuit.ops)
        finals += (op.finalData ? 1 : 0);
    EXPECT_EQ(finals, code.numData());
}

TEST(Builder, MemoryXUsesXBasisFinals)
{
    RotatedSurfaceCode code(3);
    Circuit circuit = buildMemoryCircuit(code, 2, Basis::X);
    int mx = 0;
    for (const auto &op : circuit.ops) {
        if (op.finalData) {
            EXPECT_EQ(op.type, OpType::MeasureX);
            ++mx;
        }
    }
    EXPECT_EQ(mx, code.numData());
}

TEST(Builder, DqlrSegmentShape)
{
    RotatedSurfaceCode code(3);
    const int stab = code.stabilizersOfData(0).front();
    auto ops = buildDqlrSegment(code, {{0, stab}});
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_EQ(ops[0].type, OpType::LeakageIswap);
    EXPECT_EQ(ops[0].q0, 0);
    EXPECT_EQ(ops[0].q1, code.stabilizer(stab).ancilla);
    EXPECT_EQ(ops[1].type, OpType::Reset);
    EXPECT_EQ(ops[1].q0, code.stabilizer(stab).ancilla);
}

TEST(Builder, CircuitToStringMentionsOps)
{
    RotatedSurfaceCode code(3);
    Circuit circuit = buildMemoryCircuit(code, 1, Basis::Z);
    const std::string dump = circuit.toString();
    EXPECT_NE(dump.find("ROUND 0"), std::string::npos);
    EXPECT_NE(dump.find("CX"), std::string::npos);
    EXPECT_NE(dump.find("final"), std::string::npos);
}

} // namespace
} // namespace qec
