/**
 * @file
 * Scheduling-policy behaviour: the Always-LRCs alternating pattern and
 * Table-4 LRC rate, the Optimal oracle, and ERASER's reaction to
 * crafted syndromes.
 */

#include <gtest/gtest.h>

#include <set>

#include "code/rotated_surface_code.h"
#include "core/policies.h"

namespace qec
{
namespace
{

RoundObservation
quietObservation(const RotatedSurfaceCode &code, int round)
{
    RoundObservation obs;
    obs.round = round;
    obs.events.assign(code.numStabilizers(), 0);
    obs.leakedLabels.assign(code.numStabilizers(), 0);
    obs.hadLrc.assign(code.numData(), 0);
    obs.trueLeakedData.assign(code.numData(), 0);
    return obs;
}

class PolicySweep : public ::testing::TestWithParam<int>
{
  protected:
    PolicySweep() : code_(GetParam()), lookup_(code_) {}

    RotatedSurfaceCode code_;
    SwapLookupTable lookup_;
};

TEST_P(PolicySweep, NeverSchedulesNothing)
{
    NeverLrcPolicy policy;
    EXPECT_TRUE(policy.firstRound().empty());
    EXPECT_TRUE(policy.nextRound(quietObservation(code_, 0)).empty());
}

TEST_P(PolicySweep, AlwaysAlternatesRounds)
{
    AlwaysLrcPolicy policy(code_, false);
    EXPECT_TRUE(policy.firstRound().empty());   // round 0: plain
    auto r1 = policy.nextRound(quietObservation(code_, 0));
    EXPECT_EQ((int)r1.size(), code_.numStabilizers());
    auto r2 = policy.nextRound(quietObservation(code_, 1));
    EXPECT_TRUE(r2.empty());
    auto r3 = policy.nextRound(quietObservation(code_, 2));
    EXPECT_EQ((int)r3.size(), code_.numStabilizers());
}

TEST_P(PolicySweep, AlwaysRotatesLeftoverQubit)
{
    AlwaysLrcPolicy policy(code_, false);
    auto r1 = policy.nextRound(quietObservation(code_, 0));
    auto r3 = policy.nextRound(quietObservation(code_, 2));
    auto r5 = policy.nextRound(quietObservation(code_, 4));

    auto missing = [&](const std::vector<LrcPair> &pairs) {
        std::set<int> have;
        for (const auto &p : pairs)
            have.insert(p.data);
        for (int q = 0; q < code_.numData(); ++q) {
            if (!have.count(q))
                return q;
        }
        return -1;
    };
    const int m1 = missing(r1);
    const int m3 = missing(r3);
    ASSERT_NE(m1, -1);
    ASSERT_NE(m3, -1);
    EXPECT_NE(m1, m3);               // leftover rotates
    EXPECT_EQ(m1, missing(r5));      // with period two
}

TEST_P(PolicySweep, AlwaysMatchesTable4Rate)
{
    // Table 4: Always-LRCs averages (d^2-1)/2 LRCs per round.
    AlwaysLrcPolicy policy(code_, false);
    uint64_t total = policy.firstRound().size();
    const int rounds = 40;
    for (int r = 0; r < rounds - 1; ++r)
        total += policy.nextRound(quietObservation(code_, r)).size();
    const double avg = (double)total / rounds;
    EXPECT_NEAR(avg, code_.numStabilizers() / 2.0, 0.6);
}

TEST_P(PolicySweep, AlwaysPairsAreValid)
{
    AlwaysLrcPolicy policy(code_, false);
    auto pairs = policy.nextRound(quietObservation(code_, 0));
    std::set<int> stabs;
    for (const auto &pair : pairs) {
        EXPECT_TRUE(stabs.insert(pair.stab).second);
        const auto &support = code_.stabilizer(pair.stab).support;
        EXPECT_NE(std::find(support.begin(), support.end(), pair.data),
                  support.end());
    }
}

TEST_P(PolicySweep, DqlrBaselineFiresEveryRound)
{
    AlwaysLrcPolicy policy(code_, true);
    EXPECT_EQ((int)policy.firstRound().size(), code_.numStabilizers());
    EXPECT_EQ(
        (int)policy.nextRound(quietObservation(code_, 0)).size(),
        code_.numStabilizers());
    EXPECT_EQ(policy.name(), "DQLR");
}

TEST_P(PolicySweep, OptimalSchedulesExactlyLeaked)
{
    OptimalLrcPolicy policy(code_, lookup_);
    auto obs = quietObservation(code_, 0);
    EXPECT_TRUE(policy.nextRound(obs).empty());

    obs.trueLeakedData[3] = 1;
    obs.trueLeakedData[5] = 1;
    auto lrcs = policy.nextRound(obs);
    std::set<int> scheduled;
    for (const auto &pair : lrcs)
        scheduled.insert(pair.data);
    EXPECT_EQ(scheduled, (std::set<int>{3, 5}));
}

TEST_P(PolicySweep, EraserQuietSyndromeIsIdle)
{
    EraserPolicy policy(code_, lookup_, false);
    for (int r = 0; r < 5; ++r)
        EXPECT_TRUE(policy.nextRound(quietObservation(code_, r)).empty());
}

TEST_P(PolicySweep, EraserReactsToDoubleFlip)
{
    EraserPolicy policy(code_, lookup_, false);
    const int q = code_.dataId(1, 1);
    auto obs = quietObservation(code_, 0);
    const auto &stabs = code_.stabilizersOfData(q);
    obs.events[stabs[0]] = 1;
    obs.events[stabs[1]] = 1;
    auto lrcs = policy.nextRound(obs);

    // The suspect qubit is scheduled; any other scheduled qubit must
    // also have crossed the >=2-flip threshold (the two events may
    // legitimately implicate a shared neighbour).
    bool found = false;
    for (const auto &pair : lrcs) {
        found |= (pair.data == q);
        int flips = 0;
        for (int s : code_.stabilizersOfData(pair.data))
            flips += obs.events[s];
        EXPECT_GE(flips, 2) << "data " << pair.data;
    }
    EXPECT_TRUE(found);
}

TEST_P(PolicySweep, EraserPuttBlocksImmediateReuse)
{
    EraserPolicy policy(code_, lookup_, false);
    const int q = code_.dataId(1, 1);
    auto obs = quietObservation(code_, 0);
    const auto &stabs = code_.stabilizersOfData(q);
    obs.events[stabs[0]] = 1;
    obs.events[stabs[1]] = 1;
    auto first = policy.nextRound(obs);
    ASSERT_GE(first.size(), 1u);
    int used_stab = -1;
    for (const auto &pair : first) {
        if (pair.data == q)
            used_stab = pair.stab;
    }
    ASSERT_NE(used_stab, -1);

    // Next round: a neighbour of the used parity qubit fires.
    auto obs2 = quietObservation(code_, 1);
    obs2.hadLrc[q] = 1;
    int other = -1;
    for (int cand : code_.stabilizer(used_stab).support) {
        if (cand != q)
            other = cand;
    }
    ASSERT_NE(other, -1);
    const auto &other_stabs = code_.stabilizersOfData(other);
    obs2.events[other_stabs[0]] = 1;
    obs2.events[other_stabs[1]] = 1;
    obs2.events[other_stabs[other_stabs.size() - 1]] = 1;
    auto second = policy.nextRound(obs2);
    for (const auto &pair : second)
        EXPECT_NE(pair.stab, used_stab) << "PUTT cooldown violated";
}

TEST_P(PolicySweep, EraserMConsumesLeakLabels)
{
    EraserPolicy policy(code_, lookup_, true);
    EXPECT_TRUE(policy.usesMultiLevelReadout());
    auto obs = quietObservation(code_, 0);
    obs.leakedLabels[0] = 1;
    auto lrcs = policy.nextRound(obs);
    // All data neighbours of stabilizer 0 get scheduled (conflicts
    // permitting, so at least one).
    EXPECT_GE(lrcs.size(), 1u);
    for (const auto &pair : lrcs) {
        const auto &support = code_.stabilizer(0).support;
        EXPECT_NE(std::find(support.begin(), support.end(), pair.data),
                  support.end());
    }
}

TEST_P(PolicySweep, FactoriesProduceNamedPolicies)
{
    EXPECT_EQ(makePolicyFactory(PolicyKind::Never, code_, lookup_)()
                  ->name(),
              "No-LRC");
    EXPECT_EQ(makePolicyFactory(PolicyKind::Always, code_, lookup_)()
                  ->name(),
              "Always-LRCs");
    EXPECT_EQ(makePolicyFactory(PolicyKind::Eraser, code_, lookup_)()
                  ->name(),
              "ERASER");
    EXPECT_EQ(makePolicyFactory(PolicyKind::EraserM, code_, lookup_)()
                  ->name(),
              "ERASER+M");
    EXPECT_EQ(makePolicyFactory(PolicyKind::Optimal, code_, lookup_)()
                  ->name(),
              "Optimal");
    EXPECT_EQ(policyKindName(PolicyKind::EraserM), "ERASER+M");
    EXPECT_EQ(policyKindName(PolicyKind::Always, true), "DQLR");
}

INSTANTIATE_TEST_SUITE_P(Distances, PolicySweep,
                         ::testing::Values(3, 5, 7));

} // namespace
} // namespace qec
