/**
 * @file
 * Detector-error-model tests: tiled construction must equal direct
 * enumeration, signatures must be graph-like, and probabilities sane.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "decoder/detector_model.h"

namespace qec
{
namespace
{

using EdgeKey = std::tuple<int, int, bool>;
using EdgeMap = std::map<EdgeKey, std::tuple<int, int, int>>;

EdgeMap
toMap(const DetectorModel &model)
{
    EdgeMap map;
    for (const auto &e : model.edges) {
        auto key = EdgeKey{e.a, e.b, e.obsFlip};
        auto &counts = map[key];
        std::get<0>(counts) += e.n1;
        std::get<1>(counts) += e.n3;
        std::get<2>(counts) += e.n15;
    }
    return map;
}

class DemTileSweep
    : public ::testing::TestWithParam<std::tuple<int, int, Basis>>
{
};

TEST_P(DemTileSweep, TiledMatchesDirect)
{
    const auto [d, rounds, basis] = GetParam();
    RotatedSurfaceCode code(d);
    DetectorModel direct = buildDetectorModelDirect(code, rounds, basis);
    DetectorModel tiled = buildDetectorModel(code, rounds, basis);
    ASSERT_GT(rounds, 8) << "sweep must exercise the tiling path";

    EXPECT_EQ(tiled.rounds, direct.rounds);
    EXPECT_EQ(tiled.stabsPerRound, direct.stabsPerRound);

    EdgeMap dm = toMap(direct);
    EdgeMap tm = toMap(tiled);
    ASSERT_EQ(dm.size(), tm.size());
    for (const auto &[key, counts] : dm) {
        auto it = tm.find(key);
        ASSERT_NE(it, tm.end())
            << "missing edge (" << std::get<0>(key) << ","
            << std::get<1>(key) << ")";
        EXPECT_EQ(it->second, counts)
            << "counts differ on edge (" << std::get<0>(key) << ","
            << std::get<1>(key) << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DemTileSweep,
    ::testing::Combine(::testing::Values(3, 5),
                       ::testing::Values(9, 10, 12),
                       ::testing::Values(Basis::Z, Basis::X)));

class DemStructure : public ::testing::TestWithParam<int>
{
  protected:
    RotatedSurfaceCode code_{GetParam()};
};

TEST_P(DemStructure, EdgesWithinDetectorRange)
{
    const int rounds = 6;
    DetectorModel model =
        buildDetectorModelDirect(code_, rounds, Basis::Z);
    EXPECT_EQ(model.numDetectors(),
              (rounds + 1) * code_.numZStabilizers());
    for (const auto &e : model.edges) {
        ASSERT_GE(e.a, 0);
        ASSERT_LT(e.a, model.numDetectors());
        if (e.b != kBoundary) {
            ASSERT_GE(e.b, 0);
            ASSERT_LT(e.b, model.numDetectors());
            ASSERT_NE(e.a, e.b);
        }
    }
}

TEST_P(DemStructure, EveryDetectorTouched)
{
    const int rounds = 5;
    DetectorModel model =
        buildDetectorModelDirect(code_, rounds, Basis::Z);
    std::vector<int> degree(model.numDetectors(), 0);
    for (const auto &e : model.edges) {
        ++degree[e.a];
        if (e.b != kBoundary)
            ++degree[e.b];
    }
    for (int det = 0; det < model.numDetectors(); ++det)
        EXPECT_GT(degree[det], 0) << "detector " << det;
}

TEST_P(DemStructure, BoundaryEdgesExist)
{
    DetectorModel model = buildDetectorModelDirect(code_, 4, Basis::Z);
    int boundary = 0;
    for (const auto &e : model.edges)
        boundary += (e.b == kBoundary) ? 1 : 0;
    EXPECT_GT(boundary, 0);
}

TEST_P(DemStructure, SomeEdgesFlipObservable)
{
    DetectorModel model = buildDetectorModelDirect(code_, 4, Basis::Z);
    int obs_edges = 0;
    for (const auto &e : model.edges)
        obs_edges += e.obsFlip ? 1 : 0;
    // Errors on the logical operator's row reach the boundary while
    // crossing the observable.
    EXPECT_GT(obs_edges, 0);
}

TEST_P(DemStructure, CircuitIsGraphLike)
{
    // Every mechanism flips at most two detectors of the decoded
    // basis: detector cancellation makes the standard schedule purely
    // graph-like, so nothing needs decomposition.
    DetectorModel model = buildDetectorModelDirect(code_, 5, Basis::Z);
    EXPECT_EQ(model.unmatchedDecompositions, 0);
    EXPECT_EQ(model.decomposedMechanisms, 0);
}

TEST_P(DemStructure, ProbabilitiesReasonable)
{
    DetectorModel model = buildDetectorModelDirect(code_, 4, Basis::Z);
    const double p = 1e-3;
    for (const auto &e : model.edges) {
        const double q = e.probability(p);
        ASSERT_GT(q, 0.0);
        ASSERT_LT(q, 0.1);
        ASSERT_GT(e.n1 + e.n3 + e.n15, 0);
    }
}

TEST_P(DemStructure, ProbabilityScalesWithP)
{
    DetectorModel model = buildDetectorModelDirect(code_, 3, Basis::Z);
    for (const auto &e : model.edges) {
        EXPECT_LT(e.probability(1e-4), e.probability(1e-3));
        EXPECT_NEAR(e.probability(1e-4) / e.probability(1e-3), 0.1,
                    0.02);
    }
}

TEST_P(DemStructure, BasisSymmetry)
{
    // Both memory bases share detector counts and the measurement /
    // two-qubit mechanism totals. (Single-qubit totals differ: the H
    // gates sit on X ancillas only, so their errors are visible to
    // exactly one basis.)
    DetectorModel z = buildDetectorModelDirect(code_, 4, Basis::Z);
    DetectorModel x = buildDetectorModelDirect(code_, 4, Basis::X);
    EXPECT_EQ(z.numDetectors(), x.numDetectors());

    auto total = [](const DetectorModel &m) {
        int n1 = 0;
        int n15 = 0;
        for (const auto &e : m.edges) {
            n1 += e.n1;
            n15 += e.n15;
        }
        return std::tuple{n1, n15};
    };
    EXPECT_EQ(total(z), total(x));
}

INSTANTIATE_TEST_SUITE_P(Distances, DemStructure,
                         ::testing::Values(3, 5));

TEST(Dem, EdgeProbabilityXorCombination)
{
    DemEdge edge;
    edge.n1 = 2;
    const double p = 0.01;
    // Two mechanisms at prob p: odd-parity probability 2p(1-p).
    EXPECT_NEAR(edge.probability(p), 2 * p * (1 - p), 1e-12);
}

TEST(Dem, SingleRoundModelWorks)
{
    RotatedSurfaceCode code(3);
    DetectorModel model = buildDetectorModelDirect(code, 1, Basis::Z);
    EXPECT_EQ(model.numDetectors(), 2 * code.numZStabilizers());
    EXPECT_FALSE(model.edges.empty());
}

TEST(Dem, DetectorIdHelpers)
{
    RotatedSurfaceCode code(3);
    DetectorModel model = buildDetectorModelDirect(code, 4, Basis::Z);
    const int id = model.detectorId(2, 3);
    EXPECT_EQ(model.detectorStab(id), 2);
    EXPECT_EQ(model.detectorRound(id), 3);
}

} // namespace
} // namespace qec
