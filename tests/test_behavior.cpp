/**
 * @file
 * Behavioral tests of the closed control loop: forced leakage bursts
 * must be detected and removed within a few rounds (the paper's core
 * promise), boundary stabilizers must support LRCs with the right op
 * accounting, and the decoder stack must stay fast on storm-sized
 * inputs.
 */

#include <gtest/gtest.h>

#include <chrono>

#include "core/qsg.h"
#include "decoder/matching.h"
#include "exp/memory_experiment.h"
#include "sim/frame_simulator.h"

namespace qec
{
namespace
{

/** Drive ERASER manually for `rounds`; force-leak `burst` data qubits
 *  at `storm_round`; return rounds until all data leakage is gone. */
int
stormRecoveryRounds(int d, const std::vector<int> &burst,
                    int storm_round, int rounds, bool multi_level,
                    uint64_t seed)
{
    RotatedSurfaceCode code(d);
    SwapLookupTable lookup(code);
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    em.pTransport = 0.0;   // keep the burst from re-spreading
    FrameSimulator sim(code.numQubits(), em, Rng(seed));
    QecScheduleGenerator qsg(code, RemovalProtocol::SwapLrc);
    EraserPolicy policy(code, lookup, multi_level);

    std::vector<LrcPair> lrcs;
    std::vector<uint8_t> prev(code.numStabilizers(), 0);
    RoundObservation obs;
    obs.events.resize(code.numStabilizers());
    obs.leakedLabels.assign(code.numStabilizers(), 0);
    obs.hadLrc.resize(code.numData());

    int cleared_at = -1;
    for (int r = 0; r < rounds; ++r) {
        if (r == storm_round) {
            for (int q : burst)
                sim.setLeaked(q, true);
        }
        const size_t mark = sim.record().size();
        RoundSchedule sched = qsg.generate(r, lrcs);
        sim.executeRange(sched.ops.data(),
                         sched.ops.data() + sched.ops.size());

        std::vector<uint8_t> flips(code.numStabilizers(), 0);
        std::fill(obs.leakedLabels.begin(), obs.leakedLabels.end(), 0);
        for (size_t i = mark; i < sim.record().size(); ++i) {
            const auto &rec = sim.record()[i];
            if (rec.stab >= 0) {
                flips[rec.stab] = rec.flip ? 1 : 0;
                if (!rec.lrcData)
                    obs.leakedLabels[rec.stab] =
                        rec.leakedLabel ? 1 : 0;
            }
        }
        for (int s = 0; s < code.numStabilizers(); ++s)
            obs.events[s] = r == 0 ? 0 : (flips[s] ^ prev[s]);
        prev = flips;

        std::fill(obs.hadLrc.begin(), obs.hadLrc.end(), 0);
        for (const auto &pair : lrcs)
            obs.hadLrc[pair.data] = 1;
        obs.round = r;
        lrcs = policy.nextRound(obs);

        if (r >= storm_round && cleared_at < 0 &&
            sim.countLeaked(0, code.numData()) == 0) {
            cleared_at = r - storm_round;
        }
    }
    return cleared_at;
}

TEST(Storm, SingleLeakClearedWithinFewRounds)
{
    RotatedSurfaceCode code(5);
    // A bulk data qubit; visibility per round is 15/16, so with 20
    // rounds of margin the controller must catch it.
    const int q = code.dataId(2, 2);
    const int cleared =
        stormRecoveryRounds(5, {q}, 5, 30, false, 1234);
    ASSERT_GE(cleared, 0) << "leakage never removed";
    EXPECT_LE(cleared, 8);
}

TEST(Storm, ClusterClearedDespiteSwapConflicts)
{
    RotatedSurfaceCode code(7);
    std::vector<int> burst = {
        code.dataId(2, 2), code.dataId(2, 3), code.dataId(3, 2),
        code.dataId(3, 3)};
    const int cleared =
        stormRecoveryRounds(7, burst, 6, 40, false, 99);
    ASSERT_GE(cleared, 0);
    // Four adjacent leaks contend for shared parity qubits; the DLI
    // plus PUTT cooldown still clears the cluster within ~10 rounds.
    EXPECT_LE(cleared, 12);
}

TEST(Storm, MultiLevelReadoutClearsAtLeastAsFast)
{
    RotatedSurfaceCode code(5);
    std::vector<int> burst = {code.dataId(1, 1), code.dataId(3, 3)};
    int base_total = 0;
    int m_total = 0;
    for (uint64_t seed = 0; seed < 10; ++seed) {
        base_total +=
            stormRecoveryRounds(5, burst, 4, 40, false, 500 + seed);
        m_total +=
            stormRecoveryRounds(5, burst, 4, 40, true, 500 + seed);
    }
    EXPECT_LE(m_total, base_total + 6);
}

TEST(Storm, CornerQubitLeakIsClearable)
{
    // Corner data qubits have only two parity neighbours — the hard
    // case for the >=2-flips rule (both must fire).
    RotatedSurfaceCode code(5);
    const int corner = code.dataId(0, 0);
    const int cleared =
        stormRecoveryRounds(5, {corner}, 5, 60, false, 77);
    ASSERT_GE(cleared, 0) << "corner leakage never removed";
}

TEST(BoundaryLrc, WeightTwoStabilizerOpAccounting)
{
    // An LRC on a weight-2 boundary stabilizer: 2 stabilizer CNOTs + 5
    // LRC CNOTs = 7 two-qubit ops touching its ancilla.
    RotatedSurfaceCode code(5);
    int stab_w2 = -1;
    for (const auto &stab : code.stabilizers()) {
        if (stab.support.size() == 2)
            stab_w2 = stab.index;
    }
    ASSERT_GE(stab_w2, 0);
    const int data = code.stabilizer(stab_w2).support.front();
    const int parity = code.stabilizer(stab_w2).ancilla;

    RoundSchedule round =
        buildRoundSchedule(code, 0, {{data, stab_w2}});
    int touching = 0;
    for (const auto &op : round.ops) {
        if (op.type == OpType::Cnot &&
            (op.q0 == parity || op.q1 == parity))
            ++touching;
    }
    EXPECT_EQ(touching, 7);
}

TEST(BoundaryLrc, LeakRemovedViaWeightTwoStabilizer)
{
    RotatedSurfaceCode code(3);
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    em.pTransport = 0.0;

    int stab_w2 = -1;
    for (const auto &stab : code.stabilizers()) {
        if (stab.support.size() == 2)
            stab_w2 = stab.index;
    }
    const int data = code.stabilizer(stab_w2).support.front();

    FrameSimulator sim(code.numQubits(), em, Rng(3));
    sim.setLeaked(data, true);
    RoundSchedule round =
        buildRoundSchedule(code, 0, {{data, stab_w2}});
    sim.executeRange(round.ops.data(),
                     round.ops.data() + round.ops.size());
    EXPECT_FALSE(sim.leaked(data));
}

TEST(Stress, BlossomStormSizedInstanceFast)
{
    // A storm shot can put ~200 defects into the matcher; it must
    // finish in well under a second.
    const int n = 200;
    Rng rng(8);
    std::vector<MatchEdge> edges;
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n && j < i + 10; ++j) {
            edges.push_back({i, j, (int64_t)(1 + rng.randint(3000))});
            edges.push_back({n + i, n + j, 0});
        }
        edges.push_back({i, n + i, (int64_t)(1 + rng.randint(3000))});
    }
    const auto start = std::chrono::steady_clock::now();
    auto partner = minWeightPerfectMatching(2 * n, edges);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    for (int v = 0; v < 2 * n; ++v)
        ASSERT_NE(partner[v], -1);
    EXPECT_LT(elapsed.count(), 2000);
}

TEST(Stress, ExperimentWithHeavyLeakageTerminates)
{
    // 10x the paper's leakage rate: decoders see defect storms.
    RotatedSurfaceCode code(5);
    ExperimentConfig cfg;
    cfg.rounds = 15;
    cfg.shots = 60;
    cfg.seed = 606;
    cfg.em = ErrorModel::standard(1e-3);
    cfg.em.leakFraction = 1.0;   // leakage injection at p itself
    MemoryExperiment exp(code, cfg);
    for (PolicyKind kind :
         {PolicyKind::Never, PolicyKind::Always, PolicyKind::Eraser}) {
        auto result = exp.run(kind);
        EXPECT_EQ(result.shots, cfg.shots);
    }
}

} // namespace
} // namespace qec
