/**
 * @file
 * Tests for the base utilities: RNG statistics/determinism and the
 * deterministic parallel-for helper.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "base/parallel.h"
#include "base/rng.h"

namespace qec
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next()) ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, ShotStreamsIndependent)
{
    Rng a = Rng::forShot(9, 0);
    Rng b = Rng::forShot(9, 1);
    EXPECT_NE(a.next(), b.next());

    Rng c = Rng::forShot(9, 1);
    c.next();
    EXPECT_EQ(b.next(), c.next());
}

TEST(Rng, UniformRange)
{
    Rng rng(3);
    double lo = 1.0;
    double hi = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        lo = std::min(lo, u);
        hi = std::max(hi, u);
    }
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(4);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(5);
    const double p = 0.01;
    const int n = 1000000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(p) ? 1 : 0;
    // 5 sigma band around the binomial expectation.
    const double sigma = std::sqrt(n * p * (1 - p));
    EXPECT_NEAR(hits, n * p, 5 * sigma);
}

TEST(Rng, BernoulliDegenerate)
{
    Rng rng(6);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
}

TEST(Rng, RandintCoversRange)
{
    Rng rng(7);
    std::set<uint32_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const uint32_t v = rng.randint(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RandintUniform)
{
    Rng rng(8);
    std::vector<int> counts(15, 0);
    const int n = 150000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.randint(15)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 15, 5 * std::sqrt(n / 15.0));
}

TEST(Rng, BitBalanced)
{
    Rng rng(9);
    int ones = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ones += rng.bit() ? 1 : 0;
    EXPECT_NEAR(ones, n / 2, 5 * std::sqrt(n / 4.0));
}

TEST(Parallel, VisitsEveryIndexOnce)
{
    const uint64_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    parallelFor(n, [&](uint64_t i) { hits[i].fetch_add(1); });
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1);
}

TEST(Parallel, SingleThreadFallback)
{
    std::vector<int> order;
    parallelFor(5, [&](uint64_t i) { order.push_back((int)i); }, 1);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Parallel, ZeroItems)
{
    bool called = false;
    parallelFor(0, [&](uint64_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(Parallel, DefaultThreadCountPositive)
{
    EXPECT_GE(defaultThreadCount(), 1u);
}

TEST(WorkerPool, ReusesThreadsAcrossRegions)
{
    WorkerPool pool(2);
    EXPECT_EQ(pool.workers(), 2u);
    for (int region = 0; region < 50; ++region) {
        std::vector<std::atomic<int>> hits(64);
        pool.run(64, [&](unsigned, uint64_t i) { hits[i].fetch_add(1); });
        for (auto &h : hits)
            ASSERT_EQ(h.load(), 1);
    }
    const WorkerPool::Stats st = pool.stats();
    EXPECT_EQ(st.regions, 50u);
    EXPECT_EQ(st.tasks, 50u * 64u);
}

TEST(WorkerPool, WorkerIndicesAreWithinBounds)
{
    WorkerPool pool(4);
    std::atomic<bool> bad{false};
    pool.run(1000, [&](unsigned worker, uint64_t) {
        if (worker >= 4)
            bad.store(true);
    });
    EXPECT_FALSE(bad.load());
    // A capped region must not hand out indices beyond the cap.
    pool.run(
        1000,
        [&](unsigned worker, uint64_t) {
            if (worker >= 2)
                bad.store(true);
        },
        2);
    EXPECT_FALSE(bad.load());
}

TEST(WorkerPool, EnsureWorkersGrowsButNeverShrinks)
{
    WorkerPool pool(1);
    pool.ensureWorkers(3);
    EXPECT_EQ(pool.workers(), 3u);
    pool.ensureWorkers(2);
    EXPECT_EQ(pool.workers(), 3u);
    std::atomic<uint64_t> sum{0};
    pool.run(100, [&](unsigned, uint64_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 100u * 99u / 2u);
}

TEST(WorkerPool, RethrowsFirstBodyException)
{
    WorkerPool pool(2);
    EXPECT_THROW(pool.run(16,
                          [&](unsigned, uint64_t i) {
                              if (i == 7)
                                  throw std::runtime_error("boom");
                          }),
                 std::runtime_error);
    // The pool survives a throwing region.
    std::atomic<int> ran{0};
    pool.run(8, [&](unsigned, uint64_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
}

TEST(WorkerPool, NestedRunExecutesInline)
{
    WorkerPool pool(2);
    std::atomic<int> inner_total{0};
    pool.run(4, [&](unsigned, uint64_t) {
        // Re-entering run() from a pool thread must not deadlock.
        pool.run(8, [&](unsigned worker, uint64_t) {
            EXPECT_EQ(worker, 0u);
            inner_total.fetch_add(1);
        });
    });
    EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(WorkerPool, StatsAccumulateBusyTime)
{
    WorkerPool pool(2);
    const WorkerPool::Stats before = pool.stats();
    pool.run(32, [&](unsigned, uint64_t) {
        volatile double x = 0;
        for (int k = 0; k < 10000; ++k)
            x += k;
        (void)x;
    });
    const WorkerPool::Stats after = pool.stats();
    EXPECT_EQ(after.regions, before.regions + 1);
    EXPECT_EQ(after.tasks, before.tasks + 32);
    EXPECT_GE(after.busySeconds, before.busySeconds);
}

TEST(WorkerPool, SharedPoolBacksParallelFor)
{
    WorkerPool &shared = sharedWorkerPool();
    const WorkerPool::Stats before = shared.stats();
    std::atomic<int> ran{0};
    parallelForWorkers(
        64, [&](unsigned, uint64_t) { ran.fetch_add(1); }, 2);
    EXPECT_EQ(ran.load(), 64);
    const WorkerPool::Stats after = shared.stats();
    EXPECT_GT(after.tasks, before.tasks);
}

} // namespace
} // namespace qec
