/**
 * @file
 * Closed-form leakage-model tests against the numbers quoted in the
 * paper (Sections 3.1, 4.1; Tables 1-2), plus a Monte-Carlo
 * cross-check of the transport asymmetry using the frame simulator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analytics/leakage_math.h"
#include "base/rng.h"
#include "code/builder.h"
#include "code/rotated_surface_code.h"
#include "sim/frame_simulator.h"

namespace qec
{
namespace
{

TEST(Analytics, Equation1MatchesPaper)
{
    // "we estimate this quantity to be about 10%".
    const double p = pDataGivenParityLeaked();
    EXPECT_NEAR(p, 0.10, 0.005);
    EXPECT_GT(p, 0.1);   // transport term alone is 0.1
}

TEST(Analytics, Equation2MatchesPaper)
{
    // "which we estimated to be about 34%".
    const double p = pParityGivenDataLeaked();
    EXPECT_NEAR(p, 0.34, 0.01);
}

TEST(Analytics, TransportAsymmetryIsAboutThreeX)
{
    // Section 3.1.3: P(L_parity | L_data) is about 3x larger.
    const double ratio =
        pParityGivenDataLeaked() / pDataGivenParityLeaked();
    EXPECT_GT(ratio, 2.5);
    EXPECT_LT(ratio, 4.0);
}

TEST(Analytics, Table2InvisibleProbabilities)
{
    EXPECT_NEAR(pInvisible(0) * 100.0, 93.8, 0.05);
    EXPECT_NEAR(pInvisible(1) * 100.0, 5.90, 0.05);
    EXPECT_NEAR(pInvisible(2) * 100.0, 0.36, 0.05);
    EXPECT_NEAR(pInvisible(3) * 100.0, 0.02, 0.01);
}

TEST(Analytics, InvisibilityDistributionNormalizes)
{
    double total = 0.0;
    for (int r = 0; r < 50; ++r)
        total += pInvisible(r);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Analytics, ExpectedInvisibleRoundsTiny)
{
    // 99%+ of leakage is visible within two rounds (Section 4.1.1).
    EXPECT_LT(expectedInvisibleRounds(), 0.1);
    EXPECT_GT(pInvisible(0) + pInvisible(1) + pInvisible(2), 0.99);
}

TEST(Analytics, CustomConstantsPropagate)
{
    LeakageConstants heavy;
    heavy.pTransport = 0.3;
    EXPECT_GT(pDataGivenParityLeaked(heavy),
              pDataGivenParityLeaked());
    EXPECT_GT(pParityGivenDataLeaked(heavy),
              pParityGivenDataLeaked());
}

TEST(Analytics, MonteCarloParityLeakMatchesEquation2)
{
    // Cross-check Eq. (2)'s transport component with the simulator: a
    // leaked bulk data qubit undergoing an LRC leaks its parity qubit
    // at a rate near the closed-form transport term.
    RotatedSurfaceCode code(3);
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    em.pTransport = 0.1;

    const int q = code.dataId(1, 1);
    const int stab = code.stabilizersOfData(q).front();
    const int parity = code.stabilizer(stab).ancilla;

    int leaked = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        FrameSimulator sim(code.numQubits(), em, Rng(42 + i));
        sim.setLeaked(q, true);
        RoundSchedule round = buildRoundSchedule(code, 0, {{q, stab}});
        sim.executeRange(round.ops.data(),
                         round.ops.data() + round.ops.size());
        leaked += sim.leaked(parity) ? 1 : 0;
    }
    // Transport term of Eq. (2): 1 - 0.9^4 = 0.3439 (operation-induced
    // leakage is disabled here).
    const double expected = 1.0 - std::pow(0.9, 4);
    EXPECT_NEAR((double)leaked / n, expected, 0.02);
}

TEST(Analytics, MonteCarloInvisibilityFirstRound)
{
    // A leaked bulk data qubit disturbs at least one of its four
    // checks in a round with probability ~15/16 (Section 4.1.1).
    RotatedSurfaceCode code(5);
    ErrorModel em = ErrorModel::noiseless();
    em.leakageEnabled = true;
    em.pTransport = 0.0;

    const int q = code.dataId(2, 2);
    const auto &stabs = code.stabilizersOfData(q);
    int visible = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        FrameSimulator sim(code.numQubits(), em, Rng(99 + i));
        sim.setLeaked(q, true);
        RoundSchedule round = buildRoundSchedule(code, 0, {});
        sim.executeRange(round.ops.data(),
                         round.ops.data() + round.ops.size());
        bool flipped = false;
        for (const auto &rec : sim.record()) {
            for (int s : stabs)
                flipped |= (rec.stab == s && rec.flip);
        }
        visible += flipped ? 1 : 0;
    }
    EXPECT_NEAR((double)visible / n, 15.0 / 16.0, 0.02);
}

} // namespace
} // namespace qec
