/**
 * @file
 * IR static-analyzer tests: every shipped family/basis/protocol
 * combination analyzes with zero Error diagnostics, each hand-seeded
 * malformed program triggers exactly its one specific Error, the
 * dead-gate pass produces the machine-readable removable list, the
 * tail templates pin the engine's hardcoded executeLrcTail expansion,
 * and the checked compilers / sweep build cache refuse Error-severity
 * programs recoverably (Status, not panic).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "code/builder.h"
#include "code/ir_analysis.h"
#include "exp/sweep_exec.h"

namespace qec
{
namespace
{

int
errorsFromPass(const IrAnalysisReport &report, const char *pass)
{
    int n = 0;
    for (const IrDiagnostic &d : report.diagnostics)
        if (d.severity == IrSeverity::Error &&
            std::string(d.pass) == pass)
            ++n;
    return n;
}

std::string
errorText(const IrAnalysisReport &report)
{
    std::string out;
    for (const IrDiagnostic &d : report.diagnostics)
        if (d.severity == IrSeverity::Error)
            out += d.toString() + "\n";
    return out;
}

// ------------------------------------------------- shipped programs

TEST(IrAnalysis, AllShippedProgramsAnalyzeErrorFree)
{
    for (int d : {3, 5}) {
        RotatedSurfaceCode code(d);
        for (Basis basis : {Basis::Z, Basis::X}) {
            for (IrTailKind tail :
                 {IrTailKind::SwapLrc, IrTailKind::Dqlr}) {
                const CircuitProgram prog =
                    CircuitCompiler::surfaceMemory(code, 3 * d,
                                                   basis, tail);
                const IrAnalysisReport report =
                    IrAnalyzer::analyze(prog);
                EXPECT_EQ(report.errorCount(), 0)
                    << "surface d=" << d << ": "
                    << errorText(report);
                // Shipped programs also carry no dead gates.
                EXPECT_TRUE(report.removableInstructions.empty());
                EXPECT_TRUE(IrAnalyzer::verify(prog).isOk());
            }
        }
    }
    for (int d : {3, 5}) {
        const CircuitProgram prog =
            CircuitCompiler::repetitionMemory(d, 3 * d);
        const IrAnalysisReport report = IrAnalyzer::analyze(prog);
        EXPECT_EQ(report.errorCount(), 0)
            << "repetition d=" << d << ": " << errorText(report);
        EXPECT_TRUE(report.removableInstructions.empty());
        EXPECT_TRUE(IrAnalyzer::verify(prog).isOk());
    }
}

TEST(IrAnalysis, AnalysisHoldsUnderEveryShippedErrorModel)
{
    RotatedSurfaceCode code(3);
    const CircuitProgram prog = CircuitCompiler::surfaceMemory(
        code, 9, Basis::Z, IrTailKind::SwapLrc);
    for (const ErrorModel &em :
         {ErrorModel::standard(1e-3), ErrorModel::standard(1e-4),
          ErrorModel::withoutLeakage(1e-3),
          ErrorModel::noiseless()}) {
        EXPECT_EQ(IrAnalyzer::analyze(prog, em).errorCount(), 0);
    }
}

// ------------------------------------------- seeded malformed programs
// Each seeds exactly one defect and must see exactly one Error, from
// the expected pass.

TEST(IrAnalysis, OrphanReadoutIsDetected)
{
    RotatedSurfaceCode code(3);
    CircuitProgram prog = CircuitCompiler::surfaceMemory(
        code, 9, Basis::Z, IrTailKind::SwapLrc);
    // Mark one column-less stabilizer (an X check in a Z-memory
    // program) round-0 deterministic: its readout becomes an orphan
    // the detector map cannot consume.
    int victim = -1;
    for (int s = 0; s < prog.numStabs; ++s)
        if (prog.detectors.stabColumn[s] < 0) {
            victim = s;
            break;
        }
    ASSERT_GE(victim, 0);
    prog.detR0[victim] = 1;
    ASSERT_TRUE(prog.validate().isOk());

    const IrAnalysisReport report = IrAnalyzer::analyze(prog);
    EXPECT_EQ(report.errorCount(), 1) << errorText(report);
    EXPECT_EQ(errorsFromPass(report, "detector-coverage"), 1);
}

TEST(IrAnalysis, DeadGateIsDetectedAndListedRemovable)
{
    // A repetition program widened by one idle qubit that nothing
    // measures or couples: a gate on it can never reach a readout.
    CircuitProgram prog = CircuitCompiler::repetitionMemory(3, 6);
    const int idle = prog.numQubits;
    ++prog.numQubits;
    const size_t at = prog.bodyBegin + 1;
    prog.instrs.insert(prog.instrs.begin() + (long)at,
                       {IrOpcode::Gate, (int32_t)prog.pool.size(),
                        -1});
    prog.pool.push_back(makeOp(OpType::H, idle));
    ++prog.bodyEnd;
    ASSERT_TRUE(prog.validate().isOk());

    const IrAnalysisReport report = IrAnalyzer::analyze(prog);
    EXPECT_EQ(report.errorCount(), 0) << errorText(report);
    EXPECT_EQ(report.warningCount(), 1);
    ASSERT_EQ(report.removableInstructions.size(), 1u);
    EXPECT_EQ(report.removableInstructions[0], (int32_t)at);
    EXPECT_EQ(report.diagnostics.front().pass,
              std::string("qubit-liveness"));
}

TEST(IrAnalysis, StreamDesyncTailIsDetected)
{
    RotatedSurfaceCode code(3);
    CircuitProgram prog = CircuitCompiler::surfaceMemory(
        code, 9, Basis::Z, IrTailKind::SwapLrc);
    // DataNoise is outside the single-block replay repertoire: its
    // draws would not stay confined to the branch's 64-lane block.
    prog.tailTemplates[0].ops.push_back(
        makeOp(OpType::DataNoise, kTailDataQubit));
    ASSERT_TRUE(prog.validate().isOk());

    const IrAnalysisReport report = IrAnalyzer::analyze(prog);
    EXPECT_EQ(report.errorCount(), 1) << errorText(report);
    EXPECT_EQ(errorsFromPass(report, "stream-sync"), 1);
}

TEST(IrAnalysis, DuplicateSlotIdIsDetected)
{
    RotatedSurfaceCode code(3);
    CircuitProgram prog = CircuitCompiler::surfaceMemory(
        code, 9, Basis::Z, IrTailKind::SwapLrc);
    // A second slot with the already-used id 0. (validate() rejects
    // this too; the analyzer must diagnose it independently.)
    prog.instrs.insert(prog.instrs.begin() + (long)prog.bodyEnd,
                       {IrOpcode::LrcSlot, 0, -1});
    ++prog.bodyEnd;

    const IrAnalysisReport report = IrAnalyzer::analyze(prog);
    EXPECT_EQ(report.errorCount(), 1) << errorText(report);
    EXPECT_EQ(errorsFromPass(report, "lrc-legality"), 1);
    EXPECT_FALSE(prog.validate().isOk());
}

TEST(IrAnalysis, UnreachableObservableIsDetected)
{
    CircuitProgram prog = CircuitCompiler::repetitionMemory(3, 6);
    // Drop the final readout of the observable's data qubit 0.
    const int obs = prog.detectors.observable.front();
    for (size_t i = prog.bodyEnd + 1; i < prog.instrs.size(); ++i) {
        if (prog.pool[prog.instrs[i].a].q0 == obs) {
            prog.instrs.erase(prog.instrs.begin() + (long)i);
            break;
        }
    }
    ASSERT_TRUE(prog.validate().isOk());

    const IrAnalysisReport report = IrAnalyzer::analyze(prog);
    EXPECT_EQ(report.errorCount(), 1) << errorText(report);
    EXPECT_EQ(errorsFromPass(report, "observable-reachability"), 1);
    // The missing readout also leaves a detector column's final row
    // incomplete — flagged, but as a Warning.
    EXPECT_GE(report.warningCount(), 1);
}

// ------------------------------------------------ more pass coverage

TEST(IrAnalysis, MaskingMismatchIsDetected)
{
    RotatedSurfaceCode code(3);
    CircuitProgram prog = CircuitCompiler::surfaceMemory(
        code, 9, Basis::Z, IrTailKind::Dqlr);
    prog.maskReadoutOnLrc = true; // DQLR is additive: illegal.
    const IrAnalysisReport report = IrAnalyzer::analyze(prog);
    EXPECT_GE(errorsFromPass(report, "lrc-legality"), 1)
        << errorText(report);
}

TEST(IrAnalysis, WrongBasisFinalsAreDetected)
{
    RotatedSurfaceCode code(3);
    CircuitProgram prog = CircuitCompiler::surfaceMemory(
        code, 9, Basis::Z, IrTailKind::SwapLrc);
    // Flip every final readout into the X basis: memory-Z cannot be
    // reconstructed from them.
    for (size_t i = prog.bodyEnd + 1; i < prog.instrs.size(); ++i) {
        Op &op = prog.pool[prog.instrs[i].a];
        if (op.type == OpType::Measure)
            op.type = OpType::MeasureX;
    }
    const IrAnalysisReport report = IrAnalyzer::analyze(prog);
    EXPECT_EQ(errorsFromPass(report, "observable-reachability"),
              (int)prog.detectors.observable.size());
}

TEST(IrAnalysis, StreamTableMatchesTheErrorModel)
{
    RotatedSurfaceCode code(3);
    const CircuitProgram prog = CircuitCompiler::surfaceMemory(
        code, 9, Basis::Z, IrTailKind::SwapLrc);
    const ErrorModel em = ErrorModel::standard(1e-3);
    const IrAnalysisReport report = IrAnalyzer::analyze(prog, em);
    ASSERT_FALSE(report.streams.empty());

    // The depolarizing stream exists, is drawn by every op class, is
    // pre-bound by the engine, and is also drawn inside tails.
    const IrStreamUsage *base = nullptr;
    for (const IrStreamUsage &row : report.streams)
        if (row.probability == em.p)
            base = &row;
    ASSERT_NE(base, nullptr);
    EXPECT_TRUE(base->boundByEngine);
    EXPECT_TRUE(base->usedByTail);
    EXPECT_GT(base->sitesPerRound, 0);
    // One unconditional p-draw per final transversal readout.
    EXPECT_EQ(base->finalSites, prog.numData);

    // Per-round unconditional p-sites: every body op draws once
    // (RoundStart excepted), and each Readout adds measure + reset.
    int expected = 0;
    for (size_t i = prog.bodyBegin; i < prog.bodyEnd; ++i) {
        const IrInst &inst = prog.instrs[i];
        if (inst.op == IrOpcode::Gate)
            expected += prog.pool[inst.a].type != OpType::RoundStart;
        else if (inst.op == IrOpcode::Readout)
            expected += 2;
    }
    EXPECT_EQ(base->sitesPerRound, expected);

    // Leakage streams. Under the standard model leak injection and
    // seepage share one probability (both 0.1p), so a single row
    // carries injection's unconditional draws and seepage's
    // state-conditional ones. Readout-discrimination (10p) is the
    // purely conditional stream: no unconditional draw sites.
    for (const IrStreamUsage &row : report.streams) {
        if (row.probability == em.leakInjectProb()) {
            EXPECT_GT(row.sitesPerRound, 0);
            EXPECT_GT(row.conditionalSitesPerRound, 0);
        }
        if (row.probability == em.multiLevelMissProb()) {
            EXPECT_EQ(row.sitesPerRound, 0);
            EXPECT_GT(row.conditionalSitesPerRound, 0);
        }
    }

    // Noiseless model: no streams at all.
    EXPECT_TRUE(IrAnalyzer::analyze(prog, ErrorModel::noiseless())
                    .streams.empty());
}

// -------------------------------------------------- tail templates

TEST(IrAnalysis, TailTemplatesPinTheEngineExpansion)
{
    constexpr int D = kTailDataQubit, P = kTailParityQubit;
    RotatedSurfaceCode code(3);

    // executeLrcTail's swap-LRC expansion, op for op (the ERASER+M
    // squash suffix included).
    const CircuitProgram swap = CircuitCompiler::surfaceMemory(
        code, 3, Basis::Z, IrTailKind::SwapLrc);
    ASSERT_EQ(swap.tailTemplates.size(), 1u);
    const std::vector<Op> &ops = swap.tailTemplates[0].ops;
    ASSERT_EQ(ops.size(), 8u);
    const std::tuple<OpType, int, int> expected[8] = {
        {OpType::Cnot, D, P},    {OpType::Cnot, P, D},
        {OpType::Cnot, D, P},    {OpType::Measure, D, -1},
        {OpType::Reset, D, -1},  {OpType::Cnot, P, D},
        {OpType::Cnot, D, P},    {OpType::Reset, P, -1},
    };
    for (size_t k = 0; k < 8; ++k) {
        EXPECT_EQ(ops[k].type, std::get<0>(expected[k])) << k;
        EXPECT_EQ(ops[k].q0, std::get<1>(expected[k])) << k;
        EXPECT_EQ(ops[k].q1, std::get<2>(expected[k])) << k;
    }
    EXPECT_TRUE(ops[3].lrcData);

    const CircuitProgram dqlr = CircuitCompiler::surfaceMemory(
        code, 3, Basis::Z, IrTailKind::Dqlr);
    ASSERT_EQ(dqlr.tailTemplates.size(), 1u);
    const std::vector<Op> &dops = dqlr.tailTemplates[0].ops;
    ASSERT_EQ(dops.size(), 2u);
    EXPECT_EQ(dops[0].type, OpType::LeakageIswap);
    EXPECT_EQ(dops[0].q0, D);
    EXPECT_EQ(dops[0].q1, P);
    EXPECT_EQ(dops[1].type, OpType::Reset);
    EXPECT_EQ(dops[1].q0, P);

    const CircuitProgram rep = CircuitCompiler::repetitionMemory(3, 3);
    ASSERT_EQ(rep.tailTemplates.size(), 1u);
    EXPECT_EQ(rep.tailTemplates[0].kind, IrTailKind::SwapLrc);
}

TEST(IrAnalysis, MissingTailTemplateIsDetected)
{
    RotatedSurfaceCode code(3);
    CircuitProgram prog = CircuitCompiler::surfaceMemory(
        code, 9, Basis::Z, IrTailKind::SwapLrc);
    prog.tailTemplates.clear();
    const IrAnalysisReport report = IrAnalyzer::analyze(prog);
    EXPECT_GE(errorsFromPass(report, "lrc-legality"), 1);
}

// ------------------------------------------------- checked compile

TEST(IrAnalysis, CheckedCompilersAcceptShippedProtocols)
{
    RotatedSurfaceCode code(3);
    EXPECT_TRUE(CircuitCompiler::surfaceMemoryChecked(
                    code, 9, Basis::X, IrTailKind::Dqlr)
                    .ok());
    EXPECT_TRUE(CircuitCompiler::repetitionMemoryChecked(5, 15).ok());
}

TEST(IrAnalysis, CheckedCompilersRefuseBadArgsWithStatusNotPanic)
{
    RotatedSurfaceCode code(3);
    const StatusOr<CircuitProgram> bad_rounds =
        CircuitCompiler::surfaceMemoryChecked(code, 0, Basis::Z,
                                              IrTailKind::SwapLrc);
    EXPECT_FALSE(bad_rounds.ok());
    EXPECT_EQ(bad_rounds.status().code(),
              StatusCode::InvalidArgument);
    EXPECT_FALSE(
        CircuitCompiler::repetitionMemoryChecked(1, 5).ok());
}

TEST(IrAnalysis, SweepBuildCacheAnalyzesAndCachesPrograms)
{
    SweepPlan plan;
    plan.distances = {3};
    plan.ps = {1e-3};
    plan.rounds = {SweepRounds::exactly(3)};
    plan.policies = {PolicyKind::Never};
    plan.base.decode = false; // program cache only; no decoder build
    const std::vector<SweepPoint> points = plan.points();
    ASSERT_FALSE(points.empty());

    SweepBuildCache cache;
    SweepSummary summary;
    const StatusOr<SweepBuildCache::Components> first =
        cache.build(points[0], DecoderOptions{}, summary);
    ASSERT_TRUE(first.ok()) << first.status().toString();
    ASSERT_NE(first.value().program, nullptr);

    // Same key: the analyzed program is reused, not recompiled.
    const StatusOr<SweepBuildCache::Components> second =
        cache.build(points[0], DecoderOptions{}, summary);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first.value().program.get(),
              second.value().program.get());
}

// ------------------------------------------------------- formatting

TEST(IrAnalysis, ListingAndDiagnosticsFormat)
{
    const CircuitProgram prog = CircuitCompiler::repetitionMemory(3, 3);
    const std::string listing = formatProgramListing(prog);
    EXPECT_NE(listing.find("repetition_memory"), std::string::npos);
    EXPECT_NE(listing.find("LrcSlot id=0"), std::string::npos);
    EXPECT_NE(listing.find("tail swap-lrc"), std::string::npos);

    IrDiagnostic d;
    d.severity = IrSeverity::Error;
    d.pass = "detector-coverage";
    d.instr = 12;
    d.round = 0;
    d.message = "boom";
    EXPECT_EQ(d.toString(), "error[detector-coverage] @12 r0: boom");

    const IrAnalysisReport report = IrAnalyzer::analyze(prog);
    EXPECT_TRUE(report.toStatus().isOk());
    EXPECT_FALSE(report.toString().empty());
}

} // namespace
} // namespace qec
