/**
 * @file
 * Experiment-harness tests: metric identities, decision accounting,
 * LPR tracking shapes, and smoke runs of every policy/protocol combo.
 */

#include <gtest/gtest.h>

#include "exp/memory_experiment.h"

namespace qec
{
namespace
{

ExperimentConfig
smallConfig(int rounds, uint64_t shots)
{
    ExperimentConfig cfg;
    cfg.rounds = rounds;
    cfg.shots = shots;
    cfg.seed = 1234;
    cfg.em = ErrorModel::standard(1e-3);
    cfg.trackLpr = true;
    return cfg;
}

TEST(ExperimentResult, MetricFormulas)
{
    ExperimentResult r;
    r.shots = 1000;
    r.logicalErrors = 25;
    EXPECT_NEAR(r.ler(), 0.025, 1e-12);

    r.tp = 30;
    r.fp = 10;
    r.tn = 950;
    r.fn = 10;
    EXPECT_NEAR(r.speculationAccuracy(), 980.0 / 1000.0, 1e-12);
    EXPECT_NEAR(r.falsePositiveRate(), 10.0 / 960.0, 1e-12);
    EXPECT_NEAR(r.falseNegativeRate(), 10.0 / 40.0, 1e-12);

    r.lrcsScheduled = 240;
    r.roundsTotal = 120;
    EXPECT_NEAR(r.avgLrcsPerRound(), 2.0, 1e-12);
}

TEST(ExperimentResult, LerStringForZeroErrors)
{
    ExperimentResult r;
    r.shots = 500;
    r.logicalErrors = 0;
    EXPECT_EQ(r.lerString()[0], '<');
    r.logicalErrors = 5;
    EXPECT_EQ(r.lerString(), "1.000e-02");
}

TEST(Experiment, DecisionCountsPartitionAllQubitRounds)
{
    RotatedSurfaceCode code(3);
    auto cfg = smallConfig(6, 50);
    cfg.decode = false;
    MemoryExperiment exp(code, cfg);
    auto result = exp.run(PolicyKind::Eraser);
    EXPECT_EQ(result.tp + result.fp + result.tn + result.fn,
              cfg.shots * (uint64_t)cfg.rounds *
                  (uint64_t)code.numData());
    EXPECT_EQ(result.tp + result.fp, result.lrcsScheduled);
}

TEST(Experiment, AlwaysLrcRateMatchesTable4Formula)
{
    RotatedSurfaceCode code(5);
    auto cfg = smallConfig(20, 30);
    cfg.decode = false;
    MemoryExperiment exp(code, cfg);
    auto result = exp.run(PolicyKind::Always);
    EXPECT_NEAR(result.avgLrcsPerRound(),
                code.numStabilizers() / 2.0, 0.8);
}

TEST(Experiment, OptimalSpeculationIsPerfect)
{
    RotatedSurfaceCode code(3);
    auto cfg = smallConfig(8, 200);
    cfg.decode = false;
    MemoryExperiment exp(code, cfg);
    auto result = exp.run(PolicyKind::Optimal);
    // The oracle schedules exactly the leaked qubits; conflicts are
    // rare at d=3 rates, so accuracy is essentially 1.
    EXPECT_GT(result.speculationAccuracy(), 0.999);
    EXPECT_LT(result.falsePositiveRate(), 1e-4);
}

TEST(Experiment, LprTrackingHasRoundResolution)
{
    RotatedSurfaceCode code(3);
    auto cfg = smallConfig(10, 100);
    cfg.decode = false;
    MemoryExperiment exp(code, cfg);
    auto result = exp.run(PolicyKind::Never);
    ASSERT_EQ((int)result.lprDataSum.size(), cfg.rounds);
    // Without any LRCs, data leakage accumulates over rounds.
    EXPECT_GT(result.lprData(cfg.rounds - 1), result.lprData(0));
    for (int r = 0; r < cfg.rounds; ++r) {
        EXPECT_GE(result.lprTotal(r), 0.0);
        EXPECT_LE(result.lprTotal(r), 1.0);
    }
}

TEST(Experiment, LeakageDisabledMeansZeroLpr)
{
    RotatedSurfaceCode code(3);
    auto cfg = smallConfig(5, 50);
    cfg.em = ErrorModel::withoutLeakage(1e-3);
    cfg.decode = false;
    MemoryExperiment exp(code, cfg);
    auto result = exp.run(PolicyKind::Never);
    for (int r = 0; r < cfg.rounds; ++r)
        EXPECT_EQ(result.lprTotal(r), 0.0);
}

TEST(Experiment, EveryPolicyRunsWithDecoding)
{
    RotatedSurfaceCode code(3);
    auto cfg = smallConfig(4, 40);
    MemoryExperiment exp(code, cfg);
    for (PolicyKind kind :
         {PolicyKind::Never, PolicyKind::Always, PolicyKind::Eraser,
          PolicyKind::EraserM, PolicyKind::Optimal}) {
        auto result = exp.run(kind);
        EXPECT_EQ(result.shots, cfg.shots);
        EXPECT_LE(result.logicalErrors, result.shots);
    }
}

TEST(Experiment, DqlrProtocolRuns)
{
    RotatedSurfaceCode code(3);
    auto cfg = smallConfig(4, 40);
    cfg.protocol = RemovalProtocol::Dqlr;
    cfg.em.transport = TransportModel::Exchange;
    MemoryExperiment exp(code, cfg);
    for (PolicyKind kind : {PolicyKind::Always, PolicyKind::Eraser,
                            PolicyKind::EraserM, PolicyKind::Optimal}) {
        auto result = exp.run(kind);
        EXPECT_EQ(result.shots, cfg.shots);
    }
}

TEST(Experiment, DqlrBaselineSchedulesEveryQubitEveryRound)
{
    RotatedSurfaceCode code(3);
    auto cfg = smallConfig(6, 20);
    cfg.protocol = RemovalProtocol::Dqlr;
    cfg.decode = false;
    MemoryExperiment exp(code, cfg);
    auto result = exp.run(PolicyKind::Always);
    EXPECT_NEAR(result.avgLrcsPerRound(), code.numStabilizers(), 1e-9);
}

TEST(Experiment, DeterministicAcrossThreadCounts)
{
    RotatedSurfaceCode code(3);
    auto cfg = smallConfig(5, 60);
    cfg.threads = 1;
    MemoryExperiment exp(code, cfg);
    auto serial = exp.run(PolicyKind::Eraser);

    cfg.threads = 8;
    MemoryExperiment exp_mt(code, cfg);
    auto parallel = exp_mt.run(PolicyKind::Eraser);

    EXPECT_EQ(serial.logicalErrors, parallel.logicalErrors);
    EXPECT_EQ(serial.lrcsScheduled, parallel.lrcsScheduled);
    EXPECT_EQ(serial.tp, parallel.tp);
    EXPECT_EQ(serial.fn, parallel.fn);
}

TEST(Experiment, SeedChangesOutcomes)
{
    RotatedSurfaceCode code(3);
    auto cfg = smallConfig(8, 200);
    cfg.decode = false;
    MemoryExperiment a(code, cfg);
    cfg.seed = 999;
    MemoryExperiment b(code, cfg);

    // Compare the whole leakage-population trace: different seeds draw
    // different leakage patterns.
    auto ra = a.run(PolicyKind::Never);
    auto rb = b.run(PolicyKind::Never);
    double delta = 0.0;
    for (int r = 0; r < cfg.rounds; ++r)
        delta += std::abs(ra.lprDataSum[r] - rb.lprDataSum[r]);
    EXPECT_GT(delta, 0.0);
}

TEST(Experiment, MemoryXBasisWorks)
{
    RotatedSurfaceCode code(3);
    auto cfg = smallConfig(4, 40);
    cfg.basis = Basis::X;
    MemoryExperiment exp(code, cfg);
    auto result = exp.run(PolicyKind::Eraser);
    EXPECT_EQ(result.shots, cfg.shots);
}

TEST(Experiment, CustomPolicyFactory)
{
    RotatedSurfaceCode code(3);
    auto cfg = smallConfig(3, 20);
    cfg.decode = false;
    MemoryExperiment exp(code, cfg);
    auto factory = []() {
        return std::make_unique<NeverLrcPolicy>();
    };
    auto result = exp.run(factory, "custom");
    EXPECT_EQ(result.policy, "custom");
    EXPECT_EQ(result.lrcsScheduled, 0u);
}

} // namespace
} // namespace qec
