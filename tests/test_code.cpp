/**
 * @file
 * Lattice-level tests of the rotated surface code: qubit/stabilizer
 * counts, boundary structure, hook-safe CNOT layering, and logical
 * operator algebra — parameterized over code distances.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "code/rotated_surface_code.h"

namespace qec
{
namespace
{

class CodeSweep : public ::testing::TestWithParam<int>
{
  protected:
    RotatedSurfaceCode code_{GetParam()};
};

TEST_P(CodeSweep, QubitCounts)
{
    const int d = GetParam();
    EXPECT_EQ(code_.numData(), d * d);
    EXPECT_EQ(code_.numStabilizers(), d * d - 1);
    EXPECT_EQ(code_.numQubits(), 2 * d * d - 1);
    EXPECT_EQ((int)code_.stabilizers().size(), d * d - 1);
}

TEST_P(CodeSweep, BasisSplitIsEven)
{
    EXPECT_EQ(code_.numZStabilizers(), code_.numXStabilizers());
    EXPECT_EQ(code_.numZStabilizers() + code_.numXStabilizers(),
              code_.numStabilizers());
}

TEST_P(CodeSweep, StabilizerWeightsAreTwoOrFour)
{
    int weight2 = 0;
    for (const auto &stab : code_.stabilizers()) {
        EXPECT_TRUE(stab.support.size() == 2 ||
                    stab.support.size() == 4);
        weight2 += stab.support.size() == 2 ? 1 : 0;
    }
    // 2(d-1) boundary stabilizers.
    EXPECT_EQ(weight2, 2 * (GetParam() - 1));
}

TEST_P(CodeSweep, DataNeighborCounts)
{
    // Every data qubit touches 2, 3 or 4 stabilizers; corners touch 2.
    const int d = GetParam();
    for (int q = 0; q < code_.numData(); ++q) {
        const auto n = code_.stabilizersOfData(q).size();
        EXPECT_GE(n, 2u);
        EXPECT_LE(n, 4u);
    }
    EXPECT_EQ(code_.stabilizersOfData(code_.dataId(0, 0)).size(), 2u);
    EXPECT_EQ(code_.stabilizersOfData(code_.dataId(d - 1, d - 1)).size(),
              2u);
    // Bulk data qubits touch 4.
    EXPECT_EQ(code_.stabilizersOfData(code_.dataId(1, 1)).size(), 4u);
}

TEST_P(CodeSweep, EachDataNeighborsBothTypes)
{
    // Adjacency alternates X/Z: a data qubit has at least one
    // neighbour of each type.
    for (int q = 0; q < code_.numData(); ++q) {
        int x = 0;
        int z = 0;
        for (int s : code_.stabilizersOfData(q)) {
            (code_.stabilizer(s).type == StabType::X ? x : z) += 1;
        }
        EXPECT_GE(x, 1) << "data " << q;
        EXPECT_GE(z, 1) << "data " << q;
    }
}

TEST_P(CodeSweep, AncillaMappingRoundTrips)
{
    for (const auto &stab : code_.stabilizers()) {
        EXPECT_FALSE(code_.isData(stab.ancilla));
        EXPECT_EQ(code_.stabilizerOfAncilla(stab.ancilla), stab.index);
    }
}

TEST_P(CodeSweep, BasisIndexConsistent)
{
    for (size_t i = 0; i < code_.zStabilizers().size(); ++i) {
        const auto &stab = code_.stabilizer(code_.zStabilizers()[i]);
        EXPECT_EQ(stab.type, StabType::Z);
        EXPECT_EQ(stab.basisIndex, (int)i);
    }
    for (size_t i = 0; i < code_.xStabilizers().size(); ++i) {
        const auto &stab = code_.stabilizer(code_.xStabilizers()[i]);
        EXPECT_EQ(stab.type, StabType::X);
        EXPECT_EQ(stab.basisIndex, (int)i);
    }
}

TEST_P(CodeSweep, CnotLayersConflictFree)
{
    // Within each layer, every qubit participates in at most one CNOT.
    for (int layer = 0; layer < 4; ++layer) {
        std::set<int> busy;
        for (const auto &stab : code_.stabilizers()) {
            const int data = stab.dataInLayer[layer];
            if (data < 0)
                continue;
            EXPECT_TRUE(busy.insert(data).second)
                << "layer " << layer << " reuses data " << data;
            EXPECT_TRUE(busy.insert(stab.ancilla).second);
        }
    }
}

TEST_P(CodeSweep, LayersCoverSupport)
{
    for (const auto &stab : code_.stabilizers()) {
        std::set<int> from_layers;
        for (int q : stab.dataInLayer) {
            if (q >= 0)
                from_layers.insert(q);
        }
        std::set<int> support(stab.support.begin(),
                              stab.support.end());
        EXPECT_EQ(from_layers, support);
    }
}

TEST_P(CodeSweep, LogicalOperatorsHaveDistanceWeight)
{
    EXPECT_EQ((int)code_.logicalZSupport().size(), GetParam());
    EXPECT_EQ((int)code_.logicalXSupport().size(), GetParam());
}

TEST_P(CodeSweep, LogicalZCommutesWithAllXStabilizers)
{
    const auto &logical = code_.logicalZSupport();
    for (int s : code_.xStabilizers()) {
        const auto &support = code_.stabilizer(s).support;
        int overlap = 0;
        for (int q : support) {
            overlap += std::count(logical.begin(), logical.end(), q);
        }
        EXPECT_EQ(overlap % 2, 0) << "X stabilizer " << s;
    }
}

TEST_P(CodeSweep, LogicalXCommutesWithAllZStabilizers)
{
    const auto &logical = code_.logicalXSupport();
    for (int s : code_.zStabilizers()) {
        const auto &support = code_.stabilizer(s).support;
        int overlap = 0;
        for (int q : support) {
            overlap += std::count(logical.begin(), logical.end(), q);
        }
        EXPECT_EQ(overlap % 2, 0) << "Z stabilizer " << s;
    }
}

TEST_P(CodeSweep, LogicalsAnticommute)
{
    const auto &lz = code_.logicalZSupport();
    const auto &lx = code_.logicalXSupport();
    int overlap = 0;
    for (int q : lz)
        overlap += std::count(lx.begin(), lx.end(), q);
    EXPECT_EQ(overlap % 2, 1);
}

TEST_P(CodeSweep, BoundaryTypesFollowConvention)
{
    // Weight-2 stabilizers on the top/bottom rows are X type; on the
    // left/right columns Z type.
    for (const auto &stab : code_.stabilizers()) {
        if (stab.support.size() != 2)
            continue;
        if (stab.row < 0 || stab.row > GetParam() - 1) {
            EXPECT_EQ(stab.type, StabType::X);
        } else {
            EXPECT_EQ(stab.type, StabType::Z);
        }
    }
}

TEST_P(CodeSweep, ProtectingTypeHelpers)
{
    EXPECT_EQ(protectingStabType(Basis::Z), StabType::Z);
    EXPECT_EQ(protectingStabType(Basis::X), StabType::X);
    EXPECT_EQ(code_.numBasisStabilizers(Basis::Z),
              code_.numZStabilizers());
    EXPECT_EQ(&code_.basisStabilizers(Basis::X),
              &code_.xStabilizers());
    EXPECT_EQ(&code_.logicalSupport(Basis::Z),
              &code_.logicalZSupport());
}

INSTANTIATE_TEST_SUITE_P(Distances, CodeSweep,
                         ::testing::Values(3, 5, 7, 9, 11, 13));

TEST(Code, RejectsEvenDistance)
{
    EXPECT_DEATH({ RotatedSurfaceCode bad(4); }, "");
}

TEST(Code, RejectsTinyDistance)
{
    EXPECT_DEATH({ RotatedSurfaceCode bad(1); }, "");
}

TEST(Code, DataIdRoundTrip)
{
    RotatedSurfaceCode code(5);
    for (int r = 0; r < 5; ++r) {
        for (int c = 0; c < 5; ++c) {
            const int q = code.dataId(r, c);
            EXPECT_EQ(code.dataRow(q), r);
            EXPECT_EQ(code.dataCol(q), c);
            EXPECT_TRUE(code.isData(q));
        }
    }
}

} // namespace
} // namespace qec
