/**
 * @file
 * End-to-end decoder tests: every single fault must be corrected (the
 * circuit-level distance is >= 3), sampled double faults must be
 * corrected at d = 5, and the decoder must degrade gracefully.
 */

#include <gtest/gtest.h>

#include "base/rng.h"
#include "code/builder.h"
#include "code/rotated_surface_code.h"
#include "decoder/defects.h"
#include "decoder/detector_model.h"
#include "decoder/mwpm_decoder.h"
#include "sim/frame_simulator.h"

namespace qec
{
namespace
{

/** All Pauli-injection sites of a circuit: (op index, [(q, P)...]). */
struct Fault
{
    size_t opIndex;
    std::vector<std::pair<int, Pauli>> paulis;
};

std::vector<Fault>
enumerateFaults(const Circuit &circuit, bool all_two_qubit)
{
    std::vector<Fault> faults;
    for (size_t k = 0; k < circuit.ops.size(); ++k) {
        const Op &op = circuit.ops[k];
        switch (op.type) {
          case OpType::DataNoise:
          case OpType::H:
            for (Pauli p : {Pauli::X, Pauli::Y, Pauli::Z})
                faults.push_back({k, {{op.q0, p}}});
            break;
          case OpType::Reset:
            faults.push_back({k, {{op.q0, Pauli::X}}});
            break;
          case OpType::Cnot:
            if (all_two_qubit) {
                for (int pp = 1; pp < 16; ++pp) {
                    faults.push_back(
                        {k,
                         {{op.q0, (Pauli)(pp & 3)},
                          {op.q1, (Pauli)((pp >> 2) & 3)}}});
                }
            } else {
                for (Pauli p : {Pauli::X, Pauli::Y, Pauli::Z}) {
                    faults.push_back({k, {{op.q0, p}}});
                    faults.push_back({k, {{op.q1, p}}});
                }
            }
            break;
          default:
            break;
        }
    }
    return faults;
}

/** Run the circuit noiselessly with the given faults injected. */
ShotOutcome
runWithFaults(const RotatedSurfaceCode &code, const Circuit &circuit,
              const std::vector<Fault> &faults)
{
    FrameSimulator sim(code.numQubits(), ErrorModel::noiseless(),
                       Rng(3));
    sim.reset();
    const Op *ops = circuit.ops.data();
    size_t cursor = 0;
    // Faults must be sorted by opIndex.
    for (const auto &fault : faults) {
        sim.executeRange(ops + cursor, ops + fault.opIndex + 1);
        cursor = fault.opIndex + 1;
        for (const auto &[q, p] : fault.paulis)
            sim.injectPauli(q, p);
    }
    sim.executeRange(ops + cursor, ops + circuit.ops.size());
    return extractDefects(code, circuit.basis, circuit.numRounds,
                          sim.record());
}

class SingleFaultSweep
    : public ::testing::TestWithParam<std::tuple<int, Basis>>
{
};

TEST_P(SingleFaultSweep, EverySingleFaultCorrected)
{
    const auto [rounds, basis] = GetParam();
    RotatedSurfaceCode code(3);
    Circuit circuit = buildMemoryCircuit(code, rounds, basis);
    DetectorModel dem = buildDetectorModel(code, rounds, basis);
    MwpmDecoder decoder(dem, 1e-3);

    auto faults = enumerateFaults(circuit, true);
    int checked = 0;
    for (const auto &fault : faults) {
        ShotOutcome outcome = runWithFaults(code, circuit, {fault});
        const bool predicted = decoder.decode(outcome.defects);
        ASSERT_EQ(predicted, outcome.observableFlip)
            << "fault at op " << fault.opIndex;
        ++checked;
    }
    EXPECT_GT(checked, 400 * rounds);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SingleFaultSweep,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(Basis::Z, Basis::X)));

TEST(Decoder, SampledDoubleFaultsCorrectedAtD5)
{
    // Distance 5 tolerates any two faults. Sample pairs.
    RotatedSurfaceCode code(5);
    const int rounds = 3;
    Circuit circuit = buildMemoryCircuit(code, rounds, Basis::Z);
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    MwpmDecoder decoder(dem, 1e-3);

    auto faults = enumerateFaults(circuit, false);
    Rng rng(17);
    for (int trial = 0; trial < 400; ++trial) {
        size_t i = rng.randint((uint32_t)faults.size());
        size_t j = rng.randint((uint32_t)faults.size());
        if (faults[i].opIndex > faults[j].opIndex)
            std::swap(i, j);
        ShotOutcome outcome =
            runWithFaults(code, circuit, {faults[i], faults[j]});
        const bool predicted = decoder.decode(outcome.defects);
        ASSERT_EQ(predicted, outcome.observableFlip)
            << "faults " << i << ", " << j;
    }
}

TEST(Decoder, EmptyDefectsPredictNoFlip)
{
    RotatedSurfaceCode code(3);
    DetectorModel dem = buildDetectorModel(code, 2, Basis::Z);
    MwpmDecoder decoder(dem, 1e-3);
    EXPECT_FALSE(decoder.decode({}));
}

TEST(Decoder, GraphNonTrivial)
{
    RotatedSurfaceCode code(3);
    DetectorModel dem = buildDetectorModel(code, 3, Basis::Z);
    MwpmDecoder decoder(dem, 1e-3);
    EXPECT_EQ(decoder.numDetectors(), dem.numDetectors());
    EXPECT_GT(decoder.numGraphEdges(), 20u);
}

TEST(Decoder, LogicalChainIsDecodedAsFlip)
{
    // Inject a full logical X chain (top-to-bottom column of X);
    // defect-free but observable flipped: decoder cannot see it, so
    // the prediction must be "no flip" and the comparison records a
    // logical error. This guards the convention wiring.
    RotatedSurfaceCode code(3);
    const int rounds = 2;
    Circuit circuit = buildMemoryCircuit(code, rounds, Basis::Z);

    std::vector<Fault> faults;
    // Inject X on a full column (crossing between the X boundaries)
    // right after round 0's RoundStart marker.
    const size_t site = circuit.roundBegin[1];
    std::vector<std::pair<int, Pauli>> paulis;
    for (int r = 0; r < 3; ++r)
        paulis.push_back({code.dataId(r, 1), Pauli::X});
    faults.push_back({site, paulis});

    ShotOutcome outcome = runWithFaults(code, circuit, faults);
    EXPECT_TRUE(outcome.defects.empty());
    EXPECT_TRUE(outcome.observableFlip);

    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    MwpmDecoder decoder(dem, 1e-3);
    EXPECT_FALSE(decoder.decode(outcome.defects));
}

TEST(Decoder, NeighborLimitStillCorrectsSingles)
{
    RotatedSurfaceCode code(3);
    const int rounds = 2;
    Circuit circuit = buildMemoryCircuit(code, rounds, Basis::Z);
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    DecoderOptions opts;
    opts.neighborLimit = 2;   // aggressive truncation
    MwpmDecoder decoder(dem, 1e-3, opts);

    auto faults = enumerateFaults(circuit, false);
    for (size_t i = 0; i < faults.size(); i += 7) {
        ShotOutcome outcome = runWithFaults(code, circuit, {faults[i]});
        ASSERT_EQ(decoder.decode(outcome.defects),
                  outcome.observableFlip);
    }
}

} // namespace
} // namespace qec
