/**
 * @file
 * Union-Find decoder tests: every single fault corrected, sampled
 * double faults at d=5, agreement with MWPM on easy shots, and
 * statistical sanity (UF within a modest factor of MWPM's LER).
 */

#include <gtest/gtest.h>

#include "base/rng.h"
#include "code/builder.h"
#include "code/rotated_surface_code.h"
#include "decoder/defects.h"
#include "decoder/detector_model.h"
#include "decoder/mwpm_decoder.h"
#include "decoder/union_find_decoder.h"
#include "exp/memory_experiment.h"
#include "sim/frame_simulator.h"

namespace qec
{
namespace
{

ShotOutcome
injectAndRun(const RotatedSurfaceCode &code, const Circuit &circuit,
             size_t op_index, std::vector<std::pair<int, Pauli>> paulis)
{
    FrameSimulator sim(code.numQubits(), ErrorModel::noiseless(),
                       Rng(3));
    sim.reset();
    const Op *ops = circuit.ops.data();
    sim.executeRange(ops, ops + op_index + 1);
    for (const auto &[q, p] : paulis)
        sim.injectPauli(q, p);
    sim.executeRange(ops + op_index + 1, ops + circuit.ops.size());
    return extractDefects(code, circuit.basis, circuit.numRounds,
                          sim.record());
}

class UnionFindSweep
    : public ::testing::TestWithParam<std::tuple<int, Basis>>
{
};

TEST_P(UnionFindSweep, EverySingleFaultCorrected)
{
    const auto [rounds, basis] = GetParam();
    RotatedSurfaceCode code(3);
    Circuit circuit = buildMemoryCircuit(code, rounds, basis);
    DetectorModel dem = buildDetectorModel(code, rounds, basis);
    UnionFindDecoder decoder(dem, 1e-3);

    for (size_t k = 0; k < circuit.ops.size(); ++k) {
        const Op &op = circuit.ops[k];
        if (op.type != OpType::Cnot && op.type != OpType::DataNoise &&
            op.type != OpType::H && op.type != OpType::Reset)
            continue;
        for (Pauli p : {Pauli::X, Pauli::Y, Pauli::Z}) {
            auto outcome = injectAndRun(code, circuit, k, {{op.q0, p}});
            ASSERT_EQ(decoder.decode(outcome.defects),
                      outcome.observableFlip)
                << "op " << k << " pauli " << (int)p;
            if (op.type == OpType::Cnot) {
                auto outcome2 =
                    injectAndRun(code, circuit, k, {{op.q1, p}});
                ASSERT_EQ(decoder.decode(outcome2.defects),
                          outcome2.observableFlip);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UnionFindSweep,
    ::testing::Combine(::testing::Values(1, 3),
                       ::testing::Values(Basis::Z, Basis::X)));

TEST(UnionFind, EmptyDefectsNoFlip)
{
    RotatedSurfaceCode code(3);
    DetectorModel dem = buildDetectorModel(code, 2, Basis::Z);
    UnionFindDecoder decoder(dem, 1e-3);
    EXPECT_FALSE(decoder.decode({}));
}

TEST(UnionFind, SampledDoubleFaultsAtD5)
{
    RotatedSurfaceCode code(5);
    const int rounds = 3;
    Circuit circuit = buildMemoryCircuit(code, rounds, Basis::Z);
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    UnionFindDecoder decoder(dem, 1e-3);

    // Collect Pauli-capable ops.
    std::vector<size_t> sites;
    for (size_t k = 0; k < circuit.ops.size(); ++k) {
        const OpType t = circuit.ops[k].type;
        if (t == OpType::Cnot || t == OpType::DataNoise)
            sites.push_back(k);
    }
    Rng rng(19);
    int failures = 0;
    const int trials = 300;
    for (int trial = 0; trial < trials; ++trial) {
        size_t a = sites[rng.randint((uint32_t)sites.size())];
        size_t b = sites[rng.randint((uint32_t)sites.size())];
        if (a > b)
            std::swap(a, b);
        const Pauli pa = (Pauli)(1 + rng.randint(3));
        const Pauli pb = (Pauli)(1 + rng.randint(3));

        FrameSimulator sim(code.numQubits(), ErrorModel::noiseless(),
                           Rng(100 + trial));
        sim.reset();
        const Op *ops = circuit.ops.data();
        sim.executeRange(ops, ops + a + 1);
        sim.injectPauli(circuit.ops[a].q0, pa);
        sim.executeRange(ops + a + 1, ops + b + 1);
        sim.injectPauli(circuit.ops[b].q0, pb);
        sim.executeRange(ops + b + 1, ops + circuit.ops.size());
        auto outcome = extractDefects(code, Basis::Z, rounds,
                                      sim.record());
        failures += decoder.decode(outcome.defects) !=
                            outcome.observableFlip
                        ? 1
                        : 0;
    }
    // Union-Find is not guaranteed minimum weight, but two faults at
    // d=5 should essentially always be handled.
    EXPECT_LE(failures, trials / 50);
}

TEST(UnionFind, AgreesWithMwpmOnSparseShots)
{
    RotatedSurfaceCode code(5);
    const int rounds = 10;
    Circuit circuit = buildMemoryCircuit(code, rounds, Basis::Z);
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    MwpmDecoder mwpm(dem, 1e-3);
    UnionFindDecoder uf(dem, 1e-3);

    FrameSimulator sim(code.numQubits(), ErrorModel::standard(5e-4),
                       Rng(77));
    int agree = 0;
    const int shots = 300;
    for (int i = 0; i < shots; ++i) {
        sim.run(circuit);
        auto outcome =
            extractDefects(code, Basis::Z, rounds, sim.record());
        agree += (mwpm.decode(outcome.defects) ==
                  uf.decode(outcome.defects))
                     ? 1
                     : 0;
    }
    EXPECT_GT(agree, shots * 95 / 100);
}

TEST(UnionFind, LerWithinFactorOfMwpm)
{
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 15;
    cfg.shots = 3000;
    cfg.seed = 88;
    cfg.em = ErrorModel::withoutLeakage(2e-3);

    MemoryExperiment mwpm_exp(code, cfg);
    cfg.decoderKind = DecoderKind::UnionFind;
    MemoryExperiment uf_exp(code, cfg);

    auto mwpm = mwpm_exp.run(PolicyKind::Never);
    auto uf = uf_exp.run(PolicyKind::Never);
    EXPECT_GT(mwpm.logicalErrors, 10u);
    // UF trades accuracy for speed; it must stay within ~2.5x.
    EXPECT_LT(uf.ler(), mwpm.ler() * 2.5);
    EXPECT_GE(uf.ler(), mwpm.ler() * 0.6);
}

TEST(UnionFind, HandlesLeakageBurstShots)
{
    // Dense random defect sets (leaked qubits randomize checks) must
    // decode without crashing and with sane output.
    RotatedSurfaceCode code(5);
    const int rounds = 8;
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    UnionFindDecoder decoder(dem, 1e-3);
    Rng rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<int> defects;
        for (int det = 0; det < dem.numDetectors(); ++det) {
            if (rng.uniform() < 0.1)
                defects.push_back(det);
        }
        const bool prediction = decoder.decode(defects);
        (void)prediction;   // value is data-dependent; must terminate
    }
    SUCCEED();
}

} // namespace
} // namespace qec
