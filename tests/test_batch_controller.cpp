/**
 * @file
 * Word-parallel adaptive-controller differentials, in three tiers:
 *
 *  1. LSB unit level: speculateWords over random event/label/had-LRC
 *     bit planes reproduces the per-lane speculate byte-array scan for
 *     every threshold rule (including HalfNeighbors on weight-2
 *     boundary qubits) and for ERASER+M label marking, at every plane
 *     depth (uint64_t / WordVec<4> / WordVec<8>).
 *  2. Controller unit level: BatchEraserController's per-lane LRC
 *     schedule streams are bit-identical to dedicated per-lane
 *     EraserPolicy instances across rounds — LTT marks, PUTT
 *     cooldowns and DLI allocation order included — for both
 *     allocators and with the PUTT-cooldown ablation.
 *  3. Experiment level: the word-parallel engine path produces
 *     bit-identical results (verdicts, speculation quadrants, LRC
 *     counts, LPR traces) to the per-lane fallback path at W = 64,
 *     256 and 512 for every lane-parallelizable policy, including
 *     ragged word-groups.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "base/rng.h"
#include "core/policies.h"
#include "exp/memory_experiment.h"

namespace qec
{
namespace
{

/** Random lane-set plane with density p over the low `lanes` lanes. */
template <typename Lane>
Lane
randomPlane(Rng &rng, int lanes, double p)
{
    Lane out{};
    for (int l = 0; l < lanes; ++l) {
        if (rng.bernoulli(p))
            setLane(out, l);
    }
    return out;
}

/** Materialize lane l of a plane array as the byte array the per-lane
 *  reference consumes. */
template <typename Lane>
std::vector<uint8_t>
laneSlice(const std::vector<Lane> &planes, int lane)
{
    std::vector<uint8_t> out(planes.size(), 0);
    for (size_t i = 0; i < planes.size(); ++i)
        out[i] = testLane(planes[i], lane) ? 1 : 0;
    return out;
}

// ------------------------------------------------------ LSB unit tier

template <typename Lane>
void
speculateWordsMatchesPerLane(int d, LsbThreshold threshold,
                             bool multi_level, int lanes,
                             uint64_t seed)
{
    RotatedSurfaceCode code(d);
    LeakageSpeculationBlock lsb(code,
                                LsbOptions{threshold, multi_level});
    Rng rng(seed);
    const int n_stabs = code.numStabilizers();
    const int n_data = code.numData();

    std::vector<Lane> events(n_stabs, Lane{});
    std::vector<Lane> labels(n_stabs, Lane{});
    std::vector<Lane> had_lrc(n_data, Lane{});
    for (int s = 0; s < n_stabs; ++s) {
        events[s] = randomPlane<Lane>(rng, lanes, 0.2);
        labels[s] = randomPlane<Lane>(rng, lanes, 0.05);
    }
    for (int q = 0; q < n_data; ++q)
        had_lrc[q] = randomPlane<Lane>(rng, lanes, 0.1);

    // Pre-existing marks: speculation ORs into surviving state.
    BatchLeakageTrackingTable<Lane> batch(n_data);
    for (int q = 0; q < n_data; ++q)
        batch.mark(q, randomPlane<Lane>(rng, lanes, 0.03));

    std::vector<LeakageTrackingTable> ref;
    ref.reserve(lanes);
    for (int l = 0; l < lanes; ++l) {
        ref.emplace_back(n_data);
        for (int q = 0; q < n_data; ++q) {
            if (batch.marked(q, l))
                ref[l].mark(q);
        }
    }

    const Lane live = laneMaskOf<Lane>(lanes);
    lsb.speculateWords(events, labels, had_lrc, live, batch);

    for (int l = 0; l < lanes; ++l) {
        lsb.speculate(laneSlice(events, l), laneSlice(labels, l),
                      laneSlice(had_lrc, l), ref[l]);
        for (int q = 0; q < n_data; ++q) {
            ASSERT_EQ(batch.marked(q, l), ref[l].marked(q))
                << "lane " << l << " qubit " << q;
        }
    }
}

TEST(BatchLsb, WordSpeculationMatchesPerLaneAllThresholds)
{
    uint64_t seed = 100;
    for (LsbThreshold threshold :
         {LsbThreshold::AtLeastTwo, LsbThreshold::HalfNeighbors,
          LsbThreshold::AllNeighbors}) {
        for (bool multi_level : {false, true}) {
            speculateWordsMatchesPerLane<uint64_t>(
                5, threshold, multi_level, 64, ++seed);
            speculateWordsMatchesPerLane<uint64_t>(
                3, threshold, multi_level, 17, ++seed);
            speculateWordsMatchesPerLane<WordVec<4>>(
                5, threshold, multi_level, 256, ++seed);
            speculateWordsMatchesPerLane<WordVec<4>>(
                5, threshold, multi_level, 100, ++seed);
            speculateWordsMatchesPerLane<WordVec<8>>(
                3, threshold, multi_level, 512, ++seed);
        }
    }
}

TEST(BatchLsb, HalfNeighborsMarksWeightTwoBoundaryQubitOnOneFlip)
{
    // The paper-prose rule: ceil(n/2) flips suffice, so a single
    // flipped neighbor marks a weight-2 boundary data qubit — the
    // exact case where HalfNeighbors and AtLeastTwo diverge.
    RotatedSurfaceCode code(5);
    int boundary_q = -1;
    for (int q = 0; q < code.numData(); ++q) {
        if (code.stabilizersOfData(q).size() == 2) {
            boundary_q = q;
            break;
        }
    }
    ASSERT_GE(boundary_q, 0);
    const int stab = code.stabilizersOfData(boundary_q)[0];

    std::vector<uint64_t> events(code.numStabilizers(), 0);
    std::vector<uint64_t> labels(code.numStabilizers(), 0);
    std::vector<uint64_t> had_lrc(code.numData(), 0);
    events[stab] = ~uint64_t{0};
    const uint64_t live = ~uint64_t{0};

    LeakageSpeculationBlock half(
        code, LsbOptions{LsbThreshold::HalfNeighbors, false});
    BatchLeakageTrackingTable<uint64_t> half_ltt(code.numData());
    half.speculateWords(events, labels, had_lrc, live, half_ltt);
    EXPECT_EQ(half_ltt.word(boundary_q), ~uint64_t{0});

    LeakageSpeculationBlock two(
        code, LsbOptions{LsbThreshold::AtLeastTwo, false});
    BatchLeakageTrackingTable<uint64_t> two_ltt(code.numData());
    two.speculateWords(events, labels, had_lrc, live, two_ltt);
    EXPECT_EQ(two_ltt.word(boundary_q), 0u);

    // An LRC on the qubit in the same round suppresses the mark.
    had_lrc[boundary_q] = 0xFFFF0000FFFF0000ull;
    BatchLeakageTrackingTable<uint64_t> suppressed(code.numData());
    half.speculateWords(events, labels, had_lrc, live, suppressed);
    EXPECT_EQ(suppressed.word(boundary_q), ~0xFFFF0000FFFF0000ull);
}

// ----------------------------------------------- controller unit tier

template <typename Lane>
void
controllerMatchesPerLanePolicies(int d, const BatchPolicySpec &spec,
                                 int lanes, int rounds, uint64_t seed)
{
    RotatedSurfaceCode code(d);
    SwapLookupTable lookup(code);
    BatchEraserController<Lane> controller(code, lookup, spec);

    std::vector<std::unique_ptr<EraserPolicy>> ref;
    ref.reserve(lanes);
    for (int l = 0; l < lanes; ++l)
        ref.push_back(std::make_unique<EraserPolicy>(
            code, lookup, spec.multiLevel, spec.threshold,
            spec.allocator, spec.puttCooldown));

    const int n_stabs = code.numStabilizers();
    const int n_data = code.numData();
    const Lane live = laneMaskOf<Lane>(lanes);
    Rng rng(seed);

    std::vector<Lane> events(n_stabs, Lane{});
    std::vector<Lane> labels(n_stabs, Lane{});
    std::vector<Lane> had_lrc(n_data, Lane{});
    std::vector<std::vector<LrcPair>> lrcs(lanes);

    RoundObservation obs;
    obs.leakedLabels.assign(n_stabs, 0);

    for (int r = 0; r < rounds; ++r) {
        for (int s = 0; s < n_stabs; ++s) {
            events[s] = randomPlane<Lane>(rng, lanes, 0.15);
            labels[s] = spec.multiLevel
                ? randomPlane<Lane>(rng, lanes, 0.04) : Lane{};
        }
        // The round's executed LRCs are the previous decisions: that
        // is exactly the suppression plane the experiment layer hands
        // the controller.
        std::fill(had_lrc.begin(), had_lrc.end(), Lane{});
        for (int l = 0; l < lanes; ++l) {
            for (const auto &pair : lrcs[l])
                setLane(had_lrc[pair.data], l);
        }

        // Per-lane references first (lrcs still holds last round).
        std::vector<std::vector<LrcPair>> expected(lanes);
        for (int l = 0; l < lanes; ++l) {
            obs.round = r;
            obs.events = laneSlice(events, l);
            if (spec.multiLevel)
                obs.leakedLabels = laneSlice(labels, l);
            obs.hadLrc = laneSlice(had_lrc, l);
            expected[l] = ref[l]->nextRound(obs);
        }

        controller.nextRound(events, labels, had_lrc, live, lrcs);
        for (int l = 0; l < lanes; ++l) {
            ASSERT_EQ(lrcs[l], expected[l])
                << "round " << r << " lane " << l;
        }

        // The tracking tables must agree lane for lane, not just the
        // emitted schedules.
        for (int l = 0; l < lanes; ++l) {
            for (int q = 0; q < n_data; ++q) {
                ASSERT_EQ(controller.ltt().marked(q, l),
                          ref[l]->ltt().marked(q))
                    << "round " << r << " lane " << l << " q " << q;
            }
            for (int s = 0; s < n_stabs; ++s) {
                ASSERT_EQ(controller.putt().used(s, l),
                          ref[l]->putt().used(s))
                    << "round " << r << " lane " << l << " s " << s;
            }
        }
    }
}

TEST(BatchController, MatchesPerLaneEraserAcrossConfigs)
{
    uint64_t seed = 9000;
    for (bool multi_level : {false, true}) {
        for (LsbThreshold threshold :
             {LsbThreshold::AtLeastTwo,
              LsbThreshold::HalfNeighbors}) {
            BatchPolicySpec spec;
            spec.kind = BatchPolicyKind::Eraser;
            spec.multiLevel = multi_level;
            spec.threshold = threshold;
            controllerMatchesPerLanePolicies<uint64_t>(3, spec, 64,
                                                       8, ++seed);
            controllerMatchesPerLanePolicies<WordVec<4>>(3, spec, 256,
                                                         6, ++seed);
            controllerMatchesPerLanePolicies<WordVec<4>>(5, spec, 100,
                                                         5, ++seed);
            controllerMatchesPerLanePolicies<WordVec<8>>(3, spec, 512,
                                                         4, ++seed);
        }
    }
}

TEST(BatchController, MatchesPerLaneExactMatchingAndNoCooldown)
{
    BatchPolicySpec spec;
    spec.kind = BatchPolicyKind::Eraser;
    spec.allocator = DliAllocator::ExactMatching;
    controllerMatchesPerLanePolicies<uint64_t>(3, spec, 64, 6, 41);
    controllerMatchesPerLanePolicies<WordVec<4>>(3, spec, 130, 5, 42);

    spec.allocator = DliAllocator::LookupTable;
    spec.puttCooldown = false;
    controllerMatchesPerLanePolicies<uint64_t>(3, spec, 64, 6, 43);
    controllerMatchesPerLanePolicies<WordVec<8>>(3, spec, 320, 4, 44);
}

// -------------------------------------------------- experiment tier

/** Forced per-lane variants: identical policies whose batchSpec hides
 *  the lane-parallel form, driving the fallback path. */
struct PerLaneEraserPolicy : EraserPolicy
{
    using EraserPolicy::EraserPolicy;
    BatchPolicySpec batchSpec() const override { return {}; }
};
struct PerLaneAlwaysPolicy : AlwaysLrcPolicy
{
    using AlwaysLrcPolicy::AlwaysLrcPolicy;
    BatchPolicySpec batchSpec() const override { return {}; }
};
struct PerLaneNeverPolicy : NeverLrcPolicy
{
    BatchPolicySpec batchSpec() const override { return {}; }
};

void
expectResultsIdentical(const ExperimentResult &a,
                       const ExperimentResult &b, const char *what)
{
    EXPECT_EQ(a.logicalErrors, b.logicalErrors) << what;
    EXPECT_EQ(a.verdictFingerprint, b.verdictFingerprint) << what;
    EXPECT_EQ(a.tp, b.tp) << what;
    EXPECT_EQ(a.fp, b.fp) << what;
    EXPECT_EQ(a.tn, b.tn) << what;
    EXPECT_EQ(a.fn, b.fn) << what;
    EXPECT_EQ(a.lrcsScheduled, b.lrcsScheduled) << what;
    EXPECT_EQ(a.zeroDefectShots, b.zeroDefectShots) << what;
    ASSERT_EQ(a.lprDataSum.size(), b.lprDataSum.size()) << what;
    for (size_t r = 0; r < a.lprDataSum.size(); ++r) {
        EXPECT_DOUBLE_EQ(a.lprDataSum[r], b.lprDataSum[r]) << what;
        EXPECT_DOUBLE_EQ(a.lprParitySum[r], b.lprParitySum[r]) << what;
    }
}

/**
 * The controller path and the per-lane fallback path must agree bit
 * for bit at every width. shots = 391 gives ragged tail groups at
 * every width (64: ...x6 + 7; 256: 256 + 135; 512: 391), so dead
 * ragged-tail lanes are exercised on both paths too.
 */
TEST(BatchControllerExperiment, WordParallelMatchesPerLaneAllWidths)
{
    RotatedSurfaceCode code(3);
    ExperimentConfig base;
    base.rounds = 5;
    base.shots = 391;
    base.seed = 20260726;
    base.em = ErrorModel::standard(3e-3);
    base.decoderKind = DecoderKind::UnionFind;
    base.trackLpr = true;

    struct Variant
    {
        const char *name;
        RemovalProtocol protocol;
        PolicyFactory wordParallel;
        PolicyFactory perLane;
    };

    MemoryExperiment probe(code, base);   // lookup table source
    const SwapLookupTable &lookup = probe.lookup();

    auto eraser_pair = [&code, &lookup](bool multi,
                                        LsbThreshold threshold) {
        return std::make_pair(
            PolicyFactory([&code, &lookup, multi, threshold]() {
                return std::make_unique<EraserPolicy>(
                    code, lookup, multi, threshold);
            }),
            PolicyFactory([&code, &lookup, multi, threshold]() {
                return std::make_unique<PerLaneEraserPolicy>(
                    code, lookup, multi, threshold);
            }));
    };

    std::vector<Variant> variants;
    {
        auto [word, lane] =
            eraser_pair(false, LsbThreshold::AtLeastTwo);
        variants.push_back(
            {"ERASER", RemovalProtocol::SwapLrc, word, lane});
    }
    {
        auto [word, lane] = eraser_pair(true, LsbThreshold::AtLeastTwo);
        variants.push_back(
            {"ERASER+M", RemovalProtocol::SwapLrc, word, lane});
    }
    {
        auto [word, lane] =
            eraser_pair(false, LsbThreshold::HalfNeighbors);
        variants.push_back({"ERASER/half", RemovalProtocol::SwapLrc,
                            word, lane});
    }
    {
        auto [word, lane] = eraser_pair(false, LsbThreshold::AtLeastTwo);
        variants.push_back(
            {"ERASER/dqlr", RemovalProtocol::Dqlr, word, lane});
    }
    variants.push_back(
        {"Always", RemovalProtocol::SwapLrc,
         [&code]() {
             return std::make_unique<AlwaysLrcPolicy>(code, false);
         },
         [&code]() {
             return std::make_unique<PerLaneAlwaysPolicy>(code, false);
         }});
    variants.push_back(
        {"DQLR", RemovalProtocol::Dqlr,
         [&code]() {
             return std::make_unique<AlwaysLrcPolicy>(code, true);
         },
         [&code]() {
             return std::make_unique<PerLaneAlwaysPolicy>(code, true);
         }});
    variants.push_back(
        {"Never", RemovalProtocol::SwapLrc,
         []() { return std::make_unique<NeverLrcPolicy>(); },
         []() { return std::make_unique<PerLaneNeverPolicy>(); }});

    for (const auto &variant : variants) {
        ExperimentConfig cfg = base;
        cfg.protocol = variant.protocol;
        if (variant.protocol == RemovalProtocol::Dqlr)
            cfg.em.transport = TransportModel::Exchange;
        for (unsigned width : {64u, 256u, 512u}) {
            cfg.batchWidth = width;
            MemoryExperiment exp(code, cfg);
            auto word = exp.runBatched(variant.wordParallel, "word");
            auto lane = exp.runBatched(variant.perLane, "lane");
            expectResultsIdentical(
                word, lane,
                (std::string(variant.name) + " W=" +
                 std::to_string(width))
                    .c_str());
        }
    }
}

/** Ragged word-group regression: a 100-shot run leaves 156 dead lanes
 *  in a 256-wide group (and a 28-lane ragged second block); dead
 *  lanes must contribute no events, LRCs, observations or verdicts,
 *  i.e. the run must match its own 64-wide decomposition exactly on
 *  both controller and fallback paths. */
TEST(BatchControllerExperiment, RaggedGroupsMatchAcrossWidthsAndPaths)
{
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 5;
    cfg.shots = 100;
    cfg.seed = 77;
    cfg.em = ErrorModel::standard(5e-3);
    cfg.decoderKind = DecoderKind::UnionFind;
    cfg.trackLpr = true;
    MemoryExperiment exp(code, cfg);
    const SwapLookupTable &lookup = exp.lookup();

    const PolicyFactory word = [&code, &lookup]() {
        return std::make_unique<EraserPolicy>(code, lookup, true);
    };
    const PolicyFactory lane = [&code, &lookup]() {
        return std::make_unique<PerLaneEraserPolicy>(code, lookup,
                                                     true);
    };

    cfg.batchWidth = 64;
    auto w64 = MemoryExperiment(code, cfg).runBatched(word, "w64");
    cfg.batchWidth = 256;
    MemoryExperiment wide(code, cfg);
    auto w256 = wide.runBatched(word, "w256");
    auto w256_lane = wide.runBatched(lane, "w256/lane");

    expectResultsIdentical(w64, w256, "ragged W=256 vs W=64");
    expectResultsIdentical(w64, w256_lane,
                           "ragged W=256 per-lane vs W=64");
    // Every (shot, round, data-qubit) decision is accounted exactly
    // once: dead lanes add nothing to any quadrant.
    EXPECT_EQ(w256.tp + w256.fp + w256.tn + w256.fn,
              cfg.shots * (uint64_t)cfg.rounds *
                  (uint64_t)code.numData());
    EXPECT_EQ(w256.tp + w256.fp, w256.lrcsScheduled);
}

} // namespace
} // namespace qec
