/**
 * @file
 * Validation of the blossom maximum-weight matching engine against
 * brute force, including blossom-forcing instances (odd cycles) and
 * randomized property sweeps.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "decoder/matching.h"

namespace qec
{
namespace
{

/** Total weight of a matching result (each edge counted once). */
int64_t
matchingWeight(const std::vector<int> &partner,
               const std::vector<MatchEdge> &edges)
{
    int64_t total = 0;
    for (const auto &e : edges) {
        if (partner[e.u] == e.v)
            total += e.weight;
    }
    return total;
}

int
matchingCardinality(const std::vector<int> &partner)
{
    int n = 0;
    for (int p : partner)
        n += (p != -1) ? 1 : 0;
    return n / 2;
}

/** Brute-force best matching by trying every subset of edges. */
void
bruteForce(int n, const std::vector<MatchEdge> &edges,
           bool max_cardinality, int64_t &best_weight, int &best_card)
{
    const int m = (int)edges.size();
    best_weight = 0;
    best_card = 0;
    for (uint32_t mask = 0; mask < (1u << m); ++mask) {
        std::vector<int> used(n, 0);
        int64_t weight = 0;
        int card = 0;
        bool valid = true;
        for (int k = 0; k < m && valid; ++k) {
            if (!(mask & (1u << k)))
                continue;
            const auto &e = edges[k];
            if (used[e.u]++ || used[e.v]++)
                valid = false;
            weight += e.weight;
            ++card;
        }
        if (!valid)
            continue;
        if (max_cardinality) {
            if (card > best_card ||
                (card == best_card && weight > best_weight)) {
                best_card = card;
                best_weight = weight;
            }
        } else if (weight > best_weight) {
            best_weight = weight;
            best_card = card;
        }
    }
}

void
checkValid(int n, const std::vector<int> &partner)
{
    for (int v = 0; v < n; ++v) {
        if (partner[v] != -1) {
            ASSERT_GE(partner[v], 0);
            ASSERT_LT(partner[v], n);
            ASSERT_EQ(partner[partner[v]], v);
            ASSERT_NE(partner[v], v);
        }
    }
}

TEST(Matching, EmptyGraph)
{
    auto partner = maxWeightMatching(4, {}, false);
    EXPECT_EQ(matchingCardinality(partner), 0);
}

TEST(Matching, SingleEdge)
{
    auto partner = maxWeightMatching(2, {{0, 1, 5}}, false);
    EXPECT_EQ(partner[0], 1);
    EXPECT_EQ(partner[1], 0);
}

TEST(Matching, PrefersHeavierEdge)
{
    // Path 0-1-2: only one of the two edges can be used.
    auto partner =
        maxWeightMatching(3, {{0, 1, 2}, {1, 2, 7}}, false);
    EXPECT_EQ(partner[1], 2);
    EXPECT_EQ(partner[0], -1);
}

TEST(Matching, PathChoosesEndpointsOverMiddle)
{
    // 0-1 (3), 1-2 (4), 2-3 (3): taking the two outer edges (6)
    // beats the middle edge (4).
    auto partner = maxWeightMatching(
        4, {{0, 1, 3}, {1, 2, 4}, {2, 3, 3}}, false);
    EXPECT_EQ(partner[0], 1);
    EXPECT_EQ(partner[2], 3);
}

TEST(Matching, OddCycleForcesBlossom)
{
    // Triangle with a pendant: matching must reason about the odd
    // cycle {0,1,2}.
    std::vector<MatchEdge> edges = {
        {0, 1, 6}, {1, 2, 5}, {0, 2, 5}, {2, 3, 6}};
    auto partner = maxWeightMatching(4, edges, false);
    checkValid(4, partner);
    EXPECT_EQ(matchingWeight(partner, edges), 12);  // 0-1 and 2-3.
}

TEST(Matching, FiveCycleBlossom)
{
    // 5-cycle with equal weights: best matching picks 2 edges.
    std::vector<MatchEdge> edges = {
        {0, 1, 4}, {1, 2, 4}, {2, 3, 4}, {3, 4, 4}, {4, 0, 4}};
    auto partner = maxWeightMatching(5, edges, false);
    checkValid(5, partner);
    EXPECT_EQ(matchingWeight(partner, edges), 8);
    EXPECT_EQ(matchingCardinality(partner), 2);
}

TEST(Matching, MaxCardinalityTakesLightEdges)
{
    // Without max-cardinality the weight-0 edge is skippable; with it,
    // both pairs must be matched.
    std::vector<MatchEdge> edges = {{0, 1, 9}, {2, 3, 0}};
    auto loose = maxWeightMatching(4, edges, false);
    auto strict = maxWeightMatching(4, edges, true);
    EXPECT_EQ(matchingCardinality(loose), 1);
    EXPECT_EQ(matchingCardinality(strict), 2);
}

TEST(Matching, MinWeightPerfectSimple)
{
    // Complete graph on 4 vertices; min perfect matching is 0-2, 1-3.
    std::vector<MatchEdge> edges = {{0, 1, 10}, {0, 2, 1}, {0, 3, 9},
                                    {1, 2, 8},  {1, 3, 2}, {2, 3, 10}};
    auto partner = minWeightPerfectMatching(4, edges);
    EXPECT_EQ(partner[0], 2);
    EXPECT_EQ(partner[1], 3);
}

struct RandomCase
{
    int n;
    double density;
    bool max_cardinality;
};

class MatchingRandom : public ::testing::TestWithParam<RandomCase>
{
};

TEST_P(MatchingRandom, AgreesWithBruteForce)
{
    const auto param = GetParam();
    Rng rng(0xabcdef01u + param.n * 977 +
            (param.max_cardinality ? 131 : 0));
    for (int trial = 0; trial < 300; ++trial) {
        std::vector<MatchEdge> edges;
        for (int u = 0; u < param.n; ++u) {
            for (int v = u + 1; v < param.n; ++v) {
                if (rng.uniform() < param.density) {
                    edges.push_back(
                        {u, v, (int64_t)rng.randint(50)});
                }
            }
        }
        if (edges.size() > 18)
            edges.resize(18);   // keep brute force tractable

        auto partner =
            maxWeightMatching(param.n, edges, param.max_cardinality);
        checkValid(param.n, partner);

        int64_t best_weight = 0;
        int best_card = 0;
        bruteForce(param.n, edges, param.max_cardinality, best_weight,
                   best_card);
        if (param.max_cardinality) {
            ASSERT_EQ(matchingCardinality(partner), best_card)
                << "trial " << trial;
        }
        ASSERT_EQ(matchingWeight(partner, edges), best_weight)
            << "trial " << trial << " n=" << param.n;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatchingRandom,
    ::testing::Values(RandomCase{4, 0.7, false}, RandomCase{4, 0.7, true},
                      RandomCase{5, 0.6, false}, RandomCase{5, 0.6, true},
                      RandomCase{6, 0.5, false}, RandomCase{6, 0.5, true},
                      RandomCase{7, 0.4, false}, RandomCase{7, 0.4, true},
                      RandomCase{8, 0.35, false},
                      RandomCase{8, 0.35, true}));

TEST(Matching, MinPerfectRandomAgainstBruteForce)
{
    // Decoder-shaped instances: 2n vertices (defects + boundary
    // twins), always perfectly matchable.
    Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        const int n = 2 + (int)rng.randint(2);  // 2 or 3 defects
        std::vector<MatchEdge> edges;
        for (int i = 0; i < n; ++i) {
            for (int j = i + 1; j < n; ++j) {
                edges.push_back({i, j, (int64_t)(1 + rng.randint(40))});
                edges.push_back({n + i, n + j, 0});
            }
            edges.push_back({i, n + i, (int64_t)(1 + rng.randint(40))});
        }
        auto partner = minWeightPerfectMatching(2 * n, edges);
        checkValid(2 * n, partner);
        for (int v = 0; v < 2 * n; ++v)
            ASSERT_NE(partner[v], -1);

        // Brute force the minimum perfect matching weight.
        int64_t best = INT64_MAX;
        const int m = (int)edges.size();
        for (uint32_t mask = 0; mask < (1u << m); ++mask) {
            std::vector<int> used(2 * n, 0);
            int64_t weight = 0;
            int card = 0;
            bool valid = true;
            for (int k = 0; k < m && valid; ++k) {
                if (!(mask & (1u << k)))
                    continue;
                const auto &e = edges[k];
                if (used[e.u]++ || used[e.v]++)
                    valid = false;
                weight += e.weight;
                ++card;
            }
            if (valid && card == n)
                best = std::min(best, weight);
        }
        ASSERT_EQ(matchingWeight(partner, edges), best);
    }
}

} // namespace
} // namespace qec
