/**
 * @file
 * Cross-module property tests: invariants that must hold for any
 * configuration, checked over randomized sweeps — matching local
 * optimality at sizes brute force cannot reach, DEM edge structure,
 * exhaustive frame propagation, experiment accounting identities, and
 * leakage bookkeeping under random op streams.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "base/rng.h"
#include "code/builder.h"
#include "code/rotated_surface_code.h"
#include "decoder/defects.h"
#include "decoder/detector_model.h"
#include "decoder/matching.h"
#include "decoder/mwpm_decoder.h"
#include "exp/memory_experiment.h"
#include "sim/frame_simulator.h"

namespace qec
{
namespace
{

TEST(MatchingProperty, LargeMinPerfectIsTwoOptLocal)
{
    // For instances too large for brute force, verify the classical
    // 2-exchange local optimality condition of minimum perfect
    // matchings: swapping partners of any two matched pairs never
    // improves the total weight.
    Rng rng(101);
    for (int trial = 0; trial < 40; ++trial) {
        const int n = 10 + (int)rng.randint(20);   // defects
        std::vector<std::vector<int64_t>> w(
            2 * n, std::vector<int64_t>(2 * n, -1));
        std::vector<MatchEdge> edges;
        auto add = [&](int a, int b, int64_t weight) {
            edges.push_back({a, b, weight});
            w[a][b] = w[b][a] = weight;
        };
        for (int i = 0; i < n; ++i) {
            for (int j = i + 1; j < n; ++j) {
                add(i, j, 1 + rng.randint(500));
                add(n + i, n + j, 0);
            }
            add(i, n + i, 1 + rng.randint(500));
        }
        auto partner = minWeightPerfectMatching(2 * n, edges);

        for (int a = 0; a < 2 * n; ++a) {
            const int b = partner[a];
            ASSERT_GE(b, 0);
            if (b < a)
                continue;
            for (int c = a + 1; c < 2 * n; ++c) {
                const int d = partner[c];
                if (d < c || c == b)
                    continue;
                // Alternative pairings (a,c)(b,d) and (a,d)(b,c).
                const int64_t current = w[a][b] + w[c][d];
                if (w[a][c] >= 0 && w[b][d] >= 0) {
                    ASSERT_GE(w[a][c] + w[b][d], current)
                        << "2-exchange improves the matching";
                }
                if (w[a][d] >= 0 && w[b][c] >= 0) {
                    ASSERT_GE(w[a][d] + w[b][c], current);
                }
            }
        }
    }
}

TEST(MatchingProperty, DuplicateEdgesHandled)
{
    // Parallel edges with different weights: the lighter one wins.
    std::vector<MatchEdge> edges = {
        {0, 1, 9}, {0, 1, 2}, {2, 3, 5}};
    auto partner = minWeightPerfectMatching(4, edges);
    EXPECT_EQ(partner[0], 1);
    EXPECT_EQ(partner[2], 3);
}

class DemEdgeStructure : public ::testing::TestWithParam<int>
{
  protected:
    DemEdgeStructure()
        : code_(GetParam()),
          dem_(buildDetectorModelDirect(code_, 5, Basis::Z))
    {
    }

    bool
    hasEdge(int a, int b) const
    {
        for (const auto &e : dem_.edges) {
            if ((e.a == a && e.b == b) || (e.a == b && e.b == a))
                return true;
        }
        return false;
    }

    RotatedSurfaceCode code_;
    DetectorModel dem_;
};

TEST_P(DemEdgeStructure, TimeLikeEdgesEverywhere)
{
    // Measurement errors give every detector a time-like partner in
    // the next round.
    const int n_s = dem_.stabsPerRound;
    for (int s = 0; s < n_s; ++s) {
        for (int r = 0; r + 1 <= dem_.rounds; ++r) {
            EXPECT_TRUE(hasEdge(r * n_s + s, (r + 1) * n_s + s))
                << "missing time edge s=" << s << " r=" << r;
        }
    }
}

TEST_P(DemEdgeStructure, SpaceLikeEdgesBetweenSharedSupport)
{
    // Two Z stabilizers sharing a data qubit must be connected by a
    // same-round edge (the data error mechanism).
    const int n_s = dem_.stabsPerRound;
    const auto &zstabs = code_.zStabilizers();
    for (int q = 0; q < code_.numData(); ++q) {
        std::vector<int> z_neighbors;
        for (int s : code_.stabilizersOfData(q)) {
            if (code_.stabilizer(s).type == StabType::Z)
                z_neighbors.push_back(code_.stabilizer(s).basisIndex);
        }
        if (z_neighbors.size() == 2) {
            EXPECT_TRUE(hasEdge(2 * n_s + z_neighbors[0],
                                2 * n_s + z_neighbors[1]))
                << "missing space edge via data " << q;
        }
    }
    (void)zstabs;
}

TEST_P(DemEdgeStructure, BoundaryEdgesOnlyNearBoundary)
{
    // Boundary edges belong to stabilizers whose data errors can
    // terminate on the lattice boundary: those adjacent to a data
    // qubit with a single Z-stabilizer neighbour.
    const int n_s = dem_.stabsPerRound;
    std::set<int> boundary_stabs;
    for (int q = 0; q < code_.numData(); ++q) {
        std::vector<int> z_neighbors;
        for (int s : code_.stabilizersOfData(q)) {
            if (code_.stabilizer(s).type == StabType::Z)
                z_neighbors.push_back(code_.stabilizer(s).basisIndex);
        }
        if (z_neighbors.size() == 1)
            boundary_stabs.insert(z_neighbors[0]);
    }
    ASSERT_FALSE(boundary_stabs.empty());
    for (const auto &e : dem_.edges) {
        if (e.b != kBoundary)
            continue;
        const int s = e.a % n_s;
        EXPECT_TRUE(boundary_stabs.count(s))
            << "unexpected boundary edge at stab " << s;
    }
}

INSTANTIATE_TEST_SUITE_P(Distances, DemEdgeStructure,
                         ::testing::Values(3, 5, 7));

TEST(FrameProperty, CnotPropagationExhaustive)
{
    // All 16 input frame combinations against the symplectic rule
    // x_c -> x_t, z_t -> z_c.
    for (int mask = 0; mask < 16; ++mask) {
        const bool xc = mask & 1;
        const bool zc = mask & 2;
        const bool xt = mask & 4;
        const bool zt = mask & 8;
        FrameSimulator sim(2, ErrorModel::noiseless(), Rng(1));
        if (xc)
            sim.injectPauli(0, Pauli::X);
        if (zc)
            sim.injectPauli(0, Pauli::Z);
        if (xt)
            sim.injectPauli(1, Pauli::X);
        if (zt)
            sim.injectPauli(1, Pauli::Z);
        Op cnot;
        cnot.type = OpType::Cnot;
        cnot.q0 = 0;
        cnot.q1 = 1;
        sim.execute(cnot);
        EXPECT_EQ(sim.xFrame(0), xc);
        EXPECT_EQ(sim.zFrame(0), zc ^ zt);
        EXPECT_EQ(sim.xFrame(1), xt ^ xc);
        EXPECT_EQ(sim.zFrame(1), zt);
    }
}

TEST(FrameProperty, MeasurementErrorRate)
{
    ErrorModel em = ErrorModel::noiseless();
    em.p = 0.05;   // only measurement/H/reset/depol channels use p
    em.leakageEnabled = false;
    FrameSimulator sim(1, em, Rng(55));
    int flips = 0;
    const int n = 40000;
    Op m;
    m.type = OpType::Measure;
    m.q0 = 0;
    for (int i = 0; i < n; ++i) {
        sim.execute(m);
        flips += sim.record().back().flip ? 1 : 0;
    }
    EXPECT_NEAR(flips, n * em.p, 5 * std::sqrt(n * em.p));
}

TEST(FrameProperty, RandomOpStreamKeepsStateConsistent)
{
    // Fuzz: random ops over a small register; leakage flags and
    // frames must stay within bounds and resets must clear.
    Rng rng(77);
    ErrorModel em = ErrorModel::standard(0.01);
    FrameSimulator sim(6, em, Rng(78));
    for (int step = 0; step < 20000; ++step) {
        Op op;
        const int kind = (int)rng.randint(6);
        op.q0 = (int)rng.randint(6);
        switch (kind) {
          case 0: op.type = OpType::DataNoise; break;
          case 1: op.type = OpType::Reset; break;
          case 2: op.type = OpType::H; break;
          case 3:
            op.type = OpType::Cnot;
            op.q1 = (op.q0 + 1 + (int)rng.randint(5)) % 6;
            break;
          case 4: op.type = OpType::Measure; break;
          default:
            op.type = OpType::LeakageIswap;
            op.q1 = (op.q0 + 1 + (int)rng.randint(5)) % 6;
            break;
        }
        sim.execute(op);
        if (op.type == OpType::Reset) {
            // Leakage must clear; the frame may carry the p-rate
            // initialization error, so only leakage is asserted.
            ASSERT_FALSE(sim.leaked(op.q0));
        }
    }
    ASSERT_LE(sim.countLeaked(0, 6), 6);
}

TEST(ExperimentProperty, LprComponentsAddUp)
{
    RotatedSurfaceCode code(5);
    ExperimentConfig cfg;
    cfg.rounds = 12;
    cfg.shots = 150;
    cfg.seed = 200;
    cfg.decode = false;
    cfg.trackLpr = true;
    MemoryExperiment exp(code, cfg);
    auto r = exp.run(PolicyKind::Eraser);
    for (int round = 0; round < cfg.rounds; ++round) {
        const double total = r.lprTotal(round) *
                             (code.numData() + code.numStabilizers());
        const double parts =
            r.lprData(round) * code.numData() +
            r.lprParity(round) * code.numStabilizers();
        EXPECT_NEAR(total, parts, 1e-9);
    }
}

TEST(ExperimentProperty, DecisionAccountingStableAcrossPolicies)
{
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 10;
    cfg.shots = 80;
    cfg.seed = 201;
    cfg.decode = false;
    MemoryExperiment exp(code, cfg);
    const uint64_t denom =
        cfg.shots * (uint64_t)cfg.rounds * code.numData();
    for (PolicyKind kind : {PolicyKind::Never, PolicyKind::Always,
                            PolicyKind::Eraser, PolicyKind::EraserM,
                            PolicyKind::Optimal}) {
        auto r = exp.run(kind);
        EXPECT_EQ(r.tp + r.fp + r.tn + r.fn, denom);
        EXPECT_EQ(r.tp + r.fp, r.lrcsScheduled);
    }
}

TEST(ExperimentProperty, NeverPolicyLeakageMonotoneInP)
{
    // More physical error -> more leakage left on the device.
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 15;
    cfg.shots = 400;
    cfg.seed = 202;
    cfg.decode = false;
    cfg.trackLpr = true;

    cfg.em = ErrorModel::standard(5e-4);
    auto low = MemoryExperiment(code, cfg).run(PolicyKind::Never);
    cfg.em = ErrorModel::standard(4e-3);
    auto high = MemoryExperiment(code, cfg).run(PolicyKind::Never);
    EXPECT_GT(high.lprTotal(cfg.rounds - 1),
              low.lprTotal(cfg.rounds - 1));
}

TEST(DecoderProperty, WeightsRespondToP)
{
    // The same defect pattern can decode differently under different
    // priors; at minimum the decoder must stay consistent and the
    // graph must rebuild cleanly for several p values.
    RotatedSurfaceCode code(3);
    DetectorModel dem = buildDetectorModel(code, 4, Basis::Z);
    for (double p : {1e-4, 1e-3, 1e-2}) {
        MwpmDecoder decoder(dem, p);
        EXPECT_FALSE(decoder.decode({}));
        EXPECT_GT(decoder.numGraphEdges(), 0u);
    }
}

TEST(DecoderProperty, MemoryXSingleFaultsSampled)
{
    RotatedSurfaceCode code(5);
    const int rounds = 2;
    Circuit circuit = buildMemoryCircuit(code, rounds, Basis::X);
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::X);
    MwpmDecoder decoder(dem, 1e-3);

    int checked = 0;
    for (size_t k = 0; k < circuit.ops.size(); k += 5) {
        const Op &op = circuit.ops[k];
        if (op.type != OpType::Cnot && op.type != OpType::DataNoise)
            continue;
        FrameSimulator sim(code.numQubits(), ErrorModel::noiseless(),
                           Rng(3));
        sim.reset();
        const Op *ops = circuit.ops.data();
        sim.executeRange(ops, ops + k + 1);
        sim.injectPauli(op.q0, Pauli::Z);
        sim.executeRange(ops + k + 1, ops + circuit.ops.size());
        auto outcome =
            extractDefects(code, Basis::X, rounds, sim.record());
        ASSERT_EQ(decoder.decode(outcome.defects),
                  outcome.observableFlip)
            << "op " << k;
        ++checked;
    }
    EXPECT_GT(checked, 30);
}

TEST(PolicyProperty, SchedulesAlwaysValidForBuilder)
{
    // Whatever a policy emits must be accepted by the round builder:
    // fuzz ERASER with random syndromes.
    RotatedSurfaceCode code(7);
    SwapLookupTable lookup(code);
    EraserPolicy policy(code, lookup, false);
    Rng rng(303);
    RoundObservation obs;
    obs.events.assign(code.numStabilizers(), 0);
    obs.leakedLabels.assign(code.numStabilizers(), 0);
    obs.hadLrc.assign(code.numData(), 0);

    for (int round = 0; round < 200; ++round) {
        for (auto &event : obs.events)
            event = rng.bernoulli(0.2) ? 1 : 0;
        obs.round = round;
        auto lrcs = policy.nextRound(obs);
        // Throws/aborts if invalid (duplicate parity, non-adjacent).
        RoundSchedule sched = buildRoundSchedule(code, round, lrcs);
        ASSERT_EQ(sched.lrcs.size(), lrcs.size());
        std::fill(obs.hadLrc.begin(), obs.hadLrc.end(), 0);
        for (const auto &pair : lrcs)
            obs.hadLrc[pair.data] = 1;
    }
}

TEST(PolicyProperty, EraserDeterministicGivenSameSyndromes)
{
    RotatedSurfaceCode code(5);
    SwapLookupTable lookup(code);
    EraserPolicy a(code, lookup, false);
    EraserPolicy b(code, lookup, false);
    Rng rng(404);
    RoundObservation obs;
    obs.events.assign(code.numStabilizers(), 0);
    obs.leakedLabels.assign(code.numStabilizers(), 0);
    obs.hadLrc.assign(code.numData(), 0);
    for (int round = 0; round < 60; ++round) {
        for (auto &event : obs.events)
            event = rng.bernoulli(0.15) ? 1 : 0;
        obs.round = round;
        auto la = a.nextRound(obs);
        auto lb = b.nextRound(obs);
        ASSERT_EQ(la.size(), lb.size());
        for (size_t i = 0; i < la.size(); ++i) {
            ASSERT_EQ(la[i].data, lb[i].data);
            ASSERT_EQ(la[i].stab, lb[i].stab);
        }
        std::fill(obs.hadLrc.begin(), obs.hadLrc.end(), 0);
        for (const auto &pair : la)
            obs.hadLrc[pair.data] = 1;
    }
}

} // namespace
} // namespace qec
