/**
 * @file
 * Batch-aware decode pipeline tests:
 *
 *  1. Differential: BatchDecoder (sparse extraction + zero-defect fast
 *     path + syndrome dedup cache + reusable workspace) pins its
 *     verdicts exactly against per-shot MwpmDecoder / UnionFindDecoder
 *     decode() calls, shot for shot, and the batched experiment's
 *     logical-error count is identical with the pipeline on and off.
 *  2. Workspace reuse: one workspace across >= 3 consecutive decode
 *     calls (the epoch-reset path) reproduces fresh-workspace verdicts.
 *  3. Zero-defect fast path: empty syndromes predict "no flip" and are
 *     counted without touching the decoder.
 *  4. Steady-state allocation freedom: the union-find decodeSparse
 *     performs zero heap allocations after warmup (global operator new
 *     is instrumented in this binary), and the MWPM workspace footprint
 *     stops growing.
 *  5. Sparse extraction: the flat BatchSyndrome agrees with the
 *     per-lane extraction and the scalar extractDefects ordering.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "base/rng.h"
#include "code/builder.h"
#include "code/rotated_surface_code.h"
#include "decoder/batch_decoder.h"
#include "decoder/defects.h"
#include "decoder/detector_model.h"
#include "decoder/mwpm_decoder.h"
#include "decoder/sparse_syndrome.h"
#include "decoder/syndrome_cache.h"
#include "decoder/union_find_decoder.h"
#include "exp/memory_experiment.h"
#include "sim/batch_frame_simulator.h"
#include "sim/frame_simulator.h"

// ---------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps
// it, so tests can assert a code region allocates nothing. The
// replacement operators pair malloc with free, which GCC's
// new/delete-mismatch heuristic cannot see through.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
static std::atomic<uint64_t> g_allocations{0};

void *
operator new(std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace qec
{
namespace
{

/** Sample realistic defect sets from a memory circuit. */
std::vector<std::vector<int>>
sampleDefectSets(const RotatedSurfaceCode &code, int rounds, int count,
                 double p, uint64_t seed)
{
    Circuit circuit = buildMemoryCircuit(code, rounds, Basis::Z);
    FrameSimulator sim(code.numQubits(), ErrorModel::standard(p),
                       Rng(seed));
    std::vector<std::vector<int>> shots;
    for (int i = 0; i < count; ++i) {
        sim.run(circuit);
        shots.push_back(
            extractDefects(code, Basis::Z, rounds, sim.record())
                .defects);
    }
    return shots;
}

TEST(DecodePipeline, BatchDecoderPinsPerShotMwpmVerdicts)
{
    RotatedSurfaceCode code(5);
    const int rounds = 8;
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    MwpmDecoder decoder(dem, 1e-3);
    BatchDecoder pipeline(decoder);

    auto shots = sampleDefectSets(code, rounds, 200, 2e-3, 71);
    for (const auto &defects : shots) {
        const bool reference = decoder.decode(defects);
        const bool piped =
            pipeline.decodeOne(defects.data(), defects.size());
        ASSERT_EQ(piped, reference);
    }
    EXPECT_EQ(pipeline.stats().shots, 200u);
    EXPECT_EQ(pipeline.stats().zeroDefect + pipeline.stats().cacheHits +
                  pipeline.stats().decoded,
              200u);
}

TEST(DecodePipeline, BatchDecoderPinsPerShotUnionFindVerdicts)
{
    RotatedSurfaceCode code(5);
    const int rounds = 8;
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    UnionFindDecoder decoder(dem, 1e-3);
    BatchDecoder pipeline(decoder);

    auto shots = sampleDefectSets(code, rounds, 200, 2e-3, 72);
    for (const auto &defects : shots) {
        ASSERT_EQ(pipeline.decodeOne(defects.data(), defects.size()),
                  decoder.decode(defects));
    }
}

TEST(DecodePipeline, CacheReplayMatchesDecodeAndCounts)
{
    RotatedSurfaceCode code(3);
    const int rounds = 4;
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    MwpmDecoder decoder(dem, 1e-3);
    BatchDecoder pipeline(decoder);

    const std::vector<int> defects = {0, 1, 5};
    const bool reference = decoder.decode(defects);
    for (int i = 0; i < 5; ++i) {
        ASSERT_EQ(pipeline.decodeOne(defects.data(), defects.size()),
                  reference);
    }
    EXPECT_EQ(pipeline.stats().decoded, 1u);
    EXPECT_EQ(pipeline.stats().cacheHits, 4u);
    EXPECT_NEAR(pipeline.stats().cacheHitRate(), 0.8, 1e-12);
}

TEST(DecodePipeline, BatchedExperimentIdenticalWithPipelineOnAndOff)
{
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 5;
    cfg.shots = 300;
    cfg.seed = 4242;
    cfg.em = ErrorModel::standard(3e-3);
    cfg.batchWidth = 64;

    cfg.batchDecode = true;
    MemoryExperiment on(code, cfg);
    auto with_pipeline = on.run(PolicyKind::Eraser);

    cfg.batchDecode = false;
    MemoryExperiment off(code, cfg);
    auto without_pipeline = off.run(PolicyKind::Eraser);

    EXPECT_EQ(with_pipeline.logicalErrors,
              without_pipeline.logicalErrors);
    EXPECT_EQ(with_pipeline.shots, without_pipeline.shots);
    // Pipeline counters only populate on the batched decode path.
    EXPECT_EQ(with_pipeline.decodedShots +
                  with_pipeline.zeroDefectShots +
                  with_pipeline.syndromeCacheHits,
              with_pipeline.shots);
    EXPECT_EQ(without_pipeline.decodedShots, 0u);
}

TEST(DecodePipeline, UnionFindExperimentIdenticalWithPipelineOnAndOff)
{
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 5;
    cfg.shots = 300;
    cfg.seed = 77;
    cfg.em = ErrorModel::standard(3e-3);
    cfg.batchWidth = 64;
    cfg.decoderKind = DecoderKind::UnionFind;

    cfg.batchDecode = true;
    MemoryExperiment on(code, cfg);
    cfg.batchDecode = false;
    MemoryExperiment off(code, cfg);
    EXPECT_EQ(on.run(PolicyKind::Eraser).logicalErrors,
              off.run(PolicyKind::Eraser).logicalErrors);
}

TEST(DecodePipeline, WorkspaceReuseMatchesFreshWorkspaces)
{
    // Epoch-reset reuse: >= 3 consecutive decode calls on one
    // workspace reproduce fresh-workspace verdicts for both decoders.
    RotatedSurfaceCode code(5);
    const int rounds = 10;
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    MwpmDecoder mwpm(dem, 1e-3);
    UnionFindDecoder uf(dem, 1e-3);

    auto shots = sampleDefectSets(code, rounds, 50, 2e-3, 73);
    DecodeWorkspace reused_mwpm;
    DecodeWorkspace reused_uf;
    int nonzero = 0;
    for (const auto &defects : shots) {
        if (!defects.empty())
            ++nonzero;
        ASSERT_EQ(mwpm.decodeSparse(defects.data(), defects.size(),
                                    reused_mwpm),
                  mwpm.decode(defects));
        ASSERT_EQ(uf.decodeSparse(defects.data(), defects.size(),
                                  reused_uf),
                  uf.decode(defects));
    }
    EXPECT_GE(nonzero, 3);
}

TEST(DecodePipeline, DuplicateDefectIdsTerminate)
{
    // A repeated detector id must not corrupt the union-find's
    // intrusive frontier list (self-cycle -> infinite loop) and must
    // decode like a single occurrence for both decoders.
    RotatedSurfaceCode code(3);
    DetectorModel dem = buildDetectorModel(code, 3, Basis::Z);
    UnionFindDecoder uf(dem, 1e-3);
    MwpmDecoder mwpm(dem, 1e-3);

    const std::vector<int> dup = {5, 5};
    const std::vector<int> once = {5};
    EXPECT_EQ(uf.decode(dup), uf.decode(once));
    const std::vector<int> mixed = {2, 5, 5, 7};
    const std::vector<int> mixed_once = {2, 5, 7};
    EXPECT_EQ(uf.decode(mixed), uf.decode(mixed_once));
    (void)mwpm.decode(dup);   // must terminate
}

TEST(DecodePipeline, ZeroDefectFastPath)
{
    RotatedSurfaceCode code(3);
    DetectorModel dem = buildDetectorModel(code, 3, Basis::Z);
    MwpmDecoder decoder(dem, 1e-3);
    BatchDecoder pipeline(decoder);

    EXPECT_FALSE(pipeline.decodeOne(nullptr, 0));
    EXPECT_FALSE(pipeline.decodeOne(nullptr, 0));
    EXPECT_EQ(pipeline.stats().zeroDefect, 2u);
    EXPECT_EQ(pipeline.stats().decoded, 0u);
    // Zero-defect shots never enter the cache.
    EXPECT_EQ(pipeline.cacheStats().hits + pipeline.cacheStats().misses,
              0u);
}

TEST(DecodePipeline, UnionFindDecodeIsAllocationFreeInSteadyState)
{
    RotatedSurfaceCode code(5);
    const int rounds = 10;
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    UnionFindDecoder decoder(dem, 1e-3);

    auto shots = sampleDefectSets(code, rounds, 40, 3e-3, 74);
    DecodeWorkspace ws;
    // Warmup sizes every workspace array.
    for (const auto &defects : shots)
        decoder.decodeSparse(defects.data(), defects.size(), ws);

    const uint64_t before = g_allocations.load();
    bool sink = false;
    for (int repeat = 0; repeat < 3; ++repeat) {
        for (const auto &defects : shots)
            sink ^= decoder.decodeSparse(defects.data(),
                                         defects.size(), ws);
    }
    const uint64_t after = g_allocations.load();
    EXPECT_EQ(after, before) << "union-find decode allocated on the "
                                "steady-state path (sink="
                             << sink << ")";
}

TEST(DecodePipeline, ZeroDefectDecodeAllocatesNothingForBothDecoders)
{
    RotatedSurfaceCode code(3);
    DetectorModel dem = buildDetectorModel(code, 3, Basis::Z);
    MwpmDecoder mwpm(dem, 1e-3);
    UnionFindDecoder uf(dem, 1e-3);
    DecodeWorkspace ws;

    const uint64_t before = g_allocations.load();
    bool sink = mwpm.decodeSparse(nullptr, 0, ws);
    sink ^= uf.decodeSparse(nullptr, 0, ws);
    EXPECT_EQ(g_allocations.load(), before) << sink;
}

TEST(DecodePipeline, MwpmDecodeIsAllocationFreeInSteadyState)
{
    // The blossom solver now lives in the workspace's MatcherScratch:
    // once warmed up on a shot set, repeating the set must perform
    // zero heap allocations end to end (the last piece of the
    // zero-alloc decode story; previously the Matcher rebuilt its
    // vectors on every matching call).
    RotatedSurfaceCode code(5);
    const int rounds = 10;
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    MwpmDecoder decoder(dem, 1e-3);

    auto shots = sampleDefectSets(code, rounds, 40, 3e-3, 76);
    DecodeWorkspace ws;
    // Two warmup passes: the first sizes every array, the second lets
    // per-blossom-slot capacities settle.
    for (int warmup = 0; warmup < 2; ++warmup) {
        for (const auto &defects : shots)
            decoder.decodeSparse(defects.data(), defects.size(), ws);
    }

    const uint64_t before = g_allocations.load();
    bool sink = false;
    for (int repeat = 0; repeat < 3; ++repeat) {
        for (const auto &defects : shots)
            sink ^= decoder.decodeSparse(defects.data(),
                                         defects.size(), ws);
    }
    const uint64_t after = g_allocations.load();
    EXPECT_EQ(after, before) << "MWPM decode allocated on the "
                                "steady-state path (sink="
                             << sink << ")";
}

TEST(DecodePipeline, MatcherScratchReuseMatchesThrowawaySolves)
{
    // Same instances through one persistent scratch and through
    // fresh solves must produce identical matchings.
    Rng rng(11);
    MatcherScratch scratch;
    for (int iter = 0; iter < 30; ++iter) {
        const int n = 2 + (int)rng.randint(10);
        std::vector<MatchEdge> edges;
        for (int i = 0; i < n; ++i) {
            for (int j = i + 1; j < n; ++j)
                edges.push_back(
                    {i, j, (int64_t)(1 + rng.randint(50))});
            edges.push_back({i, n + i, (int64_t)(1 + rng.randint(50))});
        }
        for (int i = 0; i < n; ++i)
            for (int j = i + 1; j < n; ++j)
                edges.push_back({n + i, n + j, 0});

        std::vector<MatchEdge> a(edges), b(edges);
        std::vector<int> fresh, reused;
        minWeightPerfectMatchingInPlace(2 * n, a, fresh);
        minWeightPerfectMatchingInPlace(2 * n, b, reused, scratch);
        ASSERT_EQ(fresh, reused) << "instance " << iter;
    }
}

TEST(DecodePipeline, TruncatedKeyConstructedCollisionNeverReplays)
{
    // Constructed collision: keyDetectorLimit = 10 excludes defects
    // >= 10 from the HASH, so {1, 4, 12} and {1, 4, 17} share a probe
    // chain — but a hit must verify the full stored list, so the
    // tail-divergent list must miss instead of replaying the first
    // list's verdict (the mode is miss-only-approximate, never wrong).
    SyndromeCacheOptions options;
    options.keyDetectorLimit = 10;
    SyndromeCache cache(options);

    const std::vector<int> a = {1, 4, 12};
    const std::vector<int> same_prefix = {1, 4, 17};
    const std::vector<int> other_prefix = {1, 5, 12};
    cache.insert(syndromeHash(a.data(), a.size()), a.data(), a.size(),
                 true);
    bool verdict = false;
    EXPECT_FALSE(cache.lookup(syndromeHash(same_prefix.data(), 3),
                              same_prefix.data(), 3, verdict));
    EXPECT_FALSE(cache.lookup(syndromeHash(other_prefix.data(), 3),
                              other_prefix.data(), 3, verdict));
    // The identical full list still hits with its own verdict.
    EXPECT_TRUE(
        cache.lookup(syndromeHash(a.data(), 3), a.data(), 3, verdict));
    EXPECT_TRUE(verdict);

    // Both colliding lists can be cached side by side and each replays
    // its own verdict.
    cache.insert(syndromeHash(same_prefix.data(), 3),
                 same_prefix.data(), 3, false);
    EXPECT_TRUE(cache.lookup(syndromeHash(same_prefix.data(), 3),
                             same_prefix.data(), 3, verdict));
    EXPECT_FALSE(verdict);
    EXPECT_TRUE(
        cache.lookup(syndromeHash(a.data(), 3), a.data(), 3, verdict));
    EXPECT_TRUE(verdict);
}

TEST(DecodePipeline, TruncatedKeyVerdictsMatchExactPipeline)
{
    // Truncated keying only coarsens the hash; every replay is
    // verified against the full defect list, so verdict streams and
    // hit counts must match the exact pipeline shot for shot.
    RotatedSurfaceCode code(3);
    const int rounds = 6;
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    UnionFindDecoder decoder(dem, 1e-3);

    auto shots = sampleDefectSets(code, rounds, 600, 1.5e-3, 77);

    SyndromeCacheOptions exact;
    BatchDecoder exact_pipe(decoder, exact);
    SyndromeCacheOptions truncated;
    // Hash all but the last two detector rows.
    truncated.keyDetectorLimit =
        (uint32_t)((rounds - 1) * code.numBasisStabilizers(Basis::Z));
    BatchDecoder trunc_pipe(decoder, truncated);

    for (const auto &defects : shots) {
        const bool exact_verdict =
            exact_pipe.decodeOne(defects.data(), defects.size());
        const bool trunc_verdict =
            trunc_pipe.decodeOne(defects.data(), defects.size());
        ASSERT_EQ(exact_verdict, trunc_verdict);
    }
    EXPECT_EQ(trunc_pipe.stats().cacheHits,
              exact_pipe.stats().cacheHits);
    EXPECT_GT(trunc_pipe.stats().cacheHits, 0u);
}

TEST(DecodePipeline, ExperimentDerivesTruncatedKeyFromRounds)
{
    // config.syndromeCache.truncateRounds flows through the batched
    // experiment; with full-list verification the truncated run is
    // verdict-identical to the exact run, not just statistically
    // close.
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 6;
    cfg.shots = 1500;
    cfg.seed = 31337;
    cfg.em = ErrorModel::standard(2e-3);
    cfg.decoderKind = DecoderKind::UnionFind;
    cfg.batchWidth = 64;
    // One worker: hit counts depend on which worker's cache sees
    // which word-group, so they are only run-to-run comparable
    // single-threaded (verdicts are identical at any thread count).
    cfg.threads = 1;

    MemoryExperiment exact(code, cfg);
    auto exact_result = exact.run(PolicyKind::Eraser);

    cfg.syndromeCache.truncateRounds = 2;
    MemoryExperiment truncated(code, cfg);
    auto trunc_result = truncated.run(PolicyKind::Eraser);

    EXPECT_EQ(trunc_result.syndromeCacheHits,
              exact_result.syndromeCacheHits);
    ASSERT_GT(exact_result.logicalErrors, 0u);
    EXPECT_EQ(exact_result.logicalErrors, trunc_result.logicalErrors);
}

TEST(DecodePipeline, MwpmWorkspaceFootprintStabilizes)
{
    // The MWPM path still allocates inside the blossom solver, but the
    // workspace itself must stop growing once decode reaches steady
    // state.
    RotatedSurfaceCode code(5);
    const int rounds = 10;
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    MwpmDecoder decoder(dem, 1e-3);

    auto shots = sampleDefectSets(code, rounds, 60, 3e-3, 75);
    DecodeWorkspace ws;
    for (const auto &defects : shots)
        decoder.decodeSparse(defects.data(), defects.size(), ws);
    const size_t footprint = ws.footprintBytes();
    EXPECT_GT(footprint, 0u);
    for (int repeat = 0; repeat < 3; ++repeat) {
        for (const auto &defects : shots)
            decoder.decodeSparse(defects.data(), defects.size(), ws);
    }
    EXPECT_EQ(ws.footprintBytes(), footprint);
}

TEST(DecodePipeline, SparseExtractionMatchesPerLaneExtraction)
{
    RotatedSurfaceCode code(3);
    const int rounds = 6;
    Circuit circuit = buildMemoryCircuit(code, rounds, Basis::Z);
    BatchFrameSimulator sim(code.numQubits(),
                            ErrorModel::standard(5e-3), 64, 913, 0);
    sim.executeRange(circuit.ops.data(),
                     circuit.ops.data() + circuit.ops.size());

    SparseSyndromeExtractor extractor;
    BatchSyndrome syndrome;
    extractor.extract(code, Basis::Z, rounds, sim.record(), 64,
                      syndrome);
    auto outcomes =
        extractDefectsBatched(code, Basis::Z, rounds, sim.record(), 64);

    uint64_t expect_nonzero = 0;
    for (int l = 0; l < 64; ++l) {
        ASSERT_EQ(syndrome.laneSize(l), outcomes[l].defects.size());
        for (size_t k = 0; k < outcomes[l].defects.size(); ++k)
            ASSERT_EQ(syndrome.laneBegin(l)[k],
                      outcomes[l].defects[k]);
        ASSERT_EQ(syndrome.laneObservable(l),
                  outcomes[l].observableFlip);
        ASSERT_EQ(syndrome.laneHash[l],
                  syndromeHash(outcomes[l].defects.data(),
                               outcomes[l].defects.size()));
        if (!outcomes[l].defects.empty())
            expect_nonzero |= uint64_t{1} << l;
    }
    EXPECT_EQ(syndrome.nonzeroWords[0], expect_nonzero);
    EXPECT_EQ(syndrome.numWords, 1);
}

TEST(DecodePipeline, LaneHashesDedupeIdenticalSyndromes)
{
    // Lanes with identical defect lists must share a hash; the cache
    // verifies full equality on top, so collisions only cost time.
    std::vector<int> a = {3, 17, 42};
    std::vector<int> b = {3, 17, 42};
    std::vector<int> c = {3, 17, 43};
    EXPECT_EQ(syndromeHash(a.data(), a.size()),
              syndromeHash(b.data(), b.size()));
    EXPECT_NE(syndromeHash(a.data(), a.size()),
              syndromeHash(c.data(), c.size()));
    EXPECT_NE(syndromeHash(a.data(), 2), syndromeHash(a.data(), 3));
}

TEST(DecodePipeline, SyndromeCacheVerifiesFullListOnHashCollision)
{
    SyndromeCacheOptions options;
    options.tableLog2 = 4;
    SyndromeCache cache(options);
    const std::vector<int> a = {1, 2, 3};
    const std::vector<int> b = {9, 8, 7};
    cache.insert(12345, a.data(), a.size(), true);
    bool verdict = false;
    // Same hash, different defects: must MISS, not replay a's verdict.
    EXPECT_FALSE(cache.lookup(12345, b.data(), b.size(), verdict));
    EXPECT_TRUE(cache.lookup(12345, a.data(), a.size(), verdict));
    EXPECT_TRUE(verdict);
}

TEST(DecodePipeline, SyndromeCacheFlushesWhenFull)
{
    SyndromeCacheOptions options;
    options.tableLog2 = 3;     // 8 slots -> flush at 6 entries
    options.arenaCapacity = 64;
    SyndromeCache cache(options);
    bool verdict = false;
    for (int i = 0; i < 100; ++i) {
        std::vector<int> defects = {i, i + 1000};
        const uint64_t h =
            syndromeHash(defects.data(), defects.size());
        cache.insert(h, defects.data(), defects.size(), i & 1);
    }
    EXPECT_GT(cache.stats().flushes, 0u);
    // Still functional after flushes.
    std::vector<int> last = {99, 1099};
    const uint64_t h = syndromeHash(last.data(), last.size());
    EXPECT_TRUE(cache.lookup(h, last.data(), last.size(), verdict));
    EXPECT_TRUE(verdict);
}

TEST(DecodePipeline, CustomDecoderFactoryIsUsed)
{
    // The injection point the perf harness uses to run the frozen PR 1
    // decoders: the factory-built decoder must drive the verdicts.
    struct AlwaysFlip : Decoder
    {
        bool
        decodeSparse(const int *, size_t,
                     DecodeWorkspace &) const override
        {
            return true;   // predict "flip" even for empty syndromes
        }
    };

    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 3;
    cfg.shots = 50;
    cfg.seed = 5;
    cfg.em = ErrorModel::noiseless();
    cfg.batchWidth = 1;   // scalar path also goes through decoder_
    MemoryExperiment exp(code, cfg,
                         [](const DetectorModel &, double) {
                             return std::make_unique<AlwaysFlip>();
                         });
    // Noiseless shots never flip the observable, so a decoder that
    // always predicts a flip is wrong on every shot.
    auto result = exp.run(PolicyKind::Never);
    EXPECT_EQ(result.logicalErrors, cfg.shots);
}

} // namespace
} // namespace qec
