/**
 * @file
 * RTL generator and resource-model tests: structural well-formedness
 * of the emitted SystemVerilog and Table-3-shaped utilization scaling.
 */

#include <gtest/gtest.h>

#include <string>

#include "code/rotated_surface_code.h"
#include "rtl/timing_model.h"
#include "rtl/verilog_gen.h"

namespace qec
{
namespace
{

int
countOccurrences(const std::string &text, const std::string &needle)
{
    int n = 0;
    size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
        ++n;
        pos += needle.size();
    }
    return n;
}

class RtlSweep : public ::testing::TestWithParam<int>
{
  protected:
    RtlSweep() : code_(GetParam()), rtl_(generateEraserRtl(code_)) {}

    RotatedSurfaceCode code_;
    std::string rtl_;
};

TEST_P(RtlSweep, ModuleIsBalanced)
{
    EXPECT_EQ(countOccurrences(rtl_, "module eraser_d"), 1);
    EXPECT_EQ(countOccurrences(rtl_, "endmodule"), 1);
    EXPECT_EQ(countOccurrences(rtl_, "always_ff"), 3);
}

TEST_P(RtlSweep, PortWidthsMatchCode)
{
    const int ns = code_.numStabilizers();
    const int nd = code_.numData();
    EXPECT_NE(rtl_.find("[" + std::to_string(ns - 1) +
                        ":0] syndrome_event"),
              std::string::npos);
    EXPECT_NE(rtl_.find("[" + std::to_string(nd - 1) +
                        ":0] lrc_grant"),
              std::string::npos);
    EXPECT_NE(rtl_.find("[" + std::to_string(ns - 1) +
                        ":0] parity_select"),
              std::string::npos);
}

TEST_P(RtlSweep, OneDetectorPerDataQubit)
{
    EXPECT_EQ(countOccurrences(rtl_, "assign detect["),
              code_.numData());
    EXPECT_EQ(countOccurrences(rtl_, "assign flip_count["),
              code_.numData());
    // Declaration, assign, grant-OR and claim-vector use.
    EXPECT_EQ(countOccurrences(rtl_, "use_pri_"), 4 * code_.numData());
}

TEST_P(RtlSweep, BaseVariantHasNoMultiLevelPort)
{
    EXPECT_EQ(rtl_.find("parity_leak_label"), std::string::npos);
    RtlOptions opts;
    opts.multiLevel = true;
    const std::string rtl_m = generateEraserRtl(code_, opts);
    EXPECT_NE(rtl_m.find("parity_leak_label"), std::string::npos);
    EXPECT_GT(rtl_m.size(), rtl_.size());
}

TEST_P(RtlSweep, ResourceEstimateShapedLikeTable3)
{
    const ResourceEstimate est = estimateResources(code_);
    EXPECT_GT(est.luts, 0);
    EXPECT_GT(est.ffs, 0);
    // Table 3: even d=11 stays below ~1% on the xcku3p.
    EXPECT_LT(est.lutPercent, 1.5);
    EXPECT_LT(est.ffPercent, 1.0);
    // The paper reports 5 ns worst-case latency.
    EXPECT_LT(est.critPathNs, 7.0);
    EXPECT_GT(est.critPathNs, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Distances, RtlSweep,
                         ::testing::Values(3, 5, 7, 9, 11));

TEST(Rtl, UtilizationGrowsQuadratically)
{
    RotatedSurfaceCode d3(3);
    RotatedSurfaceCode d7(7);
    RotatedSurfaceCode d11(11);
    const auto e3 = estimateResources(d3);
    const auto e7 = estimateResources(d7);
    const auto e11 = estimateResources(d11);
    EXPECT_LT(e3.luts, e7.luts);
    EXPECT_LT(e7.luts, e11.luts);
    // LUTs scale roughly with d^2 (Table 3's trend).
    const double r73 = (double)e7.luts / e3.luts;
    EXPECT_NEAR(r73, 49.0 / 9.0, 1.5);
    EXPECT_LT(e3.critPathNs, e11.critPathNs + 1e-9);
}

TEST(Rtl, MultiLevelVariantCostsMore)
{
    RotatedSurfaceCode code(7);
    RtlOptions opts;
    opts.multiLevel = true;
    EXPECT_GT(estimateResources(code, opts).luts,
              estimateResources(code).luts);
}

TEST(Timing, DecisionWindowMatchesFig12)
{
    // Four 30 ns CNOT layers leave the paper's ~120 ns window.
    RotatedSurfaceCode code(7);
    const RoundTiming t = analyzeRoundTiming(code);
    EXPECT_NEAR(t.decisionWindowNs, 120.0, 1e-9);
    // The 5 ns speculation estimate fits with a wide margin.
    EXPECT_LT(estimateResources(code).critPathNs,
              t.decisionWindowNs / 10.0);
}

TEST(Timing, LrcRoundIsLongerThanPlainRound)
{
    RotatedSurfaceCode code(5);
    const RoundTiming t = analyzeRoundTiming(code);
    EXPECT_GT(t.roundNs, 0.0);
    // Five extra serial CNOTs plus the mid-round data measurement.
    EXPECT_GT(t.lrcRoundNs, t.roundNs + 4 * 30.0);
}

TEST(Timing, RoundDurationIndependentOfDistance)
{
    // Syndrome extraction is constant depth: the round time must not
    // grow with d (all stabilizers operate in parallel).
    RotatedSurfaceCode d3(3);
    RotatedSurfaceCode d11(11);
    EXPECT_NEAR(analyzeRoundTiming(d3).roundNs,
                analyzeRoundTiming(d11).roundNs, 1e-9);
}

TEST(Timing, MakespanRespectsQubitSerialization)
{
    // Two CNOTs sharing a qubit serialize; disjoint ones do not.
    std::vector<Op> serial(2);
    serial[0].type = OpType::Cnot;
    serial[0].q0 = 0;
    serial[0].q1 = 1;
    serial[1].type = OpType::Cnot;
    serial[1].q0 = 1;
    serial[1].q1 = 2;
    EXPECT_NEAR(scheduleMakespanNs(serial, 4), 60.0, 1e-9);

    std::vector<Op> parallel = serial;
    parallel[1].q0 = 2;
    parallel[1].q1 = 3;
    EXPECT_NEAR(scheduleMakespanNs(parallel, 4), 30.0, 1e-9);
}

TEST(Rtl, GeneratedHeaderNamesDistance)
{
    RotatedSurfaceCode code(9);
    const std::string rtl = generateEraserRtl(code);
    EXPECT_NE(rtl.find("module eraser_d9"), std::string::npos);
    EXPECT_NE(rtl.find("distance 9"), std::string::npos);
}

} // namespace
} // namespace qec
