/**
 * @file
 * Tests for the extension features built on the paper's future-work
 * directions: evidence-accumulating speculation (lower FNR than base
 * ERASER on single-flip leakage) and post-processing rejection (the
 * prior-work contrast of Section 7.1).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/evidence_policy.h"
#include "exp/postselection.h"

namespace qec
{
namespace
{

RoundObservation
quiet(const RotatedSurfaceCode &code, int round)
{
    RoundObservation obs;
    obs.round = round;
    obs.events.assign(code.numStabilizers(), 0);
    obs.leakedLabels.assign(code.numStabilizers(), 0);
    obs.hadLrc.assign(code.numData(), 0);
    obs.trueLeakedData.assign(code.numData(), 0);
    return obs;
}

class EvidenceFixture : public ::testing::Test
{
  protected:
    EvidenceFixture() : code_(5), lookup_(code_) {}

    RotatedSurfaceCode code_;
    SwapLookupTable lookup_;
};

TEST_F(EvidenceFixture, QuietStaysIdle)
{
    EvidenceEraserPolicy policy(code_, lookup_);
    for (int r = 0; r < 6; ++r)
        EXPECT_TRUE(policy.nextRound(quiet(code_, r)).empty());
}

TEST_F(EvidenceFixture, DoubleFlipFiresImmediately)
{
    EvidenceEraserPolicy policy(code_, lookup_);
    const int q = code_.dataId(2, 2);
    auto obs = quiet(code_, 0);
    obs.events[code_.stabilizersOfData(q)[0]] = 1;
    obs.events[code_.stabilizersOfData(q)[1]] = 1;
    auto lrcs = policy.nextRound(obs);
    bool found = false;
    for (const auto &pair : lrcs)
        found |= pair.data == q;
    EXPECT_TRUE(found);
}

TEST_F(EvidenceFixture, SingleFlipsAccumulateAcrossRounds)
{
    // The case base ERASER can never catch (Section 6.4.2): one
    // neighbouring check flipping per round.
    EvidenceEraserPolicy policy(code_, lookup_);
    const int q = code_.dataId(2, 2);
    const int s = code_.stabilizersOfData(q)[0];

    auto obs = quiet(code_, 0);
    obs.events[s] = 1;
    EXPECT_EQ(policy.nextRound(obs).size(), 0u);
    EXPECT_EQ(policy.evidence(q), 1);

    auto obs2 = quiet(code_, 1);
    obs2.events[s] = 1;
    auto lrcs = policy.nextRound(obs2);
    bool found = false;
    for (const auto &pair : lrcs)
        found |= pair.data == q;
    EXPECT_TRUE(found);
    EXPECT_EQ(policy.evidence(q), 0);   // reset once scheduled
}

TEST_F(EvidenceFixture, EvidenceDecaysWhenQuiet)
{
    EvidenceEraserPolicy policy(code_, lookup_);
    const int q = code_.dataId(2, 2);
    auto obs = quiet(code_, 0);
    obs.events[code_.stabilizersOfData(q)[0]] = 1;
    policy.nextRound(obs);
    EXPECT_EQ(policy.evidence(q), 1);
    policy.nextRound(quiet(code_, 1));
    EXPECT_EQ(policy.evidence(q), 0);
    // A later single flip no longer fires.
    auto obs2 = quiet(code_, 2);
    obs2.events[code_.stabilizersOfData(q)[0]] = 1;
    EXPECT_TRUE(policy.nextRound(obs2).empty());
}

TEST_F(EvidenceFixture, LrcResetsEvidence)
{
    EvidenceEraserPolicy policy(code_, lookup_);
    const int q = code_.dataId(2, 2);
    auto obs = quiet(code_, 0);
    obs.events[code_.stabilizersOfData(q)[0]] = 1;
    policy.nextRound(obs);

    auto obs2 = quiet(code_, 1);
    obs2.hadLrc[q] = 1;
    obs2.events[code_.stabilizersOfData(q)[0]] = 1;   // echo
    // The echo may legitimately implicate the stabilizer's *other*
    // data qubits; the freshly cleaned one must not fire.
    for (const auto &pair : policy.nextRound(obs2))
        EXPECT_NE(pair.data, q);
    EXPECT_EQ(policy.evidence(q), 0);
}

TEST_F(EvidenceFixture, SaturationBounded)
{
    EvidenceOptions options;
    options.saturate = 3;
    options.fireThreshold = 10;   // never fire, to watch the counter
    EvidenceEraserPolicy policy(code_, lookup_, options);
    const int q = code_.dataId(2, 2);
    for (int r = 0; r < 6; ++r) {
        auto obs = quiet(code_, r);
        for (int s : code_.stabilizersOfData(q))
            obs.events[s] = 1;
        policy.nextRound(obs);
    }
    EXPECT_EQ(policy.evidence(q), 3);
}

TEST_F(EvidenceFixture, LowersFalseNegativesVsBaseEraser)
{
    ExperimentConfig cfg;
    cfg.rounds = 30;
    cfg.shots = 600;
    cfg.seed = 91;
    cfg.decode = false;
    MemoryExperiment exp(code_, cfg);

    auto base = exp.run(PolicyKind::Eraser);
    auto evidence = exp.run(
        [this]() {
            return std::make_unique<EvidenceEraserPolicy>(code_,
                                                          lookup_);
        },
        "ERASER+EV");
    EXPECT_LT(evidence.falseNegativeRate(), base.falseNegativeRate());
    // The price: somewhat more LRCs, but nowhere near Always-LRCs.
    EXPECT_LT(evidence.avgLrcsPerRound(),
              code_.numStabilizers() / 4.0);
}

TEST(PostSelection, CleanRunsKeepEverything)
{
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 8;
    cfg.shots = 300;
    cfg.seed = 92;
    cfg.em = ErrorModel::noiseless();
    auto result = runPostSelectedExperiment(code, cfg);
    EXPECT_EQ(result.kept, result.shots);
    EXPECT_EQ(result.logicalErrorsAll, 0u);
}

TEST(PostSelection, DiscardsLeakyShotsAndImprovesLer)
{
    RotatedSurfaceCode code(5);
    ExperimentConfig cfg;
    cfg.rounds = 30;
    cfg.shots = 1200;
    cfg.seed = 93;
    cfg.em = ErrorModel::standard(1e-3);
    auto result = runPostSelectedExperiment(code, cfg);
    EXPECT_LT(result.kept, result.shots);   // something was rejected
    EXPECT_GT(result.keptFraction(), 0.1);  // but not everything
    EXPECT_LT(result.lerKept(), result.lerAll());
}

TEST(PostSelection, BatchedWidth1MatchesScalarExactly)
{
    // The W=1 batch engine delegates to the scalar simulator shot for
    // shot, so the batched suspicion scan + decode pipeline must
    // reproduce the scalar path's kept counts and logical errors
    // exactly, draw for draw.
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 12;
    cfg.shots = 120;
    cfg.seed = 95;
    cfg.em = ErrorModel::standard(2e-3);

    auto scalar = runPostSelectedExperiment(code, cfg);
    cfg.batchWidth = 1;
    auto batched = runPostSelectedExperimentBatched(code, cfg);
    EXPECT_EQ(batched.shots, scalar.shots);
    EXPECT_EQ(batched.kept, scalar.kept);
    EXPECT_EQ(batched.logicalErrorsAll, scalar.logicalErrorsAll);
    EXPECT_EQ(batched.logicalErrorsKept, scalar.logicalErrorsKept);
}

TEST(PostSelection, BatchedW64AgreesStatistically)
{
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 15;
    cfg.shots = 1500;
    cfg.seed = 96;
    cfg.em = ErrorModel::standard(2e-3);

    auto scalar = runPostSelectedExperiment(code, cfg);
    cfg.batchWidth = 64;
    auto batched = runPostSelectedExperiment(code, cfg);

    EXPECT_EQ(batched.shots, scalar.shots);
    EXPECT_NEAR(batched.keptFraction(), scalar.keptFraction(), 0.06);
    EXPECT_NEAR(batched.lerAll(), scalar.lerAll(),
                5.0 * std::sqrt(scalar.lerAll() *
                                (1.0 - scalar.lerAll()) /
                                (double)cfg.shots) +
                    1e-3);
}

TEST(PostSelection, ThresholdControlsRejectionRate)
{
    RotatedSurfaceCode code(3);
    ExperimentConfig cfg;
    cfg.rounds = 20;
    cfg.shots = 500;
    cfg.seed = 94;

    PostSelectOptions strict;
    strict.eventThreshold = 2;
    PostSelectOptions loose;
    loose.eventThreshold = 4;
    auto strict_r = runPostSelectedExperiment(code, cfg, strict);
    auto loose_r = runPostSelectedExperiment(code, cfg, loose);
    EXPECT_LE(strict_r.kept, loose_r.kept);
}

} // namespace
} // namespace qec
