/**
 * @file
 * Full-stack statistical tests reproducing the paper's qualitative
 * claims on small configurations: leakage degrades the logical error
 * rate, LRC policies order as Never >> Always > ERASER >= Optimal on
 * leakage population, and the code suppresses errors with distance.
 * Margins are generous and seeds fixed to keep the suite stable.
 */

#include <gtest/gtest.h>

#include "exp/memory_experiment.h"

namespace qec
{
namespace
{

double
meanLateLpr(const ExperimentResult &r, int rounds)
{
    double total = 0.0;
    int n = 0;
    for (int round = rounds / 2; round < rounds; ++round) {
        total += r.lprTotal(round);
        ++n;
    }
    return total / n;
}

TEST(Integration, LerDecreasesWithDistanceWithoutLeakage)
{
    // Below threshold, larger codes suppress errors (Section 1).
    ExperimentConfig cfg;
    cfg.em = ErrorModel::withoutLeakage(3e-3);
    cfg.shots = 4000;
    cfg.seed = 77;

    cfg.rounds = 3;
    RotatedSurfaceCode d3(3);
    auto r3 = MemoryExperiment(d3, cfg).run(PolicyKind::Never);

    cfg.rounds = 5;
    RotatedSurfaceCode d5(5);
    auto r5 = MemoryExperiment(d5, cfg).run(PolicyKind::Never);

    EXPECT_GT(r3.logicalErrors, 10u) << "test lacks statistics";
    EXPECT_LT(r5.ler(), r3.ler());
}

TEST(Integration, LeakageDegradesLer)
{
    // Fig. 2(c): leakage sharply increases the logical error rate.
    ExperimentConfig cfg;
    cfg.rounds = 10;
    cfg.shots = 2500;
    cfg.seed = 78;
    RotatedSurfaceCode code(5);

    cfg.em = ErrorModel::withoutLeakage(1e-3);
    auto clean = MemoryExperiment(code, cfg).run(PolicyKind::Never);
    cfg.em = ErrorModel::standard(1e-3);
    auto leaky = MemoryExperiment(code, cfg).run(PolicyKind::Never);

    EXPECT_GT(leaky.ler(), 2.0 * clean.ler() + 0.001);
}

TEST(Integration, AlwaysLrcsBoundLeakagePopulation)
{
    // Fig. 5/6: without LRCs the LPR grows without bound; Always-LRCs
    // caps it.
    ExperimentConfig cfg;
    cfg.rounds = 30;
    cfg.shots = 600;
    cfg.seed = 79;
    cfg.decode = false;
    cfg.trackLpr = true;
    RotatedSurfaceCode code(5);
    MemoryExperiment exp(code, cfg);

    auto never = exp.run(PolicyKind::Never);
    auto always = exp.run(PolicyKind::Always);
    EXPECT_GT(meanLateLpr(never, cfg.rounds),
              2.0 * meanLateLpr(always, cfg.rounds));
}

TEST(Integration, EraserKeepsLprBelowAlways)
{
    // Fig. 15: ERASER maintains a lower leakage population than
    // Always-LRCs (fewer transport-carrying operations).
    ExperimentConfig cfg;
    cfg.rounds = 30;
    cfg.shots = 800;
    cfg.seed = 80;
    cfg.decode = false;
    cfg.trackLpr = true;
    RotatedSurfaceCode code(5);
    MemoryExperiment exp(code, cfg);

    auto always = exp.run(PolicyKind::Always);
    auto eraser = exp.run(PolicyKind::Eraser);
    auto optimal = exp.run(PolicyKind::Optimal);

    EXPECT_LT(meanLateLpr(eraser, cfg.rounds),
              meanLateLpr(always, cfg.rounds));
    EXPECT_LE(meanLateLpr(optimal, cfg.rounds),
              meanLateLpr(eraser, cfg.rounds) * 1.1);
}

TEST(Integration, SpeculationAccuracyOrdering)
{
    // Fig. 16: ERASER ~97%, Always ~50%, Optimal ~100%.
    ExperimentConfig cfg;
    cfg.rounds = 20;
    cfg.shots = 400;
    cfg.seed = 81;
    cfg.decode = false;
    RotatedSurfaceCode code(5);
    MemoryExperiment exp(code, cfg);

    auto always = exp.run(PolicyKind::Always);
    auto eraser = exp.run(PolicyKind::Eraser);
    auto optimal = exp.run(PolicyKind::Optimal);

    EXPECT_NEAR(always.speculationAccuracy(), 0.5, 0.05);
    EXPECT_GT(eraser.speculationAccuracy(), 0.9);
    EXPECT_GT(optimal.speculationAccuracy(), eraser.speculationAccuracy());
    EXPECT_LT(eraser.falsePositiveRate(),
              always.falsePositiveRate() / 5.0);
}

TEST(Integration, EraserSchedulesFarFewerLrcsThanAlways)
{
    // Table 4: an order of magnitude fewer LRCs.
    ExperimentConfig cfg;
    cfg.rounds = 20;
    cfg.shots = 400;
    cfg.seed = 82;
    cfg.decode = false;
    RotatedSurfaceCode code(5);
    MemoryExperiment exp(code, cfg);

    auto always = exp.run(PolicyKind::Always);
    auto eraser = exp.run(PolicyKind::Eraser);
    auto optimal = exp.run(PolicyKind::Optimal);

    EXPECT_LT(eraser.avgLrcsPerRound(), always.avgLrcsPerRound() / 4.0);
    EXPECT_LT(optimal.avgLrcsPerRound(), eraser.avgLrcsPerRound());
    EXPECT_GT(eraser.avgLrcsPerRound(), optimal.avgLrcsPerRound());
}

TEST(Integration, EraserMImprovesFalseNegatives)
{
    // Section 6.4.2: multi-level readout lowers the FNR.
    ExperimentConfig cfg;
    cfg.rounds = 20;
    cfg.shots = 700;
    cfg.seed = 83;
    cfg.decode = false;
    RotatedSurfaceCode code(5);
    MemoryExperiment exp(code, cfg);

    auto eraser = exp.run(PolicyKind::Eraser);
    auto eraser_m = exp.run(PolicyKind::EraserM);
    EXPECT_LT(eraser_m.falseNegativeRate(),
              eraser.falseNegativeRate());
}

TEST(Integration, LerPolicyOrdering)
{
    // Fig. 14's qualitative ordering once leakage has time to
    // accumulate: No-LRC is the worst, ERASER does not lose to
    // Always-LRCs, Optimal is the best. (At very small distances and
    // few rounds the LRC overhead can outweigh the leakage it removes
    // — the crossover the paper's motivation hinges on.)
    ExperimentConfig cfg;
    cfg.rounds = 50;
    cfg.shots = 1500;
    cfg.seed = 84;
    RotatedSurfaceCode code(5);
    MemoryExperiment exp(code, cfg);

    auto never = exp.run(PolicyKind::Never);
    auto always = exp.run(PolicyKind::Always);
    auto eraser = exp.run(PolicyKind::Eraser);
    auto optimal = exp.run(PolicyKind::Optimal);

    EXPECT_GT(never.ler(), always.ler());
    EXPECT_LT(eraser.ler(), always.ler() * 1.25);
    EXPECT_LE(optimal.ler(), eraser.ler() * 1.25);
    EXPECT_LT(optimal.ler(), never.ler());
}

TEST(Integration, AlternativeTransportImprovesEveryPolicy)
{
    // Appendix A.1: the exchange model leaks less overall.
    ExperimentConfig cfg;
    cfg.rounds = 20;
    cfg.shots = 500;
    cfg.seed = 85;
    cfg.decode = false;
    cfg.trackLpr = true;
    RotatedSurfaceCode code(5);

    auto conservative =
        MemoryExperiment(code, cfg).run(PolicyKind::Always);
    cfg.em.transport = TransportModel::Exchange;
    auto exchange =
        MemoryExperiment(code, cfg).run(PolicyKind::Always);
    EXPECT_LT(meanLateLpr(exchange, cfg.rounds),
              meanLateLpr(conservative, cfg.rounds));
}

TEST(Integration, DqlrStabilizesLpr)
{
    // Fig. 21: DQLR keeps the LPR flat and low.
    ExperimentConfig cfg;
    cfg.rounds = 24;
    cfg.shots = 500;
    cfg.seed = 86;
    cfg.decode = false;
    cfg.trackLpr = true;
    cfg.protocol = RemovalProtocol::Dqlr;
    cfg.em.transport = TransportModel::Exchange;
    RotatedSurfaceCode code(5);
    MemoryExperiment exp(code, cfg);

    auto dqlr = exp.run(PolicyKind::Always);
    const double early = dqlr.lprTotal(4);
    const double late = meanLateLpr(dqlr, cfg.rounds);
    EXPECT_LT(late, 3.0 * (early + 1e-4));
    EXPECT_LT(late, 0.01);
}

} // namespace
} // namespace qec
