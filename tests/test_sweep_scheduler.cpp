/**
 * @file
 * Cross-point sweep scheduler tests: bit-identity against the
 * sequential SweepRunner at several worker counts and widths (with
 * and without early stopping), worker-count-invariant budget
 * truncation, multi-point checkpoint crash/resume (including
 * cross-mode: scheduled checkpoint resumed sequentially and vice
 * versa), and retry/quarantine of a faulting point while the other
 * points keep running.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <unistd.h>

#include "base/fault_injection.h"
#include "exp/checkpoint.h"
#include "exp/sweep_runner.h"

namespace qec
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "qec_sched_" +
           std::to_string((unsigned long)::getpid()) + "_" + name;
}

/** Multi-point decoded plan whose sessions stop early at a Wilson
 *  precision target — the adaptive-allocation regime. */
SweepPlan
precisionPlan(unsigned width)
{
    SweepPlan plan;
    plan.name = "sched_precision_w" + std::to_string(width);
    plan.distances = {3};
    plan.ps = {2e-3, 3e-3, 4e-3};
    plan.rounds = {SweepRounds::exactly(6)};
    plan.policies = {SweepPolicy(PolicyKind::Always),
                     SweepPolicy(PolicyKind::Eraser)};
    plan.base.shots = 6000;
    plan.base.batchWidth = width;
    plan.base.threads = 1;
    plan.earlyStop.targetRelPrecision = 0.5;
    plan.earlyStop.minErrors = 4;
    plan.earlyStop.checkEvery = 256;
    return plan;
}

/** Fixed-shot plan chunked at checkEvery boundaries (maxShots ==
 *  shots enables the chunking machinery without changing results). */
SweepPlan
fixedPlan(unsigned width, uint64_t shots)
{
    SweepPlan plan;
    plan.name = "sched_fixed_w" + std::to_string(width);
    plan.distances = {3};
    plan.ps = {2e-3, 3e-3, 4e-3};
    plan.rounds = {SweepRounds::exactly(6)};
    plan.policies = {SweepPolicy(PolicyKind::Always),
                     SweepPolicy(PolicyKind::Eraser)};
    plan.base.shots = shots;
    plan.base.batchWidth = width;
    plan.base.threads = 1;
    plan.earlyStop.maxShots = shots;
    plan.earlyStop.checkEvery = 128;
    return plan;
}

void
expectResultIdentical(const ExperimentResult &a,
                      const ExperimentResult &b)
{
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.shots, b.shots);
    EXPECT_EQ(a.logicalErrors, b.logicalErrors);
    EXPECT_EQ(a.verdictFingerprint, b.verdictFingerprint);
    EXPECT_EQ(a.tp, b.tp);
    EXPECT_EQ(a.fp, b.fp);
    EXPECT_EQ(a.tn, b.tn);
    EXPECT_EQ(a.fn, b.fn);
    EXPECT_EQ(a.lrcsScheduled, b.lrcsScheduled);
    EXPECT_EQ(a.roundsTotal, b.roundsTotal);
    // Slot assignment (and so the cache-hit / decoded split) is
    // execution-order dependent; the total decode disposition is not.
    EXPECT_EQ(a.decodedShots + a.zeroDefectShots + a.syndromeCacheHits,
              b.decodedShots + b.zeroDefectShots +
                  b.syndromeCacheHits);
    ASSERT_EQ(a.lprDataSum.size(), b.lprDataSum.size());
    for (size_t r = 0; r < a.lprDataSum.size(); ++r) {
        EXPECT_EQ(a.lprDataSum[r], b.lprDataSum[r]) << "round " << r;
        EXPECT_EQ(a.lprParitySum[r], b.lprParitySum[r])
            << "round " << r;
    }
}

void
expectPointsIdentical(const std::vector<PointResult> &a,
                      const std::vector<PointResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].point.index, b[i].point.index);
        EXPECT_EQ(a[i].point.seed, b[i].point.seed);
        ASSERT_EQ(a[i].results.size(), b[i].results.size());
        ASSERT_EQ(a[i].stoppedEarly.size(), b[i].stoppedEarly.size());
        for (size_t j = 0; j < a[i].results.size(); ++j) {
            expectResultIdentical(a[i].results[j], b[i].results[j]);
            EXPECT_EQ(a[i].stoppedEarly[j], b[i].stoppedEarly[j])
                << "point " << i << " policy " << j;
        }
    }
}

class SweepSchedulerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::reset();
    }
    void
    TearDown() override
    {
        fault::reset();
    }
};

TEST_F(SweepSchedulerTest,
       EarlyStopResultsAreBitIdenticalToSequentialAtAnyWorkerCount)
{
    for (unsigned width : {64u, 256u, 512u}) {
        const SweepPlan plan = precisionPlan(width);

        SweepRunner seq_runner(plan);
        CollectSink seq;
        seq_runner.addSink(seq);
        const SweepSummary seq_summary =
            seq_runner.run(SweepRunOptions());
        ASSERT_TRUE(seq_summary.status.isOk());
        ASSERT_EQ(seq.points.size(), 3u);

        for (unsigned workers : {1u, 2u, 8u}) {
            SweepRunOptions options;
            options.schedule = true;
            options.workers = workers;
            SweepRunner runner(plan);
            CollectSink sched;
            runner.addSink(sched);
            const SweepSummary summary = runner.run(options);
            ASSERT_TRUE(summary.status.isOk())
                << summary.status.toString();
            EXPECT_TRUE(summary.scheduled);
            EXPECT_EQ(summary.workersUsed, workers);
            EXPECT_GT(summary.schedulerRounds, 0u);
            EXPECT_GT(summary.chunksDispatched, 0u);
            EXPECT_EQ(summary.shotsRun, seq_summary.shotsRun)
                << "width " << width << " workers " << workers;
            expectPointsIdentical(sched.points, seq.points);
        }
    }
}

TEST_F(SweepSchedulerTest, FixedShotResultsMatchSequential)
{
    const SweepPlan plan = fixedPlan(64, 1024);

    SweepRunner seq_runner(plan);
    CollectSink seq;
    seq_runner.addSink(seq);
    const SweepSummary seq_summary = seq_runner.run(SweepRunOptions());
    ASSERT_TRUE(seq_summary.status.isOk());

    // The commit-order chunk poll must see exactly the chunk sequence
    // the sequential runner executes — count it on both sides.
    fault::reset();
    fault::countHits();
    {
        SweepRunner r(plan);
        CollectSink c;
        r.addSink(c);
        r.run(SweepRunOptions());
    }
    const uint64_t seq_polls = fault::hits("sweep.chunk");
    fault::reset();
    fault::countHits();

    SweepRunOptions options;
    options.schedule = true;
    options.workers = 2;
    SweepRunner runner(plan);
    CollectSink sched;
    runner.addSink(sched);
    const SweepSummary summary = runner.run(options);
    ASSERT_TRUE(summary.status.isOk());
    EXPECT_EQ(fault::hits("sweep.chunk"), seq_polls);
    EXPECT_EQ(summary.shotsRun, seq_summary.shotsRun);
    EXPECT_EQ(summary.shotsDiscarded, 0u);
    expectPointsIdentical(sched.points, seq.points);
}

TEST_F(SweepSchedulerTest, NarrowAdmissionWindowDoesNotChangeResults)
{
    const SweepPlan plan = precisionPlan(64);
    SweepRunner seq_runner(plan);
    CollectSink seq;
    seq_runner.addSink(seq);
    seq_runner.run(SweepRunOptions());

    SweepRunOptions options;
    options.schedule = true;
    options.workers = 2;
    options.maxLivePoints = 1;
    SweepRunner runner(plan);
    CollectSink sched;
    runner.addSink(sched);
    const SweepSummary summary = runner.run(options);
    ASSERT_TRUE(summary.status.isOk());
    expectPointsIdentical(sched.points, seq.points);
}

TEST_F(SweepSchedulerTest,
       BudgetTruncationIsIdenticalAcrossWorkerCounts)
{
    const SweepPlan plan = fixedPlan(64, 2048);

    std::vector<PointResult> reference;
    SweepSummary ref_summary;
    for (unsigned workers : {1u, 2u, 8u}) {
        SweepRunOptions options;
        options.schedule = true;
        options.workers = workers;
        options.maxTotalShots = 4000;   // < 3 * 2 * 2048 planned
        SweepRunner runner(plan);
        CollectSink sched;
        runner.addSink(sched);
        const SweepSummary summary = runner.run(options);
        ASSERT_TRUE(summary.status.isOk());
        EXPECT_TRUE(summary.truncated);
        EXPECT_TRUE(summary.budgetExhausted);
        if (workers == 1u) {
            reference = sched.points;
            ref_summary = summary;
            // Budget accounting is committed shots: the overshoot is
            // bounded by the chunks of one allocation round.
            EXPECT_GE(summary.shotsRun + 1, 1u);
        } else {
            EXPECT_EQ(summary.shotsRun, ref_summary.shotsRun);
            EXPECT_EQ(summary.points, ref_summary.points);
            expectPointsIdentical(sched.points, reference);
        }
    }
}

TEST_F(SweepSchedulerTest, SequentialBudgetTruncatesDeterministically)
{
    const SweepPlan plan = fixedPlan(64, 2048);
    SweepRunOptions options;
    options.maxTotalShots = 3000;
    uint64_t shots[2];
    for (int i = 0; i < 2; ++i) {
        SweepRunner runner(plan);
        CollectSink sink;
        runner.addSink(sink);
        const SweepSummary summary = runner.run(options);
        ASSERT_TRUE(summary.status.isOk());
        EXPECT_TRUE(summary.truncated);
        EXPECT_TRUE(summary.budgetExhausted);
        // Committed shots overshoot the budget by at most one chunk.
        EXPECT_LT(summary.shotsRun,
                  options.maxTotalShots + plan.earlyStop.checkEvery +
                      plan.base.batchWidth);
        shots[i] = summary.shotsRun;
    }
    EXPECT_EQ(shots[0], shots[1]);
}

TEST_F(SweepSchedulerTest, CrashLeavesMultiPointCheckpointAndResumes)
{
    if (!fault::compiledIn())
        GTEST_SKIP() << "fault injection compiled out";
    const SweepPlan plan = fixedPlan(64, 1024);

    SweepRunner clean_runner(plan);
    CollectSink clean;
    clean_runner.addSink(clean);
    clean_runner.run(SweepRunOptions());

    // Learn the committed-chunk count, then crash mid-sweep.
    fault::countHits();
    {
        SweepRunOptions options;
        options.schedule = true;
        options.workers = 2;
        SweepRunner r(plan);
        CollectSink c;
        r.addSink(c);
        r.run(options);
    }
    const uint64_t total_chunks = fault::hits("sweep.chunk");
    ASSERT_GT(total_chunks, 4u);
    fault::reset();

    for (unsigned resume_workers : {2u, 8u}) {
        const std::string path = tempPath(
            "crash_resume_" + std::to_string(resume_workers) +
            ".ckpt");
        std::remove(path.c_str());

        SweepRunOptions options;
        options.schedule = true;
        options.workers = 2;
        options.checkpoint.path = path;

        fault::arm("sweep.chunk", total_chunks / 2, fault::Kind::Crash);
        bool crashed = false;
        try {
            SweepRunner r(plan);
            CollectSink c;
            r.addSink(c);
            r.run(options);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        fault::reset();
        ASSERT_TRUE(crashed);

        // The mid-sweep checkpoint carries a SET of in-flight points.
        StatusOr<SweepCheckpoint> loaded = SweepCheckpoint::load(path);
        ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
        size_t unfinished = 0;
        for (const auto &kv : loaded.value().points)
            if (!kv.second.finished)
                ++unfinished;
        EXPECT_GE(unfinished, 2u)
            << "expected multiple in-flight points at the crash";

        SweepRunOptions resume = options;
        resume.workers = resume_workers;
        SweepRunner r(plan);
        CollectSink resumed;
        r.addSink(resumed);
        const SweepSummary summary = r.run(resume);
        ASSERT_TRUE(summary.status.isOk());
        EXPECT_TRUE(summary.resumed);
        expectPointsIdentical(resumed.points, clean.points);
        std::remove(path.c_str());
    }
}

TEST_F(SweepSchedulerTest, CheckpointsResumeAcrossExecutionModes)
{
    if (!fault::compiledIn())
        GTEST_SKIP() << "fault injection compiled out";
    const SweepPlan plan = fixedPlan(64, 1024);

    SweepRunner clean_runner(plan);
    CollectSink clean;
    clean_runner.addSink(clean);
    clean_runner.run(SweepRunOptions());

    fault::countHits();
    {
        SweepRunner r(plan);
        CollectSink c;
        r.addSink(c);
        r.run(SweepRunOptions());
    }
    const uint64_t total_chunks = fault::hits("sweep.chunk");
    fault::reset();

    // Crash a SCHEDULED run, resume SEQUENTIALLY — and the reverse.
    for (int sched_first = 0; sched_first < 2; ++sched_first) {
        const std::string path = tempPath(
            "cross_mode_" + std::to_string(sched_first) + ".ckpt");
        std::remove(path.c_str());

        SweepRunOptions crash_options;
        crash_options.checkpoint.path = path;
        crash_options.schedule = sched_first == 0;
        crash_options.workers = 2;

        fault::arm("sweep.chunk", total_chunks / 2, fault::Kind::Crash);
        bool crashed = false;
        try {
            SweepRunner r(plan);
            CollectSink c;
            r.addSink(c);
            r.run(crash_options);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        fault::reset();
        ASSERT_TRUE(crashed);

        SweepRunOptions resume_options;
        resume_options.checkpoint.path = path;
        resume_options.schedule = sched_first != 0;
        resume_options.workers = 2;
        SweepRunner r(plan);
        CollectSink resumed;
        r.addSink(resumed);
        const SweepSummary summary = r.run(resume_options);
        ASSERT_TRUE(summary.status.isOk());
        EXPECT_TRUE(summary.resumed);
        expectPointsIdentical(resumed.points, clean.points);
        std::remove(path.c_str());
    }
}

TEST_F(SweepSchedulerTest, FaultingPointRetriesWithoutChangingResults)
{
    if (!fault::compiledIn())
        GTEST_SKIP() << "fault injection compiled out";
    const SweepPlan plan = fixedPlan(64, 1024);

    SweepRunner clean_runner(plan);
    CollectSink clean;
    clean_runner.addSink(clean);
    clean_runner.run(SweepRunOptions());

    SweepRunOptions options;
    options.schedule = true;
    options.workers = 2;
    options.maxPointAttempts = 2;
    options.retryBackoffSeconds = 0.0;

    fault::arm("sweep.chunk", 1, fault::Kind::ReturnError);
    SweepRunner runner(plan);
    CollectSink sched;
    runner.addSink(sched);
    const SweepSummary summary = runner.run(options);
    ASSERT_TRUE(summary.status.isOk());
    EXPECT_EQ(summary.retries, 1u);
    EXPECT_EQ(summary.pointsFailed, 0u);
    expectPointsIdentical(sched.points, clean.points);
}

TEST_F(SweepSchedulerTest, UnitFaultIsRetriedWhileOthersKeepRunning)
{
    if (!fault::compiledIn())
        GTEST_SKIP() << "fault injection compiled out";
    const SweepPlan plan = fixedPlan(64, 1024);

    SweepRunner clean_runner(plan);
    CollectSink clean;
    clean_runner.addSink(clean);
    clean_runner.run(SweepRunOptions());

    SweepRunOptions options;
    options.schedule = true;
    options.workers = 2;
    options.maxPointAttempts = 3;
    options.retryBackoffSeconds = 0.0;

    // An allocation failure inside a worker task: the pool never sees
    // the exception; the owning point retries from committed state.
    fault::arm("sweep.unit", 3, fault::Kind::ThrowBadAlloc);
    SweepRunner runner(plan);
    CollectSink sched;
    runner.addSink(sched);
    const SweepSummary summary = runner.run(options);
    ASSERT_TRUE(summary.status.isOk());
    EXPECT_EQ(summary.retries, 1u);
    EXPECT_EQ(summary.pointsFailed, 0u);
    expectPointsIdentical(sched.points, clean.points);
}

TEST_F(SweepSchedulerTest, QuarantinedPointDoesNotStopTheOthers)
{
    if (!fault::compiledIn())
        GTEST_SKIP() << "fault injection compiled out";
    const SweepPlan plan = fixedPlan(64, 1024);

    SweepRunner clean_runner(plan);
    CollectSink clean;
    clean_runner.addSink(clean);
    clean_runner.run(SweepRunOptions());
    ASSERT_EQ(clean.points.size(), 3u);

    SweepRunOptions options;
    options.schedule = true;
    options.workers = 2;
    options.maxPointAttempts = 1;
    options.retryBackoffSeconds = 0.0;

    // The first committed chunk belongs to the lowest-index live
    // point: quarantine it and keep sweeping.
    fault::arm("sweep.chunk", 1, fault::Kind::ReturnError);
    SweepRunner runner(plan);
    CollectSink sched;
    runner.addSink(sched);
    const SweepSummary summary = runner.run(options);
    ASSERT_TRUE(summary.status.isOk());
    EXPECT_EQ(summary.pointsFailed, 1u);
    EXPECT_EQ(summary.retries, 0u);
    ASSERT_EQ(summary.errors.size(), 1u);
    EXPECT_EQ(summary.errors[0].pointIndex, 0u);
    EXPECT_EQ(summary.errors[0].attempts, 1);
    ASSERT_EQ(sched.points.size(), 2u);
    for (const PointResult &pr : sched.points) {
        ASSERT_LT(pr.point.index, clean.points.size());
        const PointResult &ref = clean.points[pr.point.index];
        ASSERT_EQ(pr.results.size(), ref.results.size());
        for (size_t j = 0; j < pr.results.size(); ++j)
            expectResultIdentical(pr.results[j], ref.results[j]);
    }
}

TEST_F(SweepSchedulerTest, SummaryJsonCarriesSchedulerStats)
{
    const SweepPlan plan = fixedPlan(64, 512);
    const std::string path = tempPath("sched_stats.json");

    SweepRunOptions options;
    options.schedule = true;
    options.workers = 2;
    {
        SweepRunner runner(plan);
        JsonSink json(path);
        ASSERT_TRUE(json.ok());
        runner.addSink(json);
        const SweepSummary summary = runner.run(options);
        ASSERT_TRUE(summary.status.isOk());
        EXPECT_GE(summary.poolUtilization, 0.0);
        EXPECT_LE(summary.poolUtilization, 1.0);
    }

    FILE *in = std::fopen(path.c_str(), "r");
    ASSERT_NE(in, nullptr);
    std::string content;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0)
        content.append(buf, n);
    std::fclose(in);
    std::remove(path.c_str());

    for (const char *key :
         {"\"scheduled\": true", "\"workers\": 2",
          "\"scheduler_rounds\": ", "\"chunks_dispatched\": ",
          "\"shots_reallocated\": ", "\"shots_discarded\": ",
          "\"pool_utilization\": ", "\"budget_exhausted\": false",
          "\"wall_seconds\": "}) {
        EXPECT_NE(content.find(key), std::string::npos)
            << "missing " << key << " in:\n"
            << content;
    }
}

} // namespace
} // namespace qec
