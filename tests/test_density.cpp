/**
 * @file
 * Density-matrix substrate tests: channel validity, ququart gate truth
 * tables, and the qualitative claims of the Section 3.3 study (points
 * A, B, C of Fig. 8).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "density/channels.h"
#include "density/density_matrix.h"
#include "density/stabilizer_study.h"

namespace qec
{
namespace
{

TEST(Density, InitialStatePopulations)
{
    DensityMatrix rho({2, 0});
    EXPECT_NEAR(rho.population(0, 2), 1.0, 1e-12);
    EXPECT_NEAR(rho.population(1, 0), 1.0, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
    EXPECT_NEAR(rho.leakProbability(0), 1.0, 1e-12);
    EXPECT_NEAR(rho.leakProbability(1), 0.0, 1e-12);
}

TEST(Density, ChannelsAreTracePreserving)
{
    EXPECT_TRUE(isTracePreserving({cnotQuquart()}, 16));
    EXPECT_TRUE(isTracePreserving({leakTransportUnitary()}, 16));
    EXPECT_TRUE(isTracePreserving(leakTransportChannel(0.1), 16));
    EXPECT_TRUE(isTracePreserving({rxConditioned(0.65 * M_PI)}, 16));
    EXPECT_TRUE(isTracePreserving(leakInjectChannel(1e-3), 4));
    EXPECT_TRUE(isTracePreserving(seepChannel(1e-3), 4));
}

TEST(Density, CnotTruthTable)
{
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
            DensityMatrix rho({a, b});
            rho.applyUnitary2(0, 1, cnotQuquart());
            EXPECT_NEAR(rho.population(0, a), 1.0, 1e-12);
            EXPECT_NEAR(rho.population(1, a == 1 ? (b ^ 1) : b), 1.0,
                        1e-12);
        }
    }
}

TEST(Density, CnotIgnoresLeakedControl)
{
    DensityMatrix rho({2, 1});
    rho.applyUnitary2(0, 1, cnotQuquart());
    EXPECT_NEAR(rho.population(0, 2), 1.0, 1e-12);
    EXPECT_NEAR(rho.population(1, 1), 1.0, 1e-12);
}

TEST(Density, TransportChannelMovesLeakage)
{
    DensityMatrix rho({2, 0});
    rho.applyKraus2(0, 1, leakTransportChannel(0.25));
    EXPECT_NEAR(rho.leakProbability(0), 0.75, 1e-9);
    EXPECT_NEAR(rho.leakProbability(1), 0.25, 1e-9);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-9);
}

TEST(Density, TransportInertWhenBothLeaked)
{
    DensityMatrix rho({2, 3});
    rho.applyKraus2(0, 1, leakTransportChannel(0.5));
    EXPECT_NEAR(rho.leakProbability(0), 1.0, 1e-9);
    EXPECT_NEAR(rho.leakProbability(1), 1.0, 1e-9);
}

TEST(Density, RxConditionedOnlyActsNextToLeakage)
{
    // Unleaked pair: identity.
    DensityMatrix clean({0, 1});
    clean.applyUnitary2(0, 1, rxConditioned(0.65 * M_PI));
    EXPECT_NEAR(clean.population(1, 1), 1.0, 1e-9);

    // Leaked control: partner rotates.
    DensityMatrix dirty({2, 0});
    dirty.applyUnitary2(0, 1, rxConditioned(0.65 * M_PI));
    const double p1 = dirty.population(1, 1);
    EXPECT_NEAR(p1, std::pow(std::sin(0.65 * M_PI / 2.0), 2.0), 1e-9);
}

TEST(Density, InjectChannelHeatsExcitedState)
{
    DensityMatrix rho({1});
    rho.applyKraus1(0, leakInjectChannel(0.2));
    EXPECT_NEAR(rho.population(0, 2), 0.2, 1e-9);
    EXPECT_NEAR(rho.population(0, 1), 0.8, 1e-9);

    DensityMatrix ground({0});
    ground.applyKraus1(0, leakInjectChannel(0.2));
    EXPECT_NEAR(ground.population(0, 0), 1.0, 1e-9);
}

TEST(Density, SeepChannelDecaysLeakage)
{
    DensityMatrix rho({2});
    rho.applyKraus1(0, seepChannel(0.3));
    EXPECT_NEAR(rho.leakProbability(0), 0.7, 1e-9);
    EXPECT_NEAR(rho.population(0, 1), 0.3, 1e-9);
}

TEST(Density, ReportZeroBlendsLeakedPopulation)
{
    DensityMatrix rho({2});
    EXPECT_NEAR(rho.probReportZero(0), 0.5, 1e-12);
    DensityMatrix zero({0});
    EXPECT_NEAR(zero.probReportZero(0), 1.0, 1e-12);
}

TEST(Density, HermiticityPreservedThroughStudySteps)
{
    DensityMatrix rho({2, 0});
    rho.applyUnitary2(0, 1, cnotQuquart());
    rho.applyKraus2(0, 1, leakTransportChannel(0.1));
    rho.applyUnitary2(0, 1, rxConditioned(0.65 * M_PI));
    rho.applyKraus1(0, leakInjectChannel(1e-4));
    EXPECT_LT(rho.hermiticityError(), 1e-10);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-9);
}

class StudyFixture : public ::testing::Test
{
  protected:
    StudyFixture() : steps_(runStabilizerLeakageStudy()) {}

    const StudyStep &
    marker(const std::string &m) const
    {
        for (const auto &s : steps_) {
            if (s.marker == m)
                return s;
        }
        ADD_FAILURE() << "marker " << m << " missing";
        return steps_.front();
    }

    std::vector<StudyStep> steps_;
};

TEST_F(StudyFixture, HasAllMarkers)
{
    EXPECT_NO_FATAL_FAILURE(marker("A"));
    EXPECT_NO_FATAL_FAILURE(marker("B"));
    EXPECT_NO_FATAL_FAILURE(marker("C"));
    EXPECT_GE(steps_.size(), 14u);
}

TEST_F(StudyFixture, TraceStaysNormalized)
{
    // Snapshots expose probabilities; they must stay in [0, 1].
    for (const auto &s : steps_) {
        EXPECT_GE(s.leakParity, -1e-9);
        EXPECT_LE(s.leakParity, 1.0 + 1e-9);
        EXPECT_GE(s.reportZeroParity, -1e-9);
        EXPECT_LE(s.reportZeroParity, 1.0 + 1e-9);
    }
}

TEST_F(StudyFixture, PointA_LrcTransportsLeakageOntoParity)
{
    // "At point A ... the parity qubit P has significantly leaked due
    // to interactions with q0, confirming that LRCs do facilitate
    // leakage transport."
    EXPECT_GT(marker("A").leakParity, 0.2);
    EXPECT_GT(marker("A").leakParity, steps_.front().leakParity + 0.2);
}

TEST_F(StudyFixture, PointB_MeasurementDisturbedByLeakedCnot)
{
    // "If P was measured at this point, we would get a random
    // outcome" — the report-0 probability has left ~1.0.
    EXPECT_LT(marker("B").reportZeroParity, 0.9);
    EXPECT_GT(marker("B").reportZeroParity, 0.1);
}

TEST_F(StudyFixture, PointC_OutcomeNearRandom)
{
    // Leakage has randomized the check: the report-0 probability sits
    // near 1/2 instead of near the ideal 1.0.
    const double p0 = marker("C").reportZeroParity;
    EXPECT_GT(p0, 0.25);
    EXPECT_LT(p0, 0.85);
}

TEST_F(StudyFixture, LeakageSpreadsToOtherDataInRound2)
{
    // After the no-LRC round, the other data qubits have picked up
    // leakage from the leaked parity qubit.
    const auto &last = steps_.back();
    const double spread =
        last.leakData[1] + last.leakData[2] + last.leakData[3];
    EXPECT_GT(spread, 0.005);
}

TEST_F(StudyFixture, InitialStateMatchesFig7)
{
    const auto &first = steps_.front();
    EXPECT_NEAR(first.leakData[0], 1.0, 1e-9);
    EXPECT_NEAR(first.leakParity, 0.0, 1e-9);
}

} // namespace
} // namespace qec
