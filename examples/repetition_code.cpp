/**
 * @file
 * Repetition-code memory quickstart: the circuit-IR front end's
 * "new protocol with zero engine edits" demonstration.
 *
 * Setting `base.family = CircuitFamily::RepetitionMemory` swaps the
 * compiler path: CircuitCompiler::repetitionMemory emits the d-qubit
 * bit-flip code (d data qubits in a line, d-1 ZZ checks) as a
 * replayable instruction stream, the detector model and syndrome
 * extraction read the program's measure -> detector map, and the
 * unchanged batch engine replays it. Everything else — the sweep
 * grid, deterministic per-point seeds, the decode pipeline, the JSON
 * sink — is the same machinery the surface-code studies use.
 *
 * The printed table shows the textbook signature: below threshold the
 * logical error rate falls steeply with distance.
 */

#include <cstdio>

#include "exp/sweep_runner.h"

using namespace qec;

int
main()
{
    SweepPlan plan;
    plan.name = "repetition-memory";
    plan.distances = {3, 5, 7};
    plan.ps = {2e-3, 5e-3};
    plan.rounds = {SweepRounds::exactly(5)};
    // The repetition compiler path has no LRC scheduling; Never keeps
    // the LRC-slot branch empty every round.
    plan.policies = {PolicyKind::Never};
    plan.base.family = CircuitFamily::RepetitionMemory;
    plan.base.basis = Basis::Z; // the only basis the code protects
    plan.base.em = ErrorModel::withoutLeakage(1e-3);
    plan.base.decoderKind = DecoderKind::UnionFind;
    plan.base.shots = 20000;
    plan.base.batchWidth = 256;

    SweepRunner runner(plan);
    CollectSink results;
    JsonSink json(stdout);
    runner.addSink(results);
    runner.addSink(json);
    const SweepSummary summary = runner.run();
    if (!summary.status.isOk()) {
        std::fprintf(stderr, "sweep failed: %s\n",
                     summary.status.toString().c_str());
        return 1;
    }

    std::printf("\nrepetition-code memory, 5 rounds, %d points\n\n",
                (int)results.points.size());
    std::printf("%-10s %-6s %12s %14s\n", "p", "d", "LER",
                "logical errs");
    for (const PointResult &point : results.points) {
        const ExperimentResult &r = point.results.front();
        std::printf("%-10.0e %-6d %12s %14llu\n", point.point.p,
                    point.point.distance, r.lerString().c_str(),
                    (unsigned long long)r.logicalErrors);
    }
    std::printf("\nLER falls with distance at fixed p: the compiled\n"
                "program replays on the same engine and decode\n"
                "pipeline as the surface-code studies.\n");
    return 0;
}
