/**
 * @file
 * Policy explorer: a small sweep CLI over the experiment harness for
 * interactive what-if studies, e.g.
 *
 *   policy_explorer --distance 3,5,7 --p 1e-3,1e-4 \
 *                   --policy eraser --transport exchange \
 *                   --json sweep.json
 *
 * Axis options take comma-separated lists and expand into a full
 * SweepPlan grid; each point gets a deterministic seed derived from
 * its physical axis tuple (override with --seed).
 *
 * Options:
 *   --distance D[,D...]  odd code distances (default 5)
 *   --rounds R           syndrome extraction rounds (default 10*D)
 *   --p P[,P...]         physical error rates (default 1e-3)
 *   --shots N            shots per point (default 2000)
 *   --policy NAME        never|always|eraser|eraser_m|optimal|all
 *                        (or a comma-separated subset)
 *   --protocol NAME      swap|dqlr (default swap)
 *   --transport NAME     conservative|exchange (default conservative)
 *   --width W            simulator word-group width (default 1)
 *   --no-leakage         disable leakage entirely
 *   --seed S             fixed RNG seed override for every point
 *   --precision F        early-stop at Wilson rel. precision F
 *   --json PATH          also write the unified sweep JSON artifact
 *   --checkpoint PATH    checkpoint to PATH and resume from it when
 *                        it exists (kill-safe; results bit-identical
 *                        to an uninterrupted run)
 *   --checkpoint-every N save every N session chunks (default 1)
 *   --deadline SECONDS   stop cleanly after this wall-clock budget,
 *                        checkpointing the in-flight point
 *   --schedule           execute with the cross-point chunk scheduler
 *                        (exp/sweep_scheduler.h): chunks from many
 *                        live points share one worker pool, shots flow
 *                        to the widest Wilson intervals; results are
 *                        bit-identical to sequential execution
 *   --workers N          worker count: the scheduler pool size with
 *                        --schedule, the per-point simulator thread
 *                        count without it — so the two modes compare
 *                        fairly at equal N (default: hardware
 *                        concurrency)
 *   --max-total-shots N  global shot budget across all points;
 *                        truncates deterministically on exhaustion
 *   --max-live-points N  scheduler admission window (default
 *                        max(8, workers))
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "exp/sweep_runner.h"

using namespace qec;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--distance D[,D..]] [--rounds R]"
                 " [--p P[,P..]]\n"
                 "          [--shots N] [--policy NAME[,NAME..]]"
                 " [--protocol swap|dqlr]\n"
                 "          [--transport conservative|exchange]"
                 " [--width W] [--no-leakage]\n"
                 "          [--seed S] [--precision F] [--json PATH]\n"
                 "          [--checkpoint PATH] [--checkpoint-every N]"
                 " [--deadline SECS]\n"
                 "          [--schedule] [--workers N]"
                 " [--max-total-shots N] [--max-live-points N]\n",
                 argv0);
    std::exit(2);
}

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    size_t begin = 0;
    while (begin <= arg.size()) {
        const size_t comma = arg.find(',', begin);
        if (comma == std::string::npos) {
            out.push_back(arg.substr(begin));
            break;
        }
        out.push_back(arg.substr(begin, comma - begin));
        begin = comma + 1;
    }
    return out;
}

void
report(const ExperimentResult &r, int rounds)
{
    std::printf("%-12s  LER %-12s  LRCs/round %-8.3f  acc %5.1f%%"
                "  FPR %6.2f%%  FNR %5.1f%%  LPR(end) %.5f\n",
                r.policy.c_str(), r.lerString().c_str(),
                r.avgLrcsPerRound(),
                r.speculationAccuracy() * 100.0,
                r.falsePositiveRate() * 100.0,
                r.falseNegativeRate() * 100.0,
                r.lprTotal(rounds - 1));
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<int> distances = {5};
    std::vector<double> ps = {1e-3};
    int rounds = -1;
    uint64_t shots = 2000;
    std::string policy = "all";
    std::string json_path;
    RemovalProtocol protocol = RemovalProtocol::SwapLrc;
    TransportModel transport = TransportModel::Conservative;
    unsigned width = 1;
    bool leakage = true;
    bool seed_override = false;
    uint64_t seed = 0;
    double precision = 0.0;
    std::string checkpoint_path;
    uint64_t checkpoint_every = 1;
    double deadline = 0.0;
    bool schedule = false;
    unsigned workers = 0;
    uint64_t max_total_shots = 0;
    size_t max_live_points = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--distance") {
            distances.clear();
            for (const std::string &v : splitList(next()))
                distances.push_back(std::atoi(v.c_str()));
        } else if (arg == "--rounds") {
            rounds = std::atoi(next());
        } else if (arg == "--p") {
            ps.clear();
            for (const std::string &v : splitList(next()))
                ps.push_back(std::atof(v.c_str()));
        } else if (arg == "--shots") {
            shots = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
            seed_override = true;
        } else if (arg == "--policy") {
            policy = next();
        } else if (arg == "--precision") {
            precision = std::atof(next());
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--checkpoint") {
            checkpoint_path = next();
        } else if (arg == "--checkpoint-every") {
            checkpoint_every = std::strtoull(next(), nullptr, 10);
            if (checkpoint_every == 0)
                usage(argv[0]);
        } else if (arg == "--deadline") {
            deadline = std::atof(next());
        } else if (arg == "--schedule") {
            schedule = true;
        } else if (arg == "--workers") {
            workers = (unsigned)std::atoi(next());
        } else if (arg == "--max-total-shots") {
            max_total_shots = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--max-live-points") {
            max_live_points = (size_t)std::strtoull(next(), nullptr, 10);
        } else if (arg == "--width") {
            width = (unsigned)std::atoi(next());
        } else if (arg == "--protocol") {
            const std::string v = next();
            if (v == "dqlr")
                protocol = RemovalProtocol::Dqlr;
            else if (v != "swap")
                usage(argv[0]);
        } else if (arg == "--transport") {
            const std::string v = next();
            if (v == "exchange")
                transport = TransportModel::Exchange;
            else if (v != "conservative")
                usage(argv[0]);
        } else if (arg == "--no-leakage") {
            leakage = false;
        } else {
            usage(argv[0]);
        }
    }

    SweepPlan plan;
    plan.name = "policy_explorer";
    plan.distances = distances;
    plan.ps = ps;
    plan.rounds = {rounds > 0 ? SweepRounds::exactly(rounds)
                              : SweepRounds::cycles(10)};
    plan.base.shots = shots;
    plan.base.protocol = protocol;
    plan.base.trackLpr = true;
    plan.base.batchWidth = width;
    plan.base.em =
        leakage ? ErrorModel::standard(1e-3)
                : ErrorModel::withoutLeakage(1e-3);
    plan.base.em.transport = transport;
    if (seed_override)
        plan.fixedSeed = seed;
    if (precision > 0.0)
        plan.earlyStop.targetRelPrecision = precision;
    // Same worker budget either way: the scheduler gets a pool of N,
    // the sequential runner simulates each point with N threads.
    if (workers > 0 && !schedule)
        plan.base.threads = workers;

    const std::vector<std::pair<std::string, PolicyKind>> kinds = {
        {"never", PolicyKind::Never},     {"always", PolicyKind::Always},
        {"eraser", PolicyKind::Eraser},   {"eraser_m", PolicyKind::EraserM},
        {"optimal", PolicyKind::Optimal},
    };
    plan.policies.clear();
    for (const std::string &wanted : splitList(policy)) {
        bool matched = false;
        for (const auto &[name, kind] : kinds) {
            if (wanted == "all" || wanted == name) {
                plan.policies.push_back(SweepPolicy(kind));
                matched = true;
            }
        }
        if (!matched)
            usage(argv[0]);
    }

    SweepRunner runner(plan);
    CollectSink results;
    runner.addSink(results);
    std::unique_ptr<JsonSink> json;
    if (!json_path.empty()) {
        json = std::make_unique<JsonSink>(json_path);
        if (!json->ok())
            return 1;
        runner.addSink(*json);
    }

    SweepRunOptions run_options;
    run_options.checkpoint.path = checkpoint_path;
    run_options.checkpoint.everyChunks = checkpoint_every;
    run_options.deadlineSeconds = deadline;
    run_options.schedule = schedule;
    run_options.workers = workers;
    run_options.maxTotalShots = max_total_shots;
    run_options.maxLivePoints = max_live_points;
    const SweepSummary summary = runner.run(run_options);
    if (!summary.status.isOk()) {
        std::fprintf(stderr, "sweep failed: %s\n",
                     summary.status.toString().c_str());
        return 1;
    }
    if (summary.resumed)
        std::printf("[resumed from %s: %zu point(s) already "
                    "complete]\n\n",
                    checkpoint_path.c_str(), summary.pointsResumed);

    for (const PointResult &point : results.points) {
        std::printf("d=%d rounds=%d p=%g shots=%llu protocol=%s"
                    " transport=%s leakage=%s seed=%llu wall=%.2fs\n",
                    point.point.distance, point.point.rounds,
                    point.point.p,
                    (unsigned long long)point.results[0].shots,
                    protocolName(point.point.protocol),
                    transport == TransportModel::Exchange
                        ? "exchange" : "conservative",
                    leakage ? "on" : "off",
                    (unsigned long long)point.point.seed,
                    point.wallSeconds);
        for (size_t i = 0; i < point.results.size(); ++i) {
            report(point.results[i], point.point.rounds);
            if (point.stoppedEarly[i])
                std::printf("%-12s  (stopped early at %llu shots)\n",
                            "", (unsigned long long)
                                point.results[i].shots);
        }
        std::printf("\n");
    }
    for (const SweepPointError &err : summary.errors)
        std::fprintf(stderr,
                     "point %llu (d=%d, p=%g) failed after %d "
                     "attempt(s): %s\n",
                     (unsigned long long)err.pointIndex, err.distance,
                     err.p, err.attempts,
                     err.status.toString().c_str());
    if (summary.scheduled)
        std::printf("[scheduler: %u workers, %llu rounds, %llu chunks"
                    " dispatched, %llu shots reallocated, %llu"
                    " discarded, pool %.0f%% busy]\n",
                    summary.workersUsed,
                    (unsigned long long)summary.schedulerRounds,
                    (unsigned long long)summary.chunksDispatched,
                    (unsigned long long)summary.shotsReallocated,
                    (unsigned long long)summary.shotsDiscarded,
                    summary.poolUtilization * 100.0);
    std::printf("[%zu point(s), %llu shots in %.2fs]\n",
                summary.points,
                (unsigned long long)summary.shotsRun,
                summary.seconds);
    if (summary.truncated)
        std::printf("[%s after %.1fs; progress saved"
                    "%s%s — rerun to continue]\n",
                    summary.budgetExhausted ? "shot budget exhausted"
                                            : "deadline reached",
                    summary.seconds,
                    checkpoint_path.empty() ? "" : " to ",
                    checkpoint_path.c_str());
    if (json)
        std::printf("wrote %s\n", json_path.c_str());
    return summary.pointsFailed > 0 ? 1 : 0;
}
