/**
 * @file
 * Policy explorer: a small CLI over the experiment harness for
 * interactive what-if studies, e.g.
 *
 *   policy_explorer --distance 7 --rounds 70 --p 1e-3 \
 *                   --policy eraser --transport exchange
 *
 * Options:
 *   --distance D     odd code distance (default 5)
 *   --rounds R       syndrome extraction rounds (default 10*D)
 *   --p P            physical error rate (default 1e-3)
 *   --shots N        shots (default 2000)
 *   --policy NAME    never|always|eraser|eraser_m|optimal|all
 *   --protocol NAME  swap|dqlr (default swap)
 *   --transport NAME conservative|exchange (default conservative)
 *   --no-leakage     disable leakage entirely
 *   --seed S         RNG seed
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/memory_experiment.h"

using namespace qec;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--distance D] [--rounds R] [--p P]\n"
                 "          [--shots N] [--policy NAME]"
                 " [--protocol swap|dqlr]\n"
                 "          [--transport conservative|exchange]"
                 " [--no-leakage] [--seed S]\n",
                 argv0);
    std::exit(2);
}

void
report(const ExperimentResult &r, int rounds)
{
    std::printf("%-12s  LER %-12s  LRCs/round %-8.3f  acc %5.1f%%"
                "  FPR %6.2f%%  FNR %5.1f%%  LPR(end) %.5f\n",
                r.policy.c_str(), r.lerString().c_str(),
                r.avgLrcsPerRound(),
                r.speculationAccuracy() * 100.0,
                r.falsePositiveRate() * 100.0,
                r.falseNegativeRate() * 100.0,
                r.lprTotal(rounds - 1));
}

} // namespace

int
main(int argc, char **argv)
{
    int distance = 5;
    int rounds = -1;
    double p = 1e-3;
    uint64_t shots = 2000;
    uint64_t seed = 1;
    std::string policy = "all";
    RemovalProtocol protocol = RemovalProtocol::SwapLrc;
    TransportModel transport = TransportModel::Conservative;
    bool leakage = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--distance") {
            distance = std::atoi(next());
        } else if (arg == "--rounds") {
            rounds = std::atoi(next());
        } else if (arg == "--p") {
            p = std::atof(next());
        } else if (arg == "--shots") {
            shots = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--policy") {
            policy = next();
        } else if (arg == "--protocol") {
            const std::string v = next();
            if (v == "dqlr")
                protocol = RemovalProtocol::Dqlr;
            else if (v != "swap")
                usage(argv[0]);
        } else if (arg == "--transport") {
            const std::string v = next();
            if (v == "exchange")
                transport = TransportModel::Exchange;
            else if (v != "conservative")
                usage(argv[0]);
        } else if (arg == "--no-leakage") {
            leakage = false;
        } else {
            usage(argv[0]);
        }
    }
    if (rounds <= 0)
        rounds = 10 * distance;

    RotatedSurfaceCode code(distance);
    ExperimentConfig cfg;
    cfg.rounds = rounds;
    cfg.shots = shots;
    cfg.seed = seed;
    cfg.protocol = protocol;
    cfg.trackLpr = true;
    cfg.em = leakage ? ErrorModel::standard(p)
                     : ErrorModel::withoutLeakage(p);
    cfg.em.transport = transport;
    MemoryExperiment experiment(code, cfg);

    std::printf("d=%d rounds=%d p=%g shots=%llu protocol=%s"
                " transport=%s leakage=%s\n\n",
                distance, rounds, p, (unsigned long long)shots,
                protocol == RemovalProtocol::Dqlr ? "dqlr" : "swap",
                transport == TransportModel::Exchange ? "exchange"
                                                      : "conservative",
                leakage ? "on" : "off");

    std::vector<std::pair<std::string, PolicyKind>> kinds = {
        {"never", PolicyKind::Never},     {"always", PolicyKind::Always},
        {"eraser", PolicyKind::Eraser},   {"eraser_m", PolicyKind::EraserM},
        {"optimal", PolicyKind::Optimal},
    };
    bool matched = false;
    for (const auto &[name, kind] : kinds) {
        if (policy == "all" || policy == name) {
            report(experiment.run(kind), rounds);
            matched = true;
        }
    }
    if (!matched)
        usage(argv[0]);
    return 0;
}
