/**
 * @file
 * Quickstart: declare a one-point sweep over the scheduling policies
 * of a distance-5 memory experiment and print the headline metrics.
 * This is the smallest end-to-end use of the library:
 *
 *   code   -> lattice + syndrome extraction schedule
 *   sweep  -> SweepPlan (axes + policies) run by SweepRunner
 *   policy -> ERASER (speculates leakage, inserts LRCs on demand)
 *
 * The plan derives a deterministic seed for the point from its
 * physical axis tuple (sweepPointSeed), builds the experiment and
 * decoder once, and runs every policy on the same noise streams.
 */

#include <cstdio>

#include "base/simd_word.h"
#include "exp/sweep_runner.h"

using namespace qec;

int
main()
{
    SweepPlan plan;
    plan.name = "quickstart";
    // A distance-5 rotated surface code (25 data + 24 parity qubits),
    // 10 QEC cycles at the paper's noise model.
    plan.distances = {5};
    plan.ps = {1e-3};
    plan.rounds = {SweepRounds::cycles(10)};
    plan.policies = {PolicyKind::Always, PolicyKind::Eraser,
                     PolicyKind::EraserM, PolicyKind::Optimal};
    plan.base.shots = 2000;
    plan.base.trackLpr = true;
    // Shots per simulator word-group: 1 = scalar reference path,
    // 2..64 = one 64-bit word per bit-plane, 256/512 = the 4-/8-word
    // SIMD engine. Results are bit-identical across 64/256/512 (each
    // 64-lane block keeps its own noise streams);
    // recommendedBatchWidth() picks the host's throughput sweet spot.
    plan.base.batchWidth = (unsigned)recommendedBatchWidth();

    SweepRunner runner(plan);
    CollectSink results;
    runner.addSink(results);
    runner.run();

    const PointResult &point = results.points.front();
    std::printf("distance-5 memory experiment, %llu shots, %d rounds,"
                " p = %.0e, seed %llu\n\n",
                (unsigned long long)point.point.shots,
                point.point.rounds, point.point.p,
                (unsigned long long)point.point.seed);
    std::printf("%-12s %12s %12s %12s %10s\n", "policy", "LER",
                "LRCs/round", "accuracy", "LPR(end)");
    for (const ExperimentResult &r : point.results) {
        std::printf("%-12s %12s %12.2f %11.1f%% %10.5f\n",
                    r.policy.c_str(), r.lerString().c_str(),
                    r.avgLrcsPerRound(),
                    r.speculationAccuracy() * 100.0,
                    r.lprTotal(point.point.rounds - 1));
    }

    std::printf("\nERASER removes leakage with a fraction of"
                " Always-LRCs' operations;\nsee bench/ for the full"
                " paper reproduction.\n");
    return 0;
}
