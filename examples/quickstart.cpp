/**
 * @file
 * Quickstart: run a distance-5 memory experiment with the ERASER
 * controller and print the headline metrics. This is the smallest
 * end-to-end use of the library:
 *
 *   code  -> lattice + syndrome extraction schedule
 *   exp   -> drives rounds, feeds syndromes to the policy, decodes
 *   policy-> ERASER (speculates leakage, inserts LRCs on demand)
 */

#include <cstdio>

#include "base/simd_word.h"
#include "exp/memory_experiment.h"

using namespace qec;

int
main()
{
    // A distance-5 rotated surface code: 25 data + 24 parity qubits.
    RotatedSurfaceCode code(5);

    ExperimentConfig cfg;
    cfg.rounds = 50;                      // 10 QEC cycles
    cfg.em = ErrorModel::standard(1e-3);  // the paper's noise model
    cfg.shots = 2000;
    cfg.seed = 7;
    cfg.trackLpr = true;
    // Shots per simulator word-group: 1 = scalar reference path,
    // 2..64 = one 64-bit word per bit-plane, 256/512 = the 4-/8-word
    // SIMD engine. Results are bit-identical across 64/256/512 (each
    // 64-lane block keeps its own noise streams);
    // recommendedBatchWidth() picks the host's throughput sweet spot.
    cfg.batchWidth = (unsigned)recommendedBatchWidth();

    MemoryExperiment experiment(code, cfg);

    std::printf("distance-5 memory experiment, %llu shots, %d rounds,"
                " p = %.0e\n\n",
                (unsigned long long)cfg.shots, cfg.rounds, cfg.em.p);
    std::printf("%-12s %12s %12s %12s %10s\n", "policy", "LER",
                "LRCs/round", "accuracy", "LPR(end)");
    for (PolicyKind kind : {PolicyKind::Always, PolicyKind::Eraser,
                            PolicyKind::EraserM, PolicyKind::Optimal}) {
        ExperimentResult r = experiment.run(kind);
        std::printf("%-12s %12s %12.2f %11.1f%% %10.5f\n",
                    r.policy.c_str(), r.lerString().c_str(),
                    r.avgLrcsPerRound(),
                    r.speculationAccuracy() * 100.0,
                    r.lprTotal(cfg.rounds - 1));
    }

    std::printf("\nERASER removes leakage with a fraction of"
                " Always-LRCs' operations;\nsee bench/ for the full"
                " paper reproduction.\n");
    return 0;
}
