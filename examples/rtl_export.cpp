/**
 * @file
 * RTL export: the equivalent of the paper artifact's eraser_rtl_gen.
 * Emits the SystemVerilog for the ERASER block of a given distance to
 * stdout, plus a resource summary on stderr.
 *
 *   rtl_export 9 > eraser_d9.sv
 *   rtl_export 9 --multilevel > eraser_m_d9.sv
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "rtl/verilog_gen.h"

using namespace qec;

int
main(int argc, char **argv)
{
    int distance = 9;
    RtlOptions options;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--multilevel") == 0)
            options.multiLevel = true;
        else
            distance = std::atoi(argv[i]);
    }
    if (distance < 3 || distance % 2 == 0) {
        std::fprintf(stderr, "usage: %s <odd distance >= 3>"
                             " [--multilevel]\n", argv[0]);
        return 2;
    }

    RotatedSurfaceCode code(distance);
    std::fputs(generateEraserRtl(code, options).c_str(), stdout);

    const ResourceEstimate est = estimateResources(code, options);
    std::fprintf(stderr,
                 "eraser_d%d%s: ~%d LUTs (%.3f%%), ~%d FFs (%.3f%%),"
                 " ~%.2f ns critical path on xcku3p\n",
                 distance, options.multiLevel ? " (+M)" : "", est.luts,
                 est.lutPercent, est.ffs, est.ffPercent,
                 est.critPathNs);
    return 0;
}
