/**
 * @file
 * Streaming (sliding-window) decode demo: decode a memory experiment
 * whose round count is far beyond the usual 3d — the regime of a real
 * always-on quantum memory, where the decoder cannot wait for the
 * whole history — in windows of 2d detector rows advanced d rows at a
 * time, and show the two properties the windowed mode guarantees:
 *
 *  1. Exactness: every shot's verdict, and therefore the run's LER
 *     and verdict fingerprint, is bit-identical to the full-history
 *     decode. Early commits are real (most clusters retire long
 *     before the run ends), yet nothing is approximated: a cluster
 *     commits only when it is provably beyond the decoder's certified
 *     growth bound from every unseen row and every deferred defect.
 *
 *  2. Bounded decoder state: the number of defects any single window
 *     decode holds live (committed clusters are retired to one parity
 *     bit each) stays near the window's own content, not the run
 *     length — the knob that lets a fixed-size decoder chase an
 *     unbounded round stream.
 */

#include <cstdio>
#include <vector>

#include "base/rng.h"
#include "code/builder.h"
#include "code/rotated_surface_code.h"
#include "decoder/defects.h"
#include "exp/memory_experiment.h"
#include "sim/frame_simulator.h"

using namespace qec;

namespace
{

ExperimentResult
runConfigured(const RotatedSurfaceCode &code, const ExperimentConfig &cfg)
{
    MemoryExperiment exp(code, cfg);
    return exp.run(PolicyKind::Eraser);
}

} // namespace

int
main()
{
    const int d = 5;
    RotatedSurfaceCode code(d);

    ExperimentConfig cfg;
    cfg.rounds = 120; // 8x the usual 3d window of a memory sweep
    cfg.shots = 3000;
    cfg.seed = 77;
    cfg.em = ErrorModel::standard(1e-3);
    cfg.decoderKind = DecoderKind::UnionFind;
    cfg.batchWidth = 64;

    std::printf("d=%d memory experiment, %d rounds (3d would be %d), "
                "%llu shots, p = 1e-3\n\n",
                d, cfg.rounds, 3 * d,
                (unsigned long long)cfg.shots);

    // Reference: one whole-history decode per shot.
    const ExperimentResult full = runConfigured(code, cfg);

    // Streaming: 2d-row windows sliding d rows per step.
    cfg.windowLength = 2 * d;
    cfg.windowSlideLength = d;
    const ExperimentResult windowed = runConfigured(code, cfg);

    std::printf("%-22s %14s %14s\n", "", "full-history", "windowed");
    std::printf("%-22s %14s %14s\n", "LER", full.lerString().c_str(),
                windowed.lerString().c_str());
    std::printf("%-22s %14llu %14llu\n", "logical errors",
                (unsigned long long)full.logicalErrors,
                (unsigned long long)windowed.logicalErrors);
    std::printf("%-22s %#14llx %#14llx\n", "verdict fingerprint",
                (unsigned long long)full.verdictFingerprint,
                (unsigned long long)windowed.verdictFingerprint);
    std::printf("%-22s %14s %14llu\n", "windows decoded", "-",
                (unsigned long long)windowed.windowsDecoded);
    if (full.verdictFingerprint != windowed.verdictFingerprint) {
        std::printf("\nFINGERPRINT MISMATCH — windowed decode is "
                    "supposed to be bit-identical!\n");
        return 1;
    }
    std::printf("\nSame fingerprint: every one of the %llu shots got "
                "the identical verdict.\n",
                (unsigned long long)full.shots);

    // Peak live decoder state vs run length. Commits need the
    // certificate to fire — a cluster must sit provably clear of
    // every unseen row and deferred defect — so the payoff regime is
    // deep sub-threshold operation (here p = 1e-4, where real
    // always-on memories would live), with defects sparse enough that
    // clusters retire continuously. The whole-shot decode input grows
    // linearly with the run; the largest single window decode input
    // does not. This part feeds a single pipeline a raw defect
    // stream from a static circuit, so it uses the leakage-free
    // channel: leaked qubits fire their neighbours every round until
    // an LRC removes them, and LRC scheduling is the policy
    // harness's job (part one), not the decoder's.
    const double p_stream = 1e-4;
    std::printf("\npeak decode input vs run length at p = 1e-4 "
                "(window still %dx%d):\n",
                cfg.windowLength, cfg.windowSlideLength);
    std::printf("  %8s %14s %14s %10s %10s\n", "rounds",
                "whole-shot max", "window max", "commits",
                "deferrals");
    for (const int rounds : {120, 360, 720}) {
        MemoryExperiment stream_exp(code, [&] {
            ExperimentConfig c = cfg;
            c.rounds = rounds;
            c.em = ErrorModel::withoutLeakage(p_stream);
            return c;
        }());
        BatchDecodeOptions options;
        options.windowLength = cfg.windowLength;
        options.windowSlideLength = cfg.windowSlideLength;
        BatchDecoder pipeline(*stream_exp.decoder(), options,
                              stream_exp.componentGraph());

        Circuit circuit = buildMemoryCircuit(code, rounds, Basis::Z);
        FrameSimulator sim(code.numQubits(),
                           ErrorModel::withoutLeakage(p_stream),
                           Rng(cfg.seed));
        uint64_t shot_peak = 0;
        for (int s = 0; s < 200; ++s) {
            sim.run(circuit);
            const std::vector<int> defects =
                extractDefects(code, Basis::Z, rounds, sim.record())
                    .defects;
            if (defects.size() > shot_peak)
                shot_peak = defects.size();
            pipeline.decodeOne(defects.data(), defects.size());
        }
        const BatchDecodeStats &st = pipeline.stats();
        std::printf("  %8d %14llu %14llu %10llu %10llu\n", rounds,
                    (unsigned long long)shot_peak,
                    (unsigned long long)st.windowPeakDefects,
                    (unsigned long long)st.windowCommits,
                    (unsigned long long)st.windowDeferrals);
    }
    std::printf("\nThe whole-shot input keeps climbing with the run "
                "length while the window\npeak tracks the 2d-row "
                "window content — bounded decoder memory with\n"
                "bit-exact verdicts. (At defect densities near "
                "threshold the certificate\nrarely proves clusters "
                "apart and streaming degrades gracefully toward\n"
                "one full-history decode — still exact, just no "
                "longer bounded.)\n");
    return 0;
}
