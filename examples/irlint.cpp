/**
 * @file
 * qec-irlint: compile any shipped protocol to its CircuitProgram, dump
 * the instruction listing, and run the full IrAnalyzer pass stack.
 * Exit status 0 means the program carries no Error-severity
 * diagnostic — the gate CI's irlint-all-families step relies on.
 *
 * Usage:
 *   qec-irlint [--family surface|repetition] [--distance N]
 *              [--rounds N] [--basis z|x] [--protocol swap|dqlr]
 *              [--p RATE] [--quiet]
 *
 * Defaults: surface, d=3, rounds=3d, basis z, swap-LRC, p=1e-3.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "code/ir_analysis.h"
#include "code/rotated_surface_code.h"

using namespace qec;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--family surface|repetition] [--distance N]\n"
        "          [--rounds N] [--basis z|x] "
        "[--protocol swap|dqlr]\n"
        "          [--p RATE] [--quiet]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    CircuitFamily family = CircuitFamily::SurfaceMemory;
    int distance = 3;
    int rounds = -1; // default 3d
    Basis basis = Basis::Z;
    IrTailKind tail = IrTailKind::SwapLrc;
    double p = 1e-3;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--family") {
            const char *v = next();
            if (v && std::strcmp(v, "surface") == 0)
                family = CircuitFamily::SurfaceMemory;
            else if (v && std::strcmp(v, "repetition") == 0)
                family = CircuitFamily::RepetitionMemory;
            else
                return usage(argv[0]);
        } else if (arg == "--distance") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            distance = std::atoi(v);
        } else if (arg == "--rounds") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            rounds = std::atoi(v);
        } else if (arg == "--basis") {
            const char *v = next();
            if (v && (std::strcmp(v, "z") == 0 ||
                      std::strcmp(v, "Z") == 0))
                basis = Basis::Z;
            else if (v && (std::strcmp(v, "x") == 0 ||
                           std::strcmp(v, "X") == 0))
                basis = Basis::X;
            else
                return usage(argv[0]);
        } else if (arg == "--protocol") {
            const char *v = next();
            if (v && std::strcmp(v, "swap") == 0)
                tail = IrTailKind::SwapLrc;
            else if (v && std::strcmp(v, "dqlr") == 0)
                tail = IrTailKind::Dqlr;
            else
                return usage(argv[0]);
        } else if (arg == "--p") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            p = std::atof(v);
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (distance < 2 || distance > 99) {
        std::fprintf(stderr, "irlint: bad distance %d\n", distance);
        return 2;
    }
    if (rounds < 0)
        rounds = 3 * distance;

    CircuitProgram prog;
    if (family == CircuitFamily::RepetitionMemory) {
        prog = CircuitCompiler::repetitionMemory(distance, rounds);
    } else {
        if (distance % 2 == 0) {
            std::fprintf(stderr,
                         "irlint: surface memory needs odd "
                         "distance, got %d\n",
                         distance);
            return 2;
        }
        RotatedSurfaceCode code(distance);
        prog = CircuitCompiler::surfaceMemory(code, rounds, basis,
                                              tail);
    }

    const Status valid = prog.validate();
    if (!valid.isOk()) {
        std::fprintf(stderr, "irlint: program is invalid: %s\n",
                     valid.toString().c_str());
        return 1;
    }

    const IrAnalysisReport report =
        IrAnalyzer::analyze(prog, ErrorModel::standard(p));

    if (!quiet)
        std::fputs(formatProgramListing(prog).c_str(), stdout);
    std::fputs(report.toString().c_str(), stdout);
    if (!report.removableInstructions.empty()) {
        std::printf("removable:");
        for (int32_t i : report.removableInstructions)
            std::printf(" %d", i);
        std::printf("\n");
    }
    std::printf("%d error(s), %d warning(s)\n", report.errorCount(),
                report.warningCount());
    return report.hasErrors() ? 1 : 0;
}
