/**
 * @file
 * Decoder playground: inject hand-picked Pauli errors into a noiseless
 * distance-5 memory run and watch the MWPM decoder work — which
 * detectors fire, what gets matched, whether the logical observable is
 * recovered. Also shows the failure mode the paper builds on
 * (Fig. 2(b) Case-2): a leaked qubit suppressing a parity check makes
 * the decoder mis-pair a real error with the boundary.
 */

#include <cstdio>
#include <vector>

#include "code/builder.h"
#include "decoder/defects.h"
#include "decoder/detector_model.h"
#include "decoder/mwpm_decoder.h"
#include "sim/frame_simulator.h"

using namespace qec;

namespace
{

struct Injection
{
    int round;
    int qubit;
    Pauli pauli;
    bool leak = false;
};

void
runCase(const char *title, const RotatedSurfaceCode &code, int rounds,
        const MwpmDecoder &decoder,
        const std::vector<Injection> &injections)
{
    Circuit circuit = buildMemoryCircuit(code, rounds, Basis::Z);
    FrameSimulator sim(code.numQubits(), ErrorModel::noiseless(),
                       Rng(11));
    sim.reset();

    const Op *ops = circuit.ops.data();
    size_t cursor = 0;
    for (int r = 0; r <= rounds; ++r) {
        const size_t stop = r < rounds ? circuit.roundBegin[r]
                                       : circuit.ops.size();
        sim.executeRange(ops + cursor, ops + stop);
        cursor = stop;
        for (const auto &inj : injections) {
            if (inj.round == r) {
                if (inj.leak)
                    sim.setLeaked(inj.qubit, true);
                else
                    sim.injectPauli(inj.qubit, inj.pauli);
            }
        }
    }

    ShotOutcome outcome =
        extractDefects(code, Basis::Z, rounds, sim.record());
    const bool predicted = decoder.decode(outcome.defects);

    std::printf("--- %s ---\n", title);
    std::printf("fired detectors (stab, round): ");
    const int n_s = code.numZStabilizers();
    for (int det : outcome.defects)
        std::printf("(%d, %d) ", det % n_s, det / n_s);
    std::printf("\nactual logical flip: %s   decoder prediction: %s"
                "   -> %s\n\n",
                outcome.observableFlip ? "YES" : "no",
                predicted ? "YES" : "no",
                predicted == outcome.observableFlip
                    ? "corrected"
                    : "LOGICAL ERROR");
}

} // namespace

int
main()
{
    RotatedSurfaceCode code(5);
    const int rounds = 6;
    DetectorModel dem = buildDetectorModel(code, rounds, Basis::Z);
    MwpmDecoder decoder(dem, 1e-3);

    std::printf("distance-5 memory-Z, %d rounds, %d detectors,"
                " %zu graph edges\n\n",
                rounds, dem.numDetectors(), decoder.numGraphEdges());

    runCase("single X on a bulk data qubit", code, rounds, decoder,
            {{2, code.dataId(2, 2), Pauli::X}});

    runCase("two X errors in the same round", code, rounds, decoder,
            {{2, code.dataId(1, 1), Pauli::X},
             {2, code.dataId(3, 3), Pauli::X}});

    runCase("X chain of length 2 (still correctable at d=5)", code,
            rounds, decoder,
            {{2, code.dataId(1, 2), Pauli::X},
             {2, code.dataId(2, 2), Pauli::X}});

    runCase("Y error (visible to both bases; Z graph sees its X part)",
            code, rounds, decoder,
            {{3, code.dataId(2, 3), Pauli::Y}});

    runCase("leaked neighbour obfuscating an X error (Fig. 2(b))",
            code, rounds, decoder,
            {{2, code.dataId(0, 1), Pauli::X},
             {2, code.dataId(1, 1), Pauli::I, /*leak=*/true}});

    std::printf("The last case shows why leakage is pernicious: the\n"
                "leaked qubit randomizes nearby checks, so even exact\n"
                "MWPM may pair the real defect with the boundary --\n"
                "exactly the paper's Case-2 narrative.\n");
    return 0;
}
