/**
 * @file
 * Leakage storm: drive the simulator round-by-round with the
 * lower-level API, force a burst of leakage onto a cluster of data
 * qubits mid-run, and watch the ERASER controller hunt it down.
 * Prints an ASCII timeline of the leaked-qubit count and, around the
 * storm, a lattice map showing which qubits are leaked (L) and which
 * the controller scheduled for an LRC (*).
 *
 * This example exercises: RotatedSurfaceCode, FrameSimulator,
 * QecScheduleGenerator, EraserPolicy and the RoundObservation plumbing
 * — everything the MemoryExperiment harness wires up for you.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/qsg.h"
#include "sim/frame_simulator.h"

using namespace qec;

namespace
{

void
printLattice(const RotatedSurfaceCode &code, const FrameSimulator &sim,
             const std::vector<LrcPair> &scheduled)
{
    const int d = code.distance();
    std::vector<uint8_t> lrc(code.numData(), 0);
    for (const auto &pair : scheduled)
        lrc[pair.data] = 1;
    for (int r = 0; r < d; ++r) {
        std::printf("    ");
        for (int c = 0; c < d; ++c) {
            const int q = code.dataId(r, c);
            char ch = '.';
            if (sim.leaked(q) && lrc[q])
                ch = '#';   // leaked and about to be cleaned
            else if (sim.leaked(q))
                ch = 'L';
            else if (lrc[q])
                ch = '*';   // scheduled (speculation)
            std::printf("%c ", ch);
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    const int d = 7;
    const int rounds = 40;
    const int storm_round = 12;
    RotatedSurfaceCode code(d);
    SwapLookupTable lookup(code);

    ErrorModel em = ErrorModel::standard(1e-3);
    FrameSimulator sim(code.numQubits(), em, Rng(2024));
    QecScheduleGenerator qsg(code, RemovalProtocol::SwapLrc);
    EraserPolicy policy(code, lookup, /*multi_level=*/false);

    std::printf("distance-%d code, ERASER controller, leakage storm"
                " at round %d\n\n", d, storm_round);

    std::vector<LrcPair> lrcs;   // round 0: nothing scheduled yet
    std::vector<uint8_t> prev_flips(code.numStabilizers(), 0);

    RoundObservation obs;
    obs.events.resize(code.numStabilizers());
    obs.leakedLabels.assign(code.numStabilizers(), 0);
    obs.hadLrc.resize(code.numData());
    obs.trueLeakedData.assign(code.numData(), 0);

    for (int r = 0; r < rounds; ++r) {
        if (r == storm_round) {
            // A cosmic-ray-style burst: leak a 2x2 cluster.
            for (int dr = 2; dr <= 3; ++dr)
                for (int dc = 2; dc <= 3; ++dc)
                    sim.setLeaked(code.dataId(dr, dc), true);
            std::printf("round %2d: >>> storm! 4 data qubits leaked"
                        " <<<\n", r);
        }

        const size_t mark = sim.record().size();
        RoundSchedule sched = qsg.generate(r, lrcs);
        sim.executeRange(sched.ops.data(),
                         sched.ops.data() + sched.ops.size());

        // Syndrome flips -> detection events.
        std::vector<uint8_t> flips(code.numStabilizers(), 0);
        for (size_t i = mark; i < sim.record().size(); ++i) {
            const auto &rec = sim.record()[i];
            if (rec.stab >= 0)
                flips[rec.stab] = rec.flip ? 1 : 0;
        }
        for (int s = 0; s < code.numStabilizers(); ++s)
            obs.events[s] = r == 0 ? 0 : (flips[s] ^ prev_flips[s]);
        prev_flips = flips;

        std::fill(obs.hadLrc.begin(), obs.hadLrc.end(), 0);
        for (const auto &pair : lrcs)
            obs.hadLrc[pair.data] = 1;
        obs.round = r;
        lrcs = policy.nextRound(obs);

        const int leaked_data = sim.countLeaked(0, code.numData());
        const int leaked_parity =
            sim.countLeaked(code.numData(), code.numQubits());
        std::printf("round %2d: leaked data %2d, parity %2d, LRCs"
                    " next round %2zu  |%s\n",
                    r, leaked_data, leaked_parity, lrcs.size(),
                    std::string(leaked_data, '#').c_str());
        if (r >= storm_round && r <= storm_round + 3) {
            printLattice(code, sim, lrcs);
        }
    }

    std::printf("\nLegend: L leaked, * scheduled for LRC, # both.\n");
    std::printf("The controller spots the burst from the randomized\n"
                "parity checks and schedules LRCs within 1-2 rounds.\n");
    return 0;
}
