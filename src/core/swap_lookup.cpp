#include "core/swap_lookup.h"

#include <algorithm>

#include "base/logging.h"

namespace qec
{

namespace
{

bool
tryAugment(int left, const std::vector<std::vector<int>> &adjacency,
           std::vector<int> &match_right, std::vector<uint8_t> &seen)
{
    for (int right : adjacency[left]) {
        if (seen[right])
            continue;
        seen[right] = 1;
        if (match_right[right] == -1 ||
            tryAugment(match_right[right], adjacency, match_right,
                       seen)) {
            match_right[right] = left;
            return true;
        }
    }
    return false;
}

} // namespace

std::vector<int>
maxBipartiteMatching(int num_left,
                     const std::vector<std::vector<int>> &adjacency,
                     int num_right)
{
    std::vector<int> match_right(num_right, -1);
    for (int l = 0; l < num_left; ++l) {
        std::vector<uint8_t> seen(num_right, 0);
        tryAugment(l, adjacency, match_right, seen);
    }
    std::vector<int> match_left(num_left, -1);
    for (int r = 0; r < num_right; ++r) {
        if (match_right[r] != -1)
            match_left[match_right[r]] = r;
    }
    return match_left;
}

SwapLookupTable::SwapLookupTable(const RotatedSurfaceCode &code,
                                 int backup_limit)
{
    const int n_data = code.numData();
    std::vector<std::vector<int>> adjacency(n_data);
    for (int q = 0; q < n_data; ++q)
        adjacency[q] = code.stabilizersOfData(q);

    auto match = maxBipartiteMatching(n_data, adjacency,
                                      code.numStabilizers());

    entries_.resize(n_data);
    for (int q = 0; q < n_data; ++q) {
        SwapEntry &entry = entries_[q];
        if (match[q] != -1) {
            entry.primary = match[q];
            pairs_.push_back({q, match[q]});
        } else {
            panicIf(unmatched_ != -1,
                    "matching must leave exactly one data qubit over");
            unmatched_ = q;
            entry.primary = adjacency[q].front();
        }
        for (int s : adjacency[q]) {
            if (s == entry.primary)
                continue;
            if ((int)entry.backups.size() < backup_limit)
                entry.backups.push_back(s);
        }
    }
    panicIf((int)pairs_.size() != code.numStabilizers(),
            "primary matching must cover every parity qubit");
    panicIf(unmatched_ == -1,
            "d^2 data and d^2-1 parity qubits imply one unmatched");
}

} // namespace qec
