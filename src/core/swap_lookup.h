/**
 * @file
 * SWAP Lookup Table (Section 4.4): per data qubit, a pre-determined
 * primary parity qubit plus backup parity qubits, used by Dynamic LRC
 * Insertion to allocate SWAP partners in constant time instead of
 * solving a maximum matching at run time.
 *
 * Primaries are chosen by a maximum bipartite matching so that d^2-1
 * data qubits hold conflict-free primaries (the same pairing drives
 * Always-LRCs scheduling); the one unmatched data qubit shares a
 * primary and relies on its backup (or the next LRC round).
 */

#ifndef QEC_CORE_SWAP_LOOKUP_H
#define QEC_CORE_SWAP_LOOKUP_H

#include <vector>

#include "code/rotated_surface_code.h"

namespace qec
{

/** Primary/backup SWAP partners for one data qubit. */
struct SwapEntry
{
    int primary = -1;              ///< Stabilizer index.
    std::vector<int> backups;      ///< Remaining adjacent stabilizers.
};

class SwapLookupTable
{
  public:
    /**
     * Build the table. @param backup_limit Backups kept per data qubit
     * (the paper's default hardware keeps one).
     */
    explicit SwapLookupTable(const RotatedSurfaceCode &code,
                             int backup_limit = 1);

    const SwapEntry & entry(int data) const { return entries_[data]; }
    int numData() const { return (int)entries_.size(); }

    /** Data qubit left without a unique primary by the matching (used
     *  by Always-LRCs leftover rotation). */
    int unmatchedData() const { return unmatched_; }

    /** The conflict-free (data, stab) pairs found by the matching:
     *  exactly d^2-1 entries. */
    const std::vector<std::pair<int, int>> &
    perfectPairs() const
    {
        return pairs_;
    }

  private:
    std::vector<SwapEntry> entries_;
    std::vector<std::pair<int, int>> pairs_;
    int unmatched_ = -1;
};

/**
 * Maximum bipartite matching (Kuhn's augmenting paths). Exposed for
 * reuse by the exact-matching DLI ablation and by tests.
 *
 * @param num_left  Left vertex count.
 * @param adjacency adjacency[l] lists right vertices of l.
 * @param num_right Right vertex count.
 * @return match_left[l] = matched right vertex or -1.
 */
std::vector<int> maxBipartiteMatching(
    int num_left, const std::vector<std::vector<int>> &adjacency,
    int num_right);

} // namespace qec

#endif // QEC_CORE_SWAP_LOOKUP_H
