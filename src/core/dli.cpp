#include "core/dli.h"

#include "base/logging.h"

namespace qec
{

DynamicLrcInsertion::DynamicLrcInsertion(const RotatedSurfaceCode &code,
                                         const SwapLookupTable &lookup,
                                         DliAllocator allocator)
    : code_(code), lookup_(lookup), allocator_(allocator)
{
}

std::vector<LrcPair>
DynamicLrcInsertion::allocate(LeakageTrackingTable &ltt,
                              const ParityUsageTable &putt,
                              std::vector<int> &used_stabs) const
{
    if (allocator_ == DliAllocator::LookupTable)
        return allocateLookup(ltt, putt, used_stabs);
    return allocateMatching(ltt, putt, used_stabs);
}

std::vector<LrcPair>
DynamicLrcInsertion::allocateLookup(LeakageTrackingTable &ltt,
                                    const ParityUsageTable &putt,
                                    std::vector<int> &used_stabs) const
{
    std::vector<LrcPair> lrcs;
    if (ltt.markedCount() == 0)
        return lrcs;   // quiescent round: nothing to place, no work
    std::vector<uint8_t> taken(code_.numStabilizers(), 0);

    for (int q = 0; q < ltt.size(); ++q) {
        if (!ltt.marked(q))
            continue;
        const SwapEntry &entry = lookup_.entry(q);
        int chosen = -1;
        if (!putt.used(entry.primary) && !taken[entry.primary]) {
            chosen = entry.primary;
        } else {
            for (int backup : entry.backups) {
                if (!putt.used(backup) && !taken[backup]) {
                    chosen = backup;
                    break;
                }
            }
        }
        if (chosen < 0)
            continue;   // Stays marked; retried next round.
        taken[chosen] = 1;
        used_stabs.push_back(chosen);
        lrcs.push_back({q, chosen});
        ltt.clear(q);
    }
    return lrcs;
}

template <typename Lane>
void
DynamicLrcInsertion::allocateLane(int lane,
                                  const std::vector<int> &candidates,
                                  BatchLeakageTrackingTable<Lane> &ltt,
                                  const BatchParityUsageTable<Lane> &putt,
                                  DliLaneScratch &scratch,
                                  std::vector<LrcPair> &lrcs) const
{
    lrcs.clear();
    if (allocator_ == DliAllocator::LookupTable) {
        if ((int)scratch.takenEpoch.size() < code_.numStabilizers())
            scratch.takenEpoch.assign(code_.numStabilizers(), 0);
        const int epoch = ++scratch.epoch;
        for (int q : candidates) {
            if (!ltt.marked(q, lane))
                continue;
            const SwapEntry &entry = lookup_.entry(q);
            int chosen = -1;
            if (!putt.used(entry.primary, lane) &&
                scratch.takenEpoch[entry.primary] != epoch) {
                chosen = entry.primary;
            } else {
                for (int backup : entry.backups) {
                    if (!putt.used(backup, lane) &&
                        scratch.takenEpoch[backup] != epoch) {
                        chosen = backup;
                        break;
                    }
                }
            }
            if (chosen < 0)
                continue;   // Stays marked; retried next round.
            scratch.takenEpoch[chosen] = epoch;
            lrcs.push_back({q, chosen});
            ltt.clear(q, lane);
        }
        return;
    }

    // Exact matching is an ablation path: like the per-lane reference
    // allocateMatching, it builds its instance vectors per call (the
    // paper-default lookup branch above is the allocation-free one).
    std::vector<int> marked;
    for (int q : candidates) {
        if (ltt.marked(q, lane))
            marked.push_back(q);
    }
    std::vector<std::vector<int>> adjacency(marked.size());
    for (size_t i = 0; i < marked.size(); ++i) {
        for (int s : code_.stabilizersOfData(marked[i])) {
            if (!putt.used(s, lane))
                adjacency[i].push_back(s);
        }
    }
    auto match = maxBipartiteMatching((int)marked.size(), adjacency,
                                      code_.numStabilizers());
    for (size_t i = 0; i < marked.size(); ++i) {
        if (match[i] < 0)
            continue;
        lrcs.push_back({marked[i], match[i]});
        ltt.clear(marked[i], lane);
    }
}

template void DynamicLrcInsertion::allocateLane<uint64_t>(
    int, const std::vector<int> &,
    BatchLeakageTrackingTable<uint64_t> &,
    const BatchParityUsageTable<uint64_t> &, DliLaneScratch &,
    std::vector<LrcPair> &) const;
template void DynamicLrcInsertion::allocateLane<WordVec<4>>(
    int, const std::vector<int> &,
    BatchLeakageTrackingTable<WordVec<4>> &,
    const BatchParityUsageTable<WordVec<4>> &, DliLaneScratch &,
    std::vector<LrcPair> &) const;
template void DynamicLrcInsertion::allocateLane<WordVec<8>>(
    int, const std::vector<int> &,
    BatchLeakageTrackingTable<WordVec<8>> &,
    const BatchParityUsageTable<WordVec<8>> &, DliLaneScratch &,
    std::vector<LrcPair> &) const;

std::vector<LrcPair>
DynamicLrcInsertion::allocateMatching(LeakageTrackingTable &ltt,
                                      const ParityUsageTable &putt,
                                      std::vector<int> &used_stabs) const
{
    if (ltt.markedCount() == 0)
        return {};
    const auto marked = ltt.markedList();
    std::vector<std::vector<int>> adjacency(marked.size());
    for (size_t i = 0; i < marked.size(); ++i) {
        for (int s : code_.stabilizersOfData(marked[i])) {
            if (!putt.used(s))
                adjacency[i].push_back(s);
        }
    }
    auto match = maxBipartiteMatching((int)marked.size(), adjacency,
                                      code_.numStabilizers());

    std::vector<LrcPair> lrcs;
    for (size_t i = 0; i < marked.size(); ++i) {
        if (match[i] < 0)
            continue;
        used_stabs.push_back(match[i]);
        lrcs.push_back({marked[i], match[i]});
        ltt.clear(marked[i]);
    }
    return lrcs;
}

} // namespace qec
