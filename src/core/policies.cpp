#include "core/policies.h"

#include "base/logging.h"

namespace qec
{

namespace
{

/**
 * Build a near-perfect (data, stab) pairing with Kuhn's matching,
 * processing `first_data` first so it is guaranteed a partner.
 */
std::vector<LrcPair>
buildPairing(const RotatedSurfaceCode &code, int first_data,
             int &leftover)
{
    const int n_data = code.numData();
    std::vector<int> order;
    if (first_data >= 0)
        order.push_back(first_data);
    for (int q = 0; q < n_data; ++q) {
        if (q != first_data)
            order.push_back(q);
    }

    // Kuhn's matching in the chosen order: left vertices matched
    // earlier are never unmatched by later augmentations.
    std::vector<int> match_right(code.numStabilizers(), -1);
    std::function<bool(int, std::vector<uint8_t> &)> augment =
        [&](int q, std::vector<uint8_t> &seen) {
            for (int s : code.stabilizersOfData(q)) {
                if (seen[s])
                    continue;
                seen[s] = 1;
                if (match_right[s] == -1 ||
                    augment(match_right[s], seen)) {
                    match_right[s] = q;
                    return true;
                }
            }
            return false;
        };
    for (int q : order) {
        std::vector<uint8_t> seen(code.numStabilizers(), 0);
        augment(q, seen);
    }

    std::vector<int> match_left(n_data, -1);
    for (int s = 0; s < code.numStabilizers(); ++s) {
        if (match_right[s] != -1)
            match_left[match_right[s]] = s;
    }

    std::vector<LrcPair> pairs;
    leftover = -1;
    for (int q = 0; q < n_data; ++q) {
        if (match_left[q] >= 0) {
            pairs.push_back({q, match_left[q]});
        } else {
            panicIf(leftover != -1,
                    "exactly one data qubit must be left over");
            leftover = q;
        }
    }
    panicIf(leftover == -1, "pairing cannot be perfect on data qubits");
    return pairs;
}

} // namespace

AlwaysLrcPolicy::AlwaysLrcPolicy(const RotatedSurfaceCode &code,
                                 bool every_round)
    : everyRound_(every_round)
{
    // Two alternating pairings whose leftover data qubits differ, so
    // every data qubit is serviced across consecutive LRC rounds.
    int leftover_a = -1;
    pairings_.push_back(buildPairing(code, -1, leftover_a));
    int leftover_b = -1;
    pairings_.push_back(buildPairing(code, leftover_a, leftover_b));
    panicIf(leftover_a == leftover_b,
            "alternating pairings must rotate the leftover qubit");
}

std::vector<LrcPair>
AlwaysLrcPolicy::scheduleFor(int round)
{
    if (everyRound_)
        return pairings_[round % 2];
    // LRC rounds are the odd rounds (Fig. 3: R1 plain, R2 LRCs, ...).
    if (round % 2 == 0)
        return {};
    return pairings_[(round / 2) % 2];
}

std::vector<LrcPair>
AlwaysLrcPolicy::firstRound()
{
    return scheduleFor(0);
}

std::vector<LrcPair>
AlwaysLrcPolicy::nextRound(const RoundObservation &obs)
{
    return scheduleFor(obs.round + 1);
}

EraserPolicy::EraserPolicy(const RotatedSurfaceCode &code,
                           const SwapLookupTable &lookup,
                           bool multi_level, LsbThreshold threshold,
                           DliAllocator allocator, bool putt_cooldown)
    : multiLevel_(multi_level), puttCooldown_(putt_cooldown),
      lsb_(code, LsbOptions{threshold, multi_level}),
      dli_(code, lookup, allocator),
      ltt_(code.numData()),
      putt_(code.numStabilizers())
{
}

std::vector<LrcPair>
EraserPolicy::nextRound(const RoundObservation &obs)
{
    lsb_.speculate(obs.events, obs.leakedLabels, obs.hadLrc, ltt_);
    usedStabsScratch_.clear();
    auto lrcs = dli_.allocate(ltt_, putt_, usedStabsScratch_);
    if (puttCooldown_)
        putt_.advanceRound(usedStabsScratch_);
    return lrcs;
}

OptimalLrcPolicy::OptimalLrcPolicy(const RotatedSurfaceCode &code,
                                   const SwapLookupTable &lookup)
    : code_(code), dli_(code, lookup, DliAllocator::ExactMatching),
      emptyPutt_(code.numStabilizers()), ltt_(code.numData())
{
}

std::vector<LrcPair>
OptimalLrcPolicy::nextRound(const RoundObservation &obs)
{
    panicIf(obs.trueLeakedData.empty(),
            "Optimal policy needs oracle leakage state");
    ltt_.reset();
    for (int q = 0; q < code_.numData(); ++q) {
        if (obs.trueLeakedData[q])
            ltt_.mark(q);
    }
    usedStabsScratch_.clear();
    return dli_.allocate(ltt_, emptyPutt_, usedStabsScratch_);
}

PolicyFactory
makePolicyFactory(PolicyKind kind, const RotatedSurfaceCode &code,
                  const SwapLookupTable &lookup, bool every_round)
{
    switch (kind) {
      case PolicyKind::Never:
        return []() { return std::make_unique<NeverLrcPolicy>(); };
      case PolicyKind::Always:
        return [&code, every_round]() {
            return std::make_unique<AlwaysLrcPolicy>(code, every_round);
        };
      case PolicyKind::Eraser:
        return [&code, &lookup]() {
            return std::make_unique<EraserPolicy>(code, lookup, false);
        };
      case PolicyKind::EraserM:
        return [&code, &lookup]() {
            return std::make_unique<EraserPolicy>(code, lookup, true);
        };
      case PolicyKind::Optimal:
        return [&code, &lookup]() {
            return std::make_unique<OptimalLrcPolicy>(code, lookup);
        };
    }
    panic("unknown policy kind");
}

std::string
policyKindName(PolicyKind kind, bool every_round)
{
    switch (kind) {
      case PolicyKind::Never: return "No-LRC";
      case PolicyKind::Always:
        return every_round ? "DQLR" : "Always-LRCs";
      case PolicyKind::Eraser: return "ERASER";
      case PolicyKind::EraserM: return "ERASER+M";
      case PolicyKind::Optimal: return "Optimal";
    }
    panic("unknown policy kind");
}

} // namespace qec
