#include "core/policies.h"

#include "base/logging.h"

namespace qec
{

namespace
{

/**
 * Build a near-perfect (data, stab) pairing with Kuhn's matching,
 * processing `first_data` first so it is guaranteed a partner.
 */
std::vector<LrcPair>
buildPairing(const RotatedSurfaceCode &code, int first_data,
             int &leftover)
{
    const int n_data = code.numData();
    std::vector<int> order;
    if (first_data >= 0)
        order.push_back(first_data);
    for (int q = 0; q < n_data; ++q) {
        if (q != first_data)
            order.push_back(q);
    }

    // Kuhn's matching in the chosen order: left vertices matched
    // earlier are never unmatched by later augmentations.
    std::vector<int> match_right(code.numStabilizers(), -1);
    std::function<bool(int, std::vector<uint8_t> &)> augment =
        [&](int q, std::vector<uint8_t> &seen) {
            for (int s : code.stabilizersOfData(q)) {
                if (seen[s])
                    continue;
                seen[s] = 1;
                if (match_right[s] == -1 ||
                    augment(match_right[s], seen)) {
                    match_right[s] = q;
                    return true;
                }
            }
            return false;
        };
    for (int q : order) {
        std::vector<uint8_t> seen(code.numStabilizers(), 0);
        augment(q, seen);
    }

    std::vector<int> match_left(n_data, -1);
    for (int s = 0; s < code.numStabilizers(); ++s) {
        if (match_right[s] != -1)
            match_left[match_right[s]] = s;
    }

    std::vector<LrcPair> pairs;
    leftover = -1;
    for (int q = 0; q < n_data; ++q) {
        if (match_left[q] >= 0) {
            pairs.push_back({q, match_left[q]});
        } else {
            panicIf(leftover != -1,
                    "exactly one data qubit must be left over");
            leftover = q;
        }
    }
    panicIf(leftover == -1, "pairing cannot be perfect on data qubits");
    return pairs;
}

} // namespace

AlwaysLrcPolicy::AlwaysLrcPolicy(const RotatedSurfaceCode &code,
                                 bool every_round)
    : everyRound_(every_round)
{
    // Two alternating pairings whose leftover data qubits differ, so
    // every data qubit is serviced across consecutive LRC rounds.
    int leftover_a = -1;
    pairings_.push_back(buildPairing(code, -1, leftover_a));
    int leftover_b = -1;
    pairings_.push_back(buildPairing(code, leftover_a, leftover_b));
    panicIf(leftover_a == leftover_b,
            "alternating pairings must rotate the leftover qubit");
}

std::vector<LrcPair>
AlwaysLrcPolicy::scheduleFor(int round)
{
    if (everyRound_)
        return pairings_[round % 2];
    // LRC rounds are the odd rounds (Fig. 3: R1 plain, R2 LRCs, ...).
    if (round % 2 == 0)
        return {};
    return pairings_[(round / 2) % 2];
}

std::vector<LrcPair>
AlwaysLrcPolicy::firstRound()
{
    return scheduleFor(0);
}

std::vector<LrcPair>
AlwaysLrcPolicy::nextRound(const RoundObservation &obs)
{
    return scheduleFor(obs.round + 1);
}

EraserPolicy::EraserPolicy(const RotatedSurfaceCode &code,
                           const SwapLookupTable &lookup,
                           bool multi_level, LsbThreshold threshold,
                           DliAllocator allocator, bool putt_cooldown)
    : multiLevel_(multi_level), puttCooldown_(putt_cooldown),
      threshold_(threshold), allocator_(allocator),
      lsb_(code, LsbOptions{threshold, multi_level}),
      dli_(code, lookup, allocator),
      ltt_(code.numData()),
      putt_(code.numStabilizers())
{
}

std::vector<LrcPair>
EraserPolicy::nextRound(const RoundObservation &obs)
{
    lsb_.speculate(obs.events, obs.leakedLabels, obs.hadLrc, ltt_);
    usedStabsScratch_.clear();
    auto lrcs = dli_.allocate(ltt_, putt_, usedStabsScratch_);
    if (puttCooldown_)
        putt_.advanceRound(usedStabsScratch_);
    return lrcs;
}

template <typename Lane>
BatchEraserController<Lane>::BatchEraserController(
    const RotatedSurfaceCode &code, const SwapLookupTable &lookup,
    const BatchPolicySpec &spec)
    : puttCooldown_(spec.puttCooldown),
      lsb_(code, LsbOptions{spec.threshold, spec.multiLevel}),
      dli_(code, lookup, spec.allocator),
      ltt_(code.numData()),
      putt_(code.numStabilizers())
{
    panicIf(spec.kind != BatchPolicyKind::Eraser,
            "BatchEraserController needs an Eraser policy spec");
}

template <typename Lane>
void
BatchEraserController<Lane>::nextRound(
    const std::vector<Lane> &events, const std::vector<Lane> &labels,
    const std::vector<Lane> &had_lrc, const Lane &live,
    std::vector<std::vector<LrcPair>> &lrcs)
{
    // Stage 1 — word-parallel speculation straight on the planes.
    lsb_.speculateWords(events, labels, had_lrc, live, ltt_);

    // Stage 2 — collect the speculation-active lane mask (and the
    // candidate qubits any active lane will walk). Marks persist
    // across rounds for unserviced qubits, so the mask is recomputed
    // from the planes rather than from this round's events alone.
    candidates_.clear();
    Lane active{};
    for (int q = 0; q < ltt_.size(); ++q) {
        const Lane &w = ltt_.word(q);
        if (anyLane(w)) {
            candidates_.push_back(q);
            active |= w;
        }
    }
    active &= live;

    for (auto &lane_lrcs : lrcs)
        lane_lrcs.clear();

    // Stage 3 — per-lane DLI, but only on active lanes (at the error
    // rates of interest most rounds have none).
    forEachSetLane(active, [&](int l) {
        dli_.allocateLane(l, candidates_, ltt_, putt_, laneScratch_,
                          lrcs[l]);
        if (puttCooldown_) {
            for (const auto &pair : lrcs[l])
                putt_.markPending(pair.stab, l);
        }
    });

    // Stage 4 — PUTT cooldown advance for every lane at once.
    if (puttCooldown_)
        putt_.advanceRound();
}

template class BatchEraserController<uint64_t>;
template class BatchEraserController<WordVec<4>>;
template class BatchEraserController<WordVec<8>>;

OptimalLrcPolicy::OptimalLrcPolicy(const RotatedSurfaceCode &code,
                                   const SwapLookupTable &lookup)
    : code_(code), dli_(code, lookup, DliAllocator::ExactMatching),
      emptyPutt_(code.numStabilizers()), ltt_(code.numData())
{
}

std::vector<LrcPair>
OptimalLrcPolicy::nextRound(const RoundObservation &obs)
{
    panicIf(obs.trueLeakedData.empty(),
            "Optimal policy needs oracle leakage state");
    ltt_.reset();
    for (int q = 0; q < code_.numData(); ++q) {
        if (obs.trueLeakedData[q])
            ltt_.mark(q);
    }
    usedStabsScratch_.clear();
    return dli_.allocate(ltt_, emptyPutt_, usedStabsScratch_);
}

PolicyFactory
makePolicyFactory(PolicyKind kind, const RotatedSurfaceCode &code,
                  const SwapLookupTable &lookup, bool every_round)
{
    switch (kind) {
      case PolicyKind::Never:
        return []() { return std::make_unique<NeverLrcPolicy>(); };
      case PolicyKind::Always:
        return [&code, every_round]() {
            return std::make_unique<AlwaysLrcPolicy>(code, every_round);
        };
      case PolicyKind::Eraser:
        return [&code, &lookup]() {
            return std::make_unique<EraserPolicy>(code, lookup, false);
        };
      case PolicyKind::EraserM:
        return [&code, &lookup]() {
            return std::make_unique<EraserPolicy>(code, lookup, true);
        };
      case PolicyKind::Optimal:
        return [&code, &lookup]() {
            return std::make_unique<OptimalLrcPolicy>(code, lookup);
        };
    }
    panic("unknown policy kind");
}

std::string
policyKindName(PolicyKind kind, bool every_round)
{
    switch (kind) {
      case PolicyKind::Never: return "No-LRC";
      case PolicyKind::Always:
        return every_round ? "DQLR" : "Always-LRCs";
      case PolicyKind::Eraser: return "ERASER";
      case PolicyKind::EraserM: return "ERASER+M";
      case PolicyKind::Optimal: return "Optimal";
    }
    panic("unknown policy kind");
}

} // namespace qec
