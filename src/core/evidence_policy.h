/**
 * @file
 * Evidence-accumulating speculation — the "more sophisticated
 * speculation strategies" the paper's conclusion calls a rich area for
 * future work.
 *
 * ERASER's weakness is its false-negative rate: leakage that flips
 * only one parity check per round never crosses the >=2-flips-in-one-
 * round threshold (Section 6.4.2). This extension keeps a saturating
 * evidence counter per data qubit: each round adds the number of
 * flipped neighbours, idle rounds decay the counter, and an LRC is
 * requested once accumulated evidence crosses the threshold. A qubit
 * that flips a single check round after round is caught in two rounds
 * instead of never.
 */

#ifndef QEC_CORE_EVIDENCE_POLICY_H
#define QEC_CORE_EVIDENCE_POLICY_H

#include <vector>

#include "core/policies.h"

namespace qec
{

/** Tuning of the evidence accumulator. */
struct EvidenceOptions
{
    /** Evidence needed to schedule an LRC. 2 reproduces base ERASER's
     *  same-round behaviour while adding cross-round accumulation. */
    int fireThreshold = 2;
    /** Evidence removed after a round with no flipped neighbours. */
    int decay = 1;
    /** Counter saturation (bits in a hardware realization). */
    int saturate = 3;
};

/**
 * ERASER with cross-round evidence accumulation. Drop-in LrcPolicy;
 * reuses the Dynamic LRC Insertion and tracking tables unchanged (the
 * LSB is the only block that differs, so the FPGA delta is one small
 * counter per data qubit).
 */
class EvidenceEraserPolicy : public LrcPolicy
{
  public:
    EvidenceEraserPolicy(const RotatedSurfaceCode &code,
                         const SwapLookupTable &lookup,
                         EvidenceOptions options = {});

    std::string name() const override { return "ERASER+EV"; }
    std::vector<LrcPair> nextRound(const RoundObservation &obs)
        override;

    /** Current evidence for a data qubit (tests/diagnostics). */
    int evidence(int data) const { return evidence_[data]; }

  private:
    const RotatedSurfaceCode &code_;
    EvidenceOptions options_;
    DynamicLrcInsertion dli_;
    LeakageTrackingTable ltt_;
    ParityUsageTable putt_;
    std::vector<int> evidence_;
};

} // namespace qec

#endif // QEC_CORE_EVIDENCE_POLICY_H
