/**
 * @file
 * Dynamic LRC Insertion (Sections 4.3-4.4).
 *
 * Given the suspect set (LTT) and the parity cooldown set (PUTT),
 * allocate a SWAP partner for as many suspect data qubits as possible
 * for the next round. The paper's hardware walks the SWAP Lookup
 * Table (primary, then backups); an exact maximum-matching allocator
 * is provided as an ablation and for the idealized Optimal policy.
 */

#ifndef QEC_CORE_DLI_H
#define QEC_CORE_DLI_H

#include <vector>

#include "code/builder.h"
#include "code/rotated_surface_code.h"
#include "core/swap_lookup.h"
#include "core/tracking_tables.h"

namespace qec
{

/** Allocation strategy for Dynamic LRC Insertion. */
enum class DliAllocator
{
    /** Paper hardware: primary, then backup entries, first fit. */
    LookupTable,
    /** Exact maximum bipartite matching (upper bound ablation). */
    ExactMatching,
};

/**
 * Reusable scratch for the word-parallel engine's per-lane DLI
 * fallback: the "parity qubit taken this round" set is epoch-versioned
 * so consecutive lanes never pay a table wipe. One instance per
 * controller, never shared across threads.
 */
struct DliLaneScratch
{
    std::vector<int> takenEpoch;
    int epoch = 0;
};

class DynamicLrcInsertion
{
  public:
    DynamicLrcInsertion(const RotatedSurfaceCode &code,
                        const SwapLookupTable &lookup,
                        DliAllocator allocator =
                            DliAllocator::LookupTable);

    /**
     * Allocate LRCs for the next round.
     *
     * Marked data qubits that receive an LRC are cleared from the LTT;
     * qubits that could not be scheduled stay marked and retry next
     * round. Parity qubits allocated here must be blocked next round;
     * the caller feeds `usedStabs` into PUTT::advanceRound.
     *
     * @param ltt   Suspect table (updated in place).
     * @param putt  Cooldown table for the current round.
     * @param[out] used_stabs Stabilizers allocated in this round.
     * @return LRC pairs for the next syndrome extraction round.
     */
    std::vector<LrcPair> allocate(LeakageTrackingTable &ltt,
                                  const ParityUsageTable &putt,
                                  std::vector<int> &used_stabs) const;

    /**
     * Allocate LRCs for one lane of a word-parallel tracking-table
     * pair — the per-lane fallback the batch controller runs only on
     * lanes whose speculation-active mask is nonzero. Walks exactly
     * the order `allocate` walks (candidates ascending, primary then
     * backups / exact matching), so lane l's output is bit-identical
     * to a per-lane policy's. Allocated qubits are cleared from lane
     * l of the LTT; the caller feeds the chosen stabs (the pairs'
     * `stab` fields) into BatchParityUsageTable::markPending.
     *
     * @param lane       Lane to allocate for.
     * @param candidates Ascending data-qubit ids whose LTT plane has
     *                   any lane set (a superset of lane l's marks).
     * @param ltt        Word-parallel suspect table (updated in place).
     * @param putt       Word-parallel cooldown table, current round.
     * @param scratch    Reusable epoch-versioned taken set.
     * @param[out] lrcs  Cleared, then filled with lane l's pairs.
     */
    template <typename Lane>
    void allocateLane(int lane, const std::vector<int> &candidates,
                      BatchLeakageTrackingTable<Lane> &ltt,
                      const BatchParityUsageTable<Lane> &putt,
                      DliLaneScratch &scratch,
                      std::vector<LrcPair> &lrcs) const;

  private:
    std::vector<LrcPair> allocateLookup(
        LeakageTrackingTable &ltt, const ParityUsageTable &putt,
        std::vector<int> &used_stabs) const;
    std::vector<LrcPair> allocateMatching(
        LeakageTrackingTable &ltt, const ParityUsageTable &putt,
        std::vector<int> &used_stabs) const;

    const RotatedSurfaceCode &code_;
    const SwapLookupTable &lookup_;
    DliAllocator allocator_;
};

} // namespace qec

#endif // QEC_CORE_DLI_H
