/**
 * @file
 * LRC scheduling policies: the paper's baselines (Never, Always-LRCs,
 * idealized Optimal) and the proposed ERASER / ERASER+M controllers.
 *
 * A policy observes each round's syndrome and returns the LRC pairs to
 * insert into the *next* round — matching the paper's pipeline where
 * the control processor has ~120 ns after readout to adapt the next
 * schedule (Fig. 12).
 */

#ifndef QEC_CORE_POLICIES_H
#define QEC_CORE_POLICIES_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "code/builder.h"
#include "code/rotated_surface_code.h"
#include "core/dli.h"
#include "core/lsb.h"
#include "core/swap_lookup.h"
#include "core/tracking_tables.h"

namespace qec
{

/** How scheduled leakage removal is realized in the circuit. */
enum class RemovalProtocol
{
    SwapLrc,   ///< SWAP-based LRC (main text).
    Dqlr,      ///< LeakageISWAP-based DQLR protocol (Appendix A.2).
};

/** What a policy sees after each syndrome extraction round. */
struct RoundObservation
{
    int round = 0;
    /** Detection event (syndrome flip vs previous round) per
     *  stabilizer index. */
    std::vector<uint8_t> events;
    /** Multi-level |L> label per stabilizer (ERASER+M input). */
    std::vector<uint8_t> leakedLabels;
    /** Data qubits that received leakage removal in this round. */
    std::vector<uint8_t> hadLrc;
    /** Ground-truth data-qubit leakage (visible to Optimal only). */
    std::vector<uint8_t> trueLeakedData;
};

/**
 * How the word-parallel experiment engine may evaluate a policy
 * across a whole word-group (see BatchEraserController).
 */
enum class BatchPolicyKind
{
    /** No lane-parallel form: one policy instance per lane, fed a
     *  materialized per-lane RoundObservation (the fallback path). */
    PerLane,
    /** Never schedules anything: skip policy evaluation outright. */
    Never,
    /** The schedule depends only on the round index, never on the
     *  syndrome: one shared instance drives every lane. */
    Uniform,
    /** The ERASER controller: LSB/LTT/PUTT evaluate word-parallel on
     *  bit planes, DLI falls back per lane on speculation-active
     *  lanes only. */
    Eraser,
};

/** Lane-parallel evaluation capability + parameters of a policy. */
struct BatchPolicySpec
{
    BatchPolicyKind kind = BatchPolicyKind::PerLane;
    /** ERASER parameters (kind == Eraser only). */
    bool multiLevel = false;
    bool puttCooldown = true;
    LsbThreshold threshold = LsbThreshold::AtLeastTwo;
    DliAllocator allocator = DliAllocator::LookupTable;
};

/** Scheduling policy interface. */
class LrcPolicy
{
  public:
    virtual ~LrcPolicy() = default;

    virtual std::string name() const = 0;

    /** ERASER+M consumes |L> labels and squashes the MOV-back when an
     *  LRC'd data qubit reads out as |L> (Section 4.6). */
    virtual bool usesMultiLevelReadout() const { return false; }

    /**
     * Lane-parallel evaluation capability. The default (PerLane) is
     * always correct; overriding it promises the word-parallel
     * evaluation is bit-identical to calling nextRound per lane,
     * which the cross-width differential tests pin.
     */
    virtual BatchPolicySpec batchSpec() const { return {}; }

    /** LRC pairs to execute in round 0 (before any syndrome). */
    virtual std::vector<LrcPair> firstRound() { return {}; }

    /** Observe round obs.round's syndrome; return LRCs for the next
     *  round. */
    virtual std::vector<LrcPair> nextRound(
        const RoundObservation &obs) = 0;
};

/** No leakage removal at all. */
class NeverLrcPolicy : public LrcPolicy
{
  public:
    std::string name() const override { return "No-LRC"; }
    BatchPolicySpec
    batchSpec() const override
    {
        BatchPolicySpec spec;
        spec.kind = BatchPolicyKind::Never;
        return spec;
    }
    std::vector<LrcPair>
    nextRound(const RoundObservation &) override
    {
        return {};
    }
};

/**
 * Always-LRCs (Section 2.4): schedule LRCs for d^2-1 data qubits in
 * every other round (or every round, for the DQLR baseline), rotating
 * which data qubit sits out so all qubits are serviced.
 */
class AlwaysLrcPolicy : public LrcPolicy
{
  public:
    AlwaysLrcPolicy(const RotatedSurfaceCode &code, bool every_round);

    std::string
    name() const override
    {
        return everyRound_ ? "DQLR" : "Always-LRCs";
    }
    BatchPolicySpec
    batchSpec() const override
    {
        // The schedule is a pure function of the round index, so one
        // instance serves every lane of a word-group.
        BatchPolicySpec spec;
        spec.kind = BatchPolicyKind::Uniform;
        return spec;
    }
    std::vector<LrcPair> firstRound() override;
    std::vector<LrcPair> nextRound(const RoundObservation &obs)
        override;

  private:
    std::vector<LrcPair> scheduleFor(int round);

    bool everyRound_;
    /** Two alternating near-perfect pairings with different leftover
     *  data qubits. */
    std::vector<std::vector<LrcPair>> pairings_;
    int lrcRoundsSeen_ = 0;
};

/**
 * The proposed controller: Leakage Speculation Block + Dynamic LRC
 * Insertion + tracking tables. With `multi_level` this is ERASER+M.
 */
class EraserPolicy : public LrcPolicy
{
  public:
    /**
     * @param putt_cooldown Block parity qubits used last round
     *        (Section 4.2.2); disabling it is an ablation that lets
     *        leakage accumulate on repeatedly-swapped parity qubits.
     */
    EraserPolicy(const RotatedSurfaceCode &code,
                 const SwapLookupTable &lookup, bool multi_level,
                 LsbThreshold threshold = LsbThreshold::AtLeastTwo,
                 DliAllocator allocator = DliAllocator::LookupTable,
                 bool putt_cooldown = true);

    std::string
    name() const override
    {
        return multiLevel_ ? "ERASER+M" : "ERASER";
    }
    bool usesMultiLevelReadout() const override { return multiLevel_; }
    BatchPolicySpec
    batchSpec() const override
    {
        BatchPolicySpec spec;
        spec.kind = BatchPolicyKind::Eraser;
        spec.multiLevel = multiLevel_;
        spec.puttCooldown = puttCooldown_;
        spec.threshold = threshold_;
        spec.allocator = allocator_;
        return spec;
    }
    std::vector<LrcPair> nextRound(const RoundObservation &obs)
        override;

    const LeakageTrackingTable & ltt() const { return ltt_; }
    const ParityUsageTable & putt() const { return putt_; }

  private:
    bool multiLevel_;
    bool puttCooldown_;
    LsbThreshold threshold_;
    DliAllocator allocator_;
    LeakageSpeculationBlock lsb_;
    DynamicLrcInsertion dli_;
    LeakageTrackingTable ltt_;
    ParityUsageTable putt_;
    std::vector<int> usedStabsScratch_;
};

/**
 * Idealized scheduling (Section 3.2): an oracle schedules removal for
 * exactly the data qubits that are truly leaked, resolving SWAP
 * conflicts with an exact matching and no cooldown constraints.
 */
class OptimalLrcPolicy : public LrcPolicy
{
  public:
    OptimalLrcPolicy(const RotatedSurfaceCode &code,
                     const SwapLookupTable &lookup);

    std::string name() const override { return "Optimal"; }
    std::vector<LrcPair> nextRound(const RoundObservation &obs)
        override;

  private:
    const RotatedSurfaceCode &code_;
    DynamicLrcInsertion dli_;
    ParityUsageTable emptyPutt_;
    /** Reused oracle-mark table and scratch (no per-round allocs). */
    LeakageTrackingTable ltt_;
    std::vector<int> usedStabsScratch_;
};

/**
 * Word-parallel ERASER controller: the lane-parallel form of
 * EraserPolicy for one word-group of W = 64/256/512 shots.
 *
 * Where W per-lane EraserPolicy instances each scan a materialized
 * byte-array observation, this controller keeps ONE set of LTT/PUTT
 * bit planes for the whole group and evaluates the speculation stage
 * as word arithmetic directly on the engine's detection-event planes:
 * LSB thresholds all lanes at once (bit-sliced neighbor counts,
 * had-LRC suppression planes, ERASER+M |L> label planes), and only
 * lanes whose speculation-active mask is nonzero fall back to the
 * inherently sequential per-lane DLI walk. Round cost is
 * O(lattice x plane words + active lanes) instead of
 * O(lattice x lanes).
 *
 * Lane l's schedule stream is bit-identical to a dedicated
 * EraserPolicy fed lane l's observations — the invariant the
 * cross-width controller differentials pin.
 */
template <typename Lane>
class BatchEraserController
{
  public:
    BatchEraserController(const RotatedSurfaceCode &code,
                          const SwapLookupTable &lookup,
                          const BatchPolicySpec &spec);

    /**
     * Observe one round's planes and emit every lane's next-round
     * LRCs.
     *
     * @param events  Detection-event lane plane per stabilizer.
     * @param labels  |L> label lane plane per stabilizer (consulted
     *                only for ERASER+M).
     * @param had_lrc Plane per data qubit: lanes whose LRC serviced
     *                it in the round producing this syndrome.
     * @param live    Live-lane mask of the word-group.
     * @param[out] lrcs Per-lane schedules for the next round; every
     *                entry is rewritten (inactive lanes get empty).
     */
    void nextRound(const std::vector<Lane> &events,
                   const std::vector<Lane> &labels,
                   const std::vector<Lane> &had_lrc, const Lane &live,
                   std::vector<std::vector<LrcPair>> &lrcs);

    const BatchLeakageTrackingTable<Lane> & ltt() const
    {
        return ltt_;
    }
    const BatchParityUsageTable<Lane> & putt() const { return putt_; }

  private:
    bool puttCooldown_;
    LeakageSpeculationBlock lsb_;
    DynamicLrcInsertion dli_;
    BatchLeakageTrackingTable<Lane> ltt_;
    BatchParityUsageTable<Lane> putt_;
    DliLaneScratch laneScratch_;
    /** Data qubits whose LTT plane has any lane set, ascending. */
    std::vector<int> candidates_;
};

extern template class BatchEraserController<uint64_t>;
extern template class BatchEraserController<WordVec<4>>;
extern template class BatchEraserController<WordVec<8>>;

/** Named policy kinds for factories and benches. */
enum class PolicyKind
{
    Never,
    Always,
    Eraser,
    EraserM,
    Optimal,
};

/** Factory producing a fresh policy instance per experiment shot. */
using PolicyFactory = std::function<std::unique_ptr<LrcPolicy>()>;

/**
 * Build a factory for a policy kind.
 * @param every_round For Always under the DQLR protocol (schedules
 *        removal each round instead of alternating).
 */
PolicyFactory makePolicyFactory(PolicyKind kind,
                                const RotatedSurfaceCode &code,
                                const SwapLookupTable &lookup,
                                bool every_round = false);

/** Display name of a policy kind (matches LrcPolicy::name()). */
std::string policyKindName(PolicyKind kind, bool every_round = false);

} // namespace qec

#endif // QEC_CORE_POLICIES_H
