#include "core/evidence_policy.h"

#include <algorithm>

#include "base/logging.h"

namespace qec
{

EvidenceEraserPolicy::EvidenceEraserPolicy(
    const RotatedSurfaceCode &code, const SwapLookupTable &lookup,
    EvidenceOptions options)
    : code_(code), options_(options), dli_(code, lookup),
      ltt_(code.numData()), putt_(code.numStabilizers()),
      evidence_(code.numData(), 0)
{
    panicIf(options_.fireThreshold < 1, "fire threshold must be >= 1");
}

std::vector<LrcPair>
EvidenceEraserPolicy::nextRound(const RoundObservation &obs)
{
    for (int q = 0; q < code_.numData(); ++q) {
        if (obs.hadLrc[q]) {
            // Just cleaned: any residual flips are echoes.
            evidence_[q] = 0;
            continue;
        }
        int flips = 0;
        for (int s : code_.stabilizersOfData(q))
            flips += obs.events[s] ? 1 : 0;
        if (flips == 0) {
            evidence_[q] = std::max(0, evidence_[q] - options_.decay);
        } else {
            evidence_[q] = std::min(options_.saturate,
                                    evidence_[q] + flips);
        }
        if (evidence_[q] >= options_.fireThreshold)
            ltt_.mark(q);
    }

    std::vector<int> used_stabs;
    auto lrcs = dli_.allocate(ltt_, putt_, used_stabs);
    putt_.advanceRound(used_stabs);
    for (const auto &pair : lrcs)
        evidence_[pair.data] = 0;
    return lrcs;
}

} // namespace qec
