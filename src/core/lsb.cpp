#include "core/lsb.h"

#include "base/logging.h"

namespace qec
{

LeakageSpeculationBlock::LeakageSpeculationBlock(
    const RotatedSurfaceCode &code, LsbOptions options)
    : code_(code), options_(options)
{
}

int
LeakageSpeculationBlock::thresholdFor(int neighbors) const
{
    switch (options_.threshold) {
      case LsbThreshold::AtLeastTwo:
        return 2;
      case LsbThreshold::HalfNeighbors:
        return (neighbors + 1) / 2;
      case LsbThreshold::AllNeighbors:
        return neighbors;
    }
    panic("unknown LSB threshold mode");
}

void
LeakageSpeculationBlock::speculate(
    const std::vector<uint8_t> &events,
    const std::vector<uint8_t> &leaked_labels,
    const std::vector<uint8_t> &had_lrc,
    LeakageTrackingTable &ltt) const
{
    panicIf((int)events.size() != code_.numStabilizers(),
            "need one detection event per stabilizer");

    for (int q = 0; q < code_.numData(); ++q) {
        // An LRC in the round producing this syndrome already removed
        // any leakage on this qubit (Section 4.2.1).
        if (had_lrc[q])
            continue;
        const auto &stabs = code_.stabilizersOfData(q);
        int flips = 0;
        for (int s : stabs)
            flips += events[s] ? 1 : 0;
        if (flips >= thresholdFor((int)stabs.size()))
            ltt.mark(q);
    }

    if (options_.useMultiLevelReadout) {
        // A parity qubit read out as |L> presumably transported
        // leakage to a neighbour: suspect all its data qubits
        // (Section 4.6.1).
        panicIf((int)leaked_labels.size() != code_.numStabilizers(),
                "need one |L> label per stabilizer");
        for (int s = 0; s < code_.numStabilizers(); ++s) {
            if (!leaked_labels[s])
                continue;
            for (int q : code_.stabilizer(s).support) {
                if (!had_lrc[q])
                    ltt.mark(q);
            }
        }
    }
}

} // namespace qec
