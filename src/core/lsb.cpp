#include "core/lsb.h"

#include <cstring>

#include "base/logging.h"
#include "base/simd_word.h"

namespace qec
{

LeakageSpeculationBlock::LeakageSpeculationBlock(
    const RotatedSurfaceCode &code, LsbOptions options)
    : code_(code), options_(options)
{
    thresholds_.reserve(code_.numData());
    for (int q = 0; q < code_.numData(); ++q)
        thresholds_.push_back((uint8_t)thresholdFor(
            (int)code_.stabilizersOfData(q).size()));
}

int
LeakageSpeculationBlock::thresholdFor(int neighbors) const
{
    switch (options_.threshold) {
      case LsbThreshold::AtLeastTwo:
        return 2;
      case LsbThreshold::HalfNeighbors:
        return (neighbors + 1) / 2;
      case LsbThreshold::AllNeighbors:
        return neighbors;
    }
    panic("unknown LSB threshold mode");
}

void
LeakageSpeculationBlock::speculate(
    const std::vector<uint8_t> &events,
    const std::vector<uint8_t> &leaked_labels,
    const std::vector<uint8_t> &had_lrc,
    LeakageTrackingTable &ltt) const
{
    panicIf((int)events.size() != code_.numStabilizers(),
            "need one detection event per stabilizer");

    // Event-sparse scan: walk the fired stabilizers and bump their
    // support's flip counters, then threshold only the touched data
    // qubits. Equivalent to summing each data qubit's adjacent events
    // (the adjacency lists are mutual inverses), but at the error
    // rates of interest most rounds fire nothing, so the cost tracks
    // the event count instead of the lattice size.
    if ((int)flipCount_.size() < code_.numData())
        flipCount_.assign(code_.numData(), 0);
    touched_.clear();
    const uint8_t *ev = events.data();
    const size_t n_stabs = events.size();
    auto bump = [&](int s) {
        for (int q : code_.stabilizer(s).support) {
            if (flipCount_[q]++ == 0)
                touched_.push_back(q);
        }
    };
    // Scan eight event bytes per load; all-zero words (the common
    // case) cost one compare.
    size_t s = 0;
    for (; s + 8 <= n_stabs; s += 8) {
        uint64_t word;
        std::memcpy(&word, ev + s, 8);
        while (word) {
            const int byte = __builtin_ctzll(word) >> 3;
            bump((int)s + byte);
            word &= ~(uint64_t{0xFF} << (byte * 8));
        }
    }
    for (; s < n_stabs; ++s) {
        if (ev[s])
            bump((int)s);
    }
    for (int q : touched_) {
        const int flips = flipCount_[q];
        flipCount_[q] = 0;   // restore the all-zero invariant
        // An LRC in the round producing this syndrome already removed
        // any leakage on this qubit (Section 4.2.1).
        if (had_lrc[q])
            continue;
        if (flips >= thresholds_[q])
            ltt.mark(q);
    }

    if (options_.useMultiLevelReadout) {
        // A parity qubit read out as |L> presumably transported
        // leakage to a neighbour: suspect all its data qubits
        // (Section 4.6.1).
        panicIf((int)leaked_labels.size() != code_.numStabilizers(),
                "need one |L> label per stabilizer");
        for (int s = 0; s < code_.numStabilizers(); ++s) {
            if (!leaked_labels[s])
                continue;
            for (int q : code_.stabilizer(s).support) {
                if (!had_lrc[q])
                    ltt.mark(q);
            }
        }
    }
}

template <typename Lane>
void
LeakageSpeculationBlock::speculateWords(
    const std::vector<Lane> &events,
    const std::vector<Lane> &leaked_labels,
    const std::vector<Lane> &had_lrc, const Lane &live,
    BatchLeakageTrackingTable<Lane> &ltt) const
{
    panicIf((int)events.size() != code_.numStabilizers(),
            "need one detection-event plane per stabilizer");
    panicIf((int)had_lrc.size() != code_.numData(),
            "need one LRC suppression plane per data qubit");

    for (int q = 0; q < code_.numData(); ++q) {
        // Bit-sliced flip counter over the neighbor event planes:
        // ge_k holds the lanes with at least k flipped neighbors so
        // far. Rotated-surface data qubits have at most 4 neighbors,
        // so four cumulative masks cover every threshold rule.
        Lane ge1{}, ge2{}, ge3{}, ge4{};
        for (int s : code_.stabilizersOfData(q)) {
            const Lane e = events[s];
            ge4 |= ge3 & e;
            ge3 |= ge2 & e;
            ge2 |= ge1 & e;
            ge1 |= e;
        }
        if (!anyLane(ge1))
            continue;   // no neighbor fired in any lane
        const int t = thresholds_[q];
        Lane over = t <= 1 ? ge1 : t == 2 ? ge2 : t == 3 ? ge3 : ge4;
        // An LRC in the round producing this syndrome already removed
        // any leakage on this qubit (Section 4.2.1).
        over = andnot(over & live, had_lrc[q]);
        if (anyLane(over))
            ltt.mark(q, over);
    }

    if (options_.useMultiLevelReadout) {
        // A parity qubit read out as |L> presumably transported
        // leakage to a neighbour: suspect all its data qubits on the
        // labelled lanes (Section 4.6.1).
        panicIf((int)leaked_labels.size() != code_.numStabilizers(),
                "need one |L> label plane per stabilizer");
        for (int s = 0; s < code_.numStabilizers(); ++s) {
            const Lane lab = leaked_labels[s] & live;
            if (!anyLane(lab))
                continue;
            for (int q : code_.stabilizer(s).support) {
                const Lane m = andnot(lab, had_lrc[q]);
                if (anyLane(m))
                    ltt.mark(q, m);
            }
        }
    }
}

template void LeakageSpeculationBlock::speculateWords<uint64_t>(
    const std::vector<uint64_t> &, const std::vector<uint64_t> &,
    const std::vector<uint64_t> &, const uint64_t &,
    BatchLeakageTrackingTable<uint64_t> &) const;
template void LeakageSpeculationBlock::speculateWords<WordVec<4>>(
    const std::vector<WordVec<4>> &, const std::vector<WordVec<4>> &,
    const std::vector<WordVec<4>> &, const WordVec<4> &,
    BatchLeakageTrackingTable<WordVec<4>> &) const;
template void LeakageSpeculationBlock::speculateWords<WordVec<8>>(
    const std::vector<WordVec<8>> &, const std::vector<WordVec<8>> &,
    const std::vector<WordVec<8>> &, const WordVec<8> &,
    BatchLeakageTrackingTable<WordVec<8>> &) const;

} // namespace qec
