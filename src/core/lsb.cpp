#include "core/lsb.h"

#include <cstring>

#include "base/logging.h"

namespace qec
{

LeakageSpeculationBlock::LeakageSpeculationBlock(
    const RotatedSurfaceCode &code, LsbOptions options)
    : code_(code), options_(options)
{
}

int
LeakageSpeculationBlock::thresholdFor(int neighbors) const
{
    switch (options_.threshold) {
      case LsbThreshold::AtLeastTwo:
        return 2;
      case LsbThreshold::HalfNeighbors:
        return (neighbors + 1) / 2;
      case LsbThreshold::AllNeighbors:
        return neighbors;
    }
    panic("unknown LSB threshold mode");
}

void
LeakageSpeculationBlock::speculate(
    const std::vector<uint8_t> &events,
    const std::vector<uint8_t> &leaked_labels,
    const std::vector<uint8_t> &had_lrc,
    LeakageTrackingTable &ltt) const
{
    panicIf((int)events.size() != code_.numStabilizers(),
            "need one detection event per stabilizer");

    // Event-sparse scan: walk the fired stabilizers and bump their
    // support's flip counters, then threshold only the touched data
    // qubits. Equivalent to summing each data qubit's adjacent events
    // (the adjacency lists are mutual inverses), but at the error
    // rates of interest most rounds fire nothing, so the cost tracks
    // the event count instead of the lattice size.
    if ((int)flipCount_.size() < code_.numData())
        flipCount_.assign(code_.numData(), 0);
    touched_.clear();
    const uint8_t *ev = events.data();
    const size_t n_stabs = events.size();
    auto bump = [&](int s) {
        for (int q : code_.stabilizer(s).support) {
            if (flipCount_[q]++ == 0)
                touched_.push_back(q);
        }
    };
    // Scan eight event bytes per load; all-zero words (the common
    // case) cost one compare.
    size_t s = 0;
    for (; s + 8 <= n_stabs; s += 8) {
        uint64_t word;
        std::memcpy(&word, ev + s, 8);
        while (word) {
            const int byte = __builtin_ctzll(word) >> 3;
            bump((int)s + byte);
            word &= ~(uint64_t{0xFF} << (byte * 8));
        }
    }
    for (; s < n_stabs; ++s) {
        if (ev[s])
            bump((int)s);
    }
    for (int q : touched_) {
        const int flips = flipCount_[q];
        flipCount_[q] = 0;   // restore the all-zero invariant
        // An LRC in the round producing this syndrome already removed
        // any leakage on this qubit (Section 4.2.1).
        if (had_lrc[q])
            continue;
        const int neighbors = (int)code_.stabilizersOfData(q).size();
        if (flips >= thresholdFor(neighbors))
            ltt.mark(q);
    }

    if (options_.useMultiLevelReadout) {
        // A parity qubit read out as |L> presumably transported
        // leakage to a neighbour: suspect all its data qubits
        // (Section 4.6.1).
        panicIf((int)leaked_labels.size() != code_.numStabilizers(),
                "need one |L> label per stabilizer");
        for (int s = 0; s < code_.numStabilizers(); ++s) {
            if (!leaked_labels[s])
                continue;
            for (int q : code_.stabilizer(s).support) {
                if (!had_lrc[q])
                    ltt.mark(q);
            }
        }
    }
}

} // namespace qec
