/**
 * @file
 * QEC Schedule Generator (Section 4.5): turns a round index plus the
 * LRC assignments chosen by a scheduling policy into the instruction
 * sequence for that round, under the selected removal protocol.
 */

#ifndef QEC_CORE_QSG_H
#define QEC_CORE_QSG_H

#include "code/builder.h"
#include "code/rotated_surface_code.h"
#include "core/policies.h"

namespace qec
{

class QecScheduleGenerator
{
  public:
    QecScheduleGenerator(const RotatedSurfaceCode &code,
                         RemovalProtocol protocol)
        : code_(code), protocol_(protocol)
    {
    }

    RemovalProtocol protocol() const { return protocol_; }

    /**
     * Generate round `round` with leakage removal for `pairs`.
     * SWAP LRCs are woven into the stabilizer readout; DQLR appends
     * its LeakageISWAP + reset segment after a plain round.
     */
    RoundSchedule
    generate(int round, const std::vector<LrcPair> &pairs) const
    {
        if (protocol_ == RemovalProtocol::SwapLrc)
            return buildRoundSchedule(code_, round, pairs);
        RoundSchedule sched = buildRoundSchedule(code_, round, {});
        auto tail = buildDqlrSegment(code_, pairs);
        sched.ops.insert(sched.ops.end(), tail.begin(), tail.end());
        return sched;
    }

  private:
    const RotatedSurfaceCode &code_;
    RemovalProtocol protocol_;
};

} // namespace qec

#endif // QEC_CORE_QSG_H
