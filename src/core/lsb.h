/**
 * @file
 * Leakage Speculation Block (Sections 4.1-4.2).
 *
 * Consumes the current syndrome's detection events and marks suspect
 * data qubits in the LTT. A data qubit is speculated leaked when at
 * least `threshold(neighbors)` of its adjacent parity checks flipped,
 * unless it received an LRC in the round that produced this syndrome
 * (its leakage was just removed, so flips are residual). ERASER+M
 * additionally marks every data neighbour of a parity qubit whose
 * multi-level readout reported |L> (Section 4.6.1).
 */

#ifndef QEC_CORE_LSB_H
#define QEC_CORE_LSB_H

#include <cstdint>
#include <vector>

#include "code/rotated_surface_code.h"
#include "core/tracking_tables.h"

namespace qec
{

/** Speculation threshold rule (ablation knob, Section 4.1.2). */
enum class LsbThreshold
{
    /** Paper hardware (Fig. 10): at least two flipped neighbours. */
    AtLeastTwo,
    /** Paper prose (4.2.1): at least half the neighbours (1 flip is
     *  enough for weight-2 boundary data qubits) — more conservative,
     *  schedules more LRCs. */
    HalfNeighbors,
    /** Aggressive: all neighbours must flip. */
    AllNeighbors,
};

/** Configuration of the speculation logic. */
struct LsbOptions
{
    LsbThreshold threshold = LsbThreshold::AtLeastTwo;
    /** ERASER+M: use multi-level |L> labels on parity readout. */
    bool useMultiLevelReadout = false;
};

class LeakageSpeculationBlock
{
  public:
    LeakageSpeculationBlock(const RotatedSurfaceCode &code,
                            LsbOptions options);

    /**
     * Analyze one round's syndrome and update the LTT.
     *
     * @param events        Detection event per stabilizer index.
     * @param leaked_labels Multi-level |L> flag per stabilizer index
     *                      (ignored unless options.useMultiLevelReadout).
     * @param had_lrc       Data qubits that received an LRC in the
     *                      round that produced this syndrome.
     * @param ltt           Table to update.
     */
    void speculate(const std::vector<uint8_t> &events,
                   const std::vector<uint8_t> &leaked_labels,
                   const std::vector<uint8_t> &had_lrc,
                   LeakageTrackingTable &ltt) const;

    /**
     * Word-parallel speculation over detection-event bit planes: every
     * lane of a word-group is thresholded at once. The neighbor flip
     * count is accumulated as a bit-sliced >=1/>=2/>=3/>=4 ripple over
     * the (at most four) adjacent stabilizer event planes, then the
     * per-qubit threshold selects the mask of lanes to mark — lane for
     * lane what `speculate` computes from one lane's byte arrays.
     *
     * @param events        Detection-event lane plane per stabilizer.
     * @param leaked_labels |L> label lane plane per stabilizer
     *                      (ignored unless options.useMultiLevelReadout;
     *                      may be empty in that case).
     * @param had_lrc       LRC suppression plane per data qubit: lanes
     *                      whose LRC serviced the qubit in the round
     *                      producing this syndrome.
     * @param live          Live-lane mask; dead (ragged-tail) lanes are
     *                      never marked even if a stray plane bit leaks
     *                      in.
     * @param ltt           Word-parallel table to update.
     */
    template <typename Lane>
    void speculateWords(const std::vector<Lane> &events,
                        const std::vector<Lane> &leaked_labels,
                        const std::vector<Lane> &had_lrc,
                        const Lane &live,
                        BatchLeakageTrackingTable<Lane> &ltt) const;

    /** Flip-count threshold for a data qubit with `neighbors`
     *  adjacent parity qubits. */
    int thresholdFor(int neighbors) const;

  private:
    const RotatedSurfaceCode &code_;
    LsbOptions options_;
    /** thresholdFor(#neighbors) per data qubit, fixed at build. */
    std::vector<uint8_t> thresholds_;
    // Event-sparse scan scratch: per-data-qubit flip counters plus the
    // list of qubits touched this call (so cost tracks fired events,
    // not the lattice; one LSB per lane-policy, never shared).
    mutable std::vector<uint8_t> flipCount_;
    mutable std::vector<int> touched_;
};

} // namespace qec

#endif // QEC_CORE_LSB_H
