/**
 * @file
 * The two state tables of the ERASER microarchitecture (Fig. 10).
 *
 * The Leakage Tracking Table (LTT) holds one bit per data qubit: set
 * when the Leakage Speculation Block suspects leakage, cleared when an
 * LRC services the qubit.
 *
 * The Parity qubit Usage Tracking Table (PUTT) holds one bit per
 * parity qubit: set while the qubit is cooling down after taking part
 * in an LRC (it skipped its measure+reset that round, so using it
 * again immediately would let leakage accumulate — Section 4.2.2).
 */

#ifndef QEC_CORE_TRACKING_TABLES_H
#define QEC_CORE_TRACKING_TABLES_H

#include <cstdint>
#include <vector>

namespace qec
{

/** Leakage Tracking Table: one speculation bit per data qubit. */
class LeakageTrackingTable
{
  public:
    explicit LeakageTrackingTable(int num_data)
        : marks_(num_data, 0)
    {
    }

    void
    mark(int data)
    {
        markedCount_ += marks_[data] == 0;
        marks_[data] = 1;
    }
    void
    clear(int data)
    {
        markedCount_ -= marks_[data] != 0;
        marks_[data] = 0;
    }
    bool marked(int data) const { return marks_[data] != 0; }
    int size() const { return (int)marks_.size(); }
    /** Number of currently marked qubits: lets the DLI skip its scan
     *  outright in the (dominant, low-p) quiescent rounds. */
    int markedCount() const { return markedCount_; }

    void
    reset()
    {
        std::fill(marks_.begin(), marks_.end(), 0);
        markedCount_ = 0;
    }

    /** Marked data qubits in ascending id order. */
    std::vector<int>
    markedList() const
    {
        std::vector<int> out;
        for (int q = 0; q < (int)marks_.size(); ++q) {
            if (marks_[q])
                out.push_back(q);
        }
        return out;
    }

  private:
    std::vector<uint8_t> marks_;
    int markedCount_ = 0;
};

/** Parity qubit Usage Tracking Table: cooldown bit per stabilizer. */
class ParityUsageTable
{
  public:
    explicit ParityUsageTable(int num_stabs)
        : used_(num_stabs, 0)
    {
    }

    bool used(int stab) const { return used_[stab] != 0; }
    int size() const { return (int)used_.size(); }

    void
    reset()
    {
        std::fill(used_.begin(), used_.end(), 0);
        lastUsed_.clear();
    }

    /**
     * Advance one round: parity qubits that took part in an LRC this
     * round are blocked for the next round (they are measured and
     * reset next round, clearing any accumulated leakage). Only the
     * previously set bits are cleared, so quiescent rounds cost O(1)
     * instead of a full-table wipe per lane per round.
     */
    void
    advanceRound(const std::vector<int> &stabs_used_this_round)
    {
        for (int s : lastUsed_)
            used_[s] = 0;
        lastUsed_.assign(stabs_used_this_round.begin(),
                         stabs_used_this_round.end());
        for (int s : lastUsed_)
            used_[s] = 1;
    }

  private:
    std::vector<uint8_t> used_;
    std::vector<int> lastUsed_;
};

} // namespace qec

#endif // QEC_CORE_TRACKING_TABLES_H
