/**
 * @file
 * The two state tables of the ERASER microarchitecture (Fig. 10).
 *
 * The Leakage Tracking Table (LTT) holds one bit per data qubit: set
 * when the Leakage Speculation Block suspects leakage, cleared when an
 * LRC services the qubit.
 *
 * The Parity qubit Usage Tracking Table (PUTT) holds one bit per
 * parity qubit: set while the qubit is cooling down after taking part
 * in an LRC (it skipped its measure+reset that round, so using it
 * again immediately would let leakage accumulate — Section 4.2.2).
 *
 * Both tables also come in a word-parallel ("batch") flavour for the
 * bit-packed experiment engine: one lane-set word per qubit instead of
 * one byte, so W = 64/256/512 lanes' tables live side by side as bit
 * planes and the speculation stage updates all lanes with word ops.
 * Lane l of plane q is exactly what a per-lane table's entry q would
 * hold for shot l — the bit-identity anchor the differential tests
 * pin.
 */

#ifndef QEC_CORE_TRACKING_TABLES_H
#define QEC_CORE_TRACKING_TABLES_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/simd_word.h"

namespace qec
{

/** Leakage Tracking Table: one speculation bit per data qubit. */
class LeakageTrackingTable
{
  public:
    explicit LeakageTrackingTable(int num_data)
        : marks_(num_data, 0)
    {
    }

    void
    mark(int data)
    {
        markedCount_ += marks_[data] == 0;
        marks_[data] = 1;
    }
    void
    clear(int data)
    {
        markedCount_ -= marks_[data] != 0;
        marks_[data] = 0;
    }
    bool marked(int data) const { return marks_[data] != 0; }
    int size() const { return (int)marks_.size(); }
    /** Number of currently marked qubits: lets the DLI skip its scan
     *  outright in the (dominant, low-p) quiescent rounds. */
    int markedCount() const { return markedCount_; }

    void
    reset()
    {
        std::fill(marks_.begin(), marks_.end(), 0);
        markedCount_ = 0;
    }

    /** Marked data qubits in ascending id order. */
    std::vector<int>
    markedList() const
    {
        std::vector<int> out;
        for (int q = 0; q < (int)marks_.size(); ++q) {
            if (marks_[q])
                out.push_back(q);
        }
        return out;
    }

  private:
    std::vector<uint8_t> marks_;
    int markedCount_ = 0;
};

/** Parity qubit Usage Tracking Table: cooldown bit per stabilizer. */
class ParityUsageTable
{
  public:
    explicit ParityUsageTable(int num_stabs)
        : used_(num_stabs, 0)
    {
    }

    bool used(int stab) const { return used_[stab] != 0; }
    int size() const { return (int)used_.size(); }

    void
    reset()
    {
        std::fill(used_.begin(), used_.end(), 0);
        lastUsed_.clear();
    }

    /**
     * Advance one round: parity qubits that took part in an LRC this
     * round are blocked for the next round (they are measured and
     * reset next round, clearing any accumulated leakage). Only the
     * previously set bits are cleared, so quiescent rounds cost O(1)
     * instead of a full-table wipe per lane per round.
     */
    void
    advanceRound(const std::vector<int> &stabs_used_this_round)
    {
        for (int s : lastUsed_)
            used_[s] = 0;
        lastUsed_.assign(stabs_used_this_round.begin(),
                         stabs_used_this_round.end());
        for (int s : lastUsed_)
            used_[s] = 1;
    }

  private:
    std::vector<uint8_t> used_;
    std::vector<int> lastUsed_;
};

/**
 * Word-parallel LTT: one lane-set plane per data qubit. The LSB marks
 * whole lane words at once; the per-lane DLI fallback tests and clears
 * single lane bits.
 */
template <typename Lane>
class BatchLeakageTrackingTable
{
  public:
    explicit BatchLeakageTrackingTable(int num_data)
        : marks_(num_data, Lane{})
    {
    }

    /** OR a lane set into qubit `data`'s mark plane. */
    void
    mark(int data, const Lane &lanes)
    {
        marks_[data] |= lanes;
    }

    bool
    marked(int data, int lane) const
    {
        return testLane(marks_[data], lane);
    }

    void
    clear(int data, int lane)
    {
        clearLane(marks_[data], lane);
    }

    const Lane & word(int data) const { return marks_[data]; }
    int size() const { return (int)marks_.size(); }

    void
    reset()
    {
        std::fill(marks_.begin(), marks_.end(), Lane{});
    }

  private:
    std::vector<Lane> marks_;
};

/**
 * Word-parallel PUTT: one cooldown lane-set plane per stabilizer. The
 * round protocol mirrors ParityUsageTable::advanceRound lane by lane:
 * DLI consults the *current* planes while this round's allocations
 * accumulate in the *pending* planes; advanceRound() then retires the
 * current planes and promotes the pending ones. Only planes that
 * actually held bits are touched, so quiescent rounds cost O(active)
 * instead of a full-table wipe.
 */
template <typename Lane>
class BatchParityUsageTable
{
  public:
    explicit BatchParityUsageTable(int num_stabs)
        : used_(num_stabs, Lane{}), pending_(num_stabs, Lane{})
    {
    }

    bool
    used(int stab, int lane) const
    {
        return testLane(used_[stab], lane);
    }

    const Lane & word(int stab) const { return used_[stab]; }
    int size() const { return (int)used_.size(); }

    /** Record that `lane` allocated `stab` this round (blocked next
     *  round). */
    void
    markPending(int stab, int lane)
    {
        if (!anyLane(pending_[stab]))
            pendingStabs_.push_back(stab);
        setLane(pending_[stab], lane);
    }

    /** Retire the current round's cooldowns and promote this round's
     *  allocations, for every lane at once. */
    void
    advanceRound()
    {
        for (int s : usedStabs_)
            used_[s] = Lane{};
        used_.swap(pending_);
        usedStabs_.swap(pendingStabs_);
        pendingStabs_.clear();
    }

    void
    reset()
    {
        std::fill(used_.begin(), used_.end(), Lane{});
        std::fill(pending_.begin(), pending_.end(), Lane{});
        usedStabs_.clear();
        pendingStabs_.clear();
    }

  private:
    std::vector<Lane> used_;
    std::vector<Lane> pending_;
    std::vector<int> usedStabs_;
    std::vector<int> pendingStabs_;
};

} // namespace qec

#endif // QEC_CORE_TRACKING_TABLES_H
