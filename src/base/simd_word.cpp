#include "base/simd_word.h"

namespace qec
{

const char *
simdBackendName()
{
    switch (compiledSimdBackend()) {
      case SimdBackend::Avx512: return "avx512";
      case SimdBackend::Avx2: return "avx2";
      case SimdBackend::Neon: return "neon";
      case SimdBackend::Portable: break;
    }
    return "portable";
}

bool
runtimeSimdSupported(SimdBackend backend)
{
    switch (backend) {
      case SimdBackend::Portable:
        return true;
      case SimdBackend::Neon:
#if defined(__ARM_NEON)
        return true;   // baseline on every AArch64 target we build for
#else
        return false;
#endif
      case SimdBackend::Avx2:
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_cpu_supports("avx2");
#else
        return false;
#endif
      case SimdBackend::Avx512:
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_cpu_supports("avx512f");
#else
        return false;
#endif
    }
    return false;
}

int
recommendedBatchWidth()
{
    // This TU is part of the engine's SIMD source set, so its compiled
    // backend is the backend the WordVec hot loops actually run with.
    // A portable build executes wide plane words as scalar loops: the
    // host CPU's vector units are irrelevant and widths above 64 only
    // deepen every plane touch, so never recommend them.
    if (compiledSimdBackend() == SimdBackend::Portable)
        return 64;
    if (runtimeSimdSupported(SimdBackend::Avx512))
        return 512;
    if (runtimeSimdSupported(SimdBackend::Avx2) ||
        runtimeSimdSupported(SimdBackend::Neon))
        return 256;
    return 64;
}

} // namespace qec
