/**
 * @file
 * Width-generic SIMD bit-plane words: the lane-set type underneath the
 * batched frame-simulation engine.
 *
 * A plane word packs one bit per shot ("lane"). The original engine
 * hardwired one uint64_t per plane (64 lanes); this header generalizes
 * the plane word to `WordVec<NW>` — NW consecutive 64-bit words, i.e.
 * NW*64 lanes — so the same masked-word algebra runs at W = 64, 256 or
 * 512 lanes per group. Template code selects the lane-set type through
 * `LaneWord<NW>`, which is plain `uint64_t` for NW == 1 (zero wrapper
 * cost, byte-for-byte the pre-SIMD engine) and `WordVec<NW>` above.
 *
 * Backends: the bulk boolean ops (and/or/xor/andnot) are written as
 * fixed-trip loops the compiler can auto-vectorize, plus explicit
 * AVX-512 / AVX2 / NEON intrinsic paths chosen at compile time from
 * the target architecture macros. Defining QEC_SIMD_FORCE_PORTABLE
 * (CMake option QEC_PORTABLE_SIMD) disables every intrinsic path; the
 * portable fallback is bit-identical by construction and is what the
 * no-vector-extensions CI leg builds. Runtime capability detection
 * (`runtimeSimdSupported`, `recommendedBatchWidth`) lets callers pick
 * a word-group width to match the host without recompiling.
 *
 * Lane-set helper functions (`laneWord`, `popcountLanes`, `testLane`,
 * `forEachSetLane`, ...) are overloaded for both `uint64_t` and
 * `WordVec<NW>` so engine templates read identically at every width.
 */

#ifndef QEC_BASE_SIMD_WORD_H
#define QEC_BASE_SIMD_WORD_H

#include <cstdint>
#include <type_traits>

#if !defined(QEC_SIMD_FORCE_PORTABLE) && defined(__AVX512F__)
#define QEC_SIMD_BACKEND_AVX512 1
#include <immintrin.h>
#elif !defined(QEC_SIMD_FORCE_PORTABLE) && defined(__AVX2__)
#define QEC_SIMD_BACKEND_AVX2 1
#include <immintrin.h>
#elif !defined(QEC_SIMD_FORCE_PORTABLE) && defined(__ARM_NEON)
#define QEC_SIMD_BACKEND_NEON 1
#include <arm_neon.h>
#else
#define QEC_SIMD_BACKEND_PORTABLE 1
#endif

namespace qec
{

/** Widest supported word-group: 8 plane words = 512 lanes. */
constexpr int kMaxBatchWords = 8;
constexpr int kMaxBatchLanes = kMaxBatchWords * 64;

/** Mask with the low `nlanes` bits set (nlanes clamped to [0, 64]). */
constexpr uint64_t
laneMask64(int nlanes)
{
    return nlanes >= 64 ? ~uint64_t{0}
           : nlanes <= 0 ? uint64_t{0}
                         : ((uint64_t{1} << nlanes) - 1);
}

/**
 * NW consecutive 64-bit plane words (NW * 64 lanes). Alignment is
 * fixed by NW alone so the layout is independent of the compile flags
 * of the translation unit (safe to share across differently-flagged
 * TUs).
 */
template <int NW>
struct alignas(NW >= 8 ? 64 : NW >= 4 ? 32 : NW >= 2 ? 16 : 8) WordVec
{
    static_assert(NW >= 1 && NW <= kMaxBatchWords,
                  "WordVec supports 1..8 plane words");
    static constexpr int kWords = NW;
    static constexpr int kLanes = NW * 64;

    uint64_t w[NW] = {};

    friend WordVec
    operator&(const WordVec &a, const WordVec &b)
    {
        WordVec r;
#if QEC_SIMD_BACKEND_AVX512
        if constexpr (NW % 8 == 0) {
            for (int i = 0; i < NW; i += 8)
                _mm512_store_si512(
                    (__m512i *)(r.w + i),
                    _mm512_and_si512(
                        _mm512_load_si512((const __m512i *)(a.w + i)),
                        _mm512_load_si512((const __m512i *)(b.w + i))));
            return r;
        }
#elif QEC_SIMD_BACKEND_AVX2
        if constexpr (NW % 4 == 0) {
            for (int i = 0; i < NW; i += 4)
                _mm256_store_si256(
                    (__m256i *)(r.w + i),
                    _mm256_and_si256(
                        _mm256_load_si256((const __m256i *)(a.w + i)),
                        _mm256_load_si256((const __m256i *)(b.w + i))));
            return r;
        }
#elif QEC_SIMD_BACKEND_NEON
        if constexpr (NW % 2 == 0) {
            for (int i = 0; i < NW; i += 2)
                vst1q_u64(r.w + i, vandq_u64(vld1q_u64(a.w + i),
                                             vld1q_u64(b.w + i)));
            return r;
        }
#endif
        for (int i = 0; i < NW; ++i)
            r.w[i] = a.w[i] & b.w[i];
        return r;
    }

    friend WordVec
    operator|(const WordVec &a, const WordVec &b)
    {
        WordVec r;
#if QEC_SIMD_BACKEND_AVX512
        if constexpr (NW % 8 == 0) {
            for (int i = 0; i < NW; i += 8)
                _mm512_store_si512(
                    (__m512i *)(r.w + i),
                    _mm512_or_si512(
                        _mm512_load_si512((const __m512i *)(a.w + i)),
                        _mm512_load_si512((const __m512i *)(b.w + i))));
            return r;
        }
#elif QEC_SIMD_BACKEND_AVX2
        if constexpr (NW % 4 == 0) {
            for (int i = 0; i < NW; i += 4)
                _mm256_store_si256(
                    (__m256i *)(r.w + i),
                    _mm256_or_si256(
                        _mm256_load_si256((const __m256i *)(a.w + i)),
                        _mm256_load_si256((const __m256i *)(b.w + i))));
            return r;
        }
#elif QEC_SIMD_BACKEND_NEON
        if constexpr (NW % 2 == 0) {
            for (int i = 0; i < NW; i += 2)
                vst1q_u64(r.w + i, vorrq_u64(vld1q_u64(a.w + i),
                                             vld1q_u64(b.w + i)));
            return r;
        }
#endif
        for (int i = 0; i < NW; ++i)
            r.w[i] = a.w[i] | b.w[i];
        return r;
    }

    friend WordVec
    operator^(const WordVec &a, const WordVec &b)
    {
        WordVec r;
#if QEC_SIMD_BACKEND_AVX512
        if constexpr (NW % 8 == 0) {
            for (int i = 0; i < NW; i += 8)
                _mm512_store_si512(
                    (__m512i *)(r.w + i),
                    _mm512_xor_si512(
                        _mm512_load_si512((const __m512i *)(a.w + i)),
                        _mm512_load_si512((const __m512i *)(b.w + i))));
            return r;
        }
#elif QEC_SIMD_BACKEND_AVX2
        if constexpr (NW % 4 == 0) {
            for (int i = 0; i < NW; i += 4)
                _mm256_store_si256(
                    (__m256i *)(r.w + i),
                    _mm256_xor_si256(
                        _mm256_load_si256((const __m256i *)(a.w + i)),
                        _mm256_load_si256((const __m256i *)(b.w + i))));
            return r;
        }
#elif QEC_SIMD_BACKEND_NEON
        if constexpr (NW % 2 == 0) {
            for (int i = 0; i < NW; i += 2)
                vst1q_u64(r.w + i, veorq_u64(vld1q_u64(a.w + i),
                                             vld1q_u64(b.w + i)));
            return r;
        }
#endif
        for (int i = 0; i < NW; ++i)
            r.w[i] = a.w[i] ^ b.w[i];
        return r;
    }

    friend WordVec
    operator~(const WordVec &a)
    {
        WordVec r;
        for (int i = 0; i < NW; ++i)
            r.w[i] = ~a.w[i];
        return r;
    }

    WordVec &
    operator&=(const WordVec &o)
    {
        *this = *this & o;
        return *this;
    }
    WordVec &
    operator|=(const WordVec &o)
    {
        *this = *this | o;
        return *this;
    }
    WordVec &
    operator^=(const WordVec &o)
    {
        *this = *this ^ o;
        return *this;
    }

    friend bool
    operator==(const WordVec &a, const WordVec &b)
    {
        uint64_t diff = 0;
        for (int i = 0; i < NW; ++i)
            diff |= a.w[i] ^ b.w[i];
        return diff == 0;
    }
    friend bool
    operator!=(const WordVec &a, const WordVec &b)
    {
        return !(a == b);
    }

    /** Contextual truth: any lane set (`if (mask)` / `if (!mask)`). */
    explicit
    operator bool() const
    {
        uint64_t any = 0;
        for (int i = 0; i < NW; ++i)
            any |= w[i];
        return any != 0;
    }
};

/** `a & ~b` (the masked-update idiom; AVX has a native andnot). */
template <int NW>
inline WordVec<NW>
andnot(const WordVec<NW> &a, const WordVec<NW> &b)
{
    WordVec<NW> r;
#if QEC_SIMD_BACKEND_AVX512
    if constexpr (NW % 8 == 0) {
        for (int i = 0; i < NW; i += 8)
            _mm512_store_si512(
                (__m512i *)(r.w + i),
                _mm512_andnot_si512(
                    _mm512_load_si512((const __m512i *)(b.w + i)),
                    _mm512_load_si512((const __m512i *)(a.w + i))));
        return r;
    }
#elif QEC_SIMD_BACKEND_AVX2
    if constexpr (NW % 4 == 0) {
        for (int i = 0; i < NW; i += 4)
            _mm256_store_si256(
                (__m256i *)(r.w + i),
                _mm256_andnot_si256(
                    _mm256_load_si256((const __m256i *)(b.w + i)),
                    _mm256_load_si256((const __m256i *)(a.w + i))));
        return r;
    }
#elif QEC_SIMD_BACKEND_NEON
    if constexpr (NW % 2 == 0) {
        for (int i = 0; i < NW; i += 2)
            vst1q_u64(r.w + i, vbicq_u64(vld1q_u64(a.w + i),
                                         vld1q_u64(b.w + i)));
        return r;
    }
#endif
    for (int i = 0; i < NW; ++i)
        r.w[i] = a.w[i] & ~b.w[i];
    return r;
}

inline uint64_t
andnot(uint64_t a, uint64_t b)
{
    return a & ~b;
}

/** Lane-set type for an NW-word group: raw uint64_t when NW == 1. */
template <int NW>
struct LaneWordSel
{
    using type = WordVec<NW>;
};
template <>
struct LaneWordSel<1>
{
    using type = uint64_t;
};
template <int NW>
using LaneWord = typename LaneWordSel<NW>::type;

// ------------------------------------------------- lane-set helpers
// Overloaded for uint64_t and WordVec so width-generic engine code
// reads the same at every NW.

inline bool
anyLane(uint64_t v)
{
    return v != 0;
}
template <int NW>
inline bool
anyLane(const WordVec<NW> &v)
{
    return static_cast<bool>(v);
}

inline int
popcountLanes(uint64_t v)
{
    return __builtin_popcountll(v);
}
template <int NW>
inline int
popcountLanes(const WordVec<NW> &v)
{
    int n = 0;
    for (int i = 0; i < NW; ++i)
        n += __builtin_popcountll(v.w[i]);
    return n;
}

/** Read 64-bit plane word `i` of a lane set. */
inline uint64_t
laneWord(uint64_t v, int)
{
    return v;
}
template <int NW>
inline uint64_t
laneWord(const WordVec<NW> &v, int i)
{
    return v.w[i];
}

/** Mutable access to plane word `i`. */
inline uint64_t &
laneWordRef(uint64_t &v, int)
{
    return v;
}
template <int NW>
inline uint64_t &
laneWordRef(WordVec<NW> &v, int i)
{
    return v.w[i];
}

inline bool
testLane(uint64_t v, int lane)
{
    return (v >> lane) & 1;
}
template <int NW>
inline bool
testLane(const WordVec<NW> &v, int lane)
{
    return (v.w[lane >> 6] >> (lane & 63)) & 1;
}

inline void
setLane(uint64_t &v, int lane)
{
    v |= uint64_t{1} << lane;
}
template <int NW>
inline void
setLane(WordVec<NW> &v, int lane)
{
    v.w[lane >> 6] |= uint64_t{1} << (lane & 63);
}

/** XOR one lane bit (Pauli application semantics). */
inline void
flipLane(uint64_t &v, int lane)
{
    v ^= uint64_t{1} << lane;
}
template <int NW>
inline void
flipLane(WordVec<NW> &v, int lane)
{
    v.w[lane >> 6] ^= uint64_t{1} << (lane & 63);
}

inline void
clearLane(uint64_t &v, int lane)
{
    v &= ~(uint64_t{1} << lane);
}
template <int NW>
inline void
clearLane(WordVec<NW> &v, int lane)
{
    v.w[lane >> 6] &= ~(uint64_t{1} << (lane & 63));
}

/** Lane set with the low `nlanes` lanes set. */
template <typename L>
inline L
laneMaskOf(int nlanes)
{
    if constexpr (std::is_same_v<L, uint64_t>) {
        return laneMask64(nlanes);
    } else {
        L r;
        for (int i = 0; i < L::kWords; ++i)
            r.w[i] = laneMask64(nlanes - 64 * i);
        return r;
    }
}

/** Apply f(lane) to every set lane, in ascending lane order. */
template <typename F>
inline void
forEachSetLane(uint64_t v, F &&f)
{
    while (v) {
        f(__builtin_ctzll(v));
        v &= v - 1;
    }
}
template <int NW, typename F>
inline void
forEachSetLane(const WordVec<NW> &v, F &&f)
{
    for (int i = 0; i < NW; ++i) {
        uint64_t word = v.w[i];
        const int base = 64 * i;
        while (word) {
            f(base + __builtin_ctzll(word));
            word &= word - 1;
        }
    }
}

// -------------------------------------- compile/run-time dispatch

/** Vector backend compiled into this translation unit. */
enum class SimdBackend
{
    Portable,
    Neon,
    Avx2,
    Avx512,
};

constexpr SimdBackend
compiledSimdBackend()
{
#if QEC_SIMD_BACKEND_AVX512
    return SimdBackend::Avx512;
#elif QEC_SIMD_BACKEND_AVX2
    return SimdBackend::Avx2;
#elif QEC_SIMD_BACKEND_NEON
    return SimdBackend::Neon;
#else
    return SimdBackend::Portable;
#endif
}

/** Name of the backend the *engine* library was compiled with (the
 *  batch-simulation TUs; other TUs may differ). */
const char *simdBackendName();

/** Does the running CPU support the given backend? (Portable: always;
 *  used to pick a word-group width at runtime.) */
bool runtimeSimdSupported(SimdBackend backend);

/**
 * Word-group width recommendation for this host: 512 when 512-bit
 * vector ops are native, else 256 with any 128/256-bit vector unit,
 * else 64. When the engine library itself was compiled with the
 * portable fallback (QEC_PORTABLE_SIMD), wide WordVec ops are scalar
 * loops and widths above 64 only add plane-depth overhead, so the
 * recommendation clamps to 64 regardless of the host CPU. Any width
 * up to kMaxBatchLanes is *correct* everywhere — this is purely a
 * throughput default.
 */
int recommendedBatchWidth();

} // namespace qec

#endif // QEC_BASE_SIMD_WORD_H
