/**
 * @file
 * Error-reporting helpers in the gem5 idiom.
 *
 * panic() is for conditions that indicate a bug in this library itself
 * — including callers that skip a documented Status-returning
 * validator (validateExperimentConfig, SweepPlan::validate,
 * RotatedSurfaceCode::validateDistance) and then construct with the
 * very input the validator rejects. fatal() exits over a user error
 * and is reserved for CLI mains; *library* code must never call it —
 * recoverable conditions (bad configuration, failed I/O, corrupt
 * artifacts) are returned as qec::Status (base/status.h) so a
 * long-lived sweep can retry or quarantine instead of dying.
 */

#ifndef QEC_BASE_LOGGING_H
#define QEC_BASE_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace qec
{

/**
 * Abort because of an internal invariant violation (a library bug).
 * @param msg Description of the violated invariant.
 */
[[noreturn]] inline void
panic(const char *msg)
{
    std::fprintf(stderr, "panic: %s\n", msg);
    std::abort();
}

[[noreturn]] inline void
panic(const std::string &msg)
{
    panic(msg.c_str());
}

/**
 * Exit because the caller supplied an unusable configuration.
 * @param msg Description of the configuration problem.
 */
[[noreturn]] inline void
fatal(const char *msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg);
    std::exit(1);
}

[[noreturn]] inline void
fatal(const std::string &msg)
{
    fatal(msg.c_str());
}

/** Print a status message that requires no user action. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/** panic() unless the stated library invariant holds.
 *  The const char* overloads keep literal-message checks free of the
 *  hidden per-call std::string construction (a heap allocation on
 *  every check), which matters on the decode/simulate hot paths. */
inline void
panicIf(bool condition, const char *msg)
{
    if (condition)
        panic(msg);
}

inline void
panicIf(bool condition, const std::string &msg)
{
    if (condition)
        panic(msg);
}

/** fatal() unless the stated user-facing precondition holds. */
inline void
fatalIf(bool condition, const char *msg)
{
    if (condition)
        fatal(msg);
}

inline void
fatalIf(bool condition, const std::string &msg)
{
    if (condition)
        fatal(msg);
}

} // namespace qec

#endif // QEC_BASE_LOGGING_H
