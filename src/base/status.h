/**
 * @file
 * Recoverable error reporting: qec::Status and qec::StatusOr<T>.
 *
 * The library's error policy (see also base/logging.h):
 *
 *  - panic()   — a violated *library invariant*: a bug in this code,
 *                or a caller ignoring a documented precondition that
 *                the library offers a Status-returning validator for.
 *                Aborts the process; never use it for conditions a
 *                long-lived sweep service should survive.
 *  - Status    — everything a caller can cause or the environment can
 *                inflict: bad configuration, malformed artifacts,
 *                failed I/O, exhausted budgets. These are returned,
 *                never thrown and never fatal, so an orchestration
 *                layer (SweepRunner) can retry, quarantine the failing
 *                unit of work, and keep the rest of the sweep alive.
 *
 * Status is a small value type: a code plus a human-readable message.
 * StatusOr<T> carries either a value or a non-OK Status, for factory
 * functions that used to fatal() on invalid input.
 */

#ifndef QEC_BASE_STATUS_H
#define QEC_BASE_STATUS_H

#include <string>
#include <utility>

#include "base/logging.h"

namespace qec
{

/** Canonical error space (a deliberate subset of absl's). */
enum class StatusCode : int
{
    Ok = 0,
    InvalidArgument,    ///< Caller-supplied configuration is unusable.
    FailedPrecondition, ///< System state does not admit the operation.
    NotFound,           ///< A named artifact does not exist.
    DataLoss,           ///< An artifact exists but is corrupt/truncated.
    Unavailable,        ///< Transient environment failure (I/O); retryable.
    DeadlineExceeded,   ///< A wall-clock budget ran out.
    ResourceExhausted,  ///< An allocation or capacity limit failed.
    Internal,           ///< Invariant failure surfaced as a value.
};

/** Stable display name of a status code. */
inline const char *
statusCodeName(StatusCode code)
{
    switch (code) {
    case StatusCode::Ok:
        return "ok";
    case StatusCode::InvalidArgument:
        return "invalid_argument";
    case StatusCode::FailedPrecondition:
        return "failed_precondition";
    case StatusCode::NotFound:
        return "not_found";
    case StatusCode::DataLoss:
        return "data_loss";
    case StatusCode::Unavailable:
        return "unavailable";
    case StatusCode::DeadlineExceeded:
        return "deadline_exceeded";
    case StatusCode::ResourceExhausted:
        return "resource_exhausted";
    case StatusCode::Internal:
        return "internal";
    }
    return "unknown";
}

class [[nodiscard]] Status
{
  public:
    /** OK by default, so `Status st;` + early returns read naturally. */
    Status() = default;
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status
    ok()
    {
        return Status();
    }

    bool
    isOk() const
    {
        return code_ == StatusCode::Ok;
    }

    StatusCode
    code() const
    {
        return code_;
    }

    const std::string &
    message() const
    {
        return message_;
    }

    /** "code: message" for logs and sink artifacts. */
    std::string
    toString() const
    {
        if (isOk())
            return "ok";
        return std::string(statusCodeName(code_)) + ": " + message_;
    }

    /** Transient failures worth a bounded-backoff retry. */
    bool
    isRetryable() const
    {
        return code_ == StatusCode::Unavailable ||
               code_ == StatusCode::ResourceExhausted;
    }

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

inline Status
okStatus()
{
    return Status();
}

inline Status
invalidArgument(std::string message)
{
    return Status(StatusCode::InvalidArgument, std::move(message));
}

inline Status
failedPrecondition(std::string message)
{
    return Status(StatusCode::FailedPrecondition, std::move(message));
}

inline Status
notFoundError(std::string message)
{
    return Status(StatusCode::NotFound, std::move(message));
}

inline Status
dataLossError(std::string message)
{
    return Status(StatusCode::DataLoss, std::move(message));
}

inline Status
unavailableError(std::string message)
{
    return Status(StatusCode::Unavailable, std::move(message));
}

inline Status
deadlineExceededError(std::string message)
{
    return Status(StatusCode::DeadlineExceeded, std::move(message));
}

inline Status
resourceExhaustedError(std::string message)
{
    return Status(StatusCode::ResourceExhausted, std::move(message));
}

inline Status
internalError(std::string message)
{
    return Status(StatusCode::Internal, std::move(message));
}

/**
 * A value or the Status explaining its absence. value() on a non-OK
 * StatusOr is a caller bug (check ok() first) and panics.
 */
template <typename T>
class [[nodiscard]] StatusOr
{
  public:
    StatusOr(T value) : value_(std::move(value)) {}
    StatusOr(Status status) : status_(std::move(status))
    {
        panicIf(status_.isOk(),
                "StatusOr constructed from an OK status without a "
                "value");
    }

    bool
    ok() const
    {
        return status_.isOk();
    }

    const Status &
    status() const
    {
        return status_;
    }

    const T &
    value() const &
    {
        panicIf(!ok(), "StatusOr::value() on error status");
        return value_;
    }

    T &
    value() &
    {
        panicIf(!ok(), "StatusOr::value() on error status");
        return value_;
    }

    T &&
    value() &&
    {
        panicIf(!ok(), "StatusOr::value() on error status");
        return std::move(value_);
    }

  private:
    Status status_;
    T value_{};
};

} // namespace qec

#endif // QEC_BASE_STATUS_H
