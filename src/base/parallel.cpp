#include "base/parallel.h"

#include <algorithm>
#include <exception>
#include <mutex>

namespace qec
{

unsigned
defaultThreadCount()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
resolveThreadCount(uint64_t count, unsigned num_threads)
{
    if (num_threads == 0)
        num_threads = defaultThreadCount();
    num_threads = (unsigned)std::min<uint64_t>(num_threads, count);
    return num_threads == 0 ? 1 : num_threads;
}

void
parallelFor(uint64_t count, const std::function<void(uint64_t)> &body,
            unsigned num_threads)
{
    parallelForWorkers(
        count, [&](unsigned, uint64_t i) { body(i); }, num_threads);
}

void
parallelForWorkers(
    uint64_t count,
    const std::function<void(unsigned worker, uint64_t index)> &body,
    unsigned num_threads)
{
    num_threads = resolveThreadCount(count, num_threads);

    if (num_threads <= 1) {
        for (uint64_t i = 0; i < count; ++i)
            body(0, i);
        return;
    }

    // An exception escaping a worker thread would std::terminate the
    // process; capture the first one and rethrow it on the joining
    // thread instead, so recoverable failures inside chunk execution
    // (std::bad_alloc from an arena, injected faults) surface to the
    // orchestration layer's retry/quarantine logic. Later workers
    // drain the remaining iterations once `failed` is set.
    std::atomic<uint64_t> cursor{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
        workers.emplace_back([&, t]() {
            while (true) {
                uint64_t i = cursor.fetch_add(1);
                if (i >= count || failed.load(std::memory_order_relaxed))
                    return;
                try {
                    body(t, i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        });
    }
    for (auto &w : workers)
        w.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace qec
