#include "base/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace qec
{

namespace
{

/** Set while the current thread is draining a pool region; nested
 *  parallel regions from inside a body run inline instead of
 *  deadlocking on the (busy) pool. */
thread_local bool tl_pool_worker = false;

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

unsigned
defaultThreadCount()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
resolveThreadCount(uint64_t count, unsigned num_threads)
{
    if (num_threads == 0)
        num_threads = defaultThreadCount();
    num_threads = (unsigned)std::min<uint64_t>(num_threads, count);
    return num_threads == 0 ? 1 : num_threads;
}

// ------------------------------------------------------------ WorkerPool

struct WorkerPool::Impl
{
    mutable std::mutex m;
    std::condition_variable wake;
    std::condition_variable done;
    std::vector<std::thread> threads;
    bool shutdown = false;

    /** Region state, published under `m` by bumping `generation`. */
    uint64_t generation = 0;
    uint64_t count = 0;
    unsigned participants = 0;
    unsigned remaining = 0;
    const std::function<void(unsigned, uint64_t)> *body = nullptr;
    std::atomic<uint64_t> cursor{0};
    std::atomic<bool> failed{false};
    std::exception_ptr firstError;

    Stats stats;

    /** Serializes run() callers (one region at a time). */
    std::mutex runMutex;

    void
    workerLoop(unsigned slot)
    {
        tl_pool_worker = true;
        uint64_t seen = 0;
        for (;;) {
            const std::function<void(unsigned, uint64_t)> *job;
            uint64_t n;
            {
                std::unique_lock<std::mutex> lock(m);
                wake.wait(lock, [&] {
                    return shutdown || generation != seen;
                });
                if (shutdown)
                    return;
                seen = generation;
                if (slot >= participants)
                    continue;
                job = body;
                n = count;
            }
            const double start = nowSeconds();
            uint64_t executed = 0;
            // An exception escaping a worker thread would
            // std::terminate the process; capture the first one and
            // rethrow it on the calling thread instead, so recoverable
            // failures inside chunk execution (std::bad_alloc from an
            // arena, injected faults) surface to the orchestration
            // layer's retry/quarantine logic. Remaining items are
            // dropped once `failed` is set.
            while (!failed.load(std::memory_order_relaxed)) {
                const uint64_t i = cursor.fetch_add(1);
                if (i >= n)
                    break;
                try {
                    (*job)(slot, i);
                    ++executed;
                } catch (...) {
                    std::lock_guard<std::mutex> lock(m);
                    if (!firstError)
                        firstError = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                    break;
                }
            }
            {
                std::lock_guard<std::mutex> lock(m);
                stats.busySeconds += nowSeconds() - start;
                stats.tasks += executed;
                if (--remaining == 0)
                    done.notify_all();
            }
        }
    }

    void
    spawnTo(unsigned n)
    {
        while (threads.size() < n) {
            const unsigned slot = (unsigned)threads.size();
            threads.emplace_back([this, slot] { workerLoop(slot); });
        }
    }

    void
    runInline(uint64_t n,
              const std::function<void(unsigned, uint64_t)> &job)
    {
        const double start = nowSeconds();
        for (uint64_t i = 0; i < n; ++i)
            job(0, i);
        std::lock_guard<std::mutex> lock(m);
        ++stats.regions;
        stats.tasks += n;
        stats.busySeconds += nowSeconds() - start;
    }
};

WorkerPool::WorkerPool(unsigned workers)
    : impl_(std::make_unique<Impl>())
{
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->spawnTo(workers == 0 ? defaultThreadCount() : workers);
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(impl_->m);
        impl_->shutdown = true;
    }
    impl_->wake.notify_all();
    for (std::thread &t : impl_->threads)
        t.join();
}

unsigned
WorkerPool::workers() const
{
    std::lock_guard<std::mutex> lock(impl_->m);
    return (unsigned)impl_->threads.size();
}

void
WorkerPool::ensureWorkers(unsigned n)
{
    // Take the region lock too: growing the thread vector while a
    // region drains would hand new threads a stale generation.
    std::lock_guard<std::mutex> region(impl_->runMutex);
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->spawnTo(n);
}

WorkerPool::Stats
WorkerPool::stats() const
{
    std::lock_guard<std::mutex> lock(impl_->m);
    return impl_->stats;
}

void
WorkerPool::run(uint64_t count,
                const std::function<void(unsigned, uint64_t)> &body,
                unsigned use_workers)
{
    if (count == 0)
        return;
    Impl &im = *impl_;
    if (tl_pool_worker) {
        // Nested region from inside a pool body: the pool is busy
        // with the enclosing region, so execute inline.
        for (uint64_t i = 0; i < count; ++i)
            body(0, i);
        return;
    }
    std::lock_guard<std::mutex> region(im.runMutex);
    unsigned use;
    {
        std::lock_guard<std::mutex> lock(im.m);
        use = (unsigned)im.threads.size();
    }
    if (use_workers != 0)
        use = std::min(use, use_workers);
    use = (unsigned)std::min<uint64_t>(use, count);
    if (use <= 1) {
        im.runInline(count, body);
        return;
    }

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(im.m);
        im.count = count;
        im.participants = use;
        im.remaining = use;
        im.body = &body;
        im.cursor.store(0);
        im.failed.store(false);
        im.firstError = nullptr;
        ++im.generation;
        ++im.stats.regions;
        im.wake.notify_all();
        im.done.wait(lock, [&] { return im.remaining == 0; });
        im.body = nullptr;
        error = im.firstError;
        im.firstError = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

WorkerPool &
sharedWorkerPool()
{
    static WorkerPool pool(defaultThreadCount());
    return pool;
}

// ----------------------------------------------------- free functions

void
parallelFor(uint64_t count, const std::function<void(uint64_t)> &body,
            unsigned num_threads)
{
    parallelForWorkers(
        count, [&](unsigned, uint64_t i) { body(i); }, num_threads);
}

void
parallelForWorkers(
    uint64_t count,
    const std::function<void(unsigned worker, uint64_t index)> &body,
    unsigned num_threads)
{
    const unsigned resolved = resolveThreadCount(count, num_threads);
    if (resolved <= 1) {
        for (uint64_t i = 0; i < count; ++i)
            body(0, i);
        return;
    }
    WorkerPool &pool = sharedWorkerPool();
    if (pool.workers() < resolved)
        pool.ensureWorkers(resolved);
    pool.run(count, body, resolved);
}

} // namespace qec
