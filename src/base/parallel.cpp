#include "base/parallel.h"

#include <algorithm>

namespace qec
{

unsigned
defaultThreadCount()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
parallelFor(uint64_t count, const std::function<void(uint64_t)> &body,
            unsigned num_threads)
{
    if (num_threads == 0)
        num_threads = defaultThreadCount();
    num_threads = std::min<uint64_t>(num_threads, count);

    if (num_threads <= 1) {
        for (uint64_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    std::atomic<uint64_t> cursor{0};
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
        workers.emplace_back([&]() {
            while (true) {
                uint64_t i = cursor.fetch_add(1);
                if (i >= count)
                    return;
                body(i);
            }
        });
    }
    for (auto &w : workers)
        w.join();
}

} // namespace qec
