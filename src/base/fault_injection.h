/**
 * @file
 * Deterministic fault injection for the robustness test harness.
 *
 * A fault point is a named site in cold library code:
 *
 *     if (QEC_FAULT_POINT("checkpoint.save"))
 *         return unavailableError("injected checkpoint failure");
 *
 * Tests arm a site with a countdown — "the K-th future evaluation of
 * this site fires" — which makes every failure scenario exactly
 * reproducible: crash at chunk 3, fail the second sink write, refuse
 * one arena allocation. Three fault kinds cover the recoverable-error
 * taxonomy:
 *
 *  - ReturnError   : QEC_FAULT_POINT returns true; the site returns a
 *                    Status (exercises retry/quarantine paths).
 *  - ThrowBadAlloc : throws std::bad_alloc (exercises allocation-
 *                    failure handling at the arena/cache layer).
 *  - Crash         : throws SimulatedCrash, which no library layer
 *                    catches — the in-process stand-in for SIGKILL
 *                    that lets a test resume from the checkpoint the
 *                    crashed run left behind (CI additionally kills a
 *                    real process; see the kill-and-resume smoke).
 *
 * Compiled in under the QEC_FAULT_INJECTION CMake option (default ON;
 * a disarmed site costs one relaxed atomic load). With the option OFF
 * every QEC_FAULT_POINT folds to `false` at compile time and the
 * injection-driven tests skip themselves (fault::compiledIn()).
 */

#ifndef QEC_BASE_FAULT_INJECTION_H
#define QEC_BASE_FAULT_INJECTION_H

#include <atomic>
#include <cstdint>

namespace qec
{

/** Thrown by a Crash-armed fault point; deliberately not derived from
 *  std::exception so generic catch(const std::exception&) recovery
 *  paths cannot swallow a simulated process death. */
struct SimulatedCrash
{
    const char *site;
    uint64_t hit;
};

namespace fault
{

enum class Kind
{
    ReturnError,
    ThrowBadAlloc,
    Crash,
};

/** True when the harness was compiled in (QEC_FAULT_INJECTION). */
bool compiledIn();

/**
 * Arm `site`: its `countdown`-th future evaluation fires (1 = the
 * next one). With `repeat`, every evaluation from then on fires too
 * (persistent sink failure); without it the site disarms after
 * firing. No-op when compiled out.
 */
void arm(const char *site, uint64_t countdown, Kind kind,
         bool repeat = false);

/** Disarm one site (hit counters are kept). */
void disarm(const char *site);

/** Disarm every site and zero every hit counter. */
void reset();

/**
 * Evaluations of `site` so far (armed or not, while counting is on).
 * Counting is enabled by arm()/countHits() and cleared by reset();
 * tests use it to learn a run's chunk count before arming a crash at
 * every boundary in turn.
 */
uint64_t hits(const char *site);

/** Enable hit counting without arming anything. */
void countHits();

#if defined(QEC_FAULT_INJECTION)

namespace detail
{
/** Nonzero while any site is armed or hit counting is enabled. */
extern std::atomic<int> active;
/** Slow path: count the hit, fire if armed (may throw). */
bool evaluate(const char *site);
} // namespace detail

/** True when the named site's armed fault fires this evaluation. */
inline bool
point(const char *site)
{
    if (detail::active.load(std::memory_order_relaxed) == 0)
        return false;
    return detail::evaluate(site);
}

#else

inline bool
point(const char *)
{
    return false;
}

#endif // QEC_FAULT_INJECTION

} // namespace fault
} // namespace qec

#define QEC_FAULT_POINT(site) (::qec::fault::point(site))

#endif // QEC_BASE_FAULT_INJECTION_H
