#include "base/fault_injection.h"

#include <map>
#include <mutex>
#include <new>
#include <string>

namespace qec
{
namespace fault
{

bool
compiledIn()
{
#if defined(QEC_FAULT_INJECTION)
    return true;
#else
    return false;
#endif
}

#if !defined(QEC_FAULT_INJECTION)

// Compiled-out stubs: arming is a silent no-op so tests can probe
// compiledIn() once and share code paths with the armed build.
void
arm(const char *, uint64_t, Kind, bool)
{
}

void
disarm(const char *)
{
}

void
reset()
{
}

uint64_t
hits(const char *)
{
    return 0;
}

void
countHits()
{
}

#else

namespace
{

struct Site
{
    bool armed = false;
    uint64_t countdown = 0; ///< Evaluations until the fault fires.
    Kind kind = Kind::ReturnError;
    bool repeat = false;
    uint64_t hits = 0;
};

// All sites are cold (chunk boundaries, file I/O, cache flushes), so
// one mutex around a name-keyed map is plenty and keeps arming racefree
// against worker threads evaluating points.
std::mutex g_mutex;
std::map<std::string, Site> g_sites;
bool g_counting = false;

void
refreshActive()
{
    int active = g_counting ? 1 : 0;
    for (const auto &entry : g_sites)
        if (entry.second.armed)
            active = 1;
    detail::active.store(active, std::memory_order_relaxed);
}

} // namespace

namespace detail
{

std::atomic<int> active{0};

bool
evaluate(const char *site)
{
    Kind fired_kind;
    uint64_t fired_hit;
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        Site &s = g_sites[site];
        ++s.hits;
        if (!s.armed || --s.countdown > 0)
            return false;
        fired_kind = s.kind;
        fired_hit = s.hits;
        if (s.repeat) {
            s.countdown = 1;
        } else {
            s.armed = false;
            refreshActive();
        }
    }
    switch (fired_kind) {
    case Kind::ReturnError:
        return true;
    case Kind::ThrowBadAlloc:
        throw std::bad_alloc();
    case Kind::Crash:
        throw SimulatedCrash{site, fired_hit};
    }
    return true;
}

} // namespace detail

void
arm(const char *site, uint64_t countdown, Kind kind, bool repeat)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    Site &s = g_sites[site];
    s.armed = true;
    s.countdown = countdown > 0 ? countdown : 1;
    s.kind = kind;
    s.repeat = repeat;
    g_counting = true;
    refreshActive();
}

void
disarm(const char *site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    auto it = g_sites.find(site);
    if (it != g_sites.end())
        it->second.armed = false;
    refreshActive();
}

void
reset()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_sites.clear();
    g_counting = false;
    refreshActive();
}

uint64_t
hits(const char *site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    auto it = g_sites.find(site);
    return it == g_sites.end() ? 0 : it->second.hits;
}

void
countHits()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_counting = true;
    refreshActive();
}

#endif // QEC_FAULT_INJECTION

} // namespace fault
} // namespace qec
