#include "base/atomic_file.h"

#include <cerrno>
#include <cstdarg>

#include <unistd.h>

#include "base/fault_injection.h"

namespace qec
{

namespace
{

/** Reflected CRC-32 table for polynomial 0xEDB88320. */
const uint32_t *
crcTable()
{
    static uint32_t table[256];
    static bool built = false;
    if (!built) {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            table[i] = c;
        }
        built = true;
    }
    return table;
}

std::string
errnoMessage(const std::string &what, const std::string &path)
{
    return what + " " + path + ": " + std::strerror(errno);
}

} // namespace

uint32_t
crc32(const void *data, size_t size, uint32_t prev)
{
    const uint32_t *table = crcTable();
    const unsigned char *p = (const unsigned char *)data;
    uint32_t c = prev ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < size; ++i)
        c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

AtomicFileWriter::~AtomicFileWriter()
{
    abandon();
}

Status
AtomicFileWriter::open(const std::string &path)
{
    panicIf(stream_ != nullptr,
            "AtomicFileWriter::open on an already-open writer");
    if (QEC_FAULT_POINT("atomic_file.open"))
        return unavailableError("injected open failure for " + path);
    path_ = path;
    tempPath_ = path + ".tmp." + std::to_string((long)::getpid());
    stream_ = std::fopen(tempPath_.c_str(), "wb");
    if (!stream_)
        return unavailableError(errnoMessage("cannot open", tempPath_));
    return okStatus();
}

Status
AtomicFileWriter::write(const void *data, size_t size)
{
    panicIf(stream_ == nullptr,
            "AtomicFileWriter::write before open");
    if (QEC_FAULT_POINT("atomic_file.write")) {
        abandon();
        return unavailableError("injected write failure for " + path_);
    }
    if (size > 0 && std::fwrite(data, 1, size, stream_) != size) {
        const Status st =
            unavailableError(errnoMessage("short write to", tempPath_));
        abandon();
        return st;
    }
    return okStatus();
}

Status
AtomicFileWriter::printf(const char *fmt, ...)
{
    panicIf(stream_ == nullptr,
            "AtomicFileWriter::printf before open");
    if (QEC_FAULT_POINT("atomic_file.write")) {
        abandon();
        return unavailableError("injected write failure for " + path_);
    }
    va_list args;
    va_start(args, fmt);
    const int n = std::vfprintf(stream_, fmt, args);
    va_end(args);
    if (n < 0) {
        const Status st =
            unavailableError(errnoMessage("short write to", tempPath_));
        abandon();
        return st;
    }
    return okStatus();
}

Status
AtomicFileWriter::commit()
{
    panicIf(stream_ == nullptr,
            "AtomicFileWriter::commit before open");
    Status st;
    if (QEC_FAULT_POINT("atomic_file.commit"))
        st = unavailableError("injected commit failure for " + path_);
    // Flush userspace buffers, then force the bytes to storage before
    // the rename publishes the name: rename-before-fsync can publish
    // an empty file across a power cut.
    if (st.isOk() && std::fflush(stream_) != 0)
        st = unavailableError(errnoMessage("cannot flush", tempPath_));
    if (st.isOk() && ::fsync(::fileno(stream_)) != 0)
        st = unavailableError(errnoMessage("cannot fsync", tempPath_));
    if (!st.isOk()) {
        abandon();
        return st;
    }
    std::fclose(stream_);
    stream_ = nullptr;
    if (std::rename(tempPath_.c_str(), path_.c_str()) != 0) {
        const Status rename_st =
            unavailableError(errnoMessage("cannot rename", tempPath_));
        std::remove(tempPath_.c_str());
        return rename_st;
    }
    return okStatus();
}

void
AtomicFileWriter::abandon()
{
    if (!stream_)
        return;
    std::fclose(stream_);
    stream_ = nullptr;
    std::remove(tempPath_.c_str());
}

Status
writeFileAtomic(const std::string &path, const void *data, size_t size)
{
    AtomicFileWriter writer;
    Status st = writer.open(path);
    if (!st.isOk())
        return st;
    st = writer.write(data, size);
    if (!st.isOk())
        return st;
    return writer.commit();
}

Status
readFile(const std::string &path, std::string &out)
{
    FILE *in = std::fopen(path.c_str(), "rb");
    if (!in)
        return errno == ENOENT
            ? notFoundError("no such file: " + path)
            : unavailableError(errnoMessage("cannot open", path));
    out.clear();
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0)
        out.append(buf, n);
    const bool failed = std::ferror(in);
    std::fclose(in);
    if (failed)
        return unavailableError(errnoMessage("cannot read", path));
    return okStatus();
}

} // namespace qec
