/**
 * @file
 * Minimal data-parallel helpers for running experiment shots on all
 * cores. Deterministic: work item i always receives index i, so
 * per-shot RNG streams are independent of thread scheduling.
 *
 * Execution is backed by a persistent WorkerPool: threads are spawned
 * once and reused across parallel regions, so tight chunk loops
 * (session chunks, bench repetitions, the sweep scheduler's rounds)
 * pay a wakeup instead of a thread spawn + join per region.
 */

#ifndef QEC_BASE_PARALLEL_H
#define QEC_BASE_PARALLEL_H

#include <cstdint>
#include <functional>
#include <memory>

namespace qec
{

/** Number of worker threads to use by default (hardware concurrency). */
unsigned defaultThreadCount();

/**
 * Run body(i) for i in [0, count) across threads.
 *
 * @param count       Number of work items.
 * @param body        Callable invoked once per index; must be thread-safe
 *                    with respect to other indices.
 * @param num_threads Worker count; 0 selects defaultThreadCount().
 */
void parallelFor(uint64_t count,
                 const std::function<void(uint64_t)> &body,
                 unsigned num_threads = 0);

/**
 * Worker count parallelFor/parallelForWorkers will actually use for
 * `count` items (never more workers than items, at least 1). Callers
 * size per-worker state with this before launching.
 */
unsigned resolveThreadCount(uint64_t count, unsigned num_threads);

/**
 * Like parallelFor, but the body also receives the worker index in
 * [0, resolveThreadCount(count, num_threads)), so callers can give
 * each worker its own reusable context (decoder workspaces, caches)
 * without locking. Work item i still always receives index i.
 */
void parallelForWorkers(
    uint64_t count,
    const std::function<void(unsigned worker, uint64_t index)> &body,
    unsigned num_threads = 0);

/**
 * A persistent pool of worker threads executing indexed parallel
 * regions. One region runs at a time (run() serializes callers);
 * work items are drained through a shared atomic cursor, so item i
 * always receives index i but assignment to workers is dynamic.
 *
 * Exceptions thrown by the body stop the drain and the first one is
 * rethrown from run() on the calling thread — same contract as
 * parallelForWorkers, which is itself routed through the process-wide
 * sharedWorkerPool(). A body running *on* a pool thread that re-enters
 * run() executes its region inline (no deadlock, worker index 0).
 */
class WorkerPool
{
  public:
    /** Spawn `workers` persistent threads (0 = defaultThreadCount()). */
    explicit WorkerPool(unsigned workers = 0);
    ~WorkerPool();
    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Threads currently in the pool. */
    unsigned workers() const;

    /** Grow the pool to at least `n` threads (never shrinks). */
    void ensureWorkers(unsigned n);

    /**
     * Run body(worker, i) for i in [0, count) on up to `use_workers`
     * pool threads (0 = all; clamped to the pool size and to `count`).
     * Worker indices are in [0, effective). Blocks until the region
     * completes; rethrows the first body exception. Regions resolving
     * to a single worker run inline on the caller (worker index 0).
     */
    void run(uint64_t count,
             const std::function<void(unsigned worker, uint64_t index)>
                 &body,
             unsigned use_workers = 0);

    /** Cumulative pool accounting; snapshot before/after a workload
     *  and difference to get its busy-time / utilization. */
    struct Stats
    {
        uint64_t regions = 0;     ///< run() regions executed.
        uint64_t tasks = 0;       ///< Body invocations.
        double busySeconds = 0.0; ///< Summed per-worker drain time.
    };
    Stats stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * The process-wide pool behind parallelFor/parallelForWorkers, created
 * on first use with defaultThreadCount() threads and grown on demand
 * when a caller asks for more workers than it holds.
 */
WorkerPool &sharedWorkerPool();

} // namespace qec

#endif // QEC_BASE_PARALLEL_H
