/**
 * @file
 * Minimal data-parallel helpers for running experiment shots on all
 * cores. Deterministic: work item i always receives index i, so
 * per-shot RNG streams are independent of thread scheduling.
 */

#ifndef QEC_BASE_PARALLEL_H
#define QEC_BASE_PARALLEL_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace qec
{

/** Number of worker threads to use by default (hardware concurrency). */
unsigned defaultThreadCount();

/**
 * Run body(i) for i in [0, count) across threads.
 *
 * @param count       Number of work items.
 * @param body        Callable invoked once per index; must be thread-safe
 *                    with respect to other indices.
 * @param num_threads Worker count; 0 selects defaultThreadCount().
 */
void parallelFor(uint64_t count,
                 const std::function<void(uint64_t)> &body,
                 unsigned num_threads = 0);

/**
 * Worker count parallelFor/parallelForWorkers will actually use for
 * `count` items (never more workers than items, at least 1). Callers
 * size per-worker state with this before launching.
 */
unsigned resolveThreadCount(uint64_t count, unsigned num_threads);

/**
 * Like parallelFor, but the body also receives the worker index in
 * [0, resolveThreadCount(count, num_threads)), so callers can give
 * each worker its own reusable context (decoder workspaces, caches)
 * without locking. Work item i still always receives index i.
 */
void parallelForWorkers(
    uint64_t count,
    const std::function<void(unsigned worker, uint64_t index)> &body,
    unsigned num_threads = 0);

} // namespace qec

#endif // QEC_BASE_PARALLEL_H
