#include "base/rng.h"

namespace qec
{

namespace
{

/** splitmix64 step, used only to expand seeds into full states. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : state_)
        word = splitmix64(sm);
}

Rng
Rng::forShot(uint64_t seed, uint64_t shot)
{
    // Mix the shot index through splitmix64 so that consecutive shots do
    // not share low-entropy state words.
    uint64_t sm = seed ^ (0x9e3779b97f4a7c15ULL * (shot + 1));
    return Rng(splitmix64(sm));
}

Rng
Rng::forStream(uint64_t seed, uint64_t stream, uint64_t salt)
{
    uint64_t sm = salt;
    const uint64_t salted = seed ^ splitmix64(sm);
    return forShot(salted, stream);
}




uint32_t
Rng::randint(uint32_t n)
{
    // Multiply-shift bounded draw (Lemire); bias is negligible for the
    // small ranges used here but we keep the rejection loop for
    // exactness in property tests.
    uint64_t threshold = (-static_cast<uint64_t>(n)) % n;
    while (true) {
        uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * n;
        if (static_cast<uint64_t>(m) >= threshold)
            return static_cast<uint32_t>(m >> 64);
    }
}


} // namespace qec
