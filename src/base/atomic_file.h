/**
 * @file
 * Crash-safe file emission.
 *
 * Every artifact the harness leaves behind (qec.sweep.v1 JSON,
 * BENCH_*.json perf trajectories, qec.ckpt.v1 checkpoints) is written
 * through AtomicFileWriter: the bytes go to a sibling temp file, are
 * fsync'd, and only then atomically rename(2)'d over the destination.
 * A crash at any instant therefore leaves either the previous
 * complete artifact or no artifact — never a truncated file that is
 * indistinguishable from a complete one.
 *
 * crc32() is the shared integrity checksum for binary artifacts that
 * are re-read later (checkpoints): rename atomicity protects against
 * our own crashes, the CRC against torn storage and foreign bytes.
 */

#ifndef QEC_BASE_ATOMIC_FILE_H
#define QEC_BASE_ATOMIC_FILE_H

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "base/status.h"

namespace qec
{

/** CRC-32 (IEEE 802.3, reflected) of `size` bytes, seeded so that
 *  crc32(crc32(a), b) == crc32(a ++ b) with `prev` defaulted. */
uint32_t crc32(const void *data, size_t size, uint32_t prev = 0);

/**
 * Writes `<path>.tmp.<pid>` and renames it onto `path` in commit().
 * Destruction without commit() unlinks the temp file, so error paths
 * and crashes cannot leave partial artifacts with the final name.
 */
class AtomicFileWriter
{
  public:
    AtomicFileWriter() = default;
    ~AtomicFileWriter();
    AtomicFileWriter(const AtomicFileWriter &) = delete;
    AtomicFileWriter &operator=(const AtomicFileWriter &) = delete;

    /** Open the temp file for writing (binary). */
    Status open(const std::string &path);

    /** The temp-file stream; null before open() / after commit(). */
    FILE *
    stream() const
    {
        return stream_;
    }

    bool
    isOpen() const
    {
        return stream_ != nullptr;
    }

    /** Append raw bytes (convenience over fwrite on stream()). */
    Status write(const void *data, size_t size);

    /** printf into the temp file. */
    Status printf(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    /** Flush + fsync + close + atomic rename onto the destination. */
    Status commit();

    /** Close and delete the temp file without touching `path`. */
    void abandon();

  private:
    std::string path_;
    std::string tempPath_;
    FILE *stream_ = nullptr;
};

/** One-shot helper: atomically replace `path` with `size` bytes. */
Status writeFileAtomic(const std::string &path, const void *data,
                       size_t size);

/** Read a whole file into `out` (binary). */
Status readFile(const std::string &path, std::string &out);

} // namespace qec

#endif // QEC_BASE_ATOMIC_FILE_H
