/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * Uses xoshiro256** which is fast, has a 256-bit state, and passes the
 * usual statistical batteries. Every experiment shot owns an Rng seeded
 * from (experiment seed, shot index) so multi-threaded runs are exactly
 * reproducible regardless of scheduling.
 */

#ifndef QEC_BASE_RNG_H
#define QEC_BASE_RNG_H

#include <cstdint>

namespace qec
{

/**
 * xoshiro256** pseudo-random generator with convenience draws used by
 * the error model (Bernoulli trials, uniform ints, raw bits).
 */
class Rng
{
  public:
    /** Seed via splitmix64 so that nearby seeds give unrelated streams. */
    explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

    /** Derive an independent stream, e.g. per shot of an experiment. */
    static Rng forShot(uint64_t seed, uint64_t shot);

    /**
     * Derive an independent salted stream, unrelated to any forShot
     * stream of the same seed. The batch simulator uses this for its
     * word-group noise-mask stream, keeping per-lane forShot streams
     * free for lane-divergent draws.
     */
    static Rng forStream(uint64_t seed, uint64_t stream, uint64_t salt);

    /** Next raw 64-bit draw. Inline: the batch engine draws tens of
     *  millions of words per second and the call overhead was
     *  measurable. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);

        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        // 53-bit mantissa construction; uniform on [0, 1).
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** True with probability p. */
    bool
    bernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    uint32_t randint(uint32_t n);

    /** Single uniform bit. */
    bool bit() { return (next() >> 63) != 0; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace qec

#endif // QEC_BASE_RNG_H
