/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * Uses xoshiro256** which is fast, has a 256-bit state, and passes the
 * usual statistical batteries. Every experiment shot owns an Rng seeded
 * from (experiment seed, shot index) so multi-threaded runs are exactly
 * reproducible regardless of scheduling.
 */

#ifndef QEC_BASE_RNG_H
#define QEC_BASE_RNG_H

#include <cstdint>

namespace qec
{

/**
 * xoshiro256** pseudo-random generator with convenience draws used by
 * the error model (Bernoulli trials, uniform ints, raw bits).
 */
class Rng
{
  public:
    /** Seed via splitmix64 so that nearby seeds give unrelated streams. */
    explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

    /** Derive an independent stream, e.g. per shot of an experiment. */
    static Rng forShot(uint64_t seed, uint64_t shot);

    /**
     * Derive an independent salted stream, unrelated to any forShot
     * stream of the same seed. The batch simulator uses this for its
     * word-group noise-mask stream, keeping per-lane forShot streams
     * free for lane-divergent draws.
     */
    static Rng forStream(uint64_t seed, uint64_t stream, uint64_t salt);

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** True with probability p. */
    bool bernoulli(double p);

    /** Uniform integer in [0, n). Requires n > 0. */
    uint32_t randint(uint32_t n);

    /** Single uniform bit. */
    bool bit();

  private:
    uint64_t state_[4];
};

} // namespace qec

#endif // QEC_BASE_RNG_H
