#include "exp/sweep_exec.h"

#include <cstring>
#include <utility>

#include "code/builder.h"
#include "code/circuit_ir.h"

namespace qec
{

namespace
{

uint64_t
doubleKeyBits(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

} // namespace

StatusOr<SweepBuildCache::Components>
SweepBuildCache::build(const SweepPoint &point,
                       const DecoderOptions &decoder_options,
                       SweepSummary &summary)
{
    Components out;

    auto code_it = codes_.find(point.distance);
    if (code_it == codes_.end()) {
        code_it = codes_
                      .emplace(point.distance,
                               std::make_unique<RotatedSurfaceCode>(
                                   point.distance))
                      .first;
        ++summary.codesBuilt;
    } else {
        ++summary.codesReused;
    }
    out.code = code_it->second.get();

    const CircuitFamily family = point.config.family;
    const ProgramKey prog_key{(int)family, point.distance,
                              point.rounds, (int)point.config.basis,
                              (int)point.protocol};
    auto prog_it = programs_.find(prog_key);
    if (prog_it == programs_.end()) {
        // Checked compile: validate() plus the IrAnalyzer pass stack
        // run exactly once per cached program; every later point that
        // shares the key reuses the analyzed program.
        StatusOr<CircuitProgram> prog =
            family == CircuitFamily::RepetitionMemory
                ? CircuitCompiler::repetitionMemoryChecked(
                      point.distance, point.rounds)
                : CircuitCompiler::surfaceMemoryChecked(
                      *out.code, point.rounds, point.config.basis,
                      point.protocol == RemovalProtocol::Dqlr
                          ? IrTailKind::Dqlr
                          : IrTailKind::SwapLrc);
        if (!prog.ok())
            return prog.status();
        prog_it = programs_
                      .emplace(prog_key,
                               std::make_shared<const CircuitProgram>(
                                   std::move(prog).value()))
                      .first;
    }
    out.program = prog_it->second;

    if (!point.config.decode)
        return out;

    const DemKey dem_key{(int)family, point.distance, point.rounds,
                         (int)point.config.basis};
    auto dem_it = dems_.find(dem_key);
    if (dem_it == dems_.end()) {
        dem_it = dems_
                     .emplace(dem_key,
                              std::make_shared<DetectorModel>(
                                  family == CircuitFamily::SurfaceMemory
                                      ? buildDetectorModel(
                                            *out.code, point.rounds,
                                            point.config.basis)
                                      : buildDetectorModel(
                                            *out.program)))
                     .first;
        ++summary.demsBuilt;
    } else {
        ++summary.demsReused;
    }
    out.dem = dem_it->second;

    const DecoderKey dec_key{(int)family, point.distance, point.rounds,
                             (int)point.config.basis,
                             (int)point.decoderKind,
                             doubleKeyBits(point.p)};
    auto dec_it = decoders_.find(dec_key);
    if (dec_it == decoders_.end()) {
        std::shared_ptr<const Decoder> built;
        if (point.decoderKind == DecoderKind::Mwpm)
            built = std::make_shared<MwpmDecoder>(*out.dem, point.p,
                                                  decoder_options);
        else
            built = std::make_shared<UnionFindDecoder>(*out.dem,
                                                       point.p);
        dec_it = decoders_.emplace(dec_key, std::move(built)).first;
        ++summary.decodersBuilt;
    } else {
        ++summary.decodersReused;
    }
    out.decoder = dec_it->second;
    return out;
}

bool
prepareSweepCheckpoint(const CheckpointOptions &options,
                       SweepCheckpoint &ckpt, SweepSummary &summary)
{
    if (!options.enabled() || !options.resume)
        return true;
    StatusOr<SweepCheckpoint> loaded =
        SweepCheckpoint::load(options.path);
    if (loaded.ok()) {
        if (loaded.value().planFingerprint != ckpt.planFingerprint) {
            summary.resumeStatus = failedPrecondition(
                "checkpoint " + options.path +
                " was written by a different sweep plan "
                "(fingerprint mismatch); delete it or point this "
                "sweep at a fresh checkpoint path");
            summary.status = summary.resumeStatus;
            return false;
        }
        ckpt = std::move(loaded).value();
        summary.resumed = !ckpt.points.empty();
    } else if (loaded.status().code() != StatusCode::NotFound) {
        // A corrupt or version-skewed checkpoint is evidence of
        // real progress; refuse to clobber it silently.
        summary.resumeStatus = loaded.status();
        summary.status = loaded.status();
        return false;
    }
    return true;
}

} // namespace qec
