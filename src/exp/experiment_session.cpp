#include "exp/experiment_session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <utility>
#include <vector>

#include "base/logging.h"
#include "base/parallel.h"
#include "exp/experiment_internal.h"
#include "sim/batch_frame_simulator.h"

namespace qec
{

double
wilsonRelHalfWidth(uint64_t k, uint64_t n, double z)
{
    if (n == 0 || k > n)
        return 1e301;
    const double nn = (double)n;
    const double p = (double)k / nn;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / nn;
    const double center = (p + z2 / (2.0 * nn)) / denom;
    const double half =
        z *
        std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn)) / denom;
    return center > 0.0 ? half / center : 1e301;
}

struct ExperimentSession::Impl
{
    const MemoryExperiment *exp = nullptr;
    PolicyFactory factory;
    std::string name;
    SessionOptions options;

    /** Word-group width (>= 1); 0 selects the scalar per-shot path. */
    unsigned width = 0;
    /** Global word-group decomposition of the full run; chunks only
     *  ever cut between spans, the bit-identity anchor. */
    std::vector<std::pair<uint64_t, int>> spans;
    size_t nextSpan = 0;
    /** Scalar-path shot cursor. */
    uint64_t scalarNext = 0;

    /** Per-worker decode pipelines, persistent across chunks. */
    std::vector<ExperimentDecodeContext> contexts;

    ExperimentResult total;
    bool stopped = false;
    bool truncated = false;
};

ExperimentSession::ExperimentSession(const MemoryExperiment &exp,
                                     PolicyKind kind,
                                     SessionOptions options)
    : ExperimentSession(
          exp,
          makePolicyFactory(
              kind, exp.code(), exp.lookup(),
              exp.config().protocol == RemovalProtocol::Dqlr),
          policyKindName(kind, exp.config().protocol ==
                                   RemovalProtocol::Dqlr),
          options)
{
}

ExperimentSession::ExperimentSession(const MemoryExperiment &exp,
                                     PolicyFactory factory,
                                     std::string name,
                                     SessionOptions options)
    : impl_(std::make_unique<Impl>())
{
    panicIf(!factory, "session needs a policy factory");
    Impl &im = *impl_;
    im.exp = &exp;
    im.factory = std::move(factory);
    im.name = std::move(name);
    im.options = options;

    const ExperimentConfig &cfg = exp.config();
    // Non-surface families exist only as compiled programs, so they
    // always replay on the batch engine (width 1 runs the engine's
    // scalar-delegating single-lane groups).
    const bool batched = options.forceBatched || cfg.batchWidth > 1 ||
                         cfg.family != CircuitFamily::SurfaceMemory;
    if (batched) {
        im.width = std::min<unsigned>(
            std::max<unsigned>(cfg.batchWidth, 1),
            (unsigned)kMaxBatchLanes);
        im.spans = batchGroupSpans(cfg.shots, im.width);
        im.contexts = std::vector<ExperimentDecodeContext>(
            resolveThreadCount(std::max<uint64_t>(im.spans.size(), 1),
                               cfg.threads));
        if (cfg.decode) {
            const BatchDecodeOptions batch_opts =
                exp.resolvedBatchOptions();
            for (auto &ctx : im.contexts)
                ctx.pipeline = std::make_unique<BatchDecoder>(
                    *exp.decoder(), batch_opts,
                    exp.componentGraph());
        }
    }
    im.total = newPartial();
}

ExperimentSession::~ExperimentSession() = default;
ExperimentSession::ExperimentSession(ExperimentSession &&) noexcept =
    default;
ExperimentSession &
ExperimentSession::operator=(ExperimentSession &&) noexcept = default;

ExperimentResult
ExperimentSession::newPartial() const
{
    ExperimentResult partial =
        impl_->exp->resultHeader(impl_->name);
    partial.shots = 0;
    partial.roundsTotal = 0;
    return partial;
}

bool
ExperimentSession::done() const
{
    const Impl &im = *impl_;
    if (im.stopped)
        return true;
    if (im.width > 0)
        return im.nextSpan >= im.spans.size();
    return im.scalarNext >= im.exp->config().shots;
}

bool
ExperimentSession::stoppedEarly() const
{
    return impl_->stopped &&
           impl_->total.shots < impl_->exp->config().shots;
}

bool
ExperimentSession::truncated() const
{
    return impl_->truncated;
}

SessionProgress
ExperimentSession::progress() const
{
    const Impl &im = *impl_;
    SessionProgress progress;
    progress.total = im.total;
    progress.nextSpan = im.nextSpan;
    progress.scalarNext = im.scalarNext;
    progress.stopped = im.stopped;
    return progress;
}

Status
ExperimentSession::restore(const SessionProgress &progress)
{
    Impl &im = *impl_;
    if (im.total.shots != 0 || im.nextSpan != 0 ||
        im.scalarNext != 0)
        return failedPrecondition(
            "session restore requires a fresh session");
    if (im.width > 0) {
        if (progress.nextSpan > im.spans.size())
            return dataLossError(
                "restored span cursor " +
                std::to_string(progress.nextSpan) +
                " exceeds the plan's " +
                std::to_string(im.spans.size()) + " word-groups");
        // The shot total must be exactly the lanes of the consumed
        // spans: anything else means the snapshot was taken against a
        // different (shots, width) decomposition and resuming it
        // would silently rerun or skip shots.
        uint64_t expected = 0;
        for (uint64_t s = 0; s < progress.nextSpan; ++s)
            expected += (uint64_t)im.spans[s].second;
        if (progress.total.shots != expected ||
            progress.scalarNext != 0)
            return dataLossError(
                "restored progress is inconsistent with this "
                "session's word-group decomposition");
    } else {
        if (progress.scalarNext > im.exp->config().shots ||
            progress.total.shots != progress.scalarNext ||
            progress.nextSpan != 0)
            return dataLossError(
                "restored progress is inconsistent with this "
                "session's shot count");
    }
    im.total = progress.total;
    if (im.total.policy.empty())
        im.total.policy = im.name;
    im.nextSpan = progress.nextSpan;
    im.scalarNext = progress.scalarNext;
    im.stopped = progress.stopped;
    return okStatus();
}

uint64_t
ExperimentSession::totalSpans() const
{
    return impl_->spans.size();
}

uint64_t
ExperimentSession::totalUnits() const
{
    const Impl &im = *impl_;
    return im.width > 0 ? im.spans.size() : im.exp->config().shots;
}

uint64_t
ExperimentSession::nextUnit() const
{
    const Impl &im = *impl_;
    return im.width > 0 ? im.nextSpan : im.scalarNext;
}

SessionChunkPlan
ExperimentSession::planChunkAt(uint64_t begin_unit,
                               uint64_t max_shots) const
{
    const Impl &im = *impl_;
    SessionChunkPlan plan;
    plan.beginUnit = plan.endUnit = begin_unit;
    const uint64_t want = std::max<uint64_t>(max_shots, 1);
    if (im.width > 0) {
        // Round the request up to word-group boundaries: groups are
        // the unit of execution (and of the bit-identity guarantee).
        while (plan.endUnit < im.spans.size() && plan.shots < want) {
            plan.shots += (uint64_t)im.spans[plan.endUnit].second;
            ++plan.endUnit;
        }
    } else {
        const uint64_t shots = im.exp->config().shots;
        const uint64_t begin = std::min(begin_unit, shots);
        plan.endUnit = begin + std::min(shots - begin, want);
        plan.shots = plan.endUnit - begin;
    }
    return plan;
}

void
ExperimentSession::ensureWorkerSlots(unsigned n)
{
    Impl &im = *impl_;
    if (im.width == 0 || im.contexts.size() >= n)
        return;
    const MemoryExperiment &exp = *im.exp;
    if (exp.config().decode) {
        const BatchDecodeOptions batch_opts =
            exp.resolvedBatchOptions();
        while (im.contexts.size() < n) {
            im.contexts.emplace_back();
            im.contexts.back().pipeline =
                std::make_unique<BatchDecoder>(*exp.decoder(),
                                               batch_opts,
                                               exp.componentGraph());
        }
    } else {
        im.contexts.resize(n);
    }
}

ExperimentResult
ExperimentSession::runPlannedUnit(uint64_t unit, unsigned slot)
{
    Impl &im = *impl_;
    const MemoryExperiment &exp = *im.exp;
    const ExperimentConfig &cfg = exp.config();

    ExperimentResult partial = newPartial();
    ExperimentShotStats stats;
    if (cfg.trackLpr) {
        stats.lprData.assign(cfg.rounds, 0.0);
        stats.lprParity.assign(cfg.rounds, 0.0);
    }

    if (im.width == 0) {
        panicIf(unit >= cfg.shots, "scalar unit out of range");
        exp.runShot(unit, im.factory, stats);
        exp.mergeStats(partial, stats);
        partial.shots = 1;
        partial.roundsTotal = (uint64_t)cfg.rounds;
        return partial;
    }

    panicIf(unit >= im.spans.size(), "span unit out of range");
    panicIf(slot >= im.contexts.size(),
            "worker slot exceeds session contexts "
            "(ensureWorkerSlots)");
    const auto [first, lanes] = im.spans[unit];
    ExperimentDecodeContext *ctx = &im.contexts[slot];
    // Snapshot the slot's cumulative pipeline counters around the
    // group so this unit's exact share can be attributed to its
    // partial — a chunk's counters are then the sum of its units'
    // deltas, independent of slot assignment, and a unit discarded by
    // the scheduler never leaks counters into a committed result.
    BatchDecodeStats before;
    if (ctx->pipeline)
        before = ctx->pipeline->stats();
    // Plane depth (1/4/8 words) follows the group width.
    if (im.width <= 64)
        exp.runGroupT<1>(first, lanes, im.factory, stats, ctx);
    else if (im.width <= 256)
        exp.runGroupT<4>(first, lanes, im.factory, stats, ctx);
    else
        exp.runGroupT<8>(first, lanes, im.factory, stats, ctx);
    exp.mergeStats(partial, stats);
    partial.shots = (uint64_t)lanes;
    partial.roundsTotal = (uint64_t)lanes * (uint64_t)cfg.rounds;
    if (ctx->pipeline) {
        const BatchDecodeStats &now = ctx->pipeline->stats();
        partial.decodedShots = now.decoded - before.decoded;
        partial.zeroDefectShots = now.zeroDefect - before.zeroDefect;
        partial.syndromeCacheHits = now.cacheHits - before.cacheHits;
        partial.componentsTotal =
            now.componentsTotal - before.componentsTotal;
        partial.componentCacheHits =
            now.componentCacheHits - before.componentCacheHits;
        partial.componentsDecoded =
            now.componentsDecoded - before.componentsDecoded;
        partial.guardFallbackShots =
            now.guardFallbacks - before.guardFallbacks;
        partial.windowsDecoded = now.windows - before.windows;
    }
    return partial;
}

void
ExperimentSession::commitChunk(const SessionChunkPlan &plan,
                               const ExperimentResult &merged)
{
    Impl &im = *impl_;
    panicIf(plan.beginUnit != nextUnit(),
            "chunk committed out of order");
    panicIf(plan.endUnit > totalUnits(), "chunk exceeds the plan");
    panicIf(im.stopped,
            "chunk committed after the early stop (speculative "
            "chunks must be discarded)");
    if (im.width > 0)
        im.nextSpan = plan.endUnit;
    else
        im.scalarNext = plan.endUnit;
    im.total.merge(merged);
    evaluateStop();
}

uint64_t
ExperimentSession::shotsRun() const
{
    return impl_->total.shots;
}

uint64_t
ExperimentSession::shotsPlanned() const
{
    const uint64_t cap = impl_->options.earlyStop.maxShots;
    const uint64_t shots = impl_->exp->config().shots;
    return cap > 0 ? std::min(cap, shots) : shots;
}

const ExperimentResult &
ExperimentSession::result() const
{
    return impl_->total;
}

void
ExperimentSession::evaluateStop()
{
    Impl &im = *impl_;
    const EarlyStopRule &rule = im.options.earlyStop;
    if (!rule.enabled() || im.stopped)
        return;
    if (rule.maxShots > 0 && im.total.shots >= rule.maxShots) {
        im.stopped = true;
        return;
    }
    if (rule.targetRelPrecision > 0.0 &&
        im.total.logicalErrors >= rule.minErrors &&
        wilsonRelHalfWidth(im.total.logicalErrors, im.total.shots,
                           rule.z) <= rule.targetRelPrecision)
        im.stopped = true;
}

uint64_t
ExperimentSession::defaultChunkShotsAt(uint64_t shots_done) const
{
    const Impl &im = *impl_;
    if (!im.options.earlyStop.enabled())
        return ~uint64_t{0};
    uint64_t chunk;
    if (im.options.earlyStop.checkEvery > 0) {
        chunk = im.options.earlyStop.checkEvery;
    } else {
        const uint64_t width = std::max<unsigned>(im.width, 1);
        chunk = std::max<uint64_t>(4 * width,
                                   im.exp->config().shots / 64);
    }
    // A shot cap bounds the chunk too: overshoot past maxShots is at
    // most one word-group, not a whole evaluation interval.
    const uint64_t cap = im.options.earlyStop.maxShots;
    if (cap > 0 && shots_done < cap)
        chunk = std::min(chunk, cap - shots_done);
    return chunk;
}

uint64_t
ExperimentSession::defaultChunkShots() const
{
    return defaultChunkShotsAt(impl_->total.shots);
}

ExperimentResult
ExperimentSession::runChunk(uint64_t max_shots)
{
    if (done())
        return newPartial();
    Impl &im = *impl_;
    const SessionChunkPlan plan = planChunkAt(nextUnit(), max_shots);
    ExperimentResult acc = newPartial();
    if (plan.empty())
        return acc;
    std::mutex merge_mutex;
    parallelForWorkers(
        plan.units(),
        [&](unsigned worker, uint64_t i) {
            ExperimentResult part =
                runPlannedUnit(plan.beginUnit + i, worker);
            std::lock_guard<std::mutex> lock(merge_mutex);
            acc.merge(part);
        },
        im.exp->config().threads);
    commitChunk(plan, acc);
    return acc;
}

const ExperimentResult &
ExperimentSession::runToCompletion()
{
    const double deadline = impl_->options.deadlineSeconds;
    const auto start = std::chrono::steady_clock::now();
    while (!done()) {
        runChunk(defaultChunkShots());
        if (deadline > 0.0 && !done() &&
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                    .count() >= deadline) {
            impl_->truncated = true;
            break;
        }
    }
    return impl_->total;
}

} // namespace qec
