/**
 * @file
 * Memory (state-preservation) experiment harness.
 *
 * Drives the full closed loop of the paper: execute a syndrome
 * extraction round, hand the syndrome to the scheduling policy, let it
 * adapt the next round's schedule (Fig. 9), and finally decode the
 * whole shot with the leakage-unaware MWPM decoder. Collects every
 * metric used in the evaluation: logical error rate (Eq. 4), leakage
 * population ratio (Eq. 5), speculation accuracy / FPR / FNR
 * (Fig. 16) and LRCs per round (Table 4).
 */

#ifndef QEC_EXP_MEMORY_EXPERIMENT_H
#define QEC_EXP_MEMORY_EXPERIMENT_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "code/circuit_ir.h"
#include "code/rotated_surface_code.h"
#include "core/policies.h"
#include "core/qsg.h"
#include "core/swap_lookup.h"
#include "decoder/batch_decoder.h"
#include "decoder/component_decoder.h"
#include "decoder/mwpm_decoder.h"
#include "decoder/syndrome_cache.h"
#include "decoder/union_find_decoder.h"
#include "sim/error_model.h"

namespace qec
{

/** Selectable decoder implementations. */
enum class DecoderKind
{
    Mwpm,
    UnionFind,
};

/** Everything needed to run one experiment configuration. */
struct ExperimentConfig
{
    int rounds = 0;
    Basis basis = Basis::Z;
    /**
     * Which circuit family the harness compiles and replays (see
     * code/circuit_ir.h). SurfaceMemory is the paper's protocol;
     * RepetitionMemory is a pure compiler path — same engine, same
     * decode pipeline, no lattice anywhere — protecting the Z basis
     * only. Non-surface families always run on the batch engine
     * (the scalar per-shot path walks the surface lattice).
     */
    CircuitFamily family = CircuitFamily::SurfaceMemory;
    ErrorModel em = ErrorModel::standard(1e-3);
    RemovalProtocol protocol = RemovalProtocol::SwapLrc;
    uint64_t shots = 1000;
    uint64_t seed = 1;
    /** Decode and count logical errors (slowest part; LPR-only
     *  studies turn it off). */
    bool decode = true;
    /** Which decoder to use (the paper uses MWPM; Union-Find is the
     *  faster comparison point). */
    DecoderKind decoderKind = DecoderKind::Mwpm;
    /** Collect the per-round leakage population series. */
    bool trackLpr = false;
    unsigned threads = 0;
    /**
     * Shots packed per simulator word-group (1..512). 1 selects the
     * scalar per-shot path; >1 selects the bit-packed batch engine,
     * which chunks shots into word-groups and is statistically
     * equivalent (but not draw-for-draw identical) to the scalar
     * path. Widths above 64 run the SIMD multi-word engine (64 lanes
     * per plane word, up to 8 words); because every 64-lane block
     * keeps its own noise streams, 256- and 512-wide runs are
     * bit-identical to the corresponding 64-wide runs. 256/512 are
     * the throughput sweet spots on AVX2/AVX-512 hosts (see
     * recommendedBatchWidth()).
     */
    unsigned batchWidth = 1;
    DecoderOptions decoderOptions;
    /**
     * Drive the batched engine's decode step through the BatchDecoder
     * pipeline (sparse syndromes, zero-defect fast path, dedup cache,
     * reusable workspaces). Verdict-identical to the per-shot decode
     * loop it replaces; turn off only to benchmark against the scalar
     * decode baseline.
     */
    bool batchDecode = true;
    /** Dedup-cache sizing for the batched decode pipeline. */
    SyndromeCacheOptions syndromeCache;
    /** Component-granular dispatch + exact per-component cache for
     *  the batched decode pipeline (see component_decoder.h). */
    ComponentDecodeOptions componentDecode;
    /**
     * Sliding-window streaming decode on the batched pipeline: decode
     * each shot's rounds in windows of this many detector rows
     * (0 = whole-history decode, the default), committing whole grown
     * clusters once they are provably beyond the decoder's certified
     * growth bound from every unseen row, and deferring the rest
     * (see batch_decoder.h). Verdicts are bit-identical to the
     * full-history decode at every window shape; sizing only trades
     * the deferral rate against peak decoder state, which is bounded
     * by the window content rather than the run length.
     */
    int windowLength = 0;
    /** Rows the window advances per step (1..windowLength). */
    int windowSlideLength = 0;
};

/** Aggregated outcome of an experiment. */
struct ExperimentResult
{
    std::string policy;
    uint64_t shots = 0;
    uint64_t logicalErrors = 0;

    /** Per-(data qubit, round) scheduling decision counters. */
    uint64_t tp = 0;
    uint64_t fp = 0;
    uint64_t tn = 0;
    uint64_t fn = 0;

    uint64_t lrcsScheduled = 0;
    uint64_t roundsTotal = 0;

    /** Per-round leaked-qubit count sums (divide by shots). */
    std::vector<double> lprDataSum;
    std::vector<double> lprParitySum;

    int numDataQubits = 0;
    int numParityQubits = 0;

    /** Batched decode pipeline counters (zero on the scalar path). */
    uint64_t decodedShots = 0;        ///< Shots that ran a real decode.
    uint64_t zeroDefectShots = 0;     ///< Shots skipped (no defects).
    uint64_t syndromeCacheHits = 0;   ///< Shots replayed from cache.
    uint64_t componentsTotal = 0;     ///< Components split off shots.
    uint64_t componentCacheHits = 0;  ///< Components replayed (exact).
    uint64_t componentsDecoded = 0;   ///< Components decoded for real.
    uint64_t guardFallbackShots = 0;  ///< Shots re-decoded whole-shot.
    uint64_t windowsDecoded = 0;      ///< Sliding windows decoded.

    /**
     * Order-independent XOR of a per-(shot id, logical-error bit)
     * mix, accumulated on every decoded path at any thread count.
     * Two runs of the same shot set have equal fingerprints iff every
     * individual shot's verdict matches — a strictly stronger check
     * than comparing logicalErrors counts, which compensating flips
     * leave unchanged (used by the BENCH_simd cross-width
     * verdict-identity field). Zero when decoding is off.
     */
    uint64_t verdictFingerprint = 0;

    double ler() const;
    /** "<1/shots" string when no error was observed. */
    std::string lerString() const;
    double speculationAccuracy() const;
    double falsePositiveRate() const;
    double falseNegativeRate() const;
    double avgLrcsPerRound() const;
    /** Dedup-cache hit rate over cache-eligible (nonzero) shots. */
    double syndromeCacheHitRate() const;
    /** Component-cache hit rate over all dispatched components. */
    double componentCacheHitRate() const;
    /** Leakage population ratio at round r (Eq. 5). */
    double lprTotal(int round) const;
    double lprData(int round) const;
    double lprParity(int round) const;

    /**
     * Accumulate another (partial) result of the same experiment into
     * this one. Counters and LPR sums add, the verdict fingerprint
     * XORs, and the LPR series is widened to the longer of the two —
     * so merging is commutative and associative over any partition of
     * a shot set: LPR sums are integer-valued counts (exact in double
     * up to 2^53) and everything else is integer adds or XOR.
     * The policy name and lattice dimensions are adopted from the
     * first non-empty operand. ExperimentSession::runChunk returns
     * partials designed to be combined with this.
     */
    ExperimentResult &merge(const ExperimentResult &other);
};

/**
 * Recoverable validation of everything in an ExperimentConfig that
 * the harness can reject up front: round count, batch width range,
 * and the sliding-window shape (windowSlideLength must be in
 * [1, windowLength] whenever windowing is enabled — a zero slide or a
 * slide longer than the window would otherwise misbehave deep inside
 * decodeWindowed). The MemoryExperiment and ExperimentSession
 * constructors panic on a config this rejects (documented
 * precondition), so recoverable callers — SweepRunner, services,
 * CLIs — validate first and surface the Status.
 */
Status validateExperimentConfig(const ExperimentConfig &config);

/**
 * Word-group decomposition shared by every batched driver: (first
 * shot, lane count) spans covering [0, shots), groups of `width`
 * lanes with a ragged tail — except that a tail whose last 64-lane
 * block would hold exactly one lane is split so the final shot forms
 * its own 1-lane (scalar-delegating) group, keeping wide runs
 * bit-identical to the width-64 runs.
 */
std::vector<std::pair<uint64_t, int>> batchGroupSpans(uint64_t shots,
                                                      uint64_t width);

/**
 * Builds a decoder for a detector model at physical error rate p;
 * lets callers swap in any Decoder implementation (the paper: "any
 * other decoder may be used as well").
 */
using DecoderFactory = std::function<std::unique_ptr<Decoder>(
    const DetectorModel &, double p)>;

/** Internal per-worker state (exp/experiment_internal.h). */
struct ExperimentShotStats;
struct ExperimentDecodeContext;
class ExperimentSession;

/**
 * One experiment configuration bound to a code; the detector model and
 * decoder are built once and shared by all policies and shots.
 *
 * The run entry points are thin wrappers over a one-chunk
 * ExperimentSession (exp/experiment_session.h); streaming consumers
 * (chunked execution, early stopping, sweep orchestration) construct
 * sessions directly.
 */
class MemoryExperiment
{
  public:
    MemoryExperiment(const RotatedSurfaceCode &code,
                     ExperimentConfig config);
    /** As above, but decode with a caller-supplied decoder (built by
     *  `decoder_factory` when config.decode is set). */
    MemoryExperiment(const RotatedSurfaceCode &code,
                     ExperimentConfig config,
                     const DecoderFactory &decoder_factory);
    /**
     * As above, but with a pre-built detector model and decoder shared
     * with other experiments of the same (distance, rounds, basis, p)
     * — the SweepRunner's cross-point cache. Decoders are stateless
     * (all mutable decode state lives in caller workspaces), so
     * sharing is safe across experiments and threads. Both may be
     * null when `config.decode` is false. A pre-compiled program of
     * the same (family, distance, rounds, basis, protocol) may be
     * shared the same way; when null, the constructor compiles one.
     */
    MemoryExperiment(const RotatedSurfaceCode &code,
                     ExperimentConfig config,
                     std::shared_ptr<const DetectorModel> dem,
                     std::shared_ptr<const Decoder> decoder,
                     std::shared_ptr<const CircuitProgram> program =
                         nullptr);
    ~MemoryExperiment();

    /** Run all shots under a policy kind. */
    ExperimentResult run(PolicyKind kind) const;

    /**
     * Run all shots with a custom policy factory. Dispatches to the
     * batched engine when config().batchWidth > 1.
     */
    ExperimentResult run(const PolicyFactory &factory,
                         const std::string &name) const;

    /**
     * Run all shots on the bit-packed batch engine regardless of
     * config().batchWidth (word-group width = max(batchWidth, 1),
     * clamped to 512). With width 1 this reproduces the scalar path
     * draw-for-draw, which the differential tests rely on; widths
     * 256/512 reproduce the width-64 runs bit for bit (per-block
     * noise streams).
     */
    ExperimentResult runBatched(const PolicyFactory &factory,
                                const std::string &name) const;

    const RotatedSurfaceCode & code() const { return code_; }
    const ExperimentConfig & config() const { return config_; }
    const SwapLookupTable & lookup() const { return lookup_; }
    /** Decoder (null when config.decode is false). */
    const Decoder * decoder() const { return decoder_.get(); }
    /** Detector model (null when config.decode is false). */
    std::shared_ptr<const DetectorModel> detectorModel() const
    {
        return dem_;
    }
    /** The decoder handle, for sharing with sibling experiments. */
    std::shared_ptr<const Decoder> sharedDecoder() const
    {
        return decoder_;
    }
    /** The compiled circuit program the batched drivers replay
     *  (never null; validated at construction). Shareable with
     *  sibling experiments of the same shape. */
    std::shared_ptr<const CircuitProgram> program() const
    {
        return program_;
    }
    /** Component graph for the batched decode pipeline (null when
     *  config.decode is false). Stateless; shared across threads. */
    std::shared_ptr<const ComponentGraph> componentGraph() const
    {
        return componentGraph_;
    }

  private:
    friend class ExperimentSession;

    void runShot(uint64_t shot, const PolicyFactory &factory,
                 ExperimentShotStats &stats) const;
    /** One word-group of `lanes` shots starting at `first_shot`, on
     *  the NW-plane-word engine (NW = 1/4/8). */
    template <int NW>
    void runGroupT(uint64_t first_shot, int lanes,
                   const PolicyFactory &factory,
                   ExperimentShotStats &stats,
                   ExperimentDecodeContext *ctx) const;
    /** Dedup-cache options with the derived truncated-key cutoff. */
    SyndromeCacheOptions resolvedCacheOptions() const;
    /** Full pipeline options for per-worker BatchDecoders. */
    BatchDecodeOptions resolvedBatchOptions() const;
    ExperimentResult resultHeader(const std::string &name) const;
    /** Consumes `stats` (LPR vectors are moved out). */
    void mergeStats(ExperimentResult &result,
                    ExperimentShotStats &stats) const;

    const RotatedSurfaceCode &code_;
    ExperimentConfig config_;
    SwapLookupTable lookup_;
    std::shared_ptr<const CircuitProgram> program_;
    std::shared_ptr<const DetectorModel> dem_;
    std::shared_ptr<const Decoder> decoder_;
    std::shared_ptr<const ComponentGraph> componentGraph_;
};

} // namespace qec

#endif // QEC_EXP_MEMORY_EXPERIMENT_H
