#include "exp/postselection.h"

#include <mutex>

#include "base/parallel.h"
#include "code/builder.h"
#include "decoder/defects.h"
#include "decoder/mwpm_decoder.h"
#include "sim/frame_simulator.h"

namespace qec
{

namespace
{

/**
 * Offline leakage flagging: any stabilizer accumulating
 * `eventThreshold` detection events within a `window`-round span marks
 * the shot (leaked qubits randomize their checks at ~50% per round, so
 * persistent activity is the leakage signature prior work keys on).
 */
bool
shotIsSuspect(const RotatedSurfaceCode &code, int rounds,
              const std::vector<MeasureRecord> &record,
              const PostSelectOptions &options)
{
    const int n_stabs = code.numStabilizers();
    std::vector<uint8_t> flips((size_t)n_stabs * rounds, 0);
    for (const auto &rec : record) {
        if (rec.stab >= 0 && !rec.finalData)
            flips[(size_t)rec.round * n_stabs + rec.stab] =
                rec.flip ? 1 : 0;
    }
    for (int s = 0; s < n_stabs; ++s) {
        int window_events = 0;
        for (int r = 0; r < rounds; ++r) {
            const uint8_t prev =
                r == 0 ? 0 : flips[(size_t)(r - 1) * n_stabs + s];
            const uint8_t event =
                flips[(size_t)r * n_stabs + s] ^ prev;
            window_events += event;
            if (r >= options.window) {
                const uint8_t old_prev =
                    r - options.window == 0
                        ? 0
                        : flips[(size_t)(r - options.window - 1) *
                                    n_stabs + s];
                window_events -=
                    flips[(size_t)(r - options.window) * n_stabs + s] ^
                    old_prev;
            }
            if (window_events >= options.eventThreshold)
                return true;
        }
    }
    return false;
}

} // namespace

PostSelectResult
runPostSelectedExperiment(const RotatedSurfaceCode &code,
                          const ExperimentConfig &config,
                          const PostSelectOptions &options)
{
    DetectorModel dem =
        buildDetectorModel(code, config.rounds, config.basis);
    MwpmDecoder decoder(dem, config.em.p, config.decoderOptions);
    Circuit circuit =
        buildMemoryCircuit(code, config.rounds, config.basis);

    PostSelectResult result;
    result.shots = config.shots;

    std::mutex merge;
    parallelFor(
        config.shots,
        [&](uint64_t shot) {
            FrameSimulator sim(code.numQubits(), config.em,
                               Rng::forShot(config.seed, shot));
            sim.run(circuit);
            const bool suspect = shotIsSuspect(
                code, config.rounds, sim.record(), options);
            ShotOutcome outcome = extractDefects(
                code, config.basis, config.rounds, sim.record());
            const bool error = decoder.decode(outcome.defects) !=
                               outcome.observableFlip;

            std::lock_guard<std::mutex> lock(merge);
            result.logicalErrorsAll += error ? 1 : 0;
            if (!suspect) {
                ++result.kept;
                result.logicalErrorsKept += error ? 1 : 0;
            }
        },
        config.threads);
    return result;
}

} // namespace qec
