#include "exp/postselection.h"

#include <algorithm>
#include <mutex>

#include "base/parallel.h"
#include "code/builder.h"
#include "decoder/batch_decoder.h"
#include "decoder/defects.h"
#include "decoder/mwpm_decoder.h"
#include "decoder/sparse_syndrome.h"
#include "sim/batch_frame_simulator.h"
#include "sim/frame_simulator.h"

namespace qec
{

namespace
{

/**
 * Offline leakage flagging: any stabilizer accumulating
 * `eventThreshold` detection events within a `window`-round span marks
 * the shot (leaked qubits randomize their checks at ~50% per round, so
 * persistent activity is the leakage signature prior work keys on).
 */
bool
shotIsSuspect(const RotatedSurfaceCode &code, int rounds,
              const std::vector<MeasureRecord> &record,
              const PostSelectOptions &options)
{
    const int n_stabs = code.numStabilizers();
    std::vector<uint8_t> flips((size_t)n_stabs * rounds, 0);
    for (const auto &rec : record) {
        if (rec.stab >= 0 && !rec.finalData)
            flips[(size_t)rec.round * n_stabs + rec.stab] =
                rec.flip ? 1 : 0;
    }
    for (int s = 0; s < n_stabs; ++s) {
        int window_events = 0;
        for (int r = 0; r < rounds; ++r) {
            const uint8_t prev =
                r == 0 ? 0 : flips[(size_t)(r - 1) * n_stabs + s];
            const uint8_t event =
                flips[(size_t)r * n_stabs + s] ^ prev;
            window_events += event;
            if (r >= options.window) {
                const uint8_t old_prev =
                    r - options.window == 0
                        ? 0
                        : flips[(size_t)(r - options.window - 1) *
                                    n_stabs + s];
                window_events -=
                    flips[(size_t)(r - options.window) * n_stabs + s] ^
                    old_prev;
            }
            if (window_events >= options.eventThreshold)
                return true;
        }
    }
    return false;
}

/** Per-worker scratch for the batched suspicion scan. */
struct SuspectScratch
{
    std::vector<uint64_t> flips;    ///< [round][stab] words.
    std::vector<uint64_t> evRing;   ///< Last `window` event words.
};

/**
 * Word-parallel shotIsSuspect: one bit per lane. Event words are
 * mostly zero at the rates of interest, so the per-lane window
 * counters are only touched on set bits.
 */
uint64_t
suspectMaskBatched(const RotatedSurfaceCode &code, int rounds,
                   const std::vector<BatchMeasureRecord> &record,
                   int num_lanes, const PostSelectOptions &options,
                   SuspectScratch &scratch)
{
    const int n_stabs = code.numStabilizers();
    const uint64_t live = laneMask(num_lanes);
    scratch.flips.assign((size_t)n_stabs * rounds, 0);
    for (const auto &rec : record) {
        if (rec.stab >= 0 && !rec.finalData) {
            uint64_t &word =
                scratch.flips[(size_t)rec.round * n_stabs + rec.stab];
            word = (word & ~rec.mask) | rec.flips;
        }
    }

    const int window = std::max(options.window, 1);
    scratch.evRing.assign((size_t)window, 0);
    uint64_t suspect = 0;
    for (int s = 0; s < n_stabs; ++s) {
        uint8_t counts[64] = {0};
        std::fill(scratch.evRing.begin(), scratch.evRing.end(), 0);
        uint64_t prev = 0;
        for (int r = 0; r < rounds; ++r) {
            const uint64_t cur =
                scratch.flips[(size_t)r * n_stabs + s];
            const uint64_t ev = (cur ^ prev) & live;
            prev = cur;
            uint64_t leaving = scratch.evRing[r % window];
            scratch.evRing[r % window] = ev;
            while (leaving) {
                --counts[__builtin_ctzll(leaving)];
                leaving &= leaving - 1;
            }
            uint64_t arriving = ev;
            while (arriving) {
                const int l = __builtin_ctzll(arriving);
                arriving &= arriving - 1;
                if (++counts[l] >= options.eventThreshold)
                    suspect |= uint64_t{1} << l;
            }
        }
    }
    return suspect;
}

} // namespace

PostSelectResult
runPostSelectedExperimentBatched(const RotatedSurfaceCode &code,
                                 const ExperimentConfig &config,
                                 const PostSelectOptions &options)
{
    DetectorModel dem =
        buildDetectorModel(code, config.rounds, config.basis);
    MwpmDecoder decoder(dem, config.em.p, config.decoderOptions);
    Circuit circuit =
        buildMemoryCircuit(code, config.rounds, config.basis);

    const uint64_t width = std::min<uint64_t>(
        std::max<unsigned>(config.batchWidth, 1),
        (unsigned)BatchFrameSimulator::kMaxLanes);
    const uint64_t groups = (config.shots + width - 1) / width;

    struct Context
    {
        SparseSyndromeExtractor extractor;
        BatchSyndrome syndrome;
        SuspectScratch suspect;
        std::unique_ptr<BatchDecoder> pipeline;
    };
    const unsigned workers =
        resolveThreadCount(groups, config.threads);
    std::vector<Context> contexts(workers);
    for (auto &ctx : contexts)
        ctx.pipeline = std::make_unique<BatchDecoder>(
            decoder, config.syndromeCache);

    PostSelectResult result;
    result.shots = config.shots;

    std::mutex merge;
    parallelForWorkers(
        groups,
        [&](unsigned worker, uint64_t group) {
            Context &ctx = contexts[worker];
            const uint64_t first = group * width;
            const int W =
                (int)std::min<uint64_t>(width, config.shots - first);
            const uint64_t live = laneMask(W);

            BatchFrameSimulator sim(code.numQubits(), config.em, W,
                                    config.seed, first);
            sim.reserveRecord(circuit.ops.size());
            sim.executeRange(circuit.ops.data(),
                             circuit.ops.data() + circuit.ops.size(),
                             live);

            const uint64_t suspect = suspectMaskBatched(
                code, config.rounds, sim.record(), W, options,
                ctx.suspect);
            ctx.extractor.extract(code, config.basis, config.rounds,
                                  sim.record(), W, ctx.syndrome);
            const uint64_t predictions =
                ctx.pipeline->decodeBatch(ctx.syndrome);
            const uint64_t errors =
                (predictions ^ ctx.syndrome.observableWord) & live;

            std::lock_guard<std::mutex> lock(merge);
            result.logicalErrorsAll +=
                (uint64_t)__builtin_popcountll(errors);
            result.kept +=
                (uint64_t)__builtin_popcountll(~suspect & live);
            result.logicalErrorsKept +=
                (uint64_t)__builtin_popcountll(errors & ~suspect);
        },
        config.threads);
    return result;
}

PostSelectResult
runPostSelectedExperiment(const RotatedSurfaceCode &code,
                          const ExperimentConfig &config,
                          const PostSelectOptions &options)
{
    if (config.batchWidth > 1)
        return runPostSelectedExperimentBatched(code, config, options);

    DetectorModel dem =
        buildDetectorModel(code, config.rounds, config.basis);
    MwpmDecoder decoder(dem, config.em.p, config.decoderOptions);
    Circuit circuit =
        buildMemoryCircuit(code, config.rounds, config.basis);

    PostSelectResult result;
    result.shots = config.shots;

    std::mutex merge;
    parallelFor(
        config.shots,
        [&](uint64_t shot) {
            FrameSimulator sim(code.numQubits(), config.em,
                               Rng::forShot(config.seed, shot));
            sim.run(circuit);
            const bool suspect = shotIsSuspect(
                code, config.rounds, sim.record(), options);
            ShotOutcome outcome = extractDefects(
                code, config.basis, config.rounds, sim.record());
            const bool error = decoder.decode(outcome.defects) !=
                               outcome.observableFlip;

            std::lock_guard<std::mutex> lock(merge);
            result.logicalErrorsAll += error ? 1 : 0;
            if (!suspect) {
                ++result.kept;
                result.logicalErrorsKept += error ? 1 : 0;
            }
        },
        config.threads);
    return result;
}

} // namespace qec
