#include "exp/postselection.h"

#include <algorithm>
#include <mutex>

#include "base/parallel.h"
#include "code/builder.h"
#include "decoder/batch_decoder.h"
#include "decoder/defects.h"
#include "decoder/mwpm_decoder.h"
#include "decoder/sparse_syndrome.h"
#include "sim/batch_frame_simulator.h"
#include "sim/frame_simulator.h"

namespace qec
{

namespace
{

/**
 * Offline leakage flagging: any stabilizer accumulating
 * `eventThreshold` detection events within a `window`-round span marks
 * the shot (leaked qubits randomize their checks at ~50% per round, so
 * persistent activity is the leakage signature prior work keys on).
 */
bool
shotIsSuspect(const RotatedSurfaceCode &code, int rounds,
              const std::vector<MeasureRecord> &record,
              const PostSelectOptions &options)
{
    const int n_stabs = code.numStabilizers();
    std::vector<uint8_t> flips((size_t)n_stabs * rounds, 0);
    for (const auto &rec : record) {
        if (rec.stab >= 0 && !rec.finalData)
            flips[(size_t)rec.round * n_stabs + rec.stab] =
                rec.flip ? 1 : 0;
    }
    for (int s = 0; s < n_stabs; ++s) {
        int window_events = 0;
        for (int r = 0; r < rounds; ++r) {
            const uint8_t prev =
                r == 0 ? 0 : flips[(size_t)(r - 1) * n_stabs + s];
            const uint8_t event =
                flips[(size_t)r * n_stabs + s] ^ prev;
            window_events += event;
            if (r >= options.window) {
                const uint8_t old_prev =
                    r - options.window == 0
                        ? 0
                        : flips[(size_t)(r - options.window - 1) *
                                    n_stabs + s];
                window_events -=
                    flips[(size_t)(r - options.window) * n_stabs + s] ^
                    old_prev;
            }
            if (window_events >= options.eventThreshold)
                return true;
        }
    }
    return false;
}

/** Per-worker scratch for the batched suspicion scan. */
struct SuspectScratch
{
    std::vector<uint64_t> flips;    ///< [round][stab][word] planes.
    std::vector<uint64_t> evRing;   ///< Last `window` event planes.
};

/**
 * Word-parallel shotIsSuspect: one bit per lane, any group width.
 * Event words are mostly zero at the rates of interest, so the
 * per-lane window counters are only touched on set bits.
 */
template <int NW>
void
suspectMaskBatched(const RotatedSurfaceCode &code, int rounds,
                   const std::vector<BatchMeasureRecordT<NW>> &record,
                   int num_lanes, const PostSelectOptions &options,
                   SuspectScratch &scratch,
                   uint64_t suspect[kMaxBatchWords])
{
    const int n_stabs = code.numStabilizers();
    const int nw = (num_lanes + 63) / 64;
    scratch.flips.assign((size_t)n_stabs * rounds * nw, 0);
    for (const auto &rec : record) {
        if (rec.stab >= 0 && !rec.finalData) {
            uint64_t *word =
                scratch.flips.data() +
                ((size_t)rec.round * n_stabs + rec.stab) * nw;
            for (int b = 0; b < nw; ++b)
                word[b] = (word[b] & ~laneWord(rec.mask, b)) |
                          laneWord(rec.flips, b);
        }
    }

    const int window = std::max(options.window, 1);
    scratch.evRing.assign((size_t)window * nw, 0);
    for (int b = 0; b < nw; ++b)
        suspect[b] = 0;
    for (int s = 0; s < n_stabs; ++s) {
        uint8_t counts[kMaxBatchLanes] = {0};
        std::fill(scratch.evRing.begin(), scratch.evRing.end(), 0);
        uint64_t prev[kMaxBatchWords] = {0};
        for (int r = 0; r < rounds; ++r) {
            const uint64_t *cur =
                scratch.flips.data() + ((size_t)r * n_stabs + s) * nw;
            uint64_t *ring = scratch.evRing.data() + (r % window) * nw;
            for (int b = 0; b < nw; ++b) {
                const uint64_t ev =
                    (cur[b] ^ prev[b]) & laneMask64(num_lanes - 64 * b);
                prev[b] = cur[b];
                uint64_t leaving = ring[b];
                ring[b] = ev;
                const int base = 64 * b;
                while (leaving) {
                    --counts[base + __builtin_ctzll(leaving)];
                    leaving &= leaving - 1;
                }
                uint64_t arriving = ev;
                while (arriving) {
                    const int l = base + __builtin_ctzll(arriving);
                    arriving &= arriving - 1;
                    if (++counts[l] >= options.eventThreshold)
                        suspect[b] |= uint64_t{1} << (l - base);
                }
            }
        }
    }
}

/** Per-worker context of the batched path. */
struct PostSelectContext
{
    SparseSyndromeExtractor extractor;
    BatchSyndrome syndrome;
    SuspectScratch suspect;
    std::unique_ptr<BatchDecoder> pipeline;
};

/** Tallies of one word-group, merged under the caller's mutex. */
struct GroupTally
{
    uint64_t errorsAll = 0;
    uint64_t kept = 0;
    uint64_t errorsKept = 0;
};

template <int NW>
GroupTally
runPostSelectGroup(const RotatedSurfaceCode &code,
                   const ExperimentConfig &config,
                   const PostSelectOptions &options,
                   const Circuit &circuit, PostSelectContext &ctx,
                   uint64_t first, int W)
{
    using Lane = LaneWord<NW>;
    const int nw = (W + 63) / 64;
    const Lane live = laneMaskOf<Lane>(W);

    BatchFrameSimulatorT<NW> sim(code.numQubits(), config.em, W,
                                 config.seed, first);
    sim.reserveRecord(circuit.ops.size());
    sim.executeRange(circuit.ops.data(),
                     circuit.ops.data() + circuit.ops.size(), live);

    uint64_t suspect[kMaxBatchWords];
    suspectMaskBatched(code, config.rounds, sim.record(), W, options,
                       ctx.suspect, suspect);
    ctx.extractor.extract(code, config.basis, config.rounds,
                          sim.record(), W, ctx.syndrome);
    uint64_t predictions[kMaxBatchWords];
    ctx.pipeline->decodeBatch(ctx.syndrome, predictions);

    GroupTally tally;
    for (int b = 0; b < nw; ++b) {
        const uint64_t live_b = laneWord(live, b);
        const uint64_t errors =
            (predictions[b] ^ ctx.syndrome.observableWords[b]) &
            live_b;
        tally.errorsAll += (uint64_t)__builtin_popcountll(errors);
        tally.kept +=
            (uint64_t)__builtin_popcountll(~suspect[b] & live_b);
        tally.errorsKept +=
            (uint64_t)__builtin_popcountll(errors & ~suspect[b]);
    }
    return tally;
}

} // namespace

PostSelectResult
runPostSelectedExperimentBatched(const RotatedSurfaceCode &code,
                                 const ExperimentConfig &config,
                                 const PostSelectOptions &options)
{
    DetectorModel dem =
        buildDetectorModel(code, config.rounds, config.basis);
    MwpmDecoder decoder(dem, config.em.p, config.decoderOptions);
    Circuit circuit =
        buildMemoryCircuit(code, config.rounds, config.basis);

    const uint64_t width = std::min<uint64_t>(
        std::max<unsigned>(config.batchWidth, 1),
        (unsigned)kMaxBatchLanes);
    const auto spans = batchGroupSpans(config.shots, width);

    const unsigned workers =
        resolveThreadCount(spans.size(), config.threads);
    std::vector<PostSelectContext> contexts(workers);
    const SyndromeCacheOptions cache_opts = resolveSyndromeCacheOptions(
        config.syndromeCache, config.rounds,
        code.numBasisStabilizers(config.basis));
    for (auto &ctx : contexts)
        ctx.pipeline = std::make_unique<BatchDecoder>(
            decoder, cache_opts);

    PostSelectResult result;
    result.shots = config.shots;

    std::mutex merge;
    parallelForWorkers(
        spans.size(),
        [&](unsigned worker, uint64_t group) {
            PostSelectContext &ctx = contexts[worker];
            const auto [first, W] = spans[group];

            GroupTally tally;
            if (width <= 64)
                tally = runPostSelectGroup<1>(code, config, options,
                                              circuit, ctx, first, W);
            else if (width <= 256)
                tally = runPostSelectGroup<4>(code, config, options,
                                              circuit, ctx, first, W);
            else
                tally = runPostSelectGroup<8>(code, config, options,
                                              circuit, ctx, first, W);

            std::lock_guard<std::mutex> lock(merge);
            result.logicalErrorsAll += tally.errorsAll;
            result.kept += tally.kept;
            result.logicalErrorsKept += tally.errorsKept;
        },
        config.threads);
    return result;
}

PostSelectResult
runPostSelectedExperiment(const RotatedSurfaceCode &code,
                          const ExperimentConfig &config,
                          const PostSelectOptions &options)
{
    if (config.batchWidth > 1)
        return runPostSelectedExperimentBatched(code, config, options);

    DetectorModel dem =
        buildDetectorModel(code, config.rounds, config.basis);
    MwpmDecoder decoder(dem, config.em.p, config.decoderOptions);
    Circuit circuit =
        buildMemoryCircuit(code, config.rounds, config.basis);

    PostSelectResult result;
    result.shots = config.shots;

    std::mutex merge;
    parallelFor(
        config.shots,
        [&](uint64_t shot) {
            FrameSimulator sim(code.numQubits(), config.em,
                               Rng::forShot(config.seed, shot));
            sim.run(circuit);
            const bool suspect = shotIsSuspect(
                code, config.rounds, sim.record(), options);
            ShotOutcome outcome = extractDefects(
                code, config.basis, config.rounds, sim.record());
            const bool error = decoder.decode(outcome.defects) !=
                               outcome.observableFlip;

            std::lock_guard<std::mutex> lock(merge);
            result.logicalErrorsAll += error ? 1 : 0;
            if (!suspect) {
                ++result.kept;
                result.logicalErrorsKept += error ? 1 : 0;
            }
        },
        config.threads);
    return result;
}

} // namespace qec
