/**
 * @file
 * Frozen hand-wired batch driver: the pre-IR word-group round loop,
 * kept verbatim as an executable reference.
 *
 * MemoryExperiment::runGroupT replays compiled CircuitPrograms through
 * BatchFrameSimulatorT::executeProgramRound; this header preserves the
 * imperative driver it replaced, built only from public APIs. The
 * forever-contract — IR replay reproduces the hand-wired per-shot
 * verdict fingerprints bit-identically at W = 64/256/512 with
 * per-64-lane-block stream draw order unchanged — is asserted by
 * running both paths and comparing fingerprints, counters and LPR
 * series (tests/test_circuit_ir.cpp), and the IR-vs-hand-wired
 * throughput pin in bench/perf_components.cpp times this loop as the
 * baseline.
 */

#ifndef QEC_EXP_HANDWIRED_REFERENCE_H
#define QEC_EXP_HANDWIRED_REFERENCE_H

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "base/logging.h"
#include "base/simd_word.h"
#include "code/builder.h"
#include "core/policies.h"
#include "decoder/batch_decoder.h"
#include "decoder/sparse_syndrome.h"
#include "decoder/syndrome_cache.h"
#include "exp/memory_experiment.h"
#include "sim/batch_frame_simulator.h"

namespace qec
{

/** The counters the hand-wired driver accumulates; field-for-field
 *  comparable with ExperimentResult's shot statistics. */
struct HandwiredResult
{
    uint64_t shots = 0;
    uint64_t logicalErrors = 0;
    uint64_t verdictFingerprint = 0;
    uint64_t tp = 0;
    uint64_t fp = 0;
    uint64_t tn = 0;
    uint64_t fn = 0;
    uint64_t lrcsScheduled = 0;
    std::vector<double> lprData;
    std::vector<double> lprParity;
};

namespace handwired
{

/** The per-shot verdict mix (same function the harness uses). */
inline uint64_t
verdictMix(uint64_t shot, bool error)
{
    uint64_t x = shot * 2 + (error ? 1 : 0) + 0x9e3779b97f4a7c15ull;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

inline int
popcount64(uint64_t word)
{
    return __builtin_popcountll(word);
}

/** Lane-divergent LRC assignment within one 64-lane block. */
struct ActiveLrc
{
    int stab;
    int data;
    uint64_t mask;
};

/** The experiment's batched decode-pipeline options, rebuilt from its
 *  public configuration. */
inline BatchDecodeOptions
batchOptions(const MemoryExperiment &exp)
{
    const ExperimentConfig &cfg = exp.config();
    BatchDecodeOptions options;
    options.cache = resolveSyndromeCacheOptions(
        cfg.syndromeCache, cfg.rounds,
        exp.code().numBasisStabilizers(cfg.basis));
    options.components = cfg.componentDecode;
    options.windowLength = cfg.windowLength;
    options.windowSlideLength = cfg.windowSlideLength;
    return options;
}

/** One word-group of the pre-IR driver, verbatim. */
template <int NW>
void
runGroup(const MemoryExperiment &exp, uint64_t first_shot, int lanes,
         const PolicyFactory &factory, SparseSyndromeExtractor &extractor,
         BatchSyndrome &syndrome, BatchDecoder *pipeline,
         HandwiredResult &stats)
{
    using Lane = LaneWord<NW>;
    const RotatedSurfaceCode &code = exp.code();
    const ExperimentConfig &cfg = exp.config();
    const uint64_t first = first_shot;
    const int W = lanes;
    const int NB = (W + 63) / 64;
    const int n_stabs = code.numStabilizers();
    const int n_data = code.numData();
    const StabType primary = protectingStabType(cfg.basis);
    const bool swap_lrc = cfg.protocol == RemovalProtocol::SwapLrc;

    BatchFrameSimulatorT<NW> sim(code.numQubits(), cfg.em, W, cfg.seed,
                                 first);
    const Lane live = sim.liveMask();
    sim.reserveRecord(
        (size_t)cfg.rounds * (1 + (size_t)NB) * n_stabs + n_data);

    std::unique_ptr<LrcPolicy> shared = factory();
    const BatchPolicySpec spec = shared->batchSpec();
    const bool multi_level = shared->usesMultiLevelReadout();
    const bool per_lane = spec.kind == BatchPolicyKind::PerLane;

    std::vector<std::unique_ptr<LrcPolicy>> policies;
    std::unique_ptr<BatchEraserController<Lane>> controller;
    std::vector<std::vector<LrcPair>> lrcs(W);
    if (per_lane) {
        policies.reserve(W);
        policies.push_back(std::move(shared));
        for (int l = 1; l < W; ++l)
            policies.push_back(factory());
        for (int l = 0; l < W; ++l)
            lrcs[l] = policies[l]->firstRound();
    } else if (spec.kind == BatchPolicyKind::Eraser) {
        controller = std::make_unique<BatchEraserController<Lane>>(
            code, exp.lookup(), spec);
        const auto first_lrcs = shared->firstRound();
        for (int l = 0; l < W; ++l)
            lrcs[l] = first_lrcs;
    } else {
        lrcs[0] = shared->firstRound();
    }

    const RoundSchedule plain = buildRoundSchedule(code, 0, {});
    size_t prefix_end = 0;
    while (prefix_end < plain.ops.size() &&
           plain.ops[prefix_end].type != OpType::Measure)
        ++prefix_end;

    RoundObservation obs;
    obs.events.assign(n_stabs, 0);
    obs.leakedLabels.assign(n_stabs, 0);
    obs.hadLrc.assign(n_data, 0);
    obs.trueLeakedData.assign(n_data, 0);

    std::vector<Lane> flips(n_stabs, Lane{}), labels(n_stabs, Lane{});
    std::vector<Lane> prev_flips(n_stabs, Lane{});
    std::vector<Lane> events(n_stabs, Lane{});
    std::vector<Lane> sched_mask(n_data, Lane{});
    std::vector<Lane> lrc_on_stab(n_stabs, Lane{});
    std::vector<Lane> leak_snapshot(n_data, Lane{});
    std::vector<uint32_t> ev_off((size_t)W + 1), lab_off((size_t)W + 1),
        leak_off((size_t)W + 1);
    std::vector<uint32_t> ev_cur(W), lab_cur(W), leak_cur(W);
    std::vector<int> ev_arena, lab_arena, leak_arena;
    std::vector<ActiveLrc> active[NW];
    std::vector<int> stab_epoch(n_stabs, -1), data_epoch(n_data, -1);
    int epoch = 0;

    for (int r = 0; r < cfg.rounds; ++r) {
        std::fill(sched_mask.begin(), sched_mask.end(), Lane{});
        std::fill(lrc_on_stab.begin(), lrc_on_stab.end(), Lane{});
        for (int b = 0; b < NB; ++b)
            active[b].clear();
        if (!per_lane && spec.kind != BatchPolicyKind::Eraser) {
            for (const auto &pair : lrcs[0]) {
                panicIf(pair.stab < 0 || pair.stab >= n_stabs,
                        "LRC references an invalid stabilizer");
                panicIf(pair.data < 0 || pair.data >= n_data,
                        "LRC references an invalid data qubit");
                sched_mask[pair.data] = live;
                lrc_on_stab[pair.stab] = live;
                for (int b = 0; b < NB; ++b)
                    active[b].push_back(
                        {pair.stab, pair.data, laneWord(live, b)});
            }
            stats.lrcsScheduled +=
                (uint64_t)lrcs[0].size() * (uint64_t)W;
        } else {
            for (int l = 0; l < W; ++l) {
                ++epoch;
                const int b = l >> 6;
                const uint64_t bit = uint64_t{1} << (l & 63);
                for (const auto &pair : lrcs[l]) {
                    if (per_lane) {
                        panicIf(pair.stab < 0 || pair.stab >= n_stabs,
                                "LRC references an invalid stabilizer");
                        panicIf(pair.data < 0 || pair.data >= n_data,
                                "LRC references an invalid data qubit");
                        panicIf(stab_epoch[pair.stab] == epoch,
                                "two LRCs share one parity qubit in "
                                "the same round");
                        panicIf(data_epoch[pair.data] == epoch,
                                "one data qubit has two LRCs in the "
                                "same round");
                        stab_epoch[pair.stab] = epoch;
                        data_epoch[pair.data] = epoch;
                        const auto &support =
                            code.stabilizer(pair.stab).support;
                        panicIf(std::find(support.begin(),
                                          support.end(),
                                          pair.data) == support.end(),
                                "LRC data qubit is not adjacent to "
                                "its parity qubit");
                    }
                    setLane(sched_mask[pair.data], l);
                    setLane(lrc_on_stab[pair.stab], l);
                    auto it = std::find_if(
                        active[b].begin(), active[b].end(),
                        [&](const ActiveLrc &a) {
                            return a.stab == pair.stab &&
                                   a.data == pair.data;
                        });
                    if (it == active[b].end())
                        active[b].push_back(
                            {pair.stab, pair.data, bit});
                    else
                        it->mask |= bit;
                }
                stats.lrcsScheduled += lrcs[l].size();
            }
        }

        uint64_t sched_total = 0, leaked_total = 0, tp_round = 0;
        for (int q = 0; q < n_data; ++q) {
            const Lane is_leaked = sim.leakedWord(q) & live;
            leaked_total += (uint64_t)popcountLanes(is_leaked);
            if (anyLane(sched_mask[q])) {
                sched_total +=
                    (uint64_t)popcountLanes(sched_mask[q]);
                tp_round += (uint64_t)popcountLanes(sched_mask[q] &
                                                    is_leaked);
            }
        }
        stats.tp += tp_round;
        stats.fp += sched_total - tp_round;
        stats.fn += leaked_total - tp_round;
        stats.tn += (uint64_t)W * (uint64_t)n_data - sched_total -
                    leaked_total + tp_round;

        const size_t record_mark = sim.record().size();

        sim.executeRange(plain.ops.data(),
                         plain.ops.data() + prefix_end, live);

        for (const auto &stab : code.stabilizers()) {
            Lane m = live;
            if (swap_lrc)
                m = andnot(m, lrc_on_stab[stab.index]);
            if (!anyLane(m))
                continue;
            Op meas = makeOp(OpType::Measure, stab.ancilla);
            meas.stab = stab.index;
            meas.round = r;
            sim.execute(meas, m);
            sim.execute(makeOp(OpType::Reset, stab.ancilla), m);
        }
        for (int b = 0; b < NB; ++b) {
            for (const auto &a : active[b]) {
                const int parity = code.stabilizer(a.stab).ancilla;
                if (swap_lrc) {
                    sim.executeBlock(
                        makeOp(OpType::Cnot, a.data, parity), b,
                        a.mask);
                    sim.executeBlock(
                        makeOp(OpType::Cnot, parity, a.data), b,
                        a.mask);
                    sim.executeBlock(
                        makeOp(OpType::Cnot, a.data, parity), b,
                        a.mask);
                    Op meas = makeOp(OpType::Measure, a.data);
                    meas.stab = a.stab;
                    meas.round = r;
                    meas.lrcData = true;
                    sim.executeBlock(meas, b, a.mask);
                    uint64_t squash = 0;
                    if (multi_level)
                        squash =
                            laneWord(sim.record().back().leakedLabels,
                                     b) &
                            a.mask;
                    sim.executeBlock(makeOp(OpType::Reset, a.data), b,
                                     a.mask);
                    const uint64_t mov = a.mask & ~squash;
                    if (mov) {
                        sim.executeBlock(
                            makeOp(OpType::Cnot, parity, a.data), b,
                            mov);
                        sim.executeBlock(
                            makeOp(OpType::Cnot, a.data, parity), b,
                            mov);
                    }
                    if (squash)
                        sim.executeBlock(makeOp(OpType::Reset, parity),
                                         b, squash);
                } else {
                    sim.executeBlock(
                        makeOp(OpType::LeakageIswap, a.data, parity),
                        b, a.mask);
                    sim.executeBlock(makeOp(OpType::Reset, parity), b,
                                     a.mask);
                }
            }
        }

        std::fill(flips.begin(), flips.end(), Lane{});
        std::fill(labels.begin(), labels.end(), Lane{});
        for (size_t i = record_mark; i < sim.record().size(); ++i) {
            const auto &rec = sim.record()[i];
            if (rec.stab < 0)
                continue;
            flips[rec.stab] =
                andnot(flips[rec.stab], rec.mask) | rec.flips;
            if (!rec.lrcData)
                labels[rec.stab] =
                    andnot(labels[rec.stab], rec.mask) |
                    rec.leakedLabels;
        }

        if (cfg.trackLpr) {
            stats.lprData[r] += (double)sim.countLeaked(0, n_data);
            stats.lprParity[r] +=
                (double)sim.countLeaked(n_data, code.numQubits());
        }

        for (int s = 0; s < n_stabs; ++s) {
            if (r == 0) {
                events[s] = code.stabilizer(s).type == primary
                    ? flips[s] : Lane{};
            } else {
                events[s] = flips[s] ^ prev_flips[s];
            }
        }

        obs.round = r;
        if (controller) {
            controller->nextRound(events, labels, sched_mask, live,
                                  lrcs);
        } else if (spec.kind == BatchPolicyKind::Uniform) {
            lrcs[0] = shared->nextRound(obs);
        } else if (spec.kind == BatchPolicyKind::Never) {
            // Nothing ever scheduled; lrcs[0] stays empty.
        } else {
            for (int q = 0; q < n_data; ++q)
                leak_snapshot[q] = sim.leakedWord(q);

            std::fill(ev_cur.begin(), ev_cur.end(), 0);
            std::fill(lab_cur.begin(), lab_cur.end(), 0);
            std::fill(leak_cur.begin(), leak_cur.end(), 0);
            for (int s = 0; s < n_stabs; ++s) {
                forEachSetLane(events[s], [&](int l) { ++ev_cur[l]; });
                forEachSetLane(labels[s], [&](int l) { ++lab_cur[l]; });
            }
            for (int q = 0; q < n_data; ++q)
                forEachSetLane(leak_snapshot[q],
                               [&](int l) { ++leak_cur[l]; });
            uint32_t ev_total = 0, lab_total = 0, leak_total = 0;
            for (int l = 0; l < W; ++l) {
                ev_off[l] = ev_total;
                ev_total += ev_cur[l];
                ev_cur[l] = ev_off[l];
                lab_off[l] = lab_total;
                lab_total += lab_cur[l];
                lab_cur[l] = lab_off[l];
                leak_off[l] = leak_total;
                leak_total += leak_cur[l];
                leak_cur[l] = leak_off[l];
            }
            ev_off[W] = ev_total;
            lab_off[W] = lab_total;
            leak_off[W] = leak_total;
            ev_arena.resize(ev_total);
            lab_arena.resize(lab_total);
            leak_arena.resize(leak_total);
            for (int s = 0; s < n_stabs; ++s) {
                forEachSetLane(events[s], [&](int l) {
                    ev_arena[ev_cur[l]++] = s;
                });
                forEachSetLane(labels[s], [&](int l) {
                    lab_arena[lab_cur[l]++] = s;
                });
            }
            for (int q = 0; q < n_data; ++q) {
                forEachSetLane(leak_snapshot[q], [&](int l) {
                    leak_arena[leak_cur[l]++] = q;
                });
            }

            for (int l = 0; l < W; ++l) {
                for (uint32_t k = ev_off[l]; k < ev_off[l + 1]; ++k)
                    obs.events[ev_arena[k]] = 1;
                for (uint32_t k = lab_off[l]; k < lab_off[l + 1]; ++k)
                    obs.leakedLabels[lab_arena[k]] = 1;
                for (uint32_t k = leak_off[l]; k < leak_off[l + 1]; ++k)
                    obs.trueLeakedData[leak_arena[k]] = 1;
                for (const auto &pair : lrcs[l])
                    obs.hadLrc[pair.data] = 1;

                auto next = policies[l]->nextRound(obs);

                for (uint32_t k = ev_off[l]; k < ev_off[l + 1]; ++k)
                    obs.events[ev_arena[k]] = 0;
                for (uint32_t k = lab_off[l]; k < lab_off[l + 1]; ++k)
                    obs.leakedLabels[lab_arena[k]] = 0;
                for (uint32_t k = leak_off[l]; k < leak_off[l + 1];
                     ++k)
                    obs.trueLeakedData[leak_arena[k]] = 0;
                for (const auto &pair : lrcs[l])
                    obs.hadLrc[pair.data] = 0;
                lrcs[l] = std::move(next);
            }
        }
        std::copy(flips.begin(), flips.end(), prev_flips.begin());
    }

    if (!cfg.decode)
        return;

    auto final_ops =
        buildFinalMeasurement(code, cfg.rounds, cfg.basis);
    sim.executeRange(final_ops.data(),
                     final_ops.data() + final_ops.size(), live);

    extractor.extract(code, cfg.basis, cfg.rounds, sim.record(), W,
                      syndrome);
    if (cfg.batchDecode) {
        uint64_t predictions[kMaxBatchWords];
        pipeline->decodeBatch(syndrome, predictions);
        for (int b = 0; b < NB; ++b) {
            const uint64_t errors =
                (predictions[b] ^ syndrome.observableWords[b]) &
                laneWord(live, b);
            stats.logicalErrors += popcount64(errors);
            const int block_lanes = popcount64(laneWord(live, b));
            for (int i = 0; i < block_lanes; ++i)
                stats.verdictFingerprint ^= verdictMix(
                    first + 64 * (uint64_t)b + i,
                    (errors >> i) & 1);
        }
    } else {
        for (int l = 0; l < W; ++l) {
            const std::vector<int> defects(
                syndrome.laneBegin(l),
                syndrome.laneBegin(l) + syndrome.laneSize(l));
            const bool predicted = exp.decoder()->decode(defects);
            const bool error =
                predicted != syndrome.laneObservable(l);
            stats.logicalErrors += error ? 1 : 0;
            stats.verdictFingerprint ^= verdictMix(first + l, error);
        }
    }
}

} // namespace handwired

/**
 * Run every shot of the experiment through the frozen hand-wired
 * word-group driver (always the batch engine, like runBatched). The
 * group decomposition, engine seeding and decode pipeline match the
 * harness exactly, so the returned fingerprints/counters are directly
 * comparable with ExperimentResult.
 */
inline HandwiredResult
runHandwired(const MemoryExperiment &exp, const PolicyFactory &factory)
{
    const ExperimentConfig &cfg = exp.config();
    const unsigned width = std::min<unsigned>(
        std::max<unsigned>(cfg.batchWidth, 1),
        (unsigned)kMaxBatchLanes);

    HandwiredResult out;
    out.shots = cfg.shots;
    if (cfg.trackLpr) {
        out.lprData.assign(cfg.rounds, 0.0);
        out.lprParity.assign(cfg.rounds, 0.0);
    }

    SparseSyndromeExtractor extractor;
    BatchSyndrome syndrome;
    std::unique_ptr<BatchDecoder> pipeline;
    if (cfg.decode && cfg.batchDecode)
        pipeline = std::make_unique<BatchDecoder>(
            *exp.decoder(), handwired::batchOptions(exp),
            exp.componentGraph());

    for (const auto &[first, lanes] : batchGroupSpans(cfg.shots, width)) {
        if (width <= 64)
            handwired::runGroup<1>(exp, first, lanes, factory,
                                   extractor, syndrome, pipeline.get(),
                                   out);
        else if (width <= 256)
            handwired::runGroup<4>(exp, first, lanes, factory,
                                   extractor, syndrome, pipeline.get(),
                                   out);
        else
            handwired::runGroup<8>(exp, first, lanes, factory,
                                   extractor, syndrome, pipeline.get(),
                                   out);
    }
    return out;
}

} // namespace qec

#endif // QEC_EXP_HANDWIRED_REFERENCE_H
