/**
 * @file
 * Crash-exact sweep checkpoints: the `qec.ckpt.v1` artifact.
 *
 * A SweepCheckpoint persists everything needed to continue a sweep
 * after a crash with *bit-identical* final results: the full
 * PointResult of every completed grid point, and for the in-flight
 * point each policy's cumulative partial ExperimentResult plus its
 * execution cursors at the last chunk boundary (SessionProgress).
 * Exactness is by construction, not approximation: per-point noise
 * streams are seeded by (plan seed, first shot) alone, chunk
 * boundaries follow the deterministic word-group decomposition, and
 * early-stop decisions depend only on cumulative counters at those
 * boundaries — so a resumed session replays the remaining chunks
 * exactly as the uninterrupted run would have (PR 5's merge/seed
 * contracts; see experiment_session.h).
 *
 * Artifact layout (all integers little-endian):
 *
 *     "qec.ckpt"  8-byte magic
 *     u32         format version (1)
 *     u32         CRC-32 of the payload bytes
 *     u64         payload byte count
 *     payload     versioned record stream (see checkpoint.cpp)
 *
 * The payload opens with a fingerprint of the plan identity — every
 * point's derived seed, shot count and resolved axes, the policy
 * names, and the early-stop rule — so a checkpoint can never be
 * resumed against a different plan (the seed scheme makes the
 * fingerprint content-addressed). save() writes through
 * AtomicFileWriter (temp + fsync + rename): a crash during
 * checkpointing leaves the previous checkpoint, never a torn one.
 * load() verifies magic, version, length and CRC before parsing and
 * rejects anything inconsistent with a Status — a corrupt checkpoint
 * is never partially loaded.
 */

#ifndef QEC_EXP_CHECKPOINT_H
#define QEC_EXP_CHECKPOINT_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "exp/sweep_plan.h"

namespace qec
{

/** One policy's progress at a grid point. */
struct PolicyCheckpoint
{
    SessionProgress progress;
    /** Wall seconds spent on this policy across all incarnations. */
    double seconds = 0.0;
    bool finished = false;
    bool stoppedEarly = false;
    bool truncated = false;
};

/** One grid point's progress: completed, or mid-policy partial. */
struct PointCheckpoint
{
    uint64_t pointIndex = 0;
    /** The point's derived seed, cross-checked on resume. */
    uint64_t seed = 0;
    bool finished = false;
    std::vector<PolicyCheckpoint> policies;
};

class SweepCheckpoint
{
  public:
    /** Artifact schema name, mirrored into sink metadata. */
    static constexpr const char *kSchema = "qec.ckpt.v1";

    /**
     * Identity fingerprint of (plan, expanded points): per-point
     * seeds/shots/axes chained with the policy names and early-stop
     * rule through splitmix64. Two plans that could produce different
     * results have different fingerprints; cosmetic fields (plan
     * name, sink choices) are excluded.
     */
    static uint64_t fingerprintPlan(
        const SweepPlan &plan, const std::vector<SweepPoint> &points);

    uint64_t planFingerprint = 0;
    /** Completed and in-flight points, keyed by point index. */
    std::map<uint64_t, PointCheckpoint> points;

    /** Serialize to the qec.ckpt.v1 byte layout. */
    std::string serialize() const;

    /** Parse + integrity-check a byte buffer (DataLoss on anything
     *  torn, truncated, version-skewed, or malformed). */
    static StatusOr<SweepCheckpoint> deserialize(
        const std::string &bytes);

    /** Crash-safe write: temp file + fsync + atomic rename. */
    Status save(const std::string &path) const;

    /** Read + deserialize `path` (NotFound when absent). */
    static StatusOr<SweepCheckpoint> load(const std::string &path);
};

} // namespace qec

#endif // QEC_EXP_CHECKPOINT_H
