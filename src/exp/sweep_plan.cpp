#include "exp/sweep_plan.h"

#include <cstring>

#include "base/logging.h"

namespace qec
{

namespace
{

inline uint64_t
splitmixStep(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/** Chain one field into the running hash. */
inline uint64_t
chain(uint64_t h, uint64_t field)
{
    return splitmixStep(h ^ field);
}

inline uint64_t
doubleBits(double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

} // namespace

std::string
SweepPolicy::displayName(RemovalProtocol protocol) const
{
    if (!name.empty())
        return name;
    return policyKindName(kind,
                          protocol == RemovalProtocol::Dqlr);
}

// The field order below is part of the seed contract (see header):
// append new physics fields at the end if the model ever grows, and
// never reorder or remove entries.
uint64_t
sweepPointSeed(int distance, int rounds, Basis basis,
               RemovalProtocol protocol, const ErrorModel &em,
               CircuitFamily family)
{
    // Domain tag so seeds can never collide with hand-picked small
    // integers or with other derivation schemes.
    uint64_t h = 0x7165632e73776565ull; // "qec.swee"
    h = chain(h, (uint64_t)distance);
    h = chain(h, (uint64_t)rounds);
    h = chain(h, (uint64_t)basis);
    h = chain(h, (uint64_t)protocol);
    h = chain(h, doubleBits(em.p));
    h = chain(h, em.leakageEnabled ? 1 : 0);
    h = chain(h, doubleBits(em.leakFraction));
    h = chain(h, doubleBits(em.seepFraction));
    h = chain(h, doubleBits(em.pTransport));
    h = chain(h, doubleBits(em.multiLevelErrMult));
    h = chain(h, doubleBits(em.dqlrExciteProb));
    h = chain(h, (uint64_t)em.transport);
    // The family link is conditional by contract (see header):
    // surface points never chain it, so pre-family seeds hold.
    if (family != CircuitFamily::SurfaceMemory)
        h = chain(h, (uint64_t)family);
    return h;
}

Status
SweepPlan::validate() const
{
    if (distances.empty() || ps.empty() || rounds.empty())
        return invalidArgument("sweep plan has an empty axis");
    if (policies.empty())
        return invalidArgument("sweep plan has no policies");
    for (const SweepPoint &point : points()) {
        Status st = RotatedSurfaceCode::validateDistance(
            point.distance);
        if (st.isOk())
            st = validateExperimentConfig(point.config);
        if (!st.isOk())
            return Status(st.code(),
                          "point " + std::to_string(point.index) +
                              " (d=" + std::to_string(point.distance) +
                              "): " + st.message());
    }
    return okStatus();
}

std::vector<SweepPoint>
SweepPlan::points() const
{
    panicIf(distances.empty() || ps.empty() || rounds.empty(),
            "sweep plan has an empty axis");
    panicIf(policies.empty(), "sweep plan has no policies");

    const std::vector<RemovalProtocol> protocol_axis =
        protocols.empty()
            ? std::vector<RemovalProtocol>{base.protocol}
            : protocols;
    const std::vector<DecoderKind> decoder_axis =
        decoders.empty() ? std::vector<DecoderKind>{base.decoderKind}
                         : decoders;
    const std::vector<unsigned> width_axis =
        widths.empty() ? std::vector<unsigned>{base.batchWidth}
                       : widths;

    std::vector<SweepPoint> out;
    out.reserve(ps.size() * protocol_axis.size() *
                decoder_axis.size() * width_axis.size() *
                rounds.size() * distances.size());
    for (double p : ps) {
        for (RemovalProtocol protocol : protocol_axis) {
            for (DecoderKind decoder : decoder_axis) {
                for (unsigned width : width_axis) {
                    for (const SweepRounds &r : rounds) {
                        for (int d : distances) {
                            SweepPoint point;
                            point.index = out.size();
                            point.distance = d;
                            point.p = p;
                            point.rounds = r.resolve(d);
                            point.protocol = protocol;
                            point.decoderKind = decoder;
                            point.batchWidth = width;
                            point.shots = shotsFor
                                ? shotsFor(d, p) : base.shots;

                            ExperimentConfig cfg = base;
                            cfg.rounds = point.rounds;
                            cfg.em.p = p;
                            cfg.protocol = protocol;
                            cfg.decoderKind = decoder;
                            cfg.batchWidth = width;
                            cfg.shots = point.shots;
                            cfg.seed = fixedSeed
                                ? *fixedSeed
                                : sweepPointSeed(d, point.rounds,
                                                 cfg.basis, protocol,
                                                 cfg.em, cfg.family);
                            point.seed = cfg.seed;
                            point.config = cfg;
                            out.push_back(std::move(point));
                        }
                    }
                }
            }
        }
    }
    return out;
}

const char *
protocolName(RemovalProtocol protocol)
{
    return protocol == RemovalProtocol::Dqlr ? "dqlr" : "swap";
}

const char *
decoderKindName(DecoderKind kind)
{
    return kind == DecoderKind::UnionFind ? "union_find" : "mwpm";
}

} // namespace qec
