/**
 * @file
 * Sweep execution: the `qec::sweep` back half.
 *
 * SweepRunner executes a SweepPlan point by point, building each
 * point's MemoryExperiment from cross-point caches (codes per
 * distance, detector models per (d, rounds, basis), decoders per
 * (model, kind, p)) so grids that revisit a lattice or a detector
 * model never rebuild them. Every policy of a point runs through an
 * ExperimentSession (honoring the plan's early-stop rule), and the
 * finished PointResult streams to the attached sinks: a bench_util
 * style table printer, the unified JSON emitter, or a plain
 * collector for benches with bespoke presentation.
 */

#ifndef QEC_EXP_SWEEP_RUNNER_H
#define QEC_EXP_SWEEP_RUNNER_H

#include <cstdio>
#include <string>
#include <vector>

#include "exp/sweep_plan.h"

namespace qec
{

/** Everything produced at one grid point. */
struct PointResult
{
    SweepPoint point;
    /** One result per plan policy, in plan order. */
    std::vector<ExperimentResult> results;
    /** Wall-clock seconds per policy. */
    std::vector<double> seconds;
    std::vector<bool> stoppedEarly;

    double
    shotsPerSec(size_t policy) const
    {
        return seconds[policy] > 0.0
            ? (double)results[policy].shots / seconds[policy]
            : 0.0;
    }
};

/** Aggregate accounting for a finished sweep. */
struct SweepSummary
{
    size_t points = 0;
    uint64_t shotsRun = 0;
    double seconds = 0.0;
    /** Cross-point component-cache accounting. */
    size_t codesBuilt = 0;
    size_t codesReused = 0;
    size_t demsBuilt = 0;
    size_t demsReused = 0;
    size_t decodersBuilt = 0;
    size_t decodersReused = 0;
};

/** Streaming consumer of sweep results. */
class SweepSink
{
  public:
    virtual ~SweepSink() = default;
    virtual void
    beginSweep(const SweepPlan &plan,
               const std::vector<SweepPoint> &points)
    {
        (void)plan;
        (void)points;
    }
    virtual void onPoint(const PointResult &result) = 0;
    virtual void
    endSweep(const SweepSummary &summary)
    {
        (void)summary;
    }
};

/** Buffers every PointResult for bench-specific presentation. */
class CollectSink : public SweepSink
{
  public:
    std::vector<PointResult> points;

    void
    onPoint(const PointResult &result) override
    {
        points.push_back(result);
    }
};

/**
 * bench_util-style table: one row per point, one metric cell per
 * policy, with the varying axes as leading columns and a closing
 * throughput line — the uniform replacement for the hand-rolled
 * printf tables of the figure benches.
 */
class TableSink : public SweepSink
{
  public:
    enum class Metric
    {
        Ler,           ///< lerCell: value or <1/shots bound.
        Accuracy,      ///< Speculation accuracy, percent.
        LrcsPerRound,  ///< Average LRCs per round.
    };

    struct Options
    {
        Metric metric = Metric::Ler;
        /** Print results[gainNum].ler() / results[gainDen].ler() as a
         *  trailing ratio column (both >= 0 enables it). */
        int gainNum = -1;
        int gainDen = -1;
        std::string gainHeader = "gain";
        FILE *out = nullptr;   ///< Defaults to stdout.
    };

    TableSink() = default;
    explicit TableSink(Options options) : options_(options) {}

    void beginSweep(const SweepPlan &plan,
                    const std::vector<SweepPoint> &points) override;
    void onPoint(const PointResult &result) override;
    void endSweep(const SweepSummary &summary) override;

  private:
    FILE *out() const;
    Options options_;
    bool showP_ = false, showRounds_ = false, showProtocol_ = false,
         showDecoder_ = false, showWidth_ = false;
    std::vector<std::string> policyNames_;
};

/**
 * The unified machine-readable sweep artifact (schema
 * "qec.sweep.v1"): per point the resolved axes, derived seed and
 * shot count, and per policy the full counter set — logical errors,
 * LER, the order-independent verdict fingerprint, LRC/speculation
 * rates, decode-pipeline counters, early-stop state and throughput.
 * One emitter for every bench, replacing the bespoke
 * BENCH_decode.json / BENCH_simd.json printf code.
 */
class JsonSink : public SweepSink
{
  public:
    /** Writes to `path`; ok() reports whether the open succeeded. */
    explicit JsonSink(std::string path);
    /** Writes to an already-open stream (not closed on destruction). */
    explicit JsonSink(FILE *out);
    ~JsonSink() override;

    bool
    ok() const
    {
        return out_ != nullptr;
    }

    void beginSweep(const SweepPlan &plan,
                    const std::vector<SweepPoint> &points) override;
    void onPoint(const PointResult &result) override;
    void endSweep(const SweepSummary &summary) override;

  private:
    std::string path_;
    FILE *out_ = nullptr;
    bool owned_ = false;
    bool firstPoint_ = true;
    bool closed_ = false;
};

/** Executes a plan, streaming each point to the attached sinks. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepPlan plan);

    /** Attach a (non-owned) sink; call before run(). */
    void addSink(SweepSink &sink);

    const SweepPlan &
    plan() const
    {
        return plan_;
    }

    /** Run every point; returns the accounting summary. */
    SweepSummary run();

  private:
    SweepPlan plan_;
    std::vector<SweepSink *> sinks_;
};

} // namespace qec

#endif // QEC_EXP_SWEEP_RUNNER_H
