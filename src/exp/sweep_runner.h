/**
 * @file
 * Sweep execution: the `qec::sweep` back half.
 *
 * SweepRunner executes a SweepPlan point by point, building each
 * point's MemoryExperiment from cross-point caches (codes per
 * distance, detector models per (d, rounds, basis), decoders per
 * (model, kind, p)) so grids that revisit a lattice or a detector
 * model never rebuild them. Every policy of a point runs through an
 * ExperimentSession (honoring the plan's early-stop rule), and the
 * finished PointResult streams to the attached sinks: a bench_util
 * style table printer, the unified JSON emitter, or a plain
 * collector for benches with bespoke presentation.
 *
 * Fault tolerance (SweepRunOptions):
 *
 *  - Checkpoint/resume. With CheckpointOptions::path set, the runner
 *    persists a qec.ckpt.v1 artifact (exp/checkpoint.h) at chunk
 *    boundaries — atomically, so a kill at any instant leaves a
 *    loadable checkpoint — and a rerun against the same plan skips
 *    completed points (re-emitting them to the sinks, so the final
 *    artifact is complete), restores the in-flight point's partial at
 *    its exact chunk boundary, and finishes bit-identically to a run
 *    that was never interrupted.
 *  - Recoverable point failures. A point that fails with a retryable
 *    Status (transient I/O, allocation failure) is retried with
 *    bounded backoff; a point that keeps failing is quarantined —
 *    recorded in SweepSummary::errors, not emitted — and the sweep
 *    continues.
 *  - Deadlines. A wall-clock budget stops the sweep cleanly at a
 *    chunk boundary, checkpointing the partial so a later run can
 *    pick up where it stopped.
 */

#ifndef QEC_EXP_SWEEP_RUNNER_H
#define QEC_EXP_SWEEP_RUNNER_H

#include <cstdio>
#include <string>
#include <vector>

#include "base/status.h"
#include "exp/sweep_plan.h"

namespace qec
{

/** Everything produced at one grid point. */
struct PointResult
{
    SweepPoint point;
    /** One result per plan policy, in plan order. */
    std::vector<ExperimentResult> results;
    /** Wall-clock seconds per policy. */
    std::vector<double> seconds;
    std::vector<bool> stoppedEarly;
    /** Policy stopped at a deadline with shots remaining (the result
     *  is a valid, checkpoint-resumable partial). */
    std::vector<bool> truncated;
    /** Wall-clock seconds from the point entering execution to its
     *  completion (spans concurrent points under the scheduler; 0 for
     *  points re-emitted from a checkpoint). */
    double wallSeconds = 0.0;

    double
    shotsPerSec(size_t policy) const
    {
        return seconds[policy] > 0.0
            ? (double)results[policy].shots / seconds[policy]
            : 0.0;
    }
};

/** One quarantined grid point: what failed, and how it failed. */
struct SweepPointError
{
    uint64_t pointIndex = 0;
    int distance = 0;
    double p = 0.0;
    /** Execution attempts spent (1 + retries). */
    int attempts = 0;
    Status status;
};

/** Aggregate accounting for a finished sweep. */
struct SweepSummary
{
    size_t points = 0;
    uint64_t shotsRun = 0;
    double seconds = 0.0;
    /** Cross-point component-cache accounting. */
    size_t codesBuilt = 0;
    size_t codesReused = 0;
    size_t demsBuilt = 0;
    size_t demsReused = 0;
    size_t decodersBuilt = 0;
    size_t decodersReused = 0;

    // ------------------------------------------- fault tolerance
    /**
     * Overall outcome. Non-OK when the sweep could not run at all
     * (plan validation failure, unusable checkpoint) — the sinks are
     * never started in that case — or when every executed point
     * failed. Individual quarantined points do NOT make this non-OK;
     * they are listed in `errors`.
     */
    Status status;
    /** Outcome of the checkpoint load when resume was requested
     *  (OK also covers "no checkpoint yet"). */
    Status resumeStatus;
    /** Last checkpoint-save failure, if any (the sweep continues
     *  without durability rather than dying). */
    Status checkpointStatus;
    /** A checkpoint was loaded and at least one point was skipped
     *  or restored from it. */
    bool resumed = false;
    /** The wall-clock deadline stopped the sweep before the last
     *  point (resumable from the checkpoint). */
    bool truncated = false;
    /** Points skipped as already complete in the checkpoint. */
    size_t pointsResumed = 0;
    /** Points quarantined after exhausting retries (see errors). */
    size_t pointsFailed = 0;
    /** Point execution retries after retryable failures. */
    size_t retries = 0;
    size_t checkpointSaves = 0;
    std::vector<SweepPointError> errors;

    // ----------------------------------------- scheduled execution
    /** The cross-point scheduler executed this sweep. */
    bool scheduled = false;
    /** Worker-pool threads the scheduler dispatched onto. */
    unsigned workersUsed = 0;
    /** Allocation rounds the scheduler ran. */
    uint64_t schedulerRounds = 0;
    /** Session chunks dispatched (committed + discarded). */
    uint64_t chunksDispatched = 0;
    /** Shots granted beyond the fair one-chunk-per-session baseline
     *  by the Wilson-need ranking (adaptive reallocation). */
    uint64_t shotsReallocated = 0;
    /** Speculative shots executed but discarded because the early
     *  stop fired at an earlier committed boundary. */
    uint64_t shotsDiscarded = 0;
    /** Busy worker-seconds / (workers * sweep wall seconds). */
    double poolUtilization = 0.0;
    /** SweepRunOptions::maxTotalShots stopped the sweep with work
     *  remaining (truncated is set too; resumable). */
    bool budgetExhausted = false;
};

/** Streaming consumer of sweep results. */
class SweepSink
{
  public:
    virtual ~SweepSink() = default;
    virtual void
    beginSweep(const SweepPlan &plan,
               const std::vector<SweepPoint> &points)
    {
        (void)plan;
        (void)points;
    }
    virtual void onPoint(const PointResult &result) = 0;
    virtual void
    endSweep(const SweepSummary &summary)
    {
        (void)summary;
    }
};

/** Buffers every PointResult for bench-specific presentation. */
class CollectSink : public SweepSink
{
  public:
    std::vector<PointResult> points;

    void
    onPoint(const PointResult &result) override
    {
        points.push_back(result);
    }
};

/**
 * bench_util-style table: one row per point, one metric cell per
 * policy, with the varying axes as leading columns and a closing
 * throughput line — the uniform replacement for the hand-rolled
 * printf tables of the figure benches.
 */
class TableSink : public SweepSink
{
  public:
    enum class Metric
    {
        Ler,           ///< lerCell: value or <1/shots bound.
        Accuracy,      ///< Speculation accuracy, percent.
        LrcsPerRound,  ///< Average LRCs per round.
    };

    struct Options
    {
        Metric metric = Metric::Ler;
        /** Print results[gainNum].ler() / results[gainDen].ler() as a
         *  trailing ratio column (both >= 0 enables it). */
        int gainNum = -1;
        int gainDen = -1;
        std::string gainHeader = "gain";
        FILE *out = nullptr;   ///< Defaults to stdout.
    };

    TableSink() = default;
    explicit TableSink(Options options) : options_(options) {}

    void beginSweep(const SweepPlan &plan,
                    const std::vector<SweepPoint> &points) override;
    void onPoint(const PointResult &result) override;
    void endSweep(const SweepSummary &summary) override;

  private:
    FILE *out() const;
    Options options_;
    bool showP_ = false, showRounds_ = false, showProtocol_ = false,
         showDecoder_ = false, showWidth_ = false;
    std::vector<std::string> policyNames_;
};

/**
 * The unified machine-readable sweep artifact (schema
 * "qec.sweep.v1"): per point the resolved axes, derived seed and
 * shot count, and per policy the full counter set — logical errors,
 * LER, the order-independent verdict fingerprint, LRC/speculation
 * rates, decode-pipeline counters, early-stop state and throughput.
 * One emitter for every bench, replacing the bespoke
 * BENCH_decode.json / BENCH_simd.json printf code.
 *
 * In path mode the JSON is composed in memory and the file appears
 * atomically (temp + fsync + rename, with a bounded retry on
 * transient failures) in endSweep — a kill mid-sweep leaves the
 * previous artifact or none, never a syntactically-torn one. status()
 * reports the final write outcome. Stream mode (an already-open
 * FILE*, e.g. stdout) writes through unchanged.
 */
class JsonSink : public SweepSink
{
  public:
    /** Writes `path` atomically in endSweep; ok() reports whether
     *  the destination was probed writable. */
    explicit JsonSink(std::string path);
    /** Writes to an already-open stream (not closed on destruction). */
    explicit JsonSink(FILE *out);
    ~JsonSink() override;

    bool
    ok() const
    {
        return out_ != nullptr && status_.isOk();
    }

    /** Outcome of the artifact write (OK until endSweep in path
     *  mode, unless the writability probe already failed). */
    const Status &
    status() const
    {
        return status_;
    }

    void beginSweep(const SweepPlan &plan,
                    const std::vector<SweepPoint> &points) override;
    void onPoint(const PointResult &result) override;
    void endSweep(const SweepSummary &summary) override;

  private:
    std::string path_;
    FILE *out_ = nullptr;
    bool owned_ = false;
    bool firstPoint_ = true;
    bool closed_ = false;
    /** Path mode: open_memstream buffer behind out_. */
    char *memBuf_ = nullptr;
    size_t memLen_ = 0;
    Status status_;
};

/** Checkpoint policy for SweepRunner::run. */
struct CheckpointOptions
{
    /** qec.ckpt.v1 artifact path; empty disables checkpointing. */
    std::string path;
    /** Save every N session chunks (1 = every chunk boundary). */
    uint64_t everyChunks = 1;
    /** Also save when this much wall time passed since the last
     *  save, checked at chunk boundaries (0 = chunk cadence only). */
    double everySeconds = 0.0;
    /** Load an existing checkpoint and resume from it; with this off
     *  an existing file is overwritten as the sweep progresses. */
    bool resume = true;

    bool
    enabled() const
    {
        return !path.empty();
    }
};

/** Fault-tolerance policy for one SweepRunner::run invocation. */
struct SweepRunOptions
{
    CheckpointOptions checkpoint;
    /**
     * Wall-clock budget for the whole sweep, checked at chunk
     * boundaries (0 = none). On expiry the in-flight point is
     * checkpointed and the sweep stops with summary.truncated set;
     * finished points keep their sink rows, the partial point is not
     * emitted (a resumed run emits it when it completes).
     */
    double deadlineSeconds = 0.0;
    /** Execution attempts per point before quarantine (>= 1). */
    int maxPointAttempts = 3;
    /** Backoff before retry k is 2^(k-1) times this (bounded). */
    double retryBackoffSeconds = 0.05;

    // ----------------------------------------- scheduled execution
    /**
     * Execute the plan with the cross-point chunk scheduler
     * (exp/sweep_scheduler.h) instead of the sequential point loop:
     * chunks from many live points dispatch onto one worker pool,
     * with shots flowing to the sessions whose Wilson intervals are
     * widest relative to the precision target. Results are
     * bit-identical to the sequential runner at any worker count
     * (fingerprints, counters, early-stop shots); only wall-clock
     * fields and, when maxTotalShots binds, the budget's distribution
     * across points differ.
     */
    bool schedule = false;
    /** Scheduler worker-pool size (0 = defaultThreadCount()). */
    unsigned workers = 0;
    /**
     * Global shot budget across every point and policy, accounted at
     * chunk boundaries (0 = none; overshoot is at most one chunk).
     * On exhaustion the sweep truncates exactly like a deadline —
     * partials checkpointed, summary.budgetExhausted set — but,
     * unlike a deadline, deterministically: the same budget truncates
     * at the same boundaries at any worker count.
     */
    uint64_t maxTotalShots = 0;
    /**
     * Scheduler admission window: how many points may be live (built,
     * sessions in memory) at once. 0 derives max(8, workers). Wider
     * admits more cross-point parallelism; narrower bounds memory.
     * Does not affect results unless maxTotalShots binds (admission
     * order decides who competes for the remaining budget).
     */
    size_t maxLivePoints = 0;
};

/** Executes a plan, streaming each point to the attached sinks. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepPlan plan);

    /** Attach a (non-owned) sink; call before run(). */
    void addSink(SweepSink &sink);

    const SweepPlan &
    plan() const
    {
        return plan_;
    }

    /** Run every point; returns the accounting summary. */
    SweepSummary run();

    /** As run(), with checkpointing, retry/quarantine, and deadline
     *  behavior per `options` (see SweepRunOptions). */
    SweepSummary run(const SweepRunOptions &options);

  private:
    SweepPlan plan_;
    std::vector<SweepSink *> sinks_;
};

} // namespace qec

#endif // QEC_EXP_SWEEP_RUNNER_H
