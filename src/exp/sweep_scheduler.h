/**
 * @file
 * Cross-point chunk scheduler: parallel sweep execution with adaptive
 * Wilson-driven shot allocation.
 *
 * The sequential SweepRunner drives one point to completion before
 * touching the next, so a point's tail (few word-groups left, early
 * stop pending) strands most of the worker pool. The SweepScheduler
 * instead keeps a window of points *live* at once and feeds ONE shared
 * WorkerPool (base/parallel.h) from all of their sessions: each
 * allocation round plans the next chunks of every live session, splits
 * them into word-group units, dispatches the whole unit bag to the
 * pool, and then commits the finished chunks session by session.
 *
 * Adaptive allocation: beyond a fair one-chunk-per-live-session
 * baseline, extra chunks of the round go to the sessions whose Wilson
 * confidence intervals are widest relative to the plan's precision
 * target — shots flow to the points that are furthest from stopping,
 * under the global SweepRunOptions::maxTotalShots budget.
 *
 * Determinism contract (the reason this file is small and the session
 * owns the execution grain): results are bit-identical to the
 * sequential runner at ANY worker count —
 *
 *  - chunk boundaries are the session's own (planChunkAt /
 *    defaultChunkShotsAt reproduce exactly the sizes runChunk would
 *    have used, including the shrink near a shot cap);
 *  - chunk merges are unit-partial merges, commutative by
 *    ExperimentResult::merge's construction;
 *  - early stop is evaluated at commitChunk time on cumulative
 *    counters, in fixed session order — chunks planned past a
 *    boundary where the rule fires are executed speculatively and
 *    *discarded*, never committed, so every session stops at exactly
 *    the shot the sequential runner stops at;
 *  - allocation decisions read only committed state at round
 *    barriers, never in-flight partials or wall-clock, so the round
 *    structure itself is worker-count-independent (the wall-clock
 *    deadline is the one documented exception, exactly as it is for
 *    the sequential runner).
 *
 * Fault tolerance mirrors the sequential runner: qec.ckpt.v1
 * checkpoints written at the chunk cadence now carry the working
 * records of EVERY live point (the format always supported a set); a
 * faulting point is retried with bounded backoff — its uncommitted
 * round chunks discarded, committed progress kept — while the other
 * points keep running, and quarantined after maxPointAttempts.
 */

#ifndef QEC_EXP_SWEEP_SCHEDULER_H
#define QEC_EXP_SWEEP_SCHEDULER_H

#include <vector>

#include "exp/sweep_runner.h"

namespace qec
{

/**
 * Executes a SweepPlan by interleaving chunks of many live points on
 * the shared worker pool. Construct with the plan and the sinks to
 * stream to (points are emitted in plan order; out-of-order
 * completions buffer until their turn), then call run(). SweepRunner
 * routes here when SweepRunOptions::schedule is set — that is the
 * intended entry point; the plan reference must outlive the scheduler.
 */
class SweepScheduler
{
  public:
    SweepScheduler(const SweepPlan &plan,
                   std::vector<SweepSink *> sinks);

    /** Run the whole plan; same summary semantics as
     *  SweepRunner::run(options), plus the scheduler stats block. */
    SweepSummary run(const SweepRunOptions &options);

  private:
    const SweepPlan &plan_;
    std::vector<SweepSink *> sinks_;
};

} // namespace qec

#endif // QEC_EXP_SWEEP_SCHEDULER_H
