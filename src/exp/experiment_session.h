/**
 * @file
 * Streaming, resumable execution of one experiment point.
 *
 * An ExperimentSession runs the shots of one (experiment, policy)
 * pair in caller-sized chunks instead of one blocking call. Each
 * runChunk() returns a mergeable partial ExperimentResult (see
 * ExperimentResult::merge), and the accumulated result is available
 * at any time — so sweep orchestration can interleave points, stream
 * rows to sinks, and stop early once a target precision is reached.
 *
 * Bit-identity guarantee: on the batched engine, chunk boundaries are
 * aligned to the word-group decomposition of the full run
 * (batchGroupSpans), and every group's noise streams are seeded by
 * (config.seed, first shot) alone — so a chunked session is
 * bit-identical (equal verdict fingerprint, counters, and LPR sums)
 * to a single MemoryExperiment::runBatched call at every width, for
 * any sequence of chunk sizes. On the scalar path (batchWidth <= 1)
 * shots are seeded individually (Rng::forShot), so any chunking is
 * bit-identical there too.
 */

#ifndef QEC_EXP_EXPERIMENT_SESSION_H
#define QEC_EXP_EXPERIMENT_SESSION_H

#include <cstdint>
#include <memory>
#include <string>

#include "exp/memory_experiment.h"

namespace qec
{

/**
 * Early-stop rule evaluated between chunks on the accumulated result.
 * Stopping depends only on the cumulative counters at deterministic
 * chunk boundaries, so the same plan always stops at the same shot
 * count, at any thread count.
 */
struct EarlyStopRule
{
    /**
     * Stop once the Wilson score interval for the logical error rate
     * is relatively tight: half-width / center <= this value
     * (e.g. 0.1 for +-10%). 0 disables precision-based stopping.
     * Never fires before at least `minErrors` logical errors have
     * been observed (a zero-error LER has no meaningful interval).
     */
    double targetRelPrecision = 0.0;
    /** Normal quantile of the Wilson interval (1.96 ~ 95%). */
    double z = 1.96;
    /** Minimum observed logical errors before precision can stop. */
    uint64_t minErrors = 8;
    /** Hard shot cap (0 = config.shots is the only cap). */
    uint64_t maxShots = 0;
    /**
     * Shots between rule evaluations in runToCompletion (rounded up
     * to word-group boundaries). 0 derives a deterministic default
     * from the plan: max(4 * width, shots / 64).
     */
    uint64_t checkEvery = 0;

    bool
    enabled() const
    {
        return targetRelPrecision > 0.0 || maxShots > 0;
    }
};

/** Wilson-interval relative half-width (half-width / center) for k
 *  errors in n shots at normal quantile z; >1e300 when undefined. */
double wilsonRelHalfWidth(uint64_t k, uint64_t n, double z);

/** Construction options for ExperimentSession. */
struct SessionOptions
{
    EarlyStopRule earlyStop;
    /** Run the bit-packed batch engine even when
     *  config.batchWidth <= 1 (MemoryExperiment::runBatched). */
    bool forceBatched = false;
};

class ExperimentSession
{
  public:
    /** Session over one policy kind (every_round follows the
     *  protocol, as MemoryExperiment::run(PolicyKind) does). */
    ExperimentSession(const MemoryExperiment &exp, PolicyKind kind,
                      SessionOptions options = SessionOptions());
    ExperimentSession(const MemoryExperiment &exp,
                      PolicyFactory factory, std::string name,
                      SessionOptions options = SessionOptions());
    ~ExperimentSession();
    ExperimentSession(ExperimentSession &&) noexcept;
    ExperimentSession &operator=(ExperimentSession &&) noexcept;

    /**
     * Run up to `max_shots` more shots and return that chunk's partial
     * result (also merged into result()). On the batched engine the
     * chunk is rounded up to the next word-group boundary — the unit
     * of execution — so the shots actually run (`partial.shots`) may
     * exceed the request; a zero request still runs one group. Returns
     * an empty partial once the session is done. Evaluates the
     * early-stop rule on the accumulated result before returning.
     */
    ExperimentResult runChunk(uint64_t max_shots);

    /** Run chunks until done() (all shots, or early stop). */
    const ExperimentResult &runToCompletion();

    /** All planned shots executed, or the early-stop rule fired. */
    bool done() const;
    /** The early-stop rule ended the session before config.shots. */
    bool stoppedEarly() const;
    uint64_t shotsRun() const;
    /** config.shots, capped by EarlyStopRule::maxShots if set. */
    uint64_t shotsPlanned() const;
    /** Accumulated result over every chunk so far. */
    const ExperimentResult &result() const;

  private:
    struct Impl;

    ExperimentResult newPartial() const;
    ExperimentResult runScalarChunk(uint64_t n);
    ExperimentResult runBatchedChunk(uint64_t n);
    void evaluateStop();
    uint64_t defaultChunk() const;

    std::unique_ptr<Impl> impl_;
};

} // namespace qec

#endif // QEC_EXP_EXPERIMENT_SESSION_H
