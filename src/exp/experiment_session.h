/**
 * @file
 * Streaming, resumable execution of one experiment point.
 *
 * An ExperimentSession runs the shots of one (experiment, policy)
 * pair in caller-sized chunks instead of one blocking call. Each
 * runChunk() returns a mergeable partial ExperimentResult (see
 * ExperimentResult::merge), and the accumulated result is available
 * at any time — so sweep orchestration can interleave points, stream
 * rows to sinks, and stop early once a target precision is reached.
 *
 * Bit-identity guarantee: on the batched engine, chunk boundaries are
 * aligned to the word-group decomposition of the full run
 * (batchGroupSpans), and every group's noise streams are seeded by
 * (config.seed, first shot) alone — so a chunked session is
 * bit-identical (equal verdict fingerprint, counters, and LPR sums)
 * to a single MemoryExperiment::runBatched call at every width, for
 * any sequence of chunk sizes. On the scalar path (batchWidth <= 1)
 * shots are seeded individually (Rng::forShot), so any chunking is
 * bit-identical there too.
 */

#ifndef QEC_EXP_EXPERIMENT_SESSION_H
#define QEC_EXP_EXPERIMENT_SESSION_H

#include <cstdint>
#include <memory>
#include <string>

#include "exp/memory_experiment.h"

namespace qec
{

/**
 * Early-stop rule evaluated between chunks on the accumulated result.
 * Stopping depends only on the cumulative counters at deterministic
 * chunk boundaries, so the same plan always stops at the same shot
 * count, at any thread count.
 */
struct EarlyStopRule
{
    /**
     * Stop once the Wilson score interval for the logical error rate
     * is relatively tight: half-width / center <= this value
     * (e.g. 0.1 for +-10%). 0 disables precision-based stopping.
     * Never fires before at least `minErrors` logical errors have
     * been observed (a zero-error LER has no meaningful interval).
     */
    double targetRelPrecision = 0.0;
    /** Normal quantile of the Wilson interval (1.96 ~ 95%). */
    double z = 1.96;
    /** Minimum observed logical errors before precision can stop. */
    uint64_t minErrors = 8;
    /** Hard shot cap (0 = config.shots is the only cap). */
    uint64_t maxShots = 0;
    /**
     * Shots between rule evaluations in runToCompletion (rounded up
     * to word-group boundaries). 0 derives a deterministic default
     * from the plan: max(4 * width, shots / 64).
     */
    uint64_t checkEvery = 0;

    bool
    enabled() const
    {
        return targetRelPrecision > 0.0 || maxShots > 0;
    }
};

/** Wilson-interval relative half-width (half-width / center) for k
 *  errors in n shots at normal quantile z; >1e300 when undefined. */
double wilsonRelHalfWidth(uint64_t k, uint64_t n, double z);

/**
 * One planned, not-yet-committed chunk: the half-open range of
 * execution units [beginUnit, endUnit) a chunk covers, aligned exactly
 * as runChunk would align it. A unit is one word-group span on the
 * batched path and one shot on the scalar path — the grain at which a
 * scheduler may execute a session's work concurrently (see
 * ExperimentSession::runPlannedUnit / commitChunk).
 */
struct SessionChunkPlan
{
    uint64_t beginUnit = 0;
    uint64_t endUnit = 0;
    /** Shots the units cover (the chunk's partial.shots). */
    uint64_t shots = 0;

    bool
    empty() const
    {
        return beginUnit >= endUnit;
    }

    uint64_t
    units() const
    {
        return endUnit - beginUnit;
    }
};

/** Construction options for ExperimentSession. */
struct SessionOptions
{
    EarlyStopRule earlyStop;
    /** Run the bit-packed batch engine even when
     *  config.batchWidth <= 1 (MemoryExperiment::runBatched). */
    bool forceBatched = false;
    /**
     * Wall-clock budget for runToCompletion, checked between chunks
     * (0 = none). When it expires the session stops cleanly at the
     * chunk boundary and reports truncated(); the accumulated result
     * is a valid partial that a later session can resume from via
     * progress()/restore(). Truncation is wall-clock-dependent and so
     * never bit-reproducible; the *resume* contract is — a resumed
     * session replays the remaining chunks exactly.
     */
    double deadlineSeconds = 0.0;
};

/**
 * Everything needed to continue a session in another process: the
 * accumulated result plus the execution cursors at a chunk boundary.
 * Captured by progress(), persisted in qec.ckpt.v1 checkpoints
 * (exp/checkpoint.h), and reinstated with restore() — after which the
 * session runs the remaining chunks bit-identically to a session that
 * was never interrupted (group seeds depend only on (seed, first
 * shot), and early-stop decisions only on cumulative counters at
 * deterministic chunk boundaries).
 */
struct SessionProgress
{
    ExperimentResult total;
    /** Word-groups already executed (batched path cursor). */
    uint64_t nextSpan = 0;
    /** Shots already executed (scalar path cursor). */
    uint64_t scalarNext = 0;
    /** The early-stop rule had already ended the session. */
    bool stopped = false;
};

class ExperimentSession
{
  public:
    /** Session over one policy kind (every_round follows the
     *  protocol, as MemoryExperiment::run(PolicyKind) does). */
    ExperimentSession(const MemoryExperiment &exp, PolicyKind kind,
                      SessionOptions options = SessionOptions());
    ExperimentSession(const MemoryExperiment &exp,
                      PolicyFactory factory, std::string name,
                      SessionOptions options = SessionOptions());
    ~ExperimentSession();
    ExperimentSession(ExperimentSession &&) noexcept;
    ExperimentSession &operator=(ExperimentSession &&) noexcept;

    /**
     * Run up to `max_shots` more shots and return that chunk's partial
     * result (also merged into result()). On the batched engine the
     * chunk is rounded up to the next word-group boundary — the unit
     * of execution — so the shots actually run (`partial.shots`) may
     * exceed the request; a zero request still runs one group. Returns
     * an empty partial once the session is done. Evaluates the
     * early-stop rule on the accumulated result before returning.
     */
    ExperimentResult runChunk(uint64_t max_shots);

    /** Run chunks until done(), the early stop, or the deadline. */
    const ExperimentResult &runToCompletion();

    /** All planned shots executed, or the early-stop rule fired. */
    bool done() const;
    /** The early-stop rule ended the session before config.shots. */
    bool stoppedEarly() const;
    /** runToCompletion stopped at the wall-clock deadline with the
     *  session unfinished (resumable via progress()). */
    bool truncated() const;
    uint64_t shotsRun() const;
    /** config.shots, capped by EarlyStopRule::maxShots if set. */
    uint64_t shotsPlanned() const;
    /** Accumulated result over every chunk so far. */
    const ExperimentResult &result() const;

    /** Resumable snapshot at the current chunk boundary. */
    SessionProgress progress() const;

    /**
     * Reinstate a progress snapshot into a freshly-constructed
     * session of the same (experiment, policy). Rejects snapshots
     * whose cursors are inconsistent with this session's word-group
     * decomposition (or shot count) — the defense against resuming a
     * checkpoint against the wrong plan. FailedPrecondition if this
     * session has already run chunks.
     */
    Status restore(const SessionProgress &progress);

    /**
     * The chunk size runToCompletion uses between early-stop
     * evaluations — deterministic for a given (plan, rule), which
     * makes externally-driven chunk loops (SweepRunner checkpointing)
     * hit the same boundaries as an uninterrupted runToCompletion.
     * ~0 when no early-stop rule is active (one maximal chunk).
     */
    uint64_t defaultChunkShots() const;

    /** Total word-group chunks available on the batched path (0 on
     *  the scalar path); progress().nextSpan ranges over [0, this]. */
    uint64_t totalSpans() const;

    // ------------------------------------------ scheduler interface
    //
    // A cross-point scheduler (exp/sweep_scheduler.h) splits chunks
    // into units, executes the units of *many* sessions concurrently
    // on one worker pool, and commits each chunk at a barrier — in the
    // session's own chunk order, so the committed sequence of chunk
    // boundaries (and therefore every early-stop decision) is exactly
    // the sequence runChunk/runToCompletion would have produced.

    /** Execution units in the whole session: word-group spans on the
     *  batched path, shots on the scalar path. */
    uint64_t totalUnits() const;
    /** Cursor of the next unexecuted unit. */
    uint64_t nextUnit() const;

    /**
     * Plan the chunk that a runChunk(max_shots) issued at cursor
     * `begin_unit` would execute: units accumulated until their shots
     * reach max(max_shots, 1), rounded up to unit boundaries. Pure —
     * does not advance the session — so a scheduler can plan several
     * consecutive chunks ahead (chain begin_unit = previous endUnit).
     */
    SessionChunkPlan planChunkAt(uint64_t begin_unit,
                                 uint64_t max_shots) const;

    /**
     * defaultChunkShots() as a pure function of the cumulative shot
     * count, for planning chunks ahead of commit: the default shrinks
     * near a maxShots cap, and a chunk planned k chunks ahead must be
     * sized as if the preceding k had already been committed.
     */
    uint64_t defaultChunkShotsAt(uint64_t shots_done) const;

    /** Grow the per-worker decode contexts to at least `n` slots, so
     *  units may run with worker indices in [0, n). Must not be
     *  called while units are in flight. */
    void ensureWorkerSlots(unsigned n);

    /**
     * Execute one unit on worker slot `slot` and return its partial
     * result (decode-pipeline counters attributed per unit, so a
     * chunk's partial is the merge of its units' partials no matter
     * which slots ran them). Thread-safe for concurrent calls with
     * distinct (unit, slot) pairs; does not advance the session.
     */
    ExperimentResult runPlannedUnit(uint64_t unit, unsigned slot);

    /**
     * Commit a fully-executed chunk: `merged` must be the merge of
     * runPlannedUnit partials for exactly plan's units. Advances the
     * cursor, folds `merged` into result(), and evaluates the
     * early-stop rule — equivalent to runChunk having executed the
     * chunk itself. Chunks must be committed in order from the
     * current cursor; a chunk planned past a boundary where the rule
     * fired must be discarded, not committed (the scheduler's
     * speculative-execution contract).
     */
    void commitChunk(const SessionChunkPlan &plan,
                     const ExperimentResult &merged);

  private:
    struct Impl;

    ExperimentResult newPartial() const;
    void evaluateStop();

    std::unique_ptr<Impl> impl_;
};

} // namespace qec

#endif // QEC_EXP_EXPERIMENT_SESSION_H
