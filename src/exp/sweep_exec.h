/**
 * @file
 * Execution plumbing shared by the sequential SweepRunner loop and the
 * cross-point SweepScheduler (exp/sweep_scheduler.h): the cross-point
 * component caches and the checkpoint load/verify preamble. Both
 * executors must build identical components in identical order and
 * make identical resume decisions, so the logic lives here once.
 */

#ifndef QEC_EXP_SWEEP_EXEC_H
#define QEC_EXP_SWEEP_EXEC_H

#include <map>
#include <memory>
#include <tuple>

#include "exp/checkpoint.h"
#include "exp/sweep_runner.h"

namespace qec
{

/**
 * Cross-point component caches: the expensive builds (lattice,
 * detector model, decoder structure) are keyed by exactly what they
 * depend on, so a grid that revisits them pays once. Builds happen on
 * the calling thread in request order — both executors request points
 * in plan-index order, keeping the built/reused accounting identical.
 */
class SweepBuildCache
{
  public:
    /** The shared components one point's MemoryExperiment needs. */
    struct Components
    {
        const RotatedSurfaceCode *code = nullptr;
        /** Compiled circuit program (always set; see circuit_ir.h). */
        std::shared_ptr<const CircuitProgram> program;
        std::shared_ptr<const DetectorModel> dem;
        std::shared_ptr<const Decoder> decoder;
    };

    /**
     * Build or reuse the point's components, counting builds/reuses
     * into `summary`. dem/decoder stay null when the point does not
     * decode. Freshly compiled programs run the full IrAnalyzer pass
     * stack once (cache hits reuse the verdict along with the
     * program); an Error-severity program comes back as a non-OK
     * Status, never a panic. May throw std::bad_alloc (callers map it
     * to a retryable Status). The returned code pointer stays valid
     * for the cache's lifetime.
     */
    [[nodiscard]] StatusOr<Components>
    build(const SweepPoint &point,
          const DecoderOptions &decoder_options,
          SweepSummary &summary);

  private:
    std::map<int, std::unique_ptr<RotatedSurfaceCode>> codes_;
    /** (family, distance, rounds, basis, protocol) */
    using ProgramKey = std::tuple<int, int, int, int, int>;
    std::map<ProgramKey, std::shared_ptr<const CircuitProgram>>
        programs_;
    /** (family, distance, rounds, basis) */
    using DemKey = std::tuple<int, int, int, int>;
    std::map<DemKey, std::shared_ptr<const DetectorModel>> dems_;
    /** (family, distance, rounds, basis, decoder kind, bits(p)) */
    using DecoderKey = std::tuple<int, int, int, int, int, uint64_t>;
    std::map<DecoderKey, std::shared_ptr<const Decoder>> decoders_;
};

/**
 * The checkpoint preamble both executors share: when resume is
 * requested, load `options.path`, verify its plan fingerprint, and
 * adopt it into `ckpt` (whose planFingerprint must be preset).
 * Returns false when the sweep must not proceed — fingerprint
 * mismatch, or a corrupt/version-skewed file that is evidence of real
 * progress — with summary.status / summary.resumeStatus set.
 */
bool prepareSweepCheckpoint(const CheckpointOptions &options,
                            SweepCheckpoint &ckpt,
                            SweepSummary &summary);

} // namespace qec

#endif // QEC_EXP_SWEEP_EXEC_H
