/**
 * @file
 * Internal per-worker state shared by the experiment drivers
 * (MemoryExperiment's batched group runner and ExperimentSession's
 * chunked driver). Not part of the public API: nothing here is
 * stable, and only the exp/ sources should include it.
 */

#ifndef QEC_EXP_EXPERIMENT_INTERNAL_H
#define QEC_EXP_EXPERIMENT_INTERNAL_H

#include <cstdint>
#include <memory>
#include <vector>

#include "decoder/batch_decoder.h"
#include "decoder/sparse_syndrome.h"

namespace qec
{

/** Per-shot / per-word-group counters merged under a mutex after each
 *  work item. */
struct ExperimentShotStats
{
    uint64_t logicalErrors = 0;
    uint64_t verdictHash = 0;
    uint64_t tp = 0, fp = 0, tn = 0, fn = 0;
    uint64_t lrcsScheduled = 0;
    std::vector<double> lprData;
    std::vector<double> lprParity;
};

/**
 * One worker thread's decode pipeline: the extractor's bit-plane
 * scratch, the flat sparse-syndrome buffers, and the BatchDecoder
 * (workspace + dedup cache) all persist across that worker's
 * word-groups — and, in a session, across chunks — so steady-state
 * decoding allocates nothing.
 */
struct ExperimentDecodeContext
{
    SparseSyndromeExtractor extractor;
    BatchSyndrome syndrome;
    std::unique_ptr<BatchDecoder> pipeline;
};

} // namespace qec

#endif // QEC_EXP_EXPERIMENT_INTERNAL_H
