/**
 * @file
 * Post-processing leakage rejection, the prior-work category the paper
 * contrasts ERASER against (Section 7.1): flag shots whose syndrome
 * history betrays leakage (a parity check firing persistently) and
 * discard them. Usable for memory experiments only — a fault-tolerant
 * computation cannot throw trials away — which is exactly the paper's
 * argument for real-time suppression.
 */

#ifndef QEC_EXP_POSTSELECTION_H
#define QEC_EXP_POSTSELECTION_H

#include <cstdint>

#include "exp/memory_experiment.h"

namespace qec
{

/** Detector used to flag leakage-suspect shots offline. */
struct PostSelectOptions
{
    /** Sliding window length (rounds). */
    int window = 4;
    /** A stabilizer with at least this many detection events inside
     *  one window marks the shot as leakage-suspect. */
    int eventThreshold = 3;
};

/** Outcome of a post-selected memory experiment. */
struct PostSelectResult
{
    uint64_t shots = 0;
    uint64_t kept = 0;
    uint64_t logicalErrorsAll = 0;
    uint64_t logicalErrorsKept = 0;

    double keptFraction() const
    {
        return shots ? (double)kept / shots : 0.0;
    }
    double lerAll() const
    {
        return shots ? (double)logicalErrorsAll / shots : 0.0;
    }
    double lerKept() const
    {
        return kept ? (double)logicalErrorsKept / kept : 0.0;
    }
};

/**
 * Run a No-LRC memory experiment and post-select on the syndrome
 * history. Uses the experiment's error model / decoder configuration;
 * the policy is fixed to No-LRC (post-processing replaces, rather than
 * complements, active removal in the prior work).
 *
 * With config.batchWidth > 1 the study runs on the bit-packed batch
 * engine (widths up to 512 via the SIMD multi-word planes): the
 * suspicion scan operates word-parallel on detection-event words
 * (per-lane window counters touched only on set bits) and the decode
 * step goes through the BatchDecoder pipeline (sparse syndromes,
 * zero-defect fast path, dedup cache). Statistically equivalent to
 * the scalar path.
 */
PostSelectResult runPostSelectedExperiment(
    const RotatedSurfaceCode &code, const ExperimentConfig &config,
    const PostSelectOptions &options = {});

/**
 * The batched implementation, regardless of config.batchWidth (group
 * width = max(batchWidth, 1)). At width 1 the batch engine delegates
 * to the scalar simulator shot for shot, which the differential tests
 * use to pin the batched suspicion scan and decode pipeline exactly
 * against the scalar path.
 */
PostSelectResult runPostSelectedExperimentBatched(
    const RotatedSurfaceCode &code, const ExperimentConfig &config,
    const PostSelectOptions &options = {});

} // namespace qec

#endif // QEC_EXP_POSTSELECTION_H
