#include "exp/sweep_runner.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <tuple>

#include "base/simd_word.h"
#include "code/builder.h"

namespace qec
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

uint64_t
doubleKeyBits(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

std::string
metricCell(TableSink::Metric metric, const ExperimentResult &r)
{
    char buf[48];
    switch (metric) {
    case TableSink::Metric::Ler:
        if (r.logicalErrors == 0)
            std::snprintf(buf, sizeof(buf), "<%.1e",
                          r.shots ? 1.0 / (double)r.shots : 0.0);
        else
            std::snprintf(buf, sizeof(buf), "%.3e", r.ler());
        break;
    case TableSink::Metric::Accuracy:
        std::snprintf(buf, sizeof(buf), "%.1f%%",
                      r.speculationAccuracy() * 100.0);
        break;
    case TableSink::Metric::LrcsPerRound:
        std::snprintf(buf, sizeof(buf), "%.3f", r.avgLrcsPerRound());
        break;
    }
    return buf;
}

} // namespace

// ------------------------------------------------------------ TableSink

FILE *
TableSink::out() const
{
    return options_.out ? options_.out : stdout;
}

void
TableSink::beginSweep(const SweepPlan &plan,
                      const std::vector<SweepPoint> &points)
{
    showP_ = plan.ps.size() > 1;
    showRounds_ = plan.rounds.size() > 1;
    showProtocol_ = plan.protocols.size() > 1;
    showDecoder_ = plan.decoders.size() > 1;
    showWidth_ = plan.widths.size() > 1;
    (void)points;

    const RemovalProtocol proto =
        plan.protocols.empty() ? plan.base.protocol
                               : plan.protocols.front();
    policyNames_.clear();
    for (const SweepPolicy &policy : plan.policies)
        policyNames_.push_back(policy.displayName(proto));

    std::fprintf(out(), "%4s", "d");
    if (showP_)
        std::fprintf(out(), " %8s", "p");
    if (showRounds_)
        std::fprintf(out(), " %7s", "rounds");
    if (showProtocol_)
        std::fprintf(out(), " %5s", "proto");
    if (showDecoder_)
        std::fprintf(out(), " %10s", "decoder");
    if (showWidth_)
        std::fprintf(out(), " %6s", "width");
    std::fprintf(out(), " %9s", "shots");
    for (const std::string &name : policyNames_)
        std::fprintf(out(), " %12s", name.c_str());
    if (options_.gainNum >= 0 && options_.gainDen >= 0)
        std::fprintf(out(), " %14s", options_.gainHeader.c_str());
    std::fprintf(out(), "\n");
}

void
TableSink::onPoint(const PointResult &pr)
{
    std::fprintf(out(), "%4d", pr.point.distance);
    if (showP_)
        std::fprintf(out(), " %8.0e", pr.point.p);
    if (showRounds_)
        std::fprintf(out(), " %7d", pr.point.rounds);
    if (showProtocol_)
        std::fprintf(out(), " %5s", protocolName(pr.point.protocol));
    if (showDecoder_)
        std::fprintf(out(), " %10s",
                     decoderKindName(pr.point.decoderKind));
    if (showWidth_)
        std::fprintf(out(), " %6u", pr.point.batchWidth);
    // Shots actually run, not planned: with early stopping, policies
    // can finish at different counts (the per-policy exact numbers
    // are in the JSON artifact); report the largest so the column
    // never overstates a cell's sample size by more than its own
    // early stop did.
    uint64_t shots_run = 0;
    for (const ExperimentResult &r : pr.results)
        shots_run = std::max(shots_run, r.shots);
    std::fprintf(out(), " %9llu", (unsigned long long)shots_run);
    for (const ExperimentResult &r : pr.results)
        std::fprintf(out(), " %12s",
                     metricCell(options_.metric, r).c_str());
    if (options_.gainNum >= 0 && options_.gainDen >= 0) {
        const ExperimentResult &num = pr.results[options_.gainNum];
        const ExperimentResult &den = pr.results[options_.gainDen];
        if (num.logicalErrors == 0 || den.logicalErrors == 0)
            std::fprintf(out(), " %14s", "-");
        else
            std::fprintf(out(), " %13.2fx", num.ler() / den.ler());
    }
    std::fprintf(out(), "\n");
}

void
TableSink::endSweep(const SweepSummary &summary)
{
    std::fprintf(
        out(),
        "[sweep] %zu points, %llu shots in %.2fs (%.0f shots/s); "
        "reuse: codes %zu/%zu, dems %zu/%zu, decoders %zu/%zu\n",
        summary.points, (unsigned long long)summary.shotsRun,
        summary.seconds,
        (double)summary.shotsRun /
            (summary.seconds > 0.0 ? summary.seconds : 1.0),
        summary.codesReused, summary.codesBuilt + summary.codesReused,
        summary.demsReused, summary.demsBuilt + summary.demsReused,
        summary.decodersReused,
        summary.decodersBuilt + summary.decodersReused);
}

// ------------------------------------------------------------- JsonSink

JsonSink::JsonSink(std::string path) : path_(std::move(path))
{
    out_ = std::fopen(path_.c_str(), "w");
    owned_ = true;
    if (!out_)
        std::fprintf(stderr, "JsonSink: cannot write %s\n",
                     path_.c_str());
}

JsonSink::JsonSink(FILE *out) : out_(out), owned_(false) {}

JsonSink::~JsonSink()
{
    if (out_ && owned_)
        std::fclose(out_);
}

void
JsonSink::beginSweep(const SweepPlan &plan,
                     const std::vector<SweepPoint> &points)
{
    if (!out_)
        return;
    std::fprintf(out_,
                 "{\n"
                 "  \"schema\": \"qec.sweep.v1\",\n"
                 "  \"sweep\": \"%s\",\n"
                 "  \"engine_backend\": \"%s\",\n"
                 "  \"recommended_width\": %d,\n"
                 "  \"early_stop\": %s,\n"
                 "  \"planned_points\": %zu,\n"
                 "  \"points\": [",
                 plan.name.c_str(), simdBackendName(),
                 recommendedBatchWidth(),
                 plan.earlyStop.enabled() ? "true" : "false",
                 points.size());
    firstPoint_ = true;
}

void
JsonSink::onPoint(const PointResult &pr)
{
    if (!out_)
        return;
    std::fprintf(
        out_,
        "%s\n    {\"index\": %zu, \"d\": %d, \"p\": %.6g, "
        "\"rounds\": %d, \"protocol\": \"%s\", \"decoder\": \"%s\", "
        "\"width\": %u, \"shots\": %llu, \"seed\": %llu,\n"
        "     \"results\": [",
        firstPoint_ ? "" : ",", pr.point.index, pr.point.distance,
        pr.point.p, pr.point.rounds, protocolName(pr.point.protocol),
        decoderKindName(pr.point.decoderKind), pr.point.batchWidth,
        (unsigned long long)pr.point.shots,
        (unsigned long long)pr.point.seed);
    firstPoint_ = false;
    for (size_t i = 0; i < pr.results.size(); ++i) {
        const ExperimentResult &r = pr.results[i];
        std::fprintf(
            out_,
            "%s\n      {\"policy\": \"%s\", \"shots\": %llu, "
            "\"logical_errors\": %llu, \"ler\": %.8g, "
            "\"fingerprint\": \"0x%016llx\", "
            "\"lrcs_per_round\": %.6g, \"accuracy\": %.6g, "
            "\"fpr\": %.6g, \"fnr\": %.6g, "
            "\"decoded_shots\": %llu, \"zero_defect_shots\": %llu, "
            "\"cache_hits\": %llu, \"stopped_early\": %s, "
            "\"seconds\": %.6g, \"shots_per_s\": %.1f}",
            i == 0 ? "" : ",", r.policy.c_str(),
            (unsigned long long)r.shots,
            (unsigned long long)r.logicalErrors, r.ler(),
            (unsigned long long)r.verdictFingerprint,
            r.avgLrcsPerRound(), r.speculationAccuracy(),
            r.falsePositiveRate(), r.falseNegativeRate(),
            (unsigned long long)r.decodedShots,
            (unsigned long long)r.zeroDefectShots,
            (unsigned long long)r.syndromeCacheHits,
            pr.stoppedEarly[i] ? "true" : "false", pr.seconds[i],
            pr.shotsPerSec(i));
    }
    std::fprintf(out_, "]}");
}

void
JsonSink::endSweep(const SweepSummary &summary)
{
    if (!out_ || closed_)
        return;
    std::fprintf(
        out_,
        "\n  ],\n"
        "  \"summary\": {\"points\": %zu, \"shots\": %llu, "
        "\"seconds\": %.3f, \"codes_built\": %zu, "
        "\"codes_reused\": %zu, \"dems_built\": %zu, "
        "\"dems_reused\": %zu, \"decoders_built\": %zu, "
        "\"decoders_reused\": %zu}\n}\n",
        summary.points, (unsigned long long)summary.shotsRun,
        summary.seconds, summary.codesBuilt, summary.codesReused,
        summary.demsBuilt, summary.demsReused, summary.decodersBuilt,
        summary.decodersReused);
    std::fflush(out_);
    closed_ = true;
}

// ---------------------------------------------------------- SweepRunner

SweepRunner::SweepRunner(SweepPlan plan) : plan_(std::move(plan)) {}

void
SweepRunner::addSink(SweepSink &sink)
{
    sinks_.push_back(&sink);
}

SweepSummary
SweepRunner::run()
{
    const std::vector<SweepPoint> points = plan_.points();
    SweepSummary summary;
    for (SweepSink *sink : sinks_)
        sink->beginSweep(plan_, points);

    // Cross-point component caches: the expensive builds (lattice,
    // detector model, decoder structure) are keyed by exactly what
    // they depend on, so a grid that revisits them pays once.
    std::map<int, std::unique_ptr<RotatedSurfaceCode>> codes;
    using DemKey = std::tuple<int, int, int>;
    std::map<DemKey, std::shared_ptr<const DetectorModel>> dems;
    using DecoderKey = std::tuple<int, int, int, int, uint64_t>;
    std::map<DecoderKey, std::shared_ptr<const Decoder>> decoders;

    const auto sweep_start = Clock::now();
    for (const SweepPoint &point : points) {
        auto code_it = codes.find(point.distance);
        if (code_it == codes.end()) {
            code_it = codes
                          .emplace(point.distance,
                                   std::make_unique<
                                       RotatedSurfaceCode>(
                                       point.distance))
                          .first;
            ++summary.codesBuilt;
        } else {
            ++summary.codesReused;
        }
        const RotatedSurfaceCode &code = *code_it->second;

        std::shared_ptr<const DetectorModel> dem;
        std::shared_ptr<const Decoder> decoder;
        if (point.config.decode) {
            const DemKey dem_key{point.distance, point.rounds,
                                 (int)point.config.basis};
            auto dem_it = dems.find(dem_key);
            if (dem_it == dems.end()) {
                dem_it = dems.emplace(
                                 dem_key,
                                 std::make_shared<DetectorModel>(
                                     buildDetectorModel(
                                         code, point.rounds,
                                         point.config.basis)))
                             .first;
                ++summary.demsBuilt;
            } else {
                ++summary.demsReused;
            }
            dem = dem_it->second;

            const DecoderKey dec_key{
                point.distance, point.rounds,
                (int)point.config.basis, (int)point.decoderKind,
                doubleKeyBits(point.p)};
            auto dec_it = decoders.find(dec_key);
            if (dec_it == decoders.end()) {
                std::shared_ptr<const Decoder> built;
                if (point.decoderKind == DecoderKind::Mwpm)
                    built = std::make_shared<MwpmDecoder>(
                        *dem, point.p, plan_.base.decoderOptions);
                else
                    built = std::make_shared<UnionFindDecoder>(
                        *dem, point.p);
                dec_it = decoders.emplace(dec_key, std::move(built))
                             .first;
                ++summary.decodersBuilt;
            } else {
                ++summary.decodersReused;
            }
            decoder = dec_it->second;
        }

        MemoryExperiment exp(code, point.config, dem, decoder);

        PointResult pr;
        pr.point = point;
        pr.results.reserve(plan_.policies.size());
        for (const SweepPolicy &policy : plan_.policies) {
            PolicyFactory factory = policy.custom
                ? policy.custom(code, exp.lookup())
                : makePolicyFactory(
                      policy.kind, code, exp.lookup(),
                      point.protocol == RemovalProtocol::Dqlr);
            SessionOptions session_options;
            session_options.earlyStop = plan_.earlyStop;
            ExperimentSession session(
                exp, std::move(factory),
                policy.displayName(point.protocol), session_options);
            const auto start = Clock::now();
            session.runToCompletion();
            pr.seconds.push_back(secondsSince(start));
            pr.results.push_back(session.result());
            pr.stoppedEarly.push_back(session.stoppedEarly());
            summary.shotsRun += session.result().shots;
        }
        ++summary.points;
        summary.seconds = secondsSince(sweep_start);
        for (SweepSink *sink : sinks_)
            sink->onPoint(pr);
    }

    summary.seconds = secondsSince(sweep_start);
    for (SweepSink *sink : sinks_)
        sink->endSweep(summary);
    return summary;
}

} // namespace qec
