#include "exp/sweep_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <new>
#include <thread>

#include "base/atomic_file.h"
#include "base/fault_injection.h"
#include "base/simd_word.h"
#include "exp/sweep_exec.h"
#include "exp/sweep_scheduler.h"

namespace qec
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

std::string
metricCell(TableSink::Metric metric, const ExperimentResult &r)
{
    char buf[48];
    switch (metric) {
    case TableSink::Metric::Ler:
        if (r.logicalErrors == 0)
            std::snprintf(buf, sizeof(buf), "<%.1e",
                          r.shots ? 1.0 / (double)r.shots : 0.0);
        else
            std::snprintf(buf, sizeof(buf), "%.3e", r.ler());
        break;
    case TableSink::Metric::Accuracy:
        std::snprintf(buf, sizeof(buf), "%.1f%%",
                      r.speculationAccuracy() * 100.0);
        break;
    case TableSink::Metric::LrcsPerRound:
        std::snprintf(buf, sizeof(buf), "%.3f", r.avgLrcsPerRound());
        break;
    }
    return buf;
}

} // namespace

// ------------------------------------------------------------ TableSink

FILE *
TableSink::out() const
{
    return options_.out ? options_.out : stdout;
}

void
TableSink::beginSweep(const SweepPlan &plan,
                      const std::vector<SweepPoint> &points)
{
    showP_ = plan.ps.size() > 1;
    showRounds_ = plan.rounds.size() > 1;
    showProtocol_ = plan.protocols.size() > 1;
    showDecoder_ = plan.decoders.size() > 1;
    showWidth_ = plan.widths.size() > 1;
    (void)points;

    const RemovalProtocol proto =
        plan.protocols.empty() ? plan.base.protocol
                               : plan.protocols.front();
    policyNames_.clear();
    for (const SweepPolicy &policy : plan.policies)
        policyNames_.push_back(policy.displayName(proto));

    std::fprintf(out(), "%4s", "d");
    if (showP_)
        std::fprintf(out(), " %8s", "p");
    if (showRounds_)
        std::fprintf(out(), " %7s", "rounds");
    if (showProtocol_)
        std::fprintf(out(), " %5s", "proto");
    if (showDecoder_)
        std::fprintf(out(), " %10s", "decoder");
    if (showWidth_)
        std::fprintf(out(), " %6s", "width");
    std::fprintf(out(), " %9s", "shots");
    for (const std::string &name : policyNames_)
        std::fprintf(out(), " %12s", name.c_str());
    if (options_.gainNum >= 0 && options_.gainDen >= 0)
        std::fprintf(out(), " %14s", options_.gainHeader.c_str());
    std::fprintf(out(), "\n");
}

void
TableSink::onPoint(const PointResult &pr)
{
    std::fprintf(out(), "%4d", pr.point.distance);
    if (showP_)
        std::fprintf(out(), " %8.0e", pr.point.p);
    if (showRounds_)
        std::fprintf(out(), " %7d", pr.point.rounds);
    if (showProtocol_)
        std::fprintf(out(), " %5s", protocolName(pr.point.protocol));
    if (showDecoder_)
        std::fprintf(out(), " %10s",
                     decoderKindName(pr.point.decoderKind));
    if (showWidth_)
        std::fprintf(out(), " %6u", pr.point.batchWidth);
    // Shots actually run, not planned: with early stopping, policies
    // can finish at different counts (the per-policy exact numbers
    // are in the JSON artifact); report the largest so the column
    // never overstates a cell's sample size by more than its own
    // early stop did.
    uint64_t shots_run = 0;
    for (const ExperimentResult &r : pr.results)
        shots_run = std::max(shots_run, r.shots);
    std::fprintf(out(), " %9llu", (unsigned long long)shots_run);
    for (const ExperimentResult &r : pr.results)
        std::fprintf(out(), " %12s",
                     metricCell(options_.metric, r).c_str());
    if (options_.gainNum >= 0 && options_.gainDen >= 0) {
        const ExperimentResult &num = pr.results[options_.gainNum];
        const ExperimentResult &den = pr.results[options_.gainDen];
        if (num.logicalErrors == 0 || den.logicalErrors == 0)
            std::fprintf(out(), " %14s", "-");
        else
            std::fprintf(out(), " %13.2fx", num.ler() / den.ler());
    }
    std::fprintf(out(), "\n");
}

void
TableSink::endSweep(const SweepSummary &summary)
{
    std::fprintf(
        out(),
        "[sweep] %zu points, %llu shots in %.2fs (%.0f shots/s); "
        "reuse: codes %zu/%zu, dems %zu/%zu, decoders %zu/%zu\n",
        summary.points, (unsigned long long)summary.shotsRun,
        summary.seconds,
        (double)summary.shotsRun /
            (summary.seconds > 0.0 ? summary.seconds : 1.0),
        summary.codesReused, summary.codesBuilt + summary.codesReused,
        summary.demsReused, summary.demsBuilt + summary.demsReused,
        summary.decodersReused,
        summary.decodersBuilt + summary.decodersReused);
    if (summary.scheduled)
        std::fprintf(
            out(),
            "[sched] %u workers, %llu rounds, %llu chunks, "
            "%llu shots reallocated, %llu discarded, "
            "pool %.0f%% busy\n",
            summary.workersUsed,
            (unsigned long long)summary.schedulerRounds,
            (unsigned long long)summary.chunksDispatched,
            (unsigned long long)summary.shotsReallocated,
            (unsigned long long)summary.shotsDiscarded,
            summary.poolUtilization * 100.0);
}

// ------------------------------------------------------------- JsonSink

JsonSink::JsonSink(std::string path) : path_(std::move(path))
{
    owned_ = true;
    // Probe the destination before a potentially hours-long sweep:
    // an unwritable path should fail ok() now, not at endSweep.
    AtomicFileWriter probe;
    status_ = probe.open(path_);
    if (!status_.isOk()) {
        std::fprintf(stderr, "JsonSink: cannot write %s (%s)\n",
                     path_.c_str(), status_.toString().c_str());
        return;
    }
    probe.abandon();
    // Compose the artifact in memory; endSweep publishes it with one
    // atomic rename, so a crash mid-sweep can never leave a torn
    // half-JSON under the final name.
    out_ = open_memstream(&memBuf_, &memLen_);
    if (!out_)
        status_ = resourceExhaustedError(
            "JsonSink: open_memstream failed");
}

JsonSink::JsonSink(FILE *out) : out_(out), owned_(false) {}

JsonSink::~JsonSink()
{
    if (owned_) {
        if (out_)
            std::fclose(out_);
        std::free(memBuf_);
    }
}

void
JsonSink::beginSweep(const SweepPlan &plan,
                     const std::vector<SweepPoint> &points)
{
    if (!out_)
        return;
    std::fprintf(out_,
                 "{\n"
                 "  \"schema\": \"qec.sweep.v1\",\n"
                 "  \"sweep\": \"%s\",\n"
                 "  \"engine_backend\": \"%s\",\n"
                 "  \"recommended_width\": %d,\n"
                 "  \"early_stop\": %s,\n"
                 "  \"planned_points\": %zu,\n"
                 "  \"points\": [",
                 plan.name.c_str(), simdBackendName(),
                 recommendedBatchWidth(),
                 plan.earlyStop.enabled() ? "true" : "false",
                 points.size());
    firstPoint_ = true;
}

void
JsonSink::onPoint(const PointResult &pr)
{
    if (!out_)
        return;
    std::fprintf(
        out_,
        "%s\n    {\"index\": %zu, \"d\": %d, \"p\": %.6g, "
        "\"rounds\": %d, \"protocol\": \"%s\", \"decoder\": \"%s\", "
        "\"width\": %u, \"shots\": %llu, \"seed\": %llu, "
        "\"wall_seconds\": %.6g,\n"
        "     \"results\": [",
        firstPoint_ ? "" : ",", pr.point.index, pr.point.distance,
        pr.point.p, pr.point.rounds, protocolName(pr.point.protocol),
        decoderKindName(pr.point.decoderKind), pr.point.batchWidth,
        (unsigned long long)pr.point.shots,
        (unsigned long long)pr.point.seed, pr.wallSeconds);
    firstPoint_ = false;
    for (size_t i = 0; i < pr.results.size(); ++i) {
        const ExperimentResult &r = pr.results[i];
        std::fprintf(
            out_,
            "%s\n      {\"policy\": \"%s\", \"shots\": %llu, "
            "\"logical_errors\": %llu, \"ler\": %.8g, "
            "\"fingerprint\": \"0x%016llx\", "
            "\"lrcs_per_round\": %.6g, \"accuracy\": %.6g, "
            "\"fpr\": %.6g, \"fnr\": %.6g, "
            "\"decoded_shots\": %llu, \"zero_defect_shots\": %llu, "
            "\"cache_hits\": %llu, \"stopped_early\": %s, "
            "\"truncated\": %s, "
            "\"seconds\": %.6g, \"shots_per_s\": %.1f}",
            i == 0 ? "" : ",", r.policy.c_str(),
            (unsigned long long)r.shots,
            (unsigned long long)r.logicalErrors, r.ler(),
            (unsigned long long)r.verdictFingerprint,
            r.avgLrcsPerRound(), r.speculationAccuracy(),
            r.falsePositiveRate(), r.falseNegativeRate(),
            (unsigned long long)r.decodedShots,
            (unsigned long long)r.zeroDefectShots,
            (unsigned long long)r.syndromeCacheHits,
            pr.stoppedEarly[i] ? "true" : "false",
            // Benches that hand-build PointResults predate the
            // truncated column; treat a missing entry as false.
            (i < pr.truncated.size() && pr.truncated[i]) ? "true"
                                                         : "false",
            pr.seconds[i], pr.shotsPerSec(i));
    }
    std::fprintf(out_, "]}");
}

void
JsonSink::endSweep(const SweepSummary &summary)
{
    if (!out_ || closed_)
        return;
    std::fprintf(
        out_,
        "\n  ],\n"
        "  \"summary\": {\"points\": %zu, \"shots\": %llu, "
        "\"seconds\": %.3f, \"codes_built\": %zu, "
        "\"codes_reused\": %zu, \"dems_built\": %zu, "
        "\"dems_reused\": %zu, \"decoders_built\": %zu, "
        "\"decoders_reused\": %zu, \"status\": \"%s\", "
        "\"resumed\": %s, \"truncated\": %s, "
        "\"points_resumed\": %zu, \"points_failed\": %zu, "
        "\"retries\": %zu, \"scheduled\": %s, \"workers\": %u, "
        "\"scheduler_rounds\": %llu, \"chunks_dispatched\": %llu, "
        "\"shots_reallocated\": %llu, \"shots_discarded\": %llu, "
        "\"pool_utilization\": %.4f, \"budget_exhausted\": %s}\n}\n",
        summary.points, (unsigned long long)summary.shotsRun,
        summary.seconds, summary.codesBuilt, summary.codesReused,
        summary.demsBuilt, summary.demsReused, summary.decodersBuilt,
        summary.decodersReused, statusCodeName(summary.status.code()),
        summary.resumed ? "true" : "false",
        summary.truncated ? "true" : "false", summary.pointsResumed,
        summary.pointsFailed, summary.retries,
        summary.scheduled ? "true" : "false", summary.workersUsed,
        (unsigned long long)summary.schedulerRounds,
        (unsigned long long)summary.chunksDispatched,
        (unsigned long long)summary.shotsReallocated,
        (unsigned long long)summary.shotsDiscarded,
        summary.poolUtilization,
        summary.budgetExhausted ? "true" : "false");
    std::fflush(out_);
    closed_ = true;
    if (!owned_)
        return;

    // Path mode: publish the buffered artifact atomically, with a
    // short bounded-backoff retry on transient I/O failures.
    constexpr int kAttempts = 3;
    for (int attempt = 1; attempt <= kAttempts; ++attempt) {
        status_ = writeFileAtomic(path_, memBuf_, memLen_);
        if (status_.isOk() || !status_.isRetryable() ||
            attempt == kAttempts)
            break;
        std::this_thread::sleep_for(std::chrono::duration<double>(
            0.05 * (double)(1 << (attempt - 1))));
    }
    if (!status_.isOk())
        std::fprintf(stderr, "JsonSink: writing %s failed (%s)\n",
                     path_.c_str(), status_.toString().c_str());
}

// ---------------------------------------------------------- SweepRunner

SweepRunner::SweepRunner(SweepPlan plan) : plan_(std::move(plan)) {}

void
SweepRunner::addSink(SweepSink &sink)
{
    sinks_.push_back(&sink);
}

SweepSummary
SweepRunner::run()
{
    return run(SweepRunOptions());
}

SweepSummary
SweepRunner::run(const SweepRunOptions &options)
{
    if (options.schedule) {
        SweepScheduler scheduler(plan_, sinks_);
        return scheduler.run(options);
    }

    SweepSummary summary;
    // Recoverable up-front validation: a bad plan is reported in the
    // summary instead of aborting the process (the sinks are never
    // started, so no artifact is touched).
    summary.status = plan_.validate();
    if (!summary.status.isOk())
        return summary;

    const std::vector<SweepPoint> points = plan_.points();
    SweepCheckpoint ckpt;
    ckpt.planFingerprint =
        SweepCheckpoint::fingerprintPlan(plan_, points);
    if (!prepareSweepCheckpoint(options.checkpoint, ckpt, summary))
        return summary;

    for (SweepSink *sink : sinks_)
        sink->beginSweep(plan_, points);

    SweepBuildCache cache;

    const auto sweep_start = Clock::now();
    double last_save = 0.0;
    uint64_t chunks_since_save = 0;
    uint64_t budget_used = 0;

    const auto deadlineExpired = [&]() {
        return options.deadlineSeconds > 0.0 &&
               secondsSince(sweep_start) >= options.deadlineSeconds;
    };
    const auto budgetLeft = [&]() -> uint64_t {
        if (options.maxTotalShots == 0)
            return UINT64_MAX;
        return options.maxTotalShots > budget_used
            ? options.maxTotalShots - budget_used
            : 0;
    };
    // A failing save is recorded but does not stop the sweep: losing
    // checkpoint durability is strictly better than losing the run.
    const auto saveCheckpoint = [&]() {
        if (!options.checkpoint.enabled())
            return;
        Status st = ckpt.save(options.checkpoint.path);
        if (st.isOk())
            ++summary.checkpointSaves;
        else
            summary.checkpointStatus = st;
        chunks_since_save = 0;
        last_save = secondsSince(sweep_start);
    };

    for (const SweepPoint &point : points) {
        PointCheckpoint *saved = nullptr;
        auto saved_it = ckpt.points.find(point.index);
        if (saved_it != ckpt.points.end()) {
            if (saved_it->second.seed != point.seed) {
                // The plan fingerprint already covers every derived
                // seed; a mismatch here means the file was doctored
                // around the CRC. Refuse rather than resume garbage.
                summary.status = dataLossError(
                    "checkpoint point " +
                    std::to_string(point.index) +
                    " carries a different derived seed than the plan");
                break;
            }
            saved = &saved_it->second;
        }

        // Completed in a previous incarnation: re-emit the stored
        // result so the sink artifact of the resumed run is complete.
        if (saved && saved->finished) {
            PointResult pr;
            pr.point = point;
            for (const PolicyCheckpoint &pc : saved->policies) {
                pr.results.push_back(pc.progress.total);
                pr.seconds.push_back(pc.seconds);
                pr.stoppedEarly.push_back(pc.stoppedEarly);
                pr.truncated.push_back(false);
                summary.shotsRun += pc.progress.total.shots;
            }
            ++summary.points;
            ++summary.pointsResumed;
            for (SweepSink *sink : sinks_)
                sink->onPoint(pr);
            continue;
        }

        if (deadlineExpired()) {
            summary.truncated = true;
            break;
        }
        if (budgetLeft() == 0) {
            // The global shot budget is spent with points remaining:
            // truncate exactly like a deadline, but deterministically
            // (accounting is in committed shots, not wall-clock).
            summary.truncated = true;
            summary.budgetExhausted = true;
            break;
        }

        // Working progress record for this point: adopted from the
        // checkpoint partial when there is one, widened to the full
        // policy set (records past the crashed policy are fresh).
        PointCheckpoint working;
        if (saved)
            working = *saved;
        working.pointIndex = point.index;
        working.seed = point.seed;
        working.policies.resize(plan_.policies.size());

        PointResult pr;
        bool point_truncated = false;
        const auto point_start = Clock::now();

        const auto executePoint = [&]() -> Status {
            pr = PointResult();
            pr.point = point;
            point_truncated = false;
            try {
                StatusOr<SweepBuildCache::Components> built =
                    cache.build(point, plan_.base.decoderOptions,
                                summary);
                if (!built.ok())
                    return built.status();
                SweepBuildCache::Components comp =
                    std::move(built).value();

                MemoryExperiment exp(*comp.code, point.config,
                                     comp.dem, comp.decoder,
                                     comp.program);

                for (size_t pi = 0; pi < plan_.policies.size();
                     ++pi) {
                    PolicyCheckpoint &pc = working.policies[pi];
                    const SweepPolicy &policy = plan_.policies[pi];

                    // Finished policies (checkpoint, or an earlier
                    // attempt of this incarnation) are not re-run.
                    if (pc.finished) {
                        pr.results.push_back(pc.progress.total);
                        pr.seconds.push_back(pc.seconds);
                        pr.stoppedEarly.push_back(pc.stoppedEarly);
                        pr.truncated.push_back(false);
                        continue;
                    }

                    PolicyFactory factory = policy.custom
                        ? policy.custom(*comp.code, exp.lookup())
                        : makePolicyFactory(
                              policy.kind, *comp.code, exp.lookup(),
                              point.protocol ==
                                  RemovalProtocol::Dqlr);
                    SessionOptions session_options;
                    session_options.earlyStop = plan_.earlyStop;
                    ExperimentSession session(
                        exp, std::move(factory),
                        policy.displayName(point.protocol),
                        session_options);

                    const bool has_partial =
                        pc.progress.total.shots > 0 ||
                        pc.progress.nextSpan > 0 ||
                        pc.progress.scalarNext > 0 ||
                        pc.progress.stopped;
                    if (has_partial) {
                        Status st = session.restore(pc.progress);
                        if (!st.isOk())
                            return st;
                    }

                    const double base_seconds = pc.seconds;
                    const auto policy_start = Clock::now();
                    while (!session.done()) {
                        if (deadlineExpired()) {
                            point_truncated = true;
                            break;
                        }
                        if (budgetLeft() == 0) {
                            point_truncated = true;
                            summary.budgetExhausted = true;
                            break;
                        }
                        // The in-process SIGKILL stand-in: armed with
                        // Kind::Crash this throws SimulatedCrash out
                        // of run() (nothing below catches it), and
                        // the checkpoint saved at the previous
                        // boundary is what a rerun resumes from.
                        if (QEC_FAULT_POINT("sweep.chunk"))
                            return unavailableError(
                                "injected fault: sweep.chunk");
                        // Recomputed every iteration, exactly as
                        // runToCompletion does: the default shrinks
                        // near a shot cap, and a resumed session must
                        // hit the same boundaries an uninterrupted
                        // one would. The budget caps the request the
                        // same way maxShots does (overshoot at most
                        // one word-group).
                        const ExperimentResult chunk = session.runChunk(
                            std::min(session.defaultChunkShots(),
                                     budgetLeft()));
                        budget_used += chunk.shots;
                        pc.progress = session.progress();
                        pc.seconds =
                            base_seconds + secondsSince(policy_start);
                        pc.stoppedEarly = session.stoppedEarly();
                        ++chunks_since_save;
                        if (options.checkpoint.enabled() &&
                            (chunks_since_save >=
                                 options.checkpoint.everyChunks ||
                             (options.checkpoint.everySeconds > 0.0 &&
                              secondsSince(sweep_start) - last_save >=
                                  options.checkpoint.everySeconds))) {
                            ckpt.points[point.index] = working;
                            saveCheckpoint();
                        }
                    }

                    pc.progress = session.progress();
                    pc.seconds =
                        base_seconds + secondsSince(policy_start);
                    pc.finished = session.done();
                    pc.stoppedEarly = session.stoppedEarly();
                    pc.truncated = point_truncated && !pc.finished;
                    pr.results.push_back(session.result());
                    pr.seconds.push_back(pc.seconds);
                    pr.stoppedEarly.push_back(pc.stoppedEarly);
                    pr.truncated.push_back(pc.truncated);
                    if (point_truncated)
                        break;
                }
            } catch (const std::bad_alloc &) {
                return resourceExhaustedError(
                    "allocation failed while executing sweep point " +
                    std::to_string(point.index));
            }
            return okStatus();
        };

        // Bounded-backoff retry on transient failures; anything else
        // (or exhausted attempts) quarantines the point and the sweep
        // moves on. Retries resume from the policy's last completed
        // chunk (`working` keeps the partial), not from shot zero.
        const int max_attempts = std::max(1, options.maxPointAttempts);
        Status point_status;
        int attempts = 0;
        while (true) {
            ++attempts;
            point_status = executePoint();
            if (point_status.isOk() ||
                !point_status.isRetryable() ||
                attempts >= max_attempts)
                break;
            ++summary.retries;
            const double backoff = options.retryBackoffSeconds *
                (double)(1ull << (attempts - 1));
            if (backoff > 0.0)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(backoff));
        }

        if (point_status.isOk() && !point_truncated) {
            working.finished = true;
            ckpt.points[point.index] = working;
            ++summary.points;
            for (const ExperimentResult &r : pr.results)
                summary.shotsRun += r.shots;
            pr.wallSeconds = secondsSince(point_start);
            summary.seconds = secondsSince(sweep_start);
            for (SweepSink *sink : sinks_)
                sink->onPoint(pr);
            // Completion is a durability milestone even when the
            // chunk cadence did not line up.
            saveCheckpoint();
        } else if (point_status.isOk()) {
            // Deadline hit mid-point: checkpoint the partial and stop.
            // The incomplete point is not emitted; the resumed run
            // emits it once it finishes.
            ckpt.points[point.index] = working;
            summary.truncated = true;
            saveCheckpoint();
            break;
        } else {
            ++summary.pointsFailed;
            SweepPointError err;
            err.pointIndex = point.index;
            err.distance = point.distance;
            err.p = point.p;
            err.attempts = attempts;
            err.status = point_status;
            summary.errors.push_back(std::move(err));
            // Keep the partial: a later resume retries the point
            // from its last checkpointed boundary.
            ckpt.points[point.index] = working;
            saveCheckpoint();
        }
    }

    if (summary.status.isOk() && summary.pointsFailed > 0 &&
        summary.points == 0)
        summary.status = summary.errors.front().status;

    summary.seconds = secondsSince(sweep_start);
    for (SweepSink *sink : sinks_)
        sink->endSweep(summary);
    return summary;
}

} // namespace qec
