#include "exp/memory_experiment.h"

#include <mutex>

#include "base/logging.h"
#include "base/parallel.h"
#include "code/builder.h"
#include "decoder/defects.h"
#include "sim/frame_simulator.h"

namespace qec
{

double
ExperimentResult::ler() const
{
    return shots == 0 ? 0.0
                      : (double)logicalErrors / (double)shots;
}

std::string
ExperimentResult::lerString() const
{
    if (logicalErrors == 0)
        return "<" + std::to_string(1.0 / (double)shots);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3e", ler());
    return buf;
}

double
ExperimentResult::speculationAccuracy() const
{
    const uint64_t total = tp + fp + tn + fn;
    return total == 0 ? 0.0 : (double)(tp + tn) / (double)total;
}

double
ExperimentResult::falsePositiveRate() const
{
    const uint64_t denom = fp + tn;
    return denom == 0 ? 0.0 : (double)fp / (double)denom;
}

double
ExperimentResult::falseNegativeRate() const
{
    const uint64_t denom = fn + tp;
    return denom == 0 ? 0.0 : (double)fn / (double)denom;
}

double
ExperimentResult::avgLrcsPerRound() const
{
    return roundsTotal == 0
        ? 0.0 : (double)lrcsScheduled / (double)roundsTotal;
}

double
ExperimentResult::lprData(int round) const
{
    if (shots == 0 || round >= (int)lprDataSum.size())
        return 0.0;
    return lprDataSum[round] / ((double)shots * numDataQubits);
}

double
ExperimentResult::lprParity(int round) const
{
    if (shots == 0 || round >= (int)lprParitySum.size())
        return 0.0;
    return lprParitySum[round] / ((double)shots * numParityQubits);
}

double
ExperimentResult::lprTotal(int round) const
{
    if (shots == 0 || round >= (int)lprDataSum.size())
        return 0.0;
    return (lprDataSum[round] + lprParitySum[round]) /
           ((double)shots * (numDataQubits + numParityQubits));
}

/** Per-shot counters merged under a mutex after each shot. */
struct MemoryExperiment::ShotStats
{
    uint64_t logicalErrors = 0;
    uint64_t tp = 0, fp = 0, tn = 0, fn = 0;
    uint64_t lrcsScheduled = 0;
    std::vector<double> lprData;
    std::vector<double> lprParity;
};

MemoryExperiment::MemoryExperiment(const RotatedSurfaceCode &code,
                                   ExperimentConfig config)
    : code_(code), config_(config), lookup_(code)
{
    fatalIf(config_.rounds < 1, "experiment needs at least one round");
    if (config_.decode) {
        dem_ = std::make_unique<DetectorModel>(
            buildDetectorModel(code_, config_.rounds, config_.basis));
        if (config_.decoderKind == DecoderKind::Mwpm) {
            decoder_ = std::make_unique<MwpmDecoder>(
                *dem_, config_.em.p, config_.decoderOptions);
        } else {
            decoder_ = std::make_unique<UnionFindDecoder>(
                *dem_, config_.em.p);
        }
    }
}

MemoryExperiment::~MemoryExperiment() = default;

ExperimentResult
MemoryExperiment::run(PolicyKind kind) const
{
    const bool every_round =
        config_.protocol == RemovalProtocol::Dqlr;
    return run(makePolicyFactory(kind, code_, lookup_, every_round),
               policyKindName(kind, every_round));
}

ExperimentResult
MemoryExperiment::run(const PolicyFactory &factory,
                      const std::string &name) const
{
    ExperimentResult result;
    result.policy = name;
    result.shots = config_.shots;
    result.numDataQubits = code_.numData();
    result.numParityQubits = code_.numStabilizers();
    result.roundsTotal = config_.shots * (uint64_t)config_.rounds;
    if (config_.trackLpr) {
        result.lprDataSum.assign(config_.rounds, 0.0);
        result.lprParitySum.assign(config_.rounds, 0.0);
    }

    std::mutex merge_mutex;
    parallelFor(
        config_.shots,
        [&](uint64_t shot) {
            ShotStats stats;
            if (config_.trackLpr) {
                stats.lprData.assign(config_.rounds, 0.0);
                stats.lprParity.assign(config_.rounds, 0.0);
            }
            runShot(shot, factory, stats);

            std::lock_guard<std::mutex> lock(merge_mutex);
            result.logicalErrors += stats.logicalErrors;
            result.tp += stats.tp;
            result.fp += stats.fp;
            result.tn += stats.tn;
            result.fn += stats.fn;
            result.lrcsScheduled += stats.lrcsScheduled;
            for (int r = 0; r < (int)result.lprDataSum.size(); ++r) {
                result.lprDataSum[r] += stats.lprData[r];
                result.lprParitySum[r] += stats.lprParity[r];
            }
        },
        config_.threads);
    return result;
}

namespace
{

/**
 * Execute one round, honoring ERASER+M's in-round rule: if an LRC'd
 * data qubit reads out as |L>, squash the MOV-back and reset the
 * parity qubit instead (Section 4.6.2).
 */
void
executeRound(FrameSimulator &sim, const RoundSchedule &sched,
             bool multi_level)
{
    const auto &ops = sched.ops;
    if (!multi_level || sched.lrcs.empty()) {
        sim.executeRange(ops.data(), ops.data() + ops.size());
        return;
    }

    size_t await_measure = 0;
    size_t await_mov = 0;
    std::vector<uint8_t> leaked_label(sched.lrcs.size(), 0);
    for (size_t i = 0; i < ops.size(); ++i) {
        if (await_mov < sched.lrcs.size() &&
            i == sched.lrcs[await_mov].movBegin) {
            const auto &span = sched.lrcs[await_mov];
            if (leaked_label[await_mov]) {
                Op reset;
                reset.type = OpType::Reset;
                reset.q0 = span.parity;
                sim.execute(reset);
                i = span.movEnd - 1;
                ++await_mov;
                continue;
            }
            ++await_mov;
        }
        sim.execute(ops[i]);
        if (await_measure < sched.lrcs.size() &&
            i == sched.lrcs[await_measure].measureIndex) {
            leaked_label[await_measure] =
                sim.record().back().leakedLabel ? 1 : 0;
            ++await_measure;
        }
    }
}

} // namespace

void
MemoryExperiment::runShot(uint64_t shot, const PolicyFactory &factory,
                          ShotStats &stats) const
{
    const int n_stabs = code_.numStabilizers();
    const int n_data = code_.numData();
    const StabType primary = protectingStabType(config_.basis);

    FrameSimulator sim(code_.numQubits(), config_.em,
                       Rng::forShot(config_.seed, shot));
    QecScheduleGenerator qsg(code_, config_.protocol);
    auto policy = factory();

    std::vector<LrcPair> lrcs = policy->firstRound();
    std::vector<uint8_t> prev_flips(n_stabs, 0);
    RoundObservation obs;
    obs.events.resize(n_stabs);
    obs.leakedLabels.resize(n_stabs);
    obs.hadLrc.resize(n_data);
    obs.trueLeakedData.resize(n_data);

    std::vector<uint8_t> flips(n_stabs);

    for (int r = 0; r < config_.rounds; ++r) {
        // Account the scheduling decision against the ground truth at
        // decision time (end of the previous round).
        for (const auto &pair : lrcs)
            obs.hadLrc[pair.data] = 2;   // temp tag: scheduled
        for (int q = 0; q < n_data; ++q) {
            const bool scheduled = obs.hadLrc[q] == 2;
            const bool is_leaked = sim.leaked(q);
            if (scheduled && is_leaked)
                ++stats.tp;
            else if (scheduled && !is_leaked)
                ++stats.fp;
            else if (!scheduled && is_leaked)
                ++stats.fn;
            else
                ++stats.tn;
        }
        stats.lrcsScheduled += lrcs.size();

        const size_t record_mark = sim.record().size();
        RoundSchedule sched = qsg.generate(r, lrcs);
        executeRound(sim, sched, policy->usesMultiLevelReadout());

        // Gather this round's syndrome.
        std::fill(flips.begin(), flips.end(), 0);
        std::fill(obs.leakedLabels.begin(), obs.leakedLabels.end(), 0);
        for (size_t i = record_mark; i < sim.record().size(); ++i) {
            const auto &rec = sim.record()[i];
            if (rec.stab < 0)
                continue;
            flips[rec.stab] = rec.flip ? 1 : 0;
            // |L> labels on normal parity readout feed ERASER+M's LSB;
            // LRC'd data readouts are consumed in-round instead.
            if (!rec.lrcData)
                obs.leakedLabels[rec.stab] =
                    rec.leakedLabel ? 1 : 0;
        }

        if (config_.trackLpr) {
            stats.lprData[r] += sim.countLeaked(0, n_data);
            stats.lprParity[r] +=
                sim.countLeaked(n_data, code_.numQubits());
        }

        // Detection events for the speculation logic.
        for (int s = 0; s < n_stabs; ++s) {
            if (r == 0) {
                // Only the protected-basis checks are deterministic in
                // the first round; the other basis starts random.
                obs.events[s] =
                    code_.stabilizer(s).type == primary ? flips[s]
                                                        : 0;
            } else {
                obs.events[s] = flips[s] ^ prev_flips[s];
            }
        }
        prev_flips = flips;

        obs.round = r;
        std::fill(obs.hadLrc.begin(), obs.hadLrc.end(), 0);
        for (const auto &pair : lrcs)
            obs.hadLrc[pair.data] = 1;
        for (int q = 0; q < n_data; ++q)
            obs.trueLeakedData[q] = sim.leaked(q) ? 1 : 0;

        lrcs = policy->nextRound(obs);
    }

    if (!config_.decode)
        return;

    auto final_ops =
        buildFinalMeasurement(code_, config_.rounds, config_.basis);
    sim.executeRange(final_ops.data(),
                     final_ops.data() + final_ops.size());

    ShotOutcome outcome = extractDefects(code_, config_.basis,
                                         config_.rounds, sim.record());
    const bool predicted = decoder_->decode(outcome.defects);
    if (predicted != outcome.observableFlip)
        ++stats.logicalErrors;
}

} // namespace qec
