#include "exp/memory_experiment.h"

#include <algorithm>
#include <mutex>

#include "base/logging.h"
#include "base/parallel.h"
#include "code/builder.h"
#include "decoder/batch_decoder.h"
#include "decoder/defects.h"
#include "decoder/sparse_syndrome.h"
#include "exp/experiment_internal.h"
#include "exp/experiment_session.h"
#include "sim/batch_frame_simulator.h"
#include "sim/frame_simulator.h"

namespace qec
{

double
ExperimentResult::ler() const
{
    return shots == 0 ? 0.0
                      : (double)logicalErrors / (double)shots;
}

std::string
ExperimentResult::lerString() const
{
    if (logicalErrors == 0)
        return "<" + std::to_string(1.0 / (double)shots);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3e", ler());
    return buf;
}

double
ExperimentResult::speculationAccuracy() const
{
    const uint64_t total = tp + fp + tn + fn;
    return total == 0 ? 0.0 : (double)(tp + tn) / (double)total;
}

double
ExperimentResult::falsePositiveRate() const
{
    const uint64_t denom = fp + tn;
    return denom == 0 ? 0.0 : (double)fp / (double)denom;
}

double
ExperimentResult::falseNegativeRate() const
{
    const uint64_t denom = fn + tp;
    return denom == 0 ? 0.0 : (double)fn / (double)denom;
}

double
ExperimentResult::avgLrcsPerRound() const
{
    return roundsTotal == 0
        ? 0.0 : (double)lrcsScheduled / (double)roundsTotal;
}

double
ExperimentResult::syndromeCacheHitRate() const
{
    BatchDecodeStats stats;
    stats.cacheHits = syndromeCacheHits;
    stats.decoded = decodedShots;
    return stats.cacheHitRate();
}

double
ExperimentResult::componentCacheHitRate() const
{
    const uint64_t total = componentCacheHits + componentsDecoded;
    return total == 0 ? 0.0
                      : (double)componentCacheHits / (double)total;
}

double
ExperimentResult::lprData(int round) const
{
    if (shots == 0 || round >= (int)lprDataSum.size())
        return 0.0;
    return lprDataSum[round] / ((double)shots * numDataQubits);
}

double
ExperimentResult::lprParity(int round) const
{
    if (shots == 0 || round >= (int)lprParitySum.size())
        return 0.0;
    return lprParitySum[round] / ((double)shots * numParityQubits);
}

double
ExperimentResult::lprTotal(int round) const
{
    if (shots == 0 || round >= (int)lprDataSum.size())
        return 0.0;
    return (lprDataSum[round] + lprParitySum[round]) /
           ((double)shots * (numDataQubits + numParityQubits));
}

ExperimentResult &
ExperimentResult::merge(const ExperimentResult &other)
{
    if (policy.empty())
        policy = other.policy;
    shots += other.shots;
    logicalErrors += other.logicalErrors;
    verdictFingerprint ^= other.verdictFingerprint;
    tp += other.tp;
    fp += other.fp;
    tn += other.tn;
    fn += other.fn;
    lrcsScheduled += other.lrcsScheduled;
    roundsTotal += other.roundsTotal;
    decodedShots += other.decodedShots;
    zeroDefectShots += other.zeroDefectShots;
    syndromeCacheHits += other.syndromeCacheHits;
    componentsTotal += other.componentsTotal;
    componentCacheHits += other.componentCacheHits;
    componentsDecoded += other.componentsDecoded;
    guardFallbackShots += other.guardFallbackShots;
    windowsDecoded += other.windowsDecoded;
    if (lprDataSum.size() < other.lprDataSum.size())
        lprDataSum.resize(other.lprDataSum.size(), 0.0);
    for (size_t r = 0; r < other.lprDataSum.size(); ++r)
        lprDataSum[r] += other.lprDataSum[r];
    if (lprParitySum.size() < other.lprParitySum.size())
        lprParitySum.resize(other.lprParitySum.size(), 0.0);
    for (size_t r = 0; r < other.lprParitySum.size(); ++r)
        lprParitySum[r] += other.lprParitySum[r];
    if (numDataQubits == 0)
        numDataQubits = other.numDataQubits;
    if (numParityQubits == 0)
        numParityQubits = other.numParityQubits;
    return *this;
}

namespace
{

/** Per-shot contribution to ExperimentResult::verdictFingerprint:
 *  a splitmix64-style mix of (shot id, error bit), XOR-combined so
 *  the total is independent of shot and thread order. */
inline uint64_t
verdictMix(uint64_t shot, bool error)
{
    uint64_t x = shot * 2 + (error ? 1 : 0) + 0x9e3779b97f4a7c15ull;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

} // namespace

Status
validateExperimentConfig(const ExperimentConfig &config)
{
    if (config.rounds < 1)
        return invalidArgument(
            "experiment needs at least one round, got " +
            std::to_string(config.rounds));
    if (config.batchWidth > (unsigned)kMaxBatchLanes)
        return invalidArgument(
            "batchWidth " + std::to_string(config.batchWidth) +
            " exceeds the engine maximum of " +
            std::to_string(kMaxBatchLanes));
    if (!(config.em.p >= 0.0) || config.em.p > 1.0)
        return invalidArgument(
            "physical error rate must be in [0, 1]");
    if (config.windowLength < 0 || config.windowSlideLength < 0)
        return invalidArgument(
            "window lengths must be non-negative");
    if (config.family == CircuitFamily::RepetitionMemory &&
        config.basis != Basis::Z)
        return invalidArgument(
            "repetition-code memory protects the Z basis only");
    if (config.windowLength > 0) {
        // One detector row is the smallest decodable window slice;
        // a zero slide never advances and a slide past the window
        // length skips rows — both corrupt decodeWindowed's commit
        // reasoning, so they are rejected here, recoverably.
        if (config.windowSlideLength < 1)
            return invalidArgument(
                "windowed decode needs windowSlideLength >= 1 "
                "(rows per window advance)");
        if (config.windowSlideLength > config.windowLength)
            return invalidArgument(
                "windowSlideLength " +
                std::to_string(config.windowSlideLength) +
                " exceeds windowLength " +
                std::to_string(config.windowLength));
        if (config.windowLength < 1)
            return invalidArgument(
                "windowLength must cover at least one detector row");
    }
    return okStatus();
}

namespace
{

/** Constructor-precondition form of validateExperimentConfig. */
void
panicOnInvalidConfig(const ExperimentConfig &config)
{
    const Status st = validateExperimentConfig(config);
    panicIf(!st.isOk(),
            "invalid ExperimentConfig (validate with "
            "validateExperimentConfig to handle this recoverably): " +
                st.toString());
}

/** Compile the config's circuit program through the checked entry
 *  points (validate() + the full IrAnalyzer pass stack). A rejected
 *  program here is a compiler bug — the config was already validated —
 *  so the constructor-precondition form panics with the diagnostics;
 *  recoverable callers (the sweep executor) use the checked compilers
 *  directly and get a Status instead. */
std::shared_ptr<const CircuitProgram>
compileFamilyProgram(const RotatedSurfaceCode &code,
                     const ExperimentConfig &config)
{
    StatusOr<CircuitProgram> prog =
        config.family == CircuitFamily::RepetitionMemory
            ? CircuitCompiler::repetitionMemoryChecked(
                  code.distance(), config.rounds)
            : CircuitCompiler::surfaceMemoryChecked(
                  code, config.rounds, config.basis,
                  config.protocol == RemovalProtocol::Dqlr
                      ? IrTailKind::Dqlr
                      : IrTailKind::SwapLrc);
    panicIf(!prog.ok(),
            "compiled circuit program failed static analysis: " +
                prog.status().toString());
    return std::make_shared<const CircuitProgram>(
        std::move(prog).value());
}

} // namespace

MemoryExperiment::MemoryExperiment(const RotatedSurfaceCode &code,
                                   ExperimentConfig config)
    : MemoryExperiment(
          code, config,
          [&config](const DetectorModel &dem,
                    double p) -> std::unique_ptr<Decoder> {
              if (config.decoderKind == DecoderKind::Mwpm)
                  return std::make_unique<MwpmDecoder>(
                      dem, p, config.decoderOptions);
              return std::make_unique<UnionFindDecoder>(dem, p);
          })
{
}

MemoryExperiment::MemoryExperiment(const RotatedSurfaceCode &code,
                                   ExperimentConfig config,
                                   const DecoderFactory &decoder_factory)
    : code_(code), config_(config), lookup_(code)
{
    panicOnInvalidConfig(config_);
    program_ = compileFamilyProgram(code_, config_);
    if (config_.decode) {
        // Surface memory keeps the lattice-walking model builder (the
        // frozen baseline); compiled families without a lattice get
        // their model from the program's detector map.
        dem_ = std::make_shared<DetectorModel>(
            config_.family == CircuitFamily::SurfaceMemory
                ? buildDetectorModel(code_, config_.rounds,
                                     config_.basis)
                : buildDetectorModel(*program_));
        decoder_ = decoder_factory(*dem_, config_.em.p);
        panicIf(!decoder_, "decoder factory returned null");
        componentGraph_ = std::make_shared<ComponentGraph>(
            *dem_, config_.em.p);
    }
}

MemoryExperiment::MemoryExperiment(
    const RotatedSurfaceCode &code, ExperimentConfig config,
    std::shared_ptr<const DetectorModel> dem,
    std::shared_ptr<const Decoder> decoder,
    std::shared_ptr<const CircuitProgram> program)
    : code_(code), config_(config), lookup_(code),
      program_(std::move(program)), dem_(std::move(dem)),
      decoder_(std::move(decoder))
{
    panicOnInvalidConfig(config_);
    if (!program_)
        program_ = compileFamilyProgram(code_, config_);
    panicIf(config_.decode && (!dem_ || !decoder_),
            "decoding experiment needs a detector model and decoder");
    if (config_.decode)
        componentGraph_ = std::make_shared<ComponentGraph>(
            *dem_, config_.em.p);
}

MemoryExperiment::~MemoryExperiment() = default;

ExperimentResult
MemoryExperiment::run(PolicyKind kind) const
{
    const bool every_round =
        config_.protocol == RemovalProtocol::Dqlr;
    return run(makePolicyFactory(kind, code_, lookup_, every_round),
               policyKindName(kind, every_round));
}

ExperimentResult
MemoryExperiment::resultHeader(const std::string &name) const
{
    ExperimentResult result;
    result.policy = name;
    result.shots = config_.shots;
    result.numDataQubits = program_->numData;
    result.numParityQubits = program_->numStabs;
    result.roundsTotal = config_.shots * (uint64_t)config_.rounds;
    if (config_.trackLpr) {
        result.lprDataSum.assign(config_.rounds, 0.0);
        result.lprParitySum.assign(config_.rounds, 0.0);
    }
    return result;
}

// The chunk partials ExperimentSession produces carry the same fields
// as per-group ShotStats, so stats merging is one merge() away: every
// counter path in the harness funnels through ExperimentResult::merge.
// Runs under the callers' merge mutex: the LPR vectors are moved, not
// copied, so the critical section stays allocation-free.
void
MemoryExperiment::mergeStats(ExperimentResult &result,
                             ExperimentShotStats &stats) const
{
    ExperimentResult partial;
    partial.logicalErrors = stats.logicalErrors;
    partial.verdictFingerprint = stats.verdictHash;
    partial.tp = stats.tp;
    partial.fp = stats.fp;
    partial.tn = stats.tn;
    partial.fn = stats.fn;
    partial.lrcsScheduled = stats.lrcsScheduled;
    partial.lprDataSum = std::move(stats.lprData);
    partial.lprParitySum = std::move(stats.lprParity);
    result.merge(partial);
}

ExperimentResult
MemoryExperiment::run(const PolicyFactory &factory,
                      const std::string &name) const
{
    if (config_.batchWidth > 1)
        return runBatched(factory, name);
    ExperimentSession session(*this, factory, name);
    return session.runToCompletion();
}

SyndromeCacheOptions
MemoryExperiment::resolvedCacheOptions() const
{
    return resolveSyndromeCacheOptions(
        config_.syndromeCache, config_.rounds,
        code_.numBasisStabilizers(config_.basis));
}

BatchDecodeOptions
MemoryExperiment::resolvedBatchOptions() const
{
    BatchDecodeOptions options;
    options.cache = resolvedCacheOptions();
    options.components = config_.componentDecode;
    options.windowLength = config_.windowLength;
    options.windowSlideLength = config_.windowSlideLength;
    return options;
}

// A 1-lane group delegates to the scalar reference simulator at every
// width, so splitting 1-lane tail blocks into their own groups keeps
// wide runs bit-identical to the width-64 runs (whose 1-lane tails
// always were their own groups). For width <= 64 the decomposition is
// unchanged from the pre-SIMD engine.
std::vector<std::pair<uint64_t, int>>
batchGroupSpans(uint64_t shots, uint64_t width)
{
    std::vector<std::pair<uint64_t, int>> spans;
    for (uint64_t first = 0; first < shots;) {
        uint64_t take = std::min<uint64_t>(width, shots - first);
        if (take > 1 && take % 64 == 1)
            --take;
        spans.push_back({first, (int)take});
        first += take;
    }
    return spans;
}

ExperimentResult
MemoryExperiment::runBatched(const PolicyFactory &factory,
                             const std::string &name) const
{
    SessionOptions options;
    options.forceBatched = true;
    ExperimentSession session(*this, factory, name, options);
    return session.runToCompletion();
}

namespace
{

inline int
popcount64(uint64_t word)
{
    return __builtin_popcountll(word);
}

/**
 * Execute one round, honoring ERASER+M's in-round rule: if an LRC'd
 * data qubit reads out as |L>, squash the MOV-back and reset the
 * parity qubit instead (Section 4.6.2).
 */
void
executeRound(FrameSimulator &sim, const RoundSchedule &sched,
             bool multi_level)
{
    const auto &ops = sched.ops;
    if (!multi_level || sched.lrcs.empty()) {
        sim.executeRange(ops.data(), ops.data() + ops.size());
        return;
    }

    size_t await_measure = 0;
    size_t await_mov = 0;
    std::vector<uint8_t> leaked_label(sched.lrcs.size(), 0);
    for (size_t i = 0; i < ops.size(); ++i) {
        if (await_mov < sched.lrcs.size() &&
            i == sched.lrcs[await_mov].movBegin) {
            const auto &span = sched.lrcs[await_mov];
            if (leaked_label[await_mov]) {
                Op reset;
                reset.type = OpType::Reset;
                reset.q0 = span.parity;
                sim.execute(reset);
                i = span.movEnd - 1;
                ++await_mov;
                continue;
            }
            ++await_mov;
        }
        sim.execute(ops[i]);
        if (await_measure < sched.lrcs.size() &&
            i == sched.lrcs[await_measure].measureIndex) {
            leaked_label[await_measure] =
                sim.record().back().leakedLabel ? 1 : 0;
            ++await_measure;
        }
    }
}

} // namespace

void
MemoryExperiment::runShot(uint64_t shot, const PolicyFactory &factory,
                          ExperimentShotStats &stats) const
{
    panicIf(config_.family != CircuitFamily::SurfaceMemory,
            "the scalar per-shot path walks the surface lattice; "
            "compiled families replay on the batch engine");
    const int n_stabs = code_.numStabilizers();
    const int n_data = code_.numData();
    const StabType primary = protectingStabType(config_.basis);

    FrameSimulator sim(code_.numQubits(), config_.em,
                       Rng::forShot(config_.seed, shot));
    // Every round yields one check bit per stabilizer (plain or LRC'd)
    // and the shot ends with the transversal data measurement.
    sim.reserveRecord((size_t)config_.rounds * n_stabs + n_data);
    QecScheduleGenerator qsg(code_, config_.protocol);
    auto policy = factory();

    std::vector<LrcPair> lrcs = policy->firstRound();
    std::vector<uint8_t> prev_flips(n_stabs, 0);
    RoundObservation obs;
    obs.events.resize(n_stabs);
    obs.leakedLabels.resize(n_stabs);
    obs.hadLrc.resize(n_data);
    obs.trueLeakedData.resize(n_data);

    std::vector<uint8_t> flips(n_stabs);

    for (int r = 0; r < config_.rounds; ++r) {
        // Account the scheduling decision against the ground truth at
        // decision time (end of the previous round).
        for (const auto &pair : lrcs)
            obs.hadLrc[pair.data] = 2;   // temp tag: scheduled
        for (int q = 0; q < n_data; ++q) {
            const bool scheduled = obs.hadLrc[q] == 2;
            const bool is_leaked = sim.leaked(q);
            if (scheduled && is_leaked)
                ++stats.tp;
            else if (scheduled && !is_leaked)
                ++stats.fp;
            else if (!scheduled && is_leaked)
                ++stats.fn;
            else
                ++stats.tn;
        }
        stats.lrcsScheduled += lrcs.size();

        const size_t record_mark = sim.record().size();
        RoundSchedule sched = qsg.generate(r, lrcs);
        executeRound(sim, sched, policy->usesMultiLevelReadout());

        // Gather this round's syndrome.
        std::fill(flips.begin(), flips.end(), 0);
        std::fill(obs.leakedLabels.begin(), obs.leakedLabels.end(), 0);
        for (size_t i = record_mark; i < sim.record().size(); ++i) {
            const auto &rec = sim.record()[i];
            if (rec.stab < 0)
                continue;
            flips[rec.stab] = rec.flip ? 1 : 0;
            // |L> labels on normal parity readout feed ERASER+M's LSB;
            // LRC'd data readouts are consumed in-round instead.
            if (!rec.lrcData)
                obs.leakedLabels[rec.stab] =
                    rec.leakedLabel ? 1 : 0;
        }

        if (config_.trackLpr) {
            stats.lprData[r] += sim.countLeaked(0, n_data);
            stats.lprParity[r] +=
                sim.countLeaked(n_data, code_.numQubits());
        }

        // Detection events for the speculation logic.
        for (int s = 0; s < n_stabs; ++s) {
            if (r == 0) {
                // Only the protected-basis checks are deterministic in
                // the first round; the other basis starts random.
                obs.events[s] =
                    code_.stabilizer(s).type == primary ? flips[s]
                                                        : 0;
            } else {
                obs.events[s] = flips[s] ^ prev_flips[s];
            }
        }
        prev_flips = flips;

        obs.round = r;
        std::fill(obs.hadLrc.begin(), obs.hadLrc.end(), 0);
        for (const auto &pair : lrcs)
            obs.hadLrc[pair.data] = 1;
        for (int q = 0; q < n_data; ++q)
            obs.trueLeakedData[q] = sim.leaked(q) ? 1 : 0;

        lrcs = policy->nextRound(obs);
    }

    if (!config_.decode)
        return;

    auto final_ops =
        buildFinalMeasurement(code_, config_.rounds, config_.basis);
    sim.executeRange(final_ops.data(),
                     final_ops.data() + final_ops.size());

    ShotOutcome outcome = extractDefects(code_, config_.basis,
                                         config_.rounds, sim.record());
    const bool predicted = decoder_->decode(outcome.defects);
    const bool error = predicted != outcome.observableFlip;
    stats.logicalErrors += error ? 1 : 0;
    stats.verdictHash ^= verdictMix(shot, error);
}

template <int NW>
void
MemoryExperiment::runGroupT(uint64_t first_shot, int lanes,
                            const PolicyFactory &factory,
                            ExperimentShotStats &stats,
                            ExperimentDecodeContext *ctx) const
{
    using Lane = LaneWord<NW>;
    const CircuitProgram &prog = *program_;
    const uint64_t first = first_shot;
    const int W = lanes;
    const int NB = (W + 63) / 64;
    const int n_stabs = prog.numStabs;
    const int n_data = prog.numData;

    BatchFrameSimulatorT<NW> sim(prog.numQubits, config_.em, W,
                                 config_.seed, first);
    const Lane live = sim.liveMask();
    // Each round emits one record per stabilizer plus, per 64-lane
    // block, one per distinct lane-divergent LRC tail (bounded by the
    // stabilizer count again).
    sim.reserveRecord(
        (size_t)config_.rounds * (1 + (size_t)NB) * n_stabs + n_data);
    // Pin every noise channel's RareStream id up front. Streams are
    // keyed by probability and initialized lazily per 64-lane block,
    // so pre-registration cannot change draw content relative to the
    // hand-wired drivers, which registered on first use.
    sim.bindProgramStreams(prog);

    // Policy evaluation dispatch: a probe instance reports whether the
    // policy has a lane-parallel form. ERASER runs the word-parallel
    // controller (one LTT/PUTT bit-plane set for the group), Uniform
    // policies run one shared instance, and only PerLane policies
    // (Optimal, custom) materialize per-lane observations below.
    std::unique_ptr<LrcPolicy> shared = factory();
    const BatchPolicySpec spec = shared->batchSpec();
    const bool multi_level = shared->usesMultiLevelReadout();
    const bool per_lane = spec.kind == BatchPolicyKind::PerLane;

    panicIf(spec.kind == BatchPolicyKind::Eraser &&
                config_.family != CircuitFamily::SurfaceMemory,
            "the ERASER controller requires the surface-memory family");

    std::vector<std::unique_ptr<LrcPolicy>> policies;
    std::unique_ptr<BatchEraserController<Lane>> controller;
    std::vector<std::vector<LrcPair>> lrcs(W);
    if (per_lane) {
        policies.reserve(W);
        policies.push_back(std::move(shared));
        for (int l = 1; l < W; ++l)
            policies.push_back(factory());
        for (int l = 0; l < W; ++l)
            lrcs[l] = policies[l]->firstRound();
    } else if (spec.kind == BatchPolicyKind::Eraser) {
        controller = std::make_unique<BatchEraserController<Lane>>(
            code_, lookup_, spec);
        const auto first_lrcs = shared->firstRound();
        for (int l = 0; l < W; ++l)
            lrcs[l] = first_lrcs;
    } else {
        // Uniform/Never schedules live in lrcs[0] only; the round
        // loop never consults the other lanes' slots on these paths.
        lrcs[0] = shared->firstRound();
    }

    // The observation arrays hold an all-zero invariant between lanes:
    // per lane only the fired entries are set, the policy consulted,
    // and the same entries cleared again — so the per-lane cost tracks
    // the (sparse, at low p) activity instead of the lattice volume.
    RoundObservation obs;
    obs.events.assign(n_stabs, 0);
    obs.leakedLabels.assign(n_stabs, 0);
    obs.hadLrc.assign(n_data, 0);
    obs.trueLeakedData.assign(n_data, 0);

    std::vector<Lane> flips(n_stabs, Lane{}), labels(n_stabs, Lane{});
    std::vector<Lane> prev_flips(n_stabs, Lane{});
    std::vector<Lane> events(n_stabs, Lane{});
    std::vector<Lane> sched_mask(n_data, Lane{});
    std::vector<Lane> lrc_on_stab(n_stabs, Lane{});
    std::vector<Lane> leak_snapshot(n_data, Lane{});
    // Lane-major scatter arenas: which stabilizers fired / reported
    // |L>, and which data qubits are leaked, per lane (flat, reused).
    std::vector<uint32_t> ev_off((size_t)W + 1), lab_off((size_t)W + 1),
        leak_off((size_t)W + 1);
    std::vector<uint32_t> ev_cur(W), lab_cur(W), leak_cur(W);
    std::vector<int> ev_arena, lab_arena, leak_arena;
    // Divergent LRC tails are collected per 64-lane block in
    // first-insertion order; the program's LRC-slot branch replays
    // them block by block.
    std::vector<IrLrcTail> active[NW];
    std::vector<int> stab_epoch(n_stabs, -1), data_epoch(n_data, -1);
    int epoch = 0;

    for (int r = 0; r < config_.rounds; ++r) {
        // Collect this round's lane-divergent LRC assignments,
        // mirroring buildRoundSchedule's per-lane validation.
        // Controller-produced schedules are valid by construction
        // (DLI allocates from the adjacency lookup with a taken set),
        // so the per-pair validation only runs for per-lane policies,
        // whose nextRound is arbitrary user code.
        std::fill(sched_mask.begin(), sched_mask.end(), Lane{});
        std::fill(lrc_on_stab.begin(), lrc_on_stab.end(), Lane{});
        for (int b = 0; b < NB; ++b)
            active[b].clear();
        if (!per_lane && spec.kind != BatchPolicyKind::Eraser) {
            // Lane-uniform schedule: every live lane executes lane 0's
            // pairs, so the masks and block tails are whole-word. The
            // Uniform capability is claimable by arbitrary policy
            // subclasses, so the pairs are still bounds-checked.
            for (const auto &pair : lrcs[0]) {
                panicIf(pair.stab < 0 || pair.stab >= n_stabs,
                        "LRC references an invalid stabilizer");
                panicIf(pair.data < 0 || pair.data >= n_data,
                        "LRC references an invalid data qubit");
                sched_mask[pair.data] = live;
                lrc_on_stab[pair.stab] = live;
                for (int b = 0; b < NB; ++b)
                    active[b].push_back(
                        {pair.stab, pair.data, laneWord(live, b)});
            }
            stats.lrcsScheduled +=
                (uint64_t)lrcs[0].size() * (uint64_t)W;
        } else {
            for (int l = 0; l < W; ++l) {
                ++epoch;
                const int b = l >> 6;
                const uint64_t bit = uint64_t{1} << (l & 63);
                for (const auto &pair : lrcs[l]) {
                    if (per_lane) {
                        panicIf(pair.stab < 0 || pair.stab >= n_stabs,
                                "LRC references an invalid stabilizer");
                        panicIf(pair.data < 0 || pair.data >= n_data,
                                "LRC references an invalid data qubit");
                        panicIf(stab_epoch[pair.stab] == epoch,
                                "two LRCs share one parity qubit in "
                                "the same round");
                        panicIf(data_epoch[pair.data] == epoch,
                                "one data qubit has two LRCs in the "
                                "same round");
                        stab_epoch[pair.stab] = epoch;
                        data_epoch[pair.data] = epoch;
                        panicIf(!prog.supportContains(pair.stab,
                                                      pair.data),
                                "LRC data qubit is not adjacent to "
                                "its parity qubit");
                    }
                    setLane(sched_mask[pair.data], l);
                    setLane(lrc_on_stab[pair.stab], l);
                    auto it = std::find_if(
                        active[b].begin(), active[b].end(),
                        [&](const IrLrcTail &a) {
                            return a.stab == pair.stab &&
                                   a.data == pair.data;
                        });
                    if (it == active[b].end())
                        active[b].push_back(
                            {pair.stab, pair.data, bit});
                    else
                        it->mask |= bit;
                }
                stats.lrcsScheduled += lrcs[l].size();
            }
        }

        // Account the scheduling decisions against the ground truth at
        // decision time (end of the previous round), word-wise. Only
        // three totals are needed; the quadrant counts follow.
        uint64_t sched_total = 0, leaked_total = 0, tp_round = 0;
        for (int q = 0; q < n_data; ++q) {
            const Lane is_leaked = sim.leakedWord(q) & live;
            leaked_total += (uint64_t)popcountLanes(is_leaked);
            if (anyLane(sched_mask[q])) {
                sched_total +=
                    (uint64_t)popcountLanes(sched_mask[q]);
                tp_round += (uint64_t)popcountLanes(sched_mask[q] &
                                                    is_leaked);
            }
        }
        stats.tp += tp_round;
        stats.fp += sched_total - tp_round;
        stats.fn += leaked_total - tp_round;
        stats.tn += (uint64_t)W * (uint64_t)n_data - sched_total -
                    leaked_total + tp_round;

        const size_t record_mark = sim.record().size();

        // Replay this round of the compiled program: the static
        // segment, the plain readouts (masked off the lanes whose
        // policies LRC'd them under SwapLrc), and the LRC-slot branch
        // expanded to this round's per-block divergent tails.
        // Draw-for-draw identical to the hand-wired round driver it
        // replaced (frozen in exp/handwired_reference.h).
        ProgramLrcFillT<NW> fill;
        fill.lrcOnStab = lrc_on_stab.data();
        fill.blockTails = active;
        fill.multiLevel = multi_level;
        sim.executeProgramRound(prog, r, live, &fill, 1);

        // Gather this round's syndrome words.
        std::fill(flips.begin(), flips.end(), Lane{});
        std::fill(labels.begin(), labels.end(), Lane{});
        for (size_t i = record_mark; i < sim.record().size(); ++i) {
            const auto &rec = sim.record()[i];
            if (rec.stab < 0)
                continue;
            flips[rec.stab] =
                andnot(flips[rec.stab], rec.mask) | rec.flips;
            if (!rec.lrcData)
                labels[rec.stab] =
                    andnot(labels[rec.stab], rec.mask) |
                    rec.leakedLabels;
        }

        if (config_.trackLpr) {
            stats.lprData[r] += (double)sim.countLeaked(0, n_data);
            stats.lprParity[r] +=
                (double)sim.countLeaked(n_data, prog.numQubits);
        }

        // Detection-event planes for the speculation logic. The
        // program records which detector columns are deterministic in
        // round 0 (only the protected-basis checks; the other basis
        // starts random).
        for (int s = 0; s < n_stabs; ++s) {
            if (r == 0) {
                events[s] = prog.detR0[s] ? flips[s] : Lane{};
            } else {
                events[s] = flips[s] ^ prev_flips[s];
            }
        }

        obs.round = r;
        if (controller) {
            // Word-parallel adaptive step: the controller thresholds
            // the event planes for all lanes at once (sched_mask is
            // exactly this round's had-LRC suppression plane) and
            // falls back to per-lane DLI only on speculation-active
            // lanes. No per-lane observation is ever materialized.
            controller->nextRound(events, labels, sched_mask, live,
                                  lrcs);
        } else if (spec.kind == BatchPolicyKind::Uniform) {
            // Round-indexed schedule: one shared instance decides for
            // every lane (stored in lrcs[0] only).
            lrcs[0] = shared->nextRound(obs);
        } else if (spec.kind == BatchPolicyKind::Never) {
            // Nothing ever scheduled; lrcs[0] stays empty.
        } else {
            // Per-lane fallback: materialize each lane's observation
            // and let its policy adapt the next round. Detection
            // events, |L> labels and true-leak bits are word-scanned
            // once into lane-major arenas; each lane then sets only
            // its fired entries, runs its policy, and clears them
            // again.
            //
            // This scatter is NOT subsumed by the circuit IR and must
            // stay: the IR's LRC-slot branch covers per-lane *circuit*
            // divergence (which ops run on which lanes), but PerLane
            // policies are arbitrary user code whose nextRound()
            // consumes a fully materialized scalar RoundObservation to
            // *decide* the next schedule. That decision step is policy
            // evaluation, not circuit replay — no instruction stream
            // can express it, so the engine keeps no equivalent and
            // the lane-major gather/scatter here remains the only
            // bridge from bit-planes to per-lane observations.
            for (int q = 0; q < n_data; ++q)
                leak_snapshot[q] = sim.leakedWord(q);

            std::fill(ev_cur.begin(), ev_cur.end(), 0);
            std::fill(lab_cur.begin(), lab_cur.end(), 0);
            std::fill(leak_cur.begin(), leak_cur.end(), 0);
            for (int s = 0; s < n_stabs; ++s) {
                forEachSetLane(events[s], [&](int l) { ++ev_cur[l]; });
                forEachSetLane(labels[s], [&](int l) { ++lab_cur[l]; });
            }
            for (int q = 0; q < n_data; ++q)
                forEachSetLane(leak_snapshot[q],
                               [&](int l) { ++leak_cur[l]; });
            uint32_t ev_total = 0, lab_total = 0, leak_total = 0;
            for (int l = 0; l < W; ++l) {
                ev_off[l] = ev_total;
                ev_total += ev_cur[l];
                ev_cur[l] = ev_off[l];
                lab_off[l] = lab_total;
                lab_total += lab_cur[l];
                lab_cur[l] = lab_off[l];
                leak_off[l] = leak_total;
                leak_total += leak_cur[l];
                leak_cur[l] = leak_off[l];
            }
            ev_off[W] = ev_total;
            lab_off[W] = lab_total;
            leak_off[W] = leak_total;
            ev_arena.resize(ev_total);
            lab_arena.resize(lab_total);
            leak_arena.resize(leak_total);
            for (int s = 0; s < n_stabs; ++s) {
                forEachSetLane(events[s], [&](int l) {
                    ev_arena[ev_cur[l]++] = s;
                });
                forEachSetLane(labels[s], [&](int l) {
                    lab_arena[lab_cur[l]++] = s;
                });
            }
            for (int q = 0; q < n_data; ++q) {
                forEachSetLane(leak_snapshot[q], [&](int l) {
                    leak_arena[leak_cur[l]++] = q;
                });
            }

            for (int l = 0; l < W; ++l) {
                for (uint32_t k = ev_off[l]; k < ev_off[l + 1]; ++k)
                    obs.events[ev_arena[k]] = 1;
                for (uint32_t k = lab_off[l]; k < lab_off[l + 1]; ++k)
                    obs.leakedLabels[lab_arena[k]] = 1;
                for (uint32_t k = leak_off[l]; k < leak_off[l + 1]; ++k)
                    obs.trueLeakedData[leak_arena[k]] = 1;
                for (const auto &pair : lrcs[l])
                    obs.hadLrc[pair.data] = 1;

                auto next = policies[l]->nextRound(obs);

                for (uint32_t k = ev_off[l]; k < ev_off[l + 1]; ++k)
                    obs.events[ev_arena[k]] = 0;
                for (uint32_t k = lab_off[l]; k < lab_off[l + 1]; ++k)
                    obs.leakedLabels[lab_arena[k]] = 0;
                for (uint32_t k = leak_off[l]; k < leak_off[l + 1];
                     ++k)
                    obs.trueLeakedData[leak_arena[k]] = 0;
                for (const auto &pair : lrcs[l])
                    obs.hadLrc[pair.data] = 0;
                lrcs[l] = std::move(next);
            }
        }
        std::copy(flips.begin(), flips.end(), prev_flips.begin());
    }

    if (!config_.decode)
        return;

    sim.executeProgramFinal(prog, live);

    // Detector extraction reads the program's measure -> detector map
    // (for surface programs it is bit-identical to the lattice walk).
    ctx->extractor.extract(prog.detectors, config_.rounds,
                           sim.record(), W, ctx->syndrome);
    const BatchSyndrome &syndrome = ctx->syndrome;
    if (config_.batchDecode) {
        uint64_t predictions[kMaxBatchWords];
        ctx->pipeline->decodeBatch(syndrome, predictions);
        for (int b = 0; b < NB; ++b) {
            const uint64_t errors =
                (predictions[b] ^ syndrome.observableWords[b]) &
                laneWord(live, b);
            stats.logicalErrors += popcount64(errors);
            // Live block masks are contiguous low bits, so popcount
            // is the block's live lane count.
            const int block_lanes = popcount64(laneWord(live, b));
            for (int i = 0; i < block_lanes; ++i)
                stats.verdictHash ^= verdictMix(
                    first + 64 * (uint64_t)b + i,
                    (errors >> i) & 1);
        }
    } else {
        // Scalar decode-per-shot baseline (perf comparisons only).
        for (int l = 0; l < W; ++l) {
            const std::vector<int> defects(
                syndrome.laneBegin(l),
                syndrome.laneBegin(l) + syndrome.laneSize(l));
            const bool predicted = decoder_->decode(defects);
            const bool error =
                predicted != syndrome.laneObservable(l);
            stats.logicalErrors += error ? 1 : 0;
            stats.verdictHash ^= verdictMix(first + l, error);
        }
    }
}

template void MemoryExperiment::runGroupT<1>(
    uint64_t, int, const PolicyFactory &, ExperimentShotStats &,
    ExperimentDecodeContext *) const;
template void MemoryExperiment::runGroupT<4>(
    uint64_t, int, const PolicyFactory &, ExperimentShotStats &,
    ExperimentDecodeContext *) const;
template void MemoryExperiment::runGroupT<8>(
    uint64_t, int, const PolicyFactory &, ExperimentShotStats &,
    ExperimentDecodeContext *) const;

} // namespace qec
