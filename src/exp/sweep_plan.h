/**
 * @file
 * Declarative experiment grids: the `qec::sweep` front half.
 *
 * A SweepPlan names the axes of an evaluation sweep — distances,
 * physical error rates, round counts, removal protocols, decoder
 * kinds, batch widths, and the set of scheduling policies to compare
 * at every point — plus a prototype ExperimentConfig for everything
 * that does not vary. points() expands the grid into fully-resolved
 * SweepPoints, each carrying a deterministic per-point seed derived
 * from the physical axis tuple (sweepPointSeed), which replaces the
 * per-bench magic seed arithmetic the figure reproductions used to
 * hand-roll. SweepRunner (exp/sweep_runner.h) executes a plan.
 */

#ifndef QEC_EXP_SWEEP_PLAN_H
#define QEC_EXP_SWEEP_PLAN_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exp/experiment_session.h"
#include "exp/memory_experiment.h"

namespace qec
{

/** One entry of the rounds axis: rounds = fixed + perDistance * d. */
struct SweepRounds
{
    int fixed = 0;
    int perDistance = 0;

    int
    resolve(int distance) const
    {
        return fixed + perDistance * distance;
    }

    /** The same absolute round count at every distance. */
    static SweepRounds
    exactly(int rounds)
    {
        return SweepRounds{rounds, 0};
    }

    /** `cycles` QEC cycles: rounds = cycles * d. */
    static SweepRounds
    cycles(int cycles)
    {
        return SweepRounds{0, cycles};
    }
};

/** Builds a per-shot policy factory for one experiment point. */
using PolicyBuilder = std::function<PolicyFactory(
    const RotatedSurfaceCode &, const SwapLookupTable &)>;

/**
 * One entry of the policy axis: a named policy kind, or a custom
 * builder (ablation variants, future-work policies). Implicitly
 * constructible from PolicyKind so plans read
 * `plan.policies = {PolicyKind::Always, PolicyKind::Eraser};`.
 */
struct SweepPolicy
{
    /** Display name; empty derives policyKindName(kind, protocol). */
    std::string name;
    PolicyKind kind = PolicyKind::Eraser;
    /** When set, overrides `kind`. */
    PolicyBuilder custom;

    SweepPolicy() = default;
    SweepPolicy(PolicyKind k) : kind(k) {}
    SweepPolicy(std::string display_name, PolicyBuilder builder)
        : name(std::move(display_name)), custom(std::move(builder))
    {
    }

    /** Resolved display name under a protocol. */
    std::string displayName(RemovalProtocol protocol) const;
};

/**
 * Deterministic per-point seed: a splitmix64-chained hash of the
 * *physical* axis tuple — distance, rounds, basis, removal protocol,
 * and every ErrorModel field that shapes the noise streams. The
 * scheme is a contract: the same axis tuple derives the same seed,
 * forever (any change would silently reshuffle every published
 * number). Decoder kind, batch width, shot count, thread count and
 * policy are deliberately excluded: they do not change the physical
 * scenario, so paired comparisons across those axes (policy tables,
 * decoder ablations, the cross-width bit-identity artifact) share
 * identical noise streams.
 *
 * The circuit family joins the chain only when it is not
 * SurfaceMemory: surface points omit the link entirely, so every
 * seed published before the family axis existed is unchanged.
 */
uint64_t sweepPointSeed(int distance, int rounds, Basis basis,
                        RemovalProtocol protocol, const ErrorModel &em,
                        CircuitFamily family =
                            CircuitFamily::SurfaceMemory);

/** One fully-resolved grid point. */
struct SweepPoint
{
    size_t index = 0;
    int distance = 0;
    double p = 0.0;
    int rounds = 0;
    RemovalProtocol protocol = RemovalProtocol::SwapLrc;
    DecoderKind decoderKind = DecoderKind::Mwpm;
    unsigned batchWidth = 1;
    uint64_t shots = 0;
    uint64_t seed = 0;
    /** The complete config a MemoryExperiment runs this point with. */
    ExperimentConfig config;
};

/** Declarative sweep grid. */
struct SweepPlan
{
    std::string name;

    // ------------------------------------------------------- axes
    std::vector<int> distances{5};
    std::vector<double> ps{1e-3};
    std::vector<SweepRounds> rounds{SweepRounds::cycles(10)};
    /** Empty axes fall back to the base config's single value. */
    std::vector<RemovalProtocol> protocols;
    std::vector<DecoderKind> decoders;
    std::vector<unsigned> widths;
    /** Policies compared at every point (they share the point's
     *  experiment, detector model, decoder, and noise streams). */
    std::vector<SweepPolicy> policies{SweepPolicy(PolicyKind::Eraser)};

    // -------------------------------------------- point prototype
    /**
     * Prototype for everything the axes do not cover: decode switch,
     * LPR tracking, basis, threads, batchDecode, error-model shape
     * (transport model, leakage toggles — only `em.p` is overridden
     * per point), decoder options, cache sizing. base.seed is
     * ignored: seeds come from sweepPointSeed (or fixedSeed).
     */
    ExperimentConfig base;
    /** Per-point shot count; unset uses base.shots everywhere. */
    std::function<uint64_t(int distance, double p)> shotsFor;
    /** Override the derived seeds (interactive what-if runs). */
    std::optional<uint64_t> fixedSeed;
    /** Evaluated between chunks by the runner; off by default. */
    EarlyStopRule earlyStop;

    /**
     * Recoverable whole-plan validation: non-empty axes and policy
     * set, valid code distances, engine-supported widths, and every
     * expanded point's config accepted by validateExperimentConfig.
     * SweepRunner::run validates before executing and surfaces the
     * Status in its summary instead of dying; points() panics on a
     * plan this rejects (documented precondition).
     */
    Status validate() const;

    /**
     * Expand the grid (point order: p, protocol, decoder, width,
     * rounds, distance — distance innermost, so LER-vs-d tables read
     * in row order grouped by everything else).
     */
    std::vector<SweepPoint> points() const;
};

/** Display names shared by the sinks and CLIs. */
const char *protocolName(RemovalProtocol protocol);
const char *decoderKindName(DecoderKind kind);

} // namespace qec

#endif // QEC_EXP_SWEEP_PLAN_H
