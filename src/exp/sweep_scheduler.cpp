#include "exp/sweep_scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <set>
#include <thread>
#include <vector>

#include "base/fault_injection.h"
#include "base/parallel.h"
#include "exp/sweep_exec.h"

namespace qec
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** One planned chunk of a session's round: the unit range, and the
 *  merge of its executed unit partials (filled by the pool). */
struct RoundChunk
{
    SessionChunkPlan plan;
    ExperimentResult acc;
    /** Granted by the Wilson-need ranking beyond the baseline. */
    bool extra = false;
};

/** One live (point, policy) session. */
struct LiveSession
{
    size_t policyIndex = 0;
    /** Null when the policy was already finished in the checkpoint. */
    std::unique_ptr<ExperimentSession> session;
    /** Seconds inherited from the checkpoint partial. */
    double baseSeconds = 0.0;
    /** Unit-execution seconds spent this incarnation (the scheduler
     *  analog of the sequential runner's per-policy wall time). */
    double busySeconds = 0.0;
    /** This round's planned chunks, in commit order. */
    std::vector<RoundChunk> chunks;
    /** Planning cursors: simulate commits while planning ahead. */
    uint64_t simUnit = 0;
    uint64_t simShots = 0;
};

/** One live point: its experiment, sessions, and working record. */
struct LivePoint
{
    SweepPoint point;
    std::shared_ptr<const DetectorModel> dem;
    std::shared_ptr<const Decoder> decoder;
    std::unique_ptr<MemoryExperiment> exp;
    std::vector<LiveSession> sessions;
    PointCheckpoint working;
    /** Execution attempts so far (1 = first). */
    int attempts = 1;
    Clock::time_point started;
    /** Set by a pool task on failure; commit phase resolves it. */
    std::atomic<bool> faulted{false};
    /** Guarded by the merge mutex while workers run. */
    Status faultStatus;
};

/** A retryable-faulted point waiting out its backoff. Its partial
 *  lives in ckpt.points; re-admission rebuilds sessions from it. */
struct RetryGate
{
    int attempts = 1;
    Clock::time_point nextAttempt;
    Clock::time_point started;
};

/** One executable work item: a unit of a planned chunk. */
struct UnitTask
{
    LivePoint *lp = nullptr;
    LiveSession *ls = nullptr;
    RoundChunk *chunk = nullptr;
    uint64_t unit = 0;
};

} // namespace

SweepScheduler::SweepScheduler(const SweepPlan &plan,
                               std::vector<SweepSink *> sinks)
    : plan_(plan), sinks_(std::move(sinks))
{
}

SweepSummary
SweepScheduler::run(const SweepRunOptions &options)
{
    SweepSummary summary;
    summary.scheduled = true;
    summary.status = plan_.validate();
    if (!summary.status.isOk())
        return summary;

    const std::vector<SweepPoint> points = plan_.points();
    SweepCheckpoint ckpt;
    ckpt.planFingerprint =
        SweepCheckpoint::fingerprintPlan(plan_, points);
    if (!prepareSweepCheckpoint(options.checkpoint, ckpt, summary))
        return summary;

    const unsigned workers =
        options.workers ? options.workers : defaultThreadCount();
    summary.workersUsed = workers;
    // The admission window's floor keeps the window (and therefore
    // every allocation decision) identical across the worker counts
    // the determinism tests compare.
    const size_t max_live = options.maxLivePoints
        ? options.maxLivePoints
        : std::max<size_t>(8, workers);
    const int max_attempts = std::max(1, options.maxPointAttempts);

    WorkerPool &pool = sharedWorkerPool();
    pool.ensureWorkers(workers);
    const WorkerPool::Stats pool_before = pool.stats();

    for (SweepSink *sink : sinks_)
        sink->beginSweep(plan_, points);

    SweepBuildCache cache;
    const auto sweep_start = Clock::now();
    double last_save = 0.0;
    uint64_t chunks_since_save = 0;
    uint64_t committed_shots = 0;

    std::map<uint64_t, LivePoint> live;
    std::map<uint64_t, RetryGate> retry_wait;
    /** Finished out of order, awaiting their turn in plan order. */
    std::map<uint64_t, PointResult> completed;
    std::set<uint64_t> resolved_failed;
    std::map<uint64_t, size_t> pos_of;
    for (size_t i = 0; i < points.size(); ++i)
        pos_of[points[i].index] = i;
    size_t next_admit = 0;
    size_t next_emit = 0;
    std::mutex merge_mutex;
    std::vector<UnitTask> tasks;
    std::vector<uint64_t> to_erase;
    uint64_t round_chunks = 0;
    uint64_t planned_round_shots = 0;

    const auto deadlineExpired = [&]() {
        return options.deadlineSeconds > 0.0 &&
               secondsSince(sweep_start) >= options.deadlineSeconds;
    };
    const auto budgetLeft = [&]() -> uint64_t {
        if (options.maxTotalShots == 0)
            return UINT64_MAX;
        return options.maxTotalShots > committed_shots
            ? options.maxTotalShots - committed_shots
            : 0;
    };
    // A failing save is recorded but does not stop the sweep: losing
    // checkpoint durability is strictly better than losing the run.
    const auto saveCheckpoint = [&]() {
        if (!options.checkpoint.enabled())
            return;
        Status st = ckpt.save(options.checkpoint.path);
        if (st.isOk())
            ++summary.checkpointSaves;
        else
            summary.checkpointStatus = st;
        chunks_since_save = 0;
        last_save = secondsSince(sweep_start);
    };
    const auto writeLivePartials = [&]() {
        for (auto &kv : live)
            ckpt.points[kv.first] = kv.second.working;
    };
    const auto flushEmissions = [&]() {
        while (next_emit < points.size()) {
            const uint64_t idx = points[next_emit].index;
            if (resolved_failed.count(idx)) {
                ++next_emit;
                continue;
            }
            auto it = completed.find(idx);
            if (it == completed.end())
                break;
            for (SweepSink *sink : sinks_)
                sink->onPoint(it->second);
            completed.erase(it);
            ++next_emit;
        }
    };
    // Unfinished work beyond what the checkpoint already completed —
    // the "does truncation apply" test for budget exhaustion.
    const auto workRemains = [&]() {
        if (!live.empty() || !retry_wait.empty())
            return true;
        for (size_t p = next_admit; p < points.size(); ++p) {
            auto it = ckpt.points.find(points[p].index);
            if (it == ckpt.points.end() || !it->second.finished)
                return true;
        }
        return false;
    };

    // Resolve a faulted point after its round chunks are discarded:
    // retryable and attempts left -> wait out the backoff and rebuild
    // from the committed partial; otherwise quarantine. Committed
    // progress is kept either way.
    const auto handleFault = [&](LivePoint &lp) {
        for (LiveSession &ls : lp.sessions)
            ls.chunks.clear();
        const Status st = lp.faultStatus;
        ckpt.points[lp.point.index] = lp.working;
        if (!st.isRetryable() || lp.attempts >= max_attempts) {
            ++summary.pointsFailed;
            SweepPointError err;
            err.pointIndex = lp.point.index;
            err.distance = lp.point.distance;
            err.p = lp.point.p;
            err.attempts = lp.attempts;
            err.status = st;
            summary.errors.push_back(std::move(err));
            saveCheckpoint();
            resolved_failed.insert(lp.point.index);
        } else {
            ++summary.retries;
            const double backoff = options.retryBackoffSeconds *
                (double)(1ull << (lp.attempts - 1));
            RetryGate gate;
            gate.attempts = lp.attempts + 1;
            gate.nextAttempt = Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(backoff));
            gate.started = lp.started;
            retry_wait[lp.point.index] = gate;
        }
        to_erase.push_back(lp.point.index);
    };

    const auto pointComplete = [&](const LivePoint &lp) {
        if (lp.faulted.load(std::memory_order_relaxed))
            return false;
        for (const LiveSession &ls : lp.sessions)
            if (ls.session && !ls.session->done())
                return false;
        return !lp.sessions.empty() ||
               plan_.policies.empty();
    };
    const auto finalizePoint = [&](LivePoint &lp) {
        PointResult pr;
        pr.point = lp.point;
        for (LiveSession &ls : lp.sessions) {
            PolicyCheckpoint &pc =
                lp.working.policies[ls.policyIndex];
            if (ls.session) {
                pc.progress = ls.session->progress();
                pc.seconds = ls.baseSeconds + ls.busySeconds;
                pc.finished = true;
                pc.stoppedEarly = ls.session->stoppedEarly();
                pc.truncated = false;
                pr.results.push_back(ls.session->result());
            } else {
                pr.results.push_back(pc.progress.total);
            }
            pr.seconds.push_back(pc.seconds);
            pr.stoppedEarly.push_back(pc.stoppedEarly);
            pr.truncated.push_back(false);
            summary.shotsRun += pr.results.back().shots;
        }
        pr.wallSeconds = secondsSince(lp.started);
        lp.working.finished = true;
        ckpt.points[lp.point.index] = lp.working;
        ++summary.points;
        completed[lp.point.index] = std::move(pr);
        to_erase.push_back(lp.point.index);
        // Completion is a durability milestone even when the chunk
        // cadence did not line up.
        saveCheckpoint();
    };
    const auto finalizePass = [&]() {
        to_erase.clear();
        for (auto &kv : live)
            if (pointComplete(kv.second))
                finalizePoint(kv.second);
        for (uint64_t idx : to_erase)
            live.erase(idx);
        flushEmissions();
    };

    // Admit one point: build its components and sessions, restoring
    // each policy's committed partial when the checkpoint has one.
    // Build failures mark the point faulted for the fault pass.
    const auto admitOne = [&](const SweepPoint &point, int attempts,
                              Clock::time_point started) {
        PointCheckpoint *saved = nullptr;
        auto saved_it = ckpt.points.find(point.index);
        if (saved_it != ckpt.points.end())
            saved = &saved_it->second;
        LivePoint &lp = live[point.index];
        lp.point = point;
        lp.attempts = attempts;
        lp.started = started;
        lp.working = saved ? *saved : PointCheckpoint();
        lp.working.pointIndex = point.index;
        lp.working.seed = point.seed;
        lp.working.policies.resize(plan_.policies.size());
        try {
            StatusOr<SweepBuildCache::Components> built =
                cache.build(point, plan_.base.decoderOptions,
                            summary);
            if (!built.ok()) {
                lp.faultStatus = built.status();
                lp.faulted.store(true);
                return;
            }
            SweepBuildCache::Components comp =
                std::move(built).value();
            lp.dem = comp.dem;
            lp.decoder = comp.decoder;
            lp.exp = std::make_unique<MemoryExperiment>(
                *comp.code, point.config, lp.dem, lp.decoder,
                comp.program);
            for (size_t pi = 0; pi < plan_.policies.size(); ++pi) {
                PolicyCheckpoint &pc = lp.working.policies[pi];
                LiveSession ls;
                ls.policyIndex = pi;
                ls.baseSeconds = pc.seconds;
                if (!pc.finished) {
                    const SweepPolicy &policy = plan_.policies[pi];
                    PolicyFactory factory = policy.custom
                        ? policy.custom(*comp.code, lp.exp->lookup())
                        : makePolicyFactory(
                              policy.kind, *comp.code,
                              lp.exp->lookup(),
                              point.protocol == RemovalProtocol::Dqlr);
                    SessionOptions session_options;
                    session_options.earlyStop = plan_.earlyStop;
                    ls.session = std::make_unique<ExperimentSession>(
                        *lp.exp, std::move(factory),
                        policy.displayName(point.protocol),
                        session_options);
                    const bool has_partial =
                        pc.progress.total.shots > 0 ||
                        pc.progress.nextSpan > 0 ||
                        pc.progress.scalarNext > 0 ||
                        pc.progress.stopped;
                    if (has_partial) {
                        Status st = ls.session->restore(pc.progress);
                        if (!st.isOk()) {
                            lp.faultStatus = st;
                            lp.faulted.store(true);
                            lp.sessions.push_back(std::move(ls));
                            return;
                        }
                    }
                    ls.session->ensureWorkerSlots(workers);
                }
                lp.sessions.push_back(std::move(ls));
            }
        } catch (const std::bad_alloc &) {
            lp.faultStatus = resourceExhaustedError(
                "allocation failed while building sweep point " +
                std::to_string(point.index));
            lp.faulted.store(true);
        }
    };

    // Fill the admission window: expired retries first (their plan
    // position precedes anything new), then new points in plan order.
    // Checkpoint-finished points re-emit without taking a slot.
    // Returns false on the fatal doctored-checkpoint case.
    const auto admitPoints = [&]() -> bool {
        for (auto it = retry_wait.begin();
             it != retry_wait.end() && live.size() < max_live;) {
            if (Clock::now() >= it->second.nextAttempt) {
                admitOne(points[pos_of[it->first]],
                         it->second.attempts, it->second.started);
                it = retry_wait.erase(it);
            } else {
                ++it;
            }
        }
        while (next_admit < points.size() &&
               live.size() < max_live) {
            const SweepPoint &point = points[next_admit];
            auto saved_it = ckpt.points.find(point.index);
            if (saved_it != ckpt.points.end()) {
                if (saved_it->second.seed != point.seed) {
                    // The plan fingerprint already covers every
                    // derived seed; a mismatch here means the file
                    // was doctored around the CRC. Refuse rather
                    // than resume garbage.
                    summary.status = dataLossError(
                        "checkpoint point " +
                        std::to_string(point.index) +
                        " carries a different derived seed than the "
                        "plan");
                    return false;
                }
                if (saved_it->second.finished) {
                    // Completed in a previous incarnation: re-emit
                    // the stored result so the sink artifact of the
                    // resumed run is complete.
                    PointResult pr;
                    pr.point = point;
                    for (const PolicyCheckpoint &pc :
                         saved_it->second.policies) {
                        pr.results.push_back(pc.progress.total);
                        pr.seconds.push_back(pc.seconds);
                        pr.stoppedEarly.push_back(pc.stoppedEarly);
                        pr.truncated.push_back(false);
                        summary.shotsRun += pc.progress.total.shots;
                    }
                    ++summary.points;
                    ++summary.pointsResumed;
                    completed[point.index] = std::move(pr);
                    ++next_admit;
                    continue;
                }
            }
            admitOne(point, 1, Clock::now());
            ++next_admit;
        }
        return true;
    };

    const auto faultPass = [&]() {
        to_erase.clear();
        for (auto &kv : live)
            if (kv.second.faulted.load())
                handleFault(kv.second);
        for (uint64_t idx : to_erase)
            live.erase(idx);
    };

    // Plan one more chunk for a session, exactly as its own runChunk
    // loop would size it (shrinking near a shot cap, capped by the
    // round's remaining budget). Returns false when the session is
    // fully planned or the budget is spoken for.
    const auto planOne = [&](LiveSession &ls, bool extra) -> bool {
        ExperimentSession &s = *ls.session;
        if (ls.simUnit >= s.totalUnits())
            return false;
        uint64_t want = s.defaultChunkShotsAt(ls.simShots);
        if (options.maxTotalShots) {
            const uint64_t left = budgetLeft();
            if (left <= planned_round_shots)
                return false;
            want = std::min(want, left - planned_round_shots);
        }
        RoundChunk rc;
        rc.plan = s.planChunkAt(ls.simUnit, want);
        if (rc.plan.empty())
            return false;
        rc.extra = extra;
        ls.simUnit = rc.plan.endUnit;
        ls.simShots += rc.plan.shots;
        planned_round_shots += rc.plan.shots;
        if (extra)
            summary.shotsReallocated += rc.plan.shots;
        ls.chunks.push_back(std::move(rc));
        ++round_chunks;
        return true;
    };

    while (true) {
        finalizePass();
        if (live.empty() && retry_wait.empty() &&
            next_admit >= points.size())
            break;
        if ((deadlineExpired() || budgetLeft() == 0) &&
            workRemains()) {
            summary.truncated = true;
            if (budgetLeft() == 0)
                summary.budgetExhausted = true;
            for (auto &kv : live) {
                LivePoint &lp = kv.second;
                for (LiveSession &ls : lp.sessions) {
                    if (!ls.session)
                        continue;
                    PolicyCheckpoint &pc =
                        lp.working.policies[ls.policyIndex];
                    pc.truncated = !pc.finished;
                }
            }
            writeLivePartials();
            saveCheckpoint();
            break;
        }
        if (!admitPoints()) {
            writeLivePartials();
            saveCheckpoint();
            break;
        }
        faultPass();
        finalizePass();
        if (live.empty()) {
            if (retry_wait.empty() && next_admit >= points.size())
                break;
            // Every live candidate is waiting out a retry backoff;
            // yield briefly instead of spinning on admission.
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            continue;
        }

        // ---------------------------------------------- allocation
        // Base pass: one chunk per live session, in fixed (point,
        // policy) order — the fair baseline, never wasted work.
        tasks.clear();
        round_chunks = 0;
        planned_round_shots = 0;
        for (auto &kv : live) {
            for (LiveSession &ls : kv.second.sessions) {
                if (!ls.session || ls.session->done())
                    continue;
                ls.chunks.clear();
                ls.simUnit = ls.session->nextUnit();
                ls.simShots = ls.session->shotsRun();
                planOne(ls, false);
            }
        }
        // Adaptive extras: as many additional chunks as the baseline
        // granted, handed to the sessions whose Wilson intervals are
        // widest relative to the precision target (committed counters
        // only — worker-count independent). Without a precision rule
        // the need is the remaining-shots gap; sessions whose base
        // chunk already covers the whole remainder take nothing.
        uint64_t extras = round_chunks;
        struct Cand
        {
            LiveSession *ls;
            double need;
            int granted;
        };
        std::vector<Cand> cands;
        for (auto &kv : live) {
            for (LiveSession &ls : kv.second.sessions) {
                if (!ls.session || ls.session->done())
                    continue;
                const ExperimentResult &r = ls.session->result();
                double need;
                if (plan_.earlyStop.targetRelPrecision > 0.0)
                    need = wilsonRelHalfWidth(r.logicalErrors,
                                              r.shots,
                                              plan_.earlyStop.z) /
                        plan_.earlyStop.targetRelPrecision;
                else
                    need = (double)(ls.session->shotsPlanned() -
                                    ls.session->shotsRun());
                cands.push_back(Cand{&ls, need, 0});
            }
        }
        std::stable_sort(cands.begin(), cands.end(),
                         [](const Cand &a, const Cand &b) {
                             return a.need > b.need;
                         });
        constexpr int kMaxExtraChunks = 3;
        bool granted_any = true;
        while (extras > 0 && granted_any) {
            granted_any = false;
            for (Cand &c : cands) {
                if (extras == 0)
                    break;
                if (c.granted >= kMaxExtraChunks)
                    continue;
                if (!planOne(*c.ls, true))
                    continue;
                ++c.granted;
                --extras;
                granted_any = true;
            }
        }

        // ------------------------------------------------ dispatch
        for (auto &kv : live) {
            LivePoint &lp = kv.second;
            for (LiveSession &ls : lp.sessions)
                for (RoundChunk &rc : ls.chunks)
                    for (uint64_t u = rc.plan.beginUnit;
                         u < rc.plan.endUnit; ++u)
                        tasks.push_back(UnitTask{&lp, &ls, &rc, u});
        }
        if (tasks.empty())
            continue;
        ++summary.schedulerRounds;
        summary.chunksDispatched += round_chunks;

        pool.run(
            tasks.size(),
            [&](unsigned worker, uint64_t i) {
                UnitTask &t = tasks[i];
                if (t.lp->faulted.load(std::memory_order_relaxed))
                    return;
                try {
                    if (QEC_FAULT_POINT("sweep.unit")) {
                        std::lock_guard<std::mutex> lock(merge_mutex);
                        if (!t.lp->faulted.exchange(true))
                            t.lp->faultStatus = unavailableError(
                                "injected fault: sweep.unit");
                        return;
                    }
                    const auto unit_start = Clock::now();
                    ExperimentResult part =
                        t.ls->session->runPlannedUnit(t.unit, worker);
                    const double dt = secondsSince(unit_start);
                    std::lock_guard<std::mutex> lock(merge_mutex);
                    t.chunk->acc.merge(part);
                    t.ls->busySeconds += dt;
                } catch (const std::bad_alloc &) {
                    std::lock_guard<std::mutex> lock(merge_mutex);
                    if (!t.lp->faulted.exchange(true))
                        t.lp->faultStatus = resourceExhaustedError(
                            "allocation failed while executing sweep "
                            "point " +
                            std::to_string(t.lp->point.index));
                }
            },
            workers);

        // -------------------------------------------------- commit
        // Single-threaded, fixed (point, policy, chunk) order: the
        // committed boundary sequence — and with it every early-stop
        // decision and fault-site poll — is identical at any worker
        // count. Chunks planned past a boundary where the stop rule
        // fired were speculative; discard them uncommitted.
        to_erase.clear();
        for (auto &kv : live) {
            LivePoint &lp = kv.second;
            bool fault = lp.faulted.load();
            if (!fault) {
                for (LiveSession &ls : lp.sessions) {
                    if (!ls.session)
                        continue;
                    for (RoundChunk &rc : ls.chunks) {
                        if (ls.session->done()) {
                            summary.shotsDiscarded += rc.plan.shots;
                            continue;
                        }
                        try {
                            // The in-process SIGKILL stand-in: armed
                            // with Kind::Crash this throws
                            // SimulatedCrash out of run() (nothing
                            // below catches it), and the checkpoint
                            // saved at the previous boundary is what
                            // a rerun resumes from. Polled once per
                            // committed chunk, in commit order —
                            // parity with the sequential runner.
                            if (QEC_FAULT_POINT("sweep.chunk")) {
                                lp.faultStatus = unavailableError(
                                    "injected fault: sweep.chunk");
                                fault = true;
                            }
                        } catch (const std::bad_alloc &) {
                            lp.faultStatus = resourceExhaustedError(
                                "allocation failed while committing "
                                "sweep point " +
                                std::to_string(lp.point.index));
                            fault = true;
                        }
                        if (fault)
                            break;
                        ls.session->commitChunk(rc.plan, rc.acc);
                        committed_shots += rc.plan.shots;
                        PolicyCheckpoint &pc =
                            lp.working.policies[ls.policyIndex];
                        pc.progress = ls.session->progress();
                        pc.seconds = ls.baseSeconds + ls.busySeconds;
                        pc.finished = ls.session->done();
                        pc.stoppedEarly = ls.session->stoppedEarly();
                        ++chunks_since_save;
                        if (options.checkpoint.enabled() &&
                            (chunks_since_save >=
                                 options.checkpoint.everyChunks ||
                             (options.checkpoint.everySeconds > 0.0 &&
                              secondsSince(sweep_start) - last_save >=
                                  options.checkpoint.everySeconds))) {
                            writeLivePartials();
                            saveCheckpoint();
                        }
                    }
                    ls.chunks.clear();
                    if (fault)
                        break;
                }
            }
            if (fault || lp.faulted.load()) {
                lp.faulted.store(true);
                handleFault(lp);
                continue;
            }
            if (pointComplete(lp))
                finalizePoint(lp);
        }
        for (uint64_t idx : to_erase)
            live.erase(idx);
        flushEmissions();
    }

    // Truncation (or a fatal checkpoint) can strand completed points
    // behind an unfinished gap in plan order; emit them anyway —
    // finished work is never hidden, and the gap is exactly the
    // not-yet-finished points the resumed run will fill in.
    flushEmissions();
    for (auto &kv : completed)
        for (SweepSink *sink : sinks_)
            sink->onPoint(kv.second);
    completed.clear();

    if (summary.status.isOk() && summary.pointsFailed > 0 &&
        summary.points == 0)
        summary.status = summary.errors.front().status;

    summary.seconds = secondsSince(sweep_start);
    const WorkerPool::Stats pool_after = pool.stats();
    const double busy =
        pool_after.busySeconds - pool_before.busySeconds;
    if (summary.seconds > 0.0 && workers > 0)
        summary.poolUtilization = std::min(
            1.0, busy / ((double)workers * summary.seconds));
    for (SweepSink *sink : sinks_)
        sink->endSweep(summary);
    return summary;
}

} // namespace qec
