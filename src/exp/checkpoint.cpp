#include "exp/checkpoint.h"

#include <cstring>

#include "base/atomic_file.h"
#include "base/fault_injection.h"

namespace qec
{

namespace
{

constexpr char kMagic[8] = {'q', 'e', 'c', '.', 'c', 'k', 'p', 't'};
constexpr uint32_t kVersion = 1;

inline uint64_t
splitmixStep(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

inline uint64_t
chain(uint64_t h, uint64_t field)
{
    return splitmixStep(h ^ field);
}

inline uint64_t
doubleBits(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

// --------------------------------------------------- payload writer

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back((char)((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back((char)((v >> (8 * i)) & 0xff));
}

void
putF64(std::string &out, double v)
{
    putU64(out, doubleBits(v));
}

void
putBool(std::string &out, bool v)
{
    out.push_back(v ? 1 : 0);
}

void
putString(std::string &out, const std::string &s)
{
    putU64(out, s.size());
    out.append(s);
}

void
putF64Vector(std::string &out, const std::vector<double> &v)
{
    putU64(out, v.size());
    for (double x : v)
        putF64(out, x);
}

// --------------------------------------------------- payload reader

/**
 * Bounds-checked cursor over the payload. Every read checks the
 * remaining length first and latches failure, so a truncated or
 * garbage payload can never read out of bounds or allocate absurd
 * vectors — it just turns into one DataLoss at the end.
 */
class Reader
{
  public:
    explicit Reader(const std::string &bytes)
        : data_(bytes.data()), size_(bytes.size())
    {
    }

    bool
    ok() const
    {
        return ok_;
    }

    bool
    atEnd() const
    {
        return pos_ == size_;
    }

    uint32_t
    u32()
    {
        if (!take(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= (uint32_t)(uint8_t)data_[pos_ - 4 + i] << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        if (!take(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= (uint64_t)(uint8_t)data_[pos_ - 8 + i] << (8 * i);
        return v;
    }

    double
    f64()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    bool
    boolean()
    {
        if (!take(1))
            return false;
        return data_[pos_ - 1] != 0;
    }

    std::string
    string()
    {
        uint64_t n = u64();
        if (!take(n))
            return std::string();
        return std::string(data_ + pos_ - n, (size_t)n);
    }

    std::vector<double>
    f64Vector()
    {
        uint64_t n = u64();
        // Each element needs 8 payload bytes; reject counts that the
        // remaining buffer cannot possibly hold before reserving.
        if (!ok_ || n > (size_ - pos_) / 8) {
            ok_ = false;
            return {};
        }
        std::vector<double> v;
        v.reserve((size_t)n);
        for (uint64_t i = 0; i < n; ++i)
            v.push_back(f64());
        return v;
    }

  private:
    bool
    take(uint64_t n)
    {
        if (!ok_ || n > size_ - pos_) {
            ok_ = false;
            return false;
        }
        pos_ += (size_t)n;
        return true;
    }

    const char *data_;
    size_t size_;
    size_t pos_ = 0;
    bool ok_ = true;
};

// ----------------------------------- ExperimentResult serialization

void
putResult(std::string &out, const ExperimentResult &r)
{
    putString(out, r.policy);
    putU64(out, r.shots);
    putU64(out, r.logicalErrors);
    putU64(out, r.tp);
    putU64(out, r.fp);
    putU64(out, r.tn);
    putU64(out, r.fn);
    putU64(out, r.lrcsScheduled);
    putU64(out, r.roundsTotal);
    putU64(out, r.decodedShots);
    putU64(out, r.zeroDefectShots);
    putU64(out, r.syndromeCacheHits);
    putU64(out, r.componentsTotal);
    putU64(out, r.componentCacheHits);
    putU64(out, r.componentsDecoded);
    putU64(out, r.guardFallbackShots);
    putU64(out, r.windowsDecoded);
    putU64(out, r.verdictFingerprint);
    putU32(out, (uint32_t)r.numDataQubits);
    putU32(out, (uint32_t)r.numParityQubits);
    putF64Vector(out, r.lprDataSum);
    putF64Vector(out, r.lprParitySum);
}

ExperimentResult
readResult(Reader &in)
{
    ExperimentResult r;
    r.policy = in.string();
    r.shots = in.u64();
    r.logicalErrors = in.u64();
    r.tp = in.u64();
    r.fp = in.u64();
    r.tn = in.u64();
    r.fn = in.u64();
    r.lrcsScheduled = in.u64();
    r.roundsTotal = in.u64();
    r.decodedShots = in.u64();
    r.zeroDefectShots = in.u64();
    r.syndromeCacheHits = in.u64();
    r.componentsTotal = in.u64();
    r.componentCacheHits = in.u64();
    r.componentsDecoded = in.u64();
    r.guardFallbackShots = in.u64();
    r.windowsDecoded = in.u64();
    r.verdictFingerprint = in.u64();
    r.numDataQubits = (int)in.u32();
    r.numParityQubits = (int)in.u32();
    r.lprDataSum = in.f64Vector();
    r.lprParitySum = in.f64Vector();
    return r;
}

} // namespace

// ----------------------------------------------------- fingerprint

// The field order is part of the artifact contract, like
// sweepPointSeed's: append new fields at the end, never reorder.
uint64_t
SweepCheckpoint::fingerprintPlan(const SweepPlan &plan,
                                 const std::vector<SweepPoint> &points)
{
    uint64_t h = 0x7165632e636b7074ull; // "qec.ckpt"
    h = chain(h, points.size());
    for (const SweepPoint &point : points) {
        h = chain(h, point.seed);
        h = chain(h, point.shots);
        h = chain(h, (uint64_t)point.distance);
        h = chain(h, (uint64_t)point.rounds);
        h = chain(h, (uint64_t)point.config.basis);
        h = chain(h, (uint64_t)point.protocol);
        h = chain(h, (uint64_t)point.decoderKind);
        h = chain(h, point.batchWidth);
        h = chain(h, doubleBits(point.p));
        h = chain(h, point.config.decode ? 1 : 0);
        h = chain(h, point.config.trackLpr ? 1 : 0);
        h = chain(h, point.config.batchDecode ? 1 : 0);
        h = chain(h, (uint64_t)point.config.windowLength);
        h = chain(h, (uint64_t)point.config.windowSlideLength);
    }
    h = chain(h, plan.policies.size());
    for (const SweepPolicy &policy : plan.policies) {
        // Resolve under the base protocol: per-point protocol is
        // already fingerprinted above, and the *set* of policies is
        // what identifies the result columns.
        const std::string name = policy.displayName(plan.base.protocol);
        uint64_t nh = name.size();
        for (char c : name)
            nh = chain(nh, (uint8_t)c);
        h = chain(h, nh);
    }
    h = chain(h, doubleBits(plan.earlyStop.targetRelPrecision));
    h = chain(h, doubleBits(plan.earlyStop.z));
    h = chain(h, plan.earlyStop.minErrors);
    h = chain(h, plan.earlyStop.maxShots);
    h = chain(h, plan.earlyStop.checkEvery);
    return h;
}

// --------------------------------------------------- serialization

std::string
SweepCheckpoint::serialize() const
{
    std::string payload;
    putU64(payload, planFingerprint);
    putU64(payload, points.size());
    for (const auto &entry : points) {
        const PointCheckpoint &point = entry.second;
        putU64(payload, point.pointIndex);
        putU64(payload, point.seed);
        putBool(payload, point.finished);
        putU64(payload, point.policies.size());
        for (const PolicyCheckpoint &policy : point.policies) {
            putBool(payload, policy.finished);
            putBool(payload, policy.stoppedEarly);
            putBool(payload, policy.truncated);
            putBool(payload, policy.progress.stopped);
            putF64(payload, policy.seconds);
            putU64(payload, policy.progress.nextSpan);
            putU64(payload, policy.progress.scalarNext);
            putResult(payload, policy.progress.total);
        }
    }

    std::string out;
    out.append(kMagic, sizeof(kMagic));
    putU32(out, kVersion);
    putU32(out, crc32(payload.data(), payload.size()));
    putU64(out, payload.size());
    out.append(payload);
    return out;
}

StatusOr<SweepCheckpoint>
SweepCheckpoint::deserialize(const std::string &bytes)
{
    constexpr size_t kHeaderSize = sizeof(kMagic) + 4 + 4 + 8;
    if (bytes.size() < kHeaderSize)
        return dataLossError(
            "checkpoint is truncated (shorter than its header)");
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        return dataLossError("checkpoint has a bad magic number "
                             "(not a qec.ckpt artifact)");

    const auto headerU32 = [&](size_t offset) {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= (uint32_t)(uint8_t)bytes[offset + i] << (8 * i);
        return v;
    };
    const auto headerU64 = [&](size_t offset) {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= (uint64_t)(uint8_t)bytes[offset + i] << (8 * i);
        return v;
    };
    const uint32_t version = headerU32(sizeof(kMagic));
    if (version != kVersion)
        return dataLossError(
            "checkpoint version " + std::to_string(version) +
            " is not supported (expected " +
            std::to_string(kVersion) + ")");
    const uint32_t stored_crc = headerU32(sizeof(kMagic) + 4);
    const uint64_t payload_len = headerU64(sizeof(kMagic) + 8);
    if (payload_len != bytes.size() - kHeaderSize)
        return dataLossError(
            "checkpoint payload length mismatch (file is torn or "
            "truncated)");
    const char *payload = bytes.data() + kHeaderSize;
    if (crc32(payload, (size_t)payload_len) != stored_crc)
        return dataLossError(
            "checkpoint CRC mismatch (file is corrupt)");

    const std::string payload_bytes(payload, (size_t)payload_len);
    Reader body(payload_bytes);
    SweepCheckpoint ckpt;
    ckpt.planFingerprint = body.u64();
    const uint64_t num_points = body.u64();
    for (uint64_t i = 0; i < num_points && body.ok(); ++i) {
        PointCheckpoint point;
        point.pointIndex = body.u64();
        point.seed = body.u64();
        point.finished = body.boolean();
        const uint64_t num_policies = body.u64();
        // A policy record is >= 36 bytes; reject impossible counts
        // before reserving.
        if (num_policies > payload_len / 36)
            return dataLossError(
                "checkpoint policy count is implausible (corrupt "
                "payload)");
        point.policies.reserve((size_t)num_policies);
        for (uint64_t j = 0; j < num_policies && body.ok(); ++j) {
            PolicyCheckpoint policy;
            policy.finished = body.boolean();
            policy.stoppedEarly = body.boolean();
            policy.truncated = body.boolean();
            policy.progress.stopped = body.boolean();
            policy.seconds = body.f64();
            policy.progress.nextSpan = body.u64();
            policy.progress.scalarNext = body.u64();
            policy.progress.total = readResult(body);
            point.policies.push_back(std::move(policy));
        }
        const uint64_t index = point.pointIndex;
        if (ckpt.points.count(index))
            return dataLossError(
                "checkpoint contains duplicate point records");
        ckpt.points.emplace(index, std::move(point));
    }
    if (!body.ok() || !body.atEnd())
        return dataLossError(
            "checkpoint payload is malformed (CRC-valid but "
            "structurally inconsistent)");
    return ckpt;
}

Status
SweepCheckpoint::save(const std::string &path) const
{
    if (QEC_FAULT_POINT("checkpoint.save"))
        return unavailableError(
            "injected fault: checkpoint.save");
    const std::string bytes = serialize();
    return writeFileAtomic(path, bytes.data(), bytes.size());
}

StatusOr<SweepCheckpoint>
SweepCheckpoint::load(const std::string &path)
{
    std::string bytes;
    Status st = readFile(path, bytes);
    if (!st.isOk())
        return st;
    return deserialize(bytes);
}

} // namespace qec
