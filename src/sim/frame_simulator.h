/**
 * @file
 * Leakage-aware Pauli-frame simulator.
 *
 * This is the substrate the paper obtained by privately extending Stim:
 * a frame simulator tracks, per qubit, the X/Z Pauli difference between
 * the noisy execution and a noiseless reference execution, plus a
 * leakage flag. Measurement records report the *flip* of each outcome
 * relative to the reference, which is exactly what detectors and the
 * decoder consume, and is independent of the reference's random
 * stabilizer projections.
 *
 * Leakage semantics (Section 5.2.2):
 *  - frames do not propagate through a CNOT touching a leaked qubit;
 *  - the unleaked operand of such a CNOT receives a uniformly random
 *    Pauli, and with probability pTransport the leakage moves
 *    (Conservative: copies; Exchange: swaps) to it;
 *  - a two-level measurement of a leaked qubit returns a random bit;
 *  - reset clears leakage; seepage returns a leaked qubit to a random
 *    computational state.
 */

#ifndef QEC_SIM_FRAME_SIMULATOR_H
#define QEC_SIM_FRAME_SIMULATOR_H

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "code/circuit.h"
#include "code/types.h"
#include "sim/error_model.h"

namespace qec
{

/** One measurement outcome, as recorded by the simulator. */
struct MeasureRecord
{
    int qubit = -1;
    int stab = -1;          ///< Stabilizer reported (-1 for data finals).
    int round = -1;
    bool flip = false;      ///< Outcome relative to noiseless reference.
    bool leakedLabel = false; ///< Multi-level discriminator flagged |L>.
    bool finalData = false;
    bool lrcData = false;   ///< Data qubit measured on behalf of an LRC.
};

/**
 * Executes circuits over the frame + leakage state. One instance per
 * shot (or reset() between shots); not thread-safe across shots.
 */
class FrameSimulator
{
  public:
    FrameSimulator(int num_qubits, const ErrorModel &em, Rng rng);

    /** Clear frames, leakage and the measurement record. */
    void reset();

    /** Execute one operation with noise. */
    void execute(const Op &op);

    /** Execute a span of operations. */
    void executeRange(const Op *begin, const Op *end);

    /** Execute a whole circuit from a clean state. */
    void run(const Circuit &circuit);

    /** Measurement record accumulated so far. */
    const std::vector<MeasureRecord> & record() const { return record_; }

    /** Pre-size the record so the shot loop never reallocates it. */
    void reserveRecord(size_t measurements)
    {
        record_.reserve(record_.size() + measurements);
    }

    int numQubits() const { return (int)leaked_.size(); }
    bool leaked(int q) const { return leaked_[q] != 0; }
    bool xFrame(int q) const { return x_[q] != 0; }
    bool zFrame(int q) const { return z_[q] != 0; }
    /** Number of currently leaked qubits (for LPR accounting). */
    int countLeaked(int first, int last) const;

    /** Test/DEM hook: XOR a Pauli into a qubit's frame. */
    void injectPauli(int q, Pauli p);
    /** Test hook: force a qubit's leakage state. */
    void setLeaked(int q, bool leaked);

    const ErrorModel & errorModel() const { return em_; }
    Rng & rng() { return rng_; }

  private:
    void opDataNoise(const Op &op);
    void opReset(const Op &op);
    void opH(const Op &op);
    void opCnot(const Op &op);
    void opLeakageIswap(const Op &op);
    void opMeasure(const Op &op, bool x_basis);

    /** Apply depolarizing/leak/seepage after a two-qubit op. */
    void twoQubitNoise(int a, int b);
    void maybeLeak(int q);
    void maybeSeep(int q);
    void applyRandomPauli(int q);

    ErrorModel em_;
    Rng rng_;
    std::vector<uint8_t> x_;
    std::vector<uint8_t> z_;
    std::vector<uint8_t> leaked_;
    std::vector<MeasureRecord> record_;
};

} // namespace qec

#endif // QEC_SIM_FRAME_SIMULATOR_H
