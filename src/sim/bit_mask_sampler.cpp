#include "sim/bit_mask_sampler.h"

#include <cmath>

namespace qec
{

uint64_t
bernoulliGeometricGap(Rng &rng, double log1mp)
{
    // Number of failures before the next success of a Bernoulli(p)
    // stream: floor(log(U) / log(1-p)) with U uniform on (0, 1].
    double u = (double)(rng.next() >> 11) * 0x1.0p-53;
    if (u <= 0.0)
        u = 0x1.0p-53;
    const double gap = std::log(u) / log1mp;
    // Clamp: a gap beyond any realistic trial horizon means "never".
    if (gap >= 0x1.0p62)
        return uint64_t{1} << 62;
    return (uint64_t)gap;
}

uint64_t
bernoulliRareMask(Rng &rng, double log1mp, uint64_t &skip, int nlanes)
{
    const uint64_t n = (uint64_t)nlanes;
    if (skip >= n) {
        skip -= n;
        return 0;
    }
    uint64_t mask = 0;
    uint64_t pos = skip;
    while (pos < n) {
        mask |= uint64_t{1} << pos;
        pos += 1 + bernoulliGeometricGap(rng, log1mp);
    }
    skip = pos - n;
    return mask;
}

uint64_t
bernoulliDenseMask(Rng &rng, double p, int nlanes)
{
    // Lane-parallel evaluation of U < p by comparing binary digits of
    // each lane's uniform U against the digits of p, most significant
    // first. `eq` holds lanes whose digits so far equal p's prefix.
    uint64_t lt = 0;
    uint64_t eq = laneMask(nlanes);
    double frac = p;
    for (int i = 0; i < 64 && eq != 0; ++i) {
        frac *= 2.0;
        const bool digit = frac >= 1.0;
        if (digit)
            frac -= 1.0;
        const uint64_t w = rng.next();
        if (digit) {
            lt |= eq & ~w;
            eq &= w;
        } else {
            eq &= ~w;
        }
        if (frac <= 0.0)
            break;
    }
    // Exhausted digits with lanes still equal: U == p exactly, not
    // less-than; those lanes stay clear.
    return lt;
}

BernoulliMaskSampler::Stream &
BernoulliMaskSampler::streamFor(double p)
{
    for (auto &stream : streams_) {
        if (stream.p == p)
            return stream;
    }
    Stream stream;
    stream.p = p;
    stream.log1mp = std::log1p(-p);
    streams_.push_back(stream);
    auto &created = streams_.back();
    created.skip = bernoulliGeometricGap(*rng_, created.log1mp);
    return created;
}

uint64_t
BernoulliMaskSampler::drawRare(Stream &stream, int nlanes)
{
    return bernoulliRareMask(*rng_, stream.log1mp, stream.skip,
                             nlanes);
}

uint64_t
BernoulliMaskSampler::drawDense(double p, int nlanes)
{
    return bernoulliDenseMask(*rng_, p, nlanes);
}

uint64_t
BernoulliMaskSampler::drawSlow(double p, int nlanes)
{
    if (p <= 0.0 || nlanes <= 0)
        return 0;
    if (p >= 1.0)
        return laneMask(nlanes);
    if (p < kRareThreshold)
        return drawRare(streamFor(p), nlanes);
    return drawDense(p, nlanes);
}

} // namespace qec
