/**
 * @file
 * Circuit-level error model parameters (paper Section 5.2).
 *
 * The defaults reproduce the paper's configuration: physical error rate
 * p = 1e-3, leakage injection/seepage at 0.1p, leakage transport with
 * probability 0.1 per CNOT involving a leaked qubit, and a multi-level
 * discriminator that misses a leaked state at rate 10p.
 */

#ifndef QEC_SIM_ERROR_MODEL_H
#define QEC_SIM_ERROR_MODEL_H

namespace qec
{

/**
 * How leakage moves between CNOT operands (Section 5.2.2 vs A.1).
 */
enum class TransportModel
{
    /** Main-text model: the source qubit stays leaked after a
     *  transport, so transports grow the leakage population. */
    Conservative,
    /** Appendix A.1 model: leakage is exchanged; the source returns to
     *  a random computational state, so transports preserve the
     *  leakage population. */
    Exchange,
};

/**
 * All knobs of the noise model. Pauli noise parameters feed both the
 * frame simulator and the detector-error-model weights; leakage
 * parameters feed only the simulator (the decoder is leakage-unaware,
 * exactly as in the paper).
 */
struct ErrorModel
{
    /** Physical error rate p: depolarizing after CNOT/H, measurement
     *  flip, reset initialization error, data idle depolarizing. */
    double p = 1e-3;

    /** Master switch for all leakage phenomena. */
    bool leakageEnabled = true;

    /** Leakage injection probability = leakFraction * p, applied to
     *  data qubits at round start and to CNOT operands. */
    double leakFraction = 0.1;

    /** Seepage probability = seepFraction * p: a leaked qubit returns
     *  to a random computational state. */
    double seepFraction = 0.1;

    /** Per-CNOT leakage transport probability when exactly one operand
     *  is leaked. */
    double pTransport = 0.1;

    /** Multi-level discriminator misses a leaked state at
     *  multiLevelErrMult * p (ERASER+M, Section 5.2.3). */
    double multiLevelErrMult = 10.0;

    /** Probability a failed DQLR reset (parity left in |1>) excites the
     *  data qubit to |L> during LeakageISWAP (Fig. 19(b); 0.5 because
     *  the iSWAP acts in the |11>/|20> subspace, so the data qubit must
     *  hold |1>). */
    double dqlrExciteProb = 0.5;

    TransportModel transport = TransportModel::Conservative;

    double leakInjectProb() const { return leakFraction * p; }
    double seepageProb() const { return seepFraction * p; }
    double multiLevelMissProb() const { return multiLevelErrMult * p; }

    /** A model with every mechanism disabled (deterministic frames). */
    static ErrorModel
    noiseless()
    {
        ErrorModel em;
        em.p = 0.0;
        em.leakageEnabled = false;
        em.pTransport = 0.0;
        return em;
    }

    /** Pauli noise only: leakage disabled (Fig. 2(c) baseline). */
    static ErrorModel
    withoutLeakage(double p)
    {
        ErrorModel em;
        em.p = p;
        em.leakageEnabled = false;
        return em;
    }

    /** The paper's default full model at physical error rate p. */
    static ErrorModel
    standard(double p)
    {
        ErrorModel em;
        em.p = p;
        return em;
    }
};

} // namespace qec

#endif // QEC_SIM_ERROR_MODEL_H
