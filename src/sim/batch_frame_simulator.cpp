#include "sim/batch_frame_simulator.h"

#include <cmath>

#include "base/logging.h"
#include "code/builder.h"

namespace qec
{

namespace
{

/** Salt separating word-group mask streams from per-lane streams. */
constexpr uint64_t kBatchStreamSalt = 0x9ec0ffeeb47c5a11ULL;

} // namespace

template <int NW>
BatchFrameSimulatorT<NW>::BatchFrameSimulatorT(int num_qubits,
                                               const ErrorModel &em,
                                               int num_lanes,
                                               uint64_t seed,
                                               uint64_t first_shot)
    : numQubits_(num_qubits), numLanes_(num_lanes),
      numBlocks_((num_lanes + 63) / 64),
      live_(laneMaskOf<Lane>(num_lanes)), em_(em)
{
    panicIf(num_lanes < 1 || num_lanes > kMaxLanes,
            "batch simulator lane count out of range for this width");
    if (numLanes_ == 1) {
        // W=1 reference mode at every plane depth: the scalar
        // simulator, seeded exactly as the scalar experiment path
        // seeds this shot. Delegating for NW > 1 as well keeps
        // 1-lane ragged tail groups bit-identical across widths
        // (e.g. shots = 257 at widths 64 and 256 both simulate shot
        // 256 on this scalar stream).
        scalar_ = std::make_unique<FrameSimulator>(
            num_qubits, em, Rng::forShot(seed, first_shot));
        return;
    }
    // Block b owns the streams of the 64-lane group that would start
    // at shot first_shot + 64*b: W-wide runs replay the 64-wide runs
    // bit for bit.
    blockRng_.reserve(numBlocks_);
    for (int b = 0; b < numBlocks_; ++b) {
        blockLanes_[b] =
            numLanes_ - 64 * b >= 64 ? 64 : numLanes_ - 64 * b;
        blockRng_.push_back(Rng::forStream(
            seed, first_shot + 64 * (uint64_t)b, kBatchStreamSalt));
    }
    rareStreams_.reserve(8);
    laneRng_.reserve(numLanes_);
    for (int l = 0; l < numLanes_; ++l)
        laneRng_.push_back(Rng::forShot(seed, first_shot + l));
    x_.assign(num_qubits, Lane{});
    z_.assign(num_qubits, Lane{});
    leaked_.assign(num_qubits, Lane{});
}

template <int NW>
void
BatchFrameSimulatorT<NW>::reset()
{
    record_.clear();
    if (scalar_) {
        scalar_->reset();
        scalarSynced_ = 0;
        return;
    }
    std::fill(x_.begin(), x_.end(), Lane{});
    std::fill(z_.begin(), z_.end(), Lane{});
    std::fill(leaked_.begin(), leaked_.end(), Lane{});
}

template <int NW>
typename BatchFrameSimulatorT<NW>::Lane
BatchFrameSimulatorT<NW>::xWord(int q) const
{
    if (scalar_) {
        Lane r{};
        laneWordRef(r, 0) = scalar_->xFrame(q) ? 1 : 0;
        return r;
    }
    return x_[q];
}

template <int NW>
typename BatchFrameSimulatorT<NW>::Lane
BatchFrameSimulatorT<NW>::zWord(int q) const
{
    if (scalar_) {
        Lane r{};
        laneWordRef(r, 0) = scalar_->zFrame(q) ? 1 : 0;
        return r;
    }
    return z_[q];
}

template <int NW>
typename BatchFrameSimulatorT<NW>::Lane
BatchFrameSimulatorT<NW>::leakedWord(int q) const
{
    if (scalar_) {
        Lane r{};
        laneWordRef(r, 0) = scalar_->leaked(q) ? 1 : 0;
        return r;
    }
    return leaked_[q];
}

template <int NW>
bool
BatchFrameSimulatorT<NW>::leaked(int q, int lane) const
{
    return testLane(leakedWord(q), lane);
}

template <int NW>
uint64_t
BatchFrameSimulatorT<NW>::countLeaked(int first, int last) const
{
    if (scalar_)
        return (uint64_t)scalar_->countLeaked(first, last);
    uint64_t n = 0;
    for (int q = first; q < last; ++q)
        n += (uint64_t)popcountLanes(leaked_[q]);
    return n;
}

template <int NW>
void
BatchFrameSimulatorT<NW>::injectPauli(int q, Pauli p, const Lane &mask)
{
    if (scalar_) {
        if (laneWord(mask, 0) & 1)
            scalar_->injectPauli(q, p);
        return;
    }
    if (p == Pauli::X || p == Pauli::Y)
        x_[q] ^= mask & live_;
    if (p == Pauli::Z || p == Pauli::Y)
        z_[q] ^= mask & live_;
}

template <int NW>
void
BatchFrameSimulatorT<NW>::setLeaked(int q, bool leaked,
                                    const Lane &mask)
{
    if (scalar_) {
        if (laneWord(mask, 0) & 1)
            scalar_->setLeaked(q, leaked);
        return;
    }
    if (leaked)
        leaked_[q] |= mask & live_;
    else
        leaked_[q] = andnot(leaked_[q], mask);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::syncScalarRecord()
{
    const auto &scalar_record = scalar_->record();
    for (; scalarSynced_ < scalar_record.size(); ++scalarSynced_) {
        const MeasureRecord &rec = scalar_record[scalarSynced_];
        Record batch;
        batch.qubit = rec.qubit;
        batch.stab = rec.stab;
        batch.round = rec.round;
        batch.finalData = rec.finalData;
        batch.lrcData = rec.lrcData;
        laneWordRef(batch.mask, 0) = 1;
        laneWordRef(batch.flips, 0) = rec.flip ? 1 : 0;
        laneWordRef(batch.leakedLabels, 0) = rec.leakedLabel ? 1 : 0;
        record_.push_back(batch);
    }
}

template <int NW>
typename BatchFrameSimulatorT<NW>::RareStream &
BatchFrameSimulatorT<NW>::rareStreamFor(double p)
{
    for (auto &stream : rareStreams_) {
        if (stream.p == p)
            return stream;
    }
    RareStream stream;
    stream.p = p;
    stream.log1mp = std::log1p(-p);
    for (int b = 0; b < NW; ++b) {
        stream.skip[b] = 0;
        stream.inited[b] = 0;
    }
    rareStreams_.push_back(stream);
    return rareStreams_.back();
}

template <int NW>
uint64_t
BatchFrameSimulatorT<NW>::drawRareBlock(RareStream &stream, int b)
{
    // Identical consumption to a per-block BernoulliMaskSampler: the
    // stream's initial gap is drawn from block b's Rng at b's first
    // gated draw of this probability, exactly when the standalone
    // 64-lane group's sampler would create its stream. The gap/walk
    // algorithms are the sampler's own (shared free functions), so
    // the streams cannot drift apart.
    if (!stream.inited[b]) {
        stream.inited[b] = 1;
        stream.skip[b] =
            bernoulliGeometricGap(blockRng_[b], stream.log1mp);
    }
    return bernoulliRareMask(blockRng_[b], stream.log1mp,
                             stream.skip[b], blockLanes_[b]);
}

template <int NW>
uint64_t
BatchFrameSimulatorT<NW>::drawDenseBlock(double p, int b)
{
    return bernoulliDenseMask(blockRng_[b], p, blockLanes_[b]);
}

template <int NW>
typename BatchFrameSimulatorT<NW>::Lane
BatchFrameSimulatorT<NW>::drawWhere(double p, const Lane &gate)
{
    Lane out{};
    if (p <= 0.0)
        return out;
    if (p >= 1.0) {
        for (int b = 0; b < numBlocks_; ++b) {
            if (laneWord(gate, b))
                laneWordRef(out, b) = laneMask64(blockLanes_[b]);
        }
        return out;
    }
    if (p < BernoulliMaskSampler::kRareThreshold) {
        // One probability lookup for the whole group; per gated block
        // the overwhelmingly common case is a compare + subtract on
        // its contiguous skip counter.
        RareStream &stream = rareStreamFor(p);
        for (int b = 0; b < numBlocks_; ++b) {
            if (!laneWord(gate, b))
                continue;
            const uint64_t n = (uint64_t)blockLanes_[b];
            if (stream.inited[b] && stream.skip[b] >= n) {
                stream.skip[b] -= n;
                continue;
            }
            laneWordRef(out, b) = drawRareBlock(stream, b);
        }
        return out;
    }
    for (int b = 0; b < numBlocks_; ++b) {
        if (laneWord(gate, b))
            laneWordRef(out, b) = drawDenseBlock(p, b);
    }
    return out;
}

template <int NW>
typename BatchFrameSimulatorT<NW>::Lane
BatchFrameSimulatorT<NW>::randBitsWhere(const Lane &gate)
{
    Lane out{};
    for (int b = 0; b < numBlocks_; ++b) {
        if (laneWord(gate, b))
            laneWordRef(out, b) = blockRng_[b].next();
    }
    return out;
}

template <int NW>
void
BatchFrameSimulatorT<NW>::depolarizePerLane(int q, const Lane &mask)
{
    forEachSetLane(mask, [&](int l) {
        // Uniform over {X, Y, Z}, matching the scalar draw order.
        switch (laneRng_[l].randint(3)) {
          case 0: flipLane(x_[q], l); break;
          case 1: flipLane(x_[q], l); flipLane(z_[q], l); break;
          default: flipLane(z_[q], l); break;
        }
    });
}

template <int NW>
void
BatchFrameSimulatorT<NW>::randomComputational(int q, const Lane &mask)
{
    // Per-lane events: touch only the set lanes instead of paying
    // full-plane clears per event (the masks here almost always hold
    // one or two lanes, and events scale with the group width).
    forEachSetLane(mask, [&](int l) {
        clearLane(leaked_[q], l);
        if (laneRng_[l].bit())
            setLane(x_[q], l);
        else
            clearLane(x_[q], l);
        if (laneRng_[l].bit())
            setLane(z_[q], l);
        else
            clearLane(z_[q], l);
    });
}

template <int NW>
void
BatchFrameSimulatorT<NW>::maybeLeak(int q, const Lane &mask)
{
    if (!em_.leakageEnabled)
        return;
    // The draw itself must always happen (it IS the noise stream);
    // the post-draw plane update is skipped on the empty-mask common
    // case.
    const Lane d = drawWhere(em_.leakInjectProb(), mask);
    if (!anyLane(d))
        return;
    leaked_[q] |= d & mask;
}

template <int NW>
void
BatchFrameSimulatorT<NW>::maybeSeep(int q, const Lane &mask)
{
    const Lane leaked = leaked_[q] & mask;
    if (!anyLane(leaked))
        return;
    const Lane m = drawWhere(em_.seepageProb(), leaked) & leaked;
    if (anyLane(m)) {
        // Seeped lanes return in a random computational state.
        randomComputational(q, m);
    }
}

template <int NW>
void
BatchFrameSimulatorT<NW>::opDataNoise(int q, const Lane &mask)
{
    const Lane d = drawWhere(em_.p, mask);
    if (anyLane(d))
        depolarizePerLane(q, andnot(d & mask, leaked_[q]));
    maybeLeak(q, mask);
    maybeSeep(q, mask);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::opReset(int q, const Lane &mask)
{
    x_[q] = andnot(x_[q], mask);
    z_[q] = andnot(z_[q], mask);
    leaked_[q] = andnot(leaked_[q], mask);
    // Initialization error: the qubit comes up in |1> with prob p.
    const Lane d = drawWhere(em_.p, mask);
    if (anyLane(d))
        x_[q] |= d & mask;
}

template <int NW>
void
BatchFrameSimulatorT<NW>::opH(int q, const Lane &mask)
{
    const Lane act = andnot(mask, leaked_[q]);
    const Lane xw = x_[q];
    const Lane zw = z_[q];
    x_[q] = andnot(xw, act) | (zw & act);
    z_[q] = andnot(zw, act) | (xw & act);
    const Lane d = drawWhere(em_.p, mask);
    if (anyLane(d))
        depolarizePerLane(q, d & act);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::twoQubitNoise(int a, int b, const Lane &mask)
{
    const Lane d = drawWhere(em_.p, mask);
    const Lane m = anyLane(d) ? d & mask : Lane{};
    forEachSetLane(m, [&](int l) {
        // One of the 15 non-identity two-qubit Paulis, uniformly.
        const uint32_t pp = 1 + laneRng_[l].randint(15);
        const uint32_t pa = pp & 3;
        const uint32_t pb = (pp >> 2) & 3;
        if (!testLane(leaked_[a], l)) {
            if (pa == 1 || pa == 2)
                flipLane(x_[a], l);
            if (pa == 2 || pa == 3)
                flipLane(z_[a], l);
        }
        if (!testLane(leaked_[b], l)) {
            if (pb == 1 || pb == 2)
                flipLane(x_[b], l);
            if (pb == 2 || pb == 3)
                flipLane(z_[b], l);
        }
    });
    if (em_.leakageEnabled) {
        maybeLeak(a, mask);
        maybeLeak(b, mask);
        maybeSeep(a, mask);
        maybeSeep(b, mask);
    }
}

template <int NW>
void
BatchFrameSimulatorT<NW>::opCnot(int c, int t, const Lane &mask)
{
    const Lane lc = leaked_[c];
    const Lane lt = leaked_[t];
    if (!anyLane((lc | lt) & mask)) {
        // No leaked operand lane: pure frame propagation, no
        // divergence masks to build and no draws to gate (the
        // dominant case while the controller keeps the leakage
        // population suppressed).
        x_[t] ^= x_[c] & mask;
        z_[c] ^= z_[t] & mask;
        twoQubitNoise(c, t, mask);
        return;
    }
    const Lane both_clean = andnot(andnot(mask, lc), lt);
    x_[t] ^= x_[c] & both_clean;
    z_[c] ^= z_[t] & both_clean;

    // Exactly one operand leaked: the gate is uncalibrated for |L>, so
    // the unleaked operand receives a uniformly random Pauli, and
    // leakage may transport.
    const Lane c_only = andnot(mask & lc, lt);
    const Lane t_only = andnot(mask & lt, lc);
    if (anyLane(c_only)) {
        x_[t] ^= randBitsWhere(c_only) & c_only;
        z_[t] ^= randBitsWhere(c_only) & c_only;
    }
    if (anyLane(t_only)) {
        x_[c] ^= randBitsWhere(t_only) & t_only;
        z_[c] ^= randBitsWhere(t_only) & t_only;
    }
    const Lane mixed = c_only | t_only;
    if (anyLane(mixed) && em_.pTransport > 0.0) {
        const Lane tr = drawWhere(em_.pTransport, mixed) & mixed;
        leaked_[t] |= tr & c_only;
        leaked_[c] |= tr & t_only;
        if (em_.transport == TransportModel::Exchange) {
            const Lane src_c = tr & c_only;
            if (anyLane(src_c))
                randomComputational(c, src_c);
            const Lane src_t = tr & t_only;
            if (anyLane(src_t))
                randomComputational(t, src_t);
        }
    }
    // Lanes with both operands leaked see no frame action at all.
    twoQubitNoise(c, t, mask);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::opLeakageIswap(int d, int p, const Lane &mask)
{
    const Lane ld = leaked_[d];
    const Lane lp = leaked_[p];

    // DQLR moves the data qubit's leakage onto the (just reset) parity
    // qubit; the data qubit returns to a random computational state.
    const Lane move = andnot(mask & ld, lp);
    if (anyLane(move)) {
        leaked_[p] |= move;
        randomComputational(d, move);
    }

    // Reset failure left the parity qubit in |1>: the iSWAP acts in the
    // |11>/|20> subspace and can excite the data qubit to |L>.
    const Lane excitable = andnot(andnot(mask, ld), lp) & x_[p];
    if (anyLane(excitable) && em_.leakageEnabled &&
        em_.dqlrExciteProb > 0.0) {
        leaked_[d] |=
            drawWhere(em_.dqlrExciteProb, excitable) & excitable;
    }
    // The op has CNOT-class fidelity (Section A.2.2).
    twoQubitNoise(d, p, mask);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::opMeasure(const Op &op, bool x_basis,
                                    const Lane &mask)
{
    const int q = op.q0;
    const Lane frame = x_basis ? z_[q] : x_[q];
    const Lane lk = leaked_[q] & mask;

    // Unleaked lanes report the frame; a two-level discriminator
    // classifies |L> randomly, and the multi-level discriminator flags
    // |L> unless it errs.
    Lane flips = andnot(frame, leaked_[q]) & mask;
    Lane labels{};
    if (anyLane(lk)) {
        flips |= randBitsWhere(lk) & lk;
        labels =
            andnot(lk, drawWhere(em_.multiLevelMissProb(), lk));
    }
    const Lane me = drawWhere(em_.p, mask);
    if (anyLane(me))
        flips ^= me & mask;

    Record rec;
    rec.qubit = q;
    rec.stab = op.stab;
    rec.round = op.round;
    rec.finalData = op.finalData;
    rec.lrcData = op.lrcData;
    rec.mask = mask;
    rec.flips = flips;
    rec.leakedLabels = labels;
    record_.push_back(rec);
}

template <int NW>
uint64_t
BatchFrameSimulatorT<NW>::drawBlockWhere(double p, int b,
                                         uint64_t gate)
{
    if (!gate || p <= 0.0)
        return 0;
    if (p >= 1.0)
        return laneMask64(blockLanes_[b]);
    if (p < BernoulliMaskSampler::kRareThreshold) {
        RareStream &stream = rareStreamFor(p);
        const uint64_t n = (uint64_t)blockLanes_[b];
        if (stream.inited[b] && stream.skip[b] >= n) {
            stream.skip[b] -= n;
            return 0;
        }
        return drawRareBlock(stream, b);
    }
    return drawDenseBlock(p, b);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::depolarizePerLaneB(int q, int b,
                                             uint64_t mask)
{
    // The Lane version is already a pure per-set-lane loop, so the
    // block variant just lifts the word into a one-block lane set:
    // one definition of the RNG-stream-critical body.
    Lane m{};
    laneWordRef(m, b) = mask;
    depolarizePerLane(q, m);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::randomComputationalB(int q, int b,
                                               uint64_t mask)
{
    Lane m{};
    laneWordRef(m, b) = mask;
    randomComputational(q, m);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::maybeLeakB(int q, int b, uint64_t mask)
{
    if (!em_.leakageEnabled)
        return;
    const uint64_t d = drawBlockWhere(em_.leakInjectProb(), b, mask);
    if (!d)
        return;
    laneWordRef(leaked_[q], b) |= d & mask;
}

template <int NW>
void
BatchFrameSimulatorT<NW>::maybeSeepB(int q, int b, uint64_t mask)
{
    const uint64_t leaked = laneWord(leaked_[q], b) & mask;
    if (!leaked)
        return;
    const uint64_t m =
        drawBlockWhere(em_.seepageProb(), b, leaked) & leaked;
    if (m)
        randomComputationalB(q, b, m);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::twoQubitNoiseB(int qa, int qb, int b,
                                         uint64_t mask)
{
    const uint64_t d = drawBlockWhere(em_.p, b, mask);
    uint64_t m = d & mask;
    const int base = 64 * b;
    while (m) {
        const int l = base + __builtin_ctzll(m);
        m &= m - 1;
        // One of the 15 non-identity two-qubit Paulis, uniformly.
        const uint32_t pp = 1 + laneRng_[l].randint(15);
        const uint32_t pa = pp & 3;
        const uint32_t pb = (pp >> 2) & 3;
        if (!testLane(leaked_[qa], l)) {
            if (pa == 1 || pa == 2)
                flipLane(x_[qa], l);
            if (pa == 2 || pa == 3)
                flipLane(z_[qa], l);
        }
        if (!testLane(leaked_[qb], l)) {
            if (pb == 1 || pb == 2)
                flipLane(x_[qb], l);
            if (pb == 2 || pb == 3)
                flipLane(z_[qb], l);
        }
    }
    if (em_.leakageEnabled) {
        maybeLeakB(qa, b, mask);
        maybeLeakB(qb, b, mask);
        maybeSeepB(qa, b, mask);
        maybeSeepB(qb, b, mask);
    }
}

template <int NW>
void
BatchFrameSimulatorT<NW>::opResetB(int q, int b, uint64_t mask)
{
    laneWordRef(x_[q], b) &= ~mask;
    laneWordRef(z_[q], b) &= ~mask;
    laneWordRef(leaked_[q], b) &= ~mask;
    // Initialization error: the qubit comes up in |1> with prob p.
    const uint64_t d = drawBlockWhere(em_.p, b, mask);
    if (d)
        laneWordRef(x_[q], b) |= d & mask;
}

template <int NW>
void
BatchFrameSimulatorT<NW>::opCnotB(int c, int t, int b, uint64_t mask)
{
    const uint64_t lc = laneWord(leaked_[c], b);
    const uint64_t lt = laneWord(leaked_[t], b);
    if (!((lc | lt) & mask)) {
        laneWordRef(x_[t], b) ^= laneWord(x_[c], b) & mask;
        laneWordRef(z_[c], b) ^= laneWord(z_[t], b) & mask;
        twoQubitNoiseB(c, t, b, mask);
        return;
    }
    const uint64_t both_clean = (mask & ~lc) & ~lt;
    laneWordRef(x_[t], b) ^= laneWord(x_[c], b) & both_clean;
    laneWordRef(z_[c], b) ^= laneWord(z_[t], b) & both_clean;

    // Exactly one operand leaked: the gate is uncalibrated for |L>, so
    // the unleaked operand receives a uniformly random Pauli, and
    // leakage may transport.
    const uint64_t c_only = (mask & lc) & ~lt;
    const uint64_t t_only = (mask & lt) & ~lc;
    if (c_only) {
        laneWordRef(x_[t], b) ^= blockRng_[b].next() & c_only;
        laneWordRef(z_[t], b) ^= blockRng_[b].next() & c_only;
    }
    if (t_only) {
        laneWordRef(x_[c], b) ^= blockRng_[b].next() & t_only;
        laneWordRef(z_[c], b) ^= blockRng_[b].next() & t_only;
    }
    const uint64_t mixed = c_only | t_only;
    if (mixed && em_.pTransport > 0.0) {
        const uint64_t tr =
            drawBlockWhere(em_.pTransport, b, mixed) & mixed;
        laneWordRef(leaked_[t], b) |= tr & c_only;
        laneWordRef(leaked_[c], b) |= tr & t_only;
        if (em_.transport == TransportModel::Exchange) {
            const uint64_t src_c = tr & c_only;
            if (src_c)
                randomComputationalB(c, b, src_c);
            const uint64_t src_t = tr & t_only;
            if (src_t)
                randomComputationalB(t, b, src_t);
        }
    }
    // Lanes with both operands leaked see no frame action at all.
    twoQubitNoiseB(c, t, b, mask);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::opLeakageIswapB(int d, int p, int b,
                                          uint64_t mask)
{
    const uint64_t ld = laneWord(leaked_[d], b);
    const uint64_t lp = laneWord(leaked_[p], b);

    // DQLR moves the data qubit's leakage onto the (just reset) parity
    // qubit; the data qubit returns to a random computational state.
    const uint64_t move = (mask & ld) & ~lp;
    if (move) {
        laneWordRef(leaked_[p], b) |= move;
        randomComputationalB(d, b, move);
    }

    // Reset failure left the parity qubit in |1>: the iSWAP acts in the
    // |11>/|20> subspace and can excite the data qubit to |L>.
    const uint64_t excitable =
        ((mask & ~ld) & ~lp) & laneWord(x_[p], b);
    if (excitable && em_.leakageEnabled && em_.dqlrExciteProb > 0.0) {
        laneWordRef(leaked_[d], b) |=
            drawBlockWhere(em_.dqlrExciteProb, b, excitable) &
            excitable;
    }
    // The op has CNOT-class fidelity (Section A.2.2).
    twoQubitNoiseB(d, p, b, mask);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::opMeasureB(const Op &op, bool x_basis, int b,
                                     uint64_t mask)
{
    const int q = op.q0;
    const uint64_t frame =
        x_basis ? laneWord(z_[q], b) : laneWord(x_[q], b);
    const uint64_t lw = laneWord(leaked_[q], b);
    const uint64_t lk = lw & mask;

    // Unleaked lanes report the frame; a two-level discriminator
    // classifies |L> randomly, and the multi-level discriminator flags
    // |L> unless it errs.
    uint64_t flips = (frame & ~lw) & mask;
    uint64_t labels = 0;
    if (lk) {
        flips |= blockRng_[b].next() & lk;
        labels =
            lk & ~drawBlockWhere(em_.multiLevelMissProb(), b, lk);
    }
    const uint64_t me = drawBlockWhere(em_.p, b, mask);
    if (me)
        flips ^= me & mask;

    Record rec;
    rec.qubit = q;
    rec.stab = op.stab;
    rec.round = op.round;
    rec.finalData = op.finalData;
    rec.lrcData = op.lrcData;
    laneWordRef(rec.mask, b) = mask;
    laneWordRef(rec.flips, b) = flips;
    laneWordRef(rec.leakedLabels, b) = labels;
    record_.push_back(rec);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::executeBlock(const Op &op, int block,
                                       uint64_t mask)
{
    if (scalar_ || NW == 1) {
        Lane m{};
        laneWordRef(m, block) = mask;
        execute(op, m);
        return;
    }
    mask &= laneWord(live_, block);
    if (!mask)
        return;
    switch (op.type) {
      case OpType::Reset:
        opResetB(op.q0, block, mask);
        break;
      case OpType::Cnot:
        opCnotB(op.q0, op.q1, block, mask);
        break;
      case OpType::LeakageIswap:
        opLeakageIswapB(op.q0, op.q1, block, mask);
        break;
      case OpType::Measure:
        opMeasureB(op, false, block, mask);
        break;
      case OpType::MeasureX:
        opMeasureB(op, true, block, mask);
        break;
      default: {
        // Not part of the tail repertoire: full-width path.
        Lane m{};
        laneWordRef(m, block) = mask;
        execute(op, m);
        break;
      }
    }
}

template <int NW>
void
BatchFrameSimulatorT<NW>::execute(const Op &op, const Lane &mask_in)
{
    const Lane mask = mask_in & live_;
    if (scalar_) {
        if (laneWord(mask, 0) & 1) {
            scalar_->execute(op);
            syncScalarRecord();
        }
        return;
    }
    if (!anyLane(mask))
        return;
    switch (op.type) {
      case OpType::RoundStart:
        break;
      case OpType::DataNoise:
        opDataNoise(op.q0, mask);
        break;
      case OpType::Reset:
        opReset(op.q0, mask);
        break;
      case OpType::H:
        opH(op.q0, mask);
        break;
      case OpType::Cnot:
        opCnot(op.q0, op.q1, mask);
        break;
      case OpType::LeakageIswap:
        opLeakageIswap(op.q0, op.q1, mask);
        break;
      case OpType::Measure:
        opMeasure(op, false, mask);
        break;
      case OpType::MeasureX:
        opMeasure(op, true, mask);
        break;
    }
}

template <int NW>
void
BatchFrameSimulatorT<NW>::executeRange(const Op *begin, const Op *end,
                                       const Lane &mask)
{
    for (const Op *op = begin; op != end; ++op)
        execute(*op, mask);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::executeLrcTail(const CircuitProgram &prog,
                                         const IrLrcTail &t, int b,
                                         int round, bool multi_level)
{
    const int parity = prog.stabAncilla[t.stab];
    // Tail masks never span blocks, so each op runs on the engine's
    // single-block path: word arithmetic on plane word b regardless
    // of NW, keeping the per-tail cost width-invariant.
    if (prog.tail == IrTailKind::SwapLrc) {
        // SWAP D <-> P, measure + reset D, MOV back -- with the
        // ERASER+M in-round rule: lanes whose data readout is
        // labelled |L> squash the MOV and reset P instead.
        executeBlock(makeOp(OpType::Cnot, t.data, parity), b, t.mask);
        executeBlock(makeOp(OpType::Cnot, parity, t.data), b, t.mask);
        executeBlock(makeOp(OpType::Cnot, t.data, parity), b, t.mask);
        Op meas = makeOp(OpType::Measure, t.data);
        meas.stab = t.stab;
        meas.round = round;
        meas.lrcData = true;
        executeBlock(meas, b, t.mask);
        uint64_t squash = 0;
        if (multi_level)
            squash = laneWord(record_.back().leakedLabels, b) & t.mask;
        executeBlock(makeOp(OpType::Reset, t.data), b, t.mask);
        const uint64_t mov = t.mask & ~squash;
        if (mov) {
            executeBlock(makeOp(OpType::Cnot, parity, t.data), b, mov);
            executeBlock(makeOp(OpType::Cnot, t.data, parity), b, mov);
        }
        if (squash)
            executeBlock(makeOp(OpType::Reset, parity), b, squash);
    } else {
        executeBlock(makeOp(OpType::LeakageIswap, t.data, parity), b,
                     t.mask);
        executeBlock(makeOp(OpType::Reset, parity), b, t.mask);
    }
}

template <int NW>
void
BatchFrameSimulatorT<NW>::executeProgramRound(
    const CircuitProgram &prog, int round, const Lane &mask,
    const ProgramLrcFillT<NW> *fills, int num_fills)
{
    for (size_t i = prog.bodyBegin; i < prog.bodyEnd; ++i) {
        const IrInst &inst = prog.instrs[i];
        switch (inst.op) {
          case IrOpcode::Gate:
            execute(prog.pool[inst.a], mask);
            break;
          case IrOpcode::Readout: {
            Lane m = mask;
            if (prog.maskReadoutOnLrc) {
                for (int f = 0; f < num_fills; ++f)
                    if (fills[f].lrcOnStab)
                        m = andnot(m, fills[f].lrcOnStab[inst.a]);
            }
            // Skipping the whole pair when no lane remains mirrors
            // the hand-wired drivers (and execute()'s own empty-mask
            // early return): no draws, no record entry.
            if (!anyLane(m))
                break;
            Op meas = prog.pool[inst.b];
            meas.round = round;
            execute(meas, m);
            execute(prog.pool[(size_t)inst.b + 1], m);
            break;
          }
          case IrOpcode::LrcSlot: {
            if (!fills || inst.a >= num_fills)
                break;
            const ProgramLrcFillT<NW> &fill = fills[inst.a];
            if (!fill.blockTails)
                break;
            for (int b = 0; b < numBlocks_; ++b)
                for (const IrLrcTail &t : fill.blockTails[b])
                    executeLrcTail(prog, t, b, round,
                                   fill.multiLevel);
            break;
          }
          default:
            break;
        }
    }
}

template <int NW>
void
BatchFrameSimulatorT<NW>::executeProgramFinal(const CircuitProgram &prog,
                                              const Lane &mask)
{
    for (size_t i = prog.bodyEnd + 1; i < prog.instrs.size(); ++i)
        execute(prog.pool[prog.instrs[i].a], mask);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::executeProgram(const CircuitProgram &prog)
{
    bindProgramStreams(prog);
    for (int r = 0; r < prog.rounds; ++r)
        executeProgramRound(prog, r, live_);
    executeProgramFinal(prog, live_);
}

template <int NW>
int
BatchFrameSimulatorT<NW>::noiseStreamId(double p)
{
    if (scalar_ || p <= 0.0 ||
        p >= BernoulliMaskSampler::kRareThreshold)
        return -1;
    RareStream &stream = rareStreamFor(p);
    return (int)(&stream - rareStreams_.data());
}

template <int NW>
void
BatchFrameSimulatorT<NW>::bindProgramStreams(const CircuitProgram &prog)
{
    bool two_qubit = false, measure = false, iswap = false;
    const auto scan = [&](const Op &op) {
        switch (op.type) {
          case OpType::Cnot:
            two_qubit = true;
            break;
          case OpType::LeakageIswap:
            two_qubit = true;
            iswap = true;
            break;
          case OpType::Measure:
          case OpType::MeasureX:
            measure = true;
            break;
          default:
            break;
        }
    };
    for (const Op &op : prog.pool)
        scan(op);
    // Tail templates draw streams the pool may not (a DQLR program's
    // pool has no LeakageIswap — only its tails do). Registration is
    // content-neutral (streams are keyed by probability, lazily
    // initialized per block), so scanning them only moves allocation
    // up front.
    for (const IrTailTemplate &tmpl : prog.tailTemplates)
        for (const Op &op : tmpl.ops)
            scan(op);
    noiseStreamId(em_.p);
    if (em_.leakageEnabled) {
        noiseStreamId(em_.leakInjectProb());
        noiseStreamId(em_.seepageProb());
        if (measure)
            noiseStreamId(em_.multiLevelMissProb());
        if (two_qubit)
            noiseStreamId(em_.pTransport);
        if (iswap)
            noiseStreamId(em_.dqlrExciteProb);
    }
}

template class BatchFrameSimulatorT<1>;
template class BatchFrameSimulatorT<4>;
template class BatchFrameSimulatorT<8>;

} // namespace qec
