#include "sim/batch_frame_simulator.h"

#include "base/logging.h"

namespace qec
{

namespace
{

/** Salt separating the word-group mask stream from per-lane streams. */
constexpr uint64_t kBatchStreamSalt = 0x9ec0ffeeb47c5a11ULL;

inline uint64_t
laneBit(int lane)
{
    return uint64_t{1} << lane;
}

inline int
popcount(uint64_t word)
{
    return __builtin_popcountll(word);
}

} // namespace

BatchFrameSimulator::BatchFrameSimulator(int num_qubits,
                                         const ErrorModel &em,
                                         int num_lanes, uint64_t seed,
                                         uint64_t first_shot)
    : numQubits_(num_qubits), numLanes_(num_lanes),
      live_(laneMask(num_lanes)), em_(em),
      batchRng_(Rng::forStream(seed, first_shot, kBatchStreamSalt)),
      sampler_(&batchRng_)
{
    fatalIf(num_lanes < 1 || num_lanes > kMaxLanes,
            "batch simulator needs 1..64 lanes");
    if (numLanes_ == 1) {
        // W=1 reference mode: the scalar simulator, seeded exactly as
        // the scalar experiment path seeds this shot.
        scalar_ = std::make_unique<FrameSimulator>(
            num_qubits, em, Rng::forShot(seed, first_shot));
        return;
    }
    laneRng_.reserve(numLanes_);
    for (int l = 0; l < numLanes_; ++l)
        laneRng_.push_back(Rng::forShot(seed, first_shot + l));
    x_.assign(num_qubits, 0);
    z_.assign(num_qubits, 0);
    leaked_.assign(num_qubits, 0);
}

void
BatchFrameSimulator::reset()
{
    record_.clear();
    if (scalar_) {
        scalar_->reset();
        scalarSynced_ = 0;
        return;
    }
    std::fill(x_.begin(), x_.end(), 0);
    std::fill(z_.begin(), z_.end(), 0);
    std::fill(leaked_.begin(), leaked_.end(), 0);
}

uint64_t
BatchFrameSimulator::xWord(int q) const
{
    return scalar_ ? (scalar_->xFrame(q) ? 1 : 0) : x_[q];
}

uint64_t
BatchFrameSimulator::zWord(int q) const
{
    return scalar_ ? (scalar_->zFrame(q) ? 1 : 0) : z_[q];
}

uint64_t
BatchFrameSimulator::leakedWord(int q) const
{
    return scalar_ ? (scalar_->leaked(q) ? 1 : 0) : leaked_[q];
}

bool
BatchFrameSimulator::leaked(int q, int lane) const
{
    return (leakedWord(q) >> lane) & 1;
}

uint64_t
BatchFrameSimulator::countLeaked(int first, int last) const
{
    if (scalar_)
        return (uint64_t)scalar_->countLeaked(first, last);
    uint64_t n = 0;
    for (int q = first; q < last; ++q)
        n += popcount(leaked_[q]);
    return n;
}

void
BatchFrameSimulator::injectPauli(int q, Pauli p, uint64_t mask)
{
    if (scalar_) {
        if (mask & 1)
            scalar_->injectPauli(q, p);
        return;
    }
    if (p == Pauli::X || p == Pauli::Y)
        x_[q] ^= mask & live_;
    if (p == Pauli::Z || p == Pauli::Y)
        z_[q] ^= mask & live_;
}

void
BatchFrameSimulator::setLeaked(int q, bool leaked, uint64_t mask)
{
    if (scalar_) {
        if (mask & 1)
            scalar_->setLeaked(q, leaked);
        return;
    }
    if (leaked)
        leaked_[q] |= mask & live_;
    else
        leaked_[q] &= ~mask;
}

void
BatchFrameSimulator::syncScalarRecord()
{
    const auto &scalar_record = scalar_->record();
    for (; scalarSynced_ < scalar_record.size(); ++scalarSynced_) {
        const MeasureRecord &rec = scalar_record[scalarSynced_];
        BatchMeasureRecord batch;
        batch.qubit = rec.qubit;
        batch.stab = rec.stab;
        batch.round = rec.round;
        batch.finalData = rec.finalData;
        batch.lrcData = rec.lrcData;
        batch.mask = 1;
        batch.flips = rec.flip ? 1 : 0;
        batch.leakedLabels = rec.leakedLabel ? 1 : 0;
        record_.push_back(batch);
    }
}

void
BatchFrameSimulator::depolarizePerLane(int q, uint64_t mask)
{
    while (mask) {
        const int l = __builtin_ctzll(mask);
        mask &= mask - 1;
        const uint64_t b = laneBit(l);
        // Uniform over {X, Y, Z}, matching the scalar draw order.
        switch (laneRng_[l].randint(3)) {
          case 0: x_[q] ^= b; break;
          case 1: x_[q] ^= b; z_[q] ^= b; break;
          default: z_[q] ^= b; break;
        }
    }
}

void
BatchFrameSimulator::randomComputational(int q, uint64_t mask)
{
    leaked_[q] &= ~mask;
    uint64_t m = mask;
    while (m) {
        const int l = __builtin_ctzll(m);
        m &= m - 1;
        const uint64_t b = laneBit(l);
        x_[q] = (x_[q] & ~b) | (laneRng_[l].bit() ? b : 0);
        z_[q] = (z_[q] & ~b) | (laneRng_[l].bit() ? b : 0);
    }
}

void
BatchFrameSimulator::maybeLeak(int q, uint64_t mask)
{
    if (!em_.leakageEnabled)
        return;
    const uint64_t m =
        sampler_.draw(em_.leakInjectProb(), numLanes_) & mask &
        ~leaked_[q];
    leaked_[q] |= m;
}

void
BatchFrameSimulator::maybeSeep(int q, uint64_t mask)
{
    const uint64_t leaked = leaked_[q] & mask;
    if (!leaked)
        return;
    const uint64_t m =
        sampler_.draw(em_.seepageProb(), numLanes_) & leaked;
    if (m) {
        // Seeped lanes return in a random computational state.
        randomComputational(q, m);
    }
}

void
BatchFrameSimulator::opDataNoise(int q, uint64_t mask)
{
    const uint64_t depol =
        sampler_.draw(em_.p, numLanes_) & mask & ~leaked_[q];
    depolarizePerLane(q, depol);
    maybeLeak(q, mask);
    maybeSeep(q, mask);
}

void
BatchFrameSimulator::opReset(int q, uint64_t mask)
{
    x_[q] &= ~mask;
    z_[q] &= ~mask;
    leaked_[q] &= ~mask;
    // Initialization error: the qubit comes up in |1> with prob p.
    x_[q] |= sampler_.draw(em_.p, numLanes_) & mask;
}

void
BatchFrameSimulator::opH(int q, uint64_t mask)
{
    const uint64_t act = mask & ~leaked_[q];
    const uint64_t xw = x_[q];
    const uint64_t zw = z_[q];
    x_[q] = (xw & ~act) | (zw & act);
    z_[q] = (zw & ~act) | (xw & act);
    depolarizePerLane(q, sampler_.draw(em_.p, numLanes_) & act);
}

void
BatchFrameSimulator::twoQubitNoise(int a, int b, uint64_t mask)
{
    uint64_t m = sampler_.draw(em_.p, numLanes_) & mask;
    while (m) {
        const int l = __builtin_ctzll(m);
        m &= m - 1;
        const uint64_t bit = laneBit(l);
        // One of the 15 non-identity two-qubit Paulis, uniformly.
        const uint32_t pp = 1 + laneRng_[l].randint(15);
        const uint32_t pa = pp & 3;
        const uint32_t pb = (pp >> 2) & 3;
        if (!(leaked_[a] & bit)) {
            if (pa == 1 || pa == 2)
                x_[a] ^= bit;
            if (pa == 2 || pa == 3)
                z_[a] ^= bit;
        }
        if (!(leaked_[b] & bit)) {
            if (pb == 1 || pb == 2)
                x_[b] ^= bit;
            if (pb == 2 || pb == 3)
                z_[b] ^= bit;
        }
    }
    if (em_.leakageEnabled) {
        maybeLeak(a, mask);
        maybeLeak(b, mask);
        maybeSeep(a, mask);
        maybeSeep(b, mask);
    }
}

void
BatchFrameSimulator::opCnot(int c, int t, uint64_t mask)
{
    const uint64_t lc = leaked_[c];
    const uint64_t lt = leaked_[t];
    const uint64_t both_clean = mask & ~lc & ~lt;
    x_[t] ^= x_[c] & both_clean;
    z_[c] ^= z_[t] & both_clean;

    // Exactly one operand leaked: the gate is uncalibrated for |L>, so
    // the unleaked operand receives a uniformly random Pauli, and
    // leakage may transport.
    const uint64_t c_only = mask & lc & ~lt;
    const uint64_t t_only = mask & lt & ~lc;
    if (c_only) {
        x_[t] ^= batchRng_.next() & c_only;
        z_[t] ^= batchRng_.next() & c_only;
    }
    if (t_only) {
        x_[c] ^= batchRng_.next() & t_only;
        z_[c] ^= batchRng_.next() & t_only;
    }
    const uint64_t mixed = c_only | t_only;
    if (mixed && em_.pTransport > 0.0) {
        const uint64_t tr =
            sampler_.draw(em_.pTransport, numLanes_) & mixed;
        leaked_[t] |= tr & c_only;
        leaked_[c] |= tr & t_only;
        if (em_.transport == TransportModel::Exchange) {
            const uint64_t src_c = tr & c_only;
            if (src_c)
                randomComputational(c, src_c);
            const uint64_t src_t = tr & t_only;
            if (src_t)
                randomComputational(t, src_t);
        }
    }
    // Lanes with both operands leaked see no frame action at all.
    twoQubitNoise(c, t, mask);
}

void
BatchFrameSimulator::opLeakageIswap(int d, int p, uint64_t mask)
{
    const uint64_t ld = leaked_[d];
    const uint64_t lp = leaked_[p];

    // DQLR moves the data qubit's leakage onto the (just reset) parity
    // qubit; the data qubit returns to a random computational state.
    const uint64_t move = mask & ld & ~lp;
    if (move) {
        leaked_[p] |= move;
        randomComputational(d, move);
    }

    // Reset failure left the parity qubit in |1>: the iSWAP acts in the
    // |11>/|20> subspace and can excite the data qubit to |L>.
    const uint64_t excitable = mask & ~ld & ~lp & x_[p];
    if (excitable && em_.leakageEnabled && em_.dqlrExciteProb > 0.0) {
        leaked_[d] |=
            sampler_.draw(em_.dqlrExciteProb, numLanes_) & excitable;
    }
    // The op has CNOT-class fidelity (Section A.2.2).
    twoQubitNoise(d, p, mask);
}

void
BatchFrameSimulator::opMeasure(const Op &op, bool x_basis,
                               uint64_t mask)
{
    const int q = op.q0;
    const uint64_t frame = x_basis ? z_[q] : x_[q];
    const uint64_t lk = leaked_[q] & mask;

    // Unleaked lanes report the frame; a two-level discriminator
    // classifies |L> randomly, and the multi-level discriminator flags
    // |L> unless it errs.
    uint64_t flips = frame & ~leaked_[q] & mask;
    uint64_t labels = 0;
    if (lk) {
        flips |= batchRng_.next() & lk;
        labels =
            lk & ~sampler_.draw(em_.multiLevelMissProb(), numLanes_);
    }
    flips ^= sampler_.draw(em_.p, numLanes_) & mask;

    BatchMeasureRecord rec;
    rec.qubit = q;
    rec.stab = op.stab;
    rec.round = op.round;
    rec.finalData = op.finalData;
    rec.lrcData = op.lrcData;
    rec.mask = mask;
    rec.flips = flips;
    rec.leakedLabels = labels;
    record_.push_back(rec);
}

void
BatchFrameSimulator::execute(const Op &op, uint64_t mask)
{
    mask &= live_;
    if (scalar_) {
        if (mask & 1) {
            scalar_->execute(op);
            syncScalarRecord();
        }
        return;
    }
    if (!mask)
        return;
    switch (op.type) {
      case OpType::RoundStart:
        break;
      case OpType::DataNoise:
        opDataNoise(op.q0, mask);
        break;
      case OpType::Reset:
        opReset(op.q0, mask);
        break;
      case OpType::H:
        opH(op.q0, mask);
        break;
      case OpType::Cnot:
        opCnot(op.q0, op.q1, mask);
        break;
      case OpType::LeakageIswap:
        opLeakageIswap(op.q0, op.q1, mask);
        break;
      case OpType::Measure:
        opMeasure(op, false, mask);
        break;
      case OpType::MeasureX:
        opMeasure(op, true, mask);
        break;
    }
}

void
BatchFrameSimulator::executeRange(const Op *begin, const Op *end,
                                  uint64_t mask)
{
    for (const Op *op = begin; op != end; ++op)
        execute(*op, mask);
}

} // namespace qec
