#include "sim/batch_frame_simulator.h"

#include "base/logging.h"

namespace qec
{

namespace
{

/** Salt separating word-group mask streams from per-lane streams. */
constexpr uint64_t kBatchStreamSalt = 0x9ec0ffeeb47c5a11ULL;

} // namespace

template <int NW>
BatchFrameSimulatorT<NW>::BatchFrameSimulatorT(int num_qubits,
                                               const ErrorModel &em,
                                               int num_lanes,
                                               uint64_t seed,
                                               uint64_t first_shot)
    : numQubits_(num_qubits), numLanes_(num_lanes),
      numBlocks_((num_lanes + 63) / 64),
      live_(laneMaskOf<Lane>(num_lanes)), em_(em)
{
    fatalIf(num_lanes < 1 || num_lanes > kMaxLanes,
            "batch simulator lane count out of range for this width");
    if (numLanes_ == 1) {
        // W=1 reference mode at every plane depth: the scalar
        // simulator, seeded exactly as the scalar experiment path
        // seeds this shot. Delegating for NW > 1 as well keeps
        // 1-lane ragged tail groups bit-identical across widths
        // (e.g. shots = 257 at widths 64 and 256 both simulate shot
        // 256 on this scalar stream).
        scalar_ = std::make_unique<FrameSimulator>(
            num_qubits, em, Rng::forShot(seed, first_shot));
        return;
    }
    // Block b owns the streams of the 64-lane group that would start
    // at shot first_shot + 64*b: W-wide runs replay the 64-wide runs
    // bit for bit.
    blockRng_.reserve(numBlocks_);
    samplers_.reserve(numBlocks_);
    for (int b = 0; b < numBlocks_; ++b) {
        blockLanes_[b] =
            numLanes_ - 64 * b >= 64 ? 64 : numLanes_ - 64 * b;
        blockRng_.push_back(Rng::forStream(
            seed, first_shot + 64 * (uint64_t)b, kBatchStreamSalt));
        samplers_.emplace_back(&blockRng_[b]);
    }
    laneRng_.reserve(numLanes_);
    for (int l = 0; l < numLanes_; ++l)
        laneRng_.push_back(Rng::forShot(seed, first_shot + l));
    x_.assign(num_qubits, Lane{});
    z_.assign(num_qubits, Lane{});
    leaked_.assign(num_qubits, Lane{});
}

template <int NW>
void
BatchFrameSimulatorT<NW>::reset()
{
    record_.clear();
    if (scalar_) {
        scalar_->reset();
        scalarSynced_ = 0;
        return;
    }
    std::fill(x_.begin(), x_.end(), Lane{});
    std::fill(z_.begin(), z_.end(), Lane{});
    std::fill(leaked_.begin(), leaked_.end(), Lane{});
}

template <int NW>
typename BatchFrameSimulatorT<NW>::Lane
BatchFrameSimulatorT<NW>::xWord(int q) const
{
    if (scalar_) {
        Lane r{};
        laneWordRef(r, 0) = scalar_->xFrame(q) ? 1 : 0;
        return r;
    }
    return x_[q];
}

template <int NW>
typename BatchFrameSimulatorT<NW>::Lane
BatchFrameSimulatorT<NW>::zWord(int q) const
{
    if (scalar_) {
        Lane r{};
        laneWordRef(r, 0) = scalar_->zFrame(q) ? 1 : 0;
        return r;
    }
    return z_[q];
}

template <int NW>
typename BatchFrameSimulatorT<NW>::Lane
BatchFrameSimulatorT<NW>::leakedWord(int q) const
{
    if (scalar_) {
        Lane r{};
        laneWordRef(r, 0) = scalar_->leaked(q) ? 1 : 0;
        return r;
    }
    return leaked_[q];
}

template <int NW>
bool
BatchFrameSimulatorT<NW>::leaked(int q, int lane) const
{
    return testLane(leakedWord(q), lane);
}

template <int NW>
uint64_t
BatchFrameSimulatorT<NW>::countLeaked(int first, int last) const
{
    if (scalar_)
        return (uint64_t)scalar_->countLeaked(first, last);
    uint64_t n = 0;
    for (int q = first; q < last; ++q)
        n += (uint64_t)popcountLanes(leaked_[q]);
    return n;
}

template <int NW>
void
BatchFrameSimulatorT<NW>::injectPauli(int q, Pauli p, const Lane &mask)
{
    if (scalar_) {
        if (laneWord(mask, 0) & 1)
            scalar_->injectPauli(q, p);
        return;
    }
    if (p == Pauli::X || p == Pauli::Y)
        x_[q] ^= mask & live_;
    if (p == Pauli::Z || p == Pauli::Y)
        z_[q] ^= mask & live_;
}

template <int NW>
void
BatchFrameSimulatorT<NW>::setLeaked(int q, bool leaked,
                                    const Lane &mask)
{
    if (scalar_) {
        if (laneWord(mask, 0) & 1)
            scalar_->setLeaked(q, leaked);
        return;
    }
    if (leaked)
        leaked_[q] |= mask & live_;
    else
        leaked_[q] = andnot(leaked_[q], mask);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::syncScalarRecord()
{
    const auto &scalar_record = scalar_->record();
    for (; scalarSynced_ < scalar_record.size(); ++scalarSynced_) {
        const MeasureRecord &rec = scalar_record[scalarSynced_];
        Record batch;
        batch.qubit = rec.qubit;
        batch.stab = rec.stab;
        batch.round = rec.round;
        batch.finalData = rec.finalData;
        batch.lrcData = rec.lrcData;
        laneWordRef(batch.mask, 0) = 1;
        laneWordRef(batch.flips, 0) = rec.flip ? 1 : 0;
        laneWordRef(batch.leakedLabels, 0) = rec.leakedLabel ? 1 : 0;
        record_.push_back(batch);
    }
}

template <int NW>
typename BatchFrameSimulatorT<NW>::Lane
BatchFrameSimulatorT<NW>::drawWhere(double p, const Lane &gate)
{
    Lane out{};
    for (int b = 0; b < numBlocks_; ++b) {
        if (laneWord(gate, b))
            laneWordRef(out, b) = samplers_[b].draw(p, blockLanes_[b]);
    }
    return out;
}

template <int NW>
typename BatchFrameSimulatorT<NW>::Lane
BatchFrameSimulatorT<NW>::randBitsWhere(const Lane &gate)
{
    Lane out{};
    for (int b = 0; b < numBlocks_; ++b) {
        if (laneWord(gate, b))
            laneWordRef(out, b) = blockRng_[b].next();
    }
    return out;
}

template <int NW>
void
BatchFrameSimulatorT<NW>::depolarizePerLane(int q, const Lane &mask)
{
    forEachSetLane(mask, [&](int l) {
        // Uniform over {X, Y, Z}, matching the scalar draw order.
        switch (laneRng_[l].randint(3)) {
          case 0: flipLane(x_[q], l); break;
          case 1: flipLane(x_[q], l); flipLane(z_[q], l); break;
          default: flipLane(z_[q], l); break;
        }
    });
}

template <int NW>
void
BatchFrameSimulatorT<NW>::randomComputational(int q, const Lane &mask)
{
    leaked_[q] = andnot(leaked_[q], mask);
    x_[q] = andnot(x_[q], mask);
    z_[q] = andnot(z_[q], mask);
    forEachSetLane(mask, [&](int l) {
        if (laneRng_[l].bit())
            setLane(x_[q], l);
        if (laneRng_[l].bit())
            setLane(z_[q], l);
    });
}

template <int NW>
void
BatchFrameSimulatorT<NW>::maybeLeak(int q, const Lane &mask)
{
    if (!em_.leakageEnabled)
        return;
    const Lane m = andnot(drawWhere(em_.leakInjectProb(), mask) & mask,
                          leaked_[q]);
    leaked_[q] |= m;
}

template <int NW>
void
BatchFrameSimulatorT<NW>::maybeSeep(int q, const Lane &mask)
{
    const Lane leaked = leaked_[q] & mask;
    if (!anyLane(leaked))
        return;
    const Lane m = drawWhere(em_.seepageProb(), leaked) & leaked;
    if (anyLane(m)) {
        // Seeped lanes return in a random computational state.
        randomComputational(q, m);
    }
}

template <int NW>
void
BatchFrameSimulatorT<NW>::opDataNoise(int q, const Lane &mask)
{
    const Lane depol =
        andnot(drawWhere(em_.p, mask) & mask, leaked_[q]);
    depolarizePerLane(q, depol);
    maybeLeak(q, mask);
    maybeSeep(q, mask);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::opReset(int q, const Lane &mask)
{
    x_[q] = andnot(x_[q], mask);
    z_[q] = andnot(z_[q], mask);
    leaked_[q] = andnot(leaked_[q], mask);
    // Initialization error: the qubit comes up in |1> with prob p.
    x_[q] |= drawWhere(em_.p, mask) & mask;
}

template <int NW>
void
BatchFrameSimulatorT<NW>::opH(int q, const Lane &mask)
{
    const Lane act = andnot(mask, leaked_[q]);
    const Lane xw = x_[q];
    const Lane zw = z_[q];
    x_[q] = andnot(xw, act) | (zw & act);
    z_[q] = andnot(zw, act) | (xw & act);
    depolarizePerLane(q, drawWhere(em_.p, mask) & act);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::twoQubitNoise(int a, int b, const Lane &mask)
{
    const Lane m = drawWhere(em_.p, mask) & mask;
    forEachSetLane(m, [&](int l) {
        // One of the 15 non-identity two-qubit Paulis, uniformly.
        const uint32_t pp = 1 + laneRng_[l].randint(15);
        const uint32_t pa = pp & 3;
        const uint32_t pb = (pp >> 2) & 3;
        if (!testLane(leaked_[a], l)) {
            if (pa == 1 || pa == 2)
                flipLane(x_[a], l);
            if (pa == 2 || pa == 3)
                flipLane(z_[a], l);
        }
        if (!testLane(leaked_[b], l)) {
            if (pb == 1 || pb == 2)
                flipLane(x_[b], l);
            if (pb == 2 || pb == 3)
                flipLane(z_[b], l);
        }
    });
    if (em_.leakageEnabled) {
        maybeLeak(a, mask);
        maybeLeak(b, mask);
        maybeSeep(a, mask);
        maybeSeep(b, mask);
    }
}

template <int NW>
void
BatchFrameSimulatorT<NW>::opCnot(int c, int t, const Lane &mask)
{
    const Lane lc = leaked_[c];
    const Lane lt = leaked_[t];
    const Lane both_clean = andnot(andnot(mask, lc), lt);
    x_[t] ^= x_[c] & both_clean;
    z_[c] ^= z_[t] & both_clean;

    // Exactly one operand leaked: the gate is uncalibrated for |L>, so
    // the unleaked operand receives a uniformly random Pauli, and
    // leakage may transport.
    const Lane c_only = andnot(mask & lc, lt);
    const Lane t_only = andnot(mask & lt, lc);
    if (anyLane(c_only)) {
        x_[t] ^= randBitsWhere(c_only) & c_only;
        z_[t] ^= randBitsWhere(c_only) & c_only;
    }
    if (anyLane(t_only)) {
        x_[c] ^= randBitsWhere(t_only) & t_only;
        z_[c] ^= randBitsWhere(t_only) & t_only;
    }
    const Lane mixed = c_only | t_only;
    if (anyLane(mixed) && em_.pTransport > 0.0) {
        const Lane tr = drawWhere(em_.pTransport, mixed) & mixed;
        leaked_[t] |= tr & c_only;
        leaked_[c] |= tr & t_only;
        if (em_.transport == TransportModel::Exchange) {
            const Lane src_c = tr & c_only;
            if (anyLane(src_c))
                randomComputational(c, src_c);
            const Lane src_t = tr & t_only;
            if (anyLane(src_t))
                randomComputational(t, src_t);
        }
    }
    // Lanes with both operands leaked see no frame action at all.
    twoQubitNoise(c, t, mask);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::opLeakageIswap(int d, int p, const Lane &mask)
{
    const Lane ld = leaked_[d];
    const Lane lp = leaked_[p];

    // DQLR moves the data qubit's leakage onto the (just reset) parity
    // qubit; the data qubit returns to a random computational state.
    const Lane move = andnot(mask & ld, lp);
    if (anyLane(move)) {
        leaked_[p] |= move;
        randomComputational(d, move);
    }

    // Reset failure left the parity qubit in |1>: the iSWAP acts in the
    // |11>/|20> subspace and can excite the data qubit to |L>.
    const Lane excitable = andnot(andnot(mask, ld), lp) & x_[p];
    if (anyLane(excitable) && em_.leakageEnabled &&
        em_.dqlrExciteProb > 0.0) {
        leaked_[d] |=
            drawWhere(em_.dqlrExciteProb, excitable) & excitable;
    }
    // The op has CNOT-class fidelity (Section A.2.2).
    twoQubitNoise(d, p, mask);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::opMeasure(const Op &op, bool x_basis,
                                    const Lane &mask)
{
    const int q = op.q0;
    const Lane frame = x_basis ? z_[q] : x_[q];
    const Lane lk = leaked_[q] & mask;

    // Unleaked lanes report the frame; a two-level discriminator
    // classifies |L> randomly, and the multi-level discriminator flags
    // |L> unless it errs.
    Lane flips = andnot(frame, leaked_[q]) & mask;
    Lane labels{};
    if (anyLane(lk)) {
        flips |= randBitsWhere(lk) & lk;
        labels =
            andnot(lk, drawWhere(em_.multiLevelMissProb(), lk));
    }
    flips ^= drawWhere(em_.p, mask) & mask;

    Record rec;
    rec.qubit = q;
    rec.stab = op.stab;
    rec.round = op.round;
    rec.finalData = op.finalData;
    rec.lrcData = op.lrcData;
    rec.mask = mask;
    rec.flips = flips;
    rec.leakedLabels = labels;
    record_.push_back(rec);
}

template <int NW>
void
BatchFrameSimulatorT<NW>::execute(const Op &op, const Lane &mask_in)
{
    const Lane mask = mask_in & live_;
    if (scalar_) {
        if (laneWord(mask, 0) & 1) {
            scalar_->execute(op);
            syncScalarRecord();
        }
        return;
    }
    if (!anyLane(mask))
        return;
    switch (op.type) {
      case OpType::RoundStart:
        break;
      case OpType::DataNoise:
        opDataNoise(op.q0, mask);
        break;
      case OpType::Reset:
        opReset(op.q0, mask);
        break;
      case OpType::H:
        opH(op.q0, mask);
        break;
      case OpType::Cnot:
        opCnot(op.q0, op.q1, mask);
        break;
      case OpType::LeakageIswap:
        opLeakageIswap(op.q0, op.q1, mask);
        break;
      case OpType::Measure:
        opMeasure(op, false, mask);
        break;
      case OpType::MeasureX:
        opMeasure(op, true, mask);
        break;
    }
}

template <int NW>
void
BatchFrameSimulatorT<NW>::executeRange(const Op *begin, const Op *end,
                                       const Lane &mask)
{
    for (const Op *op = begin; op != end; ++op)
        execute(*op, mask);
}

template class BatchFrameSimulatorT<1>;
template class BatchFrameSimulatorT<4>;
template class BatchFrameSimulatorT<8>;

} // namespace qec
