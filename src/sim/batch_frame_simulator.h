/**
 * @file
 * Bit-packed batched Pauli-frame simulator: W shots per plane word.
 *
 * Where FrameSimulator stores one byte per qubit per flag and runs one
 * shot at a time, this engine packs up to W = NW*64 shots ("lanes")
 * into one NW-word plane per qubit per bit-plane (X frame, Z frame,
 * leaked) — the bulk Pauli-frame layout popularized by Stim, extended
 * here to width-generic SIMD words (see base/simd_word.h). Static
 * circuit structure — CNOT frame propagation, Hadamard plane swaps,
 * resets — executes as a handful of vector word ops for all lanes at
 * once; noise is sampled as Bernoulli *masks* via BernoulliMaskSampler,
 * so at p = 1e-3 the cost of a noisy location is amortized across the
 * whole word-group.
 *
 * Randomness is streamed per 64-lane *block*: block b of a word-group
 * starting at shot S owns the mask-sampler/raw-bit streams a 64-lane
 * group starting at shot S + 64*b would own, and every draw is gated
 * on the block exactly as the 64-lane engine gates it on its whole
 * word. A W = 256/512 run is therefore bit-for-bit the concatenation
 * of its W = 64 sub-runs — the cross-width differential anchor the
 * tests pin — and NW = 1 instantiates with plain uint64_t lane sets,
 * reproducing the pre-SIMD engine exactly.
 *
 * Leakage breaks pure lockstep: ERASER adapts each shot's LRC schedule
 * from that shot's own syndrome, and leaked qubits respond to gates
 * differently per lane. Divergence is handled two ways:
 *
 *  - Within an op, leakage-dependent behaviour becomes masked word
 *    arithmetic (e.g. a CNOT propagates frames on the both-clean lane
 *    set and randomizes the clean operand on the exactly-one-leaked
 *    set). Rare per-lane events (depolarizing hits, seepage returns)
 *    fall back to per-lane draws from lane-split RNG streams.
 *  - Across ops, every execute() takes a lane-activation mask, so the
 *    experiment layer can run policy-divergent LRC/DQLR insertions
 *    only on the lanes whose policies scheduled them.
 *
 * With num_lanes == 1 the engine (at every plane depth) delegates to
 * the scalar FrameSimulator seeded exactly as MemoryExperiment seeds
 * shot `first_shot`; the scalar simulator is thereby the W=1
 * reference implementation, which differential tests exploit to
 * check the batched experiment orchestration bit-for-bit against the
 * scalar path — and which keeps 1-lane ragged tail groups identical
 * across widths.
 */

#ifndef QEC_SIM_BATCH_FRAME_SIMULATOR_H
#define QEC_SIM_BATCH_FRAME_SIMULATOR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "base/rng.h"
#include "base/simd_word.h"
#include "code/circuit.h"
#include "code/circuit_ir.h"
#include "code/types.h"
#include "sim/bit_mask_sampler.h"
#include "sim/error_model.h"
#include "sim/frame_simulator.h"

namespace qec
{

/** One measurement across all lanes: per-lane outcome bits packed into
 *  plane words, plus the lane set for which the measurement happened. */
template <int NW>
struct BatchMeasureRecordT
{
    using Lane = LaneWord<NW>;

    int qubit = -1;
    int stab = -1;            ///< Stabilizer reported (-1 for finals).
    int round = -1;
    bool finalData = false;
    bool lrcData = false;     ///< Data qubit measured for an LRC.
    Lane mask{};              ///< Lanes that executed this measurement.
    Lane flips{};             ///< Flip bits; zero outside `mask`.
    Lane leakedLabels{};      ///< |L> labels; zero outside `mask`.
};

/** The pre-SIMD 64-lane record layout (uint64_t lane sets). */
using BatchMeasureRecord = BatchMeasureRecordT<1>;

/**
 * What the controller supplies for one LRC-slot id when a program
 * round is replayed: the per-stabilizer plane of lanes whose plain
 * readout the slot replaces, and the divergent tails per 64-lane
 * block (first-insertion order — the cross-width bit-identity
 * anchor). An empty fill (both pointers null) leaves the branch
 * untaken, which is also what a slot id without a fill gets.
 */
template <int NW>
struct ProgramLrcFillT
{
    using Lane = LaneWord<NW>;

    /** [numStabs] planes, or null when nothing was scheduled. */
    const Lane *lrcOnStab = nullptr;
    /** [numBlocks()] tail lists, or null. */
    const std::vector<IrLrcTail> *blockTails = nullptr;
    /** Multi-level readout: squash the MOV-back on |L> labels. */
    bool multiLevel = false;
};

/**
 * Executes circuits over W parallel shots packed NW words deep. Lane l
 * simulates global shot `first_shot + l` of the experiment identified
 * by `seed`. One instance per word-group; not thread-safe across
 * word-groups.
 */
template <int NW>
class BatchFrameSimulatorT
{
  public:
    using Lane = LaneWord<NW>;
    using Record = BatchMeasureRecordT<NW>;

    /** Plane words per lane set. */
    static constexpr int kWords = NW;
    /** Maximum lanes per word-group at this width. */
    static constexpr int kMaxLanes = NW * 64;

    BatchFrameSimulatorT(int num_qubits, const ErrorModel &em,
                         int num_lanes, uint64_t seed,
                         uint64_t first_shot);

    // The samplers hold pointers into this object's per-block RNGs;
    // copies would keep drawing from (and later dangle on) the
    // source's streams.
    BatchFrameSimulatorT(const BatchFrameSimulatorT &) = delete;
    BatchFrameSimulatorT & operator=(const BatchFrameSimulatorT &)
        = delete;

    /** Clear frames, leakage and the measurement record. */
    void reset();

    /** Execute one operation on a subset of lanes. */
    void execute(const Op &op, const Lane &mask);
    /** Execute one operation on all live lanes. */
    void execute(const Op &op) { execute(op, live_); }

    /**
     * Execute one operation on lanes of a single 64-lane block — the
     * fast path for policy-divergent LRC/DQLR tails, whose masks
     * never span blocks. Operates on plane word `block` only (word
     * arithmetic at any NW) while consuming exactly the draws the
     * full-width execute would consume for a mask confined to that
     * block, so results are bit-identical; record entries still carry
     * full-width lane sets. Ops outside the tail repertoire fall back
     * to the full-width path.
     */
    void executeBlock(const Op &op, int block, uint64_t mask);

    /** Execute a span of operations on a subset of lanes. */
    void executeRange(const Op *begin, const Op *end, const Lane &mask);
    void
    executeRange(const Op *begin, const Op *end)
    {
        executeRange(begin, end, live_);
    }

    /**
     * Replay one round of a compiled program on the masked lanes:
     * Gate instructions run verbatim through execute(), Readout
     * instructions stamp their pool Measure with `round` (masking off
     * LRC'd lanes when the program replaces plain readouts), and each
     * LrcSlot branch expands the fill registered under its slot id
     * (`fills[id]`, ids >= num_fills stay empty). Draw-for-draw
     * identical to the hand-wired round drivers this replaces.
     */
    void executeProgramRound(const CircuitProgram &prog, int round,
                             const Lane &mask,
                             const ProgramLrcFillT<NW> *fills = nullptr,
                             int num_fills = 0);

    /** Replay the program's final transversal measurement. */
    void executeProgramFinal(const CircuitProgram &prog,
                             const Lane &mask);

    /**
     * Replay a whole program on all live lanes with every LRC-slot
     * branch left empty: all rounds, then the final measurement.
     * Protocols without adaptive control (repetition memory, plain
     * surface memory) run entirely through this loop.
     */
    void executeProgram(const CircuitProgram &prog);

    /**
     * RareStream id for probability p, creating the stream if absent
     * (-1 when p is outside the rare-sampled range). Streams are
     * keyed by probability only and initialized lazily per 64-lane
     * block, so registration order cannot change draw content — ids
     * exist so program replay can pin every noise channel's stream up
     * front instead of growing the stream list mid-round.
     */
    int noiseStreamId(double p);

    /** Pre-register RareStream ids for every noise channel the
     *  program's ops can draw under this simulator's error model. */
    void bindProgramStreams(const CircuitProgram &prog);

    const std::vector<Record> &
    record() const
    {
        return record_;
    }

    /** Pre-size the record so the round loop never reallocates it. */
    void
    reserveRecord(size_t measurements)
    {
        record_.reserve(record_.size() + measurements);
    }

    int numQubits() const { return numQubits_; }
    int numLanes() const { return numLanes_; }
    /** 64-lane blocks in this group (ceil(numLanes / 64)). */
    int numBlocks() const { return numBlocks_; }
    /** Lane set with one bit per live lane. */
    const Lane & liveMask() const { return live_; }

    /** Per-qubit plane words (bits above numLanes() are zero). */
    Lane xWord(int q) const;
    Lane zWord(int q) const;
    Lane leakedWord(int q) const;
    bool leaked(int q, int lane) const;

    /** Total leaked (qubit, lane) pairs in a qubit range. */
    uint64_t countLeaked(int first, int last) const;

    /** Test/DEM hook: XOR a Pauli into the frame on masked lanes. */
    void injectPauli(int q, Pauli p, const Lane &mask);
    /** Test hook: force leakage state on masked lanes. */
    void setLeaked(int q, bool leaked, const Lane &mask);

    const ErrorModel & errorModel() const { return em_; }

  private:
    void opDataNoise(int q, const Lane &mask);
    void opReset(int q, const Lane &mask);
    void opH(int q, const Lane &mask);
    void opCnot(int c, int t, const Lane &mask);
    void opLeakageIswap(int d, int p, const Lane &mask);
    void opMeasure(const Op &op, bool x_basis, const Lane &mask);

    void twoQubitNoise(int a, int b, const Lane &mask);
    void maybeLeak(int q, const Lane &mask);
    void maybeSeep(int q, const Lane &mask);
    /** Per-lane uniform {I,X,Y,Z} depolarizing on masked lanes. */
    void depolarizePerLane(int q, const Lane &mask);
    /** Random computational state relative to the reference. */
    void randomComputational(int q, const Lane &mask);

    // Single-block (word-level) op bodies: the divergent-tail images
    // of the Lane-wide ops above, draw-for-draw identical to running
    // the Lane op with a mask confined to block `b`.
    /** One divergent LRC-slot tail on one 64-lane block. */
    void executeLrcTail(const CircuitProgram &prog, const IrLrcTail &t,
                        int b, int round, bool multi_level);

    void opResetB(int q, int b, uint64_t mask);
    void opCnotB(int c, int t, int b, uint64_t mask);
    void opLeakageIswapB(int d, int p, int b, uint64_t mask);
    void opMeasureB(const Op &op, bool x_basis, int b, uint64_t mask);
    void twoQubitNoiseB(int qa, int qb, int b, uint64_t mask);
    void maybeLeakB(int q, int b, uint64_t mask);
    void maybeSeepB(int q, int b, uint64_t mask);
    void depolarizePerLaneB(int q, int b, uint64_t mask);
    void randomComputationalB(int q, int b, uint64_t mask);
    /** Bernoulli(p) mask for block b, drawn iff `gate` is nonzero —
     *  the single-block image of drawWhere. */
    uint64_t drawBlockWhere(double p, int b, uint64_t gate);

    /**
     * Per-probability rare-event streams shared across the group's
     * blocks: one probability lookup per draw call, with each block's
     * geometric skip counter stored contiguously. Block b's counter
     * trajectory (and its Rng consumption) is exactly what a
     * standalone per-block BernoulliMaskSampler would produce — the
     * layout only removes the per-block stream-list scan from the hot
     * path, which is what made wide word-groups pay the sampler cost
     * once per block instead of once per draw.
     */
    struct RareStream
    {
        double p = 0.0;
        double log1mp = 0.0;
        uint64_t skip[NW];
        uint8_t inited[NW];
    };

    /**
     * Bernoulli(p) lane mask, drawn per 64-lane block and only on
     * blocks where `gate` has a set bit — the width-generic image of
     * the 64-lane engine's "draw iff this op ran / this condition
     * held for the word" structure. Blocks outside `gate` consume
     * nothing from their streams.
     */
    Lane drawWhere(double p, const Lane &gate);
    /** Raw uniform bits per block, gated like drawWhere. */
    Lane randBitsWhere(const Lane &gate);

    RareStream & rareStreamFor(double p);
    /** Rare-path mask for block b (cold path: a hit lands in-word). */
    uint64_t drawRareBlock(RareStream &stream, int b);
    /** Dense-path mask for block b (digit comparison on its Rng). */
    uint64_t drawDenseBlock(double p, int b);

    /** Mirror any new scalar-mode records into batch records. */
    void syncScalarRecord();

    int numQubits_;
    int numLanes_;
    int numBlocks_;
    int blockLanes_[NW];      ///< Live lanes per 64-lane block.
    Lane live_;
    ErrorModel em_;
    /** Per-block group streams; block b draws what a 64-lane group at
     *  first_shot + 64*b would draw. */
    std::vector<Rng> blockRng_;
    std::vector<RareStream> rareStreams_;
    std::vector<Rng> laneRng_;
    std::vector<Lane> x_;
    std::vector<Lane> z_;
    std::vector<Lane> leaked_;
    std::vector<Record> record_;

    /** W=1 reference mode (any NW): the scalar simulator. */
    std::unique_ptr<FrameSimulator> scalar_;
    size_t scalarSynced_ = 0;
};

/** The 64-lane engine (uint64_t lane sets, pre-SIMD layout). */
using BatchFrameSimulator = BatchFrameSimulatorT<1>;

extern template class BatchFrameSimulatorT<1>;
extern template class BatchFrameSimulatorT<4>;
extern template class BatchFrameSimulatorT<8>;

} // namespace qec

#endif // QEC_SIM_BATCH_FRAME_SIMULATOR_H
