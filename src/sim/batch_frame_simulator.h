/**
 * @file
 * Bit-packed batched Pauli-frame simulator: W shots per machine word.
 *
 * Where FrameSimulator stores one byte per qubit per flag and runs one
 * shot at a time, this engine packs up to 64 shots ("lanes") into one
 * uint64_t per qubit per bit-plane (X frame, Z frame, leaked), the bulk
 * Pauli-frame layout popularized by Stim. Static circuit structure —
 * CNOT frame propagation, Hadamard plane swaps, resets — executes as a
 * handful of word ops for all lanes at once; noise is sampled as
 * Bernoulli *masks* via BernoulliMaskSampler, so at p = 1e-3 the cost
 * of a noisy location is amortized across the whole word.
 *
 * Leakage breaks pure lockstep: ERASER adapts each shot's LRC schedule
 * from that shot's own syndrome, and leaked qubits respond to gates
 * differently per lane. Divergence is handled two ways:
 *
 *  - Within an op, leakage-dependent behaviour becomes masked word
 *    arithmetic (e.g. a CNOT propagates frames on the both-clean lane
 *    set and randomizes the clean operand on the exactly-one-leaked
 *    set). Rare per-lane events (depolarizing hits, seepage returns)
 *    fall back to per-lane draws from lane-split RNG streams.
 *  - Across ops, every execute() takes a lane-activation mask, so the
 *    experiment layer can run policy-divergent LRC/DQLR insertions
 *    only on the lanes whose policies scheduled them.
 *
 * With num_lanes == 1 the engine delegates to the scalar FrameSimulator
 * seeded exactly as MemoryExperiment seeds shot `first_shot`; the
 * scalar simulator is thereby the W=1 reference implementation, which
 * differential tests exploit to check the batched experiment
 * orchestration bit-for-bit against the scalar path.
 */

#ifndef QEC_SIM_BATCH_FRAME_SIMULATOR_H
#define QEC_SIM_BATCH_FRAME_SIMULATOR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "base/rng.h"
#include "code/circuit.h"
#include "code/types.h"
#include "sim/bit_mask_sampler.h"
#include "sim/error_model.h"
#include "sim/frame_simulator.h"

namespace qec
{

/** One measurement across all lanes: per-lane outcome bits packed into
 *  words, plus the lane set for which the measurement happened. */
struct BatchMeasureRecord
{
    int qubit = -1;
    int stab = -1;            ///< Stabilizer reported (-1 for finals).
    int round = -1;
    bool finalData = false;
    bool lrcData = false;     ///< Data qubit measured for an LRC.
    uint64_t mask = 0;        ///< Lanes that executed this measurement.
    uint64_t flips = 0;       ///< Flip bits; zero outside `mask`.
    uint64_t leakedLabels = 0; ///< |L> labels; zero outside `mask`.
};

/**
 * Executes circuits over W parallel shots. Lane l simulates global
 * shot `first_shot + l` of the experiment identified by `seed`.
 * One instance per word-group; not thread-safe across word-groups.
 */
class BatchFrameSimulator
{
  public:
    /** Maximum lanes per word (bits in the plane word type). */
    static constexpr int kMaxLanes = 64;

    BatchFrameSimulator(int num_qubits, const ErrorModel &em,
                        int num_lanes, uint64_t seed,
                        uint64_t first_shot);

    // The sampler holds a pointer into this object's RNG; copies would
    // keep drawing from (and later dangle on) the source's stream.
    BatchFrameSimulator(const BatchFrameSimulator &) = delete;
    BatchFrameSimulator & operator=(const BatchFrameSimulator &)
        = delete;

    /** Clear frames, leakage and the measurement record. */
    void reset();

    /** Execute one operation on a subset of lanes. */
    void execute(const Op &op, uint64_t mask);
    /** Execute one operation on all live lanes. */
    void execute(const Op &op) { execute(op, live_); }

    /** Execute a span of operations on a subset of lanes. */
    void executeRange(const Op *begin, const Op *end, uint64_t mask);
    void
    executeRange(const Op *begin, const Op *end)
    {
        executeRange(begin, end, live_);
    }

    const std::vector<BatchMeasureRecord> &
    record() const
    {
        return record_;
    }

    /** Pre-size the record so the round loop never reallocates it. */
    void
    reserveRecord(size_t measurements)
    {
        record_.reserve(record_.size() + measurements);
    }

    int numQubits() const { return numQubits_; }
    int numLanes() const { return numLanes_; }
    /** Mask with one bit set per live lane. */
    uint64_t liveMask() const { return live_; }

    /** Per-qubit plane words (bits above numLanes() are zero). */
    uint64_t xWord(int q) const;
    uint64_t zWord(int q) const;
    uint64_t leakedWord(int q) const;
    bool leaked(int q, int lane) const;

    /** Total leaked (qubit, lane) pairs in a qubit range. */
    uint64_t countLeaked(int first, int last) const;

    /** Test/DEM hook: XOR a Pauli into the frame on masked lanes. */
    void injectPauli(int q, Pauli p, uint64_t mask);
    /** Test hook: force leakage state on masked lanes. */
    void setLeaked(int q, bool leaked, uint64_t mask);

    const ErrorModel & errorModel() const { return em_; }

  private:
    void opDataNoise(int q, uint64_t mask);
    void opReset(int q, uint64_t mask);
    void opH(int q, uint64_t mask);
    void opCnot(int c, int t, uint64_t mask);
    void opLeakageIswap(int d, int p, uint64_t mask);
    void opMeasure(const Op &op, bool x_basis, uint64_t mask);

    void twoQubitNoise(int a, int b, uint64_t mask);
    void maybeLeak(int q, uint64_t mask);
    void maybeSeep(int q, uint64_t mask);
    /** Per-lane uniform {I,X,Y,Z} depolarizing on masked lanes. */
    void depolarizePerLane(int q, uint64_t mask);
    /** Random computational state relative to the reference. */
    void randomComputational(int q, uint64_t mask);

    /** Mirror any new scalar-mode records into batch records. */
    void syncScalarRecord();

    int numQubits_;
    int numLanes_;
    uint64_t live_;
    ErrorModel em_;
    Rng batchRng_;
    BernoulliMaskSampler sampler_;
    std::vector<Rng> laneRng_;
    std::vector<uint64_t> x_;
    std::vector<uint64_t> z_;
    std::vector<uint64_t> leaked_;
    std::vector<BatchMeasureRecord> record_;

    /** W=1 reference mode: delegate to the scalar simulator. */
    std::unique_ptr<FrameSimulator> scalar_;
    size_t scalarSynced_ = 0;
};

} // namespace qec

#endif // QEC_SIM_BATCH_FRAME_SIMULATOR_H
