/**
 * @file
 * Vectorized Bernoulli sampling over 64 lanes at once.
 *
 * The batch frame simulator asks, for every noisy circuit location,
 * "which of my W packed shots suffer this error?" — a 64-bit mask whose
 * bit l is 1 with probability p, independently per lane. Drawing 64
 * scalar Bernoulli trials would erase the advantage of bit-packing, so
 * two word-level strategies are used, picked by probability:
 *
 *  - Rare events (p below ~2%): geometric gap skipping over a
 *    persistent virtual trial stream, the technique Stim's bulk
 *    samplers use. The amortized cost is proportional to the number of
 *    *hits*, so at p = 1e-3 a mask over 64 lanes costs a fraction of
 *    one RNG draw.
 *  - Dense events: a bitwise comparison U < p evaluated lane-parallel
 *    by streaming the binary expansion of p against uniform words. The
 *    still-equal lane set halves each step, so ~8 words resolve all 64
 *    lanes exactly (to double precision).
 */

#ifndef QEC_SIM_BIT_MASK_SAMPLER_H
#define QEC_SIM_BIT_MASK_SAMPLER_H

#include <cstdint>
#include <vector>

#include "base/rng.h"

namespace qec
{

class BernoulliMaskSampler
{
  public:
    /** @param rng Source of raw words; not owned, must outlive this. */
    explicit BernoulliMaskSampler(Rng *rng) : rng_(rng) {}

    /**
     * A word whose low `nlanes` bits are independent Bernoulli(p)
     * draws (higher bits are zero). Streams are kept per distinct
     * probability so rare-event skips carry across calls.
     */
    uint64_t draw(double p, int nlanes);

    /** Probability below which the geometric skip path is used. */
    static constexpr double kRareThreshold = 0.02;

  private:
    struct Stream
    {
        double p = 0.0;
        double log1mp = 0.0;   ///< log(1 - p), cached.
        uint64_t skip = 0;     ///< Trials remaining before the next hit.
    };

    Stream & streamFor(double p);
    uint64_t sampleGap(const Stream &stream);
    uint64_t drawRare(Stream &stream, int nlanes);
    uint64_t drawDense(double p, int nlanes);

    Rng *rng_;
    std::vector<Stream> streams_;
};

/** Mask with the low `nlanes` bits set (nlanes in [0, 64]). */
inline uint64_t
laneMask(int nlanes)
{
    return nlanes >= 64 ? ~uint64_t{0} : ((uint64_t{1} << nlanes) - 1);
}

} // namespace qec

#endif // QEC_SIM_BIT_MASK_SAMPLER_H
