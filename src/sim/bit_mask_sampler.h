/**
 * @file
 * Vectorized Bernoulli sampling over 64 lanes at once.
 *
 * The batch frame simulator asks, for every noisy circuit location,
 * "which of my W packed shots suffer this error?" — a 64-bit mask whose
 * bit l is 1 with probability p, independently per lane. Drawing 64
 * scalar Bernoulli trials would erase the advantage of bit-packing, so
 * two word-level strategies are used, picked by probability:
 *
 *  - Rare events (p below ~2%): geometric gap skipping over a
 *    persistent virtual trial stream, the technique Stim's bulk
 *    samplers use. The amortized cost is proportional to the number of
 *    *hits*, so at p = 1e-3 a mask over 64 lanes costs a fraction of
 *    one RNG draw.
 *  - Dense events: a bitwise comparison U < p evaluated lane-parallel
 *    by streaming the binary expansion of p against uniform words. The
 *    still-equal lane set halves each step, so ~8 words resolve all 64
 *    lanes exactly (to double precision).
 */

#ifndef QEC_SIM_BIT_MASK_SAMPLER_H
#define QEC_SIM_BIT_MASK_SAMPLER_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "base/simd_word.h"

namespace qec
{

// Shared word-level Bernoulli primitives. Both BernoulliMaskSampler
// and the batch engine's grouped per-block streams build on these, so
// there is exactly ONE definition of each RNG-stream-critical
// algorithm — the cross-width bit-identity invariant depends on every
// consumer drawing the same sequence.

/** Geometric gap (failures before the next success) of a Bernoulli
 *  stream with cached log(1-p); consumes one word of `rng`. */
uint64_t bernoulliGeometricGap(Rng &rng, double log1mp);

/**
 * Rare-event mask over the low `nlanes` lanes: advance the stream's
 * persistent `skip` counter, setting a bit for every virtual trial
 * that lands in this word. The common all-miss case is the inline
 * compare + subtract the callers fast-path themselves.
 */
uint64_t bernoulliRareMask(Rng &rng, double log1mp, uint64_t &skip,
                           int nlanes);

/** Dense-path mask: lane-parallel digit comparison U < p. */
uint64_t bernoulliDenseMask(Rng &rng, double p, int nlanes);

class BernoulliMaskSampler
{
  public:
    /** @param rng Source of raw words; not owned, must outlive this. */
    explicit BernoulliMaskSampler(Rng *rng) : rng_(rng) {}

    /**
     * A word whose low `nlanes` bits are independent Bernoulli(p)
     * draws (higher bits are zero). Streams are kept per distinct
     * probability so rare-event skips carry across calls.
     *
     * Inlined fast path: an engine run alternates between a handful
     * of distinct rare probabilities (gate, leak, seepage, ...), so
     * the per-probability stream list stays tiny and is scanned
     * inline; when the matching stream's pending skip covers the
     * whole word (the overwhelmingly common case at the error rates
     * of interest) the draw is a compare + subtract — identical in
     * sequence to the out-of-line rare path, just without the call.
     */
    uint64_t
    draw(double p, int nlanes)
    {
        for (auto &stream : streams_) {
            if (stream.p == p) {
                if (nlanes > 0 &&
                    stream.skip >= (uint64_t)nlanes) {
                    stream.skip -= (uint64_t)nlanes;
                    return 0;
                }
                break;
            }
        }
        return drawSlow(p, nlanes);
    }

    /** Probability below which the geometric skip path is used. */
    static constexpr double kRareThreshold = 0.02;

  private:
    struct Stream
    {
        double p = 0.0;
        double log1mp = 0.0;   ///< log(1 - p), cached.
        uint64_t skip = 0;     ///< Trials remaining before the next hit.
    };

    uint64_t drawSlow(double p, int nlanes);

    Stream & streamFor(double p);
    uint64_t drawRare(Stream &stream, int nlanes);
    uint64_t drawDense(double p, int nlanes);

    Rng *rng_;
    std::vector<Stream> streams_;
};

/** Mask with the low `nlanes` bits set (alias of base/simd_word.h's
 *  clamped laneMask64, kept for the sampler's historical callers). */
inline uint64_t
laneMask(int nlanes)
{
    return laneMask64(nlanes);
}

} // namespace qec

#endif // QEC_SIM_BIT_MASK_SAMPLER_H
