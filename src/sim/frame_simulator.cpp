#include "sim/frame_simulator.h"

#include "base/logging.h"

namespace qec
{

FrameSimulator::FrameSimulator(int num_qubits, const ErrorModel &em,
                               Rng rng)
    : em_(em), rng_(rng),
      x_(num_qubits, 0), z_(num_qubits, 0), leaked_(num_qubits, 0)
{
}

void
FrameSimulator::reset()
{
    std::fill(x_.begin(), x_.end(), 0);
    std::fill(z_.begin(), z_.end(), 0);
    std::fill(leaked_.begin(), leaked_.end(), 0);
    record_.clear();
}

int
FrameSimulator::countLeaked(int first, int last) const
{
    int n = 0;
    for (int q = first; q < last; ++q)
        n += leaked_[q];
    return n;
}

void
FrameSimulator::injectPauli(int q, Pauli p)
{
    if (p == Pauli::X || p == Pauli::Y)
        x_[q] ^= 1;
    if (p == Pauli::Z || p == Pauli::Y)
        z_[q] ^= 1;
}

void
FrameSimulator::setLeaked(int q, bool leaked)
{
    leaked_[q] = leaked ? 1 : 0;
}

void
FrameSimulator::applyRandomPauli(int q)
{
    // Uniform over {I, X, Y, Z}: two independent frame bits.
    uint64_t r = rng_.next();
    x_[q] ^= (uint8_t)(r & 1);
    z_[q] ^= (uint8_t)((r >> 1) & 1);
}

void
FrameSimulator::maybeLeak(int q)
{
    if (!em_.leakageEnabled || leaked_[q])
        return;
    if (rng_.bernoulli(em_.leakInjectProb()))
        leaked_[q] = 1;
}

void
FrameSimulator::maybeSeep(int q)
{
    if (!leaked_[q])
        return;
    if (rng_.bernoulli(em_.seepageProb())) {
        leaked_[q] = 0;
        // Returns in a random computational state: a random Pauli
        // relative to the reference.
        x_[q] = (uint8_t)rng_.bit();
        z_[q] = (uint8_t)rng_.bit();
    }
}

void
FrameSimulator::opDataNoise(const Op &op)
{
    const int q = op.q0;
    if (!leaked_[q] && rng_.bernoulli(em_.p)) {
        // Depolarizing: uniform over {X, Y, Z}.
        switch (rng_.randint(3)) {
          case 0: x_[q] ^= 1; break;
          case 1: x_[q] ^= 1; z_[q] ^= 1; break;
          default: z_[q] ^= 1; break;
        }
    }
    maybeLeak(q);
    maybeSeep(q);
}

void
FrameSimulator::opReset(const Op &op)
{
    const int q = op.q0;
    x_[q] = 0;
    z_[q] = 0;
    leaked_[q] = 0;
    // Initialization error: the qubit comes up in |1> with prob p.
    if (rng_.bernoulli(em_.p))
        x_[q] = 1;
}

void
FrameSimulator::opH(const Op &op)
{
    const int q = op.q0;
    if (!leaked_[q])
        std::swap(x_[q], z_[q]);
    if (!leaked_[q] && rng_.bernoulli(em_.p)) {
        switch (rng_.randint(3)) {
          case 0: x_[q] ^= 1; break;
          case 1: x_[q] ^= 1; z_[q] ^= 1; break;
          default: z_[q] ^= 1; break;
        }
    }
}

void
FrameSimulator::twoQubitNoise(int a, int b)
{
    if (rng_.bernoulli(em_.p)) {
        // One of the 15 non-identity two-qubit Paulis, uniformly.
        uint32_t pp = 1 + rng_.randint(15);
        Pauli pa = (Pauli)(pp & 3);
        Pauli pb = (Pauli)((pp >> 2) & 3);
        if (!leaked_[a])
            injectPauli(a, pa);
        if (!leaked_[b])
            injectPauli(b, pb);
    }
    if (em_.leakageEnabled) {
        maybeLeak(a);
        maybeLeak(b);
        maybeSeep(a);
        maybeSeep(b);
    }
}

void
FrameSimulator::opCnot(const Op &op)
{
    const int c = op.q0;
    const int t = op.q1;

    const bool lc = leaked_[c];
    const bool lt = leaked_[t];
    if (!lc && !lt) {
        x_[t] ^= x_[c];
        z_[c] ^= z_[t];
    } else if (lc != lt) {
        // A CNOT between a leaked and an unleaked qubit: the gate is
        // uncalibrated for |L>, so the unleaked operand receives a
        // uniformly random Pauli, and leakage may transport.
        const int leaked_q = lc ? c : t;
        const int clean_q = lc ? t : c;
        applyRandomPauli(clean_q);
        if (rng_.bernoulli(em_.pTransport)) {
            leaked_[clean_q] = 1;
            if (em_.transport == TransportModel::Exchange) {
                leaked_[leaked_q] = 0;
                x_[leaked_q] = (uint8_t)rng_.bit();
                z_[leaked_q] = (uint8_t)rng_.bit();
            }
        }
    }
    // If both are leaked the gate does nothing to the frames.
    twoQubitNoise(c, t);
}

void
FrameSimulator::opLeakageIswap(const Op &op)
{
    const int d = op.q0;
    const int p = op.q1;

    if (leaked_[d] && !leaked_[p]) {
        // DQLR moves the data qubit's leakage onto the (just reset)
        // parity qubit; the data qubit returns to a random
        // computational state.
        leaked_[p] = 1;
        leaked_[d] = 0;
        x_[d] = (uint8_t)rng_.bit();
        z_[d] = (uint8_t)rng_.bit();
    } else if (!leaked_[d] && !leaked_[p] && x_[p]) {
        // Reset failure left the parity qubit in |1>: the iSWAP acts in
        // the |11>/|20> subspace and can excite the data qubit to |L>
        // (Fig. 19(b)).
        if (em_.leakageEnabled && rng_.bernoulli(em_.dqlrExciteProb))
            leaked_[d] = 1;
    }
    // The op has CNOT-class fidelity (Section A.2.2).
    twoQubitNoise(d, p);
}

void
FrameSimulator::opMeasure(const Op &op, bool x_basis)
{
    const int q = op.q0;

    MeasureRecord rec;
    rec.qubit = q;
    rec.stab = op.stab;
    rec.round = op.round;
    rec.finalData = op.finalData;
    rec.lrcData = op.lrcData;

    if (leaked_[q]) {
        // A two-level discriminator classifies |L> randomly.
        rec.flip = rng_.bit();
        // The multi-level discriminator flags |L> unless it errs.
        rec.leakedLabel =
            !rng_.bernoulli(em_.multiLevelMissProb());
    } else {
        rec.flip = x_basis ? (z_[q] != 0) : (x_[q] != 0);
        rec.leakedLabel = false;
    }
    if (rng_.bernoulli(em_.p))
        rec.flip = !rec.flip;

    record_.push_back(rec);
}

void
FrameSimulator::execute(const Op &op)
{
    switch (op.type) {
      case OpType::RoundStart:
        break;
      case OpType::DataNoise:
        opDataNoise(op);
        break;
      case OpType::Reset:
        opReset(op);
        break;
      case OpType::H:
        opH(op);
        break;
      case OpType::Cnot:
        opCnot(op);
        break;
      case OpType::LeakageIswap:
        opLeakageIswap(op);
        break;
      case OpType::Measure:
        opMeasure(op, false);
        break;
      case OpType::MeasureX:
        opMeasure(op, true);
        break;
    }
}

void
FrameSimulator::executeRange(const Op *begin, const Op *end)
{
    for (const Op *op = begin; op != end; ++op)
        execute(*op);
}

void
FrameSimulator::run(const Circuit &circuit)
{
    panicIf(circuit.numQubits > numQubits(),
            "circuit uses more qubits than the simulator holds");
    reset();
    record_.reserve(circuit.countMeasurements());
    if (!circuit.ops.empty())
        executeRange(circuit.ops.data(),
                     circuit.ops.data() + circuit.ops.size());
}

} // namespace qec
